package safemon

import (
	"context"
	"time"

	"repro/internal/core"
)

// replayTrace streams a trajectory through an existing session and collects
// the trace. The session must be freshly created or Reset. When timing is
// set, the mean per-frame push latency lands in Trace.ErrorComputeNS.
func replayTrace(ctx context.Context, s Session, traj *Trajectory, timing bool) (*Trace, error) {
	trace := &Trace{Verdicts: make([]FrameVerdict, 0, len(traj.Frames))}
	var elapsed time.Duration
	for i := range traj.Frames {
		if i&0xff == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		var start time.Time
		if timing {
			start = time.Now()
		}
		v, err := s.Push(&traj.Frames[i])
		if timing {
			elapsed += time.Since(start)
		}
		if err != nil {
			return nil, err
		}
		trace.Verdicts = append(trace.Verdicts, v)
		if v.Unsafe {
			trace.Alerts = append(trace.Alerts, core.Alert{FrameIndex: v.FrameIndex, Gesture: v.Gesture, Score: v.Score})
		}
	}
	if timing && len(traj.Frames) > 0 {
		trace.ErrorComputeNS = float64(elapsed.Nanoseconds()) / float64(len(traj.Frames))
	}
	return trace, nil
}

// runViaSession implements Detector.Run as a session replay: the batch path
// is the streaming path by construction. Trajectory labels, when present,
// are forwarded so ground-truth-context backends work out of the box.
func runViaSession(ctx context.Context, d Detector, traj *Trajectory, timing bool) (*Trace, error) {
	var opts []SessionOption
	if gt := groundTruthOf(traj); gt != nil {
		opts = append(opts, WithSessionLabels(gt))
	}
	s, err := d.NewSession(opts...)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return replayTrace(ctx, s, traj, timing)
}

// StreamVerdict is one element of a Watch channel: a verdict or a terminal
// error (Err non-nil ends the stream).
type StreamVerdict struct {
	Verdict FrameVerdict
	Err     error
}

// Watch adapts a Session to channel mode: frames received on in are pushed
// through the session and verdicts are delivered on the returned channel,
// which closes when in closes, the context is cancelled, or a push fails.
// Watch takes ownership of the session and closes it on exit.
//
// Cancellation delivery is best-effort: a consumer that is between
// receives when the context dies may observe the channel closing without
// a terminal Err record, so treat ctx.Err() — not the record — as the
// authority on whether the stream was cancelled.
func Watch(ctx context.Context, s Session, in <-chan *Frame) <-chan StreamVerdict {
	out := make(chan StreamVerdict)
	go func() {
		defer close(out)
		defer s.Close()
		for {
			select {
			case <-ctx.Done():
				select {
				case out <- StreamVerdict{Err: ctx.Err()}:
				default:
				}
				return
			case f, ok := <-in:
				if !ok {
					return
				}
				v, err := s.Push(f)
				select {
				case <-ctx.Done():
					return
				case out <- StreamVerdict{Verdict: v, Err: err}:
				}
				if err != nil {
					return
				}
			}
		}
	}()
	return out
}
