package ledger

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// DiskConfig tunes a DiskStore. The zero value selects the documented
// defaults.
type DiskConfig struct {
	// SegmentBytes rotates the active segment once it reaches this size;
	// <= 0 means 8 MiB. One batch always lands in one segment, so a
	// segment may overshoot by at most one batch.
	SegmentBytes int64
	// MaxBytes is the retention budget: once the store exceeds it,
	// compaction removes the oldest sealed segments (never the active
	// one, never a segment backing a pinned session). <= 0 means 256 MiB.
	MaxBytes int64
	// MaxAge, when > 0, additionally compacts sealed segments whose
	// newest event is older than this.
	MaxAge time.Duration
	// now overrides the clock in tests.
	now func() time.Time
}

func (c DiskConfig) withDefaults() DiskConfig {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 8 << 20
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 256 << 20
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// segment is the in-memory index entry for one segment file. sessions
// lists every session with at least one event in the segment, so
// compaction can honor pins without re-reading files.
type segment struct {
	path     string
	firstSeq uint64
	lastSeq  uint64
	size     int64
	lastWall int64
	sessions map[uint64]struct{}
}

// DiskStore is the durable Store: length-prefixed CRC-checked binary
// records in size-rotated segment files under one directory. Rotation
// fsyncs the sealed segment; Sync fsyncs the active one. Opening a
// directory recovers crash-safely: a torn record tail (the shape an
// interrupted append or power loss leaves) is truncated away and logged
// in RecoveredBytes rather than refusing to open, and everything before
// the tear keeps serving.
//
// A single writer (the Appender) calls Append/Sync/Close; any number of
// readers may Scan concurrently.
type DiskStore struct {
	dir string
	cfg DiskConfig

	mu         sync.Mutex
	segs       []*segment // oldest first; the last entry is active
	active     *os.File
	pinned     map[uint64]struct{}
	firstSeq   uint64
	lastSeq    uint64
	maxSession uint64
	encBuf     []byte
	recovered  int64 // bytes truncated during recovery
	compacted  uint64
	closed     bool
}

// segmentName renders the canonical file name for a segment whose first
// record has the given sequence number.
func segmentName(firstSeq uint64) string {
	return fmt.Sprintf("seg-%020d.led", firstSeq)
}

// parseSegmentName extracts the first-sequence number from a segment
// file name, reporting ok=false for foreign files.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".led") {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".led"), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// OpenDisk opens (creating if needed) a segment-file ledger store in dir.
func OpenDisk(dir string, cfg DiskConfig) (*DiskStore, error) {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ledger: open %s: %w", dir, err)
	}
	s := &DiskStore{dir: dir, cfg: cfg, pinned: map[uint64]struct{}{}}
	if err := s.recover(); err != nil {
		return nil, err
	}
	// Age-based retention applies at open as well as at rotation, so a
	// daemon restarted after a long gap does not serve stale segments.
	s.mu.Lock()
	s.compactLocked()
	s.mu.Unlock()
	return s, nil
}

// recover indexes the existing segment files, truncating a torn tail in
// place wherever one is found. Events after an in-segment corruption are
// unrecoverable and are dropped with the tear; the clean prefix survives.
func (s *DiskStore) recover() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("ledger: read %s: %w", s.dir, err)
	}
	names := make([]string, 0, len(entries))
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		if _, ok := parseSegmentName(ent.Name()); ok {
			names = append(names, ent.Name())
		}
	}
	sort.Strings(names) // zero-padded names sort by first sequence
	for _, name := range names {
		path := filepath.Join(s.dir, name)
		seg, latched, truncated, err := indexSegment(path)
		if err != nil {
			return err
		}
		s.recovered += truncated
		if seg.size == 0 {
			// A segment with no clean records carries nothing; remove it
			// rather than index an empty file.
			os.Remove(path)
			continue
		}
		s.segs = append(s.segs, seg)
		if s.firstSeq == 0 {
			s.firstSeq = seg.firstSeq
		}
		if seg.lastSeq > s.lastSeq {
			s.lastSeq = seg.lastSeq
		}
		for sess := range seg.sessions {
			if sess > s.maxSession {
				s.maxSession = sess
			}
		}
		// Latching mitigation actions mark incident sessions; re-pin them
		// so compaction keeps honoring incidents across restarts.
		for _, sess := range latched {
			s.pinned[sess] = struct{}{}
		}
	}
	return nil
}

// indexSegment reads one segment file, truncates any torn or corrupt
// tail, and returns its index entry, the sessions on which a latching
// mitigation engaged (for re-pinning), and the number of bytes dropped.
// Latch detection rides the indexing scan so recovery reads each file
// exactly once.
func indexSegment(path string) (*segment, []uint64, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("ledger: read segment %s: %w", path, err)
	}
	seg := &segment{path: path, sessions: map[uint64]struct{}{}}
	var latched []uint64
	clean, scanErr := ReadSegment(data, func(e *Event) bool {
		seg.noteEvent(e)
		if e.Kind == KindAction && e.Action.Latches() {
			latched = append(latched, e.Session)
		}
		return true
	})
	seg.size = clean
	if scanErr != nil && clean < int64(len(data)) {
		if err := os.Truncate(path, clean); err != nil {
			return nil, nil, 0, fmt.Errorf("ledger: truncate torn tail of %s: %w", path, err)
		}
	}
	return seg, latched, int64(len(data)) - clean, nil
}

// noteEvent folds one event into the segment's index entry.
func (seg *segment) noteEvent(e *Event) {
	if seg.firstSeq == 0 {
		seg.firstSeq = e.Seq
	}
	seg.lastSeq = e.Seq
	if e.WallNS > seg.lastWall {
		seg.lastWall = e.WallNS
	}
	if e.Session != 0 {
		seg.sessions[e.Session] = struct{}{}
	}
}

// Append implements Store: the batch is encoded into one buffer and
// written with a single write call, so the on-disk file only ever grows
// by whole records (the invariant recovery and concurrent Scan rely on).
func (s *DiskStore) Append(events []Event) error {
	if len(events) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("ledger: store closed")
	}
	if s.active == nil || (len(s.segs) > 0 && s.segs[len(s.segs)-1].size >= s.cfg.SegmentBytes) {
		if err := s.rotateLocked(events[0].Seq); err != nil {
			return err
		}
	}
	seg := s.segs[len(s.segs)-1]
	s.encBuf = s.encBuf[:0]
	for i := range events {
		s.encBuf = appendEvent(s.encBuf, &events[i])
	}
	if _, err := s.active.Write(s.encBuf); err != nil {
		return fmt.Errorf("ledger: append: %w", err)
	}
	for i := range events {
		e := &events[i]
		seg.noteEvent(e)
		if e.Session > s.maxSession {
			s.maxSession = e.Session
		}
		if e.Kind == KindAction && e.Action.Latches() {
			s.pinned[e.Session] = struct{}{}
		}
		// firstSeq > lastSeq marks a store that retains nothing (all
		// remaining segments empty after compaction): re-anchor on the
		// first event to land.
		if s.firstSeq == 0 || s.firstSeq > s.lastSeq {
			s.firstSeq = e.Seq
		}
		if e.Seq > s.lastSeq {
			s.lastSeq = e.Seq
		}
	}
	seg.size += int64(len(s.encBuf))
	return nil
}

// rotateLocked seals the active segment (fsync + close) and opens a new
// one whose name carries the first sequence it will hold, then applies
// retention.
func (s *DiskStore) rotateLocked(nextSeq uint64) error {
	if s.active != nil {
		if err := s.active.Sync(); err != nil {
			return fmt.Errorf("ledger: sync segment: %w", err)
		}
		if err := s.active.Close(); err != nil {
			return fmt.Errorf("ledger: close segment: %w", err)
		}
		s.active = nil
	}
	path := filepath.Join(s.dir, segmentName(nextSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("ledger: create segment: %w", err)
	}
	// Resuming into an existing file (e.g. reopening after recovery with
	// the same next sequence) must append after the clean prefix only.
	if seg := s.findSegmentLocked(path); seg != nil {
		s.active = f
		s.compactLocked()
		return nil
	}
	s.segs = append(s.segs, &segment{path: path, sessions: map[uint64]struct{}{}})
	s.active = f
	if err := syncDir(s.dir); err != nil {
		return err
	}
	s.compactLocked()
	return nil
}

// findSegmentLocked returns the index entry for path, if present.
func (s *DiskStore) findSegmentLocked(path string) *segment {
	for _, seg := range s.segs {
		if seg.path == path {
			return seg
		}
	}
	return nil
}

// compactLocked enforces the retention budget: oldest sealed segments
// are removed while the store is over MaxBytes or the segment is past
// MaxAge — except segments backing a pinned (incident) session, which
// are always retained, and the active segment, which is never removed.
func (s *DiskStore) compactLocked() {
	for len(s.segs) > 1 {
		seg := s.segs[0]
		overBytes := s.sizeLocked() > s.cfg.MaxBytes
		overAge := s.cfg.MaxAge > 0 && seg.lastWall > 0 &&
			s.cfg.now().Sub(time.Unix(0, seg.lastWall)) > s.cfg.MaxAge
		if !overBytes && !overAge {
			return
		}
		if s.segmentPinnedLocked(seg) {
			// An incident pins its whole session history; retention
			// cannot cross a pinned segment without losing the incident,
			// so compaction stops here until the incident is unpinned.
			return
		}
		os.Remove(seg.path)
		s.segs = s.segs[1:]
		s.firstSeq = firstRetainedSeq(s.segs, s.lastSeq)
		s.compacted++
	}
}

// firstRetainedSeq is the first sequence of the oldest non-empty
// remaining segment. A freshly rotated active segment has firstSeq 0
// until its first batch lands, so it must be skipped — otherwise Bounds
// would report first=0 while last>0. With only empty segments left, the
// next event to land will be lastSeq+1.
func firstRetainedSeq(segs []*segment, lastSeq uint64) uint64 {
	for _, seg := range segs {
		if seg.firstSeq != 0 {
			return seg.firstSeq
		}
	}
	return lastSeq + 1
}

// segmentPinnedLocked reports whether any of the segment's sessions is
// pinned.
func (s *DiskStore) segmentPinnedLocked(seg *segment) bool {
	for sess := range seg.sessions {
		if _, ok := s.pinned[sess]; ok {
			return true
		}
	}
	return false
}

func (s *DiskStore) sizeLocked() int64 {
	var n int64
	for _, seg := range s.segs {
		n += seg.size
	}
	return n
}

// Scan implements Store. The segment list is snapshotted under the lock
// and files are then read without it: sealed segments are immutable and
// the active one only grows by whole records, so reading each file up to
// its indexed size is always consistent. A segment compacted away
// mid-scan is skipped.
func (s *DiskStore) Scan(from uint64, fn func(*Event) bool) error {
	s.mu.Lock()
	snap := make([]segment, 0, len(s.segs))
	for _, seg := range s.segs {
		if seg.lastSeq >= from && seg.size > 0 {
			snap = append(snap, segment{path: seg.path, size: seg.size})
		}
	}
	s.mu.Unlock()
	stop := false
	for i := range snap {
		err := scanFile(&snap[i], from, func(e *Event) bool {
			if !fn(e) {
				stop = true
				return false
			}
			return true
		})
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				continue // compacted while scanning
			}
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

// scanFile reads one segment file up to its indexed size and decodes its
// records.
func scanFile(seg *segment, from uint64, fn func(*Event) bool) error {
	f, err := os.Open(seg.path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = ReadSegmentFrom(f, seg.size, func(e *Event) bool {
		if e.Seq < from {
			return true
		}
		return fn(e)
	})
	if err != nil {
		return fmt.Errorf("ledger: scan %s: %w", seg.path, err)
	}
	return nil
}

// Bounds implements Store.
func (s *DiskStore) Bounds() (first, last uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.firstSeq, s.lastSeq
}

// MaxSession implements Store.
func (s *DiskStore) MaxSession() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxSession
}

// SizeBytes implements Store.
func (s *DiskStore) SizeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sizeLocked()
}

// RecoveredBytes reports how many torn-tail bytes recovery truncated
// when the store was opened.
func (s *DiskStore) RecoveredBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovered
}

// Segments reports the number of segment files and the active segment's
// file name (for /stats).
func (s *DiskStore) Segments() (n int, active string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.segs) == 0 {
		return 0, ""
	}
	return len(s.segs), filepath.Base(s.segs[len(s.segs)-1].path)
}

// Sync implements Store: fsync the active segment so every record
// accepted by Append is on stable storage.
func (s *DiskStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == nil || s.closed {
		return nil
	}
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("ledger: sync: %w", err)
	}
	return nil
}

// Close implements Store: syncs and closes the active segment. The store
// refuses further appends but remains scannable.
func (s *DiskStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.active == nil {
		return nil
	}
	err := s.active.Sync()
	if cerr := s.active.Close(); err == nil {
		err = cerr
	}
	s.active = nil
	if err != nil {
		return fmt.Errorf("ledger: close: %w", err)
	}
	return nil
}

// Pin implements Pinner: compaction will not remove segments holding the
// session's events.
func (s *DiskStore) Pin(session uint64) {
	s.mu.Lock()
	s.pinned[session] = struct{}{}
	s.mu.Unlock()
}

// Unpin implements Pinner. Compaction runs immediately so that
// acknowledging an incident reclaims the disk it was holding without
// waiting for the next rotation.
func (s *DiskStore) Unpin(session uint64) {
	s.mu.Lock()
	delete(s.pinned, session)
	if !s.closed {
		s.compactLocked()
	}
	s.mu.Unlock()
}

// Pinned implements Pinner.
func (s *DiskStore) Pinned() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint64, 0, len(s.pinned))
	for id := range s.pinned {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// syncDir fsyncs a directory so a just-created segment file's directory
// entry survives power loss (the modelstore idiom).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("ledger: open dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("ledger: sync dir %s: %w", dir, err)
	}
	return nil
}
