package ledger

import "sync"

// MemoryStore is the in-process Store: a bounded ring of events that
// retains the most recent entries and evicts the oldest once full. It is
// the development/test backend and the zero-configuration default; it
// implements Pinner as a no-op bookkeeping map so incident-retention
// code paths behave identically across stores (eviction is strictly by
// ring capacity — a pinned session only protects disk segments).
type MemoryStore struct {
	mu         sync.Mutex
	ring       []Event
	start      int // index of the oldest retained event
	count      int
	bytes      int64
	maxSession uint64
	pinned     map[uint64]struct{}
}

// DefaultMemoryEvents is the ring capacity NewMemoryStore uses for
// capacity <= 0: about half an hour of a single 30 Hz verdict stream.
const DefaultMemoryEvents = 1 << 16

// NewMemoryStore builds a ring retaining at most capacity events.
func NewMemoryStore(capacity int) *MemoryStore {
	if capacity <= 0 {
		capacity = DefaultMemoryEvents
	}
	return &MemoryStore{ring: make([]Event, capacity), pinned: map[uint64]struct{}{}}
}

// Append implements Store.
func (s *MemoryStore) Append(events []Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range events {
		e := &events[i]
		if s.count < len(s.ring) {
			s.ring[(s.start+s.count)%len(s.ring)] = *e
			s.count++
		} else {
			// Full: the oldest slot becomes the newest event.
			s.bytes -= eventSize(&s.ring[s.start])
			s.ring[s.start] = *e
			s.start = (s.start + 1) % len(s.ring)
		}
		s.bytes += eventSize(e)
		if e.Session > s.maxSession {
			s.maxSession = e.Session
		}
		// Mirror the disk store's append-time auto-pin so Pinned() lists
		// unacknowledged incidents identically across stores (eviction
		// still ignores pins — the ring is strictly capacity-bounded).
		if e.Kind == KindAction && e.Action.Latches() {
			s.pinned[e.Session] = struct{}{}
		}
	}
	return nil
}

// eventSize approximates one event's footprint for SizeBytes, using the
// encoded record length as the common currency across stores.
func eventSize(e *Event) int64 {
	n := int64(recordHeaderLen + 47 + len(e.Backend) + len(e.Model) + len(e.Policy) + len(e.Note) + 4*len(e.Labels))
	if e.HasInput {
		n += 8 * inputLen
	}
	return n
}

// Scan implements Store. fn runs under the store lock: it must not call
// back into the store and should return promptly.
func (s *MemoryStore) Scan(from uint64, fn func(*Event) bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < s.count; i++ {
		e := &s.ring[(s.start+i)%len(s.ring)]
		if e.Seq < from {
			continue
		}
		if !fn(e) {
			return nil
		}
	}
	return nil
}

// Bounds implements Store.
func (s *MemoryStore) Bounds() (first, last uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return 0, 0
	}
	return s.ring[s.start].Seq, s.ring[(s.start+s.count-1)%len(s.ring)].Seq
}

// MaxSession implements Store.
func (s *MemoryStore) MaxSession() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxSession
}

// SizeBytes implements Store.
func (s *MemoryStore) SizeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Sync implements Store (memory is always "synced").
func (s *MemoryStore) Sync() error { return nil }

// Close implements Store.
func (s *MemoryStore) Close() error { return nil }

// Pin implements Pinner.
func (s *MemoryStore) Pin(session uint64) {
	s.mu.Lock()
	s.pinned[session] = struct{}{}
	s.mu.Unlock()
}

// Unpin implements Pinner.
func (s *MemoryStore) Unpin(session uint64) {
	s.mu.Lock()
	delete(s.pinned, session)
	s.mu.Unlock()
}

// Pinned implements Pinner.
func (s *MemoryStore) Pinned() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint64, 0, len(s.pinned))
	for id := range s.pinned {
		out = append(out, id)
	}
	return out
}
