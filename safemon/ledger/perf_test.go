package ledger

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kinematics"
	"repro/safemon/guard"
)

// BenchmarkLedgerAppend measures the hot-path enqueue: one stack-built
// verdict event per iteration through Recorder.Verdict into a live
// appender. benchguard.sh gates it at 0 allocs/op — a slow disk may drop
// events, but emitting must never allocate or block.
func BenchmarkLedgerAppend(b *testing.B) {
	a := NewAppender(NewMemoryStore(0), Options{Queue: 1 << 16})
	defer a.Close()
	rec := NewRecorder(a, "context", "v1", "default")
	var input kinematics.Frame
	for i := range input {
		input[i] = float64(i) * 0.1
	}
	v := core.FrameVerdict{FrameIndex: 3, Gesture: 2, Score: 1.25}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Verdict(v, &input)
	}
}

// TestEmitZeroAlloc pins the enqueue path at zero allocations per event
// for every hot-path recorder call.
func TestEmitZeroAlloc(t *testing.T) {
	a := NewAppender(NewMemoryStore(0), Options{Queue: 1 << 16, FlushEvery: time.Hour})
	defer a.Close()
	rec := NewRecorder(a, "context", "v1", "default")
	var input kinematics.Frame
	v := core.FrameVerdict{FrameIndex: 3, Gesture: 2, Score: 1.25, Unsafe: true}
	d := guard.Decision{Action: guard.ActionWarn, Changed: true, FrameIndex: 3, AlertFrame: 3, Score: 1.25}
	if n := testing.AllocsPerRun(200, func() {
		rec.Verdict(v, &input)
		rec.Action(d)
	}); n != 0 {
		t.Fatalf("hot-path emit allocates %.1f allocs/op, want 0", n)
	}
}
