package ledger

import (
	"sync"
	"sync/atomic"
	"time"
)

// Options tunes an Appender. The zero value selects the documented
// defaults.
type Options struct {
	// Queue bounds the emit queue in events; <= 0 means 4096. When the
	// queue is full Emit drops the event and counts it — it never blocks
	// the hot path.
	Queue int
	// Batch caps how many events one store Append call carries; <= 0
	// means 256.
	Batch int
	// FlushEvery is the idle flush interval of the writer goroutine;
	// <= 0 means 200 ms.
	FlushEvery time.Duration
}

func (o Options) withDefaults() Options {
	if o.Queue <= 0 {
		o.Queue = 4096
	}
	if o.Batch <= 0 {
		o.Batch = 256
	}
	if o.FlushEvery <= 0 {
		o.FlushEvery = 200 * time.Millisecond
	}
	return o
}

// Snapshot is the appender's observability counters, embedded in the
// serve layer's /stats payload.
type Snapshot struct {
	// Queue and QueueCap are the current emit-queue depth and bound.
	Queue    int `json:"queue"`
	QueueCap int `json:"queue_cap"`
	// Appended counts events durably handed to the store; Batches counts
	// the store Append calls that carried them.
	Appended uint64 `json:"appended"`
	Batches  uint64 `json:"batches"`
	// Dropped counts events lost to a full queue or an unencodable
	// payload; Errors counts store Append failures (each failure drops
	// the whole batch).
	Dropped uint64 `json:"dropped"`
	Errors  uint64 `json:"errors"`
	// Bytes is the store's current footprint; Segments and ActiveSegment
	// describe the disk layout (zero/empty for memory stores).
	Bytes         int64  `json:"bytes"`
	Segments      int    `json:"segments,omitempty"`
	ActiveSegment string `json:"active_segment,omitempty"`
	// LastSeq is the highest sequence number assigned so far.
	LastSeq uint64 `json:"last_seq"`
}

// Appender is the async batched writer between the streaming hot path
// and a Store. Emit copies the event into a bounded queue and returns
// immediately — zero allocations, never blocking on the store — while a
// single writer goroutine assigns sequence numbers, batches events, and
// appends them. Backpressure is expressed as explicit drops, not stalls.
type Appender struct {
	store Store
	opts  Options

	queue chan Event
	quit  chan struct{}
	done  chan struct{}
	flush chan chan struct{}

	seq     atomic.Uint64 // last assigned sequence number
	session atomic.Uint64 // last assigned session ID
	dropped atomic.Uint64
	errs    atomic.Uint64
	batches atomic.Uint64
	writes  atomic.Uint64

	closeOnce sync.Once
	closeErr  error
}

// NewAppender starts an appender over store. The appender owns the
// store: Close drains the queue, syncs, and closes it. Sequence numbers
// continue from the store's last retained event and session IDs from its
// largest seen session, so both stay unique across restarts.
func NewAppender(store Store, opts Options) *Appender {
	opts = opts.withDefaults()
	a := &Appender{
		store: store,
		opts:  opts,
		queue: make(chan Event, opts.Queue),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
		flush: make(chan chan struct{}),
	}
	_, last := store.Bounds()
	a.seq.Store(last)
	a.session.Store(store.MaxSession())
	go a.run()
	return a
}

// NextSession allocates a fresh store-unique session ID.
func (a *Appender) NextSession() uint64 { return a.session.Add(1) }

// Emit enqueues one event without blocking: if the queue is full or the
// event exceeds the codec's caps, it is dropped and counted. The event
// is copied; e remains owned by the caller. Safe for concurrent use and
// allocation-free (the nil receiver is a no-op, so call sites need no
// ledger-enabled branch).
func (a *Appender) Emit(e *Event) {
	if a == nil {
		return
	}
	if !encodable(e) {
		a.dropped.Add(1)
		return
	}
	select {
	case a.queue <- *e:
	default:
		a.dropped.Add(1)
	}
}

// run is the writer goroutine: dequeue, stamp sequence numbers, batch,
// append.
func (a *Appender) run() {
	defer close(a.done)
	ticker := time.NewTicker(a.opts.FlushEvery)
	defer ticker.Stop()
	batch := make([]Event, 0, a.opts.Batch)
	for {
		select {
		case e := <-a.queue:
			batch = a.gather(append(batch, e))
		case <-ticker.C:
			batch = a.write(batch)
		case ack := <-a.flush:
			batch = a.write(a.drain(batch))
			if err := a.store.Sync(); err != nil {
				// Flush is the drain-time durability barrier; a failed
				// fsync must show up in /stats, not vanish.
				a.errs.Add(1)
			}
			close(ack)
		case <-a.quit:
			batch = a.write(a.drain(batch))
			return
		}
	}
}

// gather pulls whatever else is already queued (up to the batch cap) and
// writes once the batch is full.
func (a *Appender) gather(batch []Event) []Event {
	for len(batch) < a.opts.Batch {
		select {
		case e := <-a.queue:
			batch = append(batch, e)
		default:
			return a.write(batch)
		}
	}
	return a.write(batch)
}

// drain empties the queue completely, writing full batches as it goes.
func (a *Appender) drain(batch []Event) []Event {
	for {
		select {
		case e := <-a.queue:
			batch = append(batch, e)
			if len(batch) >= a.opts.Batch {
				batch = a.write(batch)
			}
		default:
			return batch
		}
	}
}

// write stamps sequence numbers and appends the batch, returning the
// reset slice.
func (a *Appender) write(batch []Event) []Event {
	if len(batch) == 0 {
		return batch
	}
	seq := a.seq.Load()
	for i := range batch {
		seq++
		batch[i].Seq = seq
	}
	a.seq.Store(seq)
	if err := a.store.Append(batch); err != nil {
		a.errs.Add(1)
		a.dropped.Add(uint64(len(batch)))
	} else {
		a.writes.Add(uint64(len(batch)))
		a.batches.Add(1)
	}
	return batch[:0]
}

// Flush blocks until every event emitted before the call is handed to
// the store and the store is synced. It is a no-op after Close.
func (a *Appender) Flush() {
	if a == nil {
		return
	}
	ack := make(chan struct{})
	select {
	case a.flush <- ack:
		<-ack
	case <-a.done:
	}
}

// Close drains the queue, syncs, and closes the store. Emit remains safe
// to call afterwards (events are counted as dropped once the queue
// fills; the queue channel is never closed).
func (a *Appender) Close() error {
	if a == nil {
		return nil
	}
	a.closeOnce.Do(func() {
		close(a.quit)
		<-a.done
		if err := a.store.Sync(); err != nil {
			a.closeErr = err
		}
		if err := a.store.Close(); err != nil && a.closeErr == nil {
			a.closeErr = err
		}
	})
	return a.closeErr
}

// Store exposes the underlying store for scans (incident listing and
// replay read through it while the appender keeps writing).
func (a *Appender) Store() Store {
	if a == nil {
		return nil
	}
	return a.store
}

// Stats snapshots the appender's counters.
func (a *Appender) Stats() Snapshot {
	if a == nil {
		return Snapshot{}
	}
	s := Snapshot{
		Queue:    len(a.queue),
		QueueCap: cap(a.queue),
		Appended: a.writes.Load(),
		Batches:  a.batches.Load(),
		Dropped:  a.dropped.Load(),
		Errors:   a.errs.Load(),
		Bytes:    a.store.SizeBytes(),
		LastSeq:  a.seq.Load(),
	}
	if d, ok := a.store.(*DiskStore); ok {
		s.Segments, s.ActiveSegment = d.Segments()
	}
	return s
}
