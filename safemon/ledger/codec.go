package ledger

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/kinematics"
	"repro/safemon/guard"
)

// Segment record framing: every record is
//
//	u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//
// in little-endian byte order. The payload is the canonical binary
// encoding of one Event (encodeEvent); decodeEvent rejects anything that
// is not a byte-exact canonical encoding, so decode(encode(e)) == e and
// encode(decode(p)) == p — the round-trip property FuzzReadSegment pins.

const (
	// recordHeaderLen is the length+CRC prefix of every record.
	recordHeaderLen = 8
	// maxEventBytes caps one encoded event, mirroring the serve layer's
	// 1 MB no-unbounded-buffering contract: generous for a labels header
	// of a very long trajectory, fatal for a corrupt length field.
	maxEventBytes = 1 << 20
	// maxStringLen caps each metadata string (backend, model, policy,
	// note); operational names are short, so anything longer is corrupt.
	maxStringLen = 1 << 10
	// maxLabels caps a session-start label sequence.
	maxLabels = 1 << 18
	// inputLen is the number of kinematic variables in one frame.
	inputLen = kinematics.FrameSize

	// event payload flags
	flagUnsafe   = 1 << 0
	flagHasInput = 1 << 1
)

// Decode-side sentinels. ErrTornRecord specifically reports a record that
// is structurally incomplete (short header, short payload) — the shape a
// crash mid-append leaves behind — as opposed to one that is present but
// corrupt (bad CRC, malformed payload).
var (
	ErrTornRecord    = errors.New("ledger: torn record")
	ErrCorruptRecord = errors.New("ledger: corrupt record")
)

// appendEvent appends e's framed record (header + canonical payload) to
// buf and returns the extended slice.
func appendEvent(buf []byte, e *Event) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // header backfilled below
	p := len(buf)
	buf = appendPayload(buf, e)
	payload := buf[p:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.ChecksumIEEE(payload))
	return buf
}

// appendPayload appends the canonical event encoding.
func appendPayload(buf []byte, e *Event) []byte {
	buf = append(buf, byte(e.Kind))
	buf = binary.LittleEndian.AppendUint64(buf, e.Seq)
	buf = binary.LittleEndian.AppendUint64(buf, e.Session)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.WallNS))
	buf = appendString(buf, e.Backend)
	buf = appendString(buf, e.Model)
	buf = appendString(buf, e.Policy)
	buf = appendString(buf, e.Note)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(e.FrameIndex))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Gesture))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Score))
	var flags byte
	if e.Unsafe {
		flags |= flagUnsafe
	}
	if e.HasInput {
		flags |= flagHasInput
	}
	buf = append(buf, flags, byte(e.Action))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(e.AlertFrame))
	if e.HasInput {
		for _, v := range e.Input {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.Labels)))
	for _, l := range e.Labels {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(l))
	}
	return buf
}

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

// encodedSize returns the exact payload length appendPayload would
// produce for e. It must mirror appendPayload field for field: the
// writer-side cap check compares it against maxEventBytes, the same
// bound ReadSegment enforces on the length prefix.
func encodedSize(e *Event) int {
	n := 1 + // kind
		8 + 8 + 8 + // seq, session, wall
		2 + len(e.Backend) + 2 + len(e.Model) + 2 + len(e.Policy) + 2 + len(e.Note) +
		4 + 4 + 8 + // frame index, gesture, score
		2 + // flags, action
		4 + // alert frame
		4 + 4*len(e.Labels)
	if e.HasInput {
		n += 8 * inputLen
	}
	return n
}

// encodable reports whether e fits the codec's caps; the appender drops
// (and counts) events that do not rather than poisoning the segment.
// The encodedSize bound is the authoritative check: every event it
// admits frames to a record ReadSegment accepts, so a single oversized
// event (e.g. a session-start whose labels alone approach maxEventBytes)
// can never make the whole segment scan as corrupt.
func encodable(e *Event) bool {
	return e.Kind.valid() &&
		len(e.Backend) <= maxStringLen && len(e.Model) <= maxStringLen &&
		len(e.Policy) <= maxStringLen && len(e.Note) <= maxStringLen &&
		len(e.Labels) <= maxLabels &&
		encodedSize(e) <= maxEventBytes
}

// payloadReader is a bounds-checked cursor over one record payload.
type payloadReader struct {
	buf []byte
	off int
	err error
}

func (r *payloadReader) u8() byte {
	if r.err != nil || r.off+1 > len(r.buf) {
		r.fail()
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *payloadReader) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

func (r *payloadReader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *payloadReader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *payloadReader) str() string {
	n := int(r.u16())
	if r.err != nil {
		return ""
	}
	if n > maxStringLen || r.off+n > len(r.buf) {
		r.fail()
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

func (r *payloadReader) fail() {
	if r.err == nil {
		r.err = ErrCorruptRecord
	}
}

// decodeEvent parses one canonical payload into e. It never panics on
// malformed input and rejects any payload that is not the byte-exact
// canonical encoding of the event it describes (trailing bytes, unknown
// flags, out-of-range enums).
func decodeEvent(payload []byte, e *Event) error {
	r := payloadReader{buf: payload}
	*e = Event{}
	e.Kind = Kind(r.u8())
	e.Seq = r.u64()
	e.Session = r.u64()
	e.WallNS = int64(r.u64())
	e.Backend = r.str()
	e.Model = r.str()
	e.Policy = r.str()
	e.Note = r.str()
	e.FrameIndex = int32(r.u32())
	e.Gesture = int32(r.u32())
	e.Score = math.Float64frombits(r.u64())
	flags := r.u8()
	e.Action = guard.Action(r.u8())
	if e.Action > guard.ActionRetract {
		r.fail()
	}
	e.AlertFrame = int32(r.u32())
	if flags&^(flagUnsafe|flagHasInput) != 0 {
		r.fail()
	}
	e.Unsafe = flags&flagUnsafe != 0
	e.HasInput = flags&flagHasInput != 0
	if e.HasInput {
		for i := range e.Input {
			e.Input[i] = math.Float64frombits(r.u64())
		}
	}
	nLabels := int(r.u32())
	if r.err == nil && nLabels > 0 {
		if nLabels > maxLabels || r.off+4*nLabels > len(r.buf) {
			r.fail()
		} else {
			e.Labels = make([]int32, nLabels)
			for i := range e.Labels {
				e.Labels[i] = int32(r.u32())
			}
		}
	}
	if r.err != nil {
		return r.err
	}
	if !e.Kind.valid() || r.off != len(payload) {
		return ErrCorruptRecord
	}
	return nil
}

// ReadSegment decodes the framed records in data, calling fn (when
// non-nil) for each decoded event until it returns false. It returns the
// byte length of the clean record prefix and, when decoding stopped
// early, the reason: ErrTornRecord for a structurally incomplete tail
// (the shape a crash leaves), ErrCorruptRecord wrapped with the offset
// for a CRC or payload failure. It never panics, whatever the bytes —
// the property FuzzReadSegment pins. Crash recovery truncates a segment
// to the returned prefix length instead of refusing to open it.
func ReadSegment(data []byte, fn func(*Event) bool) (clean int64, err error) {
	var e Event
	off := 0
	for off < len(data) {
		if off+recordHeaderLen > len(data) {
			return int64(off), ErrTornRecord
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxEventBytes {
			return int64(off), fmt.Errorf("%w at offset %d: length %d exceeds %d", ErrCorruptRecord, off, n, maxEventBytes)
		}
		if off+recordHeaderLen+n > len(data) {
			return int64(off), ErrTornRecord
		}
		payload := data[off+recordHeaderLen : off+recordHeaderLen+n]
		if crc32.ChecksumIEEE(payload) != crc {
			return int64(off), fmt.Errorf("%w at offset %d: CRC mismatch", ErrCorruptRecord, off)
		}
		if err := decodeEvent(payload, &e); err != nil {
			return int64(off), fmt.Errorf("%w at offset %d: %v", ErrCorruptRecord, off, err)
		}
		off += recordHeaderLen + n
		if fn != nil && !fn(&e) {
			return int64(off), nil
		}
	}
	return int64(off), nil
}

// ReadSegmentFrom is ReadSegment over a reader (DiskStore scans segment
// files through it without loading more than one segment at a time).
func ReadSegmentFrom(r io.Reader, limit int64, fn func(*Event) bool) (int64, error) {
	data, err := io.ReadAll(io.LimitReader(r, limit))
	if err != nil {
		return 0, err
	}
	return ReadSegment(data, fn)
}
