package ledger

import (
	"bytes"
	"errors"
	"testing"

	"repro/safemon/guard"
)

// FuzzReadSegment fuzzes the segment decoder end to end: whatever the
// bytes — torn tails, bit flips, oversized length fields, random garbage
// — ReadSegment must never panic, must report a clean prefix no longer
// than the input that itself re-reads without error, and every event it
// does accept must survive an encode round trip byte-exactly (the
// canonical-encoding property recovery and replay depend on).
func FuzzReadSegment(f *testing.F) {
	// Seed with well-formed segments of each kind, then broken variants.
	events := []Event{
		{Kind: KindSessionStart, Seq: 1, Session: 1, WallNS: 1, Backend: "context", Model: "v1", Policy: "default", Labels: []int32{1, 2, 3}},
		{Kind: KindVerdict, Seq: 2, Session: 1, WallNS: 2, Backend: "context", FrameIndex: 0, Gesture: 2, Score: 1.5, Unsafe: true, HasInput: true},
		{Kind: KindAction, Seq: 3, Session: 1, WallNS: 3, Backend: "context", Action: guard.ActionSafeStop, AlertFrame: 0},
		{Kind: KindSessionEnd, Seq: 4, Session: 1, WallNS: 4, Note: "eof"},
		{Kind: KindModelSwap, Seq: 5, WallNS: 5, Backend: "context", Model: "v2", Note: "v1"},
	}
	var whole []byte
	for i := range events {
		one := appendEvent(nil, &events[i])
		f.Add(one)
		whole = append(whole, one...)
	}
	f.Add(whole)
	f.Add(whole[:len(whole)-3])      // torn tail
	f.Add(whole[:recordHeaderLen-2]) // short header
	flipped := append([]byte(nil), whole...)
	flipped[len(flipped)/3] ^= 0x10 // bit flip mid-payload
	f.Add(flipped)
	huge := append([]byte(nil), whole...)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0xff // absurd length
	f.Add(huge)
	f.Add([]byte{})
	f.Add([]byte("not a segment at all, just prose"))
	f.Add(bytes.Repeat([]byte{0}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		var decoded []Event
		clean, err := ReadSegment(data, func(e *Event) bool {
			cp := *e
			cp.Labels = append([]int32(nil), e.Labels...)
			decoded = append(decoded, cp)
			return true
		})
		if clean < 0 || clean > int64(len(data)) {
			t.Fatalf("clean prefix %d out of range for %d input bytes", clean, len(data))
		}
		if err != nil && !errors.Is(err, ErrTornRecord) && !errors.Is(err, ErrCorruptRecord) {
			t.Fatalf("unexpected error class: %v", err)
		}
		// The clean prefix must be exactly the canonical re-encoding of
		// the decoded events, and re-read cleanly.
		var reenc []byte
		for i := range decoded {
			reenc = appendEvent(reenc, &decoded[i])
		}
		if !bytes.Equal(reenc, data[:clean]) {
			t.Fatalf("clean prefix is not canonical: %d decoded events re-encode to %d bytes, prefix is %d", len(decoded), len(reenc), clean)
		}
		n := 0
		reclean, rerr := ReadSegment(data[:clean], func(e *Event) bool { n++; return true })
		if rerr != nil || reclean != clean || n != len(decoded) {
			t.Fatalf("clean prefix re-read: n=%d clean=%d err=%v", n, reclean, rerr)
		}
	})
}
