package ledger

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/kinematics"
	"repro/safemon/guard"
)

// sampleEvents returns a representative mix of every event kind.
func sampleEvents() []Event {
	var input kinematics.Frame
	for i := range input {
		input[i] = float64(i) * 0.25
	}
	return []Event{
		{Kind: KindSessionStart, Seq: 1, Session: 7, WallNS: 1000, Backend: "context", Model: "v3", Policy: "default", Labels: []int32{1, 2, 3, 2}},
		{Kind: KindVerdict, Seq: 2, Session: 7, WallNS: 2000, Backend: "context", Model: "v3", Policy: "default", FrameIndex: 0, Gesture: 2, Score: 0.75, Unsafe: false, HasInput: true, Input: input},
		{Kind: KindVerdict, Seq: 3, Session: 7, WallNS: 3000, Backend: "context", Model: "v3", Policy: "default", FrameIndex: 1, Gesture: 2, Score: 9.5, Unsafe: true, HasInput: true, Input: input},
		{Kind: KindAction, Seq: 4, Session: 7, WallNS: 3500, Backend: "context", Policy: "default", FrameIndex: 1, Score: 9.5, Action: guard.ActionSafeStop, AlertFrame: 1},
		{Kind: KindSessionEnd, Seq: 5, Session: 7, WallNS: 4000, Backend: "context", FrameIndex: 2, Note: "eof"},
		{Kind: KindModelSwap, Seq: 6, WallNS: 5000, Backend: "context", Model: "v4", Note: "v3"},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	events := sampleEvents()
	var buf []byte
	for i := range events {
		buf = appendEvent(buf, &events[i])
	}
	var got []Event
	clean, err := ReadSegment(buf, func(e *Event) bool {
		cp := *e
		cp.Labels = append([]int32(nil), e.Labels...)
		got = append(got, cp)
		return true
	})
	if err != nil {
		t.Fatalf("ReadSegment: %v", err)
	}
	if clean != int64(len(buf)) {
		t.Fatalf("clean prefix %d, want %d", clean, len(buf))
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i := range events {
		want, have := events[i], got[i]
		if len(want.Labels) == 0 {
			want.Labels = nil
		}
		if !eventsEqual(&want, &have) {
			t.Errorf("event %d: got %+v, want %+v", i, have, want)
		}
	}
	// Re-encoding the decoded events must reproduce the bytes exactly:
	// the canonical-encoding property.
	var buf2 []byte
	for i := range got {
		buf2 = appendEvent(buf2, &got[i])
	}
	if !bytes.Equal(buf, buf2) {
		t.Fatal("re-encoded segment differs from original bytes")
	}
}

func eventsEqual(a, b *Event) bool {
	if a.Seq != b.Seq || a.Kind != b.Kind || a.Session != b.Session || a.WallNS != b.WallNS ||
		a.Backend != b.Backend || a.Model != b.Model || a.Policy != b.Policy || a.Note != b.Note ||
		a.FrameIndex != b.FrameIndex || a.Gesture != b.Gesture || a.Score != b.Score ||
		a.Unsafe != b.Unsafe || a.Action != b.Action || a.AlertFrame != b.AlertFrame ||
		a.HasInput != b.HasInput || a.Input != b.Input || len(a.Labels) != len(b.Labels) {
		return false
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			return false
		}
	}
	return true
}

func TestReadSegmentTornTail(t *testing.T) {
	events := sampleEvents()
	var buf []byte
	for i := range events {
		buf = appendEvent(buf, &events[i])
	}
	full := int64(len(buf))
	// Cutting anywhere inside the last record must report a torn tail
	// with the clean prefix ending exactly before that record.
	var prefix []byte
	for i := range events[:len(events)-1] {
		prefix = appendEvent(prefix, &events[i])
	}
	lastStart := int64(len(prefix))
	for cut := full - 1; cut > lastStart; cut-- {
		clean, err := ReadSegment(buf[:cut], nil)
		if !errors.Is(err, ErrTornRecord) {
			t.Fatalf("cut %d: err = %v, want ErrTornRecord", cut, err)
		}
		if clean != lastStart {
			t.Fatalf("cut %d: clean %d, want %d", cut, clean, lastStart)
		}
	}
	// The clean prefix must itself read back without error.
	n := 0
	clean, err := ReadSegment(buf[:lastStart], func(e *Event) bool { n++; return true })
	if err != nil || clean != lastStart || n != len(events)-1 {
		t.Fatalf("clean prefix reread: n=%d clean=%d err=%v", n, clean, err)
	}
}

func TestReadSegmentCorruptRecord(t *testing.T) {
	events := sampleEvents()
	var buf []byte
	for i := range events {
		buf = appendEvent(buf, &events[i])
	}
	// Flip a payload byte in the middle: CRC must catch it and the error
	// must be corrupt, not torn.
	mut := append([]byte(nil), buf...)
	mut[len(mut)/2] ^= 0x40
	_, err := ReadSegment(mut, nil)
	if !errors.Is(err, ErrCorruptRecord) && !errors.Is(err, ErrTornRecord) {
		t.Fatalf("bit flip: err = %v, want corrupt or torn", err)
	}
	// An absurd length field is corrupt, never a huge allocation.
	bad := append([]byte(nil), buf...)
	bad[0], bad[1], bad[2], bad[3] = 0xff, 0xff, 0xff, 0x7f
	if _, err := ReadSegment(bad, nil); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("oversized length: err = %v, want ErrCorruptRecord", err)
	}
}

func TestEncodableCapsRecordSize(t *testing.T) {
	// The largest label count the codec admits: everything encodable must
	// frame to a record ReadSegment accepts.
	base := Event{Kind: KindSessionStart, Seq: 1, Session: 1, Backend: "context", Model: "v1", Policy: "default"}
	fit := (maxEventBytes - encodedSize(&base)) / 4
	if fit > maxLabels {
		fit = maxLabels
	}
	big := base
	big.Labels = make([]int32, fit)
	if !encodable(&big) {
		t.Fatalf("event with %d labels not encodable", fit)
	}
	buf := appendEvent(nil, &big)
	n := 0
	if clean, err := ReadSegment(buf, func(e *Event) bool { n++; return true }); err != nil || clean != int64(len(buf)) || n != 1 {
		t.Fatalf("boundary event rejected by its own decoder: n=%d clean=%d err=%v", n, clean, err)
	}

	// One label more and the record would exceed maxEventBytes: the
	// writer must refuse it, because ReadSegment would call the whole
	// segment corrupt at that record.
	over := base
	over.Labels = make([]int32, fit+1)
	if encodable(&over) {
		t.Fatalf("event encoding to %d bytes (> %d) passed encodable", encodedSize(&over), maxEventBytes)
	}
}

func TestEmitDropsOversizedEventWithoutPoisoningSegment(t *testing.T) {
	// The review scenario: a session-start whose labels fit maxLabels but
	// encode past maxEventBytes must be dropped at Emit, not written —
	// otherwise one stream makes every subsequent Scan fail and recovery
	// truncate the tail.
	dir := t.TempDir()
	s, err := OpenDisk(dir, DiskConfig{})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAppender(s, Options{})
	oversized := Event{Kind: KindSessionStart, Session: 1, Labels: make([]int32, maxLabels)}
	a.Emit(&oversized)
	good := Event{Kind: KindVerdict, Session: 1, HasInput: true}
	a.Emit(&good)
	a.Flush()
	if st := a.Stats(); st.Dropped != 1 || st.Appended != 1 {
		t.Fatalf("stats = %+v, want 1 dropped / 1 appended", st)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// The segment must reopen clean: nothing truncated, the good event
	// retained.
	s2, err := OpenDisk(dir, DiskConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.RecoveredBytes() != 0 {
		t.Fatalf("recovery truncated %d bytes of a segment that must be clean", s2.RecoveredBytes())
	}
	n := 0
	if err := s2.Scan(0, func(e *Event) bool { n++; return true }); err != nil {
		t.Fatalf("scan after oversized emit: %v", err)
	}
	if n != 1 {
		t.Fatalf("retained %d events, want 1", n)
	}
}

// failingSyncStore simulates an fsync failure at the durability barrier.
type failingSyncStore struct{ *MemoryStore }

func (s *failingSyncStore) Sync() error { return errors.New("fsync failed") }

func TestFlushCountsSyncFailure(t *testing.T) {
	a := NewAppender(&failingSyncStore{NewMemoryStore(0)}, Options{})
	e := Event{Kind: KindVerdict, Session: 1}
	a.Emit(&e)
	a.Flush()
	if st := a.Stats(); st.Errors == 0 {
		t.Fatalf("flush-time sync failure invisible in stats: %+v", st)
	}
	a.Close()
}

func TestMemoryStoreRing(t *testing.T) {
	s := NewMemoryStore(4)
	for i := 1; i <= 6; i++ {
		e := Event{Kind: KindVerdict, Seq: uint64(i), Session: uint64(i)}
		if err := s.Append([]Event{e}); err != nil {
			t.Fatal(err)
		}
	}
	first, last := s.Bounds()
	if first != 3 || last != 6 {
		t.Fatalf("bounds = (%d,%d), want (3,6)", first, last)
	}
	var got []uint64
	s.Scan(0, func(e *Event) bool { got = append(got, e.Seq); return true })
	want := []uint64{3, 4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("scan returned %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan returned %v, want %v", got, want)
		}
	}
	if s.MaxSession() != 6 {
		t.Fatalf("MaxSession = %d, want 6", s.MaxSession())
	}
	// Scan honors the from cursor and early stop.
	var fromThree []uint64
	s.Scan(5, func(e *Event) bool { fromThree = append(fromThree, e.Seq); return false })
	if len(fromThree) != 1 || fromThree[0] != 5 {
		t.Fatalf("cursor scan returned %v, want [5]", fromThree)
	}
}

func TestAppenderBatchingAndFlush(t *testing.T) {
	s := NewMemoryStore(0)
	a := NewAppender(s, Options{Queue: 64, Batch: 8, FlushEvery: time.Hour})
	defer a.Close()
	for i := 0; i < 20; i++ {
		e := Event{Kind: KindVerdict, Session: 1, FrameIndex: int32(i)}
		a.Emit(&e)
	}
	a.Flush()
	st := a.Stats()
	if st.Appended != 20 || st.Dropped != 0 {
		t.Fatalf("stats after flush: %+v", st)
	}
	// Sequence numbers must be dense and monotonic from 1.
	var seqs []uint64
	s.Scan(0, func(e *Event) bool { seqs = append(seqs, e.Seq); return true })
	if len(seqs) != 20 {
		t.Fatalf("store holds %d events, want 20", len(seqs))
	}
	for i, q := range seqs {
		if q != uint64(i+1) {
			t.Fatalf("seq[%d] = %d, want %d", i, q, i+1)
		}
	}
}

func TestAppenderDropsWhenFull(t *testing.T) {
	// A store whose Append blocks until released simulates a stalled disk.
	block := make(chan struct{})
	s := &blockingStore{MemoryStore: NewMemoryStore(0), gate: block}
	a := NewAppender(s, Options{Queue: 4, Batch: 4, FlushEvery: time.Hour})
	// Saturate: 4 queued + whatever the writer grabbed; eventually Emit
	// must start dropping rather than blocking.
	deadline := time.Now().Add(5 * time.Second)
	for a.Stats().Dropped == 0 {
		if time.Now().After(deadline) {
			t.Fatal("appender never dropped despite stalled store")
		}
		e := Event{Kind: KindVerdict, Session: 1}
		a.Emit(&e)
	}
	close(block)
	a.Close()
	if got := a.Stats(); got.Dropped == 0 {
		t.Fatalf("expected drops, stats %+v", got)
	}
}

type blockingStore struct {
	*MemoryStore
	gate    chan struct{}
	blocked bool
}

func (s *blockingStore) Append(events []Event) error {
	if !s.blocked {
		s.blocked = true
		<-s.gate
	}
	return s.MemoryStore.Append(events)
}

func TestAppenderEmitAfterClose(t *testing.T) {
	a := NewAppender(NewMemoryStore(0), Options{})
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// Must not panic; events after close are silently queued or dropped.
	for i := 0; i < 10000; i++ {
		e := Event{Kind: KindVerdict, Session: 1}
		a.Emit(&e)
	}
	a.Flush() // no-op, must not hang
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestNilAppenderAndRecorder(t *testing.T) {
	var a *Appender
	var e Event
	a.Emit(&e)
	a.Flush()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if a.Store() != nil {
		t.Fatal("nil appender store")
	}
	var r *Recorder
	r.Start(nil)
	r.Verdict(e.Verdict(), nil)
	r.Action(guard.Decision{})
	r.End(0, "eof")
	if r.Session() != 0 {
		t.Fatal("nil recorder session")
	}
	ModelSwap(nil, "context", "v2", "v1")
}

func TestRecorderEmitsSessionTrail(t *testing.T) {
	s := NewMemoryStore(0)
	a := NewAppender(s, Options{})
	rec := NewRecorder(a, "context", "v7", "default")
	if rec.Session() == 0 {
		t.Fatal("recorder session not assigned")
	}
	rec.Start([]int32{1, 2})
	var input kinematics.Frame
	input[3] = 1.5
	rec.Verdict(sampleEvents()[1].Verdict(), &input)
	rec.Action(guard.Decision{Action: guard.ActionSafeStop, Changed: true, FrameIndex: 1, AlertFrame: 1, Score: 9.9})
	rec.End(2, "eof")
	ModelSwap(a, "context", "v8", "v7")
	a.Flush()
	var kinds []Kind
	s.Scan(0, func(e *Event) bool {
		kinds = append(kinds, e.Kind)
		if e.Kind == KindVerdict && e.Input != input {
			t.Error("verdict event lost its input frame")
		}
		if e.Kind != KindModelSwap && e.Session != rec.Session() {
			t.Errorf("%v event has session %d, want %d", e.Kind, e.Session, rec.Session())
		}
		return true
	})
	want := []Kind{KindSessionStart, KindVerdict, KindAction, KindSessionEnd, KindModelSwap}
	if len(kinds) != len(want) {
		t.Fatalf("recorded kinds %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("recorded kinds %v, want %v", kinds, want)
		}
	}
	a.Close()
}

func TestIncidentDerivation(t *testing.T) {
	s := NewMemoryStore(0)
	a := NewAppender(s, Options{})
	// Session 1: benign, no latching action — not an incident.
	r1 := NewRecorder(a, "context", "v1", "default")
	r1.Start(nil)
	r1.Verdict(sampleEvents()[1].Verdict(), &kinematics.Frame{})
	r1.End(1, "eof")
	// Session 2: safe-stop — an incident.
	r2 := NewRecorder(a, "envelope", "v2", "strict")
	r2.Start([]int32{4, 4})
	var f kinematics.Frame
	f[0] = 2.5
	r2.Verdict(sampleEvents()[1].Verdict(), &f)
	r2.Verdict(sampleEvents()[2].Verdict(), &f)
	r2.Action(guard.Decision{Action: guard.ActionSafeStop, Changed: true, FrameIndex: 1, AlertFrame: 1, Score: 9.5})
	r2.End(2, "eof")
	a.Flush()

	list, err := ScanIncidents(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 {
		t.Fatalf("incidents = %d, want 1", len(list))
	}
	sum := list[0]
	if sum.Session != r2.Session() || sum.Backend != "envelope" || sum.Policy != "strict" ||
		sum.TriggerAction != "safe-stop" || sum.TriggerFrame != 1 || sum.Frames != 2 || !sum.Closed {
		t.Fatalf("summary %+v", sum)
	}
	inc, err := LoadIncident(s, r2.Session())
	if err != nil {
		t.Fatal(err)
	}
	if len(inc.Inputs) != 2 || len(inc.Verdicts) != 2 || len(inc.Actions) != 1 || inc.EndReason != "eof" {
		t.Fatalf("incident %+v", inc)
	}
	if inc.Inputs[0] != f {
		t.Fatal("incident lost the recorded input frame")
	}
	if len(inc.Labels) != 2 || inc.Labels[0] != 4 {
		t.Fatalf("incident labels %v", inc.Labels)
	}
	if _, err := LoadIncident(s, r1.Session()); !errors.As(err, &ErrNoIncident{}) {
		var none ErrNoIncident
		if !errors.As(err, &none) {
			t.Fatalf("benign session: err = %v, want ErrNoIncident", err)
		}
	}
	a.Close()
}

func TestIncidentIDRoundTrip(t *testing.T) {
	id := IncidentID(42)
	if id != "inc-42" {
		t.Fatalf("IncidentID = %q", id)
	}
	session, err := ParseIncidentID(id)
	if err != nil || session != 42 {
		t.Fatalf("ParseIncidentID = %d, %v", session, err)
	}
	for _, bad := range []string{"", "inc-", "inc-0", "42", "inc-x", "inc--1"} {
		if _, err := ParseIncidentID(bad); err == nil {
			t.Errorf("ParseIncidentID(%q) accepted", bad)
		}
	}
}

func TestLatchActionNames(t *testing.T) {
	for a := guard.ActionNone; a <= guard.ActionRetract; a++ {
		got, ok := LatchAction(a.String())
		if !ok || got != a {
			t.Fatalf("LatchAction(%q) = %v, %v", a.String(), got, ok)
		}
	}
	if _, ok := LatchAction("bogus"); ok {
		t.Fatal("LatchAction accepted bogus name")
	}
}
