// Package ledger is the durable verdict/action event log of the safemon
// monitoring system: an append-only record of everything the monitor saw
// and did, so that a near-miss in production leaves a trace that can be
// diagnosed, replayed, and turned into a regression fixture instead of
// dying with the NDJSON stream that carried it.
//
// The pieces:
//
//   - Event: one append-only log entry — a frame verdict (carrying the
//     input kinematics frame so the stream can be replayed), a guard
//     mitigation action edge, a session lifecycle mark, or a model swap.
//     Every event carries a monotonic sequence number, its session ID,
//     the backend / model version / policy it was produced under, and
//     wall-clock plus frame-index timestamps.
//   - Store: the pluggable persistence interface, with two
//     implementations: MemoryStore (a bounded in-memory ring for tests
//     and development) and DiskStore (length-prefixed binary records with
//     a per-record CRC-32 in fsynced, size-rotated segment files, with
//     retention/compaction by age and bytes and crash-safe recovery that
//     truncates a torn tail instead of refusing to open).
//   - Appender: the async batched writer between the zero-allocation
//     streaming hot path and the store. Emit enqueues one event without
//     blocking and without allocating; a bounded queue plus explicit drop
//     counters means a slow disk degrades the ledger, never the monitor.
//     Recorder is the per-session emission handle.
//   - Incidents: ScanIncidents / LoadIncident materialize an incident —
//     the full recorded input stream of a session on which a latching
//     mitigation (safe-stop, retract) engaged — ready for time-travel
//     replay through any backend and policy (safemon/serve exposes this
//     as GET /v1/incidents and POST /v1/incidents/{id}/replay).
//
// The event log is the source of truth: incidents are derived from it on
// demand rather than stored separately, so anything the log retains can
// be re-materialized after a restart, and compaction is incident-aware
// (a segment backing an incident session is pinned until unpinned).
package ledger

import (
	"time"

	"repro/internal/core"
	"repro/internal/kinematics"
	"repro/safemon/guard"
)

// Kind discriminates event records. The zero value is invalid so that a
// decoded all-zero record can never masquerade as a real event.
type Kind uint8

// Event kinds.
const (
	// KindSessionStart opens a session: backend, model version, policy,
	// and the stream's ground-truth labels when the client supplied them
	// (required to replay ground-truth-context backends faithfully).
	KindSessionStart Kind = 1
	// KindVerdict is one frame verdict together with the input frame that
	// produced it — the replayable unit of the ledger.
	KindVerdict Kind = 2
	// KindAction is one guard mitigation edge (the engine's level
	// changed on this frame).
	KindAction Kind = 3
	// KindSessionEnd closes a session; FrameIndex carries the number of
	// frames pushed and Note the termination reason ("eof", "error: ...").
	KindSessionEnd Kind = 4
	// KindModelSwap records a hot-swap: Model is the version now serving
	// Backend, Note the version it replaced.
	KindModelSwap Kind = 5
)

// String returns the wire name of the kind.
func (k Kind) String() string {
	switch k {
	case KindSessionStart:
		return "session-start"
	case KindVerdict:
		return "verdict"
	case KindAction:
		return "action"
	case KindSessionEnd:
		return "session-end"
	case KindModelSwap:
		return "model-swap"
	default:
		return "invalid"
	}
}

// valid reports whether k is a known kind.
func (k Kind) valid() bool { return k >= KindSessionStart && k <= KindModelSwap }

// Event is one append-only ledger entry. It is a plain value — the hot
// path builds one on the stack and Emit copies it into the queue, so no
// field may require heap allocation on the verdict/action paths (Labels
// is only populated by the off-hot-path session-start event).
type Event struct {
	// Seq is the store-wide monotonic sequence number, assigned by the
	// appender's writer goroutine at dequeue time.
	Seq uint64
	// Kind discriminates the record.
	Kind Kind
	// Session identifies the stream this event belongs to (0 for
	// session-independent events such as model swaps).
	Session uint64
	// WallNS is the wall-clock timestamp in Unix nanoseconds.
	WallNS int64

	// Backend, Model and Policy are the serving context the event was
	// produced under (model version and policy may be empty).
	Backend string
	Model   string
	Policy  string
	// Note carries kind-specific metadata: the session-end reason, or the
	// replaced version of a model swap.
	Note string

	// FrameIndex is the in-stream frame timestamp (the frames-pushed
	// count for session-end events).
	FrameIndex int32
	// Gesture and Score echo the verdict (KindVerdict) or the score that
	// produced the action edge (KindAction).
	Gesture int32
	Score   float64
	// Unsafe echoes the verdict's alert bit.
	Unsafe bool

	// Action is the mitigation level now in force (KindAction).
	Action guard.Action
	// AlertFrame is the active episode's confirmed-alert frame, -1 on a
	// release edge (KindAction).
	AlertFrame int32

	// HasInput marks Input as meaningful (KindVerdict records the frame
	// that produced the verdict so incidents can be replayed).
	HasInput bool
	// Input is the 38-variable kinematics frame behind a verdict.
	Input kinematics.Frame

	// Labels is the stream's ground-truth gesture sequence
	// (KindSessionStart only; nil when the client sent none).
	Labels []int32
}

// Verdict reconstructs the frame verdict a KindVerdict event recorded.
func (e *Event) Verdict() core.FrameVerdict {
	return core.FrameVerdict{
		FrameIndex: int(e.FrameIndex),
		Gesture:    int(e.Gesture),
		Score:      e.Score,
		Unsafe:     e.Unsafe,
	}
}

// Wall returns the event's wall-clock timestamp.
func (e *Event) Wall() time.Time { return time.Unix(0, e.WallNS) }

// Store is the pluggable persistence behind an Appender. Implementations
// must support concurrent Scan while a single writer Appends.
type Store interface {
	// Append durably accepts a batch of events whose Seq fields have
	// already been assigned (strictly increasing across calls).
	Append(events []Event) error
	// Scan calls fn for every retained event with Seq >= from, in
	// sequence order, until fn returns false or the log is exhausted.
	// The *Event is only valid for the duration of the call.
	Scan(from uint64, fn func(*Event) bool) error
	// Bounds reports the first and last retained sequence numbers
	// (0, 0 when the store is empty).
	Bounds() (first, last uint64)
	// MaxSession reports the largest session ID the store has seen, so
	// session IDs stay unique across restarts.
	MaxSession() uint64
	// SizeBytes reports the store's current footprint.
	SizeBytes() int64
	// Sync flushes buffered state to stable storage (a no-op for
	// memory stores).
	Sync() error
	// Close syncs and releases the store.
	Close() error
}

// Pinner is implemented by stores whose compaction can be told to keep
// every segment backing a session — the incident-retention hook.
type Pinner interface {
	// Pin marks a session's events as exempt from compaction.
	Pin(session uint64)
	// Unpin lifts the exemption.
	Unpin(session uint64)
	// Pinned lists the currently pinned sessions.
	Pinned() []uint64
}
