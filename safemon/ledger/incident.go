package ledger

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/kinematics"
	"repro/safemon/guard"
)

// An incident is a session on which a latching mitigation (safe-stop or
// retract) engaged. Incidents are derived from the event log on demand —
// never stored separately — so anything the log retains can be
// re-materialized after a restart, and the log stays the single source
// of truth. The disk store pins incident sessions at append time, so
// retention cannot compact an incident's frames away.

// IncidentSummary is the listing view of one incident.
type IncidentSummary struct {
	// ID is the stable external identifier, "inc-<session>".
	ID string `json:"id"`
	// Session is the ledger session the incident was derived from.
	Session uint64 `json:"session"`
	// Backend, Model and Policy are the serving context the incident was
	// recorded under.
	Backend string `json:"backend"`
	Model   string `json:"model,omitempty"`
	Policy  string `json:"policy,omitempty"`
	// StartNS and TriggerNS are the wall-clock Unix-nanosecond times of
	// the session start and of the latching action edge.
	StartNS   int64 `json:"start_ns"`
	TriggerNS int64 `json:"trigger_ns"`
	// TriggerFrame is the frame index on which the latching action
	// engaged, TriggerAction the level it latched to.
	TriggerFrame  int    `json:"trigger_frame"`
	TriggerAction string `json:"trigger_action"`
	// Frames counts the recorded verdict frames; PeakScore is the
	// largest anomaly score the session produced.
	Frames    int     `json:"frames"`
	PeakScore float64 `json:"peak_score"`
	// Closed reports whether a session-end event was recorded (false for
	// a stream still live or cut off by a crash).
	Closed bool `json:"closed"`
}

// ActionRecord is one guard action edge inside an incident trail.
type ActionRecord struct {
	FrameIndex int     `json:"i"`
	Level      string  `json:"level"`
	AlertFrame int     `json:"alert_frame"`
	Score      float64 `json:"score"`
}

// Incident is the fully materialized incident: the recorded input
// stream plus the original verdict/action trail, ready for replay.
type Incident struct {
	IncidentSummary
	// Labels is the stream's recorded ground-truth gesture sequence (nil
	// when the client sent none).
	Labels []int32 `json:"labels,omitempty"`
	// Inputs is the recorded input stream, one kinematics frame per
	// verdict, in frame order.
	Inputs []kinematics.Frame `json:"-"`
	// Verdicts is the original per-frame verdict trail.
	Verdicts []core.FrameVerdict `json:"verdicts"`
	// Actions is the original mitigation trail (every level edge).
	Actions []ActionRecord `json:"actions"`
	// EndReason is the recorded session termination cause, empty when
	// the session never closed.
	EndReason string `json:"end_reason,omitempty"`
}

// IncidentID renders the external identifier for a session.
func IncidentID(session uint64) string { return fmt.Sprintf("inc-%d", session) }

// ParseIncidentID inverts IncidentID.
func ParseIncidentID(id string) (uint64, error) {
	rest, ok := strings.CutPrefix(id, "inc-")
	if !ok {
		return 0, fmt.Errorf("ledger: malformed incident id %q", id)
	}
	session, err := strconv.ParseUint(rest, 10, 64)
	if err != nil || session == 0 {
		return 0, fmt.Errorf("ledger: malformed incident id %q", id)
	}
	return session, nil
}

// ErrNoIncident reports that a session either is not retained or never
// latched a mitigation.
type ErrNoIncident struct{ Session uint64 }

func (e ErrNoIncident) Error() string {
	return fmt.Sprintf("ledger: no incident for session %d", e.Session)
}

// ScanIncidents derives the incident list from every retained event,
// newest first. limit > 0 caps the result.
func ScanIncidents(store Store, limit int) ([]IncidentSummary, error) {
	if store == nil {
		return nil, nil
	}
	open := map[uint64]*IncidentSummary{} // every session seen
	var order []uint64
	err := store.Scan(0, func(e *Event) bool {
		if e.Session == 0 {
			return true
		}
		s := open[e.Session]
		if s == nil {
			s = &IncidentSummary{Session: e.Session}
			open[e.Session] = s
			order = append(order, e.Session)
		}
		foldSummary(s, e)
		return true
	})
	if err != nil {
		return nil, err
	}
	out := make([]IncidentSummary, 0, len(order))
	for _, session := range order {
		s := open[session]
		if s.TriggerAction == "" {
			continue // no latching action: not an incident
		}
		s.ID = IncidentID(session)
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Session > out[j].Session })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}

// foldSummary folds one event into a session's summary.
func foldSummary(s *IncidentSummary, e *Event) {
	switch e.Kind {
	case KindSessionStart:
		s.Backend = e.Backend
		s.Model = e.Model
		s.Policy = e.Policy
		s.StartNS = e.WallNS
	case KindVerdict:
		s.Frames++
		if e.Score > s.PeakScore {
			s.PeakScore = e.Score
		}
	case KindAction:
		if e.Action.Latches() && s.TriggerAction == "" {
			s.TriggerAction = e.Action.String()
			s.TriggerFrame = int(e.FrameIndex)
			s.TriggerNS = e.WallNS
		}
	case KindSessionEnd:
		s.Closed = true
	}
}

// LoadIncident materializes the full incident for a session: the
// recorded input stream, the original verdict trail, and the original
// action trail. It returns ErrNoIncident when the session is not
// retained or never latched a mitigation.
func LoadIncident(store Store, session uint64) (*Incident, error) {
	if store == nil {
		return nil, ErrNoIncident{Session: session}
	}
	inc := &Incident{IncidentSummary: IncidentSummary{ID: IncidentID(session), Session: session}}
	err := store.Scan(0, func(e *Event) bool {
		if e.Session != session {
			return true
		}
		foldSummary(&inc.IncidentSummary, e)
		switch e.Kind {
		case KindSessionStart:
			inc.Labels = append([]int32(nil), e.Labels...)
		case KindVerdict:
			inc.Verdicts = append(inc.Verdicts, e.Verdict())
			if e.HasInput {
				inc.Inputs = append(inc.Inputs, e.Input)
			}
		case KindAction:
			inc.Actions = append(inc.Actions, ActionRecord{
				FrameIndex: int(e.FrameIndex),
				Level:      e.Action.String(),
				AlertFrame: int(e.AlertFrame),
				Score:      e.Score,
			})
		case KindSessionEnd:
			inc.EndReason = e.Note
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if inc.TriggerAction == "" {
		return nil, ErrNoIncident{Session: session}
	}
	return inc, nil
}

// latchAction maps a trigger-action wire name back to the guard level
// (used by tests and reports).
func LatchAction(name string) (guard.Action, bool) {
	for a := guard.ActionNone; a <= guard.ActionRetract; a++ {
		if a.String() == name {
			return a, true
		}
	}
	return guard.ActionNone, false
}
