package ledger

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/kinematics"
	"repro/safemon/guard"
)

// diskEvent builds one verdict event with an input frame, the dominant
// record shape on disk.
func diskEvent(seq, session uint64, frame int32) Event {
	var input kinematics.Frame
	input[0] = float64(frame)
	return Event{
		Kind: KindVerdict, Seq: seq, Session: session, WallNS: int64(seq) * 1e6,
		Backend: "context", Model: "v1", Policy: "default",
		FrameIndex: frame, Gesture: 2, Score: float64(frame) * 0.5,
		HasInput: true, Input: input,
	}
}

func TestDiskStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDisk(dir, DiskConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var batch []Event
	for i := 1; i <= 10; i++ {
		batch = append(batch, diskEvent(uint64(i), 3, int32(i-1)))
	}
	if err := s.Append(batch); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything must still be there.
	s2, err := OpenDisk(dir, DiskConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	first, last := s2.Bounds()
	if first != 1 || last != 10 {
		t.Fatalf("bounds after reopen = (%d,%d), want (1,10)", first, last)
	}
	if s2.MaxSession() != 3 {
		t.Fatalf("MaxSession = %d, want 3", s2.MaxSession())
	}
	n := 0
	s2.Scan(4, func(e *Event) bool {
		if e.Seq < 4 {
			t.Errorf("scan cursor ignored: seq %d", e.Seq)
		}
		n++
		return true
	})
	if n != 7 {
		t.Fatalf("scan from 4 returned %d events, want 7", n)
	}
}

func TestDiskStoreAppendAfterReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDisk(dir, DiskConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]Event{diskEvent(1, 1, 0)}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := OpenDisk(dir, DiskConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Append([]Event{diskEvent(2, 1, 1)}); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := OpenDisk(dir, DiskConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	var seqs []uint64
	s3.Scan(0, func(e *Event) bool { seqs = append(seqs, e.Seq); return true })
	if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 2 {
		t.Fatalf("after two lifetimes scan = %v, want [1 2]", seqs)
	}
}

func TestDiskStoreTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDisk(dir, DiskConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var batch []Event
	for i := 1; i <= 5; i++ {
		batch = append(batch, diskEvent(uint64(i), 1, int32(i-1)))
	}
	if err := s.Append(batch); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Simulate power loss mid-append: chop bytes off the segment tail.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.led"))
	if len(segs) != 1 {
		t.Fatalf("segments on disk: %v", segs)
	}
	info, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], info.Size()-7); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenDisk(dir, DiskConfig{})
	if err != nil {
		t.Fatalf("recovery refused to open: %v", err)
	}
	defer s2.Close()
	if s2.RecoveredBytes() == 0 {
		t.Fatal("recovery reported no truncated bytes")
	}
	first, last := s2.Bounds()
	if first != 1 || last != 4 {
		t.Fatalf("bounds after torn-tail recovery = (%d,%d), want (1,4)", first, last)
	}
	// The truncated store must accept new appends cleanly.
	if err := s2.Append([]Event{diskEvent(5, 2, 9)}); err != nil {
		t.Fatal(err)
	}
	n := 0
	s2.Scan(0, func(e *Event) bool { n++; return true })
	if n != 5 {
		t.Fatalf("post-recovery scan returned %d events, want 5", n)
	}
}

func TestDiskStoreCorruptMiddleRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDisk(dir, DiskConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var batch []Event
	for i := 1; i <= 5; i++ {
		batch = append(batch, diskEvent(uint64(i), 1, int32(i-1)))
	}
	s.Append(batch)
	s.Close()

	// Flip a byte in the middle of the file: recovery keeps the clean
	// prefix and drops the rest.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.led"))
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenDisk(dir, DiskConfig{})
	if err != nil {
		t.Fatalf("recovery refused to open: %v", err)
	}
	defer s2.Close()
	n := 0
	s2.Scan(0, func(e *Event) bool { n++; return true })
	if n == 0 || n >= 5 {
		t.Fatalf("post-corruption scan returned %d events, want 1..4", n)
	}
}

func TestDiskStoreRotationAndRetention(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so a handful of events rotate several times; budget
	// of ~2 segments forces compaction.
	one := appendEvent(nil, &[]Event{diskEvent(1, 1, 0)}[0])
	segBytes := int64(len(one)) * 3
	s, err := OpenDisk(dir, DiskConfig{SegmentBytes: segBytes, MaxBytes: segBytes * 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 1; i <= 30; i++ {
		if err := s.Append([]Event{diskEvent(uint64(i), uint64(i), int32(i))}); err != nil {
			t.Fatal(err)
		}
	}
	segN, active := s.Segments()
	if segN < 2 || active == "" {
		t.Fatalf("segments = %d active %q, want rotation", segN, active)
	}
	if s.SizeBytes() > segBytes*3 {
		t.Fatalf("retention did not bound size: %d bytes", s.SizeBytes())
	}
	first, last := s.Bounds()
	if first <= 1 || last != 30 {
		t.Fatalf("bounds = (%d,%d): compaction should have advanced first", first, last)
	}
	// Retained events still scan in order.
	prev := uint64(0)
	s.Scan(0, func(e *Event) bool {
		if e.Seq <= prev {
			t.Errorf("out-of-order seq %d after %d", e.Seq, prev)
		}
		prev = e.Seq
		return true
	})
	if prev != 30 {
		t.Fatalf("newest retained seq = %d, want 30", prev)
	}
}

func TestDiskStoreCompactionSkipsPinned(t *testing.T) {
	dir := t.TempDir()
	one := appendEvent(nil, &[]Event{diskEvent(1, 1, 0)}[0])
	segBytes := int64(len(one)) * 2
	s, err := OpenDisk(dir, DiskConfig{SegmentBytes: segBytes, MaxBytes: segBytes})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Session 1 latches a safe-stop in the very first segment: the
	// append path must auto-pin it.
	latch := Event{Kind: KindAction, Seq: 1, Session: 1, WallNS: 1, Backend: "context",
		Action: guard.ActionSafeStop, AlertFrame: 0}
	if err := s.Append([]Event{latch}); err != nil {
		t.Fatal(err)
	}
	for i := 2; i <= 40; i++ {
		if err := s.Append([]Event{diskEvent(uint64(i), uint64(i), int32(i))}); err != nil {
			t.Fatal(err)
		}
	}
	// The pinned session's event must survive aggressive retention.
	found := false
	s.Scan(0, func(e *Event) bool {
		if e.Session == 1 && e.Kind == KindAction {
			found = true
			return false
		}
		return true
	})
	if !found {
		t.Fatal("compaction removed the segment backing a pinned incident")
	}
	pins := s.Pinned()
	if len(pins) != 1 || pins[0] != 1 {
		t.Fatalf("pinned = %v, want [1]", pins)
	}
	// Unpinning releases the backlog on the next compaction trigger.
	s.Unpin(1)
	for i := 41; i <= 50; i++ {
		if err := s.Append([]Event{diskEvent(uint64(i), uint64(i), int32(i))}); err != nil {
			t.Fatal(err)
		}
	}
	still := false
	s.Scan(0, func(e *Event) bool {
		if e.Session == 1 {
			still = true
			return false
		}
		return true
	})
	if still {
		t.Fatal("unpinned incident segment survived compaction")
	}
}

func TestDiskStoreBoundsAfterCompactingToEmptyActive(t *testing.T) {
	dir := t.TempDir()
	// SegmentBytes/MaxBytes of 1 byte: every append rotates and every
	// rotation compacts the sealed predecessor away, so right after
	// rotation the only remaining segment is the fresh, still-empty
	// active one.
	s, err := OpenDisk(dir, DiskConfig{SegmentBytes: 1, MaxBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append([]Event{diskEvent(1, 1, 0)}); err != nil {
		t.Fatal(err)
	}
	// Rotate by hand so the empty-active state is observable (Append
	// normally refills firstSeq before releasing the lock; a failed write
	// after rotation would leave this state behind).
	s.mu.Lock()
	if err := s.rotateLocked(2); err != nil {
		s.mu.Unlock()
		t.Fatal(err)
	}
	first, last := s.firstSeq, s.lastSeq
	s.mu.Unlock()
	if first == 0 || first != last+1 {
		t.Fatalf("bounds over empty active segment = (%d,%d), want first=last+1", first, last)
	}
	// The next append must re-anchor firstSeq on the event that lands.
	if err := s.Append([]Event{diskEvent(2, 2, 1)}); err != nil {
		t.Fatal(err)
	}
	first, last = s.Bounds()
	if first != 2 || last != 2 {
		t.Fatalf("bounds after re-anchor = (%d,%d), want (2,2)", first, last)
	}
}

func TestDiskStoreUnpinCompactsImmediately(t *testing.T) {
	dir := t.TempDir()
	one := appendEvent(nil, &[]Event{diskEvent(1, 1, 0)}[0])
	segBytes := int64(len(one)) * 2
	s, err := OpenDisk(dir, DiskConfig{SegmentBytes: segBytes, MaxBytes: segBytes})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	latch := Event{Kind: KindAction, Seq: 1, Session: 1, WallNS: 1, Backend: "context",
		Action: guard.ActionSafeStop, AlertFrame: 0}
	if err := s.Append([]Event{latch}); err != nil {
		t.Fatal(err)
	}
	for i := 2; i <= 40; i++ {
		if err := s.Append([]Event{diskEvent(uint64(i), uint64(i), int32(i))}); err != nil {
			t.Fatal(err)
		}
	}
	pinnedSize := s.SizeBytes()
	if pinnedSize <= s.cfg.MaxBytes {
		t.Fatalf("pinned incident did not hold size over budget: %d <= %d", pinnedSize, s.cfg.MaxBytes)
	}
	// Acknowledging the incident must reclaim the backlog right away —
	// not at the next rotation, which an idle deployment may never reach.
	s.Unpin(1)
	if got := s.SizeBytes(); got >= pinnedSize {
		t.Fatalf("Unpin did not compact: %d bytes before, %d after", pinnedSize, got)
	}
	gone := true
	s.Scan(0, func(e *Event) bool {
		if e.Session == 1 {
			gone = false
			return false
		}
		return true
	})
	if !gone {
		t.Fatal("unpinned incident events survived immediate compaction")
	}
}

func TestDiskStorePinSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDisk(dir, DiskConfig{})
	if err != nil {
		t.Fatal(err)
	}
	latch := Event{Kind: KindAction, Seq: 1, Session: 9, WallNS: 1, Backend: "context",
		Action: guard.ActionRetract, AlertFrame: 0}
	s.Append([]Event{latch})
	s.Close()
	s2, err := OpenDisk(dir, DiskConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	pins := s2.Pinned()
	if len(pins) != 1 || pins[0] != 9 {
		t.Fatalf("pins after reopen = %v, want [9]", pins)
	}
}

func TestDiskStoreAgeRetention(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1_000_000, 0)
	clock := func() time.Time { return now }
	// One event per segment so the stale event never shares a segment
	// with a fresh one (segment age is its newest event's age).
	s, err := OpenDisk(dir, DiskConfig{
		SegmentBytes: 1, MaxBytes: 1 << 30,
		MaxAge: time.Minute, now: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	old := diskEvent(1, 1, 0)
	old.WallNS = now.Add(-time.Hour).UnixNano()
	s.Append([]Event{old})
	// Fill past the segment bound so the old segment seals, then keep
	// appending fresh events; rotation must age the stale segment out.
	for i := 2; i <= 10; i++ {
		e := diskEvent(uint64(i), uint64(i), int32(i))
		e.WallNS = now.UnixNano()
		s.Append([]Event{e})
	}
	gone := true
	s.Scan(0, func(e *Event) bool {
		if e.Seq == 1 {
			gone = false
			return false
		}
		return true
	})
	if !gone {
		t.Fatal("age retention kept a segment past MaxAge")
	}
}

func TestDiskStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "README.txt"), []byte("not a segment"), 0o644)
	os.WriteFile(filepath.Join(dir, "seg-bogus.led"), []byte("also not"), 0o644)
	s, err := OpenDisk(dir, DiskConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append([]Event{diskEvent(1, 1, 0)}); err != nil {
		t.Fatal(err)
	}
	n := 0
	s.Scan(0, func(e *Event) bool { n++; return true })
	if n != 1 {
		t.Fatalf("scan returned %d events, want 1", n)
	}
}

func TestAppenderOverDiskSeedsFromStore(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDisk(dir, DiskConfig{})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAppender(s, Options{})
	rec := NewRecorder(a, "context", "v1", "default")
	rec.Start(nil)
	rec.End(0, "eof")
	a.Flush()
	firstSession := rec.Session()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenDisk(dir, DiskConfig{})
	if err != nil {
		t.Fatal(err)
	}
	a2 := NewAppender(s2, Options{})
	defer a2.Close()
	rec2 := NewRecorder(a2, "context", "v1", "default")
	if rec2.Session() <= firstSession {
		t.Fatalf("session ID reused across restart: %d then %d", firstSession, rec2.Session())
	}
	rec2.Start(nil)
	a2.Flush()
	// Sequence numbers must continue, not restart.
	var seqs []uint64
	s2.Scan(0, func(e *Event) bool { seqs = append(seqs, e.Seq); return true })
	if len(seqs) != 3 || seqs[2] != 3 {
		t.Fatalf("seqs across restart = %v, want [1 2 3]", seqs)
	}
}
