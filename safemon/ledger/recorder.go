package ledger

import (
	"time"

	"repro/internal/core"
	"repro/internal/kinematics"
	"repro/safemon/guard"
)

// Recorder is the per-session emission handle: it carries the session ID
// and serving context (backend, model version, policy) so the hot path
// emits events with one stack-allocated Event and no string formatting.
// A nil *Recorder is a valid no-op recorder — ledger-less call sites pay
// a nil check per frame and nothing else.
type Recorder struct {
	app     *Appender
	session uint64
	backend string
	model   string
	policy  string
}

// NewRecorder opens a recorder for one session, allocating a fresh
// session ID. Returns nil when a is nil.
func NewRecorder(a *Appender, backend, model, policy string) *Recorder {
	if a == nil {
		return nil
	}
	return &Recorder{
		app:     a,
		session: a.NextSession(),
		backend: backend,
		model:   model,
		policy:  policy,
	}
}

// Session returns the recorder's session ID (0 for a nil recorder).
func (r *Recorder) Session() uint64 {
	if r == nil {
		return 0
	}
	return r.session
}

// event seeds an Event with the recorder's session context.
func (r *Recorder) event(kind Kind) Event {
	return Event{
		Kind:    kind,
		Session: r.session,
		WallNS:  time.Now().UnixNano(),
		Backend: r.backend,
		Model:   r.model,
		Policy:  r.policy,
	}
}

// Start emits the session-start event. labels is the stream's
// ground-truth gesture sequence (nil when the client sent none); it is
// retained by the event, so the caller must not mutate it afterwards.
func (r *Recorder) Start(labels []int32) {
	if r == nil {
		return
	}
	e := r.event(KindSessionStart)
	e.Labels = labels
	r.app.Emit(&e)
}

// Verdict emits one frame verdict together with the input frame that
// produced it — the hot-path call, allocation-free.
func (r *Recorder) Verdict(v core.FrameVerdict, input *kinematics.Frame) {
	if r == nil {
		return
	}
	e := r.event(KindVerdict)
	e.FrameIndex = int32(v.FrameIndex)
	e.Gesture = int32(v.Gesture)
	e.Score = v.Score
	e.Unsafe = v.Unsafe
	if input != nil {
		e.HasInput = true
		e.Input = *input
	}
	r.app.Emit(&e)
}

// Action emits one guard mitigation edge (call only when the decision
// changed the level) — also on the hot path, allocation-free.
func (r *Recorder) Action(d guard.Decision) {
	if r == nil {
		return
	}
	e := r.event(KindAction)
	e.FrameIndex = int32(d.FrameIndex)
	e.Score = d.Score
	e.Action = d.Action
	e.AlertFrame = int32(d.AlertFrame)
	r.app.Emit(&e)
}

// End emits the session-end event; frames is the number of frames pushed
// and reason the termination cause ("eof", "error: ...").
func (r *Recorder) End(frames int, reason string) {
	if r == nil {
		return
	}
	e := r.event(KindSessionEnd)
	e.FrameIndex = int32(frames)
	e.Note = reason
	r.app.Emit(&e)
}

// ModelSwap emits a session-independent model-swap event on a: backend
// now serves version, replacing prev.
func ModelSwap(a *Appender, backend, version, prev string) {
	if a == nil {
		return
	}
	e := Event{
		Kind:    KindModelSwap,
		WallNS:  time.Now().UnixNano(),
		Backend: backend,
		Model:   version,
		Note:    prev,
	}
	a.Emit(&e)
}
