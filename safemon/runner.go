package safemon

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
)

// Runner evaluates a fitted detector over a batch of trajectories
// concurrently: trajectories fan out across Workers goroutines, each
// holding one reusable Session, and the resulting traces are merged into a
// PipelineReport in trajectory order. Because trace aggregation is
// deterministic and sessions are reset between trajectories, a concurrent
// run produces a report identical to the sequential one (as long as the
// detector was built without WithTiming).
type Runner struct {
	// Detector is the fitted backend to evaluate.
	Detector Detector
	// Workers caps the fan-out; <= 0 means GOMAXPROCS.
	Workers int
}

// Traces scores every trajectory, returning traces index-aligned with the
// input. The first error cancels the remaining work.
func (r *Runner) Traces(ctx context.Context, trajs []*Trajectory) ([]*Trace, error) {
	if r.Detector == nil {
		return nil, fmt.Errorf("safemon: Runner has no detector")
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(trajs) {
		workers = len(trajs)
	}
	if workers <= 1 {
		return r.sequentialTraces(ctx, trajs)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	timing := r.Detector.Info().Timing
	traces := make([]*Trace, len(trajs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sess Session
			defer func() {
				if sess != nil {
					sess.Close()
				}
			}()
			for idx := range jobs {
				traj := trajs[idx]
				gt := groundTruthOf(traj)
				var err error
				if sess == nil {
					sess, err = r.Detector.NewSession(WithSessionLabels(gt))
				} else {
					err = sess.Reset(gt)
				}
				if err != nil {
					fail(fmt.Errorf("safemon: trajectory %d: %w", idx, err))
					return
				}
				trace, err := replayTrace(ctx, sess, traj, timing)
				if err != nil {
					fail(fmt.Errorf("safemon: trajectory %d: %w", idx, err))
					return
				}
				traces[idx] = trace
			}
		}()
	}
feed:
	for i := range trajs {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return traces, nil
}

// sequentialTraces is the single-worker path (also used as the reference
// in the Runner determinism test).
func (r *Runner) sequentialTraces(ctx context.Context, trajs []*Trajectory) ([]*Trace, error) {
	traces := make([]*Trace, len(trajs))
	for i, traj := range trajs {
		trace, err := r.Detector.Run(ctx, traj)
		if err != nil {
			return nil, fmt.Errorf("safemon: trajectory %d: %w", i, err)
		}
		traces[i] = trace
	}
	return traces, nil
}

// Run scores the trajectories and aggregates the traces into the pipeline
// report. truths supplies per-trajectory error ground truth; pass nil to
// derive it from the labels.
func (r *Runner) Run(ctx context.Context, trajs []*Trajectory, truths [][]ErrorTruth) (*PipelineReport, error) {
	traces, err := r.Traces(ctx, trajs)
	if err != nil {
		return nil, err
	}
	info := r.Detector.Info()
	return core.EvaluateTraces(trajs, traces, truths, info.Threshold, info.PredictsContext)
}

// groundTruthOf returns the trajectory's gesture labels when fully present.
func groundTruthOf(traj *Trajectory) []int {
	if len(traj.Gestures) == len(traj.Frames) {
		return traj.Gestures
	}
	return nil
}
