package safemon

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
)

// Runner evaluates a fitted detector over a batch of trajectories
// concurrently: trajectories fan out across Workers goroutines, each
// holding one reusable Session, and the resulting traces are merged into a
// PipelineReport in trajectory order. Because trace aggregation is
// deterministic and sessions are reset between trajectories, a concurrent
// run produces a report identical to the sequential one (as long as the
// detector was built without WithTiming).
type Runner struct {
	// Detector is the fitted backend to evaluate.
	Detector Detector
	// Workers caps the fan-out; <= 0 means GOMAXPROCS.
	Workers int
}

// TrajectoryError is the error type Traces and Run return when scoring a
// trajectory fails: it carries the index of the offending trajectory so
// batch callers can retry, skip, or report it without parsing the message.
// Use errors.As to recover it from a wrapped chain.
type TrajectoryError struct {
	// Index is the position of the failing trajectory in the input slice.
	Index int
	// Err is the underlying session or push error.
	Err error
}

func (e *TrajectoryError) Error() string {
	return fmt.Sprintf("safemon: trajectory %d: %v", e.Index, e.Err)
}

// Unwrap exposes the underlying error to errors.Is / errors.As.
func (e *TrajectoryError) Unwrap() error { return e.Err }

// Traces scores every trajectory, returning traces index-aligned with the
// input. The first worker error cancels the remaining work and is returned
// as a *TrajectoryError identifying the trajectory that caused it.
func (r *Runner) Traces(ctx context.Context, trajs []*Trajectory) ([]*Trace, error) {
	if r.Detector == nil {
		return nil, fmt.Errorf("safemon: Runner has no detector")
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(trajs) {
		workers = len(trajs)
	}
	if workers <= 1 {
		return r.sequentialTraces(ctx, trajs)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	timing := r.Detector.Info().Timing
	traces := make([]*Trace, len(trajs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sess Session
			defer func() {
				if sess != nil {
					sess.Close()
				}
			}()
			for idx := range jobs {
				traj := trajs[idx]
				gt := groundTruthOf(traj)
				var err error
				if sess == nil {
					sess, err = r.Detector.NewSession(WithSessionLabels(gt))
				} else {
					err = sess.Reset(gt)
				}
				if err != nil {
					fail(&TrajectoryError{Index: idx, Err: err})
					return
				}
				trace, err := replayTrace(ctx, sess, traj, timing)
				if err != nil {
					fail(&TrajectoryError{Index: idx, Err: err})
					return
				}
				traces[idx] = trace
			}
		}()
	}
feed:
	for i := range trajs {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return traces, nil
}

// sequentialTraces is the single-worker path (also used as the reference
// in the Runner determinism test).
func (r *Runner) sequentialTraces(ctx context.Context, trajs []*Trajectory) ([]*Trace, error) {
	traces := make([]*Trace, len(trajs))
	for i, traj := range trajs {
		trace, err := r.Detector.Run(ctx, traj)
		if err != nil {
			return nil, &TrajectoryError{Index: i, Err: err}
		}
		traces[i] = trace
	}
	return traces, nil
}

// Run scores the trajectories and aggregates the traces into the pipeline
// report. truths supplies per-trajectory error ground truth; pass nil to
// derive it from the labels.
func (r *Runner) Run(ctx context.Context, trajs []*Trajectory, truths [][]ErrorTruth) (*PipelineReport, error) {
	traces, err := r.Traces(ctx, trajs)
	if err != nil {
		return nil, err
	}
	info := r.Detector.Info()
	return core.EvaluateTraces(trajs, traces, truths, info.Threshold, info.PredictsContext)
}

// groundTruthOf returns the trajectory's gesture labels when fully present.
func groundTruthOf(traj *Trajectory) []int {
	if len(traj.Gestures) == len(traj.Frames) {
		return traj.Gestures
	}
	return nil
}
