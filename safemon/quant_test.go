package safemon

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/kinematics"
)

// quantScoreEps is the documented quantization tolerance policy: on the
// golden corpus (held-out fold plus the Table III fault-injection
// campaign), int8 per-output-channel weights may move any per-frame score
// by at most this much, and must flip zero verdicts on decisively-scored
// frames — frames whose float score lies outside the ±eps band around the
// alert threshold. Frames inside the band are already ambiguous at eps
// precision, so flips there are inherent to any lossy weight compression;
// the harness logs them but does not fail on them. The bound is asserted by
// TestQuantizedVerdictTolerance and quoted in the README's Performance
// section; tightening the quantizer must keep it, loosening it is an API
// change.
const quantScoreEps = 2e-2

// quantizedDetector caches, per backend, the quantized twin of the shared
// fitted fixture: the float detector's artifact loaded into a fresh
// detector opened WithQuantized. This exercises the enable-at-load path
// (restore keeps Quantized from the base config) and guarantees the twin
// shares the exact float weights with its reference.
var quantizedFixture struct {
	mu sync.Mutex
	m  map[string]Detector
}

func quantizedDetector(t testing.TB, backend string) Detector {
	t.Helper()
	art := saveArtifact(t, fittedDetector(t, backend))
	quantizedFixture.mu.Lock()
	defer quantizedFixture.mu.Unlock()
	if d, ok := quantizedFixture.m[backend]; ok {
		return d
	}
	det, err := Open(backend, append(quickOptions(backend), WithQuantized())...)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Load(bytes.NewReader(art)); err != nil {
		t.Fatalf("load quantized %s: %v", backend, err)
	}
	if quantizedFixture.m == nil {
		quantizedFixture.m = map[string]Detector{}
	}
	quantizedFixture.m[backend] = det
	return det
}

// goldenCorpus is the tolerance harness input: every held-out trajectory of
// the shared fold plus six fault-injected variants drawn from the Table III
// grid's highest bands (combined grasper + Cartesian faults, the same
// construction the serve campaign test uses). Built once per process.
var goldenCorpusFixture struct {
	once   sync.Once
	corpus []*Trajectory
	err    error
}

func goldenCorpus(t testing.TB) []*Trajectory {
	t.Helper()
	fold := testFold(t)
	goldenCorpusFixture.once.Do(func() {
		corpus := append([]*Trajectory{}, fold.Test...)
		grid := faultinject.Table3Grid()
		for i, bucket := range grid[len(grid)-6:] {
			demo := fold.Test[i%len(fold.Test)]
			gf := faultinject.Fault{
				Variable:    faultinject.GrasperAngle,
				Target:      (bucket.GrasperLo + bucket.GrasperHi) / 2,
				StartFrac:   faultinject.InjectionStartFrac,
				Duration:    (bucket.GrasperDurLo + bucket.GrasperDurHi) / 2,
				Manipulator: kinematics.Left,
			}
			withGrasper, _, _, err := faultinject.Inject(demo, gf)
			if err != nil {
				goldenCorpusFixture.err = err
				return
			}
			cf := faultinject.Fault{
				Variable:    faultinject.CartesianPosition,
				Target:      (bucket.CartLo + bucket.CartHi) / 2,
				StartFrac:   faultinject.InjectionStartFrac,
				Duration:    (bucket.CartDurLo + bucket.CartDurHi) / 2,
				Manipulator: kinematics.Left,
			}
			full, _, _, err := faultinject.Inject(withGrasper, cf)
			if err != nil {
				goldenCorpusFixture.err = err
				return
			}
			corpus = append(corpus, full)
		}
		goldenCorpusFixture.corpus = corpus
	})
	if goldenCorpusFixture.err != nil {
		t.Fatal(goldenCorpusFixture.err)
	}
	return goldenCorpusFixture.corpus
}

// TestQuantizedVerdictTolerance is the golden-tolerance harness (wired into
// make ci as quant-golden): for every nn backend, the quantized twin must
// reproduce the float detector's verdict stream over the golden corpus with
// zero Unsafe flips and per-frame score drift within quantScoreEps.
func TestQuantizedVerdictTolerance(t *testing.T) {
	corpus := goldenCorpus(t)
	for _, backend := range []string{"context-aware", "monolithic", "cascade"} {
		t.Run(backend, func(t *testing.T) {
			float := fittedDetector(t, backend)
			quant := quantizedDetector(t, backend)
			threshold := float.Info().Threshold
			var flips, borderline, frames int
			var maxDelta float64
			for ti, traj := range corpus {
				fs, err := float.NewSession(WithSessionLabels(traj.Gestures))
				if err != nil {
					t.Fatal(err)
				}
				qs, err := quant.NewSession(WithSessionLabels(traj.Gestures))
				if err != nil {
					t.Fatal(err)
				}
				for i := range traj.Frames {
					fv, err := fs.Push(&traj.Frames[i])
					if err != nil {
						t.Fatal(err)
					}
					qv, err := qs.Push(&traj.Frames[i])
					if err != nil {
						t.Fatal(err)
					}
					frames++
					if fv.Unsafe != qv.Unsafe {
						if math.Abs(fv.Score-threshold) <= quantScoreEps {
							borderline++
						} else {
							flips++
							if flips <= 3 {
								t.Errorf("traj %d frame %d: decisive verdict flip (float %+v, int8 %+v)", ti, i, fv, qv)
							}
						}
					}
					if d := math.Abs(fv.Score - qv.Score); d > maxDelta {
						maxDelta = d
					}
				}
				fs.Close()
				qs.Close()
			}
			t.Logf("%s: %d frames, %d decisive flips, %d in-band flips, max |Δscore| = %.3g (eps %.3g)",
				backend, frames, flips, borderline, maxDelta, quantScoreEps)
			if flips != 0 {
				t.Errorf("%d decisive verdict flips, tolerance policy requires 0", flips)
			}
			if maxDelta > quantScoreEps {
				t.Errorf("max score drift %.3g exceeds quantScoreEps %.3g", maxDelta, quantScoreEps)
			}
		})
	}
}

// TestQuantizedArtifactRoundTrip saves a quantized detector and reloads it
// via LoadDetector: the restored detector must carry the int8 section (no
// re-quantization involved) and replay a held-out trajectory with verdicts
// exactly equal to the original quantized detector's.
func TestQuantizedArtifactRoundTrip(t *testing.T) {
	fold := testFold(t)
	traj := fold.Test[0]
	for _, backend := range []string{"context-aware", "monolithic"} {
		t.Run(backend, func(t *testing.T) {
			quant := quantizedDetector(t, backend)
			art := saveArtifact(t, quant)
			reloaded, err := LoadDetector(bytes.NewReader(art))
			if err != nil {
				t.Fatal(err)
			}
			qs, err := quant.NewSession(WithSessionLabels(traj.Gestures))
			if err != nil {
				t.Fatal(err)
			}
			defer qs.Close()
			rs, err := reloaded.NewSession(WithSessionLabels(traj.Gestures))
			if err != nil {
				t.Fatal(err)
			}
			defer rs.Close()
			for i := range traj.Frames {
				qv, err := qs.Push(&traj.Frames[i])
				if err != nil {
					t.Fatal(err)
				}
				rv, err := rs.Push(&traj.Frames[i])
				if err != nil {
					t.Fatal(err)
				}
				if qv != rv {
					t.Fatalf("frame %d: reloaded verdict %+v, original %+v", i, rv, qv)
				}
			}
		})
	}
}

// TestQuantizedBatchedMatchesPush closes the loop between the PR's two
// axes: batched inference over a quantized detector must remain
// bit-identical to per-stream Push on the same quantized detector.
func TestQuantizedBatchedMatchesPush(t *testing.T) {
	fold := testFold(t)
	det := quantizedDetector(t, "context-aware")
	const B = 3
	batcher := NewBatcher(B)
	live := make([]Session, B)
	refs := make([]Session, B)
	trajs := make([]*Trajectory, B)
	maxLen := 0
	for i := 0; i < B; i++ {
		trajs[i] = fold.Test[i%len(fold.Test)]
		var err error
		if live[i], err = det.NewSession(WithSessionLabels(trajs[i].Gestures)); err != nil {
			t.Fatal(err)
		}
		defer live[i].Close()
		if refs[i], err = det.NewSession(WithSessionLabels(trajs[i].Gestures)); err != nil {
			t.Fatal(err)
		}
		defer refs[i].Close()
		if trajs[i].Len() > maxLen {
			maxLen = trajs[i].Len()
		}
	}
	sessions := make([]Session, 0, B)
	frames := make([]*Frame, 0, B)
	idx := make([]int, 0, B)
	verdicts := make([]FrameVerdict, B)
	errs := make([]error, B)
	for f := 0; f < maxLen; f++ {
		sessions, frames, idx = sessions[:0], frames[:0], idx[:0]
		for i := 0; i < B; i++ {
			if f < trajs[i].Len() {
				sessions = append(sessions, live[i])
				frames = append(frames, &trajs[i].Frames[f])
				idx = append(idx, i)
			}
		}
		batcher.PushBatch(sessions, frames, verdicts[:len(sessions)], errs[:len(sessions)])
		for k, i := range idx {
			want, _ := refs[i].Push(frames[k])
			if verdicts[k] != want {
				t.Fatalf("stream %d frame %d: batched %+v, Push %+v", i, f, verdicts[k], want)
			}
		}
	}
}
