package safemon

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Factory constructs an unfitted detector from a resolved Config.
type Factory func(cfg Config) Detector

var registry = struct {
	sync.RWMutex
	m map[string]Factory
}{m: map[string]Factory{}}

// Register makes a backend available to Open under name. It panics on a
// duplicate or empty name, mirroring database/sql's driver registry.
func Register(name string, f Factory) {
	registry.Lock()
	defer registry.Unlock()
	if name == "" || f == nil {
		panic("safemon: Register with empty name or nil factory")
	}
	if _, dup := registry.m[name]; dup {
		panic("safemon: Register called twice for backend " + name)
	}
	registry.m[name] = f
}

// Backends returns the registered backend names, sorted.
func Backends() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, 0, len(registry.m))
	for name := range registry.m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Open constructs an unfitted detector by registry name, e.g.
// Open("context-aware", WithThreshold(0.6)).
func Open(name string, opts ...Option) (Detector, error) {
	registry.RLock()
	f := registry.m[name]
	registry.RUnlock()
	if f == nil {
		return nil, fmt.Errorf("safemon: unknown backend %q (have %s)", name, strings.Join(Backends(), ", "))
	}
	return f(newConfig(opts)), nil
}

// openWith constructs an unfitted detector from an already-resolved Config
// (the cascade backend uses it to derive its stages from its own config).
func openWith(name string, cfg Config) (Detector, error) {
	registry.RLock()
	f := registry.m[name]
	registry.RUnlock()
	if f == nil {
		return nil, fmt.Errorf("safemon: unknown backend %q (have %s)", name, strings.Join(Backends(), ", "))
	}
	return f(cfg), nil
}

func init() {
	Register("context-aware", func(cfg Config) Detector { return newContextDetector(cfg) })
	Register("lookahead", func(cfg Config) Detector {
		cfg.Lookahead = true
		return newContextDetector(cfg)
	})
	Register("monolithic", func(cfg Config) Detector { return newMonolithicDetector(cfg) })
	Register("envelope", func(cfg Config) Detector { return newEnvelopeDetector(cfg) })
	Register("skipchain", func(cfg Config) Detector { return newClassifierDetector(cfg, backendSkipChain) })
	Register("sdsdl", func(cfg Config) Detector { return newClassifierDetector(cfg, backendSDSDL) })
	Register("cascade", func(cfg Config) Detector { return newCascadeDetector(cfg) })
}
