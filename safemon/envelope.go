package safemon

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/baseline"
)

// envelopeDetector adapts baseline.StaticEnvelope: per-feature safe ranges
// learned from safe training frames, flagging frames that leave the
// envelope. Scores are violation magnitudes (0 = inside), so thresholds
// near zero are typical. WithGroundTruthContext selects one envelope per
// gesture (sessions then need WithSessionLabels); otherwise one global
// envelope covers every context.
type envelopeDetector struct {
	cfg Config
	env *baseline.StaticEnvelope
}

func newEnvelopeDetector(cfg Config) *envelopeDetector {
	return &envelopeDetector{cfg: cfg}
}

func (d *envelopeDetector) Info() Info {
	return Info{Name: "envelope", Threshold: d.cfg.Threshold, Timing: d.cfg.Timing}
}

func (d *envelopeDetector) Fit(ctx context.Context, trajs []*Trajectory) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	features := d.cfg.ErrorFeatures
	if features == nil {
		features = CRG()
	}
	env := baseline.NewStaticEnvelope(features, d.cfg.GroundTruthContext)
	if d.cfg.EnvelopeMargin > 0 {
		env.Margin = d.cfg.EnvelopeMargin
	}
	if err := env.Fit(trajs); err != nil {
		return fmt.Errorf("safemon: fit envelope: %w", err)
	}
	d.env = env
	return nil
}

func (d *envelopeDetector) Run(ctx context.Context, traj *Trajectory) (*Trace, error) {
	return runViaSession(ctx, d, traj, d.cfg.Timing)
}

func (d *envelopeDetector) NewSession(opts ...SessionOption) (Session, error) {
	if d.env == nil {
		return nil, ErrNotFitted
	}
	sc := applySessionOptions(opts)
	if d.cfg.GroundTruthContext && sc.groundTruth == nil {
		return nil, errors.New("safemon: per-gesture envelope session needs WithSessionLabels")
	}
	scorer, err := d.env.NewScorer()
	if err != nil {
		return nil, err
	}
	return &envelopeSession{d: d, scorer: scorer, labels: sc.groundTruth}, nil
}

type envelopeSession struct {
	d      *envelopeDetector
	scorer *baseline.EnvelopeScorer
	labels []int
	idx    int
}

func (s *envelopeSession) Push(f *Frame) (FrameVerdict, error) {
	g := 0
	if s.idx < len(s.labels) {
		g = s.labels[s.idx]
	}
	score := s.scorer.Score(f, g)
	v := FrameVerdict{
		FrameIndex: s.idx,
		Gesture:    g,
		Score:      score,
		Unsafe:     score >= s.d.cfg.Threshold,
	}
	s.idx++
	return v, nil
}

func (s *envelopeSession) Reset(groundTruth []int) error {
	if s.d.cfg.GroundTruthContext && groundTruth == nil {
		return errors.New("safemon: per-gesture envelope session needs ground-truth labels")
	}
	s.labels = groundTruth
	s.idx = 0
	return nil
}

func (s *envelopeSession) Close() error { return nil }
