package safemon

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/baseline"
)

// envelopeDetector adapts baseline.StaticEnvelope: per-feature safe ranges
// learned from safe training frames, flagging frames that leave the
// envelope. Scores are violation magnitudes (0 = inside), so thresholds
// near zero are typical. WithGroundTruthContext selects one envelope per
// gesture (sessions then need WithSessionLabels); otherwise one global
// envelope covers every context.
type envelopeDetector struct {
	cfg Config
	env *baseline.StaticEnvelope
	// loadErr records a failed Load so sessions can report why the
	// detector is unusable instead of a generic not-fitted error.
	loadErr error
}

func newEnvelopeDetector(cfg Config) *envelopeDetector {
	return &envelopeDetector{cfg: cfg}
}

func (d *envelopeDetector) config() Config { return d.cfg }

func (d *envelopeDetector) Info() Info {
	return Info{Name: "envelope", Threshold: d.cfg.Threshold, Timing: d.cfg.Timing}
}

func (d *envelopeDetector) Fit(ctx context.Context, trajs []*Trajectory) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	features := d.cfg.ErrorFeatures
	if features == nil {
		features = CRG()
	}
	env := baseline.NewStaticEnvelope(features, d.cfg.GroundTruthContext)
	if d.cfg.EnvelopeMargin > 0 {
		env.Margin = d.cfg.EnvelopeMargin
	}
	if err := env.Fit(trajs); err != nil {
		return fmt.Errorf("safemon: fit envelope: %w", err)
	}
	d.env = env
	d.loadErr = nil
	return nil
}

// envelopePayload is the artifact payload of the static-envelope baseline.
type envelopePayload struct {
	Config   persistedConfig
	Envelope []byte
}

// Save writes the fitted detector as a self-describing artifact.
func (d *envelopeDetector) Save(w io.Writer) error {
	if d.env == nil {
		return ErrNotFitted
	}
	env, err := d.env.MarshalBinary()
	if err != nil {
		return artifactErr("encode", "envelope", err)
	}
	payload, err := encodeGob("envelope", envelopePayload{Config: persistConfig(d.cfg), Envelope: env})
	if err != nil {
		return err
	}
	return writeArtifact(w, "envelope", payload)
}

// Load restores fitted state from a Save artifact of the same backend.
func (d *envelopeDetector) Load(r io.Reader) error {
	if d.env != nil {
		return ErrAlreadyFitted
	}
	backend, payload, err := readArtifact(r)
	if err != nil {
		d.loadErr = err
		return err
	}
	return d.loadPayload(backend, payload)
}

// loadPayload restores fitted state from an already-parsed artifact
// (LoadDetector's single-parse path).
func (d *envelopeDetector) loadPayload(backend string, payload []byte) error {
	if d.env != nil {
		return ErrAlreadyFitted
	}
	err := guardLoad("envelope", func() error {
		if err := checkBackendName(backend, "envelope"); err != nil {
			return err
		}
		var p envelopePayload
		if err := decodeGob("envelope", payload, &p); err != nil {
			return err
		}
		cfg, err := p.Config.restore(d.cfg)
		if err != nil {
			return artifactErr("validate", "envelope", err)
		}
		env := &baseline.StaticEnvelope{}
		if err := env.UnmarshalBinary(p.Envelope); err != nil {
			return artifactErr("decode", "envelope", fmt.Errorf("%w: %v", ErrCorruptPayload, err))
		}
		if env.PerGesture != cfg.GroundTruthContext {
			return artifactErr("validate", "envelope", fmt.Errorf("%w: per-gesture flag disagrees with config", ErrCorruptPayload))
		}
		d.cfg = cfg
		d.env = env
		return nil
	})
	if err != nil {
		d.env = nil
		d.loadErr = err
		return err
	}
	d.loadErr = nil
	return nil
}

func (d *envelopeDetector) Run(ctx context.Context, traj *Trajectory) (*Trace, error) {
	return runViaSession(ctx, d, traj, d.cfg.Timing)
}

func (d *envelopeDetector) NewSession(opts ...SessionOption) (Session, error) {
	if d.env == nil {
		return nil, notReadyErr("envelope", d.loadErr)
	}
	sc := applySessionOptions(opts)
	if d.cfg.GroundTruthContext && sc.groundTruth == nil {
		return nil, errors.New("safemon: per-gesture envelope session needs WithSessionLabels")
	}
	scorer, err := d.env.NewScorer()
	if err != nil {
		return nil, err
	}
	return wrapGuard(&envelopeSession{d: d, scorer: scorer, labels: sc.groundTruth}, sc)
}

type envelopeSession struct {
	d      *envelopeDetector
	scorer *baseline.EnvelopeScorer
	labels []int
	idx    int
}

func (s *envelopeSession) Push(f *Frame) (FrameVerdict, error) {
	g := 0
	if s.idx < len(s.labels) {
		g = s.labels[s.idx]
	}
	score := s.scorer.Score(f, g)
	v := FrameVerdict{
		FrameIndex: s.idx,
		Gesture:    g,
		Score:      score,
		Unsafe:     score >= s.d.cfg.Threshold,
	}
	s.idx++
	return v, nil
}

func (s *envelopeSession) Reset(groundTruth []int) error {
	if s.d.cfg.GroundTruthContext && groundTruth == nil {
		return errors.New("safemon: per-gesture envelope session needs ground-truth labels")
	}
	s.labels = groundTruth
	s.idx = 0
	return nil
}

func (s *envelopeSession) Close() error { return nil }
