// Package obs is the service's telemetry core: a stdlib-only metrics
// registry whose instruments — atomic counters, gauges and fixed-bucket
// log2 histograms — are safe for concurrent use and allocation-free to
// update, rendered on demand in the Prometheus text exposition format.
//
// The design premise is that the serving hot path (one frame through
// decode → shard → inference → guard → encode) must stay 0 allocs/frame
// with telemetry enabled, so every instrument is registered once at
// stream admission or startup (where allocation is fine) and updated
// through plain atomic adds (a few ns, no locks, no interface calls).
// Scrapes walk the registry under its mutex, but writers never touch
// that mutex: registration and observation are fully decoupled.
//
// Two registration styles exist so one set of counters can feed both
// the typed /stats snapshot and /metrics without drifting:
//
//   - Counter/Gauge/Histogram mint a registry-owned instrument and are
//     idempotent: re-registering the same name+labels returns the same
//     instrument, which lets per-stream code "register" its series on
//     every admission and pay only a map lookup after the first.
//   - CounterFunc/GaugeFunc/GaugeCollector bind a series (or a whole
//     family) to a read function over counters that live elsewhere —
//     the server's existing atomics — so /metrics reads the very same
//     memory /stats reads.
package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Label is one name/value pair attached to a metric series.
type Label struct {
	Key   string
	Value string
}

// validName reports whether s is a legal Prometheus metric name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validLabelKey reports whether s is a legal label name:
// [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelKey(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// escapeLabelValue writes v with the exposition-format escapes
// (backslash, double-quote, newline).
func escapeLabelValue(sb *strings.Builder, v string) {
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteByte(c)
		}
	}
}

// renderLabels validates and renders a label set to its canonical inner
// form (`k1="v1",k2="v2"`, keys sorted), the series key within a family.
// It panics on invalid or duplicate keys: labels are chosen by code at
// registration time, so a bad one is a programmer error.
func renderLabels(metric string, labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var sb strings.Builder
	for i, l := range sorted {
		if !validLabelKey(l.Key) {
			panic(fmt.Sprintf("obs: metric %s has invalid label key %q", metric, l.Key))
		}
		if i > 0 {
			if sorted[i-1].Key == l.Key {
				panic(fmt.Sprintf("obs: metric %s repeats label key %q", metric, l.Key))
			}
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		escapeLabelValue(&sb, l.Value)
		sb.WriteByte('"')
	}
	return sb.String()
}
