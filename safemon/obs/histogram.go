package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// LogBuckets is the number of power-of-two latency buckets: bucket i
// counts durations in [2^i, 2^(i+1)) nanoseconds, covering
// sub-microsecond operations up to multi-second stalls (2^36 ns ≈ 69 s;
// anything slower clamps into the top bucket).
const LogBuckets = 36

// Histogram is a lock-free log2 latency histogram: 36 power-of-two
// nanosecond buckets plus a running sum. ObserveNS is two atomic adds —
// no locks, no allocation — so it is safe on the per-frame hot path;
// scrapes snapshot the buckets concurrently. Rendered values (bucket
// bounds, sum) are in seconds, the Prometheus base unit.
type Histogram struct {
	counts [LogBuckets]atomic.Uint64
	sumNS  atomic.Int64
}

// Observe records one duration sample.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNS(d.Nanoseconds()) }

// ObserveNS records one sample in nanoseconds (values < 1 count as 1).
func (h *Histogram) ObserveNS(ns int64) {
	if ns < 1 {
		ns = 1
	}
	i := bits.Len64(uint64(ns)) - 1
	if i >= LogBuckets {
		i = LogBuckets - 1
	}
	h.counts[i].Add(1)
	h.sumNS.Add(ns)
}

// Counts snapshots the bucket counts.
func (h *Histogram) Counts() [LogBuckets]uint64 {
	var counts [LogBuckets]uint64
	for i := range counts {
		counts[i] = h.counts[i].Load()
	}
	return counts
}

// SumNS returns the running sum of observed nanoseconds.
func (h *Histogram) SumNS() int64 { return h.sumNS.Load() }

// QuantileNS returns the q-th (0..1) quantile of the observed samples
// in nanoseconds; NaN when empty.
func (h *Histogram) QuantileNS(q float64) float64 {
	counts := h.Counts()
	return LogQuantileNS(counts[:], q)
}

// LogQuantileNS returns the q-th (0..1) quantile of a log2 bucket-count
// snapshot (bucket i spanning [2^i, 2^(i+1)) ns) in nanoseconds; NaN
// when the histogram is empty.
//
// The rank is located in its bucket and then interpolated log-linearly
// within the bucket's span, assuming samples spread evenly across it in
// log space. Resolving to the bucket's upper bound instead over-reports
// every quantile by up to 2×: a single sample near 2^i would be
// reported as 2^(i+1). With the half-sample midpoint convention a lone
// sample resolves to 2^(i+0.5), the geometric mean of the bucket
// bounds.
func LogQuantileNS(counts []uint64, q float64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return math.NaN()
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum > rank {
			pos := float64(rank-(cum-c)) + 0.5
			frac := pos / float64(c)
			return math.Exp2(float64(i) + frac)
		}
	}
	return math.NaN()
}

// floatBits / floatFromBits are the Gauge's float64 <-> atomic bits
// mapping.
func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
