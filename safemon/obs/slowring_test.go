package obs

import (
	"testing"
	"time"
)

func offerFrame(r *SlowRing, totalNS, whenNS int64, meta *SlowMeta) bool {
	stages := [SlowStages]int64{totalNS}
	return r.Offer(totalNS, whenNS, 0, &stages, meta)
}

func TestSlowRingKeepsSlowest(t *testing.T) {
	r := NewSlowRing(3, time.Minute)
	meta := &SlowMeta{Backend: "envelope", Codec: "binary"}
	now := time.Now().UnixNano()
	for i, total := range []int64{100, 500, 300, 50, 900, 400} {
		offerFrame(r, total, now+int64(i), meta)
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d entries, want 3", len(snap))
	}
	want := []int64{900, 500, 400}
	for i, f := range snap {
		if f.TotalNS != want[i] {
			t.Fatalf("snapshot[%d].TotalNS = %d, want %d (%+v)", i, f.TotalNS, want[i], snap)
		}
		if f.Meta != meta {
			t.Fatalf("snapshot[%d] lost its meta", i)
		}
	}
	// 50 never displaced anything; once the ring is full of slower
	// frames, the floor rejects it on the fast path.
	if offerFrame(r, 50, now+100, meta) {
		t.Fatalf("ring admitted a frame below its floor")
	}
	if got := r.Admitted(); got != 5 {
		t.Fatalf("admitted = %d, want 5", got)
	}
}

func TestSlowRingTTLExpiry(t *testing.T) {
	r := NewSlowRing(2, time.Minute)
	meta := &SlowMeta{}
	base := time.Now().Add(-10 * time.Minute).UnixNano()
	offerFrame(r, 1000, base, meta)
	offerFrame(r, 2000, base, meta)
	// Both entries are long expired: a much faster new frame must still
	// land (the stale floor falls through, the expired slots read as
	// empty) — and the snapshot hides the expired ones.
	now := time.Now().UnixNano()
	if !offerFrame(r, 10, now, meta) {
		t.Fatalf("ring rejected a frame though every entry expired")
	}
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].TotalNS != 10 {
		t.Fatalf("snapshot = %+v, want just the fresh frame", snap)
	}
}

func TestSlowRingStageCopy(t *testing.T) {
	r := NewSlowRing(1, time.Minute)
	meta := &SlowMeta{}
	stages := [SlowStages]int64{1, 2, 3}
	now := time.Now().UnixNano()
	r.Offer(6, now, 42, &stages, meta)
	stages[0] = 99 // the ring copied the values, not the pointer
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap[0].StageNS[0] != 1 || snap[0].StageNS[1] != 2 || snap[0].StageNS[2] != 3 {
		t.Fatalf("stage copy wrong: %+v", snap[0].StageNS)
	}
	if snap[0].Frame != 42 {
		t.Fatalf("frame index = %d", snap[0].Frame)
	}
}
