package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// SlowStages is the fixed stage-slot count of a slow-frame exemplar.
// Callers with fewer stages leave the tail zero.
const SlowStages = 8

// SlowMeta is the immutable per-stream context attached to a slow-frame
// exemplar. It is allocated once at stream admission (off the hot path)
// and shared by reference by every frame the stream offers.
type SlowMeta struct {
	// Session is the server-assigned stream ordinal.
	Session uint64
	// Backend, Codec, Model and Policy identify what served the frame.
	Backend string
	Codec   string
	Model   string
	Policy  string
	// Stages names the stage slots (Stages[i] labels durations[i]);
	// empty slots are unused.
	Stages *[SlowStages]string
}

// SlowFrame is one exemplar read back from the ring.
type SlowFrame struct {
	// TotalNS is the frame's summed stage time.
	TotalNS int64
	// WhenNS is the frame's completion wall-clock time (UnixNano).
	WhenNS int64
	// Frame is the frame's index within its stream.
	Frame int64
	// StageNS are the per-stage durations, indexed like Meta.Stages.
	StageNS [SlowStages]int64
	// Meta is the stream context.
	Meta *SlowMeta
}

// slowSlot is one ring entry. Every field is its own atomic: a reader
// racing a writer may observe a torn combination (e.g. the new total
// with the old stages), but each field is itself a valid value, and
// exemplars are diagnostic samples, not an audited ledger — the ring
// trades per-slot locking for a hot path that is one atomic load in the
// overwhelmingly common fast-reject case.
type slowSlot struct {
	total  atomic.Int64
	when   atomic.Int64
	frame  atomic.Int64
	stages [SlowStages]atomic.Int64
	meta   atomic.Pointer[SlowMeta]
}

// SlowRing retains the N slowest recent frames. Offer is lock-free and
// allocation-free; the fast path (frame not slower than the current
// floor) is a single atomic load and compare. Entries older than the
// TTL count as empty, so a burst of historic stalls ages out instead of
// capping the ring forever.
type SlowRing struct {
	slots    []slowSlot
	ttlNS    int64
	floor    atomic.Int64 // min total across live slots; admission threshold
	floorAt  atomic.Int64 // when the floor was computed (UnixNano)
	admitted atomic.Uint64
}

// NewSlowRing returns a ring of n slots (n <= 0 means 32) with the
// given entry TTL (<= 0 means 10 minutes).
func NewSlowRing(n int, ttl time.Duration) *SlowRing {
	if n <= 0 {
		n = 32
	}
	if ttl <= 0 {
		ttl = 10 * time.Minute
	}
	return &SlowRing{slots: make([]slowSlot, n), ttlNS: ttl.Nanoseconds()}
}

// Offer proposes one frame: totalNS is its summed stage time, whenNS
// its completion wall-clock (UnixNano), frame its index within the
// stream, stages its per-stage durations (copied out), meta the shared
// stream context. Returns whether the frame displaced a slot.
func (r *SlowRing) Offer(totalNS, whenNS, frame int64, stages *[SlowStages]int64, meta *SlowMeta) bool {
	// Fast reject: not slower than the slowest ring is keeping, and the
	// floor is fresh enough to trust. A stale floor (nothing admitted
	// for a TTL) falls through so expired entries can be reclaimed.
	if totalNS <= r.floor.Load() && whenNS-r.floorAt.Load() < r.ttlNS {
		return false
	}
	cut := whenNS - r.ttlNS
	vi, vmin := -1, int64(math.MaxInt64)
	for i := range r.slots {
		s := &r.slots[i]
		t := s.total.Load()
		if s.when.Load() < cut {
			t = 0
		}
		if t < vmin {
			vmin, vi = t, i
		}
	}
	if vmin >= totalNS {
		// Raced with concurrent admissions: every slot is now at least
		// this slow. Refresh the floor and drop the frame.
		r.floor.Store(vmin)
		r.floorAt.Store(whenNS)
		return false
	}
	s := &r.slots[vi]
	s.total.Store(totalNS)
	s.when.Store(whenNS)
	s.frame.Store(frame)
	for i := range stages {
		s.stages[i].Store(stages[i])
	}
	s.meta.Store(meta)
	r.admitted.Add(1)
	// Recompute the admission floor over the updated ring.
	min := int64(math.MaxInt64)
	for i := range r.slots {
		s := &r.slots[i]
		t := s.total.Load()
		if s.when.Load() < cut {
			t = 0
		}
		if t < min {
			min = t
		}
	}
	r.floor.Store(min)
	r.floorAt.Store(whenNS)
	return true
}

// Admitted counts frames the ring has accepted since start.
func (r *SlowRing) Admitted() uint64 { return r.admitted.Load() }

// Snapshot returns the live (non-empty, non-expired) exemplars, slowest
// first.
func (r *SlowRing) Snapshot() []SlowFrame {
	cut := time.Now().UnixNano() - r.ttlNS
	out := make([]SlowFrame, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		total := s.total.Load()
		when := s.when.Load()
		meta := s.meta.Load()
		if total <= 0 || when < cut || meta == nil {
			continue
		}
		f := SlowFrame{TotalNS: total, WhenNS: when, Frame: s.frame.Load(), Meta: meta}
		for j := range f.StageNS {
			f.StageNS[j] = s.stages[j].Load()
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TotalNS > out[j].TotalNS })
	return out
}
