package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. Inc/Add are single
// atomic adds: lock-free, allocation-free, a few ns.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable float64 (stored as bits in an atomic).
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return floatFromBits(g.bits.Load()) }

// metric kinds, for the exposition TYPE line and cross-registration
// conflict checks.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one labeled instance within a family. Exactly one of the
// value fields is set, matching the family kind.
type series struct {
	labels    string // canonical inner label rendering ("" for none)
	counter   *Counter
	counterFn func() uint64
	gauge     *Gauge
	gaugeFn   func() float64
	hist      *Histogram
}

// Emit is the callback a GaugeCollector fills series through at scrape
// time.
type Emit func(value float64, labels ...Label)

// family is one metric name: its help text, kind, and labeled series.
type family struct {
	name    string
	help    string
	kind    kind
	series  map[string]*series
	ordered []*series // insertion order; sorted lazily at render
	collect func(Emit)
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. Registration takes the registry mutex;
// updating a registered instrument never does.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// register returns the family for name, creating it with the given kind
// and help on first use and enforcing kind/help consistency afterwards.
// Caller holds r.mu.
func (r *Registry) register(name, help string, k kind) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, series: map[string]*series{}}
		r.families[name] = f
		return f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %s registered as both %s and %s", name, f.kind, k))
	}
	if f.collect != nil {
		panic(fmt.Sprintf("obs: metric %s already bound to a collector", name))
	}
	return f
}

// addSeries inserts a new series, panicking on a duplicate label set.
// Caller holds r.mu.
func (f *family) addSeries(s *series) {
	if _, dup := f.series[s.labels]; dup {
		panic(fmt.Sprintf("obs: metric %s{%s} registered twice", f.name, s.labels))
	}
	f.series[s.labels] = s
	f.ordered = append(f.ordered, s)
}

// Counter registers (or returns the existing) counter for name+labels.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	key := renderLabels(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.register(name, help, kindCounter)
	if s := f.series[key]; s != nil {
		if s.counter == nil {
			panic(fmt.Sprintf("obs: metric %s{%s} already bound to a function", name, key))
		}
		return s.counter
	}
	s := &series{labels: key, counter: &Counter{}}
	f.addSeries(s)
	return s.counter
}

// Gauge registers (or returns the existing) gauge for name+labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	key := renderLabels(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.register(name, help, kindGauge)
	if s := f.series[key]; s != nil {
		if s.gauge == nil {
			panic(fmt.Sprintf("obs: metric %s{%s} already bound to a function", name, key))
		}
		return s.gauge
	}
	s := &series{labels: key, gauge: &Gauge{}}
	f.addSeries(s)
	return s.gauge
}

// Histogram registers (or returns the existing) log2 latency histogram
// for name+labels. Values are observed in nanoseconds and rendered in
// seconds (the Prometheus base unit).
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	key := renderLabels(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.register(name, help, kindHistogram)
	if s := f.series[key]; s != nil {
		return s.hist
	}
	s := &series{labels: key, hist: &Histogram{}}
	f.addSeries(s)
	return s.hist
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time — the bridge to counters that live in pre-existing
// structs. Unlike Counter, a duplicate registration panics: two owners
// for one series is a wiring bug.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	key := renderLabels(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.register(name, help, kindCounter)
	f.addSeries(&series{labels: key, counterFn: fn})
}

// GaugeFunc registers a gauge series read from fn at scrape time.
// Duplicate registration panics.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	key := renderLabels(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.register(name, help, kindGauge)
	f.addSeries(&series{labels: key, gaugeFn: fn})
}

// GaugeCollector registers a whole gauge family whose series are
// produced dynamically at scrape time — for label sets that change at
// runtime (e.g. model versions across hot-swaps). The family is
// exclusive: no static series may share its name.
func (r *Registry) GaugeCollector(name, help string, collect func(Emit)) {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("obs: metric %s registered twice", name))
	}
	r.families[name] = &family{name: name, help: help, kind: kindGauge, collect: collect}
}

// WritePrometheus renders every family in the text exposition format,
// sorted by family name and series label set for deterministic output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	var buf []byte
	for _, f := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
		if f.collect != nil {
			f.collect(func(value float64, labels ...Label) {
				writeSample(bw, buf, f.name, renderLabels(f.name, labels), "", value)
			})
			continue
		}
		sort.Slice(f.ordered, func(i, j int) bool { return f.ordered[i].labels < f.ordered[j].labels })
		for _, s := range f.ordered {
			switch {
			case s.counter != nil:
				writeUintSample(bw, f.name, s.labels, s.counter.Value())
			case s.counterFn != nil:
				writeUintSample(bw, f.name, s.labels, s.counterFn())
			case s.gauge != nil:
				writeSample(bw, buf, f.name, s.labels, "", s.gauge.Value())
			case s.gaugeFn != nil:
				writeSample(bw, buf, f.name, s.labels, "", s.gaugeFn())
			case s.hist != nil:
				writeHistogram(bw, buf, f.name, s.labels, s.hist)
			}
		}
	}
	return bw.Flush()
}

// writeUintSample renders `name{labels} value` with an integer value.
func writeUintSample(w *bufio.Writer, name, labels string, v uint64) {
	w.WriteString(name)
	if labels != "" {
		w.WriteByte('{')
		w.WriteString(labels)
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(strconv.FormatUint(v, 10))
	w.WriteByte('\n')
}

// writeSample renders `name{labels[,extra]} value` with a float value
// (shortest round-trip form, matching the exposition conventions).
func writeSample(w *bufio.Writer, scratch []byte, name, labels, extra string, v float64) {
	w.WriteString(name)
	if labels != "" || extra != "" {
		w.WriteByte('{')
		w.WriteString(labels)
		if labels != "" && extra != "" {
			w.WriteByte(',')
		}
		w.WriteString(extra)
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.Write(strconv.AppendFloat(scratch[:0], v, 'g', -1, 64))
	w.WriteByte('\n')
}

// writeHistogram renders one histogram series: cumulative _bucket lines
// (le in seconds), the +Inf bucket, _sum (seconds) and _count.
func writeHistogram(w *bufio.Writer, scratch []byte, name, labels string, h *Histogram) {
	counts := h.Counts()
	var cum uint64
	for i, c := range counts {
		cum += c
		le := `le="` + bucketLE(i) + `"`
		writeSampleUintVal(w, name+"_bucket", labels, le, cum)
	}
	writeSampleUintVal(w, name+"_bucket", labels, `le="+Inf"`, cum)
	writeSample(w, scratch, name+"_sum", labels, "", float64(h.SumNS())/1e9)
	writeUintSample(w, name+"_count", labels, cum)
}

// writeSampleUintVal renders `name{labels,extra} value` with an integer
// value (the histogram bucket form).
func writeSampleUintVal(w *bufio.Writer, name, labels, extra string, v uint64) {
	w.WriteString(name)
	w.WriteByte('{')
	w.WriteString(labels)
	if labels != "" {
		w.WriteByte(',')
	}
	w.WriteString(extra)
	w.WriteByte('}')
	w.WriteByte(' ')
	w.WriteString(strconv.FormatUint(v, 10))
	w.WriteByte('\n')
}

// bucketLE renders bucket i's upper bound, 2^(i+1) ns, in seconds.
var bucketLEs = func() [LogBuckets]string {
	var out [LogBuckets]string
	for i := range out {
		ns := float64(uint64(1) << uint(i+1))
		out[i] = strconv.FormatFloat(ns/1e9, 'g', -1, 64)
	}
	return out
}()

func bucketLE(i int) string { return bucketLEs[i] }

// ContentType is the exposition-format content type Handler serves.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns the GET /metrics handler over this registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		r.WritePrometheus(w)
	})
}
