package obs

import (
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_frames_total", "Frames served.", Label{"shard", "0"})
	c.Add(3)
	c.Inc()
	// Idempotent: same name+labels returns the same counter.
	if again := r.Counter("test_frames_total", "Frames served.", Label{"shard", "0"}); again != c {
		t.Fatalf("re-registration minted a new counter")
	}
	r.Counter("test_frames_total", "Frames served.", Label{"shard", "1"}).Add(7)
	g := r.Gauge("test_queue_bytes", "Queue size.")
	g.Set(12.5)
	r.CounterFunc("test_drops_total", "Drops.", func() uint64 { return 9 })
	r.GaugeFunc("test_uptime_seconds", "Uptime.", func() float64 { return 2 })
	r.GaugeCollector("test_model_loaded_seconds", "Model load time.", func(emit Emit) {
		emit(1.5, Label{"backend", "a"})
		emit(2.5, Label{"backend", "b"})
	})

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP test_drops_total Drops.
# TYPE test_drops_total counter
test_drops_total 9
# HELP test_frames_total Frames served.
# TYPE test_frames_total counter
test_frames_total{shard="0"} 4
test_frames_total{shard="1"} 7
# HELP test_model_loaded_seconds Model load time.
# TYPE test_model_loaded_seconds gauge
test_model_loaded_seconds{backend="a"} 1.5
test_model_loaded_seconds{backend="b"} 2.5
# HELP test_queue_bytes Queue size.
# TYPE test_queue_bytes gauge
test_queue_bytes 12.5
# HELP test_uptime_seconds Uptime.
# TYPE test_uptime_seconds gauge
test_uptime_seconds 2
`
	if got != want {
		t.Fatalf("render mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestLabelCanonicalization(t *testing.T) {
	r := NewRegistry()
	// Key order must not matter: both orders name the same series.
	a := r.Counter("test_x_total", "x", Label{"b", "2"}, Label{"a", "1"})
	b := r.Counter("test_x_total", "x", Label{"a", "1"}, Label{"b", "2"})
	if a != b {
		t.Fatalf("label order minted distinct series")
	}
	a.Inc()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `test_x_total{a="1",b="2"} 1`) {
		t.Fatalf("labels not rendered sorted:\n%s", sb.String())
	}
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_esc_total", "e", Label{"v", "a\"b\\c\nd"}).Inc()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `test_esc_total{v="a\"b\\c\nd"} 1`) {
		t.Fatalf("escaping wrong:\n%s", sb.String())
	}
}

func TestRegistrationPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("invalid name", func() { NewRegistry().Counter("0bad", "x") })
	expectPanic("invalid label key", func() { NewRegistry().Counter("test_a_total", "x", Label{"0k", "v"}) })
	expectPanic("duplicate label key", func() {
		NewRegistry().Counter("test_a_total", "x", Label{"k", "1"}, Label{"k", "2"})
	})
	expectPanic("kind conflict", func() {
		r := NewRegistry()
		r.Counter("test_a_total", "x")
		r.Gauge("test_a_total", "x")
	})
	expectPanic("func duplicate", func() {
		r := NewRegistry()
		r.CounterFunc("test_a_total", "x", func() uint64 { return 0 })
		r.CounterFunc("test_a_total", "x", func() uint64 { return 0 })
	})
	expectPanic("collector conflict", func() {
		r := NewRegistry()
		r.GaugeCollector("test_a_seconds", "x", func(Emit) {})
		r.Gauge("test_a_seconds", "x")
	})
}

func TestHistogramRender(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_lat_seconds", "Latency.", Label{"stage", "infer"})
	h.ObserveNS(1) // bucket 0: [1,2) ns
	h.ObserveNS(3) // bucket 1: [2,4) ns
	h.Observe(3 * time.Nanosecond)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	got := sb.String()
	for _, want := range []string{
		`test_lat_seconds_bucket{stage="infer",le="2e-09"} 1`,
		`test_lat_seconds_bucket{stage="infer",le="4e-09"} 3`,
		`test_lat_seconds_bucket{stage="infer",le="+Inf"} 3`,
		`test_lat_seconds_sum{stage="infer"} 7e-09`,
		`test_lat_seconds_count{stage="infer"} 3`,
	} {
		if !strings.Contains(got, want+"\n") {
			t.Fatalf("missing %q in:\n%s", want, got)
		}
	}
}
