//go:build !race

package obs

// raceEnabled reports whether this test binary was built with the race
// detector, whose instrumentation inflates allocation measurements.
const raceEnabled = false
