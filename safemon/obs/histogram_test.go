package obs

import (
	"math"
	"testing"
)

// TestLogQuantileNS is the table-driven contract for the shared
// interpolating quantile: both the serve /stats quantiles and the
// /metrics histograms resolve through this one implementation.
func TestLogQuantileNS(t *testing.T) {
	set := func(pairs ...uint64) []uint64 {
		counts := make([]uint64, LogBuckets)
		for i := 0; i+1 < len(pairs); i += 2 {
			counts[pairs[i]] = pairs[i+1]
		}
		return counts
	}
	cases := []struct {
		name   string
		counts []uint64
		q      float64
		want   float64
	}{
		// A lone sample resolves to the bucket's geometric mean
		// (half-sample midpoint), not its upper bound.
		{"single-sample-midpoint", set(10, 1), 0.5, math.Exp2(10.5)},
		{"single-sample-p99", set(10, 1), 0.99, math.Exp2(10.5)},
		// 100 samples in one bucket: p50 sits halfway through it in log
		// space, p99 near its top.
		{"uniform-p50", set(4, 100), 0.50, math.Exp2(4 + 50.5/100)},
		{"uniform-p99", set(4, 100), 0.99, math.Exp2(4 + 99.5/100)},
		// 99 fast + 1 slow: p50 in the fast bucket, p99 the slow sample.
		{"skewed-p50", set(2, 99, 20, 1), 0.50, math.Exp2(2 + 50.5/99)},
		{"skewed-p99", set(2, 99, 20, 1), 0.99, math.Exp2(20.5)},
		// Two equal buckets: rank 5 of 10 is the second bucket's first
		// sample.
		{"two-buckets-median", set(3, 5, 7, 5), 0.5, math.Exp2(7 + 0.5/5)},
		// Top-bucket samples stay in the top bucket.
		{"top-bucket", set(LogBuckets-1, 2), 0.99, math.Exp2(float64(LogBuckets-1) + 1.5/2)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := LogQuantileNS(tc.counts, tc.q)
			if math.Abs(got-tc.want) > tc.want*1e-12 {
				t.Fatalf("LogQuantileNS(q=%v) = %v, want %v", tc.q, got, tc.want)
			}
		})
	}
	if got := LogQuantileNS(make([]uint64, LogBuckets), 0.5); !math.IsNaN(got) {
		t.Fatalf("empty histogram quantile = %v, want NaN", got)
	}
}

func TestHistogramObserveBuckets(t *testing.T) {
	var h Histogram
	h.ObserveNS(0)  // clamps to 1 → bucket 0
	h.ObserveNS(-5) // clamps to 1 → bucket 0
	h.ObserveNS(1024)
	h.ObserveNS(1 << 62) // clamps to the top bucket
	counts := h.Counts()
	if counts[0] != 2 || counts[10] != 1 || counts[LogBuckets-1] != 1 {
		t.Fatalf("bucket counts wrong: %v", counts)
	}
	if got := h.SumNS(); got != 1+1+1024+(1<<62) {
		t.Fatalf("sum = %d", got)
	}
	if q := h.QuantileNS(0.5); math.IsNaN(q) || q <= 0 {
		t.Fatalf("quantile = %v", q)
	}
}

func TestQuantileMonotonic(t *testing.T) {
	var h Histogram
	for ns := int64(1); ns < 1e7; ns *= 3 {
		h.ObserveNS(ns)
	}
	counts := h.Counts()
	prev := 0.0
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
		v := LogQuantileNS(counts[:], q)
		if v < prev {
			t.Fatalf("quantile %v = %v < previous %v", q, v, prev)
		}
		prev = v
	}
}
