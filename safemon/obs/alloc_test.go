package obs

import (
	"testing"
	"time"
)

// TestHotPathZeroAlloc pins the instrument-update contract: once
// registered, counters, gauges, histograms and slow-ring offers touch
// no allocator. The race detector instruments atomics with allocating
// shadows, so the check only runs on non-race builds.
func TestHotPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is unreliable under -race")
	}
	r := NewRegistry()
	c := r.Counter("test_frames_total", "f", Label{"shard", "0"})
	g := r.Gauge("test_depth_bytes", "d")
	h := r.Histogram("test_lat_seconds", "l", Label{"stage", "infer"})
	ring := NewSlowRing(4, time.Minute)
	meta := &SlowMeta{Backend: "b"}
	stages := [SlowStages]int64{10, 20}
	now := time.Now().UnixNano()
	n := int64(0)
	if allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(1.5)
		h.ObserveNS(100 + n)
		ring.Offer(30+n, now+n, n, &stages, meta)
		n++
	}); allocs != 0 {
		t.Fatalf("hot-path update allocates %v allocs/op, want 0", allocs)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("test_frames_total", "f")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("test_lat_seconds", "l")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveNS(int64(i)&0xffff + 1)
	}
}

func BenchmarkSlowRingOffer(b *testing.B) {
	ring := NewSlowRing(32, time.Minute)
	meta := &SlowMeta{}
	stages := [SlowStages]int64{1}
	now := time.Now().UnixNano()
	// Warm the ring so the steady state is the fast-reject path.
	for i := int64(0); i < 64; i++ {
		ring.Offer(1e6+i, now, i, &stages, meta)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ring.Offer(100, now, int64(i), &stages, meta)
	}
}
