package safemon

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/kinematics"
)

// Model artifacts.
//
// A fitted detector serializes to a single self-describing binary artifact:
//
//	offset size  field
//	0      4     magic "SFMA"
//	4      2     artifact format version, big-endian (currently 1)
//	6      2     reserved, zero
//	8      2     backend name length N, big-endian
//	10     N     backend name (registry name, UTF-8)
//	10+N   8     payload length M, big-endian
//	18+N   M     backend-specific payload (gob)
//	18+N+M 4     CRC-32 (IEEE) of all preceding bytes, big-endian
//
// The header names the backend so LoadDetector can reconstruct the right
// detector type without side information, the version gates future format
// changes, and the trailing checksum rejects torn or bit-flipped artifacts
// before any payload decoding happens. Every decode failure is reported as
// a typed *ArtifactError wrapping one of the sentinel errors below; corrupt
// input never panics.

// ArtifactFormatVersion is the artifact format this build writes and the
// only one it accepts. See the format-version policy in safemon/modelstore.
const ArtifactFormatVersion = 1

// artifactMagic brands every detector artifact.
var artifactMagic = [4]byte{'S', 'F', 'M', 'A'}

// maxArtifactBytes caps how much a reader will buffer for one artifact
// (corrupt length fields must not translate into unbounded allocation).
const maxArtifactBytes = 256 << 20

// Artifact decode sentinels, matched with errors.Is through *ArtifactError.
var (
	// ErrBadMagic reports input that is not a detector artifact at all.
	ErrBadMagic = errors.New("safemon: not a detector artifact (bad magic)")
	// ErrBadFormatVersion reports an artifact written by an unsupported
	// format version.
	ErrBadFormatVersion = errors.New("safemon: unsupported artifact format version")
	// ErrTruncated reports an artifact shorter than its own length fields.
	ErrTruncated = errors.New("safemon: truncated artifact")
	// ErrOversized reports an artifact exceeding the size cap.
	ErrOversized = errors.New("safemon: artifact exceeds size cap")
	// ErrChecksum reports a CRC mismatch (torn write or bit flip).
	ErrChecksum = errors.New("safemon: artifact checksum mismatch")
	// ErrBackendMismatch reports loading an artifact into a detector of a
	// different backend.
	ErrBackendMismatch = errors.New("safemon: artifact backend mismatch")
	// ErrCorruptPayload reports a payload that decoded but failed
	// validation.
	ErrCorruptPayload = errors.New("safemon: corrupt artifact payload")
	// ErrAlreadyFitted reports Load on a detector that is already fitted
	// (fit it fresh or load into a new detector; in-place replacement of a
	// live model would corrupt concurrent sessions).
	ErrAlreadyFitted = errors.New("safemon: detector already fitted")
)

// ArtifactError is the typed error every artifact encode/decode failure is
// reported as. Err wraps one of the sentinel errors above (or an underlying
// decoder error), so errors.Is works through it.
type ArtifactError struct {
	// Op is the failing operation ("read", "decode", "validate", ...).
	Op string
	// Backend is the backend name involved, when known.
	Backend string
	// Err is the underlying cause.
	Err error
}

func (e *ArtifactError) Error() string {
	if e.Backend != "" {
		return fmt.Sprintf("safemon: artifact %s (%s): %v", e.Op, e.Backend, e.Err)
	}
	return fmt.Sprintf("safemon: artifact %s: %v", e.Op, e.Err)
}

func (e *ArtifactError) Unwrap() error { return e.Err }

// artifactErr builds a typed artifact error.
func artifactErr(op, backend string, err error) *ArtifactError {
	return &ArtifactError{Op: op, Backend: backend, Err: err}
}

// writeArtifact frames and checksums a backend payload onto w. It enforces
// the same size cap the read path does, so an oversized model fails loudly
// at save (train) time instead of publishing an artifact that every later
// load rejects.
func writeArtifact(w io.Writer, backend string, payload []byte) error {
	if len(backend) == 0 || len(backend) > 0xffff {
		return artifactErr("encode", backend, fmt.Errorf("bad backend name length %d", len(backend)))
	}
	if total := 18 + len(backend) + len(payload) + 4; total > maxArtifactBytes {
		return artifactErr("encode", backend, fmt.Errorf("%w: artifact would be %d bytes (cap %d)", ErrOversized, total, maxArtifactBytes))
	}
	buf := make([]byte, 0, 18+len(backend)+len(payload)+4)
	buf = append(buf, artifactMagic[:]...)
	buf = binary.BigEndian.AppendUint16(buf, ArtifactFormatVersion)
	buf = binary.BigEndian.AppendUint16(buf, 0) // reserved
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(backend)))
	buf = append(buf, backend...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	if _, err := w.Write(buf); err != nil {
		return artifactErr("write", backend, err)
	}
	return nil
}

// readArtifactBytes drains r up to the size cap.
func readArtifactBytes(r io.Reader) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(r, maxArtifactBytes+1))
	if err != nil {
		return nil, artifactErr("read", "", err)
	}
	if len(data) > maxArtifactBytes {
		return nil, artifactErr("read", "", fmt.Errorf("%w (cap %d bytes)", ErrOversized, maxArtifactBytes))
	}
	return data, nil
}

// parseArtifact validates framing and checksum and returns the backend name
// and payload of an in-memory artifact.
func parseArtifact(data []byte) (backend string, payload []byte, err error) {
	if len(data) < 4 || !bytes.Equal(data[:4], artifactMagic[:]) {
		return "", nil, artifactErr("parse", "", ErrBadMagic)
	}
	if len(data) < 14 {
		return "", nil, artifactErr("parse", "", ErrTruncated)
	}
	if v := binary.BigEndian.Uint16(data[4:6]); v != ArtifactFormatVersion {
		return "", nil, artifactErr("parse", "", fmt.Errorf("%w: got v%d, support v%d", ErrBadFormatVersion, v, ArtifactFormatVersion))
	}
	nameLen := int(binary.BigEndian.Uint16(data[8:10]))
	if nameLen == 0 {
		return "", nil, artifactErr("parse", "", fmt.Errorf("%w: empty backend name", ErrCorruptPayload))
	}
	if len(data) < 10+nameLen+8 {
		return "", nil, artifactErr("parse", "", ErrTruncated)
	}
	backend = string(data[10 : 10+nameLen])
	payloadLen := binary.BigEndian.Uint64(data[10+nameLen : 18+nameLen])
	body := 18 + nameLen
	if payloadLen > uint64(maxArtifactBytes) {
		return "", nil, artifactErr("parse", backend, fmt.Errorf("%w: payload claims %d bytes", ErrOversized, payloadLen))
	}
	if uint64(len(data)) < uint64(body)+payloadLen+4 {
		return "", nil, artifactErr("parse", backend, ErrTruncated)
	}
	if uint64(len(data)) > uint64(body)+payloadLen+4 {
		return "", nil, artifactErr("parse", backend, fmt.Errorf("%w: %d trailing bytes", ErrCorruptPayload, uint64(len(data))-uint64(body)-payloadLen-4))
	}
	crcAt := len(data) - 4
	if got, want := crc32.ChecksumIEEE(data[:crcAt]), binary.BigEndian.Uint32(data[crcAt:]); got != want {
		return "", nil, artifactErr("parse", backend, fmt.Errorf("%w: crc32 %08x, header says %08x", ErrChecksum, got, want))
	}
	return backend, data[body : body+int(payloadLen)], nil
}

// readArtifact reads and parses one artifact from r.
func readArtifact(r io.Reader) (backend string, payload []byte, err error) {
	data, err := readArtifactBytes(r)
	if err != nil {
		return "", nil, err
	}
	return parseArtifact(data)
}

// encodeGob serializes one backend payload.
func encodeGob(backend string, v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, artifactErr("encode", backend, err)
	}
	return buf.Bytes(), nil
}

// decodeGob deserializes one backend payload with typed errors.
func decodeGob(backend string, data []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return artifactErr("decode", backend, fmt.Errorf("%w: %v", ErrCorruptPayload, err))
	}
	return nil
}

// guardLoad runs a detector's load body, converting any failure — including
// a panic from a decoder edge case validation missed — into a typed
// *ArtifactError, so corrupt artifacts can never crash a loading process.
func guardLoad(backend string, fn func() error) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = artifactErr("decode", backend, fmt.Errorf("%w: panic: %v", ErrCorruptPayload, p))
		}
	}()
	if err := fn(); err != nil {
		var ae *ArtifactError
		if errors.As(err, &ae) {
			return err
		}
		return artifactErr("decode", backend, err)
	}
	return nil
}

// checkBackendName verifies the artifact header names this detector's
// backend.
func checkBackendName(got, want string) error {
	if got != want {
		return artifactErr("open", want, fmt.Errorf("%w: artifact is for %q", ErrBackendMismatch, got))
	}
	return nil
}

// notReadyErr maps an unfitted detector's state onto the right session
// error: the recorded load failure when an artifact load went wrong (so the
// caller learns *why* the detector cannot serve, wrapping *ArtifactError),
// plain ErrNotFitted otherwise.
func notReadyErr(name string, loadErr error) error {
	if loadErr != nil {
		return fmt.Errorf("safemon: %s detector unusable after failed load: %w", name, loadErr)
	}
	return ErrNotFitted
}

// persistedConfig mirrors Config without its runtime-only fields (Verbose,
// Timing) and func-typed members, in a gob-stable form.
type persistedConfig struct {
	Threshold          float64
	GroundTruthContext bool
	Lookahead          bool
	GestureFeatures    []int
	ErrorFeatures      []int
	Window             int
	Arch               int
	Epochs             int
	TrainStride        int
	Seed               int64
	EnvelopeMargin     float64
	Atoms              int
	SkipLag            int
	CascadeFront       string
	CascadeInner       string
	CascadeArm         float64
	CascadeHoldoff     int
	// Quantized is a new field: artifacts written before it decode as
	// false, and older decoders ignore it (gob field evolution).
	Quantized bool
}

func persistConfig(c Config) persistedConfig {
	return persistedConfig{
		Threshold:          c.Threshold,
		GroundTruthContext: c.GroundTruthContext,
		Lookahead:          c.Lookahead,
		GestureFeatures:    featureInts(c.GestureFeatures),
		ErrorFeatures:      featureInts(c.ErrorFeatures),
		Window:             c.Window,
		Arch:               int(c.Arch),
		Epochs:             c.Epochs,
		TrainStride:        c.TrainStride,
		Seed:               c.Seed,
		EnvelopeMargin:     c.EnvelopeMargin,
		Atoms:              c.Atoms,
		SkipLag:            c.SkipLag,
		CascadeFront:       c.CascadeFront,
		CascadeInner:       c.CascadeInner,
		CascadeArm:         c.CascadeArm,
		CascadeHoldoff:     c.CascadeHoldoff,
		Quantized:          c.Quantized,
	}
}

// restore rebuilds a Config, keeping base's runtime-only fields (Timing,
// Verbose) that artifacts deliberately do not carry.
func (p persistedConfig) restore(base Config) (Config, error) {
	gf, err := restoreFeatureSet(p.GestureFeatures)
	if err != nil {
		return Config{}, err
	}
	ef, err := restoreFeatureSet(p.ErrorFeatures)
	if err != nil {
		return Config{}, err
	}
	cfg := base
	cfg.Threshold = p.Threshold
	cfg.GroundTruthContext = p.GroundTruthContext
	cfg.Lookahead = p.Lookahead
	cfg.GestureFeatures = gf
	cfg.ErrorFeatures = ef
	cfg.Window = p.Window
	cfg.Arch = ErrorArch(p.Arch)
	cfg.Epochs = p.Epochs
	cfg.TrainStride = p.TrainStride
	cfg.Seed = p.Seed
	cfg.EnvelopeMargin = p.EnvelopeMargin
	cfg.Atoms = p.Atoms
	cfg.SkipLag = p.SkipLag
	cfg.CascadeFront = p.CascadeFront
	cfg.CascadeInner = p.CascadeInner
	cfg.CascadeArm = p.CascadeArm
	cfg.CascadeHoldoff = p.CascadeHoldoff
	// Quantization can be enabled at load time on a float artifact (the
	// open-time option wins), but a quantized artifact stays quantized.
	cfg.Quantized = p.Quantized || base.Quantized
	return cfg, nil
}

func featureInts(fs FeatureSet) []int {
	if fs == nil {
		return nil
	}
	out := make([]int, len(fs))
	for i, g := range fs {
		out[i] = int(g)
	}
	return out
}

func restoreFeatureSet(ints []int) (FeatureSet, error) {
	if len(ints) == 0 {
		return nil, nil // nil = "backend default", legitimately absent
	}
	fs, err := kinematics.ParseFeatureSet(ints)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptPayload, err)
	}
	return fs, nil
}

// configured is implemented by every built-in detector to expose its
// resolved configuration for fingerprinting.
type configured interface{ config() Config }

// ConfigHash returns a stable hex fingerprint of a detector's training
// configuration (threshold, feature subsets, window, architecture, seed,
// ...). Two detectors trained with the same configuration on the same data
// produce the same hash; model stores record it in artifact manifests so a
// served model can be traced back to its training setup.
func ConfigHash(d Detector) (string, error) {
	c, ok := d.(configured)
	if !ok {
		return "", fmt.Errorf("safemon: %s detector does not expose its configuration", d.Info().Name)
	}
	data, err := encodeGob(d.Info().Name, persistConfig(c.config()))
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:12]), nil
}

// payloadLoader is implemented by the built-in detectors so LoadDetector
// can hand them the already-parsed payload instead of re-reading and
// re-checksumming the whole artifact through Load.
type payloadLoader interface {
	loadPayload(backend string, payload []byte) error
}

// LoadDetector reconstructs a ready-to-serve detector from an artifact
// written by Detector.Save: the artifact header selects the backend through
// the registry, and the payload restores the full fitted state — no Fit
// call, no training data. The loaded detector honors the exact
// configuration it was trained with and satisfies the same zero-allocation
// session invariants as a freshly fitted one.
func LoadDetector(r io.Reader) (Detector, error) {
	data, err := readArtifactBytes(r)
	if err != nil {
		return nil, err
	}
	backend, payload, err := parseArtifact(data)
	if err != nil {
		return nil, err
	}
	det, err := Open(backend)
	if err != nil {
		return nil, artifactErr("open", backend, err)
	}
	if pl, ok := det.(payloadLoader); ok {
		err = pl.loadPayload(backend, payload)
	} else {
		// Externally registered backends only implement the public Load.
		err = det.Load(bytes.NewReader(data))
	}
	if err != nil {
		return nil, err
	}
	return det, nil
}
