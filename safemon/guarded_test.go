package safemon

import (
	"testing"

	"repro/safemon/guard"
)

// guardTestPolicy is a hair-trigger policy that reacts to any score; the
// session wrapper tests only need the engine to move.
func guardTestPolicy() guard.Policy {
	return guard.Policy{
		Name: "test", Threshold: 1e-9,
		DebounceFrames: 1, ReleaseFrames: 1, EscalateFrames: 1,
	}
}

// TestWithGuardWrapsEveryBackend pins that WithGuard yields a
// GuardedSession for every registered backend, that verdicts are
// unchanged by the wrapper, and that Reset clears the engine episode.
func TestWithGuardWrapsEveryBackend(t *testing.T) {
	for _, backend := range Backends() {
		t.Run(backend, func(t *testing.T) {
			det := fittedDetector(t, backend)
			traj := testFold(t).Test[0]

			plain, err := det.NewSession(WithSessionLabels(traj.Gestures))
			if err != nil {
				t.Fatal(err)
			}
			defer plain.Close()
			sess, err := det.NewSession(WithSessionLabels(traj.Gestures), WithGuard(guardTestPolicy()))
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close()
			gs, ok := sess.(GuardedSession)
			if !ok {
				t.Fatalf("WithGuard session is %T, not GuardedSession", sess)
			}

			for i := range traj.Frames {
				want, err := plain.Push(&traj.Frames[i])
				if err != nil {
					t.Fatal(err)
				}
				got, err := gs.Push(&traj.Frames[i])
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("frame %d: guarded verdict %+v != plain %+v", i, got, want)
				}
				if d := gs.Decision(); d.FrameIndex != want.FrameIndex {
					t.Fatalf("frame %d: decision tracks frame %d", i, d.FrameIndex)
				}
			}
			if c := gs.GuardCounters(); c.Frames != uint64(traj.Len()) {
				t.Errorf("engine saw %d frames, want %d", c.Frames, traj.Len())
			}
			if gs.GuardPolicy().Name != "test" {
				t.Errorf("policy = %q", gs.GuardPolicy().Name)
			}

			if err := gs.Reset(traj.Gestures); err != nil {
				t.Fatal(err)
			}
			if d := gs.Decision(); d.Action != guard.ActionNone || d.AlertFrame != -1 {
				t.Errorf("decision after Reset = %+v", d)
			}
		})
	}
}

// TestWithGuardInvalidPolicy pins that a bad policy fails at session-open
// time, not mid-stream.
func TestWithGuardInvalidPolicy(t *testing.T) {
	det := fittedDetector(t, "envelope")
	_, err := det.NewSession(WithGuard(guard.Policy{Threshold: -1}))
	if err == nil {
		t.Fatal("invalid guard policy accepted")
	}
}

// TestSessionPushZeroAllocGuarded extends the streaming allocation budget
// to guarded sessions: the policy engine must add zero allocations to the
// warm per-frame path of every backend.
func TestSessionPushZeroAllocGuarded(t *testing.T) {
	for _, backend := range perfBackends() {
		t.Run(backend, func(t *testing.T) {
			det := fittedDetector(t, backend)
			fold := testFold(t)
			traj := fold.Test[0]
			sess, err := det.NewSession(WithGuard(guardTestPolicy()))
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close()
			for i := range traj.Frames {
				if _, err := sess.Push(&traj.Frames[i]); err != nil {
					t.Fatal(err)
				}
			}
			i := 0
			allocs := testing.AllocsPerRun(200, func() {
				if _, err := sess.Push(&traj.Frames[i%traj.Len()]); err != nil {
					t.Fatal(err)
				}
				i++
			})
			if allocs != 0 {
				t.Errorf("%s: warm guarded Push allocates %.1f objects/frame, want 0", backend, allocs)
			}
		})
	}
}
