package safemon

import (
	"repro/internal/core"
	"repro/internal/kinematics"
)

// Cross-session micro-batching. A Batcher pushes one frame into each of N
// sessions in a single call, grouping the sessions whose inference runs on
// the same trained monitor so they share one batched forward per network
// (core.BatchStepper) instead of N per-stream GEMVs. Sessions that cannot
// batch — lookahead streams, non-nn backends — take their ordinary Push
// path inside the same call, so callers need not segregate their traffic.
//
// Determinism contract: the batched kernels preserve each stream's exact
// accumulation chains, so every verdict (and every guard decision and
// ledger record derived from it) is bit-identical to calling Push on each
// session individually, in slice order.

// batchEntry is one session's plan for the current batched push: either a
// concrete monitor stream awaiting batched inference, or an
// already-complete verdict/error (fronts that stayed disarmed, failures).
type batchEntry struct {
	stream  *core.Stream
	mon     *core.Monitor
	done    bool
	verdict FrameVerdict
	err     error
}

// batchSession is the internal capability a session implements to join
// cross-session batches. batchable must be static for the session's
// lifetime (decided at construction), so planPush's side effects — window
// advancement, gating state — are only ever spent on sessions whose
// finishPush will run. planPush performs everything Push does except the
// batched monitor inference; finishPush performs everything Push does
// after it (guard stepping, ledger recording) given the scored verdict.
type batchSession interface {
	batchable() bool
	planPush(f *Frame) batchEntry
	finishPush(f *Frame, v FrameVerdict) (FrameVerdict, error)
}

// BatchCounts reports how one PushBatch call dispatched its sessions.
type BatchCounts struct {
	// Batched counts sessions whose inference ran inside a shared batched
	// forward (including cascade sessions armed this frame).
	Batched int
	// Fallback counts sessions that took the ordinary per-stream Push path
	// because they cannot batch.
	Fallback int
	// Inline counts batchable sessions that needed no monitor inference
	// this frame (disarmed cascade fronts and failed pushes).
	Inline int
}

// Batcher executes batched pushes across many sessions. It lazily builds
// one core.BatchStepper per distinct monitor it encounters and keeps all
// per-call scratch, so steady-state batches allocate nothing. A Batcher is
// not safe for concurrent use: create one per batching goroutine (the
// serve layer holds one per shard).
type Batcher struct {
	maxB     int
	steppers map[*core.Monitor]*core.BatchStepper

	entries  []batchEntry
	sessions []batchSession
	eidx     []int
	streams  []*core.Stream
	frames   []*kinematics.Frame
	verdicts []core.FrameVerdict
	gidx     []int
}

// NewBatcher builds a batcher that dispatches at most maxBatch streams per
// batched forward; larger PushBatch calls are chunked internally by the
// steppers.
func NewBatcher(maxBatch int) *Batcher {
	if maxBatch < 1 {
		maxBatch = 1
	}
	return &Batcher{maxB: maxBatch, steppers: make(map[*core.Monitor]*core.BatchStepper)}
}

// MaxBatch returns the per-forward stream cap the batcher was built with.
func (b *Batcher) MaxBatch() int { return b.maxB }

// PushBatch pushes frames[i] into sessions[i] and fills verdicts[i] /
// errs[i] with exactly what sessions[i].Push(frames[i]) would have
// returned. All four slices must have the same length, and a session must
// not appear twice in one call. Returns how the sessions were dispatched.
func (b *Batcher) PushBatch(sessions []Session, frames []*Frame, verdicts []FrameVerdict, errs []error) BatchCounts {
	var counts BatchCounts
	entries := b.entries[:0]
	bss := b.sessions[:0]
	eidx := b.eidx[:0]
	for i, s := range sessions {
		bs, ok := s.(batchSession)
		if !ok || !bs.batchable() {
			verdicts[i], errs[i] = s.Push(frames[i])
			counts.Fallback++
			continue
		}
		e := bs.planPush(frames[i])
		if e.done {
			if e.err != nil {
				verdicts[i], errs[i] = e.verdict, e.err
			} else {
				verdicts[i], errs[i] = bs.finishPush(frames[i], e.verdict)
			}
			counts.Inline++
			continue
		}
		entries = append(entries, e)
		bss = append(bss, bs)
		eidx = append(eidx, i)
	}
	b.entries, b.sessions, b.eidx = entries, bss, eidx

	// Group the pending entries by monitor and run one batched step per
	// group. The grouped scan is quadratic in the worst case but batches
	// are shard-sized and groups are few (typically one per backend).
	grouped := b.gidx[:0]
	for i := 0; i < len(entries); i++ {
		if entries[i].mon == nil {
			continue
		}
		mon := entries[i].mon
		streams := b.streams[:0]
		fr := b.frames[:0]
		grouped = grouped[:0]
		for j := i; j < len(entries); j++ {
			if entries[j].mon == mon {
				streams = append(streams, entries[j].stream)
				fr = append(fr, frames[eidx[j]])
				grouped = append(grouped, j)
				entries[j].mon = nil
			}
		}
		b.streams, b.frames, b.gidx = streams, fr, grouped

		if cap(b.verdicts) < len(streams) {
			b.verdicts = make([]core.FrameVerdict, len(streams))
		}
		out := b.verdicts[:len(streams)]
		b.stepperFor(mon).Step(streams, fr, out)
		for k, j := range grouped {
			idx := eidx[j]
			verdicts[idx], errs[idx] = bss[j].finishPush(frames[idx], out[k])
			counts.Batched++
		}
	}
	return counts
}

// stepperFor returns the monitor's batched stepper, building it on first
// encounter. NewBatchStepper only fails on a monitor with no error stage,
// which cannot produce a live session in the first place; if it somehow
// does, the nil stepper would panic loudly rather than mis-score.
func (b *Batcher) stepperFor(mon *core.Monitor) *core.BatchStepper {
	st, ok := b.steppers[mon]
	if !ok {
		st, _ = mon.NewBatchStepper(b.maxB)
		b.steppers[mon] = st
	}
	return st
}
