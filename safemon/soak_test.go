package safemon

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/testutil"
)

// TestWatchSoakSharedNetwork soaks Watch under -race: many concurrent
// sessions over one shared trained network, half of them cancelled
// mid-stream, and no goroutine may outlive its stream. This pins the PR 1
// guarantee that inference on a shared network is race-free, now under
// channel-mode concurrency.
func TestWatchSoakSharedNetwork(t *testing.T) {
	det := fittedDetector(t, "context-aware") // one shared trained network
	fold := testFold(t)
	baseline := runtime.NumGoroutine()

	const watchers = 16
	var wg sync.WaitGroup
	errs := make(chan error, watchers)
	for i := 0; i < watchers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			traj := fold.Test[i%len(fold.Test)]
			sess, err := det.NewSession()
			if err != nil {
				errs <- err
				return
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			in := make(chan *Frame)
			out := Watch(ctx, sess, in)

			cancelAt := -1
			if i%2 == 0 {
				cancelAt = traj.Len() / 2 // cancel mid-stream
			}
			go func() {
				defer close(in)
				for j := range traj.Frames {
					select {
					case in <- &traj.Frames[j]:
					case <-ctx.Done():
						return
					}
				}
			}()
			n := 0
			for sv := range out {
				if sv.Err != nil {
					if ctx.Err() != nil {
						return // cancellation surfacing as an error is fine
					}
					errs <- sv.Err
					return
				}
				if sv.Verdict.FrameIndex != n {
					errs <- fmt.Errorf("watcher %d: verdict %d out of order (frame %d)", i, sv.Verdict.FrameIndex, n)
					return
				}
				n++
				if n == cancelAt {
					cancel()
				}
			}
			if cancelAt < 0 && n != traj.Len() {
				errs <- fmt.Errorf("watcher %d: %d verdicts for %d frames", i, n, traj.Len())
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	testutil.WaitGoroutines(t, baseline, 2)
}
