package safemon

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// saveArtifact marshals a fitted detector to bytes.
func saveArtifact(t testing.TB, det Detector) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		t.Fatalf("save %s: %v", det.Info().Name, err)
	}
	return buf.Bytes()
}

// loadedFixture caches one artifact-loaded detector per backend, built from
// the shared fitted fixture, so round-trip tests and the loaded-session
// performance suite don't refit or re-decode per test.
var loadedFixture struct {
	m map[string]Detector
}

// loadedDetector returns a detector reconstructed from the fitted fixture's
// artifact — the "serve from artifact" path every round-trip test compares
// against its in-memory twin.
func loadedDetector(t testing.TB, backend string) Detector {
	t.Helper()
	det := fittedDetector(t, backend) // shares fittedFixture.mu-free access pattern of tests
	fittedFixture.mu.Lock()
	defer fittedFixture.mu.Unlock()
	if d, ok := loadedFixture.m[backend]; ok {
		return d
	}
	loaded, err := LoadDetector(bytes.NewReader(saveArtifact(t, det)))
	if err != nil {
		t.Fatalf("load %s: %v", backend, err)
	}
	if loadedFixture.m == nil {
		loadedFixture.m = map[string]Detector{}
	}
	loadedFixture.m[backend] = loaded
	return loaded
}

// TestArtifactRoundTripVerdicts is the core round-trip guarantee: for every
// backend, a detector reconstructed from its artifact produces verdicts
// identical to the in-memory fitted detector, across both the batch Runner
// and a manual Session replay (the live-safemond leg lives in
// safemon/serve's golden suite).
func TestArtifactRoundTripVerdicts(t *testing.T) {
	fold := testFold(t)
	ctx := context.Background()
	for _, backend := range Backends() {
		t.Run(backend, func(t *testing.T) {
			det := fittedDetector(t, backend)
			loaded := loadedDetector(t, backend)

			if got, want := loaded.Info(), det.Info(); got != want {
				t.Errorf("loaded Info %+v, want %+v", got, want)
			}

			wantTraces, err := (&Runner{Detector: det, Workers: 2}).Traces(ctx, fold.Test)
			if err != nil {
				t.Fatal(err)
			}
			gotTraces, err := (&Runner{Detector: loaded, Workers: 2}).Traces(ctx, fold.Test)
			if err != nil {
				t.Fatal(err)
			}
			for i := range wantTraces {
				if !reflect.DeepEqual(wantTraces[i].Verdicts, gotTraces[i].Verdicts) {
					t.Fatalf("trajectory %d: loaded Runner verdicts differ", i)
				}
			}

			// Manual replay, twice through one session to pin Reset.
			traj := fold.Test[0]
			sess, err := loaded.NewSession(WithSessionLabels(traj.Gestures))
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close()
			for pass := 0; pass < 2; pass++ {
				for i := range traj.Frames {
					v, err := sess.Push(&traj.Frames[i])
					if err != nil {
						t.Fatal(err)
					}
					if want := wantTraces[0].Verdicts[i]; v != want {
						t.Fatalf("pass %d frame %d: verdict %+v, want %+v", pass, i, v, want)
					}
				}
				if err := sess.Reset(traj.Gestures); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

func TestSaveUnfittedFails(t *testing.T) {
	for _, backend := range Backends() {
		det, err := Open(backend)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := det.Save(&buf); !errors.Is(err, ErrNotFitted) {
			t.Errorf("%s: Save on unfitted detector = %v, want ErrNotFitted", backend, err)
		}
	}
}

// TestLoadOnFittedFails pins the already-fitted guard: loading an artifact
// into a detector that is serving a model must fail with ErrAlreadyFitted
// and leave the detector untouched.
func TestLoadOnFittedFails(t *testing.T) {
	for _, backend := range []string{"envelope", "skipchain", "context-aware"} {
		t.Run(backend, func(t *testing.T) {
			det := fittedDetector(t, backend)
			art := saveArtifact(t, det)
			if err := det.Load(bytes.NewReader(art)); !errors.Is(err, ErrAlreadyFitted) {
				t.Fatalf("Load on fitted detector = %v, want ErrAlreadyFitted", err)
			}
			// The refused load must not have disturbed the live model.
			if _, err := det.NewSession(WithSessionLabels(nil)); err != nil {
				t.Fatalf("detector unusable after refused load: %v", err)
			}
		})
	}
}

// corrupt applies one mutation to a copy of an artifact.
func corrupt(art []byte, mutate func([]byte)) []byte {
	out := append([]byte(nil), art...)
	mutate(out)
	return out
}

// TestLoadCorruptArtifactTypedErrors feeds systematically damaged artifacts
// through LoadDetector and asserts each failure is the matching typed
// sentinel wrapped in *ArtifactError — and never a panic.
func TestLoadCorruptArtifactTypedErrors(t *testing.T) {
	art := saveArtifact(t, fittedDetector(t, "envelope"))

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"bad magic", corrupt(art, func(b []byte) { b[0] = 'X' }), ErrBadMagic},
		{"empty", nil, ErrBadMagic},
		{"version bump", corrupt(art, func(b []byte) { binary.BigEndian.PutUint16(b[4:6], 99) }), ErrBadFormatVersion},
		{"truncated header", art[:8], ErrTruncated},
		{"truncated payload", art[:len(art)/2], ErrTruncated},
		{"payload bit flip", corrupt(art, func(b []byte) { b[len(b)/2] ^= 0x40 }), ErrChecksum},
		{"checksum bit flip", corrupt(art, func(b []byte) { b[len(b)-1] ^= 0x01 }), ErrChecksum},
		{"trailing garbage", append(append([]byte(nil), art...), 0xde, 0xad), ErrCorruptPayload},
		{"oversized claim", corrupt(art, func(b []byte) {
			nameLen := int(binary.BigEndian.Uint16(b[8:10]))
			binary.BigEndian.PutUint64(b[10+nameLen:18+nameLen], 1<<62)
		}), ErrOversized},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadDetector(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("corrupt artifact loaded successfully")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v, want %v", err, tc.want)
			}
			var ae *ArtifactError
			if !errors.As(err, &ae) {
				t.Fatalf("error %T is not a *ArtifactError", err)
			}
		})
	}
}

// TestLoadBackendMismatch loads an envelope artifact into a skipchain
// detector directly (bypassing LoadDetector's registry dispatch).
func TestLoadBackendMismatch(t *testing.T) {
	art := saveArtifact(t, fittedDetector(t, "envelope"))
	det, err := Open("skipchain")
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Load(bytes.NewReader(art)); !errors.Is(err, ErrBackendMismatch) {
		t.Fatalf("cross-backend Load = %v, want ErrBackendMismatch", err)
	}
}

// TestSessionAfterFailedLoad pins the partially-loaded guard: after a
// failed Load the detector must refuse sessions (and Run) with an error
// that wraps the typed *ArtifactError — not silently act unfitted, and
// certainly not serve.
func TestSessionAfterFailedLoad(t *testing.T) {
	art := saveArtifact(t, fittedDetector(t, "envelope"))
	bad := corrupt(art, func(b []byte) { b[len(b)/2] ^= 0x40 })

	det, err := Open("envelope")
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupt load succeeded")
	}
	_, err = det.NewSession()
	if err == nil {
		t.Fatal("NewSession succeeded on a failed-load detector")
	}
	var ae *ArtifactError
	if !errors.As(err, &ae) {
		t.Fatalf("NewSession error %v does not wrap *ArtifactError", err)
	}
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("NewSession error %v does not carry the load failure", err)
	}
	if _, err := det.Run(context.Background(), testFold(t).Test[0]); err == nil {
		t.Fatal("Run succeeded on a failed-load detector")
	}
	// A successful Fit fully repairs the detector.
	if err := det.Fit(context.Background(), testFold(t).Train); err != nil {
		t.Fatal(err)
	}
	if _, err := det.NewSession(); err != nil {
		t.Fatalf("NewSession after repair Fit: %v", err)
	}
}

// TestConfigHash pins the manifest fingerprint: stable for one detector,
// equal across a save/load round trip, different across configurations.
func TestConfigHash(t *testing.T) {
	det := fittedDetector(t, "envelope")
	h1, err := ConfigHash(det)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := ConfigHash(det)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 || len(h1) != 24 || strings.Trim(h1, "0123456789abcdef") != "" {
		t.Fatalf("unstable or malformed hash: %q vs %q", h1, h2)
	}
	loaded := loadedDetector(t, "envelope")
	if h3, _ := ConfigHash(loaded); h3 != h1 {
		t.Errorf("loaded detector hash %q differs from fitted %q", h3, h1)
	}
	other, err := Open("envelope", WithThreshold(0.9))
	if err != nil {
		t.Fatal(err)
	}
	if h4, _ := ConfigHash(other); h4 == h1 {
		t.Error("different configs share a hash")
	}
}
