package safemon

import (
	"context"
	"errors"
	"testing"
)

// scriptedFront replays a fixed score sequence as the cascade's front
// session, making the gating behavior fully deterministic.
type scriptedFront struct {
	scores []float64
	i      int
	resets int
}

func (s *scriptedFront) Push(f *Frame) (FrameVerdict, error) {
	v := FrameVerdict{FrameIndex: s.i, Gesture: 5, Score: s.scores[s.i]}
	s.i++
	return v, nil
}

func (s *scriptedFront) Reset(groundTruth []int) error {
	s.i = 0
	s.resets++
	return nil
}

func (s *scriptedFront) Close() error { return nil }

// TestCascadeArmHoldoff pins the gating semantics: a front score at or
// above the arm threshold runs the inner detector for holdoff frames,
// further suspicious frames refresh the counter, disarmed frames only
// observe, and Reset clears the armed state.
func TestCascadeArmHoldoff(t *testing.T) {
	scores := []float64{0.1, 0.6, 0.1, 0.1, 0.1, 0.1, 0.7, 0.8, 0.1, 0.1, 0.1, 0.1}
	front := &scriptedFront{scores: scores}
	var pushes, observes int
	s := &cascadeSession{
		front: front,
		inner: &gatedStream{
			push: func(f *Frame) FrameVerdict {
				pushes++
				return FrameVerdict{Gesture: 3, Score: 0.9, Unsafe: true}
			},
			observe: func(f *Frame) { observes++ },
			reset:   func([]int) error { return nil },
		},
		arm:     0.5,
		holdoff: 3,
	}

	// Per frame: whether the inner detector should run.
	// f1 arms (0.6), covering f1..f3; f6 arms (0.7) and f7 refreshes
	// (0.8), covering f6..f9; everything else is disarmed.
	wantInner := []bool{false, true, true, true, false, false, true, true, true, true, false, false}
	for i := range scores {
		v, err := s.Push(&Frame{})
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if wantInner[i] {
			if v.Gesture != 3 || !v.Unsafe {
				t.Errorf("frame %d: want inner verdict, got %+v", i, v)
			}
		} else {
			if v.Unsafe {
				t.Errorf("frame %d: disarmed frame must not be unsafe, got %+v", i, v)
			}
			if v.Score != scores[i] || v.Gesture != 5 {
				t.Errorf("frame %d: disarmed verdict should carry front score/context, got %+v", i, v)
			}
		}
	}
	if wantPushes := 7; pushes != wantPushes {
		t.Errorf("inner ran %d frames, want %d", pushes, wantPushes)
	}
	if wantObs := len(scores) - 7; observes != wantObs {
		t.Errorf("inner observed %d frames, want %d", observes, wantObs)
	}

	// Arm on the last scripted frame, then Reset: the armed state must not
	// leak into the next trajectory.
	front.scores = append(front.scores, 0.9)
	if _, err := s.Push(&Frame{}); err != nil {
		t.Fatal(err)
	}
	if s.armed == 0 {
		t.Fatal("expected session to be armed before Reset")
	}
	if err := s.Reset(nil); err != nil {
		t.Fatal(err)
	}
	if s.armed != 0 {
		t.Errorf("Reset left armed = %d, want 0", s.armed)
	}
	if front.resets != 1 {
		t.Errorf("front saw %d resets, want 1", front.resets)
	}
	pushesBefore := pushes
	if v, err := s.Push(&Frame{}); err != nil || v.Unsafe || pushes != pushesBefore {
		t.Errorf("first post-Reset quiet frame should be disarmed, got %+v (err %v, inner pushes %d->%d)",
			v, err, pushesBefore, pushes)
	}
}

// TestCascadeRunSessionEquivalence checks that a single reused session
// (with Reset between trajectories) reproduces Run's verdicts exactly —
// in particular that Reset fully rewinds both stages and the armed state.
func TestCascadeRunSessionEquivalence(t *testing.T) {
	det := fittedDetector(t, "cascade")
	fold := testFold(t)

	var sess Session
	for ti, traj := range fold.Test {
		run, err := det.Run(context.Background(), traj)
		if err != nil {
			t.Fatalf("run traj %d: %v", ti, err)
		}
		if sess == nil {
			sess, err = det.NewSession(WithSessionLabels(traj.Gestures))
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close()
		} else if err := sess.Reset(traj.Gestures); err != nil {
			t.Fatalf("reset before traj %d: %v", ti, err)
		}
		for i := range traj.Frames {
			v, err := sess.Push(&traj.Frames[i])
			if err != nil {
				t.Fatalf("traj %d frame %d: %v", ti, i, err)
			}
			if v != run.Verdicts[i] {
				t.Fatalf("traj %d frame %d: session %+v != run %+v", ti, i, v, run.Verdicts[i])
			}
		}
	}
}

// TestCascadeAlternateStages exercises the non-default stage pairing
// (sdsdl front gating the lookahead detector) end to end.
func TestCascadeAlternateStages(t *testing.T) {
	if testing.Short() {
		t.Skip("trains two nn stages")
	}
	fold := testFold(t)
	opts := append(quickOptions("cascade"),
		WithCascadeStages("sdsdl", "lookahead"), WithAtoms(16),
		WithCascadeArm(0.05), WithCascadeHoldoff(10))
	det, err := Open("cascade", opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Fit(context.Background(), fold.Train); err != nil {
		t.Fatal(err)
	}
	traj := fold.Test[0]
	trace, err := det.Run(context.Background(), traj)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Verdicts) != len(traj.Frames) {
		t.Fatalf("got %d verdicts for %d frames", len(trace.Verdicts), len(traj.Frames))
	}
}

// TestCascadeValidation covers stage-name validation and the unfitted
// session error.
func TestCascadeValidation(t *testing.T) {
	fold := testFold(t)

	det, err := Open("cascade", WithCascadeStages("monolithic", ""))
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Fit(context.Background(), fold.Train); err == nil {
		t.Error("nn backend as cascade front should be rejected")
	}

	det, err = Open("cascade", WithCascadeStages("", "envelope"))
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Fit(context.Background(), fold.Train); err == nil {
		t.Error("envelope as cascade inner should be rejected")
	}

	det, err = Open("cascade")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.NewSession(); !errors.Is(err, ErrNotFitted) {
		t.Errorf("unfitted cascade NewSession error = %v, want ErrNotFitted", err)
	}
}
