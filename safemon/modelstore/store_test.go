package modelstore

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gesture"
	"repro/internal/synth"
	"repro/safemon"
)

// fixture shares one tiny fold and one fitted envelope detector across the
// package's tests (envelope fits in milliseconds).
var fixture struct {
	once sync.Once
	fold dataset.LOSOSplit
	det  safemon.Detector
	err  error
}

func fittedEnvelope(t testing.TB) (safemon.Detector, dataset.LOSOSplit) {
	t.Helper()
	fixture.once.Do(func() {
		demos, err := synth.Generate(synth.Config{
			Task: gesture.Suturing, Hz: 30, Seed: 23,
			NumDemos: 4, NumTrials: 2, Subjects: 2, DurationScale: 0.3,
		})
		if err != nil {
			fixture.err = err
			return
		}
		fixture.fold = dataset.LOSO(synth.Trajectories(demos))[0]
		det, err := safemon.Open("envelope", safemon.WithThreshold(0.2))
		if err != nil {
			fixture.err = err
			return
		}
		if err := det.Fit(context.Background(), fixture.fold.Train); err != nil {
			fixture.err = err
			return
		}
		fixture.det = det
	})
	if fixture.err != nil {
		t.Fatal(fixture.err)
	}
	return fixture.det, fixture.fold
}

func TestSaveLoadRoundTrip(t *testing.T) {
	det, fold := fittedEnvelope(t)
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	m, err := store.Save(det, "")
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != "v0001" || m.Backend != "envelope" {
		t.Fatalf("manifest %+v", m)
	}
	if m.TrainConfigHash == "" {
		t.Error("manifest missing train-config hash")
	}
	wantHash, err := safemon.ConfigHash(det)
	if err != nil {
		t.Fatal(err)
	}
	if m.TrainConfigHash != wantHash {
		t.Errorf("hash %s, want %s", m.TrainConfigHash, wantHash)
	}

	loaded, lm, err := store.Load("envelope", "")
	if err != nil {
		t.Fatal(err)
	}
	if lm.Version != "v0001" {
		t.Errorf("loaded version %s", lm.Version)
	}
	ctx := context.Background()
	want, err := det.Run(ctx, fold.Test[0])
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Run(ctx, fold.Test[0])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Verdicts, got.Verdicts) {
		t.Fatal("store-loaded detector verdicts differ from fitted")
	}
}

func TestVersionSequenceAndLatest(t *testing.T) {
	det, _ := fittedEnvelope(t)
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Save(det, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Save(det, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Save(det, "candidate-2026.07"); err != nil {
		t.Fatal(err)
	}
	versions, err := store.Versions("envelope")
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 3 {
		t.Fatalf("got %d versions", len(versions))
	}
	latest, err := store.Latest("envelope")
	if err != nil {
		t.Fatal(err)
	}
	if latest.Version != versions[2].Version {
		t.Errorf("latest %s, want %s", latest.Version, versions[2].Version)
	}
	backends, err := store.Backends()
	if err != nil {
		t.Fatal(err)
	}
	if len(backends) != 1 || backends[0] != "envelope" {
		t.Errorf("backends %v", backends)
	}
}

func TestVersionsAreImmutable(t *testing.T) {
	det, _ := fittedEnvelope(t)
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Save(det, "v1"); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Save(det, "v1"); !errors.Is(err, ErrVersionExists) {
		t.Fatalf("overwrite = %v, want ErrVersionExists", err)
	}
}

func TestNotFoundAndBadNames(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Load("envelope", ""); !errors.Is(err, ErrNotFound) {
		t.Errorf("empty store Load = %v, want ErrNotFound", err)
	}
	if _, err := store.Versions("no-such-backend"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Versions = %v, want ErrNotFound", err)
	}
	if _, err := store.Manifest("../escape", "v1"); !errors.Is(err, ErrBadName) {
		t.Errorf("path-traversal backend = %v, want ErrBadName", err)
	}
	if _, err := store.Manifest("envelope", ".hidden"); !errors.Is(err, ErrBadName) {
		t.Errorf("dot version = %v, want ErrBadName", err)
	}
}

func TestManifestArtifactCrossCheck(t *testing.T) {
	det, _ := fittedEnvelope(t)
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Save(det, "v1"); err != nil {
		t.Fatal(err)
	}
	// Corrupt the artifact under the manifest's feet.
	path := filepath.Join(dir, "envelope", "v1", artifactFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Load("envelope", "v1"); !errors.Is(err, ErrBadManifest) {
		t.Fatalf("Load of tampered artifact = %v, want ErrBadManifest", err)
	}
}

// TestBadVersionDoesNotBrickStore pins the degraded-store contract: one
// version with a corrupt manifest must not take down Latest/Load for the
// good versions, nor Save's auto-versioning — only an explicit request for
// the bad version fails.
func TestBadVersionDoesNotBrickStore(t *testing.T) {
	det, _ := fittedEnvelope(t)
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Save(det, ""); err != nil { // v0001
		t.Fatal(err)
	}
	if _, err := store.Save(det, ""); err != nil { // v0002
		t.Fatal(err)
	}
	// Corrupt v0002's manifest.
	bad := filepath.Join(dir, "envelope", "v0002", manifestFile)
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	latest, err := store.Latest("envelope")
	if err != nil {
		t.Fatalf("Latest with one bad version: %v", err)
	}
	if latest.Version != "v0001" {
		t.Errorf("latest %s, want the surviving v0001", latest.Version)
	}
	if _, _, err := store.Load("envelope", ""); err != nil {
		t.Fatalf("Load latest: %v", err)
	}
	if _, err := store.Manifest("envelope", "v0002"); !errors.Is(err, ErrBadManifest) {
		t.Errorf("explicit bad version = %v, want ErrBadManifest", err)
	}
	// Auto-versioning must step past the bad directory, not collide.
	m, err := store.Save(det, "")
	if err != nil {
		t.Fatalf("Save after corruption: %v", err)
	}
	if m.Version != "v0003" {
		t.Errorf("next version %s, want v0003", m.Version)
	}
	backends, err := store.Backends()
	if err != nil || len(backends) != 1 {
		t.Errorf("Backends = %v, %v", backends, err)
	}

	// A backend whose only version is bad is skipped entirely — it must
	// not keep Backends() (and thus `safemond -backends all`) from
	// serving the healthy backends.
	if err := os.MkdirAll(filepath.Join(dir, "otherbackend", "v1"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "otherbackend", "v1", manifestFile), []byte("{oops"), 0o644); err != nil {
		t.Fatal(err)
	}
	backends, err = store.Backends()
	if err != nil {
		t.Fatalf("Backends with a fully-bad backend dir: %v", err)
	}
	if len(backends) != 1 || backends[0] != "envelope" {
		t.Errorf("Backends = %v, want [envelope]", backends)
	}
}

func TestParseManifestValidation(t *testing.T) {
	good := Manifest{
		Backend: "envelope", Version: "v1",
		FormatVersion: safemon.ArtifactFormatVersion, SizeBytes: 10,
	}
	enc := func(m Manifest) []byte {
		data, _ := json.Marshal(m)
		return data
	}
	if _, err := ParseManifest(enc(good)); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
	cases := map[string]Manifest{
		"empty backend":  {Version: "v1", FormatVersion: 1, SizeBytes: 10},
		"bad version":    {Backend: "envelope", Version: "../up", FormatVersion: 1, SizeBytes: 10},
		"future format":  {Backend: "envelope", Version: "v1", FormatVersion: 99, SizeBytes: 10},
		"zero size":      {Backend: "envelope", Version: "v1", FormatVersion: 1},
		"dotted version": {Backend: "envelope", Version: ".v1", FormatVersion: 1, SizeBytes: 10},
	}
	for name, m := range cases {
		if _, err := ParseManifest(enc(m)); !errors.Is(err, ErrBadManifest) {
			t.Errorf("%s: err = %v, want ErrBadManifest", name, err)
		}
	}
	if _, err := ParseManifest([]byte("{")); !errors.Is(err, ErrBadManifest) {
		t.Errorf("syntax error: %v", err)
	}
}

// FuzzParseManifest holds the manifest decoder to the same contract as the
// artifact decoder: arbitrary bytes yield ErrBadManifest or a validated
// manifest, never a panic.
func FuzzParseManifest(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"backend":"envelope","version":"v1","format_version":1,"size_bytes":10}`))
	f.Add([]byte(`{"backend":"../x","version":"v1","format_version":1,"size_bytes":10}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseManifest(data)
		if err != nil {
			if !errors.Is(err, ErrBadManifest) {
				t.Fatalf("non-typed error %v", err)
			}
			return
		}
		if !validName.MatchString(m.Backend) || !validName.MatchString(m.Version) {
			t.Fatalf("accepted manifest with invalid names: %+v", m)
		}
	})
}
