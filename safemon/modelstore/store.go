// Package modelstore is the on-disk versioned store for safemon detector
// artifacts: the bridge between offline training (safemond -train-only,
// experiments -run train) and artifact-serving daemons (safemond
// -model-dir), with immutable versions so deployments are reproducible and
// rollbacks are a directory rename away.
//
// # Layout
//
//	<dir>/<backend>/<version>/artifact.bin   the Detector.Save artifact
//	<dir>/<backend>/<version>/manifest.json  version metadata (Manifest)
//
// Versions are immutable: Save writes artifact and manifest into a staging
// directory and atomically renames it into place, and refuses to overwrite
// an existing version. Readers therefore never observe a torn version, and
// a version directory either fully exists or does not exist at all.
//
// # Artifact format-version policy
//
// Every artifact embeds safemon.ArtifactFormatVersion (currently 1) in its
// header and every manifest records it as "format_version". The format is
// strict-versioned: a build loads only artifacts whose format version
// matches its own, and bumping the version is reserved for incompatible
// layout changes (field reordering, new compression, changed checksums).
// Backward-compatible additions must instead extend the backend payloads,
// which are self-describing gob and tolerate unknown fields on decode.
// After a bump, old artifacts fail loudly with ErrBadFormatVersion — the
// remedy is retraining (make train), never silent reinterpretation. The
// store keeps old versions on disk untouched, so operators can pin a
// daemon of the matching build to an old artifact during a migration.
package modelstore

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"time"

	"repro/safemon"
)

// Store errors.
var (
	// ErrNotFound reports a backend or version absent from the store.
	ErrNotFound = errors.New("modelstore: not found")
	// ErrVersionExists reports a Save targeting an existing version
	// (versions are immutable).
	ErrVersionExists = errors.New("modelstore: version already exists")
	// ErrBadManifest reports a manifest that is unreadable, invalid, or
	// disagrees with its artifact.
	ErrBadManifest = errors.New("modelstore: bad manifest")
	// ErrBadName reports a backend or version name unusable as a
	// directory name.
	ErrBadName = errors.New("modelstore: bad backend or version name")
)

// Manifest is the JSON metadata stored next to every artifact.
type Manifest struct {
	// Backend is the detector's registry name.
	Backend string `json:"backend"`
	// Version is the immutable store version this artifact lives under.
	Version string `json:"version"`
	// FormatVersion is the artifact format the file was written with
	// (see the package's format-version policy).
	FormatVersion int `json:"format_version"`
	// TrainConfigHash fingerprints the training configuration
	// (safemon.ConfigHash), tracing a served model back to its setup.
	TrainConfigHash string `json:"train_config_hash,omitempty"`
	// CreatedAt is the artifact's creation time (UTC).
	CreatedAt time.Time `json:"created_at"`
	// SizeBytes is the artifact file's size.
	SizeBytes int64 `json:"size_bytes"`
	// CRC32 is the IEEE checksum of the whole artifact file, cross-
	// checking that manifest and artifact belong together.
	CRC32 uint32 `json:"crc32"`
}

// artifactFile and manifestFile are the fixed names inside a version dir.
const (
	artifactFile = "artifact.bin"
	manifestFile = "manifest.json"
)

// maxManifestBytes caps manifest reads (a manifest is a few hundred bytes;
// anything larger is corrupt).
const maxManifestBytes = 1 << 20

// validName constrains backend and version directory names.
var validName = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]*$`)

// ParseManifest decodes and validates manifest JSON. Invalid input yields
// an error wrapping ErrBadManifest; it never panics.
func ParseManifest(data []byte) (*Manifest, error) {
	if len(data) > maxManifestBytes {
		return nil, fmt.Errorf("%w: %d bytes exceeds cap", ErrBadManifest, len(data))
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadManifest, err)
	}
	if !validName.MatchString(m.Backend) {
		return nil, fmt.Errorf("%w: bad backend name %q", ErrBadManifest, m.Backend)
	}
	if !validName.MatchString(m.Version) {
		return nil, fmt.Errorf("%w: bad version %q", ErrBadManifest, m.Version)
	}
	if m.FormatVersion != safemon.ArtifactFormatVersion {
		return nil, fmt.Errorf("%w: format version %d, support %d", ErrBadManifest, m.FormatVersion, safemon.ArtifactFormatVersion)
	}
	if m.SizeBytes <= 0 {
		return nil, fmt.Errorf("%w: non-positive artifact size %d", ErrBadManifest, m.SizeBytes)
	}
	return &m, nil
}

// Store is a directory of versioned detector artifacts. All methods are
// safe for concurrent use by multiple processes to the extent the
// filesystem's rename atomicity reaches.
type Store struct {
	dir string
}

// Open opens (creating if needed) a store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("modelstore: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("modelstore: open %s: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Save serializes a fitted detector as a new immutable version and returns
// its manifest. version "" auto-assigns the next sequential "vNNNN". The
// write is atomic: artifact and manifest land in a staging directory that
// is renamed into place, so readers never see a partial version.
func (s *Store) Save(det safemon.Detector, version string) (*Manifest, error) {
	backend := det.Info().Name
	if !validName.MatchString(backend) {
		return nil, fmt.Errorf("%w: backend %q", ErrBadName, backend)
	}
	backendDir := filepath.Join(s.dir, backend)
	if err := os.MkdirAll(backendDir, 0o755); err != nil {
		return nil, fmt.Errorf("modelstore: %w", err)
	}
	if version == "" {
		var err error
		if version, err = s.nextVersion(backend); err != nil {
			return nil, err
		}
	} else if !validName.MatchString(version) || version == "latest" {
		// "latest" is Load's alias for the newest version; a version
		// actually named that could never be pinned explicitly.
		return nil, fmt.Errorf("%w: version %q", ErrBadName, version)
	}
	finalDir := filepath.Join(backendDir, version)
	if _, err := os.Stat(finalDir); err == nil {
		return nil, fmt.Errorf("%w: %s/%s", ErrVersionExists, backend, version)
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("modelstore: %w", err)
	}

	staging, err := os.MkdirTemp(backendDir, ".staging-"+version+"-")
	if err != nil {
		return nil, fmt.Errorf("modelstore: %w", err)
	}
	defer os.RemoveAll(staging) // no-op after a successful rename

	// Stream the artifact through a CRC/size tee so the manifest fields
	// need no second read of the file.
	f, err := os.Create(filepath.Join(staging, artifactFile))
	if err != nil {
		return nil, fmt.Errorf("modelstore: %w", err)
	}
	hash := crc32.NewIEEE()
	var size countingWriter
	if err := det.Save(io.MultiWriter(f, hash, &size)); err != nil {
		f.Close()
		return nil, fmt.Errorf("modelstore: save %s: %w", backend, err)
	}
	if err := closeSynced(f); err != nil {
		return nil, err
	}

	m := &Manifest{
		Backend:       backend,
		Version:       version,
		FormatVersion: safemon.ArtifactFormatVersion,
		CreatedAt:     time.Now().UTC().Truncate(time.Second),
		SizeBytes:     int64(size),
		CRC32:         hash.Sum32(),
	}
	if hash, err := safemon.ConfigHash(det); err == nil {
		m.TrainConfigHash = hash
	}
	mdata, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("modelstore: %w", err)
	}
	mf, err := os.Create(filepath.Join(staging, manifestFile))
	if err != nil {
		return nil, fmt.Errorf("modelstore: %w", err)
	}
	if _, err := mf.Write(append(mdata, '\n')); err != nil {
		mf.Close()
		return nil, fmt.Errorf("modelstore: %w", err)
	}
	if err := closeSynced(mf); err != nil {
		return nil, err
	}
	// Durable publish: both files are synced above; sync the staging dir so
	// their entries are on disk, rename, then sync the backend dir so the
	// rename itself survives a crash — a version either fully exists with
	// flushed content or not at all (the "never a torn version" contract).
	if err := syncDir(staging); err != nil {
		return nil, err
	}
	if err := os.Rename(staging, finalDir); err != nil {
		return nil, fmt.Errorf("modelstore: publish %s/%s: %w", backend, version, err)
	}
	if err := syncDir(backendDir); err != nil {
		return nil, err
	}
	return m, nil
}

// countingWriter tallies bytes written through it.
type countingWriter int64

func (c *countingWriter) Write(p []byte) (int, error) {
	*c += countingWriter(len(p))
	return len(p), nil
}

// closeSynced flushes a file to stable storage before closing it.
func closeSynced(f *os.File) error {
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("modelstore: sync %s: %w", f.Name(), err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("modelstore: %w", err)
	}
	return nil
}

// syncDir flushes a directory's entries to stable storage.
func syncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("modelstore: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("modelstore: sync %s: %w", path, err)
	}
	return nil
}

// nextVersion picks the next free sequential "vNNNN" for a backend. It
// scans directory names rather than manifests so a version whose manifest
// is corrupt still advances the counter instead of colliding.
func (s *Store) nextVersion(backend string) (string, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, backend))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return "", fmt.Errorf("modelstore: %w", err)
	}
	next := 1
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(e.Name(), "v%d", &n); err == nil && n >= next {
			next = n + 1
		}
	}
	return fmt.Sprintf("v%04d", next), nil
}

// Manifest reads and validates one version's manifest.
func (s *Store) Manifest(backend, version string) (*Manifest, error) {
	if !validName.MatchString(backend) || !validName.MatchString(version) {
		return nil, fmt.Errorf("%w: %q/%q", ErrBadName, backend, version)
	}
	path := filepath.Join(s.dir, backend, version, manifestFile)
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, backend, version)
	}
	if err != nil {
		return nil, fmt.Errorf("modelstore: %w", err)
	}
	m, err := ParseManifest(data)
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", backend, version, err)
	}
	if m.Backend != backend || m.Version != version {
		return nil, fmt.Errorf("%w: manifest names %s/%s but lives at %s/%s", ErrBadManifest, m.Backend, m.Version, backend, version)
	}
	return m, nil
}

// Versions lists a backend's valid versions, oldest first (by creation
// time, then version string). Version directories whose manifest is
// corrupt or written by an unsupported format version are skipped — one
// bad version must not brick serving (Latest/Load) or retraining
// (Save's auto-versioning) for the backend; Manifest still reports the
// error when such a version is requested explicitly.
func (s *Store) Versions(backend string) ([]*Manifest, error) {
	if !validName.MatchString(backend) {
		return nil, fmt.Errorf("%w: %q", ErrBadName, backend)
	}
	entries, err := os.ReadDir(filepath.Join(s.dir, backend))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: backend %s", ErrNotFound, backend)
	}
	if err != nil {
		return nil, fmt.Errorf("modelstore: %w", err)
	}
	var out []*Manifest
	var firstBad error
	for _, e := range entries {
		if !e.IsDir() || !validName.MatchString(e.Name()) {
			continue // staging leftovers and strays
		}
		m, err := s.Manifest(backend, e.Name())
		if err != nil {
			if firstBad == nil {
				firstBad = err
			}
			continue
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		if firstBad != nil {
			return nil, firstBad
		}
		return nil, fmt.Errorf("%w: backend %s has no versions", ErrNotFound, backend)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].CreatedAt.Equal(out[j].CreatedAt) {
			return out[i].CreatedAt.Before(out[j].CreatedAt)
		}
		return out[i].Version < out[j].Version
	})
	return out, nil
}

// Latest returns the manifest of a backend's newest version.
func (s *Store) Latest(backend string) (*Manifest, error) {
	manifests, err := s.Versions(backend)
	if err != nil {
		return nil, err
	}
	return manifests[len(manifests)-1], nil
}

// Backends lists backends with at least one version, sorted.
func (s *Store) Backends() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("modelstore: %w", err)
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() || !validName.MatchString(e.Name()) {
			continue
		}
		// A backend with no loadable version — empty, or every manifest
		// corrupt/incompatible — is skipped like any other stray: one bad
		// backend directory must not keep `safemond -backends all` from
		// serving the healthy ones. Only unexpected I/O errors propagate.
		if _, err := s.Versions(e.Name()); err != nil {
			if errors.Is(err, ErrNotFound) || errors.Is(err, ErrBadManifest) {
				continue
			}
			return nil, err
		}
		out = append(out, e.Name())
	}
	sort.Strings(out)
	return out, nil
}

// Load reconstructs a ready-to-serve detector from a stored version
// (version "" or "latest" resolves the newest), verifying the manifest's
// checksum against the artifact before decoding. The detector is built
// without any Fit call.
func (s *Store) Load(backend, version string) (safemon.Detector, *Manifest, error) {
	var m *Manifest
	var err error
	if version == "" || version == "latest" {
		m, err = s.Latest(backend)
	} else {
		m, err = s.Manifest(backend, version)
	}
	if err != nil {
		return nil, nil, err
	}
	path := filepath.Join(s.dir, backend, m.Version, artifactFile)
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil, fmt.Errorf("%w: %s/%s artifact", ErrNotFound, backend, m.Version)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("modelstore: %w", err)
	}
	if int64(len(data)) != m.SizeBytes || crc32.ChecksumIEEE(data) != m.CRC32 {
		return nil, nil, fmt.Errorf("%w: %s/%s artifact disagrees with manifest (size %d/%d)", ErrBadManifest, backend, m.Version, len(data), m.SizeBytes)
	}
	det, err := safemon.LoadDetector(bytes.NewReader(data))
	if err != nil {
		return nil, nil, fmt.Errorf("modelstore: %s/%s: %w", backend, m.Version, err)
	}
	if got := det.Info().Name; got != backend {
		return nil, nil, fmt.Errorf("%w: artifact at %s/%s is for backend %s", ErrBadManifest, backend, m.Version, got)
	}
	return det, m, nil
}
