package safemon

import (
	"testing"

	"repro/safemon/guard"
	"repro/safemon/ledger"
)

// TestWithLedgerRecordsStream pins the recorded trail of a ledgered
// guarded session for every backend: a session-start carrying the
// ground-truth labels, one verdict event per pushed frame (each with its
// input frame), an action event per guard edge, and a session-end on
// Close — while the verdicts returned to the caller stay byte-identical
// to an unledgered session's.
func TestWithLedgerRecordsStream(t *testing.T) {
	for _, backend := range Backends() {
		t.Run(backend, func(t *testing.T) {
			det := fittedDetector(t, backend)
			traj := testFold(t).Test[0]
			store := ledger.NewMemoryStore(0)
			app := ledger.NewAppender(store, ledger.Options{})
			defer app.Close()

			plain, err := det.NewSession(WithSessionLabels(traj.Gestures))
			if err != nil {
				t.Fatal(err)
			}
			defer plain.Close()
			sess, err := det.NewSession(
				WithSessionLabels(traj.Gestures),
				WithGuard(guardTestPolicy()),
				WithLedger(app, backend, "v-test"),
			)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := sess.(GuardedSession); !ok {
				t.Fatalf("ledgered guarded session is %T, lost the guard surface", sess)
			}
			ls, ok := sess.(LedgeredSession)
			if !ok {
				t.Fatalf("WithLedger session is %T, not LedgeredSession", sess)
			}

			actions := 0
			for i := range traj.Frames {
				want, err := plain.Push(&traj.Frames[i])
				if err != nil {
					t.Fatal(err)
				}
				got, err := sess.Push(&traj.Frames[i])
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("frame %d: ledgered verdict %+v != plain %+v", i, got, want)
				}
				if d := sess.(GuardedSession).Decision(); d.Changed {
					actions++
				}
			}
			if err := sess.Close(); err != nil {
				t.Fatal(err)
			}
			app.Flush()

			var starts, verdicts, acts, ends int
			frame := 0
			store.Scan(0, func(e *ledger.Event) bool {
				if e.Session != ls.LedgerSession() {
					return true
				}
				switch e.Kind {
				case ledger.KindSessionStart:
					starts++
					if e.Backend != backend || e.Model != "v-test" || e.Policy != "test" {
						t.Errorf("session-start context = %q/%q/%q", e.Backend, e.Model, e.Policy)
					}
					if len(e.Labels) != len(traj.Gestures) {
						t.Errorf("session-start labels = %d, want %d", len(e.Labels), len(traj.Gestures))
					}
				case ledger.KindVerdict:
					if !e.HasInput || e.Input != traj.Frames[frame] {
						t.Errorf("verdict %d lost its input frame", frame)
					}
					frame++
					verdicts++
				case ledger.KindAction:
					acts++
				case ledger.KindSessionEnd:
					ends++
					if e.Note != "close" || int(e.FrameIndex) != traj.Len() {
						t.Errorf("session-end = %q/%d", e.Note, e.FrameIndex)
					}
				}
				return true
			})
			if starts != 1 || verdicts != traj.Len() || acts != actions || ends != 1 {
				t.Fatalf("recorded trail: %d starts, %d verdicts, %d actions (want %d), %d ends",
					starts, verdicts, acts, actions, ends)
			}
		})
	}
}

// TestWithLedgerReset pins that Reset closes the recorded session and
// opens a fresh one, so Runner-style session reuse yields one recorded
// session per trajectory.
func TestWithLedgerReset(t *testing.T) {
	det := fittedDetector(t, "envelope")
	traj := testFold(t).Test[0]
	store := ledger.NewMemoryStore(0)
	app := ledger.NewAppender(store, ledger.Options{})
	defer app.Close()
	sess, err := det.NewSession(WithSessionLabels(traj.Gestures), WithLedger(app, "envelope", "v1"))
	if err != nil {
		t.Fatal(err)
	}
	first := sess.(LedgeredSession).LedgerSession()
	if _, err := sess.Push(&traj.Frames[0]); err != nil {
		t.Fatal(err)
	}
	if err := sess.Reset(traj.Gestures); err != nil {
		t.Fatal(err)
	}
	second := sess.(LedgeredSession).LedgerSession()
	if second == first {
		t.Fatal("Reset did not open a fresh recorded session")
	}
	sess.Close()
	app.Flush()
	var endReasons []string
	store.Scan(0, func(e *ledger.Event) bool {
		if e.Kind == ledger.KindSessionEnd {
			endReasons = append(endReasons, e.Note)
		}
		return true
	})
	if len(endReasons) != 2 || endReasons[0] != "reset" || endReasons[1] != "close" {
		t.Fatalf("end reasons = %v, want [reset close]", endReasons)
	}
}

// TestSessionPushZeroAllocLedgered extends the streaming allocation
// budget to the fully instrumented hot path: a warm session with both a
// guard engine and a ledger recorder attached must still push frames
// with zero heap allocations for every backend — the property that lets
// safemond record everything without GC churn.
func TestSessionPushZeroAllocLedgered(t *testing.T) {
	store := ledger.NewMemoryStore(0)
	app := ledger.NewAppender(store, ledger.Options{Queue: 1 << 16})
	defer app.Close()
	for _, backend := range perfBackends() {
		t.Run(backend, func(t *testing.T) {
			det := fittedDetector(t, backend)
			traj := testFold(t).Test[0]
			sess, err := det.NewSession(WithGuard(guardTestPolicy()), WithLedger(app, backend, "v1"))
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close()
			for i := range traj.Frames {
				if _, err := sess.Push(&traj.Frames[i]); err != nil {
					t.Fatal(err)
				}
			}
			i := 0
			allocs := testing.AllocsPerRun(200, func() {
				if _, err := sess.Push(&traj.Frames[i%traj.Len()]); err != nil {
					t.Fatal(err)
				}
				i++
			})
			if allocs != 0 {
				t.Errorf("%s: warm ledgered Push allocates %.1f objects/frame, want 0", backend, allocs)
			}
		})
	}
}

// TestWithLedgerGuardActionTrail pins that the recorded action events
// match the guard decisions the caller observed frame by frame.
func TestWithLedgerGuardActionTrail(t *testing.T) {
	det := fittedDetector(t, "envelope")
	traj := testFold(t).Test[0]
	store := ledger.NewMemoryStore(0)
	app := ledger.NewAppender(store, ledger.Options{})
	defer app.Close()
	sess, err := det.NewSession(
		WithSessionLabels(traj.Gestures),
		WithGuard(guardTestPolicy()),
		WithLedger(app, "envelope", "v1"),
	)
	if err != nil {
		t.Fatal(err)
	}
	var want []guard.Decision
	for i := range traj.Frames {
		if _, err := sess.Push(&traj.Frames[i]); err != nil {
			t.Fatal(err)
		}
		if d := sess.(GuardedSession).Decision(); d.Changed {
			want = append(want, d)
		}
	}
	sess.Close()
	app.Flush()
	var got []*ledger.Event
	store.Scan(0, func(e *ledger.Event) bool {
		if e.Kind == ledger.KindAction {
			cp := *e
			got = append(got, &cp)
		}
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("recorded %d action events, observed %d edges", len(got), len(want))
	}
	for i, d := range want {
		e := got[i]
		if e.Action != d.Action || int(e.FrameIndex) != d.FrameIndex ||
			int(e.AlertFrame) != d.AlertFrame || e.Score != d.Score {
			t.Fatalf("action %d: event %+v != decision %+v", i, e, d)
		}
	}
}

// BenchmarkSessionStepLedgered is BenchmarkSessionStep with the full
// guard + ledger instrumentation attached; scripts/benchguard.sh holds
// it to the same 0 allocs/op budget, and the delta against
// BenchmarkSessionStep is the ledger's hot-path overhead reported in
// BENCH_PR6.json.
func BenchmarkSessionStepLedgered(b *testing.B) {
	store := ledger.NewMemoryStore(0)
	app := ledger.NewAppender(store, ledger.Options{Queue: 1 << 16})
	defer app.Close()
	for _, backend := range perfBackends() {
		b.Run(backend, func(b *testing.B) {
			det := fittedDetector(b, backend)
			traj := testFold(b).Test[0]
			sess, err := det.NewSession(WithGuard(guardTestPolicy()), WithLedger(app, backend, "v1"))
			if err != nil {
				b.Fatal(err)
			}
			defer sess.Close()
			for i := range traj.Frames {
				if _, err := sess.Push(&traj.Frames[i]); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Push(&traj.Frames[i%traj.Len()]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
