// Package safemon is the public façade of the context-aware surgical
// safety-monitoring reproduction (Yasar & Alemzadeh, DSN 2020). It hides
// the internal training and wiring details behind four pieces:
//
//   - Detector: one interface for every detection backend — the paper's
//     two-stage context-aware monitor, its boundary-lookahead extension,
//     the non-context-specific (monolithic) baseline, the static safety
//     envelope, and the SkipChain / SDSDL classifier baselines. Backends
//     are selected by name through a registry (Open, Register, Backends).
//   - Functional options: New(WithThreshold(0.7), WithGroundTruthContext(),
//     ...) builds a configured detector without struct-field poking.
//   - Session: the constant-latency streaming interface — push one
//     kinematics frame, get one FrameVerdict. Watch adapts a Session to
//     channels with context cancellation.
//   - Runner: a concurrent batch evaluator that fans trajectories across
//     workers with per-worker session reuse and merges the traces into a
//     PipelineReport byte-identical to the sequential path.
//
// Quickstart:
//
//	det := safemon.New(safemon.WithThreshold(0.6))
//	if err := det.Fit(ctx, trainTrajs); err != nil { ... }
//
//	sess, _ := det.NewSession()
//	for i := range traj.Frames {
//		v, _ := sess.Push(&traj.Frames[i])
//		if v.Unsafe { fmt.Printf("alert at frame %d (score %.2f)\n", v.FrameIndex, v.Score) }
//	}
//
//	rep, _ := (&safemon.Runner{Detector: det}).Run(ctx, testTrajs, nil)
//	fmt.Println(rep.Render())
package safemon

import (
	"context"
	"errors"
	"io"

	"repro/internal/core"
	"repro/internal/gesture"
	"repro/internal/kinematics"
	"repro/safemon/guard"
	"repro/safemon/ledger"
)

// Core data types re-exported so callers need only this package.
type (
	// Trajectory is a fixed-rate kinematics time series with optional
	// per-frame gesture and safety labels.
	Trajectory = kinematics.Trajectory
	// Frame is one 38-variable kinematics sample.
	Frame = kinematics.Frame
	// FeatureSet selects a subset of kinematic variables.
	FeatureSet = kinematics.FeatureSet
	// FrameVerdict is a detector's output for one frame.
	FrameVerdict = core.FrameVerdict
	// Alert is one unsafe-event detection.
	Alert = core.Alert
	// Trace is a detector's full output over one trajectory.
	Trace = core.Trace
	// PipelineReport aggregates accuracy and timeliness metrics over a
	// test set (Tables VIII/IX of the paper).
	PipelineReport = core.PipelineReport
	// ErrorTruth is the ground truth for one erroneous-gesture instance.
	ErrorTruth = core.ErrorTruth
	// ErrorArch selects the erroneous-gesture head architecture.
	ErrorArch = core.ErrorArch
	// MarkovChain is the task grammar used by the lookahead backend.
	MarkovChain = gesture.MarkovChain
)

// Error-head architectures (Tables V/VI ablation).
const (
	ArchConv = core.ArchConv
	ArchLSTM = core.ArchLSTM
	ArchMLP  = core.ArchMLP
)

// Feature subsets used across the paper's tables.
func AllFeatures() FeatureSet { return kinematics.AllFeatures() }

// CRG returns the Cartesian + rotation + grasper subset (best Suturing set).
func CRG() FeatureSet { return kinematics.CRG() }

// CG returns the Cartesian + grasper subset (Block Transfer set).
func CG() FeatureSet { return kinematics.CG() }

// FitMarkovChain fits a task grammar from gesture-index sequences, for use
// with WithLookahead.
func FitMarkovChain(sequences [][]int) (*MarkovChain, error) {
	return gesture.FitMarkovChain(sequences)
}

// TruthFromLabels derives ErrorTruth entries from a frame-labeled
// trajectory (onset = segment start).
func TruthFromLabels(traj *Trajectory) []ErrorTruth { return core.TruthFromLabels(traj) }

// ErrNotFitted is returned when Run or NewSession is called before Fit.
var ErrNotFitted = errors.New("safemon: detector not fitted")

// Info describes a constructed detector.
type Info struct {
	// Name is the registry name of the backend.
	Name string
	// Threshold is the unsafe-score alert threshold.
	Threshold float64
	// PredictsContext reports whether traces carry classifier-predicted
	// gesture context (enables the gesture-accuracy metric).
	PredictsContext bool
	// Timing reports whether Run measures per-frame compute time.
	Timing bool
}

// Detector is the unified detection interface every backend implements.
//
// The lifecycle is Fit once on labeled training trajectories — or Load an
// artifact trained elsewhere — then any mix of batch Run calls and
// streaming Sessions; all post-Fit methods are safe for concurrent use.
type Detector interface {
	// Info reports the backend's name and evaluation parameters.
	Info() Info
	// Fit trains the backend on labeled trajectories.
	Fit(ctx context.Context, trajs []*Trajectory) error
	// Run scores one trajectory end to end. It is defined as the replay
	// of the trajectory through a fresh Session, so batch and streaming
	// verdicts are identical by construction.
	Run(ctx context.Context, traj *Trajectory) (*Trace, error)
	// NewSession opens a streaming session.
	NewSession(opts ...SessionOption) (Session, error)
	// Save writes the detector's full fitted state — trained networks,
	// baseline model parameters, configuration, thresholds — as a
	// versioned, checksummed artifact (see LoadDetector). It fails with
	// ErrNotFitted before Fit.
	Save(w io.Writer) error
	// Load restores fitted state from an artifact written by Save on the
	// same backend, making the detector ready to serve without Fit. It
	// fails with ErrAlreadyFitted on a fitted detector and with a typed
	// *ArtifactError on corrupt input; after a failed Load the detector
	// refuses sessions with an error wrapping that *ArtifactError.
	Load(r io.Reader) error
}

// Session is the constant-latency online interface: feed one frame at a
// time and receive a verdict. Sessions are single-goroutine objects; use
// one per stream (Runner keeps one per worker).
type Session interface {
	// Push consumes one frame and returns its verdict.
	Push(f *Frame) (FrameVerdict, error)
	// Reset rewinds the session to frame zero for reuse on another
	// trajectory, replacing the ground-truth labels (nil when unused).
	Reset(groundTruth []int) error
	// Close releases the session.
	Close() error
}

// SessionOption configures one streaming session.
type SessionOption func(*sessionConfig)

type sessionConfig struct {
	groundTruth   []int
	guardPolicy   *guard.Policy
	ledger        *ledger.Appender
	ledgerBackend string
	ledgerModel   string
}

// WithSessionLabels supplies per-frame ground-truth gesture labels to a
// session. Required by backends built WithGroundTruthContext; ignored by
// backends that infer their own context.
func WithSessionLabels(labels []int) SessionOption {
	return func(sc *sessionConfig) { sc.groundTruth = labels }
}

func applySessionOptions(opts []SessionOption) sessionConfig {
	var sc sessionConfig
	for _, o := range opts {
		o(&sc)
	}
	return sc
}

// New builds the paper's context-aware monitor with the given options —
// the default, recommended backend. Passing WithLookahead upgrades it to
// the boundary-lookahead variant. Use Open to select other backends.
func New(opts ...Option) Detector {
	cfg := newConfig(opts)
	return newContextDetector(cfg)
}
