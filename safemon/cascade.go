package safemon

import (
	"bytes"
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/kinematics"
)

// cascadeDetector implements two-stage cascade detection: a cheap front
// filter (static envelope or SDSDL) scores every frame, and the expensive
// nn-backed inner detector runs only while the front reports suspicion.
//
// The front's score is compared against an arm threshold every frame. A
// score at or above it arms the inner detector for CascadeHoldoff frames
// (the counter refreshes on every suspicious frame, so suspicion streaks
// extend the window). While armed, the inner detector's verdict is
// returned verbatim; while disarmed, the inner detector still observes
// the frame — its sliding windows stay warm, so the first armed frame
// scores a fully populated evidence window — but skips all inference, and
// the cascade reports the front's score with Unsafe forced false (only
// the inner stage may raise alerts).
type cascadeDetector struct {
	cfg Config

	front Detector
	inner *contextDetector
	// loadErr records a failed Load so sessions can report why the
	// detector is unusable instead of a generic not-fitted error.
	loadErr error
}

func newCascadeDetector(cfg Config) *cascadeDetector {
	return &cascadeDetector{cfg: cfg}
}

func (d *cascadeDetector) config() Config { return d.cfg }

// Cascade stage defaults.
const (
	defaultCascadeFront   = "envelope"
	defaultCascadeInner   = "context-aware"
	defaultCascadeArm     = 0.02
	defaultCascadeHoldoff = 30 // one second at the 30 Hz kinematics rate
)

// stages resolves and validates the cascade's stage selection and gating
// parameters. Factories cannot return errors, so an invalid selection
// surfaces here — at Fit, Load and NewSession time.
func (d *cascadeDetector) stages() (front, inner string, arm float64, holdoff int, err error) {
	front = d.cfg.CascadeFront
	if front == "" {
		front = defaultCascadeFront
	}
	inner = d.cfg.CascadeInner
	if inner == "" {
		inner = defaultCascadeInner
	}
	switch front {
	case "envelope", "sdsdl":
	default:
		return "", "", 0, 0, fmt.Errorf("safemon: cascade front must be envelope or sdsdl, got %q", front)
	}
	switch inner {
	case "context-aware", "lookahead", "monolithic":
	default:
		return "", "", 0, 0, fmt.Errorf("safemon: cascade inner must be context-aware, lookahead or monolithic, got %q", inner)
	}
	arm = d.cfg.CascadeArm
	if arm == 0 {
		arm = defaultCascadeArm
	}
	holdoff = d.cfg.CascadeHoldoff
	if holdoff <= 0 {
		holdoff = defaultCascadeHoldoff
	}
	return front, inner, arm, holdoff, nil
}

// stageConfig derives a stage's Config from the cascade's: the cascade
// knobs are cleared (stages are plain detectors), and the front
// additionally drops lookahead state, which only the inner nn backends
// honor. The "lookahead" factory re-sets cfg.Lookahead itself.
func (d *cascadeDetector) stageConfig(isFront bool) Config {
	cfg := d.cfg
	cfg.CascadeFront, cfg.CascadeInner = "", ""
	cfg.CascadeArm, cfg.CascadeHoldoff = 0, 0
	cfg.Lookahead = false
	if isFront {
		cfg.Chain = nil
	}
	return cfg
}

func (d *cascadeDetector) Info() Info {
	return Info{
		Name:      "cascade",
		Threshold: d.cfg.Threshold,
		// Disarmed frames carry the front's context (labels or none), so
		// the cascade does not claim classifier-predicted context even
		// when its inner stage does.
		PredictsContext: false,
		Timing:          d.cfg.Timing,
	}
}

// buildStages constructs unfitted front and inner detectors from the
// resolved stage names.
func (d *cascadeDetector) buildStages(frontName, innerName string) (Detector, *contextDetector, error) {
	front, err := openWith(frontName, d.stageConfig(true))
	if err != nil {
		return nil, nil, err
	}
	det, err := openWith(innerName, d.stageConfig(false))
	if err != nil {
		return nil, nil, err
	}
	inner, ok := det.(*contextDetector)
	if !ok {
		return nil, nil, fmt.Errorf("safemon: cascade inner backend %q is not gateable", innerName)
	}
	return front, inner, nil
}

func (d *cascadeDetector) Fit(ctx context.Context, trajs []*Trajectory) error {
	frontName, innerName, _, _, err := d.stages()
	if err != nil {
		return err
	}
	front, inner, err := d.buildStages(frontName, innerName)
	if err != nil {
		return err
	}
	if err := front.Fit(ctx, trajs); err != nil {
		return fmt.Errorf("safemon: fit cascade front stage: %w", err)
	}
	if err := inner.Fit(ctx, trajs); err != nil {
		return fmt.Errorf("safemon: fit cascade inner stage: %w", err)
	}
	d.front, d.inner = front, inner
	d.loadErr = nil
	return nil
}

// cascadePayload is the cascade's artifact payload: the resolved
// configuration plus the two stages' own complete Save artifacts, nested
// verbatim so each stage round-trips through its native loader.
type cascadePayload struct {
	Config    persistedConfig
	FrontName string
	InnerName string
	Front     []byte
	Inner     []byte
}

func (d *cascadeDetector) Save(w io.Writer) error {
	if d.front == nil || d.inner == nil {
		return ErrNotFitted
	}
	frontName, innerName, _, _, err := d.stages()
	if err != nil {
		return err
	}
	var fb, ib bytes.Buffer
	if err := d.front.Save(&fb); err != nil {
		return artifactErr("encode", "cascade", fmt.Errorf("front stage: %w", err))
	}
	if err := d.inner.Save(&ib); err != nil {
		return artifactErr("encode", "cascade", fmt.Errorf("inner stage: %w", err))
	}
	p := cascadePayload{
		Config:    persistConfig(d.cfg),
		FrontName: frontName,
		InnerName: innerName,
		Front:     fb.Bytes(),
		Inner:     ib.Bytes(),
	}
	payload, err := encodeGob("cascade", p)
	if err != nil {
		return err
	}
	return writeArtifact(w, "cascade", payload)
}

func (d *cascadeDetector) Load(r io.Reader) error {
	if d.front != nil {
		return ErrAlreadyFitted
	}
	backend, payload, err := readArtifact(r)
	if err != nil {
		d.loadErr = err
		return err
	}
	return d.loadPayload(backend, payload)
}

func (d *cascadeDetector) loadPayload(backend string, payload []byte) error {
	if d.front != nil {
		return ErrAlreadyFitted
	}
	err := guardLoad("cascade", func() error {
		if err := checkBackendName(backend, "cascade"); err != nil {
			return err
		}
		var p cascadePayload
		if err := decodeGob("cascade", payload, &p); err != nil {
			return err
		}
		cfg, err := p.Config.restore(d.cfg)
		if err != nil {
			return artifactErr("validate", "cascade", err)
		}
		probe := &cascadeDetector{cfg: cfg}
		frontName, innerName, _, _, err := probe.stages()
		if err != nil {
			return artifactErr("validate", "cascade", fmt.Errorf("%w: %v", ErrCorruptPayload, err))
		}
		if p.FrontName != frontName || p.InnerName != innerName {
			return artifactErr("validate", "cascade", fmt.Errorf("%w: stage names %q/%q disagree with config %q/%q",
				ErrCorruptPayload, p.FrontName, p.InnerName, frontName, innerName))
		}
		front, err := LoadDetector(bytes.NewReader(p.Front))
		if err != nil {
			return artifactErr("decode", "cascade", fmt.Errorf("front stage: %w", err))
		}
		if got := front.Info().Name; got != frontName {
			return artifactErr("validate", "cascade", fmt.Errorf("%w: front artifact is for %q, config says %q", ErrCorruptPayload, got, frontName))
		}
		// The inner stage loads through its open-time stage config rather
		// than LoadDetector's artifact-only path, so cascade-level options
		// with load-time semantics (WithQuantized) reach the nested
		// detector; its own Load rejects artifacts for any other backend.
		innerDet, err := openWith(innerName, probe.stageConfig(false))
		if err != nil {
			return artifactErr("decode", "cascade", fmt.Errorf("inner stage: %w", err))
		}
		if err := innerDet.Load(bytes.NewReader(p.Inner)); err != nil {
			return artifactErr("decode", "cascade", fmt.Errorf("inner stage: %w", err))
		}
		inner, ok := innerDet.(*contextDetector)
		if !ok {
			return artifactErr("validate", "cascade", fmt.Errorf("%w: inner backend %q is not gateable", ErrCorruptPayload, innerName))
		}
		d.cfg = cfg
		d.front = front
		d.inner = inner
		return nil
	})
	if err != nil {
		d.front, d.inner = nil, nil
		d.loadErr = err
		return err
	}
	d.loadErr = nil
	return nil
}

func (d *cascadeDetector) Run(ctx context.Context, traj *Trajectory) (*Trace, error) {
	return runViaSession(ctx, d, traj, d.cfg.Timing)
}

func (d *cascadeDetector) NewSession(opts ...SessionOption) (Session, error) {
	if d.front == nil || d.inner == nil {
		return nil, notReadyErr("cascade", d.loadErr)
	}
	_, _, arm, holdoff, err := d.stages()
	if err != nil {
		return nil, err
	}
	sc := applySessionOptions(opts)
	// Stage sessions are created bare: guard and ledger wrapping apply to
	// the cascade session as a whole, not to each stage.
	var fopts []SessionOption
	if sc.groundTruth != nil {
		fopts = append(fopts, WithSessionLabels(sc.groundTruth))
	}
	fs, err := d.front.NewSession(fopts...)
	if err != nil {
		return nil, err
	}
	in, err := d.inner.newGatedStream(sc.groundTruth)
	if err != nil {
		fs.Close()
		return nil, err
	}
	return wrapGuard(&cascadeSession{front: fs, inner: in, arm: arm, holdoff: holdoff}, sc)
}

// cascadeSession gates the inner stream on the front session's score.
type cascadeSession struct {
	front   Session
	inner   *gatedStream
	arm     float64
	holdoff int
	// armed counts how many more frames the inner detector runs; a front
	// score at or above arm refreshes it to holdoff.
	armed int
}

func (s *cascadeSession) Push(f *Frame) (FrameVerdict, error) {
	fv, err := s.front.Push(f)
	if err != nil {
		return FrameVerdict{}, err
	}
	if fv.Score >= s.arm {
		s.armed = s.holdoff
	}
	if s.armed > 0 {
		s.armed--
		return s.inner.push(f), nil
	}
	// Disarmed: keep the inner windows warm without inference and report
	// the front's score. Only the inner stage may raise alerts.
	s.inner.observe(f)
	fv.Unsafe = false
	return fv, nil
}

func (s *cascadeSession) Reset(groundTruth []int) error {
	if err := s.front.Reset(groundTruth); err != nil {
		return err
	}
	if err := s.inner.reset(groundTruth); err != nil {
		return err
	}
	s.armed = 0
	return nil
}

func (s *cascadeSession) Close() error { return s.front.Close() }

// batchable reports whether the inner stage can join a cross-session
// batch. The front stage always runs per-stream in planPush — it is the
// cheap filter; only the armed inner inference is worth batching.
func (s *cascadeSession) batchable() bool { return s.inner.st != nil }

// planPush runs the front filter and the gating decision exactly as Push
// does, deferring only the armed inner inference to the batch.
func (s *cascadeSession) planPush(f *Frame) batchEntry {
	fv, err := s.front.Push(f)
	if err != nil {
		return batchEntry{done: true, err: err}
	}
	if fv.Score >= s.arm {
		s.armed = s.holdoff
	}
	if s.armed > 0 {
		s.armed--
		return batchEntry{stream: s.inner.st, mon: s.inner.mon}
	}
	s.inner.observe(f)
	fv.Unsafe = false
	return batchEntry{done: true, verdict: fv}
}

func (s *cascadeSession) finishPush(_ *Frame, v FrameVerdict) (FrameVerdict, error) {
	return v, nil
}

// gatedStream is the cascade's view of an inner nn-backed stream: full
// inference (push), window-warming without inference (observe), and reuse
// (reset). Frame indices stay aligned because both paths advance the
// stream's frame counter. st/mon are set only for plain two-stage monitor
// streams; they expose the concrete stream to the cross-session Batcher
// (batch.go) — lookahead inner stages stay unbatchable.
type gatedStream struct {
	st      *core.Stream
	mon     *core.Monitor
	push    func(*kinematics.Frame) FrameVerdict
	observe func(*kinematics.Frame)
	reset   func([]int) error
}

// newGatedStream exposes a contextDetector's stream to the cascade.
func (d *contextDetector) newGatedStream(groundTruth []int) (*gatedStream, error) {
	if d.mon == nil {
		return nil, notReadyErr(d.name, d.loadErr)
	}
	if d.la != nil {
		st, err := d.la.NewStream(groundTruth)
		if err != nil {
			return nil, err
		}
		return &gatedStream{push: st.Push, observe: st.Observe, reset: st.Reset}, nil
	}
	st, err := d.mon.NewStream(groundTruth)
	if err != nil {
		return nil, err
	}
	return &gatedStream{st: st, mon: d.mon, push: st.Push, observe: st.Observe, reset: st.Reset}, nil
}
