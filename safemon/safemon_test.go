package safemon

import (
	"context"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gesture"
	"repro/internal/synth"
)

// testFold lazily builds one small labeled Suturing fold shared by every
// test in the package.
var foldFixture struct {
	once sync.Once
	fold dataset.LOSOSplit
	err  error
}

func testFold(t testing.TB) dataset.LOSOSplit {
	t.Helper()
	foldFixture.once.Do(func() {
		demos, err := synth.Generate(synth.Config{
			Task: gesture.Suturing, Hz: 30, Seed: 17,
			NumDemos: 8, NumTrials: 2, Subjects: 2, DurationScale: 0.35,
		})
		if err != nil {
			foldFixture.err = err
			return
		}
		foldFixture.fold = dataset.LOSO(synth.Trajectories(demos))[0]
	})
	if foldFixture.err != nil {
		t.Fatal(foldFixture.err)
	}
	return foldFixture.fold
}

// quickOptions returns per-backend options that keep test fits fast while
// exercising the real training paths.
func quickOptions(backend string) []Option {
	switch backend {
	case "context-aware", "lookahead", "monolithic":
		return []Option{WithEpochs(2), WithTrainStride(6), WithSeed(3)}
	case "cascade":
		return []Option{WithEpochs(2), WithTrainStride(6), WithSeed(3)}
	case "sdsdl":
		return []Option{WithThreshold(0.2), WithAtoms(16), WithSeed(3)}
	default: // envelope, skipchain
		return []Option{WithThreshold(0.2), WithSeed(3)}
	}
}

// fitted lazily fits one detector per backend on the shared fold.
var fittedFixture struct {
	mu sync.Mutex
	m  map[string]Detector
}

func fittedDetector(t testing.TB, backend string) Detector {
	t.Helper()
	fold := testFold(t)
	fittedFixture.mu.Lock()
	defer fittedFixture.mu.Unlock()
	if d, ok := fittedFixture.m[backend]; ok {
		return d
	}
	det, err := Open(backend, quickOptions(backend)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Fit(context.Background(), fold.Train); err != nil {
		t.Fatalf("fit %s: %v", backend, err)
	}
	if fittedFixture.m == nil {
		fittedFixture.m = map[string]Detector{}
	}
	fittedFixture.m[backend] = det
	return det
}

func TestRegistryRoundTrip(t *testing.T) {
	want := []string{"cascade", "context-aware", "envelope", "lookahead", "monolithic", "sdsdl", "skipchain"}
	have := map[string]bool{}
	for _, name := range Backends() {
		have[name] = true
	}
	for _, name := range want {
		if !have[name] {
			t.Errorf("backend %q not registered (have %v)", name, Backends())
		}
	}
	for _, name := range want {
		det, err := Open(name)
		if err != nil {
			t.Fatalf("Open(%q): %v", name, err)
		}
		if got := det.Info().Name; got != name {
			t.Errorf("Open(%q).Info().Name = %q", name, got)
		}
	}
	if _, err := Open("no-such-backend"); err == nil {
		t.Error("Open of unknown backend should fail")
	}

	// Registering a custom backend makes it openable; duplicates panic.
	Register("custom-test", func(cfg Config) Detector { return newEnvelopeDetector(cfg) })
	if det, err := Open("custom-test", WithThreshold(0.9)); err != nil {
		t.Fatalf("Open custom backend: %v", err)
	} else if det.Info().Threshold != 0.9 {
		t.Errorf("custom backend threshold = %v, want 0.9", det.Info().Threshold)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate Register should panic")
			}
		}()
		Register("custom-test", func(cfg Config) Detector { return newEnvelopeDetector(cfg) })
	}()
}

func TestOptionApplication(t *testing.T) {
	chain := &MarkovChain{}
	verbose := func(string) {}
	cfg := newConfig([]Option{
		WithThreshold(0.7),
		WithGroundTruthContext(),
		WithLookahead(chain),
		WithFeatures(CG()),
		WithErrorFeatures(CRG()),
		WithWindow(10),
		WithArch(ArchLSTM),
		WithEpochs(4),
		WithTrainStride(5),
		WithSeed(99),
		WithEnvelopeMargin(1.5),
		WithAtoms(32),
		WithSkipLag(7),
		WithTiming(),
		WithVerbose(verbose),
	})
	if cfg.Threshold != 0.7 || !cfg.GroundTruthContext || !cfg.Lookahead || cfg.Chain != chain {
		t.Errorf("core options not applied: %+v", cfg)
	}
	if cfg.GestureFeatures.Dim() != CG().Dim() || cfg.ErrorFeatures.Dim() != CRG().Dim() {
		t.Errorf("feature options not applied")
	}
	if cfg.Window != 10 || cfg.Arch != ArchLSTM || cfg.Epochs != 4 || cfg.TrainStride != 5 || cfg.Seed != 99 {
		t.Errorf("training options not applied: %+v", cfg)
	}
	if cfg.EnvelopeMargin != 1.5 || cfg.Atoms != 32 || cfg.SkipLag != 7 || !cfg.Timing || cfg.Verbose == nil {
		t.Errorf("backend options not applied: %+v", cfg)
	}

	// Defaults.
	def := newConfig(nil)
	if def.Threshold != 0.5 || def.Seed != 1 || def.GroundTruthContext || def.Lookahead {
		t.Errorf("bad defaults: %+v", def)
	}

	// Options flow into the built detector's Info.
	det := New(WithThreshold(0.7), WithGroundTruthContext())
	info := det.Info()
	if info.Name != "context-aware" || info.Threshold != 0.7 || info.PredictsContext {
		t.Errorf("New Info = %+v", info)
	}
	la := New(WithLookahead(nil))
	if la.Info().Name != "lookahead" {
		t.Errorf("New with lookahead = %+v", la.Info())
	}
}

func TestUnfittedErrors(t *testing.T) {
	for _, name := range Backends() {
		det, err := Open(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := det.NewSession(); err == nil {
			t.Errorf("%s: NewSession before Fit should fail", name)
		}
		if _, err := det.Run(context.Background(), testFold(t).Test[0]); err == nil {
			t.Errorf("%s: Run before Fit should fail", name)
		}
	}
}

// TestSessionRunEquivalence verifies that for every backend a manual
// streaming session produces exactly the verdicts of the batch Run, and
// that a Reset session reproduces them again.
func TestSessionRunEquivalence(t *testing.T) {
	fold := testFold(t)
	traj := fold.Test[0]
	ctx := context.Background()
	for _, backend := range []string{"context-aware", "lookahead", "monolithic", "envelope", "skipchain", "sdsdl"} {
		t.Run(backend, func(t *testing.T) {
			det := fittedDetector(t, backend)
			trace, err := det.Run(ctx, traj)
			if err != nil {
				t.Fatal(err)
			}
			if len(trace.Verdicts) != traj.Len() {
				t.Fatalf("trace has %d verdicts for %d frames", len(trace.Verdicts), traj.Len())
			}
			sess, err := det.NewSession(WithSessionLabels(traj.Gestures))
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close()
			for pass := 0; pass < 2; pass++ { // second pass exercises Reset
				for i := range traj.Frames {
					v, err := sess.Push(&traj.Frames[i])
					if err != nil {
						t.Fatal(err)
					}
					if v != trace.Verdicts[i] {
						t.Fatalf("pass %d frame %d: session %+v vs run %+v", pass, i, v, trace.Verdicts[i])
					}
				}
				if err := sess.Reset(traj.Gestures); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

func TestWatchChannelMode(t *testing.T) {
	det := fittedDetector(t, "envelope")
	traj := testFold(t).Test[0]
	ref, err := det.Run(context.Background(), traj)
	if err != nil {
		t.Fatal(err)
	}

	sess, err := det.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	in := make(chan *Frame)
	out := Watch(ctx, sess, in)
	go func() {
		defer close(in)
		for i := range traj.Frames {
			in <- &traj.Frames[i]
		}
	}()
	n := 0
	for sv := range out {
		if sv.Err != nil {
			t.Fatal(sv.Err)
		}
		if sv.Verdict.Score != ref.Verdicts[n].Score {
			t.Fatalf("frame %d: watch score %v vs run %v", n, sv.Verdict.Score, ref.Verdicts[n].Score)
		}
		n++
	}
	if n != traj.Len() {
		t.Fatalf("watched %d verdicts, want %d", n, traj.Len())
	}

	// Cancellation closes the stream.
	sess2, err := det.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	in2 := make(chan *Frame)
	out2 := Watch(ctx2, sess2, in2)
	cancel2()
	for range out2 {
	}
}
