package safemon

import (
	"bytes"
	"context"
	"testing"
)

// perfBackends lists every registered backend; the allocation-budget suite
// and the session-step benchmarks cover all of them so no backend can
// silently regain a per-frame allocation.
func perfBackends() []string { return Backends() }

// warmSession returns a session for the backend that has already processed
// one full trajectory, so its sliding windows and scratch buffers are at
// steady state.
func warmSession(t testing.TB, backend string) (Session, *Trajectory) {
	t.Helper()
	return warmSessionOf(t, fittedDetector(t, backend))
}

// warmLoadedSession is warmSession over the artifact-loaded twin of the
// backend's fitted fixture.
func warmLoadedSession(t testing.TB, backend string) (Session, *Trajectory) {
	t.Helper()
	return warmSessionOf(t, loadedDetector(t, backend))
}

func warmSessionOf(t testing.TB, det Detector) (Session, *Trajectory) {
	t.Helper()
	fold := testFold(t)
	traj := fold.Test[0]
	sess, err := det.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	for i := range traj.Frames {
		if _, err := sess.Push(&traj.Frames[i]); err != nil {
			sess.Close()
			t.Fatal(err)
		}
	}
	return sess, traj
}

// TestSessionPushZeroAlloc is the allocation budget of the streaming hot
// path: a warm session of every registered backend must process a frame
// with zero heap allocations. This is the property that keeps high
// session-count safemond serving free of GC churn; any regression here
// fails CI (see also scripts/benchguard.sh, which guards the benchmark
// numbers the same way).
func TestSessionPushZeroAlloc(t *testing.T) {
	for _, backend := range perfBackends() {
		t.Run(backend, func(t *testing.T) {
			sess, traj := warmSession(t, backend)
			defer sess.Close()
			i := 0
			allocs := testing.AllocsPerRun(200, func() {
				if _, err := sess.Push(&traj.Frames[i%traj.Len()]); err != nil {
					t.Fatal(err)
				}
				i++
			})
			if allocs != 0 {
				t.Errorf("%s: warm Session.Push allocates %.1f objects/frame, want 0", backend, allocs)
			}
		})
	}
}

// TestSessionPushZeroAllocLoaded extends the allocation budget to the
// artifact path: a detector reconstructed with LoadDetector must satisfy
// the same zero-allocation warm-push invariant as its fitted twin, so
// serving from artifacts costs nothing on the hot path.
func TestSessionPushZeroAllocLoaded(t *testing.T) {
	for _, backend := range perfBackends() {
		t.Run(backend, func(t *testing.T) {
			sess, traj := warmLoadedSession(t, backend)
			defer sess.Close()
			i := 0
			allocs := testing.AllocsPerRun(200, func() {
				if _, err := sess.Push(&traj.Frames[i%traj.Len()]); err != nil {
					t.Fatal(err)
				}
				i++
			})
			if allocs != 0 {
				t.Errorf("%s: warm loaded Session.Push allocates %.1f objects/frame, want 0", backend, allocs)
			}
		})
	}
}

// BenchmarkSessionStep measures the per-frame latency and allocation count
// of a warm streaming session for every registered backend — the Table VIII
// "computation time" axis, one sub-benchmark per backend. Run with
// -benchmem; scripts/benchguard.sh fails CI when allocs/op leaves zero.
func BenchmarkSessionStep(b *testing.B) {
	for _, backend := range perfBackends() {
		b.Run(backend, func(b *testing.B) {
			sess, traj := warmSession(b, backend)
			defer sess.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Push(&traj.Frames[i%traj.Len()]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSessionStepLoaded is BenchmarkSessionStep over artifact-loaded
// detectors; scripts/benchguard.sh holds it to the same 0 allocs/op budget.
func BenchmarkSessionStepLoaded(b *testing.B) {
	for _, backend := range perfBackends() {
		b.Run(backend, func(b *testing.B) {
			sess, traj := warmLoadedSession(b, backend)
			defer sess.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Push(&traj.Frames[i%traj.Len()]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkColdStart is the model-lifecycle headline: time-to-ready for a
// detector via Fit (train on the shared fold) versus Load (decode the
// fitted fixture's artifact). The ratio is why safemond serves from
// artifacts; BENCH_PR4.json records both per backend.
func BenchmarkColdStart(b *testing.B) {
	fold := testFold(b)
	ctx := context.Background()
	b.Run("fit", func(b *testing.B) {
		for _, backend := range perfBackends() {
			b.Run(backend, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					det, err := Open(backend, quickOptions(backend)...)
					if err != nil {
						b.Fatal(err)
					}
					if err := det.Fit(ctx, fold.Train); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	})
	b.Run("load", func(b *testing.B) {
		for _, backend := range perfBackends() {
			b.Run(backend, func(b *testing.B) {
				art := saveArtifact(b, fittedDetector(b, backend))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					det, err := LoadDetector(bytes.NewReader(art))
					if err != nil {
						b.Fatal(err)
					}
					if det == nil {
						b.Fatal("nil detector")
					}
				}
			})
		}
	})
}
