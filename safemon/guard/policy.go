package guard

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrBadPolicy reports an invalid policy definition; every validation and
// parse failure wraps it.
var ErrBadPolicy = errors.New("guard: invalid policy")

// maxPolicyFrames bounds every frame-count knob: a debounce or escalation
// interval longer than this is a configuration error, not a policy.
const maxPolicyFrames = 1 << 20

// maxPolicyBytes caps one policy-config document, mirroring the serve
// layer's no-unbounded-buffering contract.
const maxPolicyBytes = 1 << 20

// Policy is the declarative mitigation configuration of one guard engine.
// The zero value is not valid; start from DefaultPolicy or a parsed
// config. See the package documentation for the state-machine semantics.
type Policy struct {
	// Name identifies the policy (the ?policy= selector in safemond).
	Name string `json:"name"`
	// Threshold is the unsafe-score level at which a frame counts as
	// hazard evidence. Scores are backend-defined (probabilities for the
	// neural monitors, violation magnitudes for the envelope), so the
	// threshold is calibrated per deployment, like the detector's own.
	Threshold float64 `json:"threshold"`
	// GestureThresholds overrides Threshold while the verdict's gesture
	// context matches — the context-aware trigger (e.g. tolerate more
	// during an intentional G11 release than during a G6 carry).
	GestureThresholds map[int]float64 `json:"gesture_thresholds,omitempty"`
	// WarmupFrames suppresses evidence for the first frames of a stream:
	// sliding-window detectors score on partial windows until roughly a
	// window length of frames has arrived, and those scores are noise,
	// not hazard evidence. 0 disables (the engine-level default); sized
	// policies set it to the detector window length plus slack.
	WarmupFrames int `json:"warmup_frames,omitempty"`
	// DebounceFrames consecutive evidence frames confirm an alert
	// (default 2). 1 confirms on the first evidence frame.
	DebounceFrames int `json:"debounce_frames,omitempty"`
	// ReleaseFrames consecutive sub-threshold frames release a
	// non-latching action (default 2*DebounceFrames).
	ReleaseFrames int `json:"release_frames,omitempty"`
	// EscalateFrames is the ladder cadence: one rung per EscalateFrames
	// evidence frames beyond the debounce. <= 0 disables escalation
	// (the engine engages InitialAction only, plus the PanicScore jump).
	EscalateFrames int `json:"escalate_frames,omitempty"`
	// InitialAction is the first rung engaged on confirmation (default
	// ActionWarn).
	InitialAction Action `json:"initial_action,omitempty"`
	// MaxAction caps the ladder (default ActionSafeStop).
	MaxAction Action `json:"max_action,omitempty"`
	// PanicScore, when > 0, jumps a confirmed episode straight to
	// MaxAction once a score reaches it — extreme evidence skips the
	// ladder but never the debounce.
	PanicScore float64 `json:"panic_score,omitempty"`
	// ReactionBudgetFrames declares the alert-to-hazard deadline the
	// policy is designed for; the mitigation campaign scores actual
	// latencies against it (default 30 frames = 1 s at 30 Hz).
	ReactionBudgetFrames int `json:"reaction_budget_frames,omitempty"`
}

// DefaultPolicy returns the reference policy: a 12-frame warmup (the
// default detector window plus slack), confirm after 2 consecutive
// evidence frames, engage Warn, escalate a rung every 2 further evidence
// frames up to SafeStop, release after 4 safe frames, 1 s (at 30 Hz)
// reaction budget.
func DefaultPolicy() Policy {
	return Policy{
		Name:                 "default",
		Threshold:            0.5,
		WarmupFrames:         12,
		DebounceFrames:       2,
		ReleaseFrames:        4,
		EscalateFrames:       2,
		InitialAction:        ActionWarn,
		MaxAction:            ActionSafeStop,
		ReactionBudgetFrames: 30,
	}
}

// withDefaults fills zero-valued knobs with their documented defaults.
func (p Policy) withDefaults() Policy {
	if p.DebounceFrames == 0 {
		p.DebounceFrames = 2
	}
	if p.ReleaseFrames == 0 {
		p.ReleaseFrames = 2 * p.DebounceFrames
	}
	if p.InitialAction == ActionNone {
		p.InitialAction = ActionWarn
	}
	if p.MaxAction == ActionNone {
		p.MaxAction = ActionSafeStop
	}
	if p.ReactionBudgetFrames == 0 {
		p.ReactionBudgetFrames = 30
	}
	return p
}

// Validate checks the policy. It validates the literal field values; use
// NewEngine (which applies defaults first) to accept zero-valued knobs.
func (p Policy) Validate() error {
	if !isFiniteNonNeg(p.Threshold) {
		return fmt.Errorf("%w: threshold %v must be finite and >= 0", ErrBadPolicy, p.Threshold)
	}
	for g, t := range p.GestureThresholds {
		if g < 0 {
			return fmt.Errorf("%w: gesture threshold for negative gesture %d", ErrBadPolicy, g)
		}
		if !isFiniteNonNeg(t) {
			return fmt.Errorf("%w: gesture %d threshold %v must be finite and >= 0", ErrBadPolicy, g, t)
		}
	}
	for name, n := range map[string]int{
		"debounce_frames":        p.DebounceFrames,
		"release_frames":         p.ReleaseFrames,
		"reaction_budget_frames": p.ReactionBudgetFrames,
	} {
		if n < 1 || n > maxPolicyFrames {
			return fmt.Errorf("%w: %s %d out of range [1, %d]", ErrBadPolicy, name, n, maxPolicyFrames)
		}
	}
	if p.EscalateFrames < 0 || p.EscalateFrames > maxPolicyFrames {
		return fmt.Errorf("%w: escalate_frames %d out of range [0, %d]", ErrBadPolicy, p.EscalateFrames, maxPolicyFrames)
	}
	if p.WarmupFrames < 0 || p.WarmupFrames > maxPolicyFrames {
		return fmt.Errorf("%w: warmup_frames %d out of range [0, %d]", ErrBadPolicy, p.WarmupFrames, maxPolicyFrames)
	}
	if p.InitialAction < ActionWarn || p.InitialAction > maxActionValue {
		return fmt.Errorf("%w: initial_action %v", ErrBadPolicy, p.InitialAction)
	}
	if p.MaxAction < ActionWarn || p.MaxAction > maxActionValue {
		return fmt.Errorf("%w: max_action %v", ErrBadPolicy, p.MaxAction)
	}
	if p.MaxAction < p.InitialAction {
		return fmt.Errorf("%w: max_action %v below initial_action %v", ErrBadPolicy, p.MaxAction, p.InitialAction)
	}
	if !isFiniteNonNeg(p.PanicScore) {
		return fmt.Errorf("%w: panic_score %v must be finite and >= 0", ErrBadPolicy, p.PanicScore)
	}
	return nil
}

func isFiniteNonNeg(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0
}

// MarshalText encodes the action as its wire name.
func (a Action) MarshalText() ([]byte, error) {
	if a < ActionNone || a > maxActionValue {
		return nil, fmt.Errorf("%w: unknown action %d", ErrBadPolicy, int(a))
	}
	return []byte(a.String()), nil
}

// UnmarshalText decodes an action wire name ("none", "warn", "pause",
// "safe-stop", "retract").
func (a *Action) UnmarshalText(text []byte) error {
	parsed, err := ParseAction(string(text))
	if err != nil {
		return err
	}
	*a = parsed
	return nil
}

// ParseAction maps a wire name to its Action.
func ParseAction(s string) (Action, error) {
	for a := ActionNone; a <= maxActionValue; a++ {
		if s == a.String() {
			return a, nil
		}
	}
	return ActionNone, fmt.Errorf("%w: unknown action %q", ErrBadPolicy, s)
}

// ParsePolicy decodes one JSON policy object. Unknown fields are rejected
// — a typo in a safety policy must fail loudly at startup, not silently
// fall back to a default. The parsed policy is validated with defaults
// applied (the form an Engine would run), so a successful parse always
// yields a policy NewEngine accepts. It never panics on malformed input
// (the property FuzzParsePolicy pins).
func ParsePolicy(data []byte) (Policy, error) {
	var p Policy
	if len(data) > maxPolicyBytes {
		return p, fmt.Errorf("%w: policy document exceeds %d bytes", ErrBadPolicy, maxPolicyBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Policy{}, fmt.Errorf("%w: %v", ErrBadPolicy, err)
	}
	// A second document on the same line is garbage, not configuration.
	if dec.More() {
		return Policy{}, fmt.Errorf("%w: trailing data after policy object", ErrBadPolicy)
	}
	if err := p.withDefaults().Validate(); err != nil {
		return Policy{}, err
	}
	return p, nil
}

// policyFile is the on-disk config format safemond's -policies flag reads.
type policyFile struct {
	Policies []json.RawMessage `json:"policies"`
}

// ParsePolicies decodes a policy config document: {"policies":[{...},...]}.
// Every policy must validate and carry a unique non-empty name. It never
// panics on malformed input.
func ParsePolicies(data []byte) ([]Policy, error) {
	if len(data) > maxPolicyBytes {
		return nil, fmt.Errorf("%w: policy document exceeds %d bytes", ErrBadPolicy, maxPolicyBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var file policyFile
	if err := dec.Decode(&file); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPolicy, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after policy config", ErrBadPolicy)
	}
	if len(file.Policies) == 0 {
		return nil, fmt.Errorf("%w: config defines no policies", ErrBadPolicy)
	}
	out := make([]Policy, 0, len(file.Policies))
	seen := make(map[string]bool, len(file.Policies))
	for i, raw := range file.Policies {
		p, err := ParsePolicy(raw)
		if err != nil {
			return nil, fmt.Errorf("policy %d: %w", i, err)
		}
		if p.Name == "" {
			return nil, fmt.Errorf("%w: policy %d has no name", ErrBadPolicy, i)
		}
		if seen[p.Name] {
			return nil, fmt.Errorf("%w: duplicate policy name %q", ErrBadPolicy, p.Name)
		}
		seen[p.Name] = true
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}
