package guard

import (
	"encoding/json"
	"testing"
)

// FuzzParsePolicy pins the policy parser's safety contract: arbitrary
// bytes must never panic, a successful parse must yield a policy the
// engine accepts, and a successful parse must survive a marshal→parse
// round trip. The guard config is the one input surface an operator
// hand-writes (safemond -policies), so it gets the same fuzz treatment as
// the wire and artifact decoders. The seed corpus lives under
// testdata/fuzz/ and is replayed by `make ci`.
func FuzzParsePolicy(f *testing.F) {
	f.Add([]byte(`{"name":"default","threshold":0.5}`))
	f.Add([]byte(`{"name":"carry","threshold":0.4,"gesture_thresholds":{"6":0.2,"11":0.9},` +
		`"warmup_frames":12,"debounce_frames":3,"release_frames":6,"escalate_frames":2,` +
		`"initial_action":"warn","max_action":"retract","panic_score":0.98,"reaction_budget_frames":20}`))
	f.Add([]byte(`{"policies":[{"name":"a","threshold":0.5},{"name":"b","threshold":0.2,"max_action":"pause"}]}`))
	f.Add([]byte(`{"name":"x","threshold":1e308}`))
	f.Add([]byte(`{"name":"x","threshold":-1}`))
	f.Add([]byte(`{"name":"x","max_action":"explode"}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"policies":[]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Single-policy form.
		if p, err := ParsePolicy(data); err == nil {
			if _, err := NewEngine(p); err != nil {
				t.Fatalf("parsed policy rejected by NewEngine: %v (%+v)", err, p)
			}
			out, err := json.Marshal(p)
			if err != nil {
				t.Fatalf("parsed policy does not marshal: %v", err)
			}
			if _, err := ParsePolicy(out); err != nil {
				t.Fatalf("round trip failed: %v on %s", err, out)
			}
		}
		// Config-file form.
		if ps, err := ParsePolicies(data); err == nil {
			if len(ps) == 0 {
				t.Fatal("ParsePolicies returned an empty set without error")
			}
			seen := map[string]bool{}
			for _, p := range ps {
				if p.Name == "" || seen[p.Name] {
					t.Fatalf("invalid name survived: %+v", ps)
				}
				seen[p.Name] = true
				if _, err := NewEngine(p); err != nil {
					t.Fatalf("config policy rejected by NewEngine: %v", err)
				}
			}
		}
	})
}
