package guard

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
)

// verdict builds a FrameVerdict for engine tests.
func verdict(i, g int, score float64) core.FrameVerdict {
	return core.FrameVerdict{FrameIndex: i, Gesture: g, Score: score}
}

// stepAll pushes scores through the engine (gesture 0, frame indices
// sequential from start) and returns the last decision.
func stepAll(e *Engine, start int, scores ...float64) Decision {
	var d Decision
	for k, s := range scores {
		d = e.Step(verdict(start+k, 0, s))
	}
	return d
}

func TestEngineDebounceSuppressesSpikes(t *testing.T) {
	e := MustEngine(Policy{Threshold: 0.5, DebounceFrames: 3, ReleaseFrames: 2, EscalateFrames: 1})
	// Isolated spikes shorter than the debounce never actuate.
	d := stepAll(e, 0, 0.9, 0.1, 0.9, 0.9, 0.1, 0.2)
	if d.Action != ActionNone || d.Alert {
		t.Fatalf("spiky stream engaged %v (alert=%v), want none", d.Action, d.Alert)
	}
	if c := e.Counters(); c.Alerts != 0 || c.Warns != 0 {
		t.Fatalf("counters after spikes = %+v, want no alerts", c)
	}
	// Three consecutive evidence frames confirm.
	d = stepAll(e, 6, 0.9, 0.9, 0.9)
	if d.Action != ActionWarn || !d.Alert || !d.Changed {
		t.Fatalf("after debounce: %+v, want warn/alert/changed", d)
	}
	if d.AlertFrame != 8 {
		t.Fatalf("alert frame = %d, want 8", d.AlertFrame)
	}
}

func TestEngineEscalationLadderAndLatch(t *testing.T) {
	e := MustEngine(Policy{
		Threshold: 0.5, DebounceFrames: 2, ReleaseFrames: 2,
		EscalateFrames: 2, InitialAction: ActionWarn, MaxAction: ActionRetract,
	})
	want := []Action{
		ActionNone,     // evidence 1 (debounce)
		ActionWarn,     // evidence 2: confirmed
		ActionWarn,     // evidence 3
		ActionPause,    // evidence 4: rung 1
		ActionPause,    // evidence 5
		ActionSafeStop, // evidence 6: rung 2
		ActionSafeStop, // evidence 7
		ActionRetract,  // evidence 8: rung 3 (MaxAction)
		ActionRetract,  // evidence 9: capped
	}
	for i, w := range want {
		d := e.Step(verdict(i, 0, 0.9))
		if d.Action != w {
			t.Fatalf("evidence frame %d: action %v, want %v", i, d.Action, w)
		}
	}
	// Retract latches: a long safe run must not release it.
	d := stepAll(e, len(want), 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
	if d.Action != ActionRetract || !d.Alert {
		t.Fatalf("latched action released: %+v", d)
	}
	c := e.Counters()
	if c.Alerts != 1 || c.Warns != 1 || c.Pauses != 1 || c.SafeStops != 1 || c.Retracts != 1 || c.Releases != 0 {
		t.Fatalf("counters = %+v", c)
	}
	// Reset clears the latch.
	e.Reset()
	if e.Action() != ActionNone {
		t.Fatalf("action after Reset = %v", e.Action())
	}
	if e.Counters().Retracts != 1 {
		t.Fatal("Reset must not clear lifetime counters")
	}
}

func TestEngineHysteresisReleasesWarnAndPause(t *testing.T) {
	e := MustEngine(Policy{
		Threshold: 0.5, DebounceFrames: 2, ReleaseFrames: 3,
		EscalateFrames: 0, // no ladder: Warn only
	})
	if d := stepAll(e, 0, 0.9, 0.9, 0.9); d.Action != ActionWarn {
		t.Fatalf("engage: %v", d.Action)
	}
	// Two safe frames are below the release hysteresis: warn holds.
	if d := stepAll(e, 3, 0.1, 0.1); d.Action != ActionWarn || d.Changed {
		t.Fatalf("early release: %+v", d)
	}
	// The third safe frame releases.
	d := stepAll(e, 5, 0.1)
	if d.Action != ActionNone || !d.Changed || d.Alert || d.AlertFrame != -1 {
		t.Fatalf("release: %+v", d)
	}
	if c := e.Counters(); c.Releases != 1 {
		t.Fatalf("releases = %d, want 1", c.Releases)
	}
	// A fresh episode re-confirms from scratch (debounce applies again).
	if d := stepAll(e, 6, 0.9); d.Action != ActionNone {
		t.Fatalf("single evidence frame after release engaged %v", d.Action)
	}
	if d := stepAll(e, 7, 0.9); d.Action != ActionWarn {
		t.Fatalf("re-confirmation failed: %v", d.Action)
	}
	if c := e.Counters(); c.Alerts != 2 {
		t.Fatalf("alerts = %d, want 2", c.Alerts)
	}
}

func TestEnginePerGestureThresholds(t *testing.T) {
	// Carry (gesture 6) is strict; the intentional G11 release tolerates
	// high scores.
	e := MustEngine(Policy{
		Threshold:         0.5,
		GestureThresholds: map[int]float64{6: 0.2, 11: 0.95},
		DebounceFrames:    1, ReleaseFrames: 1, EscalateFrames: 0,
	})
	if d := e.Step(verdict(0, 6, 0.3)); d.Action != ActionWarn || d.Threshold != 0.2 {
		t.Fatalf("carry context: %+v", d)
	}
	e.Reset()
	if d := e.Step(verdict(1, 11, 0.9)); d.Action != ActionNone || d.Threshold != 0.95 {
		t.Fatalf("release context: %+v", d)
	}
	e.Reset()
	if d := e.Step(verdict(2, 3, 0.6)); d.Action != ActionWarn || d.Threshold != 0.5 {
		t.Fatalf("default context: %+v", d)
	}
}

func TestEnginePanicScoreJumpsToMax(t *testing.T) {
	e := MustEngine(Policy{
		Threshold: 0.5, DebounceFrames: 2, ReleaseFrames: 2,
		EscalateFrames: 4, MaxAction: ActionSafeStop, PanicScore: 0.99,
	})
	// The debounce still applies to panic-grade evidence.
	if d := e.Step(verdict(0, 0, 1.0)); d.Action != ActionNone {
		t.Fatalf("panic bypassed debounce: %v", d.Action)
	}
	// On confirmation, a panic score skips the ladder entirely.
	d := e.Step(verdict(1, 0, 1.0))
	if d.Action != ActionSafeStop || !d.Changed {
		t.Fatalf("panic confirmation: %+v", d)
	}
	if c := e.Counters(); c.SafeStops != 1 || c.Warns != 0 {
		t.Fatalf("counters = %+v: a panic jump lands directly on max", c)
	}
}

func TestPolicyValidation(t *testing.T) {
	bad := []Policy{
		{Threshold: -1},
		{Threshold: 0.5, DebounceFrames: -1},
		{Threshold: 0.5, DebounceFrames: maxPolicyFrames + 1},
		{Threshold: 0.5, ReleaseFrames: -2},
		{Threshold: 0.5, EscalateFrames: -1},
		{Threshold: 0.5, InitialAction: ActionPause, MaxAction: ActionWarn},
		{Threshold: 0.5, InitialAction: Action(9)},
		{Threshold: 0.5, MaxAction: Action(-1)},
		{Threshold: 0.5, PanicScore: -0.1},
		{Threshold: 0.5, GestureThresholds: map[int]float64{-3: 0.1}},
	}
	for i, p := range bad {
		if _, err := NewEngine(p); err == nil {
			t.Errorf("policy %d (%+v) validated, want error", i, p)
		}
	}
	if _, err := NewEngine(DefaultPolicy()); err != nil {
		t.Fatalf("default policy rejected: %v", err)
	}
	// The zero-valued knobs resolve to the documented defaults.
	e := MustEngine(Policy{Threshold: 0.3})
	p := e.Policy()
	if p.DebounceFrames != 2 || p.ReleaseFrames != 4 || p.InitialAction != ActionWarn ||
		p.MaxAction != ActionSafeStop || p.ReactionBudgetFrames != 30 {
		t.Fatalf("defaults = %+v", p)
	}
}

func TestParsePolicyRoundTrip(t *testing.T) {
	data := []byte(`{
		"name": "carry-strict",
		"threshold": 0.4,
		"gesture_thresholds": {"6": 0.2, "11": 0.9},
		"debounce_frames": 3,
		"release_frames": 6,
		"escalate_frames": 2,
		"initial_action": "warn",
		"max_action": "retract",
		"panic_score": 0.98,
		"reaction_budget_frames": 20
	}`)
	p, err := ParsePolicy(data)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "carry-strict" || p.MaxAction != ActionRetract || p.GestureThresholds[11] != 0.9 {
		t.Fatalf("parsed = %+v", p)
	}
	// Marshal → parse is stable.
	out, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ParsePolicy(out)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Name != p.Name || p2.PanicScore != p.PanicScore || p2.InitialAction != p.InitialAction {
		t.Fatalf("round trip: %+v != %+v", p2, p)
	}
}

func TestParsePolicyRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"unknown field":   `{"name":"x","threshold":0.5,"bogus":1}`,
		"unknown action":  `{"name":"x","threshold":0.5,"max_action":"explode"}`,
		"numeric action":  `{"name":"x","threshold":0.5,"initial_action":2}`,
		"nan threshold":   `{"name":"x","threshold":"nan"}`,
		"trailing data":   `{"name":"x","threshold":0.5}{"name":"y"}`,
		"array":           `[]`,
		"empty":           ``,
		"cap violation":   `{"name":"x","threshold":0.5,"debounce_frames":2000000}`,
		"bad max<initial": `{"name":"x","threshold":0.5,"initial_action":"safe-stop","max_action":"warn"}`,
	}
	for name, data := range cases {
		if _, err := ParsePolicy([]byte(data)); err == nil {
			t.Errorf("%s: parsed %q, want error", name, data)
		}
	}
}

func TestParsePolicies(t *testing.T) {
	data := []byte(`{"policies":[
		{"name":"b","threshold":0.5},
		{"name":"a","threshold":0.2,"max_action":"pause"}
	]}`)
	ps, err := ParsePolicies(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 || ps[0].Name != "a" || ps[1].Name != "b" {
		t.Fatalf("policies = %+v, want sorted a,b", ps)
	}
	for name, bad := range map[string]string{
		"empty set":    `{"policies":[]}`,
		"no name":      `{"policies":[{"threshold":0.5}]}`,
		"duplicate":    `{"policies":[{"name":"a","threshold":0.5},{"name":"a","threshold":0.6}]}`,
		"invalid item": `{"policies":[{"name":"a","threshold":-1}]}`,
		"unknown key":  `{"rules":[]}`,
	} {
		if _, err := ParsePolicies([]byte(bad)); err == nil {
			t.Errorf("%s: parsed, want error", name)
		}
	}
}

func TestActionNames(t *testing.T) {
	for a := ActionNone; a <= maxActionValue; a++ {
		parsed, err := ParseAction(a.String())
		if err != nil || parsed != a {
			t.Errorf("ParseAction(%q) = %v, %v", a.String(), parsed, err)
		}
	}
	if !ActionSafeStop.Latches() || !ActionRetract.Latches() || ActionPause.Latches() {
		t.Error("latch classification wrong")
	}
	if !ActionPause.Stops() || ActionWarn.Stops() {
		t.Error("stop classification wrong")
	}
	if !strings.Contains(Action(42).String(), "42") {
		t.Error("unknown action String should carry the value")
	}
}

// TestEngineStepZeroAlloc pins the guard's contribution to the streaming
// hot path at zero heap allocations per frame, including while an episode
// is escalating and while a latched action holds.
func TestEngineStepZeroAlloc(t *testing.T) {
	e := MustEngine(Policy{
		Threshold:         0.5,
		GestureThresholds: map[int]float64{6: 0.2},
		DebounceFrames:    2, ReleaseFrames: 2, EscalateFrames: 2,
	})
	i := 0
	scores := []float64{0.1, 0.9, 0.9, 0.9, 0.1, 0.1, 0.1}
	allocs := testing.AllocsPerRun(500, func() {
		e.Step(verdict(i, i%12, scores[i%len(scores)]))
		i++
	})
	if allocs != 0 {
		t.Errorf("Engine.Step allocates %.1f objects/frame, want 0", allocs)
	}
}

// BenchmarkGuardStep measures the per-frame cost of the policy engine —
// the closed loop's only addition to the session hot path. It must report
// 0 allocs/op; scripts/benchguard.sh fails CI otherwise.
func BenchmarkGuardStep(b *testing.B) {
	e := MustEngine(Policy{
		Threshold:         0.5,
		GestureThresholds: map[int]float64{6: 0.2, 11: 0.9},
		DebounceFrames:    2, ReleaseFrames: 4, EscalateFrames: 2,
	})
	scores := []float64{0.1, 0.15, 0.6, 0.7, 0.1, 0.05, 0.9, 0.2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step(verdict(i, i%12, scores[i%len(scores)]))
	}
}
