// Package guard closes the monitoring loop: it turns the per-frame
// FrameVerdicts a safemon detector emits into mitigation actions — Warn,
// Pause, SafeStop, Retract — under an explicit, validated Policy.
//
// The paper's core claim (Yasar & Alemzadeh, DSN 2020) is that
// context-aware monitoring detects unsafe events early enough to act
// *before* the hazard manifests. A detector alone only writes verdict
// records; this package is the part that acts. The Engine is a small
// deterministic state machine:
//
//   - evidence: a frame whose unsafe score reaches the policy threshold
//     (per-gesture overrides make the trigger context-aware) counts as one
//     frame of hazard evidence.
//   - debounce: DebounceFrames consecutive evidence frames confirm an
//     alert; isolated single-frame spikes never actuate anything.
//   - escalation: a confirmed alert engages InitialAction and climbs one
//     rung (Warn → Pause → SafeStop → Retract) every EscalateFrames further
//     evidence frames, capped at MaxAction. A score at or above PanicScore
//     jumps straight to MaxAction.
//   - hysteresis: ReleaseFrames consecutive sub-threshold frames release
//     Warn and Pause back to no action. SafeStop and Retract latch — once a
//     terminal action engages, only Reset (a new episode) clears it, the
//     way a tripped emergency stop stays tripped until a human resets it.
//
// The reaction-deadline budget (ReactionBudgetFrames) is the declared
// number of frames between first alert and hazard manifestation within
// which the policy promises to act; the mitigation campaign
// (internal/mitigation) measures actual detection-to-hazard latencies
// against it.
//
// Engine.Step is allocation-free, so a guard adds nothing to the
// zero-allocation streaming hot path (BenchmarkGuardStep is gated at 0
// allocs/op by scripts/benchguard.sh).
package guard

import (
	"fmt"

	"repro/internal/core"
)

// Action is a mitigation level, ordered by severity. The zero value is
// ActionNone (monitoring only).
type Action int

// Mitigation levels. Warn and Pause are reversible (hysteresis releases
// them); SafeStop and Retract latch until the engine is Reset.
const (
	// ActionNone takes no action; the stream is monitored only.
	ActionNone Action = iota
	// ActionWarn surfaces the alert to the operator without touching the
	// command stream.
	ActionWarn
	// ActionPause freezes the commanded motion at the pose held when the
	// action engaged.
	ActionPause
	// ActionSafeStop freezes motion and clamps the grasper to a safe hold
	// angle, the strongest in-place mitigation. Latches.
	ActionSafeStop
	// ActionRetract withdraws the manipulator toward a safe pose with the
	// grasper clamped. Latches.
	ActionRetract
)

// maxActionValue bounds the valid Action range for validation.
const maxActionValue = ActionRetract

// String returns the wire name of the action.
func (a Action) String() string {
	switch a {
	case ActionNone:
		return "none"
	case ActionWarn:
		return "warn"
	case ActionPause:
		return "pause"
	case ActionSafeStop:
		return "safe-stop"
	case ActionRetract:
		return "retract"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// Latches reports whether the action is terminal: once engaged it holds
// until the engine is Reset, regardless of later verdicts.
func (a Action) Latches() bool { return a >= ActionSafeStop }

// Stops reports whether the action interferes with the commanded motion
// (Pause or stronger). The campaign's false-stop accounting counts a
// fault-free run on which a stopping action engaged.
func (a Action) Stops() bool { return a >= ActionPause }

// Decision is the engine's output for one frame.
type Decision struct {
	// Action is the mitigation level in force after this frame.
	Action Action
	// Changed reports that Action differs from the previous frame's level
	// (an engage, escalation, or release edge — the events worth acting
	// on and the ones safemond interleaves into the verdict stream).
	Changed bool
	// Alert reports that a confirmed unsafe episode is active.
	Alert bool
	// FrameIndex echoes the verdict's frame index.
	FrameIndex int
	// AlertFrame is the frame at which the active episode's alert was
	// confirmed, -1 when no episode is active. The distance between
	// AlertFrame and the hazard manifestation is the reaction time the
	// policy's ReactionBudgetFrames budgets for.
	AlertFrame int
	// Score and Threshold record the verdict score and the effective
	// (per-gesture) threshold it was compared against.
	Score     float64
	Threshold float64
}

// Counters aggregates an engine's lifetime activity, for /stats.
type Counters struct {
	// Frames is the number of verdicts stepped through the engine.
	Frames uint64
	// Alerts counts confirmed unsafe episodes (debounce passed).
	Alerts uint64
	// Warns/Pauses/SafeStops/Retracts count upward transitions into each
	// level.
	Warns     uint64
	Pauses    uint64
	SafeStops uint64
	Retracts  uint64
	// Releases counts hysteresis releases back to no action.
	Releases uint64
}

// Add accumulates other into c (merging per-stream engines into service
// totals).
func (c *Counters) Add(other Counters) {
	c.Frames += other.Frames
	c.Alerts += other.Alerts
	c.Warns += other.Warns
	c.Pauses += other.Pauses
	c.SafeStops += other.SafeStops
	c.Retracts += other.Retracts
	c.Releases += other.Releases
}

// Actuator receives mitigation decisions. Implementations bridge the
// engine to whatever can act — a robot controller, the simulator's command
// stream (internal/mitigation), a pager. Act is called once per action
// edge (Decision.Changed), never per frame.
type Actuator interface {
	Act(d Decision) error
}

// ActuatorFunc adapts a function to the Actuator interface.
type ActuatorFunc func(d Decision) error

// Act implements Actuator.
func (f ActuatorFunc) Act(d Decision) error { return f(d) }

// Engine is the per-stream mitigation state machine. It is a
// single-goroutine object, like the safemon.Session it rides on; Step
// never allocates.
type Engine struct {
	p Policy

	unsafeRun  int
	safeRun    int
	level      Action
	alertFrame int
	counters   Counters
}

// NewEngine validates the policy and builds an engine with defaults
// applied.
func NewEngine(p Policy) (*Engine, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Engine{p: p, alertFrame: -1}, nil
}

// MustEngine is NewEngine for statically known-good policies; it panics on
// a validation error.
func MustEngine(p Policy) *Engine {
	e, err := NewEngine(p)
	if err != nil {
		panic(err)
	}
	return e
}

// Policy returns the engine's resolved policy (defaults applied).
func (e *Engine) Policy() Policy { return e.p }

// Counters returns the engine's lifetime activity.
func (e *Engine) Counters() Counters { return e.counters }

// Action returns the mitigation level currently in force.
func (e *Engine) Action() Action { return e.level }

// Reset clears the episode state — including a latched SafeStop/Retract —
// for reuse on a new stream. Counters are lifetime and survive Reset.
func (e *Engine) Reset() {
	e.unsafeRun, e.safeRun = 0, 0
	e.level = ActionNone
	e.alertFrame = -1
}

// threshold resolves the effective threshold for a gesture context.
func (e *Engine) threshold(gesture int) float64 {
	if t, ok := e.p.GestureThresholds[gesture]; ok {
		return t
	}
	return e.p.Threshold
}

// Step advances the state machine by one verdict and returns the
// mitigation decision for that frame. It is allocation-free.
func (e *Engine) Step(v core.FrameVerdict) Decision {
	e.counters.Frames++
	th := e.threshold(v.Gesture)
	// Partial-window scores during the warmup are noise, not evidence.
	evidence := v.Score >= th && v.FrameIndex >= e.p.WarmupFrames
	prev := e.level

	if evidence {
		e.unsafeRun++
		e.safeRun = 0
	} else {
		e.safeRun++
		e.unsafeRun = 0
	}

	switch {
	case evidence && e.unsafeRun >= e.p.DebounceFrames:
		if e.level == ActionNone {
			e.alertFrame = v.FrameIndex
			e.counters.Alerts++
		}
		// Ladder position from the uninterrupted evidence run: one rung
		// per EscalateFrames beyond the debounce, capped at MaxAction.
		// EscalateFrames <= 0 disables the ladder (InitialAction only).
		next := e.p.InitialAction
		if e.p.EscalateFrames > 0 {
			rungs := (e.unsafeRun - e.p.DebounceFrames) / e.p.EscalateFrames
			next += Action(rungs)
		}
		if e.p.PanicScore > 0 && v.Score >= e.p.PanicScore {
			next = e.p.MaxAction
		}
		if next > e.p.MaxAction {
			next = e.p.MaxAction
		}
		if next > e.level {
			e.level = next
		}
	case !evidence && e.level != ActionNone && !e.level.Latches() && e.safeRun >= e.p.ReleaseFrames:
		// Hysteresis release of a non-latching action. Latched actions
		// (SafeStop, Retract) only ever strengthen; Reset clears them.
		e.level = ActionNone
		e.alertFrame = -1
		e.counters.Releases++
	}

	if e.level > prev {
		e.countTransition(e.level)
	}

	return Decision{
		Action:     e.level,
		Changed:    e.level != prev,
		Alert:      e.alertFrame >= 0,
		FrameIndex: v.FrameIndex,
		AlertFrame: e.alertFrame,
		Score:      v.Score,
		Threshold:  th,
	}
}

// countTransition records an upward transition into level.
func (e *Engine) countTransition(level Action) {
	switch level {
	case ActionWarn:
		e.counters.Warns++
	case ActionPause:
		e.counters.Pauses++
	case ActionSafeStop:
		e.counters.SafeStops++
	case ActionRetract:
		e.counters.Retracts++
	}
}
