package safemon

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// mlpFixture caches the MLP-arch monolithic detector for the headline
// batching benchmark.
var mlpFixture struct {
	once sync.Once
	det  Detector
	err  error
}

// mlpMonolithicDetector fits the monolithic backend with MLP error heads —
// the seq-dense-dominated configuration the batching headline targets
// (every armed frame is one dense stack over the flattened window, no conv
// or recurrent layers).
func mlpMonolithicDetector(t testing.TB) Detector {
	t.Helper()
	mlpFixture.once.Do(func() {
		det, err := Open("monolithic", append(quickOptions("monolithic"), WithArch(ArchMLP))...)
		if err == nil {
			err = det.Fit(context.Background(), testFold(t).Train)
		}
		mlpFixture.det, mlpFixture.err = det, err
	})
	if mlpFixture.err != nil {
		t.Fatal(mlpFixture.err)
	}
	return mlpFixture.det
}

// batchCase describes one live/reference session pair in the mixed-backend
// batcher equivalence test.
type batchCase struct {
	name    string
	backend string
	guarded bool
	// wantFallback marks backends the batcher must route through the
	// ordinary Push path (lookahead streams, non-nn detectors).
	wantFallback bool
}

// openPair opens a live session and its twin reference session with
// identical options on the same fitted detector.
func openPair(t *testing.T, c batchCase, labels []int) (live, ref Session) {
	t.Helper()
	det := fittedDetector(t, c.backend)
	opts := []SessionOption{WithSessionLabels(labels)}
	if c.guarded {
		opts = append(opts, WithGuard(guardTestPolicy()))
	}
	var err error
	if live, err = det.NewSession(opts...); err != nil {
		t.Fatalf("%s live session: %v", c.name, err)
	}
	if ref, err = det.NewSession(opts...); err != nil {
		t.Fatalf("%s ref session: %v", c.name, err)
	}
	return live, ref
}

// TestBatcherMatchesPush drives a mixed population of sessions — batchable
// nn backends, a cascade, guarded variants, and fallback-only backends —
// through PushBatch frame by frame, and requires every verdict, error and
// guard decision to be byte-identical to twin sessions fed one at a time
// via Push. Mixing backends inside one call is exactly the traffic shape a
// serve shard produces.
func TestBatcherMatchesPush(t *testing.T) {
	fold := testFold(t)
	cases := []batchCase{
		{name: "context-aware", backend: "context-aware"},
		{name: "context-aware-guarded", backend: "context-aware", guarded: true},
		{name: "monolithic", backend: "monolithic"},
		{name: "cascade", backend: "cascade"},
		{name: "cascade-guarded", backend: "cascade", guarded: true},
		{name: "lookahead", backend: "lookahead", wantFallback: true},
		{name: "envelope", backend: "envelope", wantFallback: true},
	}

	trajs := make([]*Trajectory, len(cases))
	live := make([]Session, len(cases))
	refs := make([]Session, len(cases))
	maxLen, wantFallback := 0, 0
	for i, c := range cases {
		trajs[i] = fold.Test[i%len(fold.Test)]
		live[i], refs[i] = openPair(t, c, trajs[i].Gestures)
		defer live[i].Close()
		defer refs[i].Close()
		if trajs[i].Len() > maxLen {
			maxLen = trajs[i].Len()
		}
		if c.wantFallback {
			wantFallback++
		}
	}

	batcher := NewBatcher(4) // smaller than the population: forces chunking
	sessions := make([]Session, 0, len(cases))
	frames := make([]*Frame, 0, len(cases))
	verdicts := make([]FrameVerdict, len(cases))
	errs := make([]error, len(cases))
	idx := make([]int, 0, len(cases))

	for f := 0; f < maxLen; f++ {
		// Sessions whose trajectory has ended drop out, so batch
		// composition varies across the run.
		sessions, frames, idx = sessions[:0], frames[:0], idx[:0]
		for i := range cases {
			if f < trajs[i].Len() {
				sessions = append(sessions, live[i])
				frames = append(frames, &trajs[i].Frames[f])
				idx = append(idx, i)
			}
		}
		counts := batcher.PushBatch(sessions, frames, verdicts[:len(sessions)], errs[:len(sessions)])
		if got := counts.Batched + counts.Fallback + counts.Inline; got != len(sessions) {
			t.Fatalf("frame %d: counts %+v cover %d of %d sessions", f, counts, got, len(sessions))
		}

		for k, i := range idx {
			wantV, wantErr := refs[i].Push(frames[k])
			if verdicts[k] != wantV {
				t.Fatalf("%s frame %d: batched verdict %+v, Push gave %+v", cases[i].name, f, verdicts[k], wantV)
			}
			if (errs[k] == nil) != (wantErr == nil) {
				t.Fatalf("%s frame %d: batched err %v, Push err %v", cases[i].name, f, errs[k], wantErr)
			}
			if cases[i].guarded {
				gl := live[i].(GuardedSession)
				gr := refs[i].(GuardedSession)
				if gl.Decision() != gr.Decision() {
					t.Fatalf("%s frame %d: guard decision %+v vs %+v", cases[i].name, f, gl.Decision(), gr.Decision())
				}
				if gl.GuardCounters() != gr.GuardCounters() {
					t.Fatalf("%s frame %d: guard counters diverged", cases[i].name, f)
				}
			}
		}
	}

	// The final full-population batch must have routed exactly the
	// fallback-only backends through Push.
	sessions, frames = sessions[:0], frames[:0]
	for i := range cases {
		sessions = append(sessions, live[i])
		frames = append(frames, &trajs[i].Frames[0])
	}
	counts := batcher.PushBatch(sessions, frames, verdicts, errs)
	if counts.Fallback != wantFallback {
		t.Errorf("Fallback = %d, want %d (lookahead + envelope)", counts.Fallback, wantFallback)
	}
	if counts.Batched+counts.Inline != len(cases)-wantFallback {
		t.Errorf("Batched+Inline = %d, want %d", counts.Batched+counts.Inline, len(cases)-wantFallback)
	}
}

// TestBatcherResetKeepsEquivalence checks that sessions reset mid-stream
// stay bit-identical to their Push twins when batching resumes.
func TestBatcherResetKeepsEquivalence(t *testing.T) {
	fold := testFold(t)
	traj := fold.Test[0]
	det := fittedDetector(t, "context-aware")
	live, err := det.NewSession(WithSessionLabels(traj.Gestures))
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	ref, err := det.NewSession(WithSessionLabels(traj.Gestures))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	batcher := NewBatcher(2)
	verdicts := make([]FrameVerdict, 1)
	errs := make([]error, 1)
	push := func(f *Frame) {
		t.Helper()
		batcher.PushBatch([]Session{live}, []*Frame{f}, verdicts, errs)
		wantV, wantErr := ref.Push(f)
		if verdicts[0] != wantV || (errs[0] == nil) != (wantErr == nil) {
			t.Fatalf("verdict %+v (err %v), want %+v (err %v)", verdicts[0], errs[0], wantV, wantErr)
		}
	}
	half := traj.Len() / 2
	for f := 0; f < half; f++ {
		push(&traj.Frames[f])
	}
	if err := live.Reset(traj.Gestures); err != nil {
		t.Fatal(err)
	}
	if err := ref.Reset(traj.Gestures); err != nil {
		t.Fatal(err)
	}
	for f := 0; f < traj.Len(); f++ {
		push(&traj.Frames[f])
	}
}

// TestBatcherZeroAlloc extends the warm hot-path allocation budget to the
// batched path: once the steppers and scratch exist, a steady-state
// PushBatch over warm sessions must not allocate.
func TestBatcherZeroAlloc(t *testing.T) {
	fold := testFold(t)
	traj := fold.Test[0]
	det := fittedDetector(t, "context-aware")

	const B = 4
	batcher := NewBatcher(B)
	sessions := make([]Session, B)
	frames := make([]*Frame, B)
	verdicts := make([]FrameVerdict, B)
	errs := make([]error, B)
	for i := range sessions {
		s, err := det.NewSession(WithSessionLabels(traj.Gestures))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		sessions[i] = s
	}
	for f := 0; f < traj.Len(); f++ {
		for i := range frames {
			frames[i] = &traj.Frames[f]
		}
		batcher.PushBatch(sessions, frames, verdicts, errs)
	}

	n := 0
	avg := testing.AllocsPerRun(100, func() {
		fr := &traj.Frames[n%traj.Len()]
		n++
		for i := range frames {
			frames[i] = fr
		}
		batcher.PushBatch(sessions, frames, verdicts, errs)
	})
	if avg != 0 {
		t.Errorf("warm PushBatch allocates %.1f allocs/op, want 0", avg)
	}
}

// BenchmarkBatchedStep is the headline batching benchmark: one PushBatch of
// B warm same-monitor sessions per iteration (ns/op is per batch; divide by
// B for per-stream cost). The int8 variants run the same batch over the
// quantized twin of the detector. scripts/benchguard.sh holds the B=16
// float case to the 0 allocs/op budget alongside the per-stream step.
func BenchmarkBatchedStep(b *testing.B) {
	variants := []struct {
		name string
		det  func(testing.TB) Detector
	}{
		{"context-aware", func(t testing.TB) Detector { return fittedDetector(t, "context-aware") }},
		{"context-aware-int8", func(t testing.TB) Detector { return quantizedDetector(t, "context-aware") }},
		{"monolithic", func(t testing.TB) Detector { return fittedDetector(t, "monolithic") }},
		{"monolithic-int8", func(t testing.TB) Detector { return quantizedDetector(t, "monolithic") }},
		{"monolithic-mlp", mlpMonolithicDetector},
	}
	for _, v := range variants {
		for _, B := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/B=%d", v.name, B), func(b *testing.B) {
				det := v.det(b)
				fold := testFold(b)
				traj := fold.Test[0]
				batcher := NewBatcher(B)
				sessions := make([]Session, B)
				frames := make([]*Frame, B)
				verdicts := make([]FrameVerdict, B)
				errs := make([]error, B)
				for i := range sessions {
					s, err := det.NewSession(WithSessionLabels(traj.Gestures))
					if err != nil {
						b.Fatal(err)
					}
					defer s.Close()
					sessions[i] = s
				}
				for f := 0; f < traj.Len(); f++ {
					for i := range frames {
						frames[i] = &traj.Frames[f]
					}
					batcher.PushBatch(sessions, frames, verdicts, errs)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					fr := &traj.Frames[i%traj.Len()]
					for j := range frames {
						frames[j] = fr
					}
					batcher.PushBatch(sessions, frames, verdicts, errs)
				}
			})
		}
	}
}
