package safemon

// Config collects every tunable a backend can honor. Zero values mean
// "backend default"; backends ignore knobs they have no use for.
type Config struct {
	// Threshold is the unsafe-score alert threshold (default 0.5).
	Threshold float64
	// GroundTruthContext switches context from the gesture classifier to
	// the trajectory's annotations (the paper's perfect-boundary mode).
	GroundTruthContext bool
	// Lookahead enables boundary-lookahead pre-activation; Chain, when
	// non-nil, overrides the grammar fitted from the training set.
	Lookahead bool
	Chain     *MarkovChain
	// GestureFeatures / ErrorFeatures select the kinematic variables of
	// the two stages (nil = backend default).
	GestureFeatures FeatureSet
	ErrorFeatures   FeatureSet
	// Window overrides the error-stage window length.
	Window int
	// Arch overrides the error-head architecture.
	Arch ErrorArch
	// Epochs and TrainStride override training effort (quick runs).
	Epochs      int
	TrainStride int
	// Seed makes training deterministic (default 1).
	Seed int64
	// EnvelopeMargin widens the static envelope (default 0.5 σ).
	EnvelopeMargin float64
	// Atoms is the SDSDL dictionary size; SkipLag the SkipChain lag.
	Atoms   int
	SkipLag int
	// CascadeFront and CascadeInner name the two stages of the cascade
	// backend: a cheap front filter scoring every frame ("envelope" or
	// "sdsdl", default envelope) and the expensive nn-backed detector it
	// gates ("context-aware", "lookahead" or "monolithic", default
	// context-aware).
	CascadeFront string
	CascadeInner string
	// CascadeArm is the front-filter score at which the cascade arms the
	// inner detector (default 0.02); CascadeHoldoff is how many frames the
	// inner detector keeps running after the last arming frame (default
	// 30, one second at 30 Hz).
	CascadeArm     float64
	CascadeHoldoff int
	// Quantized switches the nn-backed detectors' streaming inference to
	// int8 per-channel quantized Dense/Conv1D weights (see WithQuantized).
	Quantized bool
	// Timing makes Run measure per-frame compute, at the cost of traces
	// (and therefore reports) no longer being bit-reproducible.
	Timing bool
	// Verbose receives training progress lines when non-nil.
	Verbose func(string)
}

// Option mutates a Config; pass options to New or Open.
type Option func(*Config)

func newConfig(opts []Option) Config {
	cfg := Config{Threshold: 0.5, Seed: 1}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithThreshold sets the unsafe-score alert threshold.
func WithThreshold(t float64) Option { return func(c *Config) { c.Threshold = t } }

// WithGroundTruthContext selects perfect gesture boundaries: the
// operational context comes from trajectory annotations instead of the
// classifier. Sessions then require WithSessionLabels.
func WithGroundTruthContext() Option { return func(c *Config) { c.GroundTruthContext = true } }

// WithLookahead enables boundary-lookahead pre-activation of the most
// likely next gesture's error head. chain may be nil, in which case the
// task grammar is fitted from the training trajectories during Fit.
func WithLookahead(chain *MarkovChain) Option {
	return func(c *Config) {
		c.Lookahead = true
		c.Chain = chain
	}
}

// WithFeatures selects the gesture-stage (context) feature subset.
func WithFeatures(fs FeatureSet) Option { return func(c *Config) { c.GestureFeatures = fs } }

// WithErrorFeatures selects the error-stage feature subset.
func WithErrorFeatures(fs FeatureSet) Option { return func(c *Config) { c.ErrorFeatures = fs } }

// WithWindow sets the error-stage sliding-window length.
func WithWindow(n int) Option { return func(c *Config) { c.Window = n } }

// WithArch selects the error-head architecture (ArchConv, ArchLSTM, ArchMLP).
func WithArch(a ErrorArch) Option { return func(c *Config) { c.Arch = a } }

// WithEpochs overrides the training epochs of both neural stages.
func WithEpochs(n int) Option { return func(c *Config) { c.Epochs = n } }

// WithTrainStride subsamples training windows for faster fitting.
func WithTrainStride(n int) Option { return func(c *Config) { c.TrainStride = n } }

// WithSeed fixes the training seed.
func WithSeed(s int64) Option { return func(c *Config) { c.Seed = s } }

// WithEnvelopeMargin widens the static envelope by m training σ.
func WithEnvelopeMargin(m float64) Option { return func(c *Config) { c.EnvelopeMargin = m } }

// WithAtoms sets the SDSDL dictionary size.
func WithAtoms(n int) Option { return func(c *Config) { c.Atoms = n } }

// WithSkipLag sets the SkipChain skip-transition lag in frames.
func WithSkipLag(n int) Option { return func(c *Config) { c.SkipLag = n } }

// WithCascadeStages selects the cascade backend's two stages by registry
// name: front is the cheap always-on filter ("envelope" or "sdsdl"),
// inner the gated nn-backed detector ("context-aware", "lookahead" or
// "monolithic"). Empty strings keep the defaults (envelope gating
// context-aware).
func WithCascadeStages(front, inner string) Option {
	return func(c *Config) {
		c.CascadeFront = front
		c.CascadeInner = inner
	}
}

// WithCascadeArm sets the front-filter score at which the cascade arms its
// inner detector. Front scores are the front backend's own scale (envelope
// violation magnitude, not a probability), so arm thresholds near zero are
// typical.
func WithCascadeArm(score float64) Option { return func(c *Config) { c.CascadeArm = score } }

// WithCascadeHoldoff sets how many frames the inner detector keeps running
// after the last frame whose front score reached the arm threshold.
func WithCascadeHoldoff(frames int) Option { return func(c *Config) { c.CascadeHoldoff = frames } }

// WithQuantized switches the nn-backed detectors (context-aware,
// monolithic, and a cascade's inner stage) to int8 per-output-channel
// quantized Dense/Conv1D weights on the error heads' streaming inference
// path. The gesture classifier stays float so the operational context —
// which error head scores each frame — is bit-identical to the unquantized
// detector. Training, Forward, and the float weights are untouched;
// quantization is deterministic and idempotent, and quantized tensors
// round-trip through Save/Load as an extra artifact payload section.
//
// Tolerance policy (asserted by quant_test.go on the held-out fold plus
// the Table III fault-injection corpus): per-frame scores drift by at most
// quantScoreEps, and no verdict flips on any frame whose float score is
// more than quantScoreEps from the threshold. Frames already inside that
// band are ambiguous at eps precision and may flip either way. Backends
// without nn weights ignore the option.
func WithQuantized() Option { return func(c *Config) { c.Quantized = true } }

// WithTiming makes Run measure mean per-frame compute time (Table VIII's
// computation-time column). Timed traces are not bit-reproducible.
func WithTiming() Option { return func(c *Config) { c.Timing = true } }

// WithVerbose routes training progress lines to fn.
func WithVerbose(fn func(string)) Option { return func(c *Config) { c.Verbose = fn } }
