package safemon

import (
	"repro/safemon/guard"
	"repro/safemon/ledger"
)

// WithLedger attaches a ledger appender to the session: every verdict
// (together with the input frame that produced it), every guard
// mitigation edge, and the session lifecycle are recorded as durable
// ledger events. backend and model annotate the recorded session (the
// policy name is taken from the session's guard, when one is attached);
// incidents captured this way replay through safemon/serve or an offline
// Runner.
//
// Recording adds no allocations to the warm per-frame path — emission is
// a non-blocking copy into the appender's bounded queue — so ledgered
// sessions keep the zero-allocation streaming guarantee. Each Reset
// closes the recorded session and opens a fresh one, mirroring the
// one-recorded-session-per-trajectory model of the serve layer.
func WithLedger(a *ledger.Appender, backend, model string) SessionOption {
	return func(sc *sessionConfig) {
		sc.ledger = a
		sc.ledgerBackend = backend
		sc.ledgerModel = model
	}
}

// LedgeredSession is implemented by sessions opened WithLedger.
type LedgeredSession interface {
	Session
	// LedgerSession returns the ledger session ID currently recording.
	LedgerSession() uint64
}

// wrapLedger applies the session's ledger option, if any. It runs after
// the guard wrapper so action edges are observable through the
// GuardedSession interface.
func wrapLedger(s Session, sc sessionConfig) Session {
	if sc.ledger == nil {
		return s
	}
	g, _ := s.(GuardedSession)
	ls := &ledgeredSession{
		Session: s,
		g:       g,
		app:     sc.ledger,
		backend: sc.ledgerBackend,
		model:   sc.ledgerModel,
	}
	ls.open(sc.groundTruth)
	if g != nil {
		// Keep the guard surface visible through the ledger wrapper.
		return &ledgeredGuardedSession{ls}
	}
	return ls
}

// ledgeredSession decorates a (possibly guarded) session with ledger
// recording.
type ledgeredSession struct {
	Session
	g       GuardedSession // non-nil when the inner session is guarded
	app     *ledger.Appender
	rec     *ledger.Recorder
	backend string
	model   string
	frames  int
	closed  bool
}

// open starts a fresh recorded session.
func (l *ledgeredSession) open(groundTruth []int) {
	policy := ""
	if l.g != nil {
		policy = l.g.GuardPolicy().Name
	}
	l.rec = ledger.NewRecorder(l.app, l.backend, l.model, policy)
	l.rec.Start(labels32(groundTruth))
	l.frames = 0
}

// labels32 converts session ground-truth labels to the ledger's compact
// form (nil in, nil out).
func labels32(labels []int) []int32 {
	if len(labels) == 0 {
		return nil
	}
	out := make([]int32, len(labels))
	for i, l := range labels {
		out[i] = int32(l)
	}
	return out
}

func (l *ledgeredSession) Push(f *Frame) (FrameVerdict, error) {
	v, err := l.Session.Push(f)
	if err != nil {
		return v, err
	}
	l.frames++
	l.rec.Verdict(v, f)
	if l.g != nil {
		if d := l.g.Decision(); d.Changed {
			l.rec.Action(d)
		}
	}
	return v, nil
}

// batchable/planPush delegate inward; finishPush appends the recording
// step so batched frames are ledgered exactly as pushed ones.
func (l *ledgeredSession) batchable() bool {
	bs, ok := l.Session.(batchSession)
	return ok && bs.batchable()
}

func (l *ledgeredSession) planPush(f *Frame) batchEntry {
	return l.Session.(batchSession).planPush(f)
}

func (l *ledgeredSession) finishPush(f *Frame, v FrameVerdict) (FrameVerdict, error) {
	v, err := l.Session.(batchSession).finishPush(f, v)
	if err != nil {
		return v, err
	}
	l.frames++
	l.rec.Verdict(v, f)
	if l.g != nil {
		if d := l.g.Decision(); d.Changed {
			l.rec.Action(d)
		}
	}
	return v, nil
}

func (l *ledgeredSession) Reset(groundTruth []int) error {
	if err := l.Session.Reset(groundTruth); err != nil {
		return err
	}
	l.rec.End(l.frames, "reset")
	l.open(groundTruth)
	return nil
}

func (l *ledgeredSession) Close() error {
	if !l.closed {
		l.closed = true
		l.rec.End(l.frames, "close")
	}
	return l.Session.Close()
}

func (l *ledgeredSession) LedgerSession() uint64 { return l.rec.Session() }

// ledgeredGuardedSession re-exposes the guard surface of a ledgered
// guarded session.
type ledgeredGuardedSession struct {
	*ledgeredSession
}

func (l *ledgeredGuardedSession) Decision() guard.Decision      { return l.g.Decision() }
func (l *ledgeredGuardedSession) GuardPolicy() guard.Policy     { return l.g.GuardPolicy() }
func (l *ledgeredGuardedSession) GuardCounters() guard.Counters { return l.g.GuardCounters() }
