package serve

// Client side of POST /v1/mux: one binary connection carrying many
// logical sessions. A MuxConn owns the connection — a writer shared by
// all its streams and one reader goroutine demultiplexing server records
// by sid — while each MuxStream keeps the Send/Recv lockstep surface of
// a plain Stream.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"repro/safemon"
)

// muxEventDepth buffers each stream's demultiplexed server records.
// Lockstep callers keep at most one verdict outstanding per stream; the
// slack covers guard action records and terminal records arriving behind
// them. A stream whose consumer stops draining eventually blocks the
// connection's reader — Recv promptly, as with Stream.
const muxEventDepth = 64

const (
	muxEvVerdict = iota
	muxEvAction
	muxEvDone
	muxEvError
	muxEvOpened
)

// muxEvent is one server record routed to its stream.
type muxEvent struct {
	kind    int
	verdict VerdictMsg
	action  ActionMsg
	frames  int
	errMsg  ErrorMsg
	version string
}

// MuxConn is one multiplexed connection. Open logical sessions with
// Open; streams may be used from different goroutines (each stream from
// one at a time), and Close tears the whole connection down.
type MuxConn struct {
	body io.WriteCloser // request-body pipe
	resp *http.Response

	wmu sync.Mutex // serializes record writes from all streams
	bw  *binWriter

	mu      sync.Mutex
	streams map[uint32]*MuxStream
	nextSID uint32
	readErr error // reader exit cause; connection-level BinError wins

	readDone chan struct{}
}

// OpenMux dials a multiplexed binary connection. A non-200 admission
// answer (415 binary disabled, 503 draining) is returned as *ErrorMsg.
func (c *Client) OpenMux(ctx context.Context) (*MuxConn, error) {
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/mux", pr)
	if err != nil {
		pw.Close()
		return nil, err
	}
	req.Header.Set("Content-Type", BinaryContentType)
	req.Header.Set("Accept", BinaryContentType)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		pw.Close()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		pw.Close()
		return nil, &ErrorMsg{Code: resp.StatusCode, Message: strings.TrimSpace(string(body))}
	}
	m := &MuxConn{
		body:     pw,
		resp:     resp,
		bw:       newBinWriter(pw),
		streams:  map[uint32]*MuxStream{},
		readDone: make(chan struct{}),
	}
	go m.readLoop()
	return m, nil
}

// readLoop demultiplexes server records to their streams until the
// connection dies, then wakes every remaining stream.
func (m *MuxConn) readLoop() {
	br := newBinReader(m.resp.Body)
	defer br.release()
	var connErr error // sid-0 BinError: the whole connection failed
	for {
		rec, err := br.next()
		if err != nil {
			m.mu.Lock()
			if connErr != nil {
				m.readErr = connErr
			} else {
				m.readErr = err
			}
			for sid, st := range m.streams {
				close(st.ch)
				delete(m.streams, sid)
			}
			m.mu.Unlock()
			close(m.readDone)
			return
		}
		var ev muxEvent
		terminal := false
		switch rec.Type {
		case BinVerdict:
			ev = muxEvent{kind: muxEvVerdict, verdict: rec.Verdict}
		case BinAction:
			ev = muxEvent{kind: muxEvAction, action: rec.Action}
		case BinDone:
			ev = muxEvent{kind: muxEvDone, frames: int(rec.Frames)}
			terminal = true
		case BinError:
			if rec.SID == 0 {
				// Connection-level failure: remember it as the exit cause
				// the server will close on.
				connErr = &ErrorMsg{Code: int(rec.Code), Message: rec.Message}
				continue
			}
			ev = muxEvent{kind: muxEvError, errMsg: ErrorMsg{Code: int(rec.Code), Message: rec.Message}}
			terminal = true
		case BinOpened:
			ev = muxEvent{kind: muxEvOpened, version: rec.Version}
		default:
			continue // unknown server record: ignore for forward compat
		}
		m.mu.Lock()
		st := m.streams[rec.SID]
		if terminal && st != nil {
			// The server says nothing more for this sid: route the record,
			// then stop tracking so stray records cannot block the reader.
			delete(m.streams, rec.SID)
		}
		m.mu.Unlock()
		if st != nil {
			st.ch <- ev
		}
	}
}

// connErr explains a stream channel closed without a terminal record.
func (m *MuxConn) connErr() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.readErr != nil && m.readErr != io.EOF {
		return m.readErr
	}
	return io.ErrUnexpectedEOF
}

// Open starts one logical session against the named backend, optionally
// guarded by a policy, and waits for the server's acknowledgment. A
// rejected open (unknown backend or policy, session cap, draining)
// returns the per-sid *ErrorMsg.
func (m *MuxConn) Open(ctx context.Context, backend, policy string, groundTruth []int) (*MuxStream, error) {
	m.mu.Lock()
	m.nextSID++
	sid := m.nextSID
	st := &MuxStream{sid: sid, conn: m, ch: make(chan muxEvent, muxEventDepth)}
	m.streams[sid] = st
	m.mu.Unlock()

	m.wmu.Lock()
	err := m.bw.emit(&BinaryRecord{Type: BinOpen, SID: sid, Backend: backend, Policy: policy, Labels: groundTruth})
	m.wmu.Unlock()
	if err != nil {
		st.forget()
		return nil, err
	}
	select {
	case ev, ok := <-st.ch:
		if !ok {
			return nil, m.connErr()
		}
		switch ev.kind {
		case muxEvOpened:
			st.version = ev.version
			return st, nil
		case muxEvError:
			e := ev.errMsg
			return nil, &e
		default:
			st.forget()
			return nil, fmt.Errorf("serve: unexpected record answering open")
		}
	case <-ctx.Done():
		st.forget()
		return nil, ctx.Err()
	}
}

// Close tears the connection down; every stream on it dies with it.
func (m *MuxConn) Close() error {
	m.body.Close()
	err := m.resp.Body.Close()
	<-m.readDone
	return err
}

// CloseSend half-closes the connection's request side: open streams can
// still drain their queued frames and receive their done records.
func (m *MuxConn) CloseSend() error { return m.body.Close() }

// MuxStream is one logical session on a MuxConn, used like a Stream:
// Send/Recv in lockstep from a single goroutine, CloseSend, then read
// the io.EOF that carries the server's done record.
type MuxStream struct {
	sid     uint32
	conn    *MuxConn
	ch      chan muxEvent
	version string
	actions []ActionMsg
}

// Version is the model version the session bound at open.
func (st *MuxStream) Version() string { return st.version }

// Send writes one frame record for this session.
func (st *MuxStream) Send(frame *safemon.Frame) error {
	st.conn.wmu.Lock()
	defer st.conn.wmu.Unlock()
	return st.conn.bw.writeFrame(st.sid, frame)
}

// CloseSend half-closes the session: the server finishes the queued
// frames and answers with the session's done record.
func (st *MuxStream) CloseSend() error {
	st.conn.wmu.Lock()
	defer st.conn.wmu.Unlock()
	return st.conn.bw.emit(&BinaryRecord{Type: BinClose, SID: st.sid})
}

// Recv reads the session's next verdict; guard action records are
// collected into Actions. io.EOF reports the session's done record,
// *ErrorMsg a per-session server error.
func (st *MuxStream) Recv() (safemon.FrameVerdict, error) {
	for {
		ev, ok := <-st.ch
		if !ok {
			return safemon.FrameVerdict{}, st.conn.connErr()
		}
		switch ev.kind {
		case muxEvVerdict:
			return ev.verdict.Verdict(), nil
		case muxEvAction:
			st.actions = append(st.actions, ev.action)
		case muxEvDone:
			return safemon.FrameVerdict{}, io.EOF
		case muxEvError:
			e := ev.errMsg
			return safemon.FrameVerdict{}, &e
		case muxEvOpened:
			st.version = ev.version
		}
	}
}

// Actions returns the guard action records received so far, in session
// order (same contract as Stream.Actions).
func (st *MuxStream) Actions() []ActionMsg { return st.actions }

// forget stops routing records to the stream (stray records for its sid
// are dropped). Streams that ended via Recv are forgotten automatically.
func (st *MuxStream) forget() {
	st.conn.mu.Lock()
	delete(st.conn.streams, st.sid)
	st.conn.mu.Unlock()
}

// StreamTrajectory replays one trajectory through a fresh logical
// session on the connection and returns the verdict sequence plus any
// guard action records — the mux twin of Client.StreamTrajectory.
func (m *MuxConn) StreamTrajectory(ctx context.Context, backend, policy string, traj *safemon.Trajectory) ([]safemon.FrameVerdict, []ActionMsg, error) {
	var labels []int
	if len(traj.Gestures) == len(traj.Frames) {
		labels = traj.Gestures
	}
	st, err := m.Open(ctx, backend, policy, labels)
	if err != nil {
		return nil, nil, err
	}
	verdicts := make([]safemon.FrameVerdict, 0, len(traj.Frames))
	for i := range traj.Frames {
		if err := st.Send(&traj.Frames[i]); err != nil {
			return nil, st.Actions(), fmt.Errorf("serve: send frame %d: %w", i, err)
		}
		v, err := st.Recv()
		if err != nil {
			return nil, st.Actions(), fmt.Errorf("serve: frame %d: %w", i, err)
		}
		verdicts = append(verdicts, v)
	}
	if err := st.CloseSend(); err != nil {
		return verdicts, st.Actions(), err
	}
	if _, err := st.Recv(); err != io.EOF {
		return verdicts, st.Actions(), fmt.Errorf("serve: expected done record, got %v", err)
	}
	return verdicts, st.Actions(), nil
}
