package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// streamConn abstracts one admitted /v1/stream connection's codec so the
// handler loop is written once: NDJSON (the default) and the binary
// record format behind it carry exactly the same records in the same
// order, so verdict values are equal across codecs by construction.
// Write methods do not return errors — a failed write means the client
// is gone, and the read side will surface that on the next record.
type streamConn interface {
	// next decodes the next client record (labels header or frame).
	next(msg *ClientMsg) error
	// decodeNS reports the parse time of the most recent next — just
	// the record decode, excluding the network wait — for the decode
	// stage histogram.
	decodeNS() int64
	verdict(v *VerdictMsg)
	action(a *ActionMsg)
	done(frames int)
	fail(e *ErrorMsg)
	// release returns pooled buffers; the conn must not be used after.
	release()
}

// jsonStream is the NDJSON codec: one JSON object per line each way.
type jsonStream struct {
	dec   *recordReader
	enc   *json.Encoder
	flush func()
}

func newJSONStream(r io.Reader, w io.Writer, flush func()) *jsonStream {
	return &jsonStream{dec: newRecordReader(r), enc: json.NewEncoder(w), flush: flush}
}

func (c *jsonStream) next(msg *ClientMsg) error { return c.dec.next(msg) }
func (c *jsonStream) decodeNS() int64           { return c.dec.decNS }

func (c *jsonStream) emit(m ServerMsg) {
	if err := c.enc.Encode(m); err != nil {
		return
	}
	c.flush()
}

func (c *jsonStream) verdict(v *VerdictMsg) { c.emit(ServerMsg{Verdict: v}) }
func (c *jsonStream) action(a *ActionMsg)   { c.emit(ServerMsg{Action: a}) }
func (c *jsonStream) done(frames int)       { c.emit(ServerMsg{Done: &DoneMsg{Frames: frames}}) }
func (c *jsonStream) fail(e *ErrorMsg)      { c.emit(ServerMsg{Error: e}) }
func (c *jsonStream) release()              { c.dec.release() }

// binStream is the binary codec on a single-session stream: every
// record carries sid 0, and the warm frame→verdict round trip allocates
// nothing on either side.
type binStream struct {
	r     *binReader
	w     *binWriter
	flush func()
}

func newBinStream(r io.Reader, w io.Writer, flush func()) *binStream {
	return &binStream{r: newBinReader(r), w: newBinWriter(w), flush: flush}
}

func (c *binStream) next(msg *ClientMsg) error {
	rec, err := c.r.next()
	if err != nil {
		return err
	}
	switch rec.Type {
	case BinFrame:
		msg.Labels = nil
		msg.Frame = rec.Frame[:]
		return nil
	case BinLabels:
		// Copied out: the decoder's slice is clobbered by the next
		// record, while the session retains the labels for its lifetime.
		msg.Frame = nil
		msg.Labels = append([]int{}, rec.Labels...)
		return nil
	default:
		return fmt.Errorf("unexpected %s record on a stream connection", binTypeName(rec.Type))
	}
}

func (c *binStream) decodeNS() int64 { return c.r.decNS }

func (c *binStream) emit(rec *BinaryRecord) {
	if err := c.w.emit(rec); err != nil {
		return
	}
	c.flush()
}

func (c *binStream) verdict(v *VerdictMsg) {
	if err := c.w.writeVerdict(0, v); err != nil {
		return
	}
	c.flush()
}

func (c *binStream) action(a *ActionMsg) {
	c.emit(&BinaryRecord{Type: BinAction, Action: *a})
}

func (c *binStream) done(frames int) {
	c.emit(&BinaryRecord{Type: BinDone, Frames: uint64(frames)})
}

func (c *binStream) fail(e *ErrorMsg) {
	c.emit(&BinaryRecord{Type: BinError, Code: uint32(e.Code), Message: e.Message})
}

func (c *binStream) release() { c.r.release() }

// binTypeName names a record type for error messages.
func binTypeName(typ byte) string {
	switch typ {
	case BinFrame:
		return "frame"
	case BinLabels:
		return "labels"
	case BinVerdict:
		return "verdict"
	case BinAction:
		return "action"
	case BinDone:
		return "done"
	case BinError:
		return "error"
	case BinOpen:
		return "open"
	case BinOpened:
		return "opened"
	case BinClose:
		return "close"
	}
	return fmt.Sprintf("type-%d", typ)
}

// wantsBinary reports whether the request negotiates the binary codec:
// either its Content-Type (the request body's codec) or its Accept
// header names application/x-safemon-frames. A stream always runs one
// codec in both directions.
func wantsBinary(r *http.Request) bool {
	return hasMediaType(r.Header.Get("Content-Type"), BinaryContentType) ||
		hasMediaType(r.Header.Get("Accept"), BinaryContentType)
}

// hasMediaType reports whether a comma-separated media-type header lists
// want, ignoring parameters and case.
func hasMediaType(header, want string) bool {
	for _, part := range strings.Split(header, ",") {
		if i := strings.IndexByte(part, ';'); i >= 0 {
			part = part[:i]
		}
		if strings.EqualFold(strings.TrimSpace(part), want) {
			return true
		}
	}
	return false
}
