// Package serve turns the safemon façade into a long-lived real-time
// monitoring service: an HTTP server that accepts many concurrent NDJSON
// kinematics streams, routes each one through a sharded session manager
// (one owning goroutine per shard, bounded mailboxes), and emits verdicts
// frame by frame with bounded latency. Backends are selected per request
// from the safemon registry names the server was configured with; sessions
// come from warm safemon.SessionPools; shutdown drains in-flight streams;
// overload answers with explicit backpressure (HTTP 429 at admission,
// queue-full records mid-stream) instead of unbounded buffering.
//
// Wire protocol (POST /v1/stream?backend=NAME, one JSON object per line):
//
//	→ {"labels":[1,2,2,...]}   optional first record: ground-truth gestures
//	→ {"frame":[38 floats]}    one kinematics frame
//	← {"verdict":{"i":0,"g":2,"score":0.13,"unsafe":false}}
//	← {"done":{"frames":812}}  stream end (client closed its side)
//	← {"error":{"code":429,"message":"queue full"}}  terminal error
//
// NDJSON is the default codec. A request whose Content-Type (or Accept)
// is application/x-safemon-frames switches the whole stream to the
// compact binary record format documented in codec.go, and POST /v1/mux
// multiplexes many logical sessions over one binary connection; verdict
// values are exactly equal across all transports.
package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"repro/safemon"
)

// frameSize is the wire length of one kinematics frame.
const frameSize = len(safemon.Frame{})

// ClientMsg is one request NDJSON record: either a labels header (first
// record only) or a frame.
type ClientMsg struct {
	// Labels supplies per-frame ground-truth gesture labels for the whole
	// stream; only meaningful in the first record.
	Labels []int `json:"labels,omitempty"`
	// Frame is one 38-variable kinematics sample.
	Frame []float64 `json:"frame,omitempty"`
}

// VerdictMsg is the wire form of one safemon.FrameVerdict. Field order and
// names are part of the golden contract: the offline Runner path marshaled
// through this type must be byte-identical to the served stream.
type VerdictMsg struct {
	I      int     `json:"i"`
	G      int     `json:"g"`
	Score  float64 `json:"score"`
	Unsafe bool    `json:"unsafe"`
}

// WireVerdict converts a FrameVerdict to its wire form.
func WireVerdict(v safemon.FrameVerdict) VerdictMsg {
	return VerdictMsg{I: v.FrameIndex, G: v.Gesture, Score: v.Score, Unsafe: v.Unsafe}
}

// Verdict converts the wire form back to a FrameVerdict.
func (m VerdictMsg) Verdict() safemon.FrameVerdict {
	return safemon.FrameVerdict{FrameIndex: m.I, Gesture: m.G, Score: m.Score, Unsafe: m.Unsafe}
}

// ActionMsg is one guard mitigation edge interleaved into a guarded
// stream (?policy=NAME): the engine's level changed on frame I. It is
// emitted immediately before the frame's verdict record, so a lockstep
// client sees the action no later than the verdict that caused it.
type ActionMsg struct {
	// I is the frame index whose verdict produced the edge.
	I int `json:"i"`
	// Level is the mitigation level now in force (guard.Action wire name:
	// "none" on release, "warn", "pause", "safe-stop", "retract").
	Level string `json:"level"`
	// AlertFrame is the first confirmed-alert frame of the active
	// episode, -1 on release.
	AlertFrame int `json:"alert_frame"`
	// Score is the verdict score that produced the edge.
	Score float64 `json:"score"`
	// Policy names the policy the stream runs.
	Policy string `json:"policy,omitempty"`
}

// DoneMsg terminates a healthy stream.
type DoneMsg struct {
	// Frames is the number of verdicts emitted.
	Frames int `json:"frames"`
}

// ErrorMsg terminates a failed stream.
type ErrorMsg struct {
	// Code follows HTTP semantics (429 = backpressure, 400 = bad record,
	// 503 = draining).
	Code    int    `json:"code"`
	Message string `json:"message"`
}

// Error implements the error interface so client code can surface server
// records directly.
func (e *ErrorMsg) Error() string {
	return fmt.Sprintf("safemond: %s (code %d)", e.Message, e.Code)
}

// ServerMsg is one response NDJSON record; exactly one field is set.
// Action records appear only on guarded streams, so unguarded streams
// remain byte-identical to the pre-guard wire format.
type ServerMsg struct {
	Verdict *VerdictMsg `json:"verdict,omitempty"`
	Action  *ActionMsg  `json:"action,omitempty"`
	Done    *DoneMsg    `json:"done,omitempty"`
	Error   *ErrorMsg   `json:"error,omitempty"`
}

// maxRecordBytes caps one NDJSON request record: generous for a labels
// header of a very long trajectory (~7 bytes per label) and two orders of
// magnitude above a frame record, but it stops a single line from
// buffering the server into the ground.
const maxRecordBytes = 1 << 20

// errRecordTooLarge reports a request line over the per-record cap.
var errRecordTooLarge = fmt.Errorf("serve: record exceeds %d bytes", maxRecordBytes)

// DecodeRecord parses one NDJSON request line (without its newline) into
// msg, overwriting any previous contents. Surrounding whitespace is
// ignored. It never panics on malformed input — the property the fuzz
// harness pins — and returns the json error for anything that is not a
// single valid ClientMsg object. Non-finite frame values are rejected
// here, at decode time, exactly as the binary codec rejects them:
// standard JSON cannot spell NaN or ±Inf, but a decoder must not rely on
// its input being standard, and nothing non-finite may reach a backend's
// scorers.
func DecodeRecord(line []byte, msg *ClientMsg) error {
	*msg = ClientMsg{}
	if err := json.Unmarshal(line, msg); err != nil {
		return err
	}
	for _, v := range msg.Frame {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return errNonFiniteFrame
		}
	}
	return nil
}

// scanBufPool recycles the per-connection NDJSON scan buffers: 64 KiB
// per stream is real money at high connection churn, and the buffer's
// lifetime is exactly the handler's, so pooling is safe. A line that
// outgrows the pooled buffer makes the Scanner allocate internally (up
// to maxRecordBytes) and abandon the pooled one, which then simply
// returns to the pool at release.
var scanBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 64<<10)
		return &b
	},
}

// recordReader decodes NDJSON records line by line under maxRecordBytes.
type recordReader struct {
	scan *bufio.Scanner
	buf  *[]byte // pooled scan buffer, returned by release
	// decNS is the parse time of the most recent record — just the
	// DecodeRecord call, excluding the network wait for the line — for
	// the decode stage histogram.
	decNS int64
}

func newRecordReader(r io.Reader) *recordReader {
	scan := bufio.NewScanner(r)
	buf := scanBufPool.Get().(*[]byte)
	scan.Buffer(*buf, maxRecordBytes)
	return &recordReader{scan: scan, buf: buf}
}

// release returns the pooled scan buffer. The reader must not be used
// afterwards.
func (d *recordReader) release() {
	if d.buf != nil {
		scanBufPool.Put(d.buf)
		d.buf = nil
		d.scan = nil
	}
}

// next decodes the next non-empty line into msg; io.EOF at clean stream
// end, the underlying read error otherwise.
func (d *recordReader) next(msg *ClientMsg) error {
	for d.scan.Scan() {
		line := bytes.TrimSpace(d.scan.Bytes())
		if len(line) == 0 {
			continue
		}
		start := time.Now()
		err := DecodeRecord(line, msg)
		d.decNS = time.Since(start).Nanoseconds()
		return err
	}
	if err := d.scan.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return errRecordTooLarge
		}
		return err
	}
	return io.EOF
}

// TraceFromVerdicts rebuilds an offline-shaped trace from streamed
// verdicts, with Alerts derived exactly as the session replay derives them
// (one alert per unsafe verdict). It lets served streams feed the same
// EvaluateTraces aggregation as the batch Runner.
func TraceFromVerdicts(verdicts []safemon.FrameVerdict) *safemon.Trace {
	trace := &safemon.Trace{Verdicts: verdicts}
	for _, v := range verdicts {
		if v.Unsafe {
			trace.Alerts = append(trace.Alerts, safemon.Alert{FrameIndex: v.FrameIndex, Gesture: v.Gesture, Score: v.Score})
		}
	}
	return trace
}
