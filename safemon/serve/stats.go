package serve

import (
	"math"
	"sync/atomic"
	"time"

	"repro/safemon/ledger"
	"repro/safemon/obs"
)

// histBuckets is the number of power-of-two latency buckets: bucket i
// counts latencies in [2^i, 2^(i+1)) nanoseconds, covering sub-microsecond
// pushes up to multi-second stalls. The layout is obs.Histogram's, so the
// same bucket array backs both the /stats quantiles and the /metrics
// exposition — the two surfaces cannot drift.
const histBuckets = obs.LogBuckets

// quantileOf returns the q-th (0..1) latency quantile of a bucket-count
// snapshot in milliseconds; NaN when empty. The interpolation itself —
// half-sample midpoint, log-linear within the bucket — is
// obs.LogQuantileNS, the single shared implementation.
func quantileOf(counts [histBuckets]uint64, q float64) float64 {
	return obs.LogQuantileNS(counts[:], q) / 1e6
}

// shardStats aggregates one shard's counters. All fields are atomics: the
// shard goroutine and stream handlers write, /stats reads.
type shardStats struct {
	frames         atomic.Uint64 // frames pushed through sessions
	sessionsOpened atomic.Uint64 // streams admitted to this shard
	sessionsActive atomic.Int64  // streams currently attached
	sessionsClosed atomic.Uint64 // streams released (opened - closed = active)
	queueFull      atomic.Uint64 // submits rejected by backpressure
	// latency is the submit-to-verdict histogram (queue + push). It is a
	// registry-owned obs.Histogram so /metrics renders the exact bucket
	// array the /stats quantiles are computed from.
	latency *obs.Histogram

	// Micro-batching counters (zero on unbatched shards). A "batch" is one
	// multi-task dispatch; singletons take the per-task path and are not
	// counted here.
	batches        atomic.Uint64 // multi-task batch dispatches
	batchedFrames  atomic.Uint64 // frames carried by those dispatches
	windowTimeouts atomic.Uint64 // gathers that dispatched on window expiry
	fallbackFrames atomic.Uint64 // batched frames routed via per-stream Push
}

// ShardSnapshot is one shard's row in the /stats report.
type ShardSnapshot struct {
	Shard          int     `json:"shard"`
	Frames         uint64  `json:"frames"`
	SessionsOpened uint64  `json:"sessions_opened"`
	SessionsActive int64   `json:"sessions_active"`
	QueueFull      uint64  `json:"queue_full"`
	ThroughputFPS  float64 `json:"throughput_fps"`
	P50LatencyMS   float64 `json:"p50_latency_ms"`
	P99LatencyMS   float64 `json:"p99_latency_ms"`
}

// BatchingSnapshot is the /stats batching section: how the shards'
// cross-session micro-batching behaved since start. All-zero (with
// MeanBatchSize 0) when the manager runs unbatched.
type BatchingSnapshot struct {
	// Batches counts multi-session batch dispatches across all shards.
	Batches uint64 `json:"batches"`
	// BatchedFrames counts the frames those batches carried.
	BatchedFrames uint64 `json:"batched_frames"`
	// MeanBatchSize is BatchedFrames / Batches (0 when no batches ran).
	MeanBatchSize float64 `json:"mean_batch_size"`
	// WindowTimeouts counts gathers that dispatched because the gather
	// window expired rather than because the batch filled.
	WindowTimeouts uint64 `json:"window_timeouts"`
	// Fallbacks counts batched frames that took the per-stream Push path
	// because their session cannot batch (lookahead, non-nn backends).
	Fallbacks uint64 `json:"fallbacks"`
}

// codecCounters tracks which wire codecs the service's streams have
// negotiated. Stream handlers increment at admission; /stats readers
// snapshot concurrently.
type codecCounters struct {
	jsonStreams   atomic.Uint64 // NDJSON /v1/stream connections admitted
	binaryStreams atomic.Uint64 // binary /v1/stream connections admitted
	muxConns      atomic.Uint64 // /v1/mux connections admitted
	muxSessions   atomic.Uint64 // logical sessions opened over mux conns
}

// CodecSnapshot is the /stats codec section: how streams reached the
// service, by transport.
type CodecSnapshot struct {
	// JSONStreams counts NDJSON /v1/stream connections admitted.
	JSONStreams uint64 `json:"json_streams"`
	// BinaryStreams counts binary-codec /v1/stream connections admitted.
	BinaryStreams uint64 `json:"binary_streams"`
	// MuxConns counts multiplexed binary connections admitted.
	MuxConns uint64 `json:"mux_conns"`
	// MuxSessions counts logical sessions opened over those connections.
	MuxSessions uint64 `json:"mux_sessions"`
}

// snapshot renders the counters.
func (c *codecCounters) snapshot() CodecSnapshot {
	return CodecSnapshot{
		JSONStreams:   c.jsonStreams.Load(),
		BinaryStreams: c.binaryStreams.Load(),
		MuxConns:      c.muxConns.Load(),
		MuxSessions:   c.muxSessions.Load(),
	}
}

// StatsSnapshot is the /stats payload: aggregate service counters, the
// guard mitigation counters, and the per-shard breakdown.
type StatsSnapshot struct {
	UptimeSeconds  float64            `json:"uptime_seconds"`
	Backends       []string           `json:"backends"`
	Shards         int                `json:"shards"`
	Frames         uint64             `json:"frames"`
	SessionsOpened uint64             `json:"sessions_opened"`
	SessionsActive int64              `json:"sessions_active"`
	QueueFull      uint64             `json:"queue_full"`
	ThroughputFPS  float64            `json:"throughput_fps"`
	P50LatencyMS   float64            `json:"p50_latency_ms"`
	P99LatencyMS   float64            `json:"p99_latency_ms"`
	Batching       BatchingSnapshot   `json:"batching"`
	Codec          CodecSnapshot      `json:"codec"`
	Mitigation     MitigationSnapshot `json:"mitigation"`
	// Ledger is the event-ledger appender's counters; omitted entirely
	// when the server runs without a ledger, so ledger-less payloads
	// keep their pre-ledger shape.
	Ledger   *ledger.Snapshot `json:"ledger,omitempty"`
	PerShard []ShardSnapshot  `json:"per_shard"`
}

// snapshot renders the manager's counters. Quantile fields are NaN-free
// (-1 when no frames have been observed) so the payload stays valid JSON.
func (m *Manager) snapshot(backends []string, uptime time.Duration) StatsSnapshot {
	secs := uptime.Seconds()
	snap := StatsSnapshot{
		UptimeSeconds: secs,
		Backends:      backends,
		Shards:        len(m.shards),
	}
	var merged [histBuckets]uint64
	for i := range m.shards {
		st := &m.shards[i].stats
		frames := st.frames.Load()
		counts := st.latency.Counts()
		row := ShardSnapshot{
			Shard:          i,
			Frames:         frames,
			SessionsOpened: st.sessionsOpened.Load(),
			SessionsActive: st.sessionsActive.Load(),
			QueueFull:      st.queueFull.Load(),
			P50LatencyMS:   jsonQuantile(counts, 0.50),
			P99LatencyMS:   jsonQuantile(counts, 0.99),
		}
		if secs > 0 {
			row.ThroughputFPS = float64(frames) / secs
		}
		snap.PerShard = append(snap.PerShard, row)
		snap.Frames += frames
		snap.SessionsOpened += row.SessionsOpened
		snap.SessionsActive += row.SessionsActive
		snap.QueueFull += row.QueueFull
		snap.Batching.Batches += st.batches.Load()
		snap.Batching.BatchedFrames += st.batchedFrames.Load()
		snap.Batching.WindowTimeouts += st.windowTimeouts.Load()
		snap.Batching.Fallbacks += st.fallbackFrames.Load()
		for b, c := range counts {
			merged[b] += c
		}
	}
	if snap.Batching.Batches > 0 {
		snap.Batching.MeanBatchSize = float64(snap.Batching.BatchedFrames) / float64(snap.Batching.Batches)
	}
	if secs > 0 {
		snap.ThroughputFPS = float64(snap.Frames) / secs
	}
	snap.P50LatencyMS = jsonQuantile(merged, 0.50)
	snap.P99LatencyMS = jsonQuantile(merged, 0.99)
	return snap
}

// jsonQuantile maps an empty histogram's NaN to -1 (JSON has no NaN).
func jsonQuantile(counts [histBuckets]uint64, q float64) float64 {
	v := quantileOf(counts, q)
	if math.IsNaN(v) {
		return -1
	}
	return v
}
