package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"repro/safemon"
	"repro/safemon/guard"
	"repro/safemon/ledger"
	"repro/safemon/obs"
)

// Config assembles a Server.
type Config struct {
	// Detectors maps backend names (as clients request them) to fitted
	// detectors, each served as version "unversioned". Build them without
	// WithTiming so served verdicts stay byte-identical to the offline
	// Runner path. Models takes precedence when both are set.
	Detectors map[string]safemon.Detector
	// Models maps backend names to versioned fitted models (typically
	// loaded from a safemon/modelstore).
	Models map[string]Model
	// Loader, when set, supplies a fresh model set on demand: POST
	// /v1/models/reload (and safemond's SIGHUP) call it and atomically
	// hot-swap the result in — new streams bind the new models while
	// in-flight streams finish on the old ones. Nil disables reload.
	Loader func(ctx context.Context) (map[string]Model, error)
	// Policies are the guard mitigation policies streams may request
	// with ?policy=NAME; action records are then interleaved into the
	// verdict stream and mitigation counters appear in /stats. Every
	// policy is validated at construction. Empty disables guarded
	// streams.
	Policies []guard.Policy
	// Manager tunes sharding, mailbox depth, session caps and
	// backpressure.
	Manager ManagerConfig
	// DefaultBackend is used when a stream request names none; empty
	// defaults to the only detector when exactly one is configured.
	DefaultBackend string
	// StreamIdleTimeout bounds the wait for each request record: a client
	// that goes silent past it loses its stream (and session slot) instead
	// of pinning them forever. <= 0 means 2 minutes; generous next to the
	// 30 Hz kinematics rate the monitor is built for.
	StreamIdleTimeout time.Duration
	// DisableBinary turns off the binary wire codec: requests negotiating
	// application/x-safemon-frames get HTTP 415 and /v1/mux is refused,
	// leaving NDJSON as the only transport. For fleets that want the
	// edge pinned to the always-works default.
	DisableBinary bool
	// Ledger, when set, records every stream into the durable event
	// ledger — session lifecycle, per-frame verdicts (with their input
	// frames), guard action edges, and model swaps — and enables the
	// incident endpoints (GET /v1/incidents, POST
	// /v1/incidents/{id}/replay). The appender's lifecycle belongs to
	// the caller: Server.Shutdown flushes it but does not close it. Nil
	// disables recording and the incident API.
	Ledger *ledger.Appender
	// Metrics is the registry GET /metrics renders; every /stats counter
	// is exported through it. Nil mints a private registry (the common
	// case). A registry must not be shared between servers: series
	// names would collide.
	Metrics *obs.Registry
	// Logger receives service log lines with keyed fields; nil discards
	// them.
	Logger *slog.Logger
}

// Server is the safemond HTTP service. Mount Handler on any http.Server
// (or httptest); call Shutdown to drain.
//
// Endpoints:
//
//	POST /v1/stream?backend=NAME[&policy=NAME]  duplex frame/verdict stream
//	     (NDJSON by default, binary via Content-Type/Accept:
//	     application/x-safemon-frames); with a policy, guard action
//	     records are interleaved
//	POST /v1/mux                  multiplexed binary connection carrying
//	     many logical sessions (open/frame/close records with a sid)
//	GET  /v1/backends             served backend names
//	GET  /v1/models               served model versions
//	POST /v1/models/reload        hot-swap to the loader's current models
//	GET  /v1/policies             configured guard mitigation policies
//	GET  /stats                   per-shard throughput + latency quantiles
//	                              + mitigation counters
//	GET  /metrics                 Prometheus text exposition of the same
//	                              counters + per-stage latency histograms
//	GET  /v1/debug/slowframes     slowest recent frames with their stage
//	                              breakdown
//	GET  /healthz                 ok / draining (liveness)
//	GET  /readyz                  ready / draining (readiness; flips at
//	                              BeginDrain)
type Server struct {
	cfg     Config
	manager *Manager
	mux     *http.ServeMux
	start   time.Time
	metrics *serveMetrics

	// policies indexes the validated guard policies by name;
	// policyNames is the sorted /v1/policies listing.
	policies    map[string]guard.Policy
	policyNames []string
	mitigation  mitigationCounters
	codec       codecCounters

	// reloadMu serializes Reload calls (the swap itself is atomic).
	reloadMu sync.Mutex

	mu       sync.RWMutex
	draining bool
}

// NewServer builds the service over fitted detectors (or versioned models)
// and starts its shards.
func NewServer(cfg Config) (*Server, error) {
	models := cfg.Models
	if models == nil {
		models = make(map[string]Model, len(cfg.Detectors))
		for name, det := range cfg.Detectors {
			models[name] = Model{Detector: det, Version: "unversioned"}
		}
	}
	// One registry backs the whole server: the manager registers its
	// per-shard series into it, the server everything else, and GET
	// /metrics renders it.
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	cfg.Manager.Metrics = cfg.Metrics
	manager, err := NewManagerModels(models, cfg.Manager)
	if err != nil {
		return nil, err
	}
	if cfg.StreamIdleTimeout <= 0 {
		cfg.StreamIdleTimeout = 2 * time.Minute
	}
	policies, policyNames, err := buildPolicies(cfg.Policies)
	if err != nil {
		manager.Close()
		return nil, err
	}
	s := &Server{
		cfg: cfg, manager: manager, start: time.Now(),
		metrics:  newServeMetrics(cfg.Metrics),
		policies: policies, policyNames: policyNames,
	}
	s.registerMetrics()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/stream", s.handleStream)
	s.mux.HandleFunc("/v1/mux", s.handleMux)
	s.mux.HandleFunc("/v1/backends", s.handleBackends)
	s.mux.HandleFunc("/v1/models", s.handleModels)
	s.mux.HandleFunc("/v1/models/reload", s.handleReload)
	s.mux.HandleFunc("/v1/policies", s.handlePolicies)
	s.mux.HandleFunc("/v1/incidents", s.handleIncidents)
	s.mux.HandleFunc("/v1/incidents/", s.handleIncident)
	s.mux.HandleFunc("/v1/debug/slowframes", s.handleSlowFrames)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.Handle("/metrics", cfg.Metrics.Handler())
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	return s, nil
}

// Models reports the model versions currently serving (the /v1/models
// payload).
func (s *Server) Models() []ModelInfo { return s.manager.Models() }

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Stats returns the current service counters (the /stats payload).
func (s *Server) Stats() StatsSnapshot {
	snap := s.manager.snapshot(s.manager.backendNames(), time.Since(s.start))
	snap.Mitigation = s.mitigation.snapshot(s.policyNames)
	snap.Codec = s.codec.snapshot()
	if s.cfg.Ledger != nil {
		ls := s.cfg.Ledger.Stats()
		snap.Ledger = &ls
	}
	return snap
}

// Policies returns the guard policies streams may request, sorted by name
// (the /v1/policies payload).
func (s *Server) Policies() []guard.Policy {
	out := make([]guard.Policy, 0, len(s.policyNames))
	for _, name := range s.policyNames {
		out = append(out, s.policies[name])
	}
	return out
}

func (s *Server) handlePolicies(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"policies": s.Policies()})
}

// BeginDrain flips the service into draining mode without touching
// in-flight streams: new stream requests are refused with 503 and
// /healthz reports draining, while already-attached sessions keep pushing
// frames. The graceful shutdown sequence is BeginDrain, then
// http.Server.Shutdown (which waits for the stream handlers up to the
// drain budget), then Shutdown to stop the shard manager.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	// Shards flush any partially-gathered micro-batches and stop holding
	// gather windows open; attached streams keep their verdicts flowing.
	s.manager.BeginDrain()
	// Every ledger event emitted so far reaches stable storage now, so a
	// SIGTERM that never completes the full Shutdown still loses nothing.
	s.cfg.Ledger.Flush()
}

// Shutdown completes the drain: after BeginDrain (called implicitly) the
// shard manager waits for in-flight pushes and stops, then the ledger
// appender is flushed and its store synced so no tail event is lost.
// Closing the appender (which seals the active segment) remains the
// owner's job — the server only borrows it. Any stream still attached —
// e.g. when the http.Server.Shutdown budget expired first — fails its
// next push with ErrDraining and terminates.
func (s *Server) Shutdown() {
	s.BeginDrain()
	s.manager.Close()
	s.cfg.Ledger.Flush()
}

// log returns the configured logger, or a discarding one.
func (s *Server) log() *slog.Logger {
	if s.cfg.Logger != nil {
		return s.cfg.Logger
	}
	return discardLogger
}

// discardLogger backs a nil Config.Logger: a handler that drops
// everything. (log/slog grows a stdlib DiscardHandler in go1.24; this
// module's language level predates it.)
var discardLogger = slog.New(discardHandler{})

type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

func (s *Server) isDraining() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.draining
}

func (s *Server) handleBackends(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"backends": s.manager.backendNames()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleStream is the duplex streaming endpoint. The codec is negotiated
// per request — NDJSON by default, the binary record format when
// Content-Type or Accept names application/x-safemon-frames — and
// admission errors (unknown backend, draining, session cap) are HTTP
// statuses; once the stream is admitted, errors become terminal records
// in the stream's codec so the verdict prefix already delivered stays
// valid.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	// Stream connections are one-shot: telling the client (and our own
	// http.Server) the connection won't be reused keeps error responses
	// immediate — otherwise the server blocks draining the open-ended
	// request body before it will answer at all.
	w.Header().Set("Connection", "close")
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	binary := wantsBinary(r)
	if binary && s.cfg.DisableBinary {
		http.Error(w, "binary codec disabled; send NDJSON", http.StatusUnsupportedMediaType)
		return
	}
	backend := r.URL.Query().Get("backend")
	if backend == "" {
		backend = s.cfg.DefaultBackend
	}
	if backend == "" {
		backend = s.manager.soleBackend()
	}
	if !s.manager.has(backend) {
		http.Error(w, fmt.Sprintf("unknown backend %q (have %v)", backend, s.manager.backendNames()), http.StatusNotFound)
		return
	}
	// Guarded streams opt in per request; an unknown policy name is an
	// admission failure, like an unknown backend.
	var policy *guard.Policy
	policyName := ""
	if name := r.URL.Query().Get("policy"); name != "" {
		p, ok := s.policies[name]
		if !ok {
			http.Error(w, fmt.Sprintf("unknown policy %q (have %v)", name, s.policyNames), http.StatusNotFound)
			return
		}
		policy = &p
		policyName = name
	}
	if s.isDraining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	// Claim a session slot before committing the response status: at the
	// session cap the client gets a real HTTP 429, not a broken stream.
	if err := s.manager.Reserve(); err != nil {
		status := http.StatusTooManyRequests
		if errors.Is(err, ErrDraining) {
			status = http.StatusServiceUnavailable
		}
		http.Error(w, err.Error(), status)
		return
	}
	reserved := true
	defer func() {
		if reserved {
			s.manager.Unreserve()
		}
	}()

	// HTTP/1.1 interleaves request-body reads with response writes only
	// when full duplex is enabled; HTTP/2 duplexes natively.
	rc := http.NewResponseController(w)
	if err := rc.EnableFullDuplex(); err != nil && r.ProtoMajor < 2 {
		http.Error(w, "streaming unsupported", http.StatusHTTPVersionNotSupported)
		return
	}
	if binary {
		w.Header().Set("Content-Type", BinaryContentType)
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	rc.Flush()

	// Records are read under a hard per-record size cap in both codecs:
	// the stream as a whole is unbounded, but no single record may
	// buffer without bound (the same no-unbounded-buffering contract the
	// shard mailboxes enforce). The idle deadline is re-armed before each
	// record so a silent client cannot pin its session slot forever.
	var conn streamConn
	codecName := "json"
	if binary {
		codecName = "binary"
		conn = newBinStream(r.Body, w, func() { rc.Flush() })
		s.codec.binaryStreams.Add(1)
	} else {
		conn = newJSONStream(r.Body, w, func() { rc.Flush() })
		s.codec.jsonStreams.Add(1)
	}
	defer conn.release()
	armIdle := func() { rc.SetReadDeadline(time.Now().Add(s.cfg.StreamIdleTimeout)) }

	// The first record may carry the stream's ground-truth labels.
	var labels []int
	var pending *ClientMsg
	var first ClientMsg
	armIdle()
	switch err := conn.next(&first); {
	case errors.Is(err, io.EOF):
		conn.done(0)
		return
	case err != nil:
		conn.fail(&ErrorMsg{Code: http.StatusBadRequest, Message: "bad record: " + err.Error()})
		return
	case first.Labels != nil && first.Frame != nil:
		conn.fail(&ErrorMsg{Code: http.StatusBadRequest,
			Message: "labels and frame in one record; send the labels header on its own line"})
		return
	case first.Frame == nil:
		labels = first.Labels
	default:
		pending = &first
	}

	sess, err := s.manager.Open(backend, labels)
	if err != nil {
		conn.fail(openError(err))
		return
	}
	reserved = false // the session owns the slot now
	healthy := true
	defer func() { sess.Release(healthy) }()

	// Ledger recording: the whole stream — lifecycle, verdicts with
	// their input frames, guard edges — lands in the event log, where a
	// latching action turns it into a replayable incident. A nil
	// appender makes every recorder call a no-op.
	rec := ledger.NewRecorder(s.cfg.Ledger, backend, sess.Version(), policyName)
	rec.Start(labels32(labels))
	frames := 0
	endReason := "error: handler exit"
	defer func() { rec.End(frames, endReason) }()

	var sg *streamGuard
	if policy != nil {
		sg, err = newStreamGuard(*policy, &s.mitigation)
		if err != nil {
			// Policies are validated at construction; reaching this is a
			// server bug, not a client error.
			healthy = false
			conn.fail(&ErrorMsg{Code: http.StatusInternalServerError, Message: err.Error()})
			return
		}
	}

	// Per-frame stage instrumentation: resolved once at admission (the
	// histogram registrations), fed per frame without allocating.
	tr := s.metrics.streamTrace(backend, codecName, sess.Version(), policyName,
		s.manager.cfg.MaxBatch > 1, s.cfg.Ledger != nil)

	// One heap frame reused across the loop: its pointer rides the shard
	// mailbox, so an in-loop variable would escape and cost an allocation
	// per frame. Push blocks until the shard replied, so the previous
	// frame is never still in use when the next record overwrites it.
	var frame safemon.Frame
	for {
		var msg *ClientMsg
		if pending != nil {
			msg, pending = pending, nil
		} else {
			var rc2 ClientMsg
			armIdle()
			switch err := conn.next(&rc2); {
			case errors.Is(err, io.EOF):
				endReason = "eof"
				conn.done(frames)
				return
			case err != nil:
				// Client hung up mid-record or sent garbage; either
				// way the stream is over.
				healthy = frames > 0 && errors.Is(err, io.ErrUnexpectedEOF)
				endReason = "error: bad record"
				conn.fail(&ErrorMsg{Code: http.StatusBadRequest, Message: "bad record: " + err.Error()})
				return
			}
			msg = &rc2
		}
		if len(msg.Frame) != frameSize {
			healthy = false
			endReason = "error: bad frame"
			conn.fail(&ErrorMsg{Code: http.StatusBadRequest,
				Message: fmt.Sprintf("frame needs %d values, got %d", frameSize, len(msg.Frame))})
			return
		}
		copy(frame[:], msg.Frame)
		tr.setStage(stageDecode, conn.decodeNS())
		v, err := sess.Push(r.Context(), &frame)
		if err != nil {
			healthy = false
			endReason = "error: push"
			conn.fail(pushError(err))
			return
		}
		// The shard wrote the queue/gather/infer split before replying.
		tr.setStage(stageQueue, sess.trace.queueNS)
		tr.setStage(stageGather, sess.trace.gatherNS)
		tr.setStage(stageInfer, sess.trace.inferNS)
		frames++
		wire := WireVerdict(v)
		t0 := time.Now()
		rec.Verdict(v, &frame)
		t1 := time.Now()
		t2 := t1
		if sg != nil {
			// The engine steps on the verdict; an action edge is emitted
			// immediately before it so a lockstep client sees the action
			// no later than the verdict that caused it. The (rare) edge
			// frame's action emit lands in the guard stage.
			if act := sg.step(wire); act != nil {
				rec.Action(sg.decision())
				conn.action(act)
			}
			t2 = time.Now()
		}
		conn.verdict(&wire)
		end := time.Now()
		tr.setStage(stageLedger, t1.Sub(t0).Nanoseconds())
		tr.setStage(stageGuard, t2.Sub(t1).Nanoseconds())
		tr.setStage(stageEncode, end.Sub(t2).Nanoseconds())
		tr.observe(frames-1, end.UnixNano())
	}
}

// labels32 converts a stream's ground-truth labels to the ledger's
// compact form (nil in, nil out).
func labels32(labels []int) []int32 {
	if len(labels) == 0 {
		return nil
	}
	out := make([]int32, len(labels))
	for i, l := range labels {
		out[i] = int32(l)
	}
	return out
}

// openError maps session-admission failures onto wire records.
func openError(err error) *ErrorMsg {
	switch {
	case errors.Is(err, ErrBusy):
		return &ErrorMsg{Code: http.StatusTooManyRequests, Message: err.Error()}
	case errors.Is(err, ErrDraining):
		return &ErrorMsg{Code: http.StatusServiceUnavailable, Message: err.Error()}
	case errors.Is(err, ErrUnknownBackend):
		return &ErrorMsg{Code: http.StatusNotFound, Message: err.Error()}
	default:
		return &ErrorMsg{Code: http.StatusBadRequest, Message: err.Error()}
	}
}

// pushError maps mid-stream push failures onto wire records.
func pushError(err error) *ErrorMsg {
	switch {
	case errors.Is(err, ErrQueueFull):
		return &ErrorMsg{Code: http.StatusTooManyRequests, Message: err.Error()}
	case errors.Is(err, ErrDraining):
		return &ErrorMsg{Code: http.StatusServiceUnavailable, Message: err.Error()}
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return &ErrorMsg{Code: 499, Message: err.Error()}
	default:
		return &ErrorMsg{Code: http.StatusInternalServerError, Message: err.Error()}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
