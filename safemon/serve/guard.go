package serve

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/safemon/guard"
)

// streamGuard runs one stream's mitigation policy engine and keeps the
// bookkeeping the handler needs to emit action records and maintain the
// service-wide mitigation counters.
type streamGuard struct {
	eng    *guard.Engine
	policy string
	mit    *mitigationCounters
	last   guard.Counters
	lastD  guard.Decision
}

// decision returns the engine's decision for the most recent step — the
// structured twin of the wire ActionMsg, for ledger recording.
func (g *streamGuard) decision() guard.Decision { return g.lastD }

// newStreamGuard builds the per-stream engine for a validated policy.
func newStreamGuard(p guard.Policy, mit *mitigationCounters) (*streamGuard, error) {
	eng, err := guard.NewEngine(p)
	if err != nil {
		return nil, err
	}
	mit.guardedStreams.Add(1)
	return &streamGuard{eng: eng, policy: p.Name, mit: mit}, nil
}

// step advances the engine on one verdict and returns the action record to
// interleave into the stream, nil when the mitigation level is unchanged.
// The service counters are fed from the deltas of the engine's own
// guard.Counters — one source of truth for transition classification —
// and updated live so /stats reflects in-flight streams. Every counted
// event coincides with a level change, so the common (unchanged) frame
// touches no shared atomics.
func (g *streamGuard) step(v VerdictMsg) *ActionMsg {
	d := g.eng.Step(v.Verdict())
	g.lastD = d
	if !d.Changed {
		return nil
	}
	c := g.eng.Counters()
	g.mit.alerts.Add(c.Alerts - g.last.Alerts)
	g.mit.warns.Add(c.Warns - g.last.Warns)
	g.mit.pauses.Add(c.Pauses - g.last.Pauses)
	g.mit.safeStops.Add(c.SafeStops - g.last.SafeStops)
	g.mit.retracts.Add(c.Retracts - g.last.Retracts)
	g.mit.releases.Add(c.Releases - g.last.Releases)
	g.last = c
	return &ActionMsg{
		I:          d.FrameIndex,
		Level:      d.Action.String(),
		AlertFrame: d.AlertFrame,
		Score:      d.Score,
		Policy:     g.policy,
	}
}

// mitigationCounters aggregates guard activity across every stream the
// service has carried. Stream handlers write live; /stats readers snapshot
// concurrently.
type mitigationCounters struct {
	guardedStreams atomic.Uint64
	alerts         atomic.Uint64
	warns          atomic.Uint64
	pauses         atomic.Uint64
	safeStops      atomic.Uint64
	retracts       atomic.Uint64
	releases       atomic.Uint64
}

// MitigationSnapshot is the mitigation section of the /stats payload.
type MitigationSnapshot struct {
	// Policies lists the policy names streams can request.
	Policies []string `json:"policies"`
	// GuardedStreams counts streams opened with ?policy=.
	GuardedStreams uint64 `json:"guarded_streams"`
	// Alerts counts confirmed unsafe episodes across guarded streams.
	Alerts uint64 `json:"alerts"`
	// Warns/Pauses/SafeStops/Retracts count upward mitigation
	// transitions; Releases counts hysteresis releases.
	Warns     uint64 `json:"warns"`
	Pauses    uint64 `json:"pauses"`
	SafeStops uint64 `json:"safe_stops"`
	Retracts  uint64 `json:"retracts"`
	Releases  uint64 `json:"releases"`
}

// snapshot renders the counters.
func (m *mitigationCounters) snapshot(policies []string) MitigationSnapshot {
	return MitigationSnapshot{
		Policies:       policies,
		GuardedStreams: m.guardedStreams.Load(),
		Alerts:         m.alerts.Load(),
		Warns:          m.warns.Load(),
		Pauses:         m.pauses.Load(),
		SafeStops:      m.safeStops.Load(),
		Retracts:       m.retracts.Load(),
		Releases:       m.releases.Load(),
	}
}

// buildPolicies validates and indexes the configured guard policies by
// name. Every policy must validate under the same rules safemond's
// -policies flag enforces at startup.
func buildPolicies(policies []guard.Policy) (map[string]guard.Policy, []string, error) {
	byName := make(map[string]guard.Policy, len(policies))
	names := make([]string, 0, len(policies))
	for i, p := range policies {
		if p.Name == "" {
			return nil, nil, fmt.Errorf("serve: policy %d has no name", i)
		}
		if _, dup := byName[p.Name]; dup {
			return nil, nil, fmt.Errorf("serve: duplicate policy name %q", p.Name)
		}
		if _, err := guard.NewEngine(p); err != nil {
			return nil, nil, fmt.Errorf("serve: policy %q: %w", p.Name, err)
		}
		byName[p.Name] = p
		names = append(names, p.Name)
	}
	sort.Strings(names)
	return byName, names, nil
}
