package serve

// Binary wire codec: a compact length-prefixed record format negotiated
// per request via the Content-Type / Accept header value
// application/x-safemon-frames. NDJSON stays the always-works default;
// the binary codec exists because per-frame JSON encode/decode had come
// to cost more than many backends' inference.
//
// Every record is little-endian with a fixed 9-byte header:
//
//	off size field
//	0   1    type  (Bin* constant)
//	1   4    sid   u32 logical session id; 0 on single-session streams
//	5   4    len   u32 payload length in bytes (<= 1 MiB)
//	9   len  payload
//
// Payloads by type:
//
//	BinFrame   304B  38 x float64 kinematics values
//	BinLabels  4nB   n x int32 ground-truth gesture labels
//	BinVerdict 21B   i int64 @0 | g int32 @8 | score float64 @12 | unsafe u8 @20
//	BinAction  26+B  i int64 @0 | alert_frame int64 @8 | score float64 @16 |
//	                 level u8 @24 | policy_len u8 @25 | policy bytes @26
//	BinDone    8B    frames uint64
//	BinError   4+B   code uint32 @0 | message bytes @4
//	BinOpen    4+B   backend_len u16 @0 | backend | policy_len u16 | policy |
//	                 n x int32 labels (rest of payload)     (mux only, c->s)
//	BinOpened  0+B   model version bytes                    (mux only, s->c)
//	BinClose   0B    half-close: no more frames for the sid (mux only, c->s)
//
// The codec is allocation-free for the hot records (frame, verdict) in
// both directions once a connection's buffers are warm; the cold records
// (labels, open, error, action) may allocate for their variable parts.
// DecodeBinaryRecord never panics on malformed input — the property
// FuzzDecodeBinaryRecord pins — and distinguishes framing errors (the
// stream cannot continue) from payload errors (the record is framed
// correctly but its contents are invalid, so a multiplexed connection can
// fail just the offending session with a per-sid 400 record).

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"repro/safemon"
)

// BinaryContentType is the media type that negotiates the binary codec:
// send it as Content-Type (and/or Accept) on POST /v1/stream, and
// mandatorily on POST /v1/mux.
const BinaryContentType = "application/x-safemon-frames"

// Binary record types (the u8 type field of every record header).
const (
	// BinFrame carries one 38-variable kinematics frame (client->server).
	BinFrame byte = iota + 1
	// BinLabels carries the stream's ground-truth gesture labels
	// (client->server, at most once, before the first frame).
	BinLabels
	// BinVerdict carries one frame verdict (server->client).
	BinVerdict
	// BinAction carries one guard mitigation edge (server->client,
	// guarded streams only, immediately before the verdict it precedes).
	BinAction
	// BinDone terminates a healthy stream (server->client).
	BinDone
	// BinError terminates a failed stream — or, on a multiplexed
	// connection, just the session its sid names (server->client).
	BinError
	// BinOpen opens a logical session on a multiplexed connection
	// (client->server): backend, optional policy, optional labels.
	BinOpen
	// BinOpened acknowledges a BinOpen with the bound model version
	// (server->client).
	BinOpened
	// BinClose half-closes a multiplexed session: no more frames will
	// arrive for the sid, and the server answers with its BinDone
	// (client->server).
	BinClose
	// binMaxType bounds the valid type range for validation.
	binMaxType = BinClose
)

const (
	binHeaderSize     = 9
	binFramePayload   = frameSize * 8
	binVerdictPayload = 21
	binDonePayload    = 8
	binActionMin      = 26
)

// Codec errors. errBadPayload-wrapped errors mean the record was framed
// correctly but its payload is invalid — recoverable per session on a
// multiplexed connection; everything else is a framing error that
// poisons the byte stream.
var (
	errBadPayload     = errors.New("serve: malformed record payload")
	errNonFiniteFrame = fmt.Errorf("%w: non-finite frame value (NaN or ±Inf)", errBadPayload)
	errShortRecord    = errors.New("serve: truncated binary record")
)

// actionLevels maps the BinAction level byte to the guard.Action wire
// names ActionMsg carries (index == guard.Action value).
var actionLevels = [...]string{"none", "warn", "pause", "safe-stop", "retract"}

func levelByte(name string) (byte, bool) {
	for i, n := range actionLevels {
		if n == name {
			return byte(i), true
		}
	}
	return 0, false
}

// BinaryRecord is the decoded form of one binary wire record. Exactly
// the fields implied by Type are meaningful; the struct is designed for
// reuse (DecodeBinaryRecord overwrites it) so the hot record types
// decode without allocating.
type BinaryRecord struct {
	Type byte
	// SID is the logical session id; 0 on single-session streams.
	SID uint32

	// Frame is the kinematics sample of a BinFrame record.
	Frame safemon.Frame
	// Verdict is the verdict of a BinVerdict record.
	Verdict VerdictMsg
	// Action is the mitigation edge of a BinAction record.
	Action ActionMsg
	// Labels are the ground-truth labels of a BinLabels record (the
	// backing array is reused across decodes into the same record).
	Labels []int
	// Frames is the verdict count of a BinDone record.
	Frames uint64
	// Code and Message form a BinError record.
	Code    uint32
	Message string
	// Backend and Policy name the session of a BinOpen record (its
	// labels ride in Labels).
	Backend string
	Policy  string
	// Version is the bound model version of a BinOpened record.
	Version string
}

func appendBinHeader(dst []byte, typ byte, sid uint32, payloadLen int) []byte {
	dst = append(dst, typ)
	dst = binary.LittleEndian.AppendUint32(dst, sid)
	return binary.LittleEndian.AppendUint32(dst, uint32(payloadLen))
}

// AppendBinaryRecord encodes rec onto dst and returns the extended
// slice. It is the single encoder for every record type; per-connection
// writers reuse their dst buffer so warm encoding never allocates.
func AppendBinaryRecord(dst []byte, rec *BinaryRecord) ([]byte, error) {
	switch rec.Type {
	case BinFrame:
		dst = appendBinHeader(dst, BinFrame, rec.SID, binFramePayload)
		for _, v := range rec.Frame {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	case BinLabels:
		n := 4 * len(rec.Labels)
		if n > maxRecordBytes {
			return dst, errRecordTooLarge
		}
		dst = appendBinHeader(dst, BinLabels, rec.SID, n)
		for _, l := range rec.Labels {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(l)))
		}
	case BinVerdict:
		dst = appendBinHeader(dst, BinVerdict, rec.SID, binVerdictPayload)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(rec.Verdict.I)))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(rec.Verdict.G)))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(rec.Verdict.Score))
		if rec.Verdict.Unsafe {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case BinAction:
		lv, ok := levelByte(rec.Action.Level)
		if !ok {
			return dst, fmt.Errorf("serve: unknown action level %q", rec.Action.Level)
		}
		if len(rec.Action.Policy) > 255 {
			return dst, fmt.Errorf("serve: action policy name over 255 bytes")
		}
		dst = appendBinHeader(dst, BinAction, rec.SID, binActionMin+len(rec.Action.Policy))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(rec.Action.I)))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(rec.Action.AlertFrame)))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(rec.Action.Score))
		dst = append(dst, lv, byte(len(rec.Action.Policy)))
		dst = append(dst, rec.Action.Policy...)
	case BinDone:
		dst = appendBinHeader(dst, BinDone, rec.SID, binDonePayload)
		dst = binary.LittleEndian.AppendUint64(dst, rec.Frames)
	case BinError:
		if 4+len(rec.Message) > maxRecordBytes {
			return dst, errRecordTooLarge
		}
		dst = appendBinHeader(dst, BinError, rec.SID, 4+len(rec.Message))
		dst = binary.LittleEndian.AppendUint32(dst, rec.Code)
		dst = append(dst, rec.Message...)
	case BinOpen:
		if len(rec.Backend) > 0xffff || len(rec.Policy) > 0xffff {
			return dst, fmt.Errorf("serve: open name over 65535 bytes")
		}
		n := 4 + len(rec.Backend) + len(rec.Policy) + 4*len(rec.Labels)
		if n > maxRecordBytes {
			return dst, errRecordTooLarge
		}
		dst = appendBinHeader(dst, BinOpen, rec.SID, n)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(rec.Backend)))
		dst = append(dst, rec.Backend...)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(rec.Policy)))
		dst = append(dst, rec.Policy...)
		for _, l := range rec.Labels {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(l)))
		}
	case BinOpened:
		if len(rec.Version) > maxRecordBytes {
			return dst, errRecordTooLarge
		}
		dst = appendBinHeader(dst, BinOpened, rec.SID, len(rec.Version))
		dst = append(dst, rec.Version...)
	case BinClose:
		dst = appendBinHeader(dst, BinClose, rec.SID, 0)
	default:
		return dst, fmt.Errorf("serve: unknown binary record type %d", rec.Type)
	}
	return dst, nil
}

// DecodeBinaryRecord decodes one record from the front of b into rec,
// overwriting any previous contents, and returns the number of bytes
// consumed. It never panics on malformed input. Errors wrapping
// errBadPayload leave rec.Type and rec.SID valid (the framing was
// intact); every other error means the byte stream itself is broken.
func DecodeBinaryRecord(b []byte, rec *BinaryRecord) (int, error) {
	*rec = BinaryRecord{Labels: rec.Labels[:0]}
	if len(b) < binHeaderSize {
		return 0, errShortRecord
	}
	typ := b[0]
	sid := binary.LittleEndian.Uint32(b[1:5])
	plen := binary.LittleEndian.Uint32(b[5:9])
	if plen > maxRecordBytes {
		return 0, errRecordTooLarge
	}
	if len(b) < binHeaderSize+int(plen) {
		return 0, errShortRecord
	}
	if typ == 0 || typ > binMaxType {
		return 0, fmt.Errorf("serve: unknown binary record type %d", typ)
	}
	rec.Type, rec.SID = typ, sid
	n := binHeaderSize + int(plen)
	p := b[binHeaderSize:n]
	switch typ {
	case BinFrame:
		if len(p) != binFramePayload {
			return n, fmt.Errorf("%w: frame payload %d bytes, want %d", errBadPayload, len(p), binFramePayload)
		}
		for i := range rec.Frame {
			v := math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return n, errNonFiniteFrame
			}
			rec.Frame[i] = v
		}
	case BinLabels:
		if len(p)%4 != 0 {
			return n, fmt.Errorf("%w: labels payload %d bytes, want a multiple of 4", errBadPayload, len(p))
		}
		for i := 0; i < len(p); i += 4 {
			rec.Labels = append(rec.Labels, int(int32(binary.LittleEndian.Uint32(p[i:]))))
		}
	case BinVerdict:
		if len(p) != binVerdictPayload {
			return n, fmt.Errorf("%w: verdict payload %d bytes, want %d", errBadPayload, len(p), binVerdictPayload)
		}
		if p[20] > 1 {
			return n, fmt.Errorf("%w: verdict unsafe byte %d", errBadPayload, p[20])
		}
		rec.Verdict = VerdictMsg{
			I:      int(int64(binary.LittleEndian.Uint64(p[0:]))),
			G:      int(int32(binary.LittleEndian.Uint32(p[8:]))),
			Score:  math.Float64frombits(binary.LittleEndian.Uint64(p[12:])),
			Unsafe: p[20] == 1,
		}
	case BinAction:
		if len(p) < binActionMin {
			return n, fmt.Errorf("%w: action payload %d bytes, want >= %d", errBadPayload, len(p), binActionMin)
		}
		lv := p[24]
		if int(lv) >= len(actionLevels) {
			return n, fmt.Errorf("%w: unknown action level byte %d", errBadPayload, lv)
		}
		if int(p[25]) != len(p)-binActionMin {
			return n, fmt.Errorf("%w: action policy length %d for %d payload bytes", errBadPayload, p[25], len(p))
		}
		rec.Action = ActionMsg{
			I:          int(int64(binary.LittleEndian.Uint64(p[0:]))),
			AlertFrame: int(int64(binary.LittleEndian.Uint64(p[8:]))),
			Score:      math.Float64frombits(binary.LittleEndian.Uint64(p[16:])),
			Level:      actionLevels[lv],
			Policy:     string(p[binActionMin:]),
		}
	case BinDone:
		if len(p) != binDonePayload {
			return n, fmt.Errorf("%w: done payload %d bytes, want %d", errBadPayload, len(p), binDonePayload)
		}
		rec.Frames = binary.LittleEndian.Uint64(p)
	case BinError:
		if len(p) < 4 {
			return n, fmt.Errorf("%w: error payload %d bytes, want >= 4", errBadPayload, len(p))
		}
		rec.Code = binary.LittleEndian.Uint32(p)
		rec.Message = string(p[4:])
	case BinOpen:
		if len(p) < 2 {
			return n, fmt.Errorf("%w: open payload %d bytes, want >= 2", errBadPayload, len(p))
		}
		bl := int(binary.LittleEndian.Uint16(p))
		if len(p) < 2+bl+2 {
			return n, fmt.Errorf("%w: open backend length %d overruns payload", errBadPayload, bl)
		}
		rec.Backend = string(p[2 : 2+bl])
		pl := int(binary.LittleEndian.Uint16(p[2+bl:]))
		rest := p[4+bl:]
		if len(rest) < pl {
			return n, fmt.Errorf("%w: open policy length %d overruns payload", errBadPayload, pl)
		}
		rec.Policy = string(rest[:pl])
		labels := rest[pl:]
		if len(labels)%4 != 0 {
			return n, fmt.Errorf("%w: open labels %d bytes, want a multiple of 4", errBadPayload, len(labels))
		}
		for i := 0; i < len(labels); i += 4 {
			rec.Labels = append(rec.Labels, int(int32(binary.LittleEndian.Uint32(labels[i:]))))
		}
	case BinOpened:
		rec.Version = string(p)
	case BinClose:
		if len(p) != 0 {
			return n, fmt.Errorf("%w: close payload %d bytes, want 0", errBadPayload, len(p))
		}
	}
	return n, nil
}

// binWriter encodes records onto an io.Writer through one reusable
// buffer: warm frame/verdict writes are a single Write with zero
// allocations.
type binWriter struct {
	w   io.Writer
	buf []byte
	rec BinaryRecord // encode scratch for the typed helpers
}

func newBinWriter(w io.Writer) *binWriter {
	return &binWriter{w: w, buf: make([]byte, 0, binHeaderSize+binFramePayload)}
}

func (bw *binWriter) emit(rec *BinaryRecord) error {
	b, err := AppendBinaryRecord(bw.buf[:0], rec)
	if err != nil {
		return err
	}
	bw.buf = b[:0]
	_, err = bw.w.Write(b)
	return err
}

func (bw *binWriter) writeFrame(sid uint32, f *safemon.Frame) error {
	bw.rec = BinaryRecord{Type: BinFrame, SID: sid, Frame: *f}
	return bw.emit(&bw.rec)
}

func (bw *binWriter) writeVerdict(sid uint32, v *VerdictMsg) error {
	bw.rec = BinaryRecord{Type: BinVerdict, SID: sid, Verdict: *v}
	return bw.emit(&bw.rec)
}

// binReaderBufSize is the bufio read-buffer size shared by the pooled
// binary readers: a few frames deep, far under the NDJSON scanner's
// per-line buffer because binary records need no line scanning.
const binReaderBufSize = 8 << 10

// binReaderPool recycles binary readers across connections so a busy
// edge does not allocate a bufio.Reader plus payload scratch per stream.
var binReaderPool = sync.Pool{
	New: func() any {
		return &binReader{
			br:      bufio.NewReaderSize(nil, binReaderBufSize),
			scratch: make([]byte, binHeaderSize+binFramePayload),
		}
	},
}

// binReader decodes binary records from a stream. Hot records decode
// with zero allocations: the payload is staged in a reusable scratch
// buffer and decoded into a reusable BinaryRecord.
type binReader struct {
	br      *bufio.Reader
	scratch []byte
	rec     BinaryRecord
	// lastSID is the sid of the most recently framed record, valid even
	// when its payload failed to decode (errBadPayload errors) — the mux
	// handler uses it to fail just the offending session.
	lastSID uint32
	// decNS is the parse time of the most recent record — just the
	// DecodeBinaryRecord call, excluding the network reads — for the
	// decode stage histogram.
	decNS int64
}

func newBinReader(r io.Reader) *binReader {
	d := binReaderPool.Get().(*binReader)
	d.br.Reset(r)
	d.lastSID = 0
	return d
}

// release returns the reader's buffers to the pool. The reader must not
// be used afterwards.
func (d *binReader) release() {
	d.br.Reset(nil)
	d.rec = BinaryRecord{}
	binReaderPool.Put(d)
}

// next reads and decodes the next record. io.EOF means a clean end at a
// record boundary; io.ErrUnexpectedEOF a mid-record hangup. Payload
// errors (errBadPayload) leave the stream aligned on the next record.
func (d *binReader) next() (*BinaryRecord, error) {
	hdr := d.scratch[:binHeaderSize]
	if _, err := io.ReadFull(d.br, hdr); err != nil {
		return nil, err // io.EOF at a boundary, ErrUnexpectedEOF inside
	}
	plen := binary.LittleEndian.Uint32(hdr[5:9])
	if plen > maxRecordBytes {
		return nil, errRecordTooLarge
	}
	d.lastSID = binary.LittleEndian.Uint32(hdr[1:5])
	total := binHeaderSize + int(plen)
	if cap(d.scratch) < total {
		grown := make([]byte, total)
		copy(grown, hdr)
		d.scratch = grown
	}
	d.scratch = d.scratch[:cap(d.scratch)]
	if _, err := io.ReadFull(d.br, d.scratch[binHeaderSize:total]); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	start := time.Now()
	_, err := DecodeBinaryRecord(d.scratch[:total], &d.rec)
	d.decNS = time.Since(start).Nanoseconds()
	if err != nil {
		return &d.rec, err
	}
	return &d.rec, nil
}
