package serve

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/kinematics"
	"repro/safemon"
)

// TestFaultInjectionCampaignOverServe drives the seed's fault-injection
// error library through the network path: synthetic trajectories are
// perturbed with grasper + Cartesian faults from the Table III grid, each
// perturbed stream is served by safemond, and the detection report
// aggregated from the served verdicts must equal the offline
// EvaluateTraces aggregation of the batch Runner bit for bit.
func TestFaultInjectionCampaignOverServe(t *testing.T) {
	fold := testFold(t)
	det := fittedDetector(t, "envelope")
	ctx := context.Background()
	info := det.Info()

	// Build a small campaign against the held-out trajectories from the
	// grid's highest grasper bands (1.3–1.6 rad, far outside the synth
	// grasper range of 0.15–1.10, so the envelope has something to catch),
	// perturbing both targeted variables as the paper's combined
	// experiments do.
	grid := faultinject.Table3Grid()
	var perturbed []*safemon.Trajectory
	for i, bucket := range grid[len(grid)-6:] {
		demo := fold.Test[i%len(fold.Test)]
		gf := faultinject.Fault{
			Variable:    faultinject.GrasperAngle,
			Target:      (bucket.GrasperLo + bucket.GrasperHi) / 2,
			StartFrac:   faultinject.InjectionStartFrac,
			Duration:    (bucket.GrasperDurLo + bucket.GrasperDurHi) / 2,
			Manipulator: kinematics.Left,
		}
		withGrasper, _, _, err := faultinject.Inject(demo, gf)
		if err != nil {
			t.Fatal(err)
		}
		cf := faultinject.Fault{
			Variable:    faultinject.CartesianPosition,
			Target:      (bucket.CartLo + bucket.CartHi) / 2,
			StartFrac:   faultinject.InjectionStartFrac,
			Duration:    (bucket.CartDurLo + bucket.CartDurHi) / 2,
			Manipulator: kinematics.Left,
		}
		full, _, _, err := faultinject.Inject(withGrasper, cf)
		if err != nil {
			t.Fatal(err)
		}
		perturbed = append(perturbed, full)
	}

	// Offline aggregation: the batch Runner over the perturbed set.
	offline, err := (&safemon.Runner{Detector: det, Workers: 2}).Run(ctx, perturbed, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Served aggregation: every perturbed trajectory through a live
	// safemond stream, rebuilt into traces, aggregated the same way.
	_, client := newTestService(t, map[string]safemon.Detector{"envelope": det}, ManagerConfig{Shards: 2})
	traces := make([]*core.Trace, len(perturbed))
	for i, traj := range perturbed {
		verdicts, err := client.StreamTrajectory(ctx, "envelope", traj)
		if err != nil {
			t.Fatalf("trajectory %d: %v", i, err)
		}
		traces[i] = TraceFromVerdicts(verdicts)
	}
	served, err := core.EvaluateTraces(perturbed, traces, nil, info.Threshold, info.PredictsContext)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(offline, served) {
		t.Fatalf("served campaign report differs from offline:\noffline: %+v\nserved:  %+v", offline, served)
	}
	offB, err := json.Marshal(offline)
	if err != nil {
		t.Fatal(err)
	}
	srvB, err := json.Marshal(served)
	if err != nil {
		t.Fatal(err)
	}
	if string(offB) != string(srvB) {
		t.Fatal("serialized campaign reports differ")
	}

	// The injections must actually register: every perturbed trajectory
	// carries unsafe ground truth, and the envelope should flag at least
	// one of the injected windows.
	if offline.TotalErrors == 0 {
		t.Error("campaign produced no erroneous-gesture ground truth")
	}
	if offline.TotalErrors == offline.MissedErrors {
		t.Error("every injected fault was missed; campaign is vacuous")
	}
}
