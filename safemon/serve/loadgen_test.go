package serve

import (
	"context"
	"testing"

	"repro/safemon"
)

// TestLoadGen64Sessions is the acceptance check for the serving layer:
// safemond must sustain 64 concurrent NDJSON sessions with every served
// verdict sequence byte-identical to the offline Runner path, and then
// drain cleanly (the whole package runs under -race in make ci).
func TestLoadGen64Sessions(t *testing.T) {
	fold := testFold(t)
	det := fittedDetector(t, "envelope")
	ctx := context.Background()

	refs, err := (&safemon.Runner{Detector: det, Workers: 1}).Traces(ctx, fold.Test)
	if err != nil {
		t.Fatal(err)
	}
	srv, client := newTestService(t, map[string]safemon.Detector{"envelope": det},
		ManagerConfig{Shards: 4, MaxSessions: 128})

	rep, err := RunLoadGen(ctx, LoadGenConfig{
		Client:       client,
		Backend:      "envelope",
		Sessions:     64,
		Trajectories: fold.Test,
		Reference:    refs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d/%d sessions failed: %v", rep.Failed, rep.Sessions, rep.Errors)
	}
	if rep.Mismatches != 0 {
		t.Fatalf("%d sessions diverged from the offline Runner", rep.Mismatches)
	}
	var want int
	for i := 0; i < rep.Sessions; i++ {
		want += fold.Test[i%len(fold.Test)].Len()
	}
	if rep.Frames != want {
		t.Errorf("served %d frames, want %d", rep.Frames, want)
	}
	if rep.Stats == nil || rep.Stats.SessionsOpened < 64 {
		t.Errorf("stats after loadgen: %+v", rep.Stats)
	}

	// Shutdown drains cleanly with nothing in flight.
	srv.Shutdown()
	if snap := srv.Stats(); snap.SessionsActive != 0 {
		t.Errorf("active sessions after drain: %d", snap.SessionsActive)
	}
}
