package serve

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/safemon"
	"repro/safemon/obs"
)

// Backpressure and lifecycle sentinels.
var (
	// ErrQueueFull reports that a shard mailbox stayed full past the
	// enqueue timeout — the explicit mid-stream backpressure signal.
	ErrQueueFull = errors.New("serve: shard queue full")
	// ErrBusy reports that the service is at its concurrent-session cap.
	ErrBusy = errors.New("serve: too many concurrent sessions")
	// ErrDraining reports that the manager is shutting down.
	ErrDraining = errors.New("serve: draining")
	// ErrUnknownBackend reports a backend name the server does not serve.
	ErrUnknownBackend = errors.New("serve: unknown backend")
)

// pushTrace carries one frame's shard-side stage timings back to the
// stream handler: mailbox queue wait, batch gather wait, and inference.
// The shard goroutine writes it before sending the reply; the handler
// reads it after receiving the reply, so the reply channel's
// happens-before edge orders the fields without any atomics.
type pushTrace struct {
	queueNS  int64 // enqueue → shard dequeue
	gatherNS int64 // dequeue → batch dispatch (0 on unbatched shards)
	inferNS  int64 // dispatch → verdict
}

// pushTask is one unit of shard work: push a frame through a session and
// deliver the verdict on reply.
type pushTask struct {
	sess  safemon.Session
	frame *safemon.Frame
	enq   time.Time
	deq   time.Time // set by the shard at mailbox receipt
	reply chan<- pushResult
	stats *shardStats
	trace *pushTrace
}

// pushResult is the outcome of one pushTask.
type pushResult struct {
	verdict safemon.FrameVerdict
	err     error
}

// shard is one owning goroutine with a bounded mailbox. Every stream is
// pinned to a single shard for its lifetime, so per-session frame order is
// the mailbox FIFO order, while distinct shards run in parallel.
//
// With MaxBatch > 1 the shard micro-batches: after the first task arrives
// it gathers more from the mailbox for at most one BatchWindow (or until
// the batch is full), then dispatches the whole set through one
// safemon.Batcher call so armed sessions sharing a model run a single
// batched forward. A batch of one takes the exact single-task path, so an
// idle service is byte- and latency-identical to an unbatched one.
type shard struct {
	mailbox chan pushTask
	stats   shardStats

	maxBatch int
	window   time.Duration
	drain    <-chan struct{} // closed by Manager.BeginDrain: stop window-waiting
	batcher  *safemon.Batcher

	// Gather/dispatch scratch, reused across batches.
	tasks    []pushTask
	sessions []safemon.Session
	frames   []*safemon.Frame
	verdicts []safemon.FrameVerdict
	errs     []error
}

func (sh *shard) run(quit <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	if sh.maxBatch > 1 {
		sh.runBatched(quit)
		return
	}
	for {
		select {
		case t := <-sh.mailbox:
			t.deq = time.Now()
			t.run(t.deq)
		case <-quit:
			// The manager only closes quit once no submits are in
			// flight, so the mailbox is empty; drain defensively anyway.
			for {
				select {
				case t := <-sh.mailbox:
					t.deq = time.Now()
					t.run(t.deq)
				default:
					return
				}
			}
		}
	}
}

// runBatched is the micro-batching shard loop.
func (sh *shard) runBatched(quit <-chan struct{}) {
	timer := time.NewTimer(sh.window)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case t := <-sh.mailbox:
			t.deq = time.Now()
			sh.dispatch(sh.gather(t, timer))
		case <-quit:
			for {
				select {
				case t := <-sh.mailbox:
					t.deq = time.Now()
					t.run(t.deq)
				default:
					return
				}
			}
		}
	}
}

// gather assembles one micro-batch starting from first: everything already
// queued, then — unless the manager is draining — whatever else arrives
// within one gather window. The timer is owned by the caller and is always
// left stopped and drained.
func (sh *shard) gather(first pushTask, timer *time.Timer) []pushTask {
	tasks := append(sh.tasks[:0], first)
	for len(tasks) < sh.maxBatch {
		select {
		case t := <-sh.mailbox:
			t.deq = time.Now()
			tasks = append(tasks, t)
			continue
		default:
		}
		break
	}
	if len(tasks) >= sh.maxBatch {
		sh.tasks = tasks
		return tasks
	}
	select {
	case <-sh.drain:
		// Draining: flush the partial batch without holding frames back.
		sh.tasks = tasks
		return tasks
	default:
	}
	timer.Reset(sh.window)
	for len(tasks) < sh.maxBatch {
		select {
		case t := <-sh.mailbox:
			t.deq = time.Now()
			tasks = append(tasks, t)
		case <-sh.drain:
			if !timer.Stop() {
				<-timer.C
			}
			sh.tasks = tasks
			return tasks
		case <-timer.C:
			sh.stats.windowTimeouts.Add(1)
			sh.tasks = tasks
			return tasks
		}
	}
	if !timer.Stop() {
		<-timer.C
	}
	sh.tasks = tasks
	return tasks
}

// dispatch runs one gathered batch. A singleton takes pushTask.run — the
// exact per-stream path, byte- and allocation-identical to an unbatched
// shard — so batching cannot perturb a lone stream. Larger batches go
// through the shard's Batcher, which groups same-monitor sessions into
// shared batched forwards and falls back to Push for the rest; every
// verdict is bit-identical either way (see safemon/batch.go).
func (sh *shard) dispatch(tasks []pushTask) {
	start := time.Now()
	if len(tasks) == 1 {
		t := &tasks[0]
		// The deq→start gap is the gather window the lone task waited
		// through; run's inference measurement starts after it.
		if t.trace != nil {
			t.trace.gatherNS = start.Sub(t.deq).Nanoseconds()
		}
		t.run(start)
		return
	}
	sessions := sh.sessions[:0]
	frames := sh.frames[:0]
	for _, t := range tasks {
		sessions = append(sessions, t.sess)
		frames = append(frames, t.frame)
	}
	if cap(sh.verdicts) < len(tasks) {
		sh.verdicts = make([]safemon.FrameVerdict, len(tasks))
		sh.errs = make([]error, len(tasks))
	}
	verdicts := sh.verdicts[:len(tasks)]
	errs := sh.errs[:len(tasks)]
	counts := sh.batcher.PushBatch(sessions, frames, verdicts, errs)
	sh.stats.batches.Add(1)
	sh.stats.batchedFrames.Add(uint64(len(tasks)))
	sh.stats.fallbackFrames.Add(uint64(counts.Fallback))
	end := time.Now()
	// The whole dispatch ran as one batched forward: each frame's infer
	// time is the batch's, its gather wait its own deq→dispatch gap.
	inferNS := end.Sub(start).Nanoseconds()
	for i := range tasks {
		t := &tasks[i]
		t.stats.latency.Observe(end.Sub(t.enq))
		if errs[i] == nil {
			t.stats.frames.Add(1)
		}
		if t.trace != nil {
			t.trace.queueNS = t.deq.Sub(t.enq).Nanoseconds()
			t.trace.gatherNS = start.Sub(t.deq).Nanoseconds()
			t.trace.inferNS = inferNS
		}
		t.reply <- pushResult{verdict: verdicts[i], err: errs[i]}
	}
	sh.sessions, sh.frames = sessions, frames
}

// run executes the push on the shard goroutine and records its latency
// (queue wait + inference) in the shard histogram. now is when the
// shard began executing the task — its dequeue time on unbatched
// shards, the dispatch start on batched ones (the caller records the
// dequeue→dispatch gap as gather wait).
func (t *pushTask) run(now time.Time) {
	v, err := t.sess.Push(t.frame)
	end := time.Now()
	t.stats.latency.Observe(end.Sub(t.enq))
	if err == nil {
		t.stats.frames.Add(1)
	}
	if t.trace != nil {
		t.trace.queueNS = t.deq.Sub(t.enq).Nanoseconds()
		t.trace.inferNS = end.Sub(now).Nanoseconds()
	}
	t.reply <- pushResult{verdict: v, err: err}
}

// ManagerConfig tunes the sharded session manager.
type ManagerConfig struct {
	// Shards is the number of owning goroutines; <= 0 means 8.
	Shards int
	// MailboxDepth bounds each shard's mailbox; <= 0 means 256.
	MailboxDepth int
	// MaxSessions caps concurrently attached streams; <= 0 means 1024.
	MaxSessions int
	// EnqueueTimeout bounds how long a submit may wait on a full mailbox
	// before failing with ErrQueueFull; <= 0 means 100ms.
	EnqueueTimeout time.Duration
	// MaxIdlePerBackend caps each backend's warm session pool; <= 0
	// means the session cap.
	MaxIdlePerBackend int
	// MaxBatch enables cross-session micro-batching: each shard may gather
	// up to this many queued pushes into one batched forward. <= 1 keeps
	// the per-task path (no batching).
	MaxBatch int
	// BatchWindow bounds how long a shard holds a partial batch open
	// waiting for more work after the first task arrives; a full batch
	// dispatches immediately. <= 0 with MaxBatch > 1 means 250µs, well
	// under a 30 Hz frame period.
	BatchWindow time.Duration
	// Metrics receives the manager's per-shard counters and latency
	// histograms (and, under a Server, everything else the service
	// exports at /metrics). Nil mints a private registry. A registry
	// must not be shared between managers: series names would collide.
	Metrics *obs.Registry
}

// WithMaxBatch returns the config with the micro-batch cap set (chainable).
func (c ManagerConfig) WithMaxBatch(n int) ManagerConfig {
	c.MaxBatch = n
	return c
}

// WithBatchWindow returns the config with the gather window set (chainable).
func (c ManagerConfig) WithBatchWindow(d time.Duration) ManagerConfig {
	c.BatchWindow = d
	return c
}

func (c ManagerConfig) withDefaults() ManagerConfig {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.MailboxDepth <= 0 {
		c.MailboxDepth = 256
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.EnqueueTimeout <= 0 {
		c.EnqueueTimeout = 100 * time.Millisecond
	}
	if c.MaxIdlePerBackend <= 0 {
		c.MaxIdlePerBackend = c.MaxSessions
	}
	if c.MaxBatch > 1 && c.BatchWindow <= 0 {
		c.BatchWindow = 250 * time.Microsecond
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	return c
}

// Manager owns the shards and the per-backend versioned models with their
// warm session pools. Streams attach with Open, push frames with
// Session.Push, and detach with Session.Release; Swap hot-replaces the
// model set under live traffic; Close drains everything.
type Manager struct {
	cfg    ManagerConfig
	shards []*shard

	quit      chan struct{}
	drainCh   chan struct{} // closed by BeginDrain: shards flush partial batches
	drainOnce sync.Once
	wg        sync.WaitGroup
	inflight  sync.WaitGroup
	next      atomic.Uint64 // round-robin shard assignment
	active    atomic.Int64  // attached streams, for the MaxSessions cap

	mu       sync.RWMutex
	models   map[string]*backendModel
	draining bool
}

// NewManager builds and starts the shards over fitted detectors keyed by
// the backend name clients will request, with every model reported as
// version "unversioned". Use NewManagerModels to carry version metadata.
func NewManager(detectors map[string]safemon.Detector, cfg ManagerConfig) (*Manager, error) {
	models := make(map[string]Model, len(detectors))
	for name, det := range detectors {
		models[name] = Model{Detector: det, Version: "unversioned"}
	}
	return NewManagerModels(models, cfg)
}

// NewManagerModels builds and starts the shards over versioned models keyed
// by the backend name clients will request.
func NewManagerModels(models map[string]Model, cfg ManagerConfig) (*Manager, error) {
	if len(models) == 0 {
		return nil, errors.New("serve: no detectors to serve")
	}
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:     cfg,
		models:  map[string]*backendModel{},
		quit:    make(chan struct{}),
		drainCh: make(chan struct{}),
	}
	now := time.Now().UTC()
	for name, mod := range models {
		if mod.Detector == nil {
			return nil, fmt.Errorf("serve: nil detector for backend %q", name)
		}
		m.models[name] = &backendModel{
			det:      mod.Detector,
			version:  mod.Version,
			loadedAt: now,
			pool:     safemon.NewSessionPool(mod.Detector, cfg.MaxIdlePerBackend),
		}
	}
	m.shards = make([]*shard, cfg.Shards)
	for i := range m.shards {
		sh := &shard{
			mailbox:  make(chan pushTask, cfg.MailboxDepth),
			maxBatch: cfg.MaxBatch,
			window:   cfg.BatchWindow,
			drain:    m.drainCh,
		}
		if sh.maxBatch > 1 {
			sh.batcher = safemon.NewBatcher(sh.maxBatch)
		}
		registerShardMetrics(cfg.Metrics, &sh.stats, i)
		m.shards[i] = sh
		m.wg.Add(1)
		go sh.run(m.quit, &m.wg)
	}
	return m, nil
}

// registerShardMetrics binds one shard's counters into the registry:
// the latency histogram is registry-owned (so /metrics renders the very
// bucket array /stats quantiles read), the counters are exported as
// read-functions over the shard's existing atomics.
func registerShardMetrics(reg *obs.Registry, st *shardStats, i int) {
	shard := obs.Label{Key: "shard", Value: strconv.Itoa(i)}
	st.latency = reg.Histogram("safemon_frame_latency_seconds",
		"End-to-end submit-to-verdict frame latency (mailbox wait + gather + inference).", shard)
	reg.CounterFunc("safemon_frames_total",
		"Frames pushed through sessions.", st.frames.Load, shard)
	reg.CounterFunc("safemon_sessions_opened_total",
		"Streams admitted to the shard.", st.sessionsOpened.Load, shard)
	reg.CounterFunc("safemon_sessions_closed_total",
		"Streams released from the shard (opened - closed = active).", st.sessionsClosed.Load, shard)
	reg.CounterFunc("safemon_queue_full_total",
		"Frame submits rejected by mailbox backpressure.", st.queueFull.Load, shard)
	reg.CounterFunc("safemon_batches_total",
		"Multi-session micro-batch dispatches.", st.batches.Load, shard)
	reg.CounterFunc("safemon_batched_frames_total",
		"Frames carried by micro-batch dispatches.", st.batchedFrames.Load, shard)
	reg.CounterFunc("safemon_batch_window_timeouts_total",
		"Batch gathers dispatched on window expiry.", st.windowTimeouts.Load, shard)
	reg.CounterFunc("safemon_batch_fallback_frames_total",
		"Batched frames routed via per-stream Push.", st.fallbackFrames.Load, shard)
}

// Session is one stream attached to the manager: a pooled safemon session
// pinned to a shard.
type Session struct {
	m       *Manager
	sess    safemon.Session
	shard   *shard
	pool    *safemon.SessionPool
	reply   chan pushResult
	version string
	done    bool
	// trace receives the most recent Push's shard-side stage timings;
	// valid after a successful Push until the next one (single-caller,
	// like Push itself).
	trace pushTrace
}

// Version reports the model version the session was bound to at Open
// (streams keep their version across hot-swaps).
func (s *Session) Version() string { return s.version }

// Reserve claims one session slot ahead of Open, so admission control can
// answer before any stream bytes flow (HTTP 429/503 instead of an
// in-stream record). Every successful Reserve must be paired with either a
// successful Open (whose Session.Release frees the slot) or an Unreserve.
func (m *Manager) Reserve() error {
	m.mu.RLock()
	draining := m.draining
	m.mu.RUnlock()
	if draining {
		return ErrDraining
	}
	if m.active.Add(1) > int64(m.cfg.MaxSessions) {
		m.active.Add(-1)
		return ErrBusy
	}
	return nil
}

// Unreserve frees a slot claimed by Reserve when Open was never reached.
func (m *Manager) Unreserve() { m.active.Add(-1) }

// Open attaches a new stream for the named backend, drawing a warm session
// from the backend's *current* model (streams opened after a Swap bind the
// new model version) and pinning it to a shard. The caller must hold a
// Reserve slot; on success the Session owns it (Release frees it), on
// error the caller keeps it and must Unreserve. groundTruth supplies
// per-frame gesture labels (nil when the backend infers its own context).
func (m *Manager) Open(backend string, groundTruth []int) (*Session, error) {
	for {
		m.mu.RLock()
		draining := m.draining
		bm := m.models[backend]
		m.mu.RUnlock()
		if draining {
			return nil, ErrDraining
		}
		if bm == nil {
			return nil, fmt.Errorf("%w: %q", ErrUnknownBackend, backend)
		}
		sess, err := bm.pool.Get(groundTruth)
		if err != nil {
			return nil, err
		}
		// Re-check after Get: a Swap that raced us may have retired this
		// model, and Get on its closed pool silently falls back to a fresh
		// session of the OLD detector — which a stream opened after the
		// swap returned must never see. Retry against the current map;
		// each retry observes a strictly newer model set, so this cannot
		// livelock outside a continuous swap storm.
		m.mu.RLock()
		current := m.models[backend] == bm
		m.mu.RUnlock()
		if !current {
			sess.Close()
			continue
		}
		sh := m.shards[m.next.Add(1)%uint64(len(m.shards))]
		sh.stats.sessionsOpened.Add(1)
		sh.stats.sessionsActive.Add(1)
		return &Session{
			m:       m,
			sess:    sess,
			shard:   sh,
			pool:    bm.pool,
			reply:   make(chan pushResult, 1),
			version: bm.version,
		}, nil
	}
}

// Push routes one frame through the stream's shard and waits for its
// verdict. When the shard mailbox stays full past the enqueue timeout it
// fails with ErrQueueFull instead of buffering without bound. Push is
// single-caller, like safemon.Session.
func (s *Session) Push(ctx context.Context, frame *safemon.Frame) (safemon.FrameVerdict, error) {
	m := s.m
	m.mu.RLock()
	if m.draining {
		m.mu.RUnlock()
		return safemon.FrameVerdict{}, ErrDraining
	}
	m.inflight.Add(1)
	m.mu.RUnlock()
	defer m.inflight.Done()

	s.trace = pushTrace{}
	t := pushTask{sess: s.sess, frame: frame, enq: time.Now(), reply: s.reply, stats: &s.shard.stats, trace: &s.trace}
	select {
	case s.shard.mailbox <- t:
	default:
		timer := time.NewTimer(m.cfg.EnqueueTimeout)
		select {
		case s.shard.mailbox <- t:
			timer.Stop()
		case <-ctx.Done():
			timer.Stop()
			return safemon.FrameVerdict{}, ctx.Err()
		case <-timer.C:
			s.shard.stats.queueFull.Add(1)
			return safemon.FrameVerdict{}, ErrQueueFull
		}
	}
	// The task is committed: the owning shard will process it, so the
	// reply always arrives (reply is buffered for the cancellation case
	// below, where nobody reads it before the next Push reuses it).
	select {
	case res := <-s.reply:
		return res.verdict, res.err
	case <-ctx.Done():
		// Drain the in-flight reply so the channel is clean for reuse.
		<-s.reply
		return safemon.FrameVerdict{}, ctx.Err()
	}
}

// Release detaches the stream. A healthy session (its last Push returned
// no error) goes back to the warm pool; a failed one is closed. Release is
// idempotent.
func (s *Session) Release(healthy bool) {
	if s.done {
		return
	}
	s.done = true
	s.shard.stats.sessionsActive.Add(-1)
	s.shard.stats.sessionsClosed.Add(1)
	s.m.active.Add(-1)
	if healthy {
		s.pool.Put(s.sess)
	} else {
		s.sess.Close()
	}
	s.sess = nil
}

// BeginDrain tells the shards to stop holding gather windows open: every
// partial micro-batch flushes immediately and subsequent batches dispatch
// with whatever is already queued. Attached streams keep pushing — this
// only removes the batching latency — so it is safe to call well before
// Close (the server's graceful-shutdown sequence does). Idempotent.
func (m *Manager) BeginDrain() {
	m.drainOnce.Do(func() { close(m.drainCh) })
}

// Close drains the manager: new Opens and Pushes fail with ErrDraining,
// in-flight pushes complete, then the shard goroutines exit and the warm
// pools are closed.
func (m *Manager) Close() {
	m.BeginDrain()
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.draining = true
	models := m.models
	m.mu.Unlock()
	m.inflight.Wait()
	close(m.quit)
	m.wg.Wait()
	for _, bm := range models {
		bm.pool.Close()
	}
}
