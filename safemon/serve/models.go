package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"repro/safemon"
	"repro/safemon/ledger"
)

// Model is one versioned fitted detector the service serves. Version is
// free-form operator metadata (a modelstore version, a git SHA, ...); the
// serving layer only reports and compares it.
type Model struct {
	// Detector is the fitted (or artifact-loaded) backend.
	Detector safemon.Detector
	// Version identifies the model artifact this detector came from.
	Version string
}

// ModelInfo is one row of GET /v1/models: which model version a backend is
// currently serving and since when.
type ModelInfo struct {
	Backend  string    `json:"backend"`
	Version  string    `json:"version"`
	LoadedAt time.Time `json:"loaded_at"`
}

// ErrNoLoader reports a reload request on a server constructed without a
// model loader (e.g. one that fits at startup instead of serving a store).
var ErrNoLoader = errors.New("serve: no model loader configured")

// backendModel is the manager's live state for one backend: the detector,
// its version metadata, and the warm session pool bound to exactly this
// model. Hot-swapping replaces the whole backendModel, never mutates one —
// in-flight streams keep their session (and therefore the old model) until
// they finish, while the retired pool stops recycling sessions.
type backendModel struct {
	det      safemon.Detector
	version  string
	loadedAt time.Time
	pool     *safemon.SessionPool
}

// Swap atomically replaces the manager's model set. New streams opened
// after Swap bind the new models; streams already attached keep pushing
// frames through their existing sessions against the old model and finish
// undisturbed (their Release then closes the session instead of pooling
// it, because the retired pool is closed). A backend whose version string
// is unchanged keeps its current detector and warm pool: versions name
// immutable artifacts, so a loader that re-decodes the same version (as
// the modelstore path does on every reload) must not cost a pool flush —
// publish changed models under a new version. The empty version and the
// "unversioned" placeholder name no immutable artifact and never match
// themselves; such models are replaced unless the detector pointer
// itself is unchanged. Swap fails with ErrDraining during shutdown.
func (m *Manager) Swap(models map[string]Model) error {
	if len(models) == 0 {
		return errors.New("serve: refusing to swap in an empty model set")
	}
	for name, mod := range models {
		if mod.Detector == nil {
			return fmt.Errorf("serve: nil detector for backend %q", name)
		}
	}
	now := time.Now().UTC()
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return ErrDraining
	}
	old := m.models
	next := make(map[string]*backendModel, len(models))
	for name, mod := range models {
		versioned := mod.Version != "" && mod.Version != "unversioned"
		if prev := old[name]; prev != nil &&
			(prev.det == mod.Detector || (versioned && prev.version == mod.Version)) {
			next[name] = prev // unchanged model: keep the warm pool
			continue
		}
		next[name] = &backendModel{
			det:      mod.Detector,
			version:  mod.Version,
			loadedAt: now,
			pool:     safemon.NewSessionPool(mod.Detector, m.cfg.MaxIdlePerBackend),
		}
	}
	m.models = next
	m.mu.Unlock()
	// Retire replaced pools outside the lock: idle sessions close now;
	// in-flight streams keep theirs until Release.
	for name, prev := range old {
		if next[name] != prev {
			prev.pool.Close()
		}
	}
	return nil
}

// Models snapshots the current model set, sorted by backend name.
func (m *Manager) Models() []ModelInfo {
	m.mu.RLock()
	out := make([]ModelInfo, 0, len(m.models))
	for name, bm := range m.models {
		out = append(out, ModelInfo{Backend: name, Version: bm.version, LoadedAt: bm.loadedAt})
	}
	m.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Backend < out[j].Backend })
	return out
}

// backendNames lists the currently served backends, sorted.
func (m *Manager) backendNames() []string {
	models := m.Models()
	out := make([]string, len(models))
	for i, mi := range models {
		out[i] = mi.Backend
	}
	return out
}

// has reports whether a backend is currently served.
func (m *Manager) has(backend string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.models[backend]
	return ok
}

// soleBackend returns the only served backend name, or "" when the model
// set has more than one entry.
func (m *Manager) soleBackend() string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if len(m.models) != 1 {
		return ""
	}
	for name := range m.models {
		return name
	}
	return ""
}

// Reload pulls a fresh model set through the configured Loader and swaps
// it in atomically; it backs POST /v1/models/reload and safemond's SIGHUP
// handler. Concurrent reloads are serialized. The returned infos describe
// the model set now serving.
func (s *Server) Reload(ctx context.Context) ([]ModelInfo, error) {
	if s.cfg.Loader == nil {
		return nil, ErrNoLoader
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	models, err := s.cfg.Loader(ctx)
	if err != nil {
		return nil, fmt.Errorf("serve: load models: %w", err)
	}
	prev := make(map[string]string)
	for _, mi := range s.manager.Models() {
		prev[mi.Backend] = mi.Version
	}
	if err := s.manager.Swap(models); err != nil {
		return nil, err
	}
	infos := s.manager.Models()
	for _, mi := range infos {
		s.log().Info("serving model", "backend", mi.Backend, "version", mi.Version)
		if prev[mi.Backend] != mi.Version {
			ledger.ModelSwap(s.cfg.Ledger, mi.Backend, mi.Version, prev[mi.Backend])
		}
	}
	return infos, nil
}

// handleModels answers GET /v1/models with the served model versions.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"models": s.manager.Models()})
}

// handleReload answers POST /v1/models/reload by swapping in the loader's
// current model set; the response lists the models now serving.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	infos, err := s.Reload(r.Context())
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrNoLoader):
			status = http.StatusNotImplemented
		case errors.Is(err, ErrDraining):
			status = http.StatusServiceUnavailable
		}
		http.Error(w, err.Error(), status)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"models": infos})
}
