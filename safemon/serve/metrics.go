package serve

// Per-stage frame instrumentation and the /metrics surface. Every
// counter /stats reports is exported through the same obs.Registry —
// either because the registry owns the instrument (the latency and
// stage histograms) or because the /metrics series is a read-function
// over the very atomic /stats snapshots (everything else) — so the two
// surfaces cannot drift.
//
// The per-frame pipeline decomposes into attributable stages:
//
//	decode  parse of the request record (excluding network wait)
//	queue   submit → shard mailbox dequeue
//	gather  dequeue → batch dispatch (batched managers only)
//	infer   dispatch → verdict (the model forward)
//	guard   mitigation policy engine step (guarded streams only)
//	ledger  event-ledger emit (ledgered servers only)
//	encode  response record serialize + write + flush
//
// Each admitted stream registers its stage histograms once (a map
// lookup after the first stream of a backend+codec) and then feeds them
// with plain atomic adds; a frame's stage breakdown is also offered to
// the slow-frame exemplar ring, whose fast-reject path is one atomic
// compare. The warm path allocates nothing.

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"repro/safemon/obs"
)

// Stage indices of the per-frame trace.
const (
	stageDecode = iota
	stageQueue
	stageGather
	stageInfer
	stageGuard
	stageLedger
	stageEncode
	numStages
)

// stageNames are the stage label values of safemon_frame_stage_seconds,
// in pipeline order.
var stageNames = [numStages]string{
	"decode", "queue", "gather", "infer", "guard", "ledger", "encode",
}

// slowStageNames names the slow-frame ring's stage slots (the trace's
// stages, unused tail empty). Shared by every exemplar.
var slowStageNames = func() [obs.SlowStages]string {
	var out [obs.SlowStages]string
	copy(out[:], stageNames[:])
	return out
}()

const stageHelp = "Per-frame stage latency by backend, codec and pipeline stage."

// serveMetrics is the server's telemetry hub: the registry every
// /stats counter is exported through, plus the slow-frame exemplar
// ring behind GET /v1/debug/slowframes.
type serveMetrics struct {
	reg  *obs.Registry
	slow *obs.SlowRing
	sid  atomic.Uint64 // stream ordinals for slow-frame context
}

// slowRingSize and slowRingTTL shape the slow-frame exemplar ring: the
// N slowest frames of the last TTL are kept.
const (
	slowRingSize = 32
	slowRingTTL  = 10 * time.Minute
)

func newServeMetrics(reg *obs.Registry) *serveMetrics {
	return &serveMetrics{reg: reg, slow: obs.NewSlowRing(slowRingSize, slowRingTTL)}
}

// streamTrace is one admitted stream's instrumentation bundle: the
// resolved stage histograms (nil where the stage cannot occur on this
// stream), the per-frame duration scratch, and the slow-ring context.
// It is allocated once at admission; per frame it is written and
// flushed without allocating.
type streamTrace struct {
	hists   [numStages]*obs.Histogram
	scratch [obs.SlowStages]int64
	meta    *obs.SlowMeta
	slow    *obs.SlowRing
}

// streamTrace resolves the stage histograms for one admitted stream.
// Gather only exists on batched managers, guard on policy streams,
// ledger on ledgered servers; their histograms stay nil otherwise so
// inactive stages record nothing.
func (m *serveMetrics) streamTrace(backend, codec, version, policyName string, batched, ledgered bool) *streamTrace {
	tr := &streamTrace{
		slow: m.slow,
		meta: &obs.SlowMeta{
			Session: m.sid.Add(1),
			Backend: backend, Codec: codec, Model: version, Policy: policyName,
			Stages: &slowStageNames,
		},
	}
	for i := 0; i < numStages; i++ {
		switch i {
		case stageGather:
			if !batched {
				continue
			}
		case stageGuard:
			if policyName == "" {
				continue
			}
		case stageLedger:
			if !ledgered {
				continue
			}
		}
		tr.hists[i] = m.reg.Histogram("safemon_frame_stage_seconds", stageHelp,
			obs.Label{Key: "backend", Value: backend},
			obs.Label{Key: "codec", Value: codec},
			obs.Label{Key: "stage", Value: stageNames[i]})
	}
	return tr
}

// setStage records one stage's duration for the current frame.
func (tr *streamTrace) setStage(stage int, ns int64) { tr.scratch[stage] = ns }

// observe flushes the current frame: every active stage lands in its
// histogram, and the frame is offered to the slow-frame ring. endNS is
// the frame's completion wall clock (UnixNano); frame its stream index.
func (tr *streamTrace) observe(frame int, endNS int64) {
	var total int64
	for i := 0; i < numStages; i++ {
		ns := tr.scratch[i]
		total += ns
		if h := tr.hists[i]; h != nil {
			h.ObserveNS(ns)
		}
	}
	tr.slow.Offer(total, endNS, int64(frame), &tr.scratch, tr.meta)
}

// registerMetrics exports every server-level /stats counter through the
// registry (the per-shard counters were registered by the manager).
func (s *Server) registerMetrics() {
	reg := s.metrics.reg
	reg.GaugeFunc("safemon_uptime_seconds",
		"Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	reg.CounterFunc("safemon_streams_total",
		"Single-session /v1/stream connections admitted, by codec.",
		s.codec.jsonStreams.Load, obs.Label{Key: "codec", Value: "json"})
	reg.CounterFunc("safemon_streams_total",
		"Single-session /v1/stream connections admitted, by codec.",
		s.codec.binaryStreams.Load, obs.Label{Key: "codec", Value: "binary"})
	reg.CounterFunc("safemon_mux_connections_total",
		"Multiplexed /v1/mux connections admitted.", s.codec.muxConns.Load)
	reg.CounterFunc("safemon_mux_sessions_total",
		"Logical sessions opened over mux connections.", s.codec.muxSessions.Load)
	reg.CounterFunc("safemon_guarded_streams_total",
		"Streams opened with a mitigation policy.", s.mitigation.guardedStreams.Load)
	for _, gc := range []struct {
		action string
		fn     func() uint64
	}{
		{"alert", s.mitigation.alerts.Load},
		{"warn", s.mitigation.warns.Load},
		{"pause", s.mitigation.pauses.Load},
		{"safe_stop", s.mitigation.safeStops.Load},
		{"retract", s.mitigation.retracts.Load},
		{"release", s.mitigation.releases.Load},
	} {
		reg.CounterFunc("safemon_guard_transitions_total",
			"Guard mitigation transitions, by action edge.",
			gc.fn, obs.Label{Key: "action", Value: gc.action})
	}
	reg.CounterFunc("safemon_slow_frames_total",
		"Frames admitted to the slow-frame exemplar ring.", s.metrics.slow.Admitted)
	reg.GaugeCollector("safemon_model_loaded_seconds",
		"Unix time each served model version was loaded.",
		func(emit obs.Emit) {
			for _, mi := range s.manager.Models() {
				emit(float64(mi.LoadedAt.Unix()),
					obs.Label{Key: "backend", Value: mi.Backend},
					obs.Label{Key: "version", Value: mi.Version})
			}
		})
	if app := s.cfg.Ledger; app != nil {
		reg.GaugeFunc("safemon_ledger_queue_depth_total",
			"Event-ledger emit-queue depth.",
			func() float64 { return float64(app.Stats().Queue) })
		reg.GaugeFunc("safemon_ledger_queue_capacity_total",
			"Event-ledger emit-queue bound.",
			func() float64 { return float64(app.Stats().QueueCap) })
		reg.CounterFunc("safemon_ledger_appended_total",
			"Events durably handed to the ledger store.",
			func() uint64 { return app.Stats().Appended })
		reg.CounterFunc("safemon_ledger_batches_total",
			"Store Append calls that carried ledger events.",
			func() uint64 { return app.Stats().Batches })
		reg.CounterFunc("safemon_ledger_dropped_total",
			"Ledger events lost to a full queue or unencodable payload.",
			func() uint64 { return app.Stats().Dropped })
		reg.CounterFunc("safemon_ledger_errors_total",
			"Ledger store Append failures.",
			func() uint64 { return app.Stats().Errors })
		reg.GaugeFunc("safemon_ledger_bytes",
			"Ledger store footprint in bytes.",
			func() float64 { return float64(app.Stats().Bytes) })
		reg.GaugeFunc("safemon_ledger_segments_total",
			"Ledger store segment count.",
			func() float64 { return float64(app.Stats().Segments) })
		reg.CounterFunc("safemon_ledger_last_seq_total",
			"Highest ledger sequence number assigned.",
			func() uint64 { return app.Stats().LastSeq })
	}
}

// Metrics returns the registry behind GET /metrics, so embedders can
// mount it themselves or register additional series.
func (s *Server) Metrics() *obs.Registry { return s.metrics.reg }

// handleReadyz is the readiness probe: 200 while accepting new streams,
// 503 once BeginDrain has run — load balancers stop routing while
// in-flight streams finish. /healthz (liveness) behaves identically
// today but is a distinct endpoint so the two probes can diverge.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

// SlowFrameInfo is one row of GET /v1/debug/slowframes: a recent slow
// frame with its full stage breakdown and stream context, slowest
// first.
type SlowFrameInfo struct {
	// TotalMS is the frame's summed stage time in milliseconds.
	TotalMS float64 `json:"total_ms"`
	// When is the frame's completion time.
	When time.Time `json:"when"`
	// Frame is the frame's index within its stream; Session the
	// server-assigned stream ordinal.
	Frame   int64  `json:"frame"`
	Session uint64 `json:"session"`
	// Backend, Codec, Model and Policy identify what served the frame.
	Backend string `json:"backend"`
	Codec   string `json:"codec"`
	Model   string `json:"model"`
	Policy  string `json:"policy,omitempty"`
	// StageMS are the per-stage durations in milliseconds, keyed by
	// stage name.
	StageMS map[string]float64 `json:"stage_ms"`
}

// SlowFrames snapshots the slow-frame exemplar ring, slowest first (the
// /v1/debug/slowframes payload).
func (s *Server) SlowFrames() []SlowFrameInfo {
	snap := s.metrics.slow.Snapshot()
	out := make([]SlowFrameInfo, 0, len(snap))
	for _, f := range snap {
		info := SlowFrameInfo{
			TotalMS: float64(f.TotalNS) / 1e6,
			When:    time.Unix(0, f.WhenNS).UTC(),
			Frame:   f.Frame,
			Session: f.Meta.Session,
			Backend: f.Meta.Backend,
			Codec:   f.Meta.Codec,
			Model:   f.Meta.Model,
			Policy:  f.Meta.Policy,
			StageMS: make(map[string]float64, numStages),
		}
		if f.Meta.Stages != nil {
			for i, name := range f.Meta.Stages {
				if name != "" {
					info.StageMS[name] = float64(f.StageNS[i]) / 1e6
				}
			}
		}
		out = append(out, info)
	}
	return out
}

func (s *Server) handleSlowFrames(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"slow_frames": s.SlowFrames()})
}

// OpsHandler returns the operational handler safemond serves on its
// -ops-addr listener, separate from the traffic port: /metrics, the
// health/readiness probes, the slow-frame exemplars, and net/http/pprof
// under /debug/pprof/.
func (s *Server) OpsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", s.metrics.reg.Handler())
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/v1/debug/slowframes", s.handleSlowFrames)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
