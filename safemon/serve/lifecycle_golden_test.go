package serve

import (
	"bytes"
	"context"
	"testing"

	"repro/safemon"
)

// TestGoldenArtifactRoundTripServed completes the per-backend golden
// round-trip suite (Fit → Save → Load → byte-identical verdicts): the
// Runner and Session-replay legs live in safemon's artifact tests; this
// test covers the live-safemond leg. For every backend, a daemon serving
// the artifact-loaded detector must stream verdicts byte-identical to the
// fitted detector's offline Runner — proving a safemond restarted from
// artifacts is indistinguishable on the wire from the one that trained
// in-process.
func TestGoldenArtifactRoundTripServed(t *testing.T) {
	fold := testFold(t)
	traj := fold.Test[0]
	ctx := context.Background()

	for _, backend := range []string{"context-aware", "lookahead", "monolithic", "envelope", "skipchain", "sdsdl"} {
		t.Run(backend, func(t *testing.T) {
			det := fittedDetector(t, backend)
			var art bytes.Buffer
			if err := det.Save(&art); err != nil {
				t.Fatalf("save: %v", err)
			}
			loaded, err := safemon.LoadDetector(bytes.NewReader(art.Bytes()))
			if err != nil {
				t.Fatalf("load: %v", err)
			}

			ref, err := (&safemon.Runner{Detector: det, Workers: 1}).Traces(ctx, []*safemon.Trajectory{traj})
			if err != nil {
				t.Fatal(err)
			}
			want := wireLines(t, ref[0].Verdicts)

			_, client := newTestService(t, map[string]safemon.Detector{backend: loaded}, ManagerConfig{})
			// Twice, so the second stream rides a pooled session of the
			// loaded detector.
			for pass := 0; pass < 2; pass++ {
				streamed, err := client.StreamTrajectory(ctx, backend, traj)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(want, wireLines(t, streamed)) {
					t.Fatalf("pass %d: artifact-served verdicts differ from fitted Runner", pass)
				}
			}
		})
	}
}
