package serve

// Warm-path benchmarks for the instrumented frame loop: the exact
// per-frame work handleStream does after admission — binary record
// decode, session push through the sharded manager, ledger emit, guard
// step, verdict encode — including the full stage-histogram and
// slow-ring telemetry, with the HTTP transport replaced by in-memory
// readers so the measurement is the server's own work.
// scripts/benchguard.sh holds BenchmarkServeStreamWarm to 0 allocs/op:
// the telemetry must ride the zero-allocation contract, not erode it.

import (
	"bytes"
	"context"
	"io"
	"testing"
	"time"

	"repro/safemon"
	"repro/safemon/guard"
	"repro/safemon/ledger"
)

// repeatReader serves the same encoded record bytes forever, so the
// decode side of the warm loop never sees EOF and never reallocates.
type repeatReader struct {
	data []byte
	off  int
}

func (r *repeatReader) Read(p []byte) (int, error) {
	if r.off == len(r.data) {
		r.off = 0
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// warmStream is one admitted binary stream's warm-path state, built the
// same way handleStream builds it.
type warmStream struct {
	srv  *Server
	sess *Session
	tr   *streamTrace
	sg   *streamGuard
	rec  *ledger.Recorder
	conn *binStream
	// frame is hoisted like handleStream's loop frame: its pointer rides
	// the shard mailbox, so a per-step variable would escape and allocate.
	frame safemon.Frame
}

// newWarmStream stands up a server and admits one binary stream against
// it. guarded attaches the test policy (fed safe frames, so the engine
// steps without transitioning); ledgered records into an in-memory
// event ledger.
func newWarmStream(tb testing.TB, guarded, ledgered bool) *warmStream {
	tb.Helper()
	det := fittedDetector(tb, "envelope")
	cfg := Config{Detectors: map[string]safemon.Detector{"envelope": det}}
	policyName := ""
	if guarded {
		cfg.Policies = []guard.Policy{testGuardPolicy()}
		policyName = testGuardPolicy().Name
	}
	if ledgered {
		app := ledger.NewAppender(ledger.NewMemoryStore(0), ledger.Options{})
		tb.Cleanup(func() { app.Close() })
		cfg.Ledger = app
	}
	srv, err := NewServer(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(srv.Shutdown)

	if err := srv.manager.Reserve(); err != nil {
		tb.Fatal(err)
	}
	sess, err := srv.manager.Open("envelope", nil)
	if err != nil {
		srv.manager.Unreserve()
		tb.Fatal(err)
	}
	tb.Cleanup(func() { sess.Release(true) })

	ws := &warmStream{srv: srv, sess: sess}
	if guarded {
		ws.sg, err = newStreamGuard(testGuardPolicy(), &srv.mitigation)
		if err != nil {
			tb.Fatal(err)
		}
	}
	ws.rec = ledger.NewRecorder(cfg.Ledger, "envelope", sess.Version(), policyName)
	ws.rec.Start(nil)
	tb.Cleanup(func() { ws.rec.End(0, "eof") })
	ws.tr = srv.metrics.streamTrace("envelope", "binary", sess.Version(), policyName,
		false, ledgered)

	// One in-envelope frame, encoded once and replayed forever.
	safe := testFold(tb).Train[0].Frames[10]
	var buf bytes.Buffer
	bw := newBinWriter(&buf)
	if err := bw.writeFrame(0, &safe); err != nil {
		tb.Fatal(err)
	}
	ws.conn = newBinStream(&repeatReader{data: buf.Bytes()}, io.Discard, func() {})
	tb.Cleanup(ws.conn.release)
	return ws
}

// step runs one frame through the instrumented warm path — the body of
// handleStream's loop.
func (ws *warmStream) step(ctx context.Context, frameIdx int) error {
	var msg ClientMsg
	if err := ws.conn.next(&msg); err != nil {
		return err
	}
	copy(ws.frame[:], msg.Frame)
	ws.tr.setStage(stageDecode, ws.conn.decodeNS())
	v, err := ws.sess.Push(ctx, &ws.frame)
	if err != nil {
		return err
	}
	ws.tr.setStage(stageQueue, ws.sess.trace.queueNS)
	ws.tr.setStage(stageGather, ws.sess.trace.gatherNS)
	ws.tr.setStage(stageInfer, ws.sess.trace.inferNS)
	wire := WireVerdict(v)
	t0 := time.Now()
	ws.rec.Verdict(v, &ws.frame)
	t1 := time.Now()
	t2 := t1
	if ws.sg != nil {
		if act := ws.sg.step(wire); act != nil {
			ws.rec.Action(ws.sg.decision())
			ws.conn.action(act)
		}
		t2 = time.Now()
	}
	ws.conn.verdict(&wire)
	end := time.Now()
	ws.tr.setStage(stageLedger, t1.Sub(t0).Nanoseconds())
	ws.tr.setStage(stageGuard, t2.Sub(t1).Nanoseconds())
	ws.tr.setStage(stageEncode, end.Sub(t2).Nanoseconds())
	ws.tr.observe(frameIdx, end.UnixNano())
	return nil
}

// stepBare is the same frame path with every telemetry touch removed:
// the uninstrumented baseline BENCH_PR10.json's overhead row is the
// delta against.
func (ws *warmStream) stepBare(ctx context.Context) error {
	var msg ClientMsg
	if err := ws.conn.next(&msg); err != nil {
		return err
	}
	copy(ws.frame[:], msg.Frame)
	v, err := ws.sess.Push(ctx, &ws.frame)
	if err != nil {
		return err
	}
	wire := WireVerdict(v)
	ws.rec.Verdict(v, &ws.frame)
	if ws.sg != nil {
		if act := ws.sg.step(wire); act != nil {
			ws.rec.Action(ws.sg.decision())
			ws.conn.action(act)
		}
	}
	ws.conn.verdict(&wire)
	return nil
}

// BenchmarkServeStreamWarm is the instrumented warm path, gated by
// scripts/benchguard.sh at 0 allocs/op.
func BenchmarkServeStreamWarm(b *testing.B) {
	for _, bc := range []struct {
		name              string
		guarded, ledgered bool
	}{
		{"binary", false, false},
		{"binary-guarded", true, false},
		{"binary-ledgered", false, true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			ws := newWarmStream(b, bc.guarded, bc.ledgered)
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ws.step(ctx, i); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServeStreamUninstrumented is the identical frame path with
// the telemetry stripped; the ServeStreamWarm delta is the cost of the
// instrumentation itself.
func BenchmarkServeStreamUninstrumented(b *testing.B) {
	for _, bc := range []struct {
		name              string
		guarded, ledgered bool
	}{
		{"binary", false, false},
		{"binary-guarded", true, false},
		{"binary-ledgered", false, true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			ws := newWarmStream(b, bc.guarded, bc.ledgered)
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ws.stepBare(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestServeWarmPathZeroAlloc pins the instrumented warm path's
// zero-allocation contract directly (benchguard enforces it in CI; this
// fails fast under plain go test). The race detector's instrumentation
// allocates, so the measurement only runs without it.
func TestServeWarmPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation measurement is meaningless under -race")
	}
	ws := newWarmStream(t, true, true)
	ctx := context.Background()
	// Warm every pooled buffer and the slow ring's admission path.
	for i := 0; i < 64; i++ {
		if err := ws.step(ctx, i); err != nil {
			t.Fatal(err)
		}
	}
	frame := 64
	allocs := testing.AllocsPerRun(200, func() {
		if err := ws.step(ctx, frame); err != nil {
			t.Fatal(err)
		}
		frame++
	})
	if allocs != 0 {
		t.Errorf("instrumented warm path allocates %.1f allocs/frame, want 0", allocs)
	}
}
