package serve

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/testutil"
	"repro/safemon"
)

// TestServeBatchedVerdictsRace soaks the micro-batching shard loop under
// -race: many concurrent streams over batching shards — nn backends that
// share batched forwards, an envelope stream that must take the fallback
// path inside the same batches, and a few mid-stream cancellations — with
// every completed stream's verdicts byte-equal to the offline replay, a
// full drain, and no leaked goroutines.
func TestServeBatchedVerdictsRace(t *testing.T) {
	fold := testFold(t)
	ca := fittedDetector(t, "context-aware")
	env := fittedDetector(t, "envelope")

	ctx := context.Background()
	refs := map[string][]byte{}
	for name, det := range map[string]safemon.Detector{"context-aware": ca, "envelope": env} {
		trace, err := det.Run(ctx, fold.Test[0])
		if err != nil {
			t.Fatal(err)
		}
		refs[name] = wireLines(t, trace.Verdicts)
	}

	baseline := runtime.NumGoroutine()
	srv, err := NewServer(Config{
		Detectors: map[string]safemon.Detector{"context-aware": ca, "envelope": env},
		Manager: ManagerConfig{Shards: 2, MailboxDepth: 32}.
			WithMaxBatch(8).WithBatchWindow(200 * time.Microsecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	client := &Client{BaseURL: ts.URL, HTTPClient: ts.Client()}

	traj := fold.Test[0]
	const sessions = 16
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			backend := "context-aware"
			if i%4 == 3 {
				backend = "envelope"
			}
			if i%5 == 4 {
				// Cancel mid-stream: committed batch tasks must still
				// deliver and the stream must tear down cleanly.
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				st, err := client.Open(ctx, backend, traj.Gestures)
				if err != nil {
					errs <- err
					return
				}
				defer st.Close()
				for j := 0; j < traj.Len()/2; j++ {
					if err := st.Send(&traj.Frames[j]); err != nil {
						return
					}
					if _, err := st.Recv(); err != nil {
						return
					}
				}
				cancel()
				return
			}
			got, err := client.StreamTrajectory(context.Background(), backend, traj)
			if err != nil {
				errs <- fmt.Errorf("session %d (%s): %w", i, backend, err)
				return
			}
			if !bytes.Equal(refs[backend], wireLines(t, got)) {
				errs <- fmt.Errorf("session %d (%s): batched verdicts diverge from offline replay", i, backend)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	ts.Close()
	srv.Shutdown()
	testutil.WaitGoroutines(t, baseline, 4)

	if snap := srv.Stats(); snap.SessionsActive != 0 {
		t.Errorf("sessions still active after drain: %+v", snap)
	}
}

// TestBatchDrainFlushesPartialBatch proves BeginDrain releases a partial
// micro-batch immediately: with a gather window far longer than the test
// budget and a batch that can never fill, pushes complete as soon as the
// manager starts draining rather than waiting out the window.
func TestBatchDrainFlushesPartialBatch(t *testing.T) {
	det := fittedDetector(t, "envelope")
	fold := testFold(t)
	traj := fold.Test[0]

	m, err := NewManager(map[string]safemon.Detector{"envelope": det},
		ManagerConfig{Shards: 1}.WithMaxBatch(8).WithBatchWindow(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	const streams = 3
	sessions := make([]*Session, streams)
	for i := range sessions {
		if err := m.Reserve(); err != nil {
			t.Fatal(err)
		}
		s, err := m.Open("envelope", traj.Gestures)
		if err != nil {
			m.Unreserve()
			t.Fatal(err)
		}
		sessions[i] = s
		defer s.Release(true)
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, streams)
	for _, s := range sessions {
		wg.Add(1)
		go func(s *Session) {
			defer wg.Done()
			if _, err := s.Push(context.Background(), &traj.Frames[0]); err != nil {
				errs <- err
			}
		}(s)
	}
	// Let the pushes land in the gather window, then start draining.
	time.Sleep(50 * time.Millisecond)
	m.BeginDrain()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("pushes took %v: BeginDrain did not flush the partial batch before the 10s window", elapsed)
	}

	// Draining only collapses gather windows — attached streams must still
	// push successfully (and now without batching delay).
	if _, err := sessions[0].Push(context.Background(), &traj.Frames[1]); err != nil {
		t.Fatalf("push after BeginDrain: %v", err)
	}
}

// TestBatchingStatsSection exercises the typed /stats batching section end
// to end: a full deterministic batch (nn sessions sharing a forward plus
// envelope fallbacks) must surface in the client-decoded BatchingSnapshot.
func TestBatchingStatsSection(t *testing.T) {
	ca := fittedDetector(t, "context-aware")
	env := fittedDetector(t, "envelope")
	fold := testFold(t)
	traj := fold.Test[0]

	_, client := newTestService(t,
		map[string]safemon.Detector{"context-aware": ca, "envelope": env},
		ManagerConfig{Shards: 1}.WithMaxBatch(4).WithBatchWindow(2*time.Second))

	// Four concurrent single-frame pushes on one shard with MaxBatch 4:
	// the gather only dispatches when the batch fills (the window is far
	// longer than four HTTP round-trip starts), so exactly one batch of
	// four runs, two of its frames via the envelope fallback path.
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			backend := "context-aware"
			if i%2 == 1 {
				backend = "envelope"
			}
			st, err := client.Open(context.Background(), backend, traj.Gestures)
			if err != nil {
				errs <- err
				return
			}
			defer st.Close()
			if err := st.Send(&traj.Frames[0]); err != nil {
				errs <- err
				return
			}
			if _, err := st.Recv(); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	snap, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b := snap.Batching
	if b.Batches != 1 {
		t.Errorf("Batches = %d, want 1", b.Batches)
	}
	if b.BatchedFrames != 4 {
		t.Errorf("BatchedFrames = %d, want 4", b.BatchedFrames)
	}
	if b.MeanBatchSize != 4 {
		t.Errorf("MeanBatchSize = %v, want 4", b.MeanBatchSize)
	}
	if b.Fallbacks != 2 {
		t.Errorf("Fallbacks = %d, want 2 (the envelope streams)", b.Fallbacks)
	}
	if b.WindowTimeouts != 0 {
		t.Errorf("WindowTimeouts = %d, want 0 (batch dispatched on fill)", b.WindowTimeouts)
	}

	// The unbatched manager keeps an all-zero section (shape regression:
	// the field must decode, not be omitted).
	_, client2 := newTestService(t,
		map[string]safemon.Detector{"envelope": env}, ManagerConfig{Shards: 1})
	if _, err := client2.StreamTrajectory(context.Background(), "envelope", traj); err != nil {
		t.Fatal(err)
	}
	snap2, err := client2.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Batching != (BatchingSnapshot{}) {
		t.Errorf("unbatched manager reports batching activity: %+v", snap2.Batching)
	}
}
