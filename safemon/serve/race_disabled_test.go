//go:build !race

package serve

// raceEnabled reports whether this test binary was built with the race
// detector, whose instrumentation inflates allocation measurements.
const raceEnabled = false
