package serve

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"
)

// fuzzSeedRecord encodes one record for the fuzz seed corpus, panicking
// on failure (seeds are built from valid records only).
func fuzzSeedRecord(rec BinaryRecord) []byte {
	b, err := AppendBinaryRecord(nil, &rec)
	if err != nil {
		panic(err)
	}
	return b
}

// FuzzDecodeBinaryRecord fuzzes the binary codec the same way
// FuzzDecodeRecord fuzzes the NDJSON parser: arbitrary bytes through
// DecodeBinaryRecord (single record) and through binReader (the
// streaming path with the per-record cap). The decoder must never panic,
// must never consume more bytes than it was given, and every record it
// accepts must re-encode to exactly the bytes it consumed — the binary
// codec is bijective on valid records.
func FuzzDecodeBinaryRecord(f *testing.F) {
	var frame [38]float64
	for i := range frame {
		frame[i] = 0.25 * float64(i)
	}
	f.Add(fuzzSeedRecord(BinaryRecord{Type: BinFrame, SID: 1, Frame: frame}))
	f.Add(fuzzSeedRecord(BinaryRecord{Type: BinLabels, Labels: []int{1, 2, 2, 3, -1}}))
	f.Add(fuzzSeedRecord(BinaryRecord{Type: BinVerdict, SID: 9, Verdict: VerdictMsg{I: 12, G: 3, Score: 0.75, Unsafe: true}}))
	f.Add(fuzzSeedRecord(BinaryRecord{Type: BinAction, SID: 2, Action: ActionMsg{I: 8, AlertFrame: 6, Score: 2.5, Level: "safe-stop", Policy: "stop-fast"}}))
	f.Add(fuzzSeedRecord(BinaryRecord{Type: BinDone, Frames: 812}))
	f.Add(fuzzSeedRecord(BinaryRecord{Type: BinError, Code: 429, Message: "queue full"}))
	f.Add(fuzzSeedRecord(BinaryRecord{Type: BinOpen, SID: 3, Backend: "envelope", Policy: "stop-fast", Labels: []int{1, 2}}))
	f.Add(fuzzSeedRecord(BinaryRecord{Type: BinOpened, SID: 3, Version: "v0001"}))
	f.Add(fuzzSeedRecord(BinaryRecord{Type: BinClose, SID: 3}))
	// Malformed shapes: truncation, bad type, non-finite frame, over-cap
	// length, trailing garbage, back-to-back records.
	f.Add([]byte{})
	f.Add([]byte{byte(BinFrame), 0, 0, 0})
	f.Add(fuzzSeedRecord(BinaryRecord{Type: BinFrame, Frame: frame})[:40])
	f.Add(appendBinHeader(nil, BinFrame, 1, maxRecordBytes+1))
	f.Add(encodeRaw(0xFF, 1, []byte{1, 2, 3}))
	f.Add(func() []byte {
		p := make([]byte, binFramePayload)
		binary.LittleEndian.PutUint64(p, math.Float64bits(math.NaN()))
		return encodeRaw(BinFrame, 1, p)
	}())
	f.Add(append(fuzzSeedRecord(BinaryRecord{Type: BinClose}), fuzzSeedRecord(BinaryRecord{Type: BinDone, Frames: 3})...))

	f.Fuzz(func(t *testing.T, data []byte) {
		var rec BinaryRecord
		n, err := DecodeBinaryRecord(data, &rec)
		if n < 0 || n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		if err == nil {
			re, err := AppendBinaryRecord(nil, &rec)
			if err != nil {
				t.Fatalf("accepted record does not re-encode: %v", err)
			}
			if !bytes.Equal(re, data[:n]) {
				t.Fatalf("re-encoded record differs from consumed bytes:\n in  %x\n out %x", data[:n], re)
			}
		}

		// Streaming decode: bounded records, clean termination, no panic.
		br := newBinReader(bytes.NewReader(data))
		defer br.release()
		for i := 0; ; i++ {
			_, err := br.next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil && !errors.Is(err, errBadPayload) {
				break // framing error terminates the stream
			}
			// Payload errors leave the stream aligned; keep reading.
			if i > len(data) {
				t.Fatal("binary reader yielded more records than input bytes")
			}
		}
	})
}
