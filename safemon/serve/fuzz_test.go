package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"strings"
	"testing"
)

// FuzzDecodeRecord fuzzes the NDJSON request parser end to end: the raw
// input is fed both through DecodeRecord (single line) and through
// recordReader (the streaming path the server uses, including the
// per-record size cap). Whatever the bytes are — malformed JSON, truncated
// records, nested garbage, oversized lines — the parser must never panic,
// and every record it does accept must survive a marshal round trip.
func FuzzDecodeRecord(f *testing.F) {
	f.Add([]byte(`{"labels":[1,2,2,3]}`))
	f.Add([]byte(`{"frame":[0.1,0.2,0.3]}`))
	f.Add([]byte(`{"labels":[1],"frame":[0.5]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`  {"frame":[]}  `))
	f.Add([]byte(`{"frame":[1e309]}`))
	f.Add([]byte(`{"frame":[null]}`))
	f.Add([]byte(`{"labels":{"a":1}}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"frame":[0.1`))
	f.Add([]byte("{\"frame\":[0.1]}\n{\"frame\":[0.2]}\n"))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`"frame"`))
	f.Add(bytes.Repeat([]byte(`{"frame":[1.5]}`+"\n"), 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Single-record decode: error or round-trippable record, no panic.
		var msg ClientMsg
		if err := DecodeRecord(data, &msg); err == nil {
			if _, err := json.Marshal(msg); err != nil {
				t.Fatalf("accepted record does not re-marshal: %v", err)
			}
		}

		// Streaming decode: the reader must terminate with io.EOF or a
		// parse error within a bounded number of records and never panic.
		dec := newRecordReader(bytes.NewReader(data))
		for i := 0; ; i++ {
			var rec ClientMsg
			err := dec.next(&rec)
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				break // malformed record terminates the stream; fine
			}
			if i > len(data) {
				t.Fatalf("record reader yielded more records than input bytes")
			}
		}
	})
}

// TestRecordReaderSizeCap pins the 1 MB per-record cap: a line just under
// the cap parses (or fails as plain JSON), a line over it fails with
// errRecordTooLarge instead of buffering without bound, and records after
// an empty line still decode.
func TestRecordReaderSizeCap(t *testing.T) {
	// A real, valid labels header close to the cap.
	big := `{"labels":[` + strings.Repeat("1,", 120000) + `1]}`
	if len(big) >= maxRecordBytes {
		t.Fatalf("test header unexpectedly over the cap: %d", len(big))
	}
	dec := newRecordReader(strings.NewReader(big + "\n"))
	var msg ClientMsg
	if err := dec.next(&msg); err != nil {
		t.Fatalf("near-cap record rejected: %v", err)
	}
	if len(msg.Labels) != 120001 {
		t.Fatalf("near-cap record decoded %d labels, want 120001", len(msg.Labels))
	}

	// One byte over the cap must fail with the explicit cap error.
	over := strings.Repeat("x", maxRecordBytes+1)
	dec = newRecordReader(strings.NewReader(over))
	err := dec.next(&msg)
	if !errors.Is(err, errRecordTooLarge) {
		t.Fatalf("oversize record error = %v, want errRecordTooLarge", err)
	}

	// Empty and whitespace-only lines are skipped, not records.
	dec = newRecordReader(strings.NewReader("\n   \n{\"frame\":[1.5]}\n"))
	if err := dec.next(&msg); err != nil {
		t.Fatalf("record after blank lines: %v", err)
	}
	if len(msg.Frame) != 1 || msg.Frame[0] != 1.5 {
		t.Fatalf("record after blank lines decoded %+v", msg)
	}
	if err := dec.next(&msg); !errors.Is(err, io.EOF) {
		t.Fatalf("stream end = %v, want io.EOF", err)
	}

	// A partial final record (client hung up mid-line) must decode as a
	// JSON error, not hang or panic.
	dec = newRecordReader(strings.NewReader(`{"frame":[0.1,0.2`))
	if err := dec.next(&msg); err == nil {
		t.Fatal("truncated record accepted")
	}
}
