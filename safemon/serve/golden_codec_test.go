package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"testing"

	"repro/safemon"
)

// TestGoldenVerdictsAcrossCodecs is the cross-codec leg of the golden
// suite: for every registered backend, one fixed trajectory must yield
// verdicts exactly == across the offline Runner, the NDJSON stream, the
// binary stream and a multiplexed binary session. The binary codec
// carries float64 bits verbatim, so equality is exact, not approximate —
// any divergence is a codec bug, never rounding.
func TestGoldenVerdictsAcrossCodecs(t *testing.T) {
	fold := testFold(t)
	traj := fold.Test[0]
	ctx := context.Background()

	for _, backend := range []string{"context-aware", "lookahead", "monolithic", "envelope", "skipchain", "sdsdl", "cascade"} {
		t.Run(backend, func(t *testing.T) {
			det := fittedDetector(t, backend)
			traces, err := (&safemon.Runner{Detector: det, Workers: 1}).Traces(ctx, []*safemon.Trajectory{traj})
			if err != nil {
				t.Fatal(err)
			}
			ref := traces[0].Verdicts

			_, client := newTestService(t, map[string]safemon.Detector{backend: det}, ManagerConfig{})

			runs := map[string][]safemon.FrameVerdict{}
			jsonVerdicts, err := client.StreamTrajectory(ctx, backend, traj)
			if err != nil {
				t.Fatal(err)
			}
			runs["ndjson"] = jsonVerdicts

			bc := *client
			bc.Codec = "binary"
			binVerdicts, err := bc.StreamTrajectory(ctx, backend, traj)
			if err != nil {
				t.Fatal(err)
			}
			runs["binary"] = binVerdicts

			m, err := client.OpenMux(ctx)
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			muxVerdicts, _, err := m.StreamTrajectory(ctx, backend, "", traj)
			if err != nil {
				t.Fatal(err)
			}
			runs["binary-mux"] = muxVerdicts

			for name, got := range runs {
				if len(got) != len(ref) {
					t.Fatalf("%s: %d verdicts, Runner has %d", name, len(got), len(ref))
				}
				for i := range got {
					if got[i] != ref[i] {
						t.Fatalf("%s verdict %d: got %+v, Runner %+v", name, i, got[i], ref[i])
					}
				}
			}
			// And the byte-identity contract still holds through the wire
			// type for every transport.
			refLines := wireLines(t, ref)
			for name, got := range runs {
				if !bytes.Equal(refLines, wireLines(t, got)) {
					t.Fatalf("%s: wire bytes differ from Runner", name)
				}
			}
		})
	}
}

// TestGoldenGuardedAcrossCodecs extends the cross-codec contract to
// guarded streams: verdicts and guard action records must agree exactly
// across NDJSON, binary and multiplexed transports running the same
// policy over the same frames.
func TestGoldenGuardedAcrossCodecs(t *testing.T) {
	_, client := newGuardedService(t, testGuardPolicy())
	ctx := context.Background()
	safe, wild := guardProbeFrames(t)
	var frames []safemon.Frame
	for i := 0; i < 5; i++ {
		frames = append(frames, safe)
	}
	for i := 0; i < 4; i++ {
		frames = append(frames, wild)
	}
	for i := 0; i < 5; i++ {
		frames = append(frames, safe)
	}

	type run struct {
		verdicts []safemon.FrameVerdict
		actions  []ActionMsg
	}
	drive := func(send func(*safemon.Frame) error, recv func() (safemon.FrameVerdict, error),
		closeSend func() error, actions func() []ActionMsg) (run, error) {
		var out run
		for i := range frames {
			if err := send(&frames[i]); err != nil {
				return out, fmt.Errorf("send %d: %w", i, err)
			}
			v, err := recv()
			if err != nil {
				return out, fmt.Errorf("recv %d: %w", i, err)
			}
			out.verdicts = append(out.verdicts, v)
		}
		if err := closeSend(); err != nil {
			return out, err
		}
		if _, err := recv(); err != io.EOF {
			return out, fmt.Errorf("want done, got %v", err)
		}
		out.actions = actions()
		return out, nil
	}

	runs := map[string]run{}
	for _, codec := range []string{"json", "binary"} {
		c := *client
		if codec == "binary" {
			c.Codec = "binary"
		}
		st, err := c.OpenGuarded(ctx, "envelope", "stop-fast", nil)
		if err != nil {
			t.Fatal(err)
		}
		out, err := drive(st.Send, st.Recv, st.CloseSend, st.Actions)
		st.Close()
		if err != nil {
			t.Fatalf("%s: %v", codec, err)
		}
		runs[codec] = out
	}
	m, err := client.OpenMux(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	st, err := m.Open(ctx, "envelope", "stop-fast", nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := drive(st.Send, st.Recv, st.CloseSend, st.Actions)
	if err != nil {
		t.Fatalf("binary-mux: %v", err)
	}
	runs["binary-mux"] = out

	ref := runs["json"]
	if len(ref.actions) == 0 {
		t.Fatal("guarded reference run produced no actions")
	}
	for name, got := range runs {
		if fmt.Sprintf("%+v", got.verdicts) != fmt.Sprintf("%+v", ref.verdicts) {
			t.Errorf("%s: verdicts diverge from NDJSON", name)
		}
		if fmt.Sprintf("%+v", got.actions) != fmt.Sprintf("%+v", ref.actions) {
			t.Errorf("%s: actions diverge from NDJSON:\n got  %+v\n want %+v", name, got.actions, ref.actions)
		}
	}
}
