package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/safemon/guard"
	"repro/safemon/ledger"
)

// Incident API, backed by the event ledger:
//
//	GET    /v1/incidents                    list captured incidents
//	GET    /v1/incidents/{id}               one incident's recorded trail
//	POST   /v1/incidents/{id}/replay        time-travel replay: re-run the
//	       [?backend=NAME][&policy=NAME]    recorded input stream through
//	                                        any served backend and policy
//	DELETE /v1/incidents/{id}               acknowledge: unpin the
//	                                        incident's segments so
//	                                        retention may reclaim them
//
// An incident is a recorded session on which a latching mitigation
// (safe-stop, retract) engaged; it is derived from the ledger on demand,
// so everything the log retains is replayable — including across
// restarts. Replay defaults to the incident's original backend and
// policy, where it must reproduce the original verdict/action trail
// byte-identically (the replay-fidelity golden test); naming a different
// backend or policy answers "what would the other monitor have done?".
//
// An incident pins the disk segments holding its session until it is
// acknowledged via DELETE, so the retention budget (-ledger-max-bytes)
// can only bound disk usage on a deployment that acknowledges its
// incidents once diagnosed.

// ErrNoLedger reports an incident request on a server constructed
// without a ledger.
var ErrNoLedger = errors.New("serve: no ledger configured")

// IncidentDetail is the GET /v1/incidents/{id} payload: the incident
// summary plus its original recorded trail in wire form.
type IncidentDetail struct {
	ledger.IncidentSummary
	// Labels is the recorded ground-truth gesture sequence, when the
	// original stream supplied one.
	Labels []int `json:"labels,omitempty"`
	// Verdicts and Actions are the original recorded trail, in the same
	// wire form the live stream emitted.
	Verdicts []VerdictMsg `json:"verdicts"`
	Actions  []ActionMsg  `json:"actions"`
	// EndReason is the recorded session termination cause ("eof",
	// "error: ..."), empty when the session never closed.
	EndReason string `json:"end_reason,omitempty"`
}

// ReplayTrail is one verdict/action trail of a replay response.
type ReplayTrail struct {
	Backend  string       `json:"backend"`
	Model    string       `json:"model,omitempty"`
	Policy   string       `json:"policy,omitempty"`
	Verdicts []VerdictMsg `json:"verdicts"`
	Actions  []ActionMsg  `json:"actions"`
}

// ReplayResult is the POST /v1/incidents/{id}/replay payload: the fresh
// trail next to the original, with a byte-level match verdict.
type ReplayResult struct {
	Incident ledger.IncidentSummary `json:"incident"`
	Original ReplayTrail            `json:"original"`
	Replay   ReplayTrail            `json:"replay"`
	// VerdictsMatch / ActionsMatch report whether the replayed trail is
	// byte-identical (in wire JSON) to the original — expected true when
	// replaying through the original backend and policy.
	VerdictsMatch bool `json:"verdicts_match"`
	ActionsMatch  bool `json:"actions_match"`
}

// ledgerStore returns the store behind the configured appender, or nil.
func (s *Server) ledgerStore() ledger.Store { return s.cfg.Ledger.Store() }

// Incidents lists the captured incidents, newest first (the
// GET /v1/incidents payload). limit > 0 caps the list.
func (s *Server) Incidents(limit int) ([]ledger.IncidentSummary, error) {
	store := s.ledgerStore()
	if store == nil {
		return nil, ErrNoLedger
	}
	// Everything queued so far must be visible: list-after-stop is the
	// common diagnostic flow and must not race the batch writer.
	s.cfg.Ledger.Flush()
	return ledger.ScanIncidents(store, limit)
}

// Incident materializes one incident's recorded trail (the
// GET /v1/incidents/{id} payload).
func (s *Server) Incident(id string) (*IncidentDetail, error) {
	store := s.ledgerStore()
	if store == nil {
		return nil, ErrNoLedger
	}
	session, err := ledger.ParseIncidentID(id)
	if err != nil {
		return nil, err
	}
	s.cfg.Ledger.Flush()
	inc, err := ledger.LoadIncident(store, session)
	if err != nil {
		return nil, err
	}
	return incidentDetail(inc), nil
}

// ResolveIncident acknowledges an incident (the DELETE /v1/incidents/{id}
// handler): the session is unpinned so retention may reclaim the
// segments backing it. The events themselves are not deleted — until
// compaction actually removes them the incident remains listable and
// replayable; resolving is the explicit "diagnosed, disk may go" signal
// without which pinned segments would accumulate forever.
func (s *Server) ResolveIncident(id string) error {
	store := s.ledgerStore()
	if store == nil {
		return ErrNoLedger
	}
	session, err := ledger.ParseIncidentID(id)
	if err != nil {
		return err
	}
	pinner, ok := store.(ledger.Pinner)
	if !ok {
		return fmt.Errorf("serve: ledger store cannot pin incidents")
	}
	// A just-latched incident pins at append time; flush so it is visible.
	s.cfg.Ledger.Flush()
	for _, pinned := range pinner.Pinned() {
		if pinned == session {
			pinner.Unpin(session)
			return nil
		}
	}
	return ledger.ErrNoIncident{Session: session}
}

// incidentDetail renders a ledger incident in wire form.
func incidentDetail(inc *ledger.Incident) *IncidentDetail {
	d := &IncidentDetail{
		IncidentSummary: inc.IncidentSummary,
		Verdicts:        make([]VerdictMsg, 0, len(inc.Verdicts)),
		Actions:         wireActions(inc.Actions, inc.Policy),
		EndReason:       inc.EndReason,
	}
	for _, v := range inc.Verdicts {
		d.Verdicts = append(d.Verdicts, WireVerdict(v))
	}
	if len(inc.Labels) > 0 {
		d.Labels = make([]int, len(inc.Labels))
		for i, l := range inc.Labels {
			d.Labels[i] = int(l)
		}
	}
	return d
}

// wireActions renders a recorded action trail in wire form.
func wireActions(actions []ledger.ActionRecord, policy string) []ActionMsg {
	out := make([]ActionMsg, 0, len(actions))
	for _, a := range actions {
		out = append(out, ActionMsg{
			I:          a.FrameIndex,
			Level:      a.Level,
			AlertFrame: a.AlertFrame,
			Score:      a.Score,
			Policy:     policy,
		})
	}
	return out
}

// Replay re-runs an incident's recorded input stream through a served
// backend and policy (the POST /v1/incidents/{id}/replay handler).
// Empty backend/policy default to the incident's originals; an empty
// original policy replays unguarded. The replay runs through the same
// warm session pools as live streams but is not itself recorded — a
// replay can never create an incident.
func (s *Server) Replay(ctx context.Context, id, backend, policy string) (*ReplayResult, error) {
	store := s.ledgerStore()
	if store == nil {
		return nil, ErrNoLedger
	}
	session, err := ledger.ParseIncidentID(id)
	if err != nil {
		return nil, err
	}
	s.cfg.Ledger.Flush()
	inc, err := ledger.LoadIncident(store, session)
	if err != nil {
		return nil, err
	}
	if len(inc.Inputs) != len(inc.Verdicts) {
		return nil, fmt.Errorf("serve: incident %s has %d recorded inputs for %d verdicts; not replayable",
			id, len(inc.Inputs), len(inc.Verdicts))
	}
	if backend == "" {
		backend = inc.Backend
	}
	if !s.manager.has(backend) {
		return nil, fmt.Errorf("%w: %q", ErrUnknownBackend, backend)
	}
	if policy == "" {
		policy = inc.Policy
	}
	var eng *guard.Engine
	if policy != "" {
		p, ok := s.policies[policy]
		if !ok {
			return nil, fmt.Errorf("serve: unknown policy %q (have %v)", policy, s.policyNames)
		}
		eng, err = guard.NewEngine(p)
		if err != nil {
			return nil, err
		}
	}

	labels := make([]int, len(inc.Labels))
	for i, l := range inc.Labels {
		labels[i] = int(l)
	}
	if len(labels) == 0 {
		labels = nil
	}
	if err := s.manager.Reserve(); err != nil {
		return nil, err
	}
	sess, err := s.manager.Open(backend, labels)
	if err != nil {
		s.manager.Unreserve()
		return nil, err
	}
	healthy := true
	defer func() { sess.Release(healthy) }()

	replay := ReplayTrail{
		Backend:  backend,
		Model:    sess.Version(),
		Policy:   policy,
		Verdicts: make([]VerdictMsg, 0, len(inc.Inputs)),
		Actions:  []ActionMsg{},
	}
	for i := range inc.Inputs {
		v, err := sess.Push(ctx, &inc.Inputs[i])
		if err != nil {
			healthy = false
			return nil, fmt.Errorf("serve: replay frame %d: %w", i, err)
		}
		wire := WireVerdict(v)
		if eng != nil {
			if d := eng.Step(v); d.Changed {
				replay.Actions = append(replay.Actions, ActionMsg{
					I:          d.FrameIndex,
					Level:      d.Action.String(),
					AlertFrame: d.AlertFrame,
					Score:      d.Score,
					Policy:     policy,
				})
			}
		}
		replay.Verdicts = append(replay.Verdicts, wire)
	}

	original := ReplayTrail{
		Backend:  inc.Backend,
		Model:    inc.Model,
		Policy:   inc.Policy,
		Verdicts: incidentDetail(inc).Verdicts,
		Actions:  wireActions(inc.Actions, inc.Policy),
	}
	return &ReplayResult{
		Incident:      inc.IncidentSummary,
		Original:      original,
		Replay:        replay,
		VerdictsMatch: wireEqual(original.Verdicts, replay.Verdicts),
		ActionsMatch:  wireEqual(original.Actions, replay.Actions),
	}, nil
}

// wireEqual compares two trails by their wire JSON bytes — the same
// currency the golden tests use.
func wireEqual(a, b any) bool {
	ab, err1 := json.Marshal(a)
	bb, err2 := json.Marshal(b)
	return err1 == nil && err2 == nil && string(ab) == string(bb)
}

// handleIncidents answers GET /v1/incidents.
func (s *Server) handleIncidents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = n
	}
	incidents, err := s.Incidents(limit)
	if err != nil {
		writeIncidentError(w, err)
		return
	}
	if incidents == nil {
		incidents = []ledger.IncidentSummary{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"incidents": incidents})
}

// handleIncident routes /v1/incidents/{id} and /v1/incidents/{id}/replay.
func (s *Server) handleIncident(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/incidents/")
	if id, ok := strings.CutSuffix(rest, "/replay"); ok {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		q := r.URL.Query()
		res, err := s.Replay(r.Context(), id, q.Get("backend"), q.Get("policy"))
		if err != nil {
			writeIncidentError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
		return
	}
	if strings.Contains(rest, "/") {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	switch r.Method {
	case http.MethodGet:
		detail, err := s.Incident(rest)
		if err != nil {
			writeIncidentError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, detail)
	case http.MethodDelete:
		if err := s.ResolveIncident(rest); err != nil {
			writeIncidentError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"id": rest, "resolved": true})
	default:
		http.Error(w, "GET or DELETE only", http.StatusMethodNotAllowed)
	}
}

// writeIncidentError maps incident-API failures onto HTTP statuses.
func writeIncidentError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var noInc ledger.ErrNoIncident
	switch {
	case errors.Is(err, ErrNoLedger):
		status = http.StatusNotImplemented
	case errors.As(err, &noInc), errors.Is(err, ErrUnknownBackend):
		status = http.StatusNotFound
	case errors.Is(err, ErrBusy):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		status = http.StatusServiceUnavailable
	case strings.Contains(err.Error(), "malformed incident id"),
		strings.Contains(err.Error(), "unknown policy"):
		status = http.StatusNotFound
	}
	http.Error(w, err.Error(), status)
}
