package serve

import (
	"encoding/json"
	"testing"
)

// BenchmarkCodecRoundTrip measures one encode+decode cycle for the two
// record types that dominate a stream — the 38-float client frame and the
// server verdict — in both wire codecs. The binary subs are the numbers
// BENCH_PR9.json records and scripts/benchguard.sh gates: they must run
// warm with 0 allocs/op (reused append buffer, reused decode record),
// while the NDJSON subs exist as the baseline the >=5x speedup is
// measured against.
func BenchmarkCodecRoundTrip(b *testing.B) {
	var frame [38]float64
	for i := range frame {
		frame[i] = 0.125 * float64(i+1)
	}
	verdict := VerdictMsg{I: 812, G: 3, Score: 0.73125, Unsafe: true}

	b.Run("json-frame", func(b *testing.B) {
		b.ReportAllocs()
		var msg ClientMsg
		for i := 0; i < b.N; i++ {
			line, err := json.Marshal(ClientMsg{Frame: frame[:]})
			if err != nil {
				b.Fatal(err)
			}
			if err := DecodeRecord(line, &msg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary-frame", func(b *testing.B) {
		b.ReportAllocs()
		var buf []byte
		var rec, out BinaryRecord
		rec.Type = BinFrame
		rec.SID = 7
		rec.Frame = frame
		for i := 0; i < b.N; i++ {
			var err error
			buf, err = AppendBinaryRecord(buf[:0], &rec)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := DecodeBinaryRecord(buf, &out); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("json-verdict", func(b *testing.B) {
		b.ReportAllocs()
		var msg ServerMsg
		for i := 0; i < b.N; i++ {
			line, err := json.Marshal(ServerMsg{Verdict: &verdict})
			if err != nil {
				b.Fatal(err)
			}
			if err := json.Unmarshal(line, &msg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary-verdict", func(b *testing.B) {
		b.ReportAllocs()
		var buf []byte
		var rec, out BinaryRecord
		rec.Type = BinVerdict
		rec.SID = 7
		rec.Verdict = verdict
		for i := 0; i < b.N; i++ {
			var err error
			buf, err = AppendBinaryRecord(buf[:0], &rec)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := DecodeBinaryRecord(buf, &out); err != nil {
				b.Fatal(err)
			}
		}
	})
}
