package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"repro/safemon"
	"repro/safemon/guard"
	"repro/safemon/ledger"
)

// Client is a minimal safemond client, used by the loadgen, the golden
// tests and cmd/experiments. Streams are full duplex: the request body
// is fed through a pipe while verdicts are read off the response.
type Client struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient overrides http.DefaultClient (httptest servers pass
	// their own).
	HTTPClient *http.Client
	// Codec selects the wire codec for Open/OpenGuarded streams: ""
	// or "json" for NDJSON (the default), "binary" for the compact
	// record format. OpenMux is always binary.
	Codec string
}

func (c *Client) binary() bool { return c.Codec == "binary" }

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Backends fetches the server's served backend names.
func (c *Client) Backends(ctx context.Context) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/backends", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out struct {
		Backends []string `json:"backends"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Backends, nil
}

// Models fetches the model versions the server is currently serving.
func (c *Client) Models(ctx context.Context) ([]ModelInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/models", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve: /v1/models: %s", resp.Status)
	}
	var out struct {
		Models []ModelInfo `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Models, nil
}

// Reload asks the server to hot-swap to its loader's current model set and
// returns the model versions now serving.
func (c *Client) Reload(ctx context.Context) ([]ModelInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/models/reload", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, &ErrorMsg{Code: resp.StatusCode, Message: strings.TrimSpace(string(body))}
	}
	var out struct {
		Models []ModelInfo `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Models, nil
}

// Policies fetches the guard mitigation policies the server offers
// (?policy=NAME on Open selects one).
func (c *Client) Policies(ctx context.Context) ([]guard.Policy, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/policies", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve: /v1/policies: %s", resp.Status)
	}
	var out struct {
		Policies []guard.Policy `json:"policies"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Policies, nil
}

// Incidents fetches the server's captured incidents, newest first.
// limit > 0 caps the list.
func (c *Client) Incidents(ctx context.Context, limit int) ([]ledger.IncidentSummary, error) {
	target := c.BaseURL + "/v1/incidents"
	if limit > 0 {
		target += fmt.Sprintf("?limit=%d", limit)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, &ErrorMsg{Code: resp.StatusCode, Message: strings.TrimSpace(string(body))}
	}
	var out struct {
		Incidents []ledger.IncidentSummary `json:"incidents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Incidents, nil
}

// Incident fetches one incident's recorded trail.
func (c *Client) Incident(ctx context.Context, id string) (*IncidentDetail, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/incidents/"+url.PathEscape(id), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, &ErrorMsg{Code: resp.StatusCode, Message: strings.TrimSpace(string(body))}
	}
	var out IncidentDetail
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ResolveIncident acknowledges a captured incident: the server unpins
// its ledger segments so retention may reclaim them. The incident stays
// listable and replayable until compaction actually removes its events.
func (c *Client) ResolveIncident(ctx context.Context, id string) error {
	target := c.BaseURL + "/v1/incidents/" + url.PathEscape(id)
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, target, nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return &ErrorMsg{Code: resp.StatusCode, Message: strings.TrimSpace(string(body))}
	}
	return nil
}

// ReplayIncident re-runs a captured incident's recorded frames through a
// served backend and guard policy; empty strings select the incident's
// originals. The result carries the fresh verdict/action trail next to
// the recorded one.
func (c *Client) ReplayIncident(ctx context.Context, id, backend, policy string) (*ReplayResult, error) {
	target := c.BaseURL + "/v1/incidents/" + url.PathEscape(id) + "/replay"
	query := url.Values{}
	if backend != "" {
		query.Set("backend", backend)
	}
	if policy != "" {
		query.Set("policy", policy)
	}
	if len(query) > 0 {
		target += "?" + query.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, &ErrorMsg{Code: resp.StatusCode, Message: strings.TrimSpace(string(body))}
	}
	var out ReplayResult
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches the server's /stats snapshot.
func (c *Client) Stats(ctx context.Context) (*StatsSnapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out StatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stream is one open session on either codec. Use Send/Recv in lockstep
// (one verdict per frame) from a single goroutine, then Close.
type Stream struct {
	body io.WriteCloser // request-body pipe
	resp *http.Response
	// NDJSON codec (nil on binary streams).
	enc *json.Encoder
	dec *json.Decoder
	// Binary codec (nil on NDJSON streams).
	bw      *binWriter
	br      *binReader
	actions []ActionMsg
}

// Open starts a stream against the named backend. groundTruth, when
// non-nil, is sent as the stream's labels header. A non-200 admission
// answer (429 at the session cap, 503 draining) is returned as *ErrorMsg.
func (c *Client) Open(ctx context.Context, backend string, groundTruth []int) (*Stream, error) {
	return c.OpenGuarded(ctx, backend, "", groundTruth)
}

// OpenGuarded is Open with a guard mitigation policy: the server
// interleaves action records into the verdict stream, collected by Recv
// and exposed through Stream.Actions. An unknown policy name is an
// admission failure (*ErrorMsg, 404).
func (c *Client) OpenGuarded(ctx context.Context, backend, policy string, groundTruth []int) (*Stream, error) {
	pr, pw := io.Pipe()
	target := c.BaseURL + "/v1/stream"
	query := url.Values{}
	if backend != "" {
		query.Set("backend", backend)
	}
	if policy != "" {
		query.Set("policy", policy)
	}
	if len(query) > 0 {
		target += "?" + query.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target, pr)
	if err != nil {
		pw.Close()
		return nil, err
	}
	if c.binary() {
		req.Header.Set("Content-Type", BinaryContentType)
		req.Header.Set("Accept", BinaryContentType)
	} else {
		req.Header.Set("Content-Type", "application/x-ndjson")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		pw.Close()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		pw.Close()
		return nil, &ErrorMsg{Code: resp.StatusCode, Message: strings.TrimSpace(string(body))}
	}
	st := &Stream{body: pw, resp: resp}
	if c.binary() {
		st.bw = newBinWriter(pw)
		st.br = newBinReader(resp.Body)
		if groundTruth != nil {
			if err := st.bw.emit(&BinaryRecord{Type: BinLabels, Labels: groundTruth}); err != nil {
				st.Close()
				return nil, err
			}
		}
		return st, nil
	}
	st.enc = json.NewEncoder(pw)
	st.dec = json.NewDecoder(bufio.NewReader(resp.Body))
	if groundTruth != nil {
		if err := st.enc.Encode(ClientMsg{Labels: groundTruth}); err != nil {
			st.Close()
			return nil, err
		}
	}
	return st, nil
}

// Send writes one frame record. On a warm binary stream this is a
// single buffered write with zero allocations.
func (s *Stream) Send(frame *safemon.Frame) error {
	if s.bw != nil {
		return s.bw.writeFrame(0, frame)
	}
	return s.enc.Encode(ClientMsg{Frame: frame[:]})
}

// Recv reads the next verdict. Guard action records arriving in between
// are collected (see Actions) rather than returned. Terminal records
// surface as errors: io.EOF for a done record, *ErrorMsg for a server
// error.
func (s *Stream) Recv() (safemon.FrameVerdict, error) {
	if s.br != nil {
		return s.recvBinary()
	}
	for {
		var msg ServerMsg
		if err := s.dec.Decode(&msg); err != nil {
			return safemon.FrameVerdict{}, err
		}
		switch {
		case msg.Verdict != nil:
			return msg.Verdict.Verdict(), nil
		case msg.Action != nil:
			s.actions = append(s.actions, *msg.Action)
		case msg.Error != nil:
			return safemon.FrameVerdict{}, msg.Error
		case msg.Done != nil:
			return safemon.FrameVerdict{}, io.EOF
		default:
			return safemon.FrameVerdict{}, fmt.Errorf("serve: empty server record")
		}
	}
}

func (s *Stream) recvBinary() (safemon.FrameVerdict, error) {
	for {
		rec, err := s.br.next()
		if err != nil {
			return safemon.FrameVerdict{}, err
		}
		switch rec.Type {
		case BinVerdict:
			return rec.Verdict.Verdict(), nil
		case BinAction:
			s.actions = append(s.actions, rec.Action)
		case BinError:
			return safemon.FrameVerdict{}, &ErrorMsg{Code: int(rec.Code), Message: rec.Message}
		case BinDone:
			return safemon.FrameVerdict{}, io.EOF
		default:
			return safemon.FrameVerdict{}, fmt.Errorf("serve: unexpected %s record from server", binTypeName(rec.Type))
		}
	}
}

// Actions returns the guard action records received so far, in stream
// order. The server emits an action immediately before the verdict of the
// frame that produced it, so after Recv returns frame i's verdict, every
// action up to and including frame i has been collected.
func (s *Stream) Actions() []ActionMsg { return s.actions }

// CloseSend ends the request side so the server can emit its done record;
// Recv keeps working.
func (s *Stream) CloseSend() error { return s.body.Close() }

// Close tears the stream down.
func (s *Stream) Close() error {
	s.body.Close()
	err := s.resp.Body.Close()
	if s.br != nil {
		s.br.release()
		s.br = nil
	}
	return err
}

// StreamTrajectory replays one trajectory through a fresh stream and
// returns the full verdict sequence. Trajectory gesture labels, when
// fully present, are forwarded — mirroring what Detector.Run does — so the
// served verdicts are comparable to the offline path for every backend.
func (c *Client) StreamTrajectory(ctx context.Context, backend string, traj *safemon.Trajectory) ([]safemon.FrameVerdict, error) {
	var labels []int
	if len(traj.Gestures) == len(traj.Frames) {
		labels = traj.Gestures
	}
	st, err := c.Open(ctx, backend, labels)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	verdicts := make([]safemon.FrameVerdict, 0, len(traj.Frames))
	for i := range traj.Frames {
		if err := st.Send(&traj.Frames[i]); err != nil {
			return nil, fmt.Errorf("serve: send frame %d: %w", i, err)
		}
		v, err := st.Recv()
		if err != nil {
			return nil, fmt.Errorf("serve: frame %d: %w", i, err)
		}
		verdicts = append(verdicts, v)
	}
	if err := st.CloseSend(); err != nil {
		return nil, err
	}
	if _, err := st.Recv(); err != io.EOF {
		return verdicts, fmt.Errorf("serve: expected done record, got %v", err)
	}
	return verdicts, nil
}
