package serve

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/gesture"
	"repro/internal/synth"
	"repro/safemon"
)

// testFold lazily builds one small labeled Suturing fold shared by every
// test in the package.
var foldFixture struct {
	once sync.Once
	fold dataset.LOSOSplit
	err  error
}

func testFold(t testing.TB) dataset.LOSOSplit {
	t.Helper()
	foldFixture.once.Do(func() {
		demos, err := synth.Generate(synth.Config{
			Task: gesture.Suturing, Hz: 30, Seed: 29,
			NumDemos: 8, NumTrials: 2, Subjects: 2, DurationScale: 0.35,
		})
		if err != nil {
			foldFixture.err = err
			return
		}
		foldFixture.fold = dataset.LOSO(synth.Trajectories(demos))[0]
	})
	if foldFixture.err != nil {
		t.Fatal(foldFixture.err)
	}
	return foldFixture.fold
}

// quickOptions keeps per-backend fits fast while exercising the real
// training paths (mirrors the safemon package's test options).
func quickOptions(backend string) []safemon.Option {
	switch backend {
	case "context-aware", "lookahead", "monolithic":
		return []safemon.Option{safemon.WithEpochs(2), safemon.WithTrainStride(6), safemon.WithSeed(3)}
	case "cascade":
		return []safemon.Option{safemon.WithEpochs(2), safemon.WithTrainStride(6), safemon.WithSeed(3)}
	case "sdsdl":
		return []safemon.Option{safemon.WithThreshold(0.2), safemon.WithAtoms(16), safemon.WithSeed(3)}
	default: // envelope, skipchain
		return []safemon.Option{safemon.WithThreshold(0.2), safemon.WithSeed(3)}
	}
}

var fittedFixture struct {
	mu sync.Mutex
	m  map[string]safemon.Detector
}

func fittedDetector(t testing.TB, backend string) safemon.Detector {
	t.Helper()
	fold := testFold(t)
	fittedFixture.mu.Lock()
	defer fittedFixture.mu.Unlock()
	if d, ok := fittedFixture.m[backend]; ok {
		return d
	}
	det, err := safemon.Open(backend, quickOptions(backend)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Fit(context.Background(), fold.Train); err != nil {
		t.Fatalf("fit %s: %v", backend, err)
	}
	if fittedFixture.m == nil {
		fittedFixture.m = map[string]safemon.Detector{}
	}
	fittedFixture.m[backend] = det
	return det
}

// newTestService stands up a Server over the given detectors behind
// httptest and returns a client against it. Cleanup drains everything.
func newTestService(t *testing.T, detectors map[string]safemon.Detector, cfg ManagerConfig) (*Server, *Client) {
	t.Helper()
	srv, err := NewServer(Config{Detectors: detectors, Manager: cfg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Shutdown()
	})
	return srv, &Client{BaseURL: ts.URL, HTTPClient: ts.Client()}
}

func TestBackendsAndHealthEndpoints(t *testing.T) {
	det := fittedDetector(t, "envelope")
	srv, client := newTestService(t, map[string]safemon.Detector{"envelope": det}, ManagerConfig{})
	ctx := context.Background()

	names, err := client.Backends(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "envelope" {
		t.Fatalf("backends = %v", names)
	}

	resp, err := client.httpClient().Get(client.BaseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// A served trajectory shows up in /stats.
	traj := testFold(t).Test[0]
	if _, err := client.StreamTrajectory(ctx, "envelope", traj); err != nil {
		t.Fatal(err)
	}
	snap, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Frames != uint64(traj.Len()) {
		t.Errorf("stats frames = %d, want %d", snap.Frames, traj.Len())
	}
	if snap.SessionsOpened != 1 || snap.SessionsActive != 0 {
		t.Errorf("stats sessions = %d opened / %d active", snap.SessionsOpened, snap.SessionsActive)
	}
	if snap.P99LatencyMS <= 0 {
		t.Errorf("p99 latency = %v, want > 0", snap.P99LatencyMS)
	}
	if len(snap.PerShard) != snap.Shards {
		t.Errorf("%d per-shard rows for %d shards", len(snap.PerShard), snap.Shards)
	}

	// Unknown backend is an HTTP 404 before any stream bytes flow.
	if _, err := client.Open(ctx, "no-such-backend", nil); err == nil {
		t.Error("unknown backend should fail")
	} else {
		var em *ErrorMsg
		if !errors.As(err, &em) || em.Code != http.StatusNotFound {
			t.Errorf("unknown backend error = %v", err)
		}
	}

	// After Shutdown the service reports draining and refuses streams.
	srv.Shutdown()
	resp, err = client.httpClient().Get(client.BaseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz = %d", resp.StatusCode)
	}
	if _, err := client.Open(ctx, "envelope", nil); err == nil {
		t.Error("draining service should refuse streams")
	} else {
		var em *ErrorMsg
		if !errors.As(err, &em) || em.Code != http.StatusServiceUnavailable {
			t.Errorf("draining error = %v", err)
		}
	}
}

func TestSessionCapReturns429(t *testing.T) {
	det := fittedDetector(t, "envelope")
	_, client := newTestService(t, map[string]safemon.Detector{"envelope": det}, ManagerConfig{MaxSessions: 1})
	ctx := context.Background()

	st, err := client.Open(ctx, "envelope", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Push one frame so the slot is held by an admitted stream.
	traj := testFold(t).Test[0]
	if err := st.Send(&traj.Frames[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recv(); err != nil {
		t.Fatal(err)
	}

	if _, err := client.Open(ctx, "envelope", nil); err == nil {
		t.Fatal("second stream should hit the session cap")
	} else {
		var em *ErrorMsg
		if !errors.As(err, &em) || em.Code != http.StatusTooManyRequests {
			t.Fatalf("cap error = %v, want HTTP 429", err)
		}
	}

	// Releasing the first stream frees the slot.
	st.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		st2, err := client.Open(ctx, "envelope", nil)
		if err == nil {
			st2.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestStreamBadFrameLength(t *testing.T) {
	det := fittedDetector(t, "envelope")
	_, client := newTestService(t, map[string]safemon.Detector{"envelope": det}, ManagerConfig{})
	st, err := client.Open(context.Background(), "envelope", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.enc.Encode(ClientMsg{Frame: []float64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	_, err = st.Recv()
	var em *ErrorMsg
	if !errors.As(err, &em) || em.Code != http.StatusBadRequest {
		t.Fatalf("short frame error = %v, want code 400", err)
	}
}

// TestStreamRecordSizeCap pins the per-record buffering bound: one
// oversized NDJSON line must terminate the stream with a 400 record, not
// buffer without limit.
func TestStreamRecordSizeCap(t *testing.T) {
	det := fittedDetector(t, "envelope")
	_, client := newTestService(t, map[string]safemon.Detector{"envelope": det}, ManagerConfig{})
	st, err := client.Open(context.Background(), "envelope", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	huge := make([]float64, 1<<18) // ~2.8 MB encoded, past the 1 MB cap
	if err := st.enc.Encode(ClientMsg{Frame: huge}); err != nil {
		t.Fatal(err)
	}
	_, err = st.Recv()
	var em *ErrorMsg
	if !errors.As(err, &em) || em.Code != http.StatusBadRequest {
		t.Fatalf("oversized record error = %v, want code 400", err)
	}
}

// TestStreamCombinedFirstRecordRejected pins the header contract: labels
// and a frame in one record is ambiguous and must be a 400, not silently
// dropped labels.
func TestStreamCombinedFirstRecordRejected(t *testing.T) {
	det := fittedDetector(t, "envelope")
	_, client := newTestService(t, map[string]safemon.Detector{"envelope": det}, ManagerConfig{})
	st, err := client.Open(context.Background(), "envelope", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	frame := make([]float64, frameSize)
	if err := st.enc.Encode(ClientMsg{Labels: []int{1, 2}, Frame: frame}); err != nil {
		t.Fatal(err)
	}
	_, err = st.Recv()
	var em *ErrorMsg
	if !errors.As(err, &em) || em.Code != http.StatusBadRequest {
		t.Fatalf("combined record error = %v, want code 400", err)
	}
}

// TestStreamIdleTimeout pins the idle-client bound: a stream that goes
// silent past StreamIdleTimeout is terminated and its session slot freed.
func TestStreamIdleTimeout(t *testing.T) {
	det := fittedDetector(t, "envelope")
	srv, err := NewServer(Config{
		Detectors:         map[string]safemon.Detector{"envelope": det},
		StreamIdleTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Shutdown()
	})
	client := &Client{BaseURL: ts.URL, HTTPClient: ts.Client()}

	st, err := client.Open(context.Background(), "envelope", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	traj := testFold(t).Test[0]
	if err := st.Send(&traj.Frames[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recv(); err != nil {
		t.Fatal(err)
	}
	// Go silent; the server must cut the stream and free the slot.
	if _, err := st.Recv(); err == nil {
		t.Fatal("idle stream should be terminated")
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.Stats().SessionsActive != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("idle stream pinned its session slot: %+v", srv.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBeginDrainKeepsInFlightStreams pins the graceful-drain layering:
// after BeginDrain, new streams are refused with 503 while an
// already-attached stream keeps receiving verdicts until Shutdown.
func TestBeginDrainKeepsInFlightStreams(t *testing.T) {
	det := fittedDetector(t, "envelope")
	srv, client := newTestService(t, map[string]safemon.Detector{"envelope": det}, ManagerConfig{})
	traj := testFold(t).Test[0]
	ctx := context.Background()

	st, err := client.Open(ctx, "envelope", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Send(&traj.Frames[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recv(); err != nil {
		t.Fatal(err)
	}

	srv.BeginDrain()
	if _, err := client.Open(ctx, "envelope", nil); err == nil {
		t.Fatal("draining service should refuse new streams")
	} else {
		var em *ErrorMsg
		if !errors.As(err, &em) || em.Code != http.StatusServiceUnavailable {
			t.Fatalf("drain refusal = %v, want HTTP 503", err)
		}
	}
	// The in-flight stream is untouched by BeginDrain.
	for i := 1; i < 10; i++ {
		if err := st.Send(&traj.Frames[i]); err != nil {
			t.Fatalf("in-flight send during drain: %v", err)
		}
		if _, err := st.Recv(); err != nil {
			t.Fatalf("in-flight verdict during drain: %v", err)
		}
	}

	// Shutdown completes the drain; the straggler now fails.
	srv.Shutdown()
	if err := st.Send(&traj.Frames[10]); err == nil {
		if _, err := st.Recv(); err == nil {
			t.Fatal("push should fail once the manager has shut down")
		}
	}
}

// stubDetector is a minimal backend whose sessions take a configurable
// time per push — used to exercise backpressure deterministically.
type stubDetector struct{ delay time.Duration }

func (d *stubDetector) Info() safemon.Info { return safemon.Info{Name: "stub", Threshold: 0.5} }

func (d *stubDetector) Fit(context.Context, []*safemon.Trajectory) error { return nil }

func (d *stubDetector) Save(io.Writer) error { return errors.New("stub: not serializable") }
func (d *stubDetector) Load(io.Reader) error { return errors.New("stub: not serializable") }

func (d *stubDetector) Run(ctx context.Context, traj *safemon.Trajectory) (*safemon.Trace, error) {
	s, _ := d.NewSession()
	trace := &safemon.Trace{}
	for i := range traj.Frames {
		v, err := s.Push(&traj.Frames[i])
		if err != nil {
			return nil, err
		}
		trace.Verdicts = append(trace.Verdicts, v)
	}
	return trace, nil
}

func (d *stubDetector) NewSession(...safemon.SessionOption) (safemon.Session, error) {
	return &stubSession{delay: d.delay}, nil
}

type stubSession struct {
	delay time.Duration
	idx   int
}

func (s *stubSession) Push(*safemon.Frame) (safemon.FrameVerdict, error) {
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	v := safemon.FrameVerdict{FrameIndex: s.idx}
	s.idx++
	return v, nil
}

func (s *stubSession) Reset([]int) error { s.idx = 0; return nil }
func (s *stubSession) Close() error      { return nil }

// TestMailboxBackpressure pins the explicit queue-full contract: with one
// shard, a single-slot mailbox and a slow session, a third concurrent push
// cannot fit (one processing + one queued) and must fail with ErrQueueFull
// within the enqueue timeout instead of buffering.
func TestMailboxBackpressure(t *testing.T) {
	m, err := NewManager(map[string]safemon.Detector{"stub": &stubDetector{delay: 200 * time.Millisecond}},
		ManagerConfig{Shards: 1, MailboxDepth: 1, EnqueueTimeout: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	sessions := make([]*Session, 3)
	for i := range sessions {
		if err := m.Reserve(); err != nil {
			t.Fatal(err)
		}
		s, err := m.Open("stub", nil)
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
		defer s.Release(true)
	}

	var frame safemon.Frame
	errs := make(chan error, len(sessions))
	var wg sync.WaitGroup
	for _, s := range sessions {
		wg.Add(1)
		go func(s *Session) {
			defer wg.Done()
			_, err := s.Push(context.Background(), &frame)
			errs <- err
		}(s)
	}
	wg.Wait()
	close(errs)
	full, ok := 0, 0
	for err := range errs {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrQueueFull):
			full++
		default:
			t.Fatalf("unexpected push error: %v", err)
		}
	}
	if full == 0 {
		t.Fatalf("no push hit backpressure (ok=%d)", ok)
	}
	if ok == 0 {
		t.Fatal("every push failed; expected the committed ones to complete")
	}
	if got := m.shards[0].stats.queueFull.Load(); got != uint64(full) {
		t.Errorf("queueFull stat = %d, want %d", got, full)
	}
}

// TestManagerDrain pins the shutdown contract: Close waits for in-flight
// pushes, and later pushes and opens fail with ErrDraining.
func TestManagerDrain(t *testing.T) {
	m, err := NewManager(map[string]safemon.Detector{"stub": &stubDetector{delay: 50 * time.Millisecond}},
		ManagerConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Reserve(); err != nil {
		t.Fatal(err)
	}
	s, err := m.Open("stub", nil)
	if err != nil {
		t.Fatal(err)
	}

	var frame safemon.Frame
	pushed := make(chan error, 1)
	go func() {
		_, err := s.Push(context.Background(), &frame)
		pushed <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the push commit
	m.Close()
	if err := <-pushed; err != nil {
		t.Errorf("in-flight push during drain: %v", err)
	}
	if _, err := s.Push(context.Background(), &frame); !errors.Is(err, ErrDraining) {
		t.Errorf("push after drain = %v, want ErrDraining", err)
	}
	s.Release(true)
	if err := m.Reserve(); !errors.Is(err, ErrDraining) {
		t.Errorf("reserve after drain = %v, want ErrDraining", err)
	}
}

// TestStreamEarlyHangup checks that a client vanishing mid-stream does not
// wedge the handler or leak the session slot.
func TestStreamEarlyHangup(t *testing.T) {
	det := fittedDetector(t, "envelope")
	srv, client := newTestService(t, map[string]safemon.Detector{"envelope": det}, ManagerConfig{})
	traj := testFold(t).Test[0]

	st, err := client.Open(context.Background(), "envelope", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.Send(&traj.Frames[i]); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	st.Close() // abrupt: no CloseSend handshake

	deadline := time.Now().Add(2 * time.Second)
	for srv.Stats().SessionsActive != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("session slot leaked: %+v", srv.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestWireVerdictRoundTrip(t *testing.T) {
	v := safemon.FrameVerdict{FrameIndex: 7, Gesture: 3, Score: 0.625, Unsafe: true}
	if got := WireVerdict(v).Verdict(); got != v {
		t.Fatalf("round trip %+v -> %+v", v, got)
	}
	tr := TraceFromVerdicts([]safemon.FrameVerdict{{FrameIndex: 0, Score: 0.1}, v})
	if len(tr.Alerts) != 1 || tr.Alerts[0].FrameIndex != 7 {
		t.Fatalf("alerts = %+v", tr.Alerts)
	}
}

var _ io.Closer = (*Stream)(nil) // Stream is a Closer for callers' defer chains
