package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"

	"repro/internal/testutil"
	"repro/safemon"
)

// TestServeConcurrentSessionsRace soaks the shard mailboxes: many
// concurrent NDJSON sessions over one shared trained network, a third of
// them cancelled mid-stream, then a full drain — run under -race by make
// ci, with a goroutine-count check for leaks.
func TestServeConcurrentSessionsRace(t *testing.T) {
	fold := testFold(t)
	det := fittedDetector(t, "context-aware") // one shared trained network
	env := fittedDetector(t, "envelope")

	baseline := runtime.NumGoroutine()
	srv, err := NewServer(Config{
		Detectors: map[string]safemon.Detector{"context-aware": det, "envelope": env},
		Manager:   ManagerConfig{Shards: 4, MailboxDepth: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	client := &Client{BaseURL: ts.URL, HTTPClient: ts.Client()}

	const sessions = 24
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			backend := "context-aware"
			if i%2 == 1 {
				backend = "envelope"
			}
			traj := fold.Test[i%len(fold.Test)]
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			if i%3 == 0 {
				// Cancel mid-stream: after roughly half the frames the
				// context dies and the connection is torn down.
				st, err := client.Open(ctx, backend, traj.Gestures)
				if err != nil {
					errs <- err
					return
				}
				defer st.Close()
				for j := 0; j < len(traj.Frames)/2; j++ {
					if err := st.Send(&traj.Frames[j]); err != nil {
						return // server or transport gave up first: fine
					}
					if _, err := st.Recv(); err != nil {
						return
					}
				}
				cancel()
				return
			}
			got, err := client.StreamTrajectory(ctx, backend, traj)
			if err != nil {
				errs <- fmt.Errorf("session %d (%s): %w", i, backend, err)
				return
			}
			if len(got) != traj.Len() {
				errs <- fmt.Errorf("session %d: %d verdicts for %d frames", i, len(got), traj.Len())
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Drain: no stream is in flight, so shutdown must complete and leave
	// no goroutines behind.
	ts.Close()
	srv.Shutdown()
	testutil.WaitGoroutines(t, baseline, 4)

	if snap := srv.Stats(); snap.SessionsActive != 0 {
		t.Errorf("sessions still active after drain: %+v", snap)
	}
}

// TestServedVerdictsUnderContention re-checks byte identity while the
// service is loaded: 16 concurrent streams of the same trajectory must all
// equal the offline replay exactly (shared trained network, -race).
func TestServedVerdictsUnderContention(t *testing.T) {
	fold := testFold(t)
	det := fittedDetector(t, "context-aware")
	_, client := newTestService(t, map[string]safemon.Detector{"context-aware": det},
		ManagerConfig{Shards: 4, MailboxDepth: 4})
	traj := fold.Test[0]
	ref, err := det.Run(context.Background(), traj)
	if err != nil {
		t.Fatal(err)
	}
	want := wireLines(t, ref.Verdicts)

	const sessions = 16
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := client.StreamTrajectory(context.Background(), "context-aware", traj)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(want, wireLines(t, got)) {
				errs <- fmt.Errorf("session %d verdicts diverge from offline replay", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		var em *ErrorMsg
		if errors.As(err, &em) && em.Code == 429 {
			continue // backpressure under contention is legal, divergence is not
		}
		t.Error(err)
	}
}
