package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/safemon"
	"repro/safemon/guard"
)

// testGuardPolicy confirms after 2 evidence frames and climbs one rung
// per evidence frame to SafeStop. Envelope violation scores for the wild
// frames below are orders of magnitude above 1.
func testGuardPolicy() guard.Policy {
	return guard.Policy{
		Name: "stop-fast", Threshold: 1.0,
		DebounceFrames: 2, ReleaseFrames: 2, EscalateFrames: 1,
		InitialAction: guard.ActionWarn, MaxAction: guard.ActionSafeStop,
		ReactionBudgetFrames: 5,
	}
}

// newGuardedService stands up a server with guard policies configured.
func newGuardedService(t *testing.T, policies ...guard.Policy) (*Server, *Client) {
	t.Helper()
	det := fittedDetector(t, "envelope")
	srv, err := NewServer(Config{
		Detectors: map[string]safemon.Detector{"envelope": det},
		Policies:  policies,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Shutdown()
	})
	return srv, &Client{BaseURL: ts.URL, HTTPClient: ts.Client()}
}

// guardProbeFrames returns safe frames (drawn from the training set, by
// construction inside the envelope) and a wild frame far outside it.
func guardProbeFrames(t testing.TB) (safe, wild safemon.Frame) {
	t.Helper()
	fold := testFold(t)
	safe = fold.Train[0].Frames[10]
	wild = safe
	for i := range wild {
		wild[i] += 50
	}
	return safe, wild
}

// TestGuardedStreamActions drives a guarded stream end to end: action
// records must interleave at the policy's deterministic frames, latch at
// SafeStop, and land in the /stats mitigation counters and /v1/policies.
func TestGuardedStreamActions(t *testing.T) {
	srv, client := newGuardedService(t, testGuardPolicy())
	ctx := context.Background()
	safe, wild := guardProbeFrames(t)

	st, err := client.OpenGuarded(ctx, "envelope", "stop-fast", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// 5 safe, 4 wild, 5 safe: evidence at frames 5-8, debounce confirms
	// at 6, the ladder reaches safe-stop at 8 and latches through the
	// trailing safe frames.
	frames := make([]*safemon.Frame, 0, 14)
	for i := 0; i < 5; i++ {
		frames = append(frames, &safe)
	}
	for i := 0; i < 4; i++ {
		frames = append(frames, &wild)
	}
	for i := 0; i < 5; i++ {
		frames = append(frames, &safe)
	}
	for i, f := range frames {
		if err := st.Send(f); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		v, err := st.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if v.FrameIndex != i {
			t.Fatalf("verdict %d has index %d", i, v.FrameIndex)
		}
	}
	if err := st.CloseSend(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recv(); err != io.EOF {
		t.Fatalf("expected done, got %v", err)
	}

	want := []ActionMsg{
		{I: 6, Level: "warn", AlertFrame: 6, Policy: "stop-fast"},
		{I: 7, Level: "pause", AlertFrame: 6, Policy: "stop-fast"},
		{I: 8, Level: "safe-stop", AlertFrame: 6, Policy: "stop-fast"},
	}
	got := st.Actions()
	if len(got) != len(want) {
		t.Fatalf("actions = %+v, want %d records", got, len(want))
	}
	for i := range want {
		g := got[i]
		if g.Score <= 1.0 {
			t.Errorf("action %d score = %v, want > threshold", i, g.Score)
		}
		g.Score = 0
		if g != want[i] {
			t.Errorf("action %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	// The typed client decodes the new mitigation counters from /stats.
	snap, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	mit := snap.Mitigation
	if mit.GuardedStreams != 1 || mit.Alerts != 1 || mit.Warns != 1 ||
		mit.Pauses != 1 || mit.SafeStops != 1 || mit.Retracts != 0 || mit.Releases != 0 {
		t.Errorf("mitigation counters = %+v", mit)
	}
	if len(mit.Policies) != 1 || mit.Policies[0] != "stop-fast" {
		t.Errorf("stats policies = %v", mit.Policies)
	}
	if !reflect.DeepEqual(snap.Mitigation, srv.Stats().Mitigation) {
		t.Error("client snapshot disagrees with server snapshot")
	}

	// /v1/policies round-trips the full policy definition.
	policies, err := client.Policies(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(policies) != 1 || !reflect.DeepEqual(policies[0], testGuardPolicy()) {
		t.Errorf("policies = %+v", policies)
	}
}

// TestGuardedStreamRelease pins the hysteresis path over the wire: a
// Pause-capped policy must release after the configured safe run and
// count the release in /stats.
func TestGuardedStreamRelease(t *testing.T) {
	p := testGuardPolicy()
	p.Name = "pause-only"
	p.MaxAction = guard.ActionPause
	_, client := newGuardedService(t, p)
	ctx := context.Background()
	safe, wild := guardProbeFrames(t)

	st, err := client.OpenGuarded(ctx, "envelope", "pause-only", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	frames := []*safemon.Frame{&safe, &wild, &wild, &wild, &safe, &safe, &safe}
	for i, f := range frames {
		if err := st.Send(f); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if _, err := st.Recv(); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
	}
	if err := st.CloseSend(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recv(); err != io.EOF {
		t.Fatalf("expected done, got %v", err)
	}

	// Evidence at 1-3: confirm at 2 (warn), pause at 3 (capped); safe
	// frames from 4 on: the 2-frame release hysteresis lands at 5.
	var levels []string
	for _, a := range st.Actions() {
		levels = append(levels, a.Level)
	}
	if want := []string{"warn", "pause", "none"}; !reflect.DeepEqual(levels, want) {
		t.Fatalf("levels = %v, want %v", levels, want)
	}
	if last := st.Actions()[2]; last.I != 5 || last.AlertFrame != -1 {
		t.Errorf("release record = %+v", last)
	}
	snap, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Mitigation.Releases != 1 || snap.Mitigation.SafeStops != 0 {
		t.Errorf("mitigation = %+v", snap.Mitigation)
	}
}

// TestGuardedStreamAdmission pins the failure modes: unknown policy is a
// 404 admission error, and a policy on a server with none configured too.
func TestGuardedStreamAdmission(t *testing.T) {
	_, client := newGuardedService(t, testGuardPolicy())
	ctx := context.Background()
	_, err := client.OpenGuarded(ctx, "envelope", "nope", nil)
	var em *ErrorMsg
	if !errors.As(err, &em) || em.Code != http.StatusNotFound {
		t.Fatalf("unknown policy error = %v", err)
	}

	det := fittedDetector(t, "envelope")
	srv, err := NewServer(Config{Detectors: map[string]safemon.Detector{"envelope": det}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Shutdown() })
	bare := &Client{BaseURL: ts.URL, HTTPClient: ts.Client()}
	if _, err := bare.OpenGuarded(ctx, "envelope", "any", nil); !errors.As(err, &em) || em.Code != http.StatusNotFound {
		t.Fatalf("policy on policy-less server = %v", err)
	}
	// And an unguarded stream on a guarded server emits no actions.
	st, err := bare.Open(ctx, "envelope", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	safe, _ := guardProbeFrames(t)
	if err := st.Send(&safe); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recv(); err != nil {
		t.Fatal(err)
	}
	if len(st.Actions()) != 0 {
		t.Errorf("unguarded stream collected actions: %+v", st.Actions())
	}
}

// TestServerRejectsBadPolicies pins construction-time validation.
func TestServerRejectsBadPolicies(t *testing.T) {
	det := fittedDetector(t, "envelope")
	cases := map[string][]guard.Policy{
		"unnamed":   {{Threshold: 0.5}},
		"duplicate": {{Name: "a", Threshold: 0.5}, {Name: "a", Threshold: 0.6}},
		"invalid":   {{Name: "a", Threshold: -1}},
	}
	for name, ps := range cases {
		if _, err := NewServer(Config{
			Detectors: map[string]safemon.Detector{"envelope": det},
			Policies:  ps,
		}); err == nil {
			t.Errorf("%s: NewServer accepted bad policies", name)
		}
	}
}

// TestStatsMitigationDecodingRegression pins the wire shape of the
// mitigation counters: the typed client must decode exactly what the
// documented /stats JSON carries.
func TestStatsMitigationDecodingRegression(t *testing.T) {
	raw := []byte(`{
		"uptime_seconds": 1.5,
		"backends": ["envelope"],
		"shards": 2,
		"frames": 10,
		"sessions_opened": 3,
		"sessions_active": 1,
		"queue_full": 0,
		"throughput_fps": 6.7,
		"p50_latency_ms": 0.1,
		"p99_latency_ms": 0.4,
		"mitigation": {
			"policies": ["stop-fast"],
			"guarded_streams": 2,
			"alerts": 4,
			"warns": 4,
			"pauses": 3,
			"safe_stops": 2,
			"retracts": 1,
			"releases": 1
		},
		"per_shard": []
	}`)
	var snap StatsSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	want := MitigationSnapshot{
		Policies: []string{"stop-fast"}, GuardedStreams: 2, Alerts: 4,
		Warns: 4, Pauses: 3, SafeStops: 2, Retracts: 1, Releases: 1,
	}
	if !reflect.DeepEqual(snap.Mitigation, want) {
		t.Errorf("decoded mitigation = %+v, want %+v", snap.Mitigation, want)
	}
	// And the snapshot marshals back to the same field names.
	out, err := json.Marshal(snap.Mitigation)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"policies", "guarded_streams", "alerts", "warns", "pauses", "safe_stops", "retracts", "releases"} {
		if !json.Valid(out) || !containsKey(out, key) {
			t.Errorf("marshaled mitigation missing %q: %s", key, out)
		}
	}
}

func containsKey(doc []byte, key string) bool {
	var m map[string]any
	if err := json.Unmarshal(doc, &m); err != nil {
		return false
	}
	_, ok := m[key]
	return ok
}
