package serve

import (
	"math"
	"testing"
	"time"

	"repro/safemon/obs"
)

// TestQuantileOf pins the log-linear in-bucket interpolation. The old
// upper-bound resolution over-reported every quantile by up to 2×; each
// case's wantBelow is that old (biased) answer, asserting the fix.
func TestQuantileOf(t *testing.T) {
	mkCounts := func(set map[int]uint64) [histBuckets]uint64 {
		var counts [histBuckets]uint64
		for i, c := range set {
			counts[i] = c
		}
		return counts
	}
	bucketMS := func(exp float64) float64 { return math.Exp2(exp) / 1e6 }

	cases := []struct {
		name      string
		counts    [histBuckets]uint64
		q         float64
		want      float64 // exact expected value, ms
		wantBelow float64 // the old upper-bound answer, ms (exclusive)
	}{
		{
			// A single sample resolves to the geometric mean of its
			// bucket's bounds, not the upper bound.
			name:      "single-sample",
			counts:    mkCounts(map[int]uint64{10: 1}),
			q:         0.5,
			want:      bucketMS(10.5),
			wantBelow: bucketMS(11),
		},
		{
			// Heavily skewed: 90 fast samples, 10 slow. The p99 lands in
			// the slow bucket near its upper edge but strictly inside it.
			name:      "skewed-p99",
			counts:    mkCounts(map[int]uint64{10: 90, 20: 10}),
			q:         0.99,
			want:      bucketMS(20.95),
			wantBelow: bucketMS(21),
		},
		{
			// Same histogram at the median stays in the fast bucket.
			name:      "skewed-p50",
			counts:    mkCounts(map[int]uint64{10: 90, 20: 10}),
			q:         0.5,
			want:      bucketMS(10 + 50.5/90),
			wantBelow: bucketMS(11),
		},
		{
			// The top (clamp) bucket interpolates like any other.
			name:      "top-bucket",
			counts:    mkCounts(map[int]uint64{histBuckets - 1: 4}),
			q:         0.99,
			want:      bucketMS(float64(histBuckets-1) + 3.5/4),
			wantBelow: bucketMS(float64(histBuckets)),
		},
		{
			// Uniform samples across two buckets: the median is the
			// boundary between them.
			name:      "two-buckets-median",
			counts:    mkCounts(map[int]uint64{5: 2, 6: 2}),
			q:         0.5,
			want:      bucketMS(6 + 0.5/2),
			wantBelow: bucketMS(7),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := quantileOf(tc.counts, tc.q)
			if math.Abs(got-tc.want) > tc.want*1e-12 {
				t.Errorf("quantileOf(q=%v) = %v ms, want %v ms", tc.q, got, tc.want)
			}
			if got >= tc.wantBelow {
				t.Errorf("quantileOf(q=%v) = %v ms still at/above the old upper-bound answer %v ms", tc.q, got, tc.wantBelow)
			}
		})
	}

	var empty [histBuckets]uint64
	if v := quantileOf(empty, 0.5); !math.IsNaN(v) {
		t.Errorf("empty histogram quantile = %v, want NaN", v)
	}
	if v := jsonQuantile(empty, 0.5); v != -1 {
		t.Errorf("empty histogram jsonQuantile = %v, want -1", v)
	}
}

// TestQuantileMonotonic checks quantiles never decrease in q and every
// reported value lies inside its sample range.
func TestQuantileMonotonic(t *testing.T) {
	var h obs.Histogram
	durations := []time.Duration{
		800 * time.Nanosecond, 2 * time.Microsecond, 5 * time.Microsecond,
		40 * time.Microsecond, 40 * time.Microsecond, 300 * time.Microsecond,
		2 * time.Millisecond, 100 * time.Millisecond,
	}
	for _, d := range durations {
		h.Observe(d)
	}
	counts := h.Counts()
	prev := 0.0
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := quantileOf(counts, q)
		if v < prev {
			t.Errorf("quantile(%v) = %v < quantile at lower q %v", q, v, prev)
		}
		prev = v
	}
	lo := float64(durations[0].Nanoseconds()) / 1e6 / 2
	hi := float64(durations[len(durations)-1].Nanoseconds()) / 1e6 * 2
	if p50 := quantileOf(counts, 0.5); p50 < lo || p50 > hi {
		t.Errorf("p50 = %v ms outside sample range [%v, %v]", p50, lo, hi)
	}
}
