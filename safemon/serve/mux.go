package serve

// Multiplexed streaming: POST /v1/mux carries many logical sessions over
// one binary-codec connection, collapsing the per-stream HTTP and
// goroutine overhead of /v1/stream into per-record sid routing. Every
// record carries a u32 sid; clients open sessions with BinOpen (backend,
// optional policy, optional labels), push BinFrame records, and
// half-close with BinClose, to which the server answers that session's
// BinDone. Failures are per-sid BinError records — backpressure answers
// 429 for the offending session only, never an HTTP status for the whole
// connection — so one connection can cheaply fan a node's worth of
// streams into a safemond, the transport ROADMAP item 1's gateway tier
// needs.

import (
	"context"
	"errors"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/safemon"
	"repro/safemon/guard"
	"repro/safemon/ledger"
)

// muxInDepth bounds each logical session's routing channel: enough to
// ride out scheduling jitter between the connection reader and the
// session goroutine, small enough that backpressure surfaces as a per-sid
// 429 instead of unbounded buffering.
const muxInDepth = 64

// muxWriter serializes binary record writes from the per-session
// goroutines onto the shared response. Per-sid record order is preserved
// because each session writes its own records from one goroutine; the
// mutex only interleaves records of different sessions.
type muxWriter struct {
	mu    sync.Mutex
	w     *binWriter
	flush func()
}

func (m *muxWriter) verdict(sid uint32, v *VerdictMsg) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.w.writeVerdict(sid, v) != nil {
		return
	}
	m.flush()
}

// actionVerdict writes a guard action edge immediately followed by the
// verdict that produced it, under one lock acquisition so no other
// session's record lands between them.
func (m *muxWriter) actionVerdict(sid uint32, a *ActionMsg, v *VerdictMsg) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.w.emit(&BinaryRecord{Type: BinAction, SID: sid, Action: *a}) != nil {
		return
	}
	if m.w.writeVerdict(sid, v) != nil {
		return
	}
	m.flush()
}

func (m *muxWriter) done(sid uint32, frames int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.w.emit(&BinaryRecord{Type: BinDone, SID: sid, Frames: uint64(frames)}) != nil {
		return
	}
	m.flush()
}

func (m *muxWriter) opened(sid uint32, version string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.w.emit(&BinaryRecord{Type: BinOpened, SID: sid, Version: version}) != nil {
		return
	}
	m.flush()
}

func (m *muxWriter) error(sid uint32, e *ErrorMsg) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.w.emit(&BinaryRecord{Type: BinError, SID: sid, Code: uint32(e.Code), Message: e.Message}) != nil {
		return
	}
	m.flush()
}

// muxFrame is one routed frame plus its decode-parse time (measured by
// the connection reader, attributed to the frame's decode stage by the
// session goroutine).
type muxFrame struct {
	frame safemon.Frame
	decNS int64
}

// muxSession is the connection reader's handle on one logical session:
// a bounded frame channel into the session goroutine plus the kill
// switch for per-sid backpressure cuts.
type muxSession struct {
	sid  uint32
	in   chan muxFrame
	quit chan struct{} // closed by kill: abandon queued frames and exit
	// reason is the ledger end-reason for a killed session; written
	// before quit closes, read after it fires.
	reason string
	// failed is set by the session goroutine when its stream died (push
	// error); the reader then drops further frames for the sid.
	failed atomic.Bool
	killed bool // reader-side: kill() called
	closed bool // reader-side: in closed
}

// offer routes one frame, waiting up to timeout when the channel is
// full; false means the session goroutine cannot keep up (per-sid 429).
func (ms *muxSession) offer(f *safemon.Frame, decNS int64, timeout time.Duration) bool {
	mf := muxFrame{frame: *f, decNS: decNS}
	select {
	case ms.in <- mf:
		return true
	default:
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case ms.in <- mf:
		return true
	case <-t.C:
		return false
	}
}

// closeInput half-closes the session: queued frames still process, then
// the goroutine emits its done record. Idempotent, reader-side only.
func (ms *muxSession) closeInput() {
	if !ms.closed && !ms.killed {
		ms.closed = true
		close(ms.in)
	}
}

// kill cuts the session without draining: the goroutine abandons queued
// frames and emits nothing further (the reader already emitted the
// per-sid error, or the whole connection failed). Reader-side only.
func (ms *muxSession) kill(reason string) {
	if !ms.killed {
		ms.killed = true
		ms.reason = reason
		close(ms.quit)
	}
}

// handleMux is the multiplexed binary endpoint. Admission errors are
// HTTP statuses for the connection; everything after the 200 — unknown
// backends, session caps, backpressure, malformed payloads — is a
// per-sid BinError record, so one bad session never costs the others
// their transport.
func (s *Server) handleMux(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Connection", "close")
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.cfg.DisableBinary {
		http.Error(w, "binary codec disabled", http.StatusUnsupportedMediaType)
		return
	}
	if !hasMediaType(r.Header.Get("Content-Type"), BinaryContentType) {
		http.Error(w, "mux requires Content-Type: "+BinaryContentType, http.StatusUnsupportedMediaType)
		return
	}
	if s.isDraining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	rc := http.NewResponseController(w)
	if err := rc.EnableFullDuplex(); err != nil && r.ProtoMajor < 2 {
		http.Error(w, "streaming unsupported", http.StatusHTTPVersionNotSupported)
		return
	}
	w.Header().Set("Content-Type", BinaryContentType)
	w.WriteHeader(http.StatusOK)
	rc.Flush()
	s.codec.muxConns.Add(1)

	mw := &muxWriter{w: newBinWriter(w), flush: func() { rc.Flush() }}
	dec := newBinReader(r.Body)
	defer dec.release()
	armIdle := func() { rc.SetReadDeadline(time.Now().Add(s.cfg.StreamIdleTimeout)) }

	sessions := map[uint32]*muxSession{}
	var wg sync.WaitGroup
	clean := false
	defer func() {
		// Connection over. On a clean end (request side closed at a record
		// boundary) the remaining sessions half-close: queued frames still
		// process and each session gets its done record. On a failed
		// connection they are killed instead — a done record after a fatal
		// error would misreport the streams as complete.
		for _, ms := range sessions {
			if clean {
				ms.closeInput()
			} else {
				ms.kill("error: connection failure")
			}
		}
		wg.Wait()
	}()

	// fatal reports a connection-level error and linger-drains a bounded
	// slice of the request body: closing with unread received data can
	// RST the in-flight error record away before the client reads it.
	fatal := func(sid uint32, e *ErrorMsg) {
		mw.error(sid, e)
		rc.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
		io.Copy(io.Discard, io.LimitReader(r.Body, 64<<10))
	}

	for {
		armIdle()
		rec, err := dec.next()
		if err != nil {
			switch {
			case errors.Is(err, io.EOF):
				clean = true
				return // clean end at a record boundary
			case errors.Is(err, errBadPayload):
				// The record framed correctly but its payload is invalid
				// (non-finite frame, ragged struct): fail just that sid
				// and keep the connection.
				sid := dec.lastSID
				mw.error(sid, &ErrorMsg{Code: http.StatusBadRequest, Message: "bad record: " + err.Error()})
				if ms := sessions[sid]; ms != nil {
					ms.kill("error: bad record")
					delete(sessions, sid)
				}
				continue
			default:
				// Broken framing: the byte stream cannot continue.
				fatal(0, &ErrorMsg{Code: http.StatusBadRequest, Message: "bad record: " + err.Error()})
				return
			}
		}
		switch rec.Type {
		case BinOpen:
			s.muxOpen(r, mw, sessions, &wg, rec)
		case BinFrame:
			ms := sessions[rec.SID]
			if ms == nil || ms.failed.Load() {
				continue // unknown or already-failed sid: drop
			}
			if !ms.offer(&rec.Frame, dec.decNS, s.manager.cfg.EnqueueTimeout) {
				mw.error(rec.SID, &ErrorMsg{Code: http.StatusTooManyRequests, Message: ErrQueueFull.Error()})
				ms.kill("error: queue full")
				delete(sessions, rec.SID)
			}
		case BinClose:
			if ms := sessions[rec.SID]; ms != nil {
				ms.closeInput()
				delete(sessions, rec.SID)
			}
		default:
			fatal(rec.SID, &ErrorMsg{Code: http.StatusBadRequest,
				Message: "unexpected " + binTypeName(rec.Type) + " record on a mux connection"})
			return
		}
	}
}

// muxOpen admits one logical session: the mux twin of handleStream's
// admission sequence, answering with per-sid records instead of HTTP
// statuses.
func (s *Server) muxOpen(r *http.Request, mw *muxWriter, sessions map[uint32]*muxSession, wg *sync.WaitGroup, rec *BinaryRecord) {
	sid := rec.SID
	if sid == 0 {
		mw.error(0, &ErrorMsg{Code: http.StatusBadRequest, Message: "open needs a nonzero sid"})
		return
	}
	if _, dup := sessions[sid]; dup {
		mw.error(sid, &ErrorMsg{Code: http.StatusBadRequest, Message: "sid already open"})
		return
	}
	backend := rec.Backend
	if backend == "" {
		backend = s.cfg.DefaultBackend
	}
	if backend == "" {
		backend = s.manager.soleBackend()
	}
	var policy *guard.Policy
	policyName := ""
	if rec.Policy != "" {
		p, ok := s.policies[rec.Policy]
		if !ok {
			mw.error(sid, &ErrorMsg{Code: http.StatusNotFound, Message: "unknown policy " + rec.Policy})
			return
		}
		policy = &p
		policyName = rec.Policy
	}
	if s.isDraining() {
		mw.error(sid, &ErrorMsg{Code: http.StatusServiceUnavailable, Message: ErrDraining.Error()})
		return
	}
	// Per-sid admission control: the session cap answers with a 429
	// record for this sid, leaving the connection's other sessions alone.
	if err := s.manager.Reserve(); err != nil {
		mw.error(sid, openError(err))
		return
	}
	// Copied out of the decoder's reused record; zero labels means an
	// unlabeled stream (the open payload cannot distinguish nil from
	// empty, and neither can a backend).
	var labels []int
	if len(rec.Labels) > 0 {
		labels = append([]int{}, rec.Labels...)
	}
	sess, err := s.manager.Open(backend, labels)
	if err != nil {
		s.manager.Unreserve()
		mw.error(sid, openError(err))
		return
	}
	var sg *streamGuard
	if policy != nil {
		sg, err = newStreamGuard(*policy, &s.mitigation)
		if err != nil {
			sess.Release(false)
			mw.error(sid, &ErrorMsg{Code: http.StatusInternalServerError, Message: err.Error()})
			return
		}
	}
	s.codec.muxSessions.Add(1)
	tr := s.metrics.streamTrace(backend, "binary-mux", sess.Version(), policyName,
		s.manager.cfg.MaxBatch > 1, s.cfg.Ledger != nil)
	ms := &muxSession{sid: sid, in: make(chan muxFrame, muxInDepth), quit: make(chan struct{})}
	sessions[sid] = ms
	mw.opened(sid, sess.Version())
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.runMuxSession(r.Context(), ms, sess, sg, tr, backend, policyName, labels, mw)
	}()
}

// runMuxSession is one logical session's pump: frames in from the
// connection reader, verdicts (and guard actions) out through the shared
// writer, with the same ledger recording as a /v1/stream handler.
func (s *Server) runMuxSession(ctx context.Context, ms *muxSession, sess *Session, sg *streamGuard, tr *streamTrace, backend, policyName string, labels []int, mw *muxWriter) {
	rec := ledger.NewRecorder(s.cfg.Ledger, backend, sess.Version(), policyName)
	rec.Start(labels32(labels))
	frames := 0
	healthy := true
	endReason := "error: handler exit"
	defer func() {
		rec.End(frames, endReason)
		sess.Release(healthy)
	}()
	// Reused across the loop like handleStream's frame: its pointer rides
	// the shard mailbox, and Push blocks until the shard replied, so
	// hoisting it saves one heap allocation per frame.
	var frame safemon.Frame
	for {
		// Kill wins over queued frames: a 429-cut session must stop
		// promptly, not finish its backlog.
		select {
		case <-ms.quit:
			healthy = false
			endReason = ms.reason
			return
		default:
		}
		select {
		case <-ms.quit:
			healthy = false
			endReason = ms.reason
			return
		case mf, ok := <-ms.in:
			if !ok {
				endReason = "eof"
				mw.done(ms.sid, frames)
				return
			}
			frame = mf.frame
			tr.setStage(stageDecode, mf.decNS)
			v, err := sess.Push(ctx, &frame)
			if err != nil {
				healthy = false
				endReason = "error: push"
				ms.failed.Store(true)
				mw.error(ms.sid, pushError(err))
				return
			}
			tr.setStage(stageQueue, sess.trace.queueNS)
			tr.setStage(stageGather, sess.trace.gatherNS)
			tr.setStage(stageInfer, sess.trace.inferNS)
			frames++
			wire := WireVerdict(v)
			t0 := time.Now()
			rec.Verdict(v, &frame)
			t1 := time.Now()
			// Guard covers the step decision and its ledger edge; encode
			// covers the wire write (actionVerdict bundles action+verdict
			// under one lock, so the pair lands in encode together).
			t2 := t1
			emitted := false
			if sg != nil {
				if act := sg.step(wire); act != nil {
					rec.Action(sg.decision())
					t2 = time.Now()
					mw.actionVerdict(ms.sid, act, &wire)
					emitted = true
				} else {
					t2 = time.Now()
				}
			}
			if !emitted {
				mw.verdict(ms.sid, &wire)
			}
			end := time.Now()
			tr.setStage(stageLedger, t1.Sub(t0).Nanoseconds())
			tr.setStage(stageGuard, t2.Sub(t1).Nanoseconds())
			tr.setStage(stageEncode, end.Sub(t2).Nanoseconds())
			tr.observe(frames-1, end.UnixNano())
		}
	}
}
