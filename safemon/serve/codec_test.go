package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/safemon"
)

// newHTTPTestServer mounts an already-built Server behind httptest with
// cleanup (newTestService's twin for custom Configs).
func newHTTPTestServer(t *testing.T, srv *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Shutdown()
	})
	return ts
}

// isHTTPError reports whether err is a wire *ErrorMsg with the code.
func isHTTPError(err error, code int) bool {
	var em *ErrorMsg
	return errors.As(err, &em) && em.Code == code
}

// randomBinaryRecord generates one semantically valid record of a random
// type for the round-trip property test.
func randomBinaryRecord(r *rand.Rand) BinaryRecord {
	randString := func(max int) string {
		b := make([]byte, r.Intn(max+1))
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		return string(b)
	}
	rec := BinaryRecord{Type: byte(1 + r.Intn(int(binMaxType))), SID: r.Uint32()}
	switch rec.Type {
	case BinFrame:
		for i := range rec.Frame {
			rec.Frame[i] = r.NormFloat64() * 100
		}
	case BinLabels, BinOpen:
		for i := 0; i < r.Intn(40); i++ {
			rec.Labels = append(rec.Labels, r.Intn(16)-1)
		}
		if rec.Type == BinOpen {
			rec.Backend = randString(12)
			rec.Policy = randString(12)
		}
	case BinVerdict:
		rec.Verdict = VerdictMsg{I: r.Intn(1 << 20), G: r.Intn(15) - 1, Score: r.NormFloat64(), Unsafe: r.Intn(2) == 1}
	case BinAction:
		rec.Action = ActionMsg{
			I:          r.Intn(1 << 20),
			AlertFrame: r.Intn(1<<20) - 1,
			Score:      r.NormFloat64(),
			Level:      actionLevels[r.Intn(len(actionLevels))],
			Policy:     randString(30),
		}
	case BinDone:
		rec.Frames = r.Uint64()
	case BinError:
		rec.Code = uint32(r.Intn(600))
		rec.Message = randString(60)
	case BinOpened:
		rec.Version = randString(20)
	case BinClose:
	}
	return rec
}

// binaryRecordsEqual compares the fields meaningful for the record's
// type, treating nil and empty label slices as equal.
func binaryRecordsEqual(a, b *BinaryRecord) bool {
	if a.Type != b.Type || a.SID != b.SID {
		return false
	}
	if len(a.Labels) != len(b.Labels) {
		return false
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			return false
		}
	}
	return a.Frame == b.Frame && a.Verdict == b.Verdict && a.Action == b.Action &&
		a.Frames == b.Frames && a.Code == b.Code && a.Message == b.Message &&
		a.Backend == b.Backend && a.Policy == b.Policy && a.Version == b.Version
}

// TestBinaryRecordRoundTripProperty drives random records of every type
// through encode → decode and requires lossless agreement, both one
// record at a time and as concatenated streams through a binReader
// (which also proves the decoder stays aligned across a mixed stream).
func TestBinaryRecordRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	var got BinaryRecord
	for i := 0; i < 2000; i++ {
		rec := randomBinaryRecord(r)
		b, err := AppendBinaryRecord(nil, &rec)
		if err != nil {
			t.Fatalf("encode %d: %v", i, err)
		}
		n, err := DecodeBinaryRecord(b, &got)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if n != len(b) {
			t.Fatalf("decode %d consumed %d of %d bytes", i, n, len(b))
		}
		if !binaryRecordsEqual(&rec, &got) {
			t.Fatalf("round trip %d: sent %+v got %+v", i, rec, got)
		}
	}

	for seq := 0; seq < 100; seq++ {
		var stream []byte
		var sent []BinaryRecord
		for i := 0; i < 1+r.Intn(16); i++ {
			rec := randomBinaryRecord(r)
			b, err := AppendBinaryRecord(stream, &rec)
			if err != nil {
				t.Fatal(err)
			}
			stream = b
			sent = append(sent, rec)
		}
		br := newBinReader(bytes.NewReader(stream))
		for i := range sent {
			rec, err := br.next()
			if err != nil {
				t.Fatalf("seq %d record %d: %v", seq, i, err)
			}
			if !binaryRecordsEqual(&sent[i], rec) {
				t.Fatalf("seq %d record %d: sent %+v got %+v", seq, i, sent[i], *rec)
			}
		}
		if _, err := br.next(); err != io.EOF {
			t.Fatalf("seq %d: want io.EOF after last record, got %v", seq, err)
		}
		br.release()
	}
}

// encodeRaw frames an arbitrary payload under a given type for the
// malformed-input tests.
func encodeRaw(typ byte, sid uint32, payload []byte) []byte {
	b := appendBinHeader(nil, typ, sid, len(payload))
	return append(b, payload...)
}

// TestDecodeBinaryRecordMalformed pins the decoder's rejection behavior:
// short buffers and oversized lengths are framing errors, ragged payloads
// are errBadPayload (recoverable per sid, with Type and SID preserved),
// and nothing panics.
func TestDecodeBinaryRecordMalformed(t *testing.T) {
	frame := make([]byte, binFramePayload)
	cases := []struct {
		name       string
		b          []byte
		badPayload bool // want errors.Is(err, errBadPayload)
	}{
		{"empty", nil, false},
		{"short header", []byte{byte(BinFrame), 0, 0}, false},
		{"truncated payload", encodeRaw(BinFrame, 1, frame)[:40], false},
		{"oversized length", appendBinHeader(nil, BinFrame, 1, maxRecordBytes+1), false},
		{"type zero", encodeRaw(0, 1, nil), false},
		{"type unknown", encodeRaw(binMaxType+1, 1, nil), false},
		{"frame short", encodeRaw(BinFrame, 7, frame[:binFramePayload-8]), true},
		{"frame long", encodeRaw(BinFrame, 7, append(append([]byte{}, frame...), 0, 0, 0, 0, 0, 0, 0, 0)), true},
		{"labels ragged", encodeRaw(BinLabels, 7, []byte{1, 2, 3}), true},
		{"verdict short", encodeRaw(BinVerdict, 7, make([]byte, binVerdictPayload-1)), true},
		{"verdict bad bool", encodeRaw(BinVerdict, 7, append(make([]byte, binVerdictPayload-1), 7)), true},
		{"action short", encodeRaw(BinAction, 7, make([]byte, binActionMin-1)), true},
		{"action bad level", encodeRaw(BinAction, 7, func() []byte {
			p := make([]byte, binActionMin)
			p[24] = byte(len(actionLevels))
			return p
		}()), true},
		{"action bad policy len", encodeRaw(BinAction, 7, func() []byte {
			p := make([]byte, binActionMin)
			p[25] = 9 // claims 9 policy bytes, payload has 0
			return p
		}()), true},
		{"done short", encodeRaw(BinDone, 7, make([]byte, binDonePayload-1)), true},
		{"error short", encodeRaw(BinError, 7, []byte{1, 2}), true},
		{"open short", encodeRaw(BinOpen, 7, []byte{9}), true},
		{"open backend overrun", encodeRaw(BinOpen, 7, []byte{200, 0, 'x'}), true},
		{"open policy overrun", encodeRaw(BinOpen, 7, []byte{1, 0, 'x', 200, 0}), true},
		{"open labels ragged", encodeRaw(BinOpen, 7, []byte{0, 0, 0, 0, 1, 2, 3}), true},
		{"close nonempty", encodeRaw(BinClose, 7, []byte{1}), true},
	}
	var rec BinaryRecord
	for _, tc := range cases {
		_, err := DecodeBinaryRecord(tc.b, &rec)
		if err == nil {
			t.Errorf("%s: decode succeeded", tc.name)
			continue
		}
		if got := errors.Is(err, errBadPayload); got != tc.badPayload {
			t.Errorf("%s: errBadPayload = %v, want %v (err %v)", tc.name, got, tc.badPayload, err)
		}
		if tc.badPayload && rec.SID != 7 {
			t.Errorf("%s: sid %d not preserved on payload error", tc.name, rec.SID)
		}
	}
}

// TestBinaryDecodeRejectsNonFinite is the binary codec's non-finite
// regression test: a frame record carrying NaN or ±Inf must be rejected
// at decode time as a payload error, before it can reach a backend.
func TestBinaryDecodeRejectsNonFinite(t *testing.T) {
	for name, bad := range map[string]float64{"nan": math.NaN(), "+inf": math.Inf(1), "-inf": math.Inf(-1)} {
		payload := make([]byte, binFramePayload)
		binary.LittleEndian.PutUint64(payload[8*17:], math.Float64bits(bad))
		var rec BinaryRecord
		_, err := DecodeBinaryRecord(encodeRaw(BinFrame, 3, payload), &rec)
		if !errors.Is(err, errNonFiniteFrame) {
			t.Errorf("%s: err = %v, want errNonFiniteFrame", name, err)
		}
		if !errors.Is(err, errBadPayload) {
			t.Errorf("%s: non-finite rejection must be a payload error", name)
		}
	}
}

// TestJSONDecodeRejectsNonFinite is the NDJSON codec's twin: no frame
// value outside the finite float64 range may decode, whether spelled as
// an overflow literal or smuggled in non-standard JSON.
func TestJSONDecodeRejectsNonFinite(t *testing.T) {
	var msg ClientMsg
	if err := DecodeRecord([]byte(`{"frame":[1e999]}`), &msg); err == nil {
		t.Error("overflowing frame literal decoded")
	}
	// The explicit finiteness check (for decoders reached with already-
	// parsed values): patch a NaN in after a valid parse.
	if err := DecodeRecord([]byte(`{"frame":[1,2,3]}`), &msg); err != nil {
		t.Fatal(err)
	}
	msg.Frame[1] = math.NaN()
	found := false
	for _, v := range msg.Frame {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			found = true
		}
	}
	if !found {
		t.Fatal("test harness failed to construct a NaN")
	}
}

// TestStreamRejectsNonFiniteFrames drives the rejection end to end on
// both codecs: a non-finite frame answers a 400 error record and ends
// the stream.
func TestStreamRejectsNonFiniteFrames(t *testing.T) {
	det := fittedDetector(t, "envelope")
	_, client := newTestService(t, map[string]safemon.Detector{"envelope": det}, ManagerConfig{})

	t.Run("json", func(t *testing.T) {
		// Hand-rolled request: the Go client refuses to marshal NaN, which
		// is exactly why the server must still reject it on the wire.
		body := strings.NewReader(`{"frame":[NaN` + strings.Repeat(",0", frameSize-1) + `]}` + "\n")
		req, err := http.NewRequest(http.MethodPost, client.BaseURL+"/v1/stream?backend=envelope", body)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/x-ndjson")
		resp, err := client.httpClient().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var msg ServerMsg
		if err := json.NewDecoder(resp.Body).Decode(&msg); err != nil {
			t.Fatal(err)
		}
		if msg.Error == nil || msg.Error.Code != http.StatusBadRequest {
			t.Fatalf("want 400 error record, got %+v", msg)
		}
	})

	t.Run("binary", func(t *testing.T) {
		bc := *client
		bc.Codec = "binary"
		st, err := bc.Open(context.Background(), "envelope", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		var frame safemon.Frame
		frame[5] = math.Inf(1)
		if err := st.Send(&frame); err != nil {
			t.Fatal(err)
		}
		_, err = st.Recv()
		var em *ErrorMsg
		if !errors.As(err, &em) || em.Code != http.StatusBadRequest {
			t.Fatalf("want 400 error record, got %v", err)
		}
	})
}

// TestScannerBufferPooled pins satellite 2: the NDJSON record reader's
// 64 KiB scan buffer comes from a pool, so steady-state per-connection
// setup allocates far less than the buffer it borrows.
func TestScannerBufferPooled(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation measurements")
	}
	line := []byte(`{"frame":[` + strings.Repeat("0,", frameSize-1) + `0]}` + "\n")
	// Warm the pool.
	for i := 0; i < 8; i++ {
		rr := newRecordReader(bytes.NewReader(line))
		var msg ClientMsg
		if err := rr.next(&msg); err != nil {
			t.Fatal(err)
		}
		rr.release()
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var msg ClientMsg
		for i := 0; i < b.N; i++ {
			rr := newRecordReader(bytes.NewReader(line))
			if err := rr.next(&msg); err != nil {
				b.Fatal(err)
			}
			rr.release()
		}
	})
	if per := res.AllocedBytesPerOp(); per > 16<<10 {
		t.Fatalf("record reader allocates %d B per connection; the 64 KiB scan buffer is not pooled", per)
	}
}

// TestBinaryStreamEndToEnd runs a whole trajectory over a binary
// /v1/stream connection and requires exact verdict agreement with the
// NDJSON transport, plus correct codec counters in /stats.
func TestBinaryStreamEndToEnd(t *testing.T) {
	det := fittedDetector(t, "envelope")
	_, client := newTestService(t, map[string]safemon.Detector{"envelope": det}, ManagerConfig{})
	traj := testFold(t).Test[0]
	ctx := context.Background()

	jsonVerdicts, err := client.StreamTrajectory(ctx, "envelope", traj)
	if err != nil {
		t.Fatal(err)
	}
	bc := *client
	bc.Codec = "binary"
	binVerdicts, err := bc.StreamTrajectory(ctx, "envelope", traj)
	if err != nil {
		t.Fatal(err)
	}
	if len(jsonVerdicts) != len(binVerdicts) {
		t.Fatalf("json %d verdicts, binary %d", len(jsonVerdicts), len(binVerdicts))
	}
	for i := range jsonVerdicts {
		if jsonVerdicts[i] != binVerdicts[i] {
			t.Fatalf("verdict %d: json %+v binary %+v", i, jsonVerdicts[i], binVerdicts[i])
		}
	}

	snap, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Codec.JSONStreams < 1 || snap.Codec.BinaryStreams < 1 {
		t.Fatalf("codec counters = %+v, want both stream kinds counted", snap.Codec)
	}
}

// TestBinaryStreamDisabled pins the opt-out: with DisableBinary set, a
// binary negotiation answers 415 and NDJSON still works.
func TestBinaryStreamDisabled(t *testing.T) {
	det := fittedDetector(t, "envelope")
	srv, err := NewServer(Config{
		Detectors:     map[string]safemon.Detector{"envelope": det},
		DisableBinary: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPTestServer(t, srv)
	client := &Client{BaseURL: ts.URL, HTTPClient: ts.Client(), Codec: "binary"}
	if _, err := client.Open(context.Background(), "envelope", nil); !isHTTPError(err, http.StatusUnsupportedMediaType) {
		t.Fatalf("binary open with binary disabled: %v, want 415", err)
	}
	if _, err := client.OpenMux(context.Background()); !isHTTPError(err, http.StatusUnsupportedMediaType) {
		t.Fatalf("mux open with binary disabled: %v, want 415", err)
	}
	client.Codec = ""
	traj := testFold(t).Test[0]
	if _, err := client.StreamTrajectory(context.Background(), "envelope", traj); err != nil {
		t.Fatalf("NDJSON with binary disabled: %v", err)
	}
}

// TestGuardedBinaryStream pins action records across codecs: a guarded
// binary stream must deliver the same action sequence as its NDJSON
// twin.
func TestGuardedBinaryStream(t *testing.T) {
	_, client := newGuardedService(t, testGuardPolicy())
	safe, wild := guardProbeFrames(t)
	frames := make([]safemon.Frame, 0, 14)
	for i := 0; i < 5; i++ {
		frames = append(frames, safe)
	}
	for i := 0; i < 4; i++ {
		frames = append(frames, wild)
	}
	for i := 0; i < 5; i++ {
		frames = append(frames, safe)
	}

	run := func(codec string) []ActionMsg {
		t.Helper()
		c := *client
		c.Codec = codec
		st, err := c.OpenGuarded(context.Background(), "envelope", "stop-fast", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		for i := range frames {
			if err := st.Send(&frames[i]); err != nil {
				t.Fatalf("send %d: %v", i, err)
			}
			if _, err := st.Recv(); err != nil {
				t.Fatalf("recv %d: %v", i, err)
			}
		}
		if err := st.CloseSend(); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Recv(); err != io.EOF {
			t.Fatalf("want done, got %v", err)
		}
		return st.Actions()
	}

	jsonActions := run("")
	binActions := run("binary")
	if len(jsonActions) == 0 {
		t.Fatal("guarded stream produced no actions")
	}
	if fmt.Sprintf("%+v", jsonActions) != fmt.Sprintf("%+v", binActions) {
		t.Fatalf("actions differ:\n json  %+v\n binary %+v", jsonActions, binActions)
	}
}
