package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/safemon"
	"repro/safemon/guard"
	"repro/safemon/ledger"
)

// newLedgeredService stands up a Server recording into an in-memory
// ledger. The appender outlives the server (the server only borrows it),
// so cleanup closes it after Shutdown.
func newLedgeredService(t *testing.T, detectors map[string]safemon.Detector, policies ...guard.Policy) (*Server, *Client, *ledger.Appender) {
	t.Helper()
	app := ledger.NewAppender(ledger.NewMemoryStore(0), ledger.Options{})
	t.Cleanup(func() { app.Close() })
	srv, err := NewServer(Config{
		Detectors: detectors,
		Policies:  policies,
		Ledger:    app,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Shutdown()
	})
	return srv, &Client{BaseURL: ts.URL, HTTPClient: ts.Client()}, app
}

// driveIncident streams safe/wild/safe frames through a guarded stream so
// the policy latches, and returns the verdicts and actions the live
// stream delivered.
func driveIncident(t *testing.T, client *Client, backend, policy string, frames []*safemon.Frame) ([]safemon.FrameVerdict, []ActionMsg) {
	t.Helper()
	ctx := context.Background()
	st, err := client.OpenGuarded(ctx, backend, policy, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var verdicts []safemon.FrameVerdict
	for i, f := range frames {
		if err := st.Send(f); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		v, err := st.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		verdicts = append(verdicts, v)
	}
	if err := st.CloseSend(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recv(); err != io.EOF {
		t.Fatalf("expected done, got %v", err)
	}
	return verdicts, st.Actions()
}

// incidentFrames is the canonical attack shape from the guard tests:
// 5 safe, 4 wild, 5 safe — under the stop-fast policy the ladder reaches
// safe-stop at frame 8 and latches.
func incidentFrames(t *testing.T) []*safemon.Frame {
	t.Helper()
	safe, wild := guardProbeFrames(t)
	frames := make([]*safemon.Frame, 0, 14)
	for i := 0; i < 5; i++ {
		frames = append(frames, &safe)
	}
	for i := 0; i < 4; i++ {
		frames = append(frames, &wild)
	}
	for i := 0; i < 5; i++ {
		frames = append(frames, &safe)
	}
	return frames
}

// waitIncidentClosed polls the incident detail until the recorder's
// deferred session-end event lands (the handler emits Done to the client
// before its deferred End runs, so list-after-EOF can race it briefly).
func waitIncidentClosed(t *testing.T, client *Client, id string) *IncidentDetail {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(5 * time.Second)
	for {
		detail, err := client.Incident(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if detail.Closed || time.Now().After(deadline) {
			return detail
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// wireMsgLines renders already-wire-form verdicts the same way wireLines
// renders safemon verdicts, so trails from both sides compare as bytes.
func wireMsgLines(t *testing.T, verdicts []VerdictMsg) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, v := range verdicts {
		if err := enc.Encode(v); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestIncidentRoundTripOverServe is the incidents smoke test: a guarded
// stream latches safe-stop, the incident shows up in GET /v1/incidents,
// its detail carries the exact recorded trail, and a same-backend
// same-policy replay reproduces that trail byte-identically.
func TestIncidentRoundTripOverServe(t *testing.T) {
	det := fittedDetector(t, "envelope")
	_, client, _ := newLedgeredService(t, map[string]safemon.Detector{"envelope": det}, testGuardPolicy())
	ctx := context.Background()

	frames := incidentFrames(t)
	verdicts, actions := driveIncident(t, client, "envelope", "stop-fast", frames)
	if len(actions) == 0 || actions[len(actions)-1].Level != "safe-stop" {
		t.Fatalf("stream did not latch: actions = %+v", actions)
	}

	incs, err := client.Incidents(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(incs) != 1 {
		t.Fatalf("incidents = %+v, want exactly 1", incs)
	}
	inc := incs[0]
	if inc.Backend != "envelope" || inc.Policy != "stop-fast" {
		t.Errorf("incident context = %q/%q", inc.Backend, inc.Policy)
	}
	if inc.TriggerAction != "safe-stop" {
		t.Errorf("trigger action = %q, want safe-stop", inc.TriggerAction)
	}
	if inc.TriggerFrame != 8 {
		t.Errorf("trigger frame = %d, want 8", inc.TriggerFrame)
	}

	detail := waitIncidentClosed(t, client, inc.ID)
	if !detail.Closed || detail.EndReason != "eof" {
		t.Errorf("detail closed=%v end=%q, want closed eof", detail.Closed, detail.EndReason)
	}
	if detail.Frames != len(frames) {
		t.Errorf("detail frames = %d, want %d", detail.Frames, len(frames))
	}
	if !bytes.Equal(wireMsgLines(t, detail.Verdicts), wireLines(t, verdicts)) {
		t.Errorf("recorded verdicts differ from the live stream's")
	}
	if !reflect.DeepEqual(detail.Actions, actions) {
		t.Errorf("recorded actions = %+v, want %+v", detail.Actions, actions)
	}

	res, err := client.ReplayIncident(ctx, inc.ID, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if !res.VerdictsMatch || !res.ActionsMatch {
		t.Fatalf("replay fidelity: verdicts_match=%v actions_match=%v", res.VerdictsMatch, res.ActionsMatch)
	}
	if res.Replay.Backend != "envelope" || res.Replay.Policy != "stop-fast" {
		t.Errorf("replay defaulted to %q/%q", res.Replay.Backend, res.Replay.Policy)
	}
	if !bytes.Equal(wireMsgLines(t, res.Replay.Verdicts), wireLines(t, verdicts)) {
		t.Errorf("replayed verdicts differ from the live stream's")
	}

	// Unknown incidents and backends are 404s, not 500s.
	if _, err := client.Incident(ctx, "inc-999"); err == nil {
		t.Error("expected error for unknown incident")
	}
	if _, err := client.ReplayIncident(ctx, inc.ID, "no-such-backend", ""); err == nil {
		t.Error("expected error for unknown replay backend")
	}
}

func TestResolveIncidentUnpins(t *testing.T) {
	det := fittedDetector(t, "envelope")
	_, client, app := newLedgeredService(t, map[string]safemon.Detector{"envelope": det}, testGuardPolicy())
	ctx := context.Background()

	driveIncident(t, client, "envelope", "stop-fast", incidentFrames(t))
	incs, err := client.Incidents(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(incs) != 1 {
		t.Fatalf("incidents = %+v, want exactly 1", incs)
	}
	pinner := app.Store().(ledger.Pinner)
	if pins := pinner.Pinned(); len(pins) != 1 || pins[0] != incs[0].Session {
		t.Fatalf("pinned = %v, want [%d]", pins, incs[0].Session)
	}

	// Acknowledge: the pin goes away so retention can reclaim the
	// segments; the events themselves are untouched, so the incident is
	// still listable and replayable until compaction removes them.
	if err := client.ResolveIncident(ctx, incs[0].ID); err != nil {
		t.Fatal(err)
	}
	if pins := pinner.Pinned(); len(pins) != 0 {
		t.Fatalf("pins after resolve = %v, want none", pins)
	}
	if after, err := client.Incidents(ctx, 0); err != nil || len(after) != 1 {
		t.Fatalf("resolved incident no longer listable: %v %v", after, err)
	}

	// A second resolve and a bogus ID are 404s, not 500s.
	for _, id := range []string{incs[0].ID, "inc-999", "not-an-id"} {
		err := client.ResolveIncident(ctx, id)
		var em *ErrorMsg
		if !errors.As(err, &em) || em.Code != http.StatusNotFound {
			t.Errorf("resolve %q: err = %v, want 404", id, err)
		}
	}
}

// TestReplayFidelityAllBackends is the replay-fidelity golden test: for
// every registered backend, an incident recorded through a live guarded
// stream must replay byte-identically — same verdict records, same action
// records — when re-run through the same backend and policy.
func TestReplayFidelityAllBackends(t *testing.T) {
	ctx := context.Background()
	// Hair-trigger ladder so every backend's wild-frame scores latch.
	pol := guard.Policy{
		Name: "latch", Threshold: 1e-9,
		DebounceFrames: 1, ReleaseFrames: 2, EscalateFrames: 1,
		InitialAction: guard.ActionWarn, MaxAction: guard.ActionSafeStop,
	}
	frames := incidentFrames(t)
	for _, backend := range []string{"context-aware", "lookahead", "monolithic", "envelope", "skipchain", "sdsdl"} {
		t.Run(backend, func(t *testing.T) {
			det := fittedDetector(t, backend)
			_, client, _ := newLedgeredService(t, map[string]safemon.Detector{backend: det}, pol)

			verdicts, _ := driveIncident(t, client, backend, "latch", frames)
			incs, err := client.Incidents(ctx, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(incs) != 1 {
				t.Fatalf("incidents = %+v, want exactly 1", incs)
			}
			res, err := client.ReplayIncident(ctx, incs[0].ID, "", "")
			if err != nil {
				t.Fatal(err)
			}
			if !res.VerdictsMatch {
				t.Errorf("replayed verdicts differ:\noriginal %s\nreplay   %s",
					wireMsgLines(t, res.Original.Verdicts), wireMsgLines(t, res.Replay.Verdicts))
			}
			if !res.ActionsMatch {
				t.Errorf("replayed actions differ:\noriginal %+v\nreplay   %+v",
					res.Original.Actions, res.Replay.Actions)
			}
			if !bytes.Equal(wireMsgLines(t, res.Replay.Verdicts), wireLines(t, verdicts)) {
				t.Errorf("replayed verdicts differ from the live stream's")
			}
		})
	}
}

// TestReplayAcrossBackendAndPolicy answers the "what would the other
// monitor have done?" half of the replay contract: re-running a recorded
// incident through a different backend must yield exactly what that
// backend's offline session produces on the recorded inputs, and a
// different policy must yield that policy's offline engine trail.
func TestReplayAcrossBackendAndPolicy(t *testing.T) {
	ctx := context.Background()
	envelope := fittedDetector(t, "envelope")
	skipchain := fittedDetector(t, "skipchain")
	warnOnly := guard.Policy{
		Name: "warn-only", Threshold: 1.0,
		DebounceFrames: 2, ReleaseFrames: 2, EscalateFrames: 1,
		InitialAction: guard.ActionWarn, MaxAction: guard.ActionWarn,
		ReactionBudgetFrames: 5,
	}
	_, client, _ := newLedgeredService(t,
		map[string]safemon.Detector{"envelope": envelope, "skipchain": skipchain},
		testGuardPolicy(), warnOnly)

	frames := incidentFrames(t)
	driveIncident(t, client, "envelope", "stop-fast", frames)
	incs, err := client.Incidents(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(incs) != 1 {
		t.Fatalf("incidents = %+v, want exactly 1", incs)
	}
	id := incs[0].ID

	// Offline reference: the same recorded inputs through a fresh
	// skipchain session, verdicts stepped through the warn-only engine.
	sess, err := skipchain.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	eng, err := guard.NewEngine(warnOnly)
	if err != nil {
		t.Fatal(err)
	}
	var offline []safemon.FrameVerdict
	var offlineActions []ActionMsg
	for _, f := range frames {
		v, err := sess.Push(f)
		if err != nil {
			t.Fatal(err)
		}
		offline = append(offline, v)
		if d := eng.Step(v); d.Changed {
			offlineActions = append(offlineActions, ActionMsg{
				I: d.FrameIndex, Level: d.Action.String(),
				AlertFrame: d.AlertFrame, Score: d.Score, Policy: "warn-only",
			})
		}
	}

	res, err := client.ReplayIncident(ctx, id, "skipchain", "warn-only")
	if err != nil {
		t.Fatal(err)
	}
	if res.Replay.Backend != "skipchain" || res.Replay.Policy != "warn-only" {
		t.Fatalf("replay ran as %q/%q", res.Replay.Backend, res.Replay.Policy)
	}
	if !bytes.Equal(wireMsgLines(t, res.Replay.Verdicts), wireLines(t, offline)) {
		t.Errorf("cross-backend replay verdicts differ from the offline session's")
	}
	if len(res.Replay.Actions) != len(offlineActions) || (len(offlineActions) > 0 && !reflect.DeepEqual(res.Replay.Actions, offlineActions)) {
		t.Errorf("cross-policy replay actions = %+v, want %+v", res.Replay.Actions, offlineActions)
	}
	// The original trail rode along unchanged.
	if res.Original.Backend != "envelope" || res.Original.Policy != "stop-fast" {
		t.Errorf("original trail labeled %q/%q", res.Original.Backend, res.Original.Policy)
	}
}

// TestShutdownFlushesInFlightStream is the graceful-drain regression
// test: with a stream still attached (no EOF sent), Shutdown must leave
// every event already emitted durably visible in the store — the drain
// may not lose the recorded tail.
func TestShutdownFlushesInFlightStream(t *testing.T) {
	det := fittedDetector(t, "envelope")
	srv, client, app := newLedgeredService(t, map[string]safemon.Detector{"envelope": det})
	ctx := context.Background()

	st, err := client.Open(ctx, "envelope", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	safe, _ := guardProbeFrames(t)
	const sent = 3
	for i := 0; i < sent; i++ {
		if err := st.Send(&safe); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if _, err := st.Recv(); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
	}

	// The stream is mid-flight: no CloseSend, the handler is parked on
	// its next record. Shutdown must return (it waits only for in-flight
	// pushes) having flushed the appender.
	srv.Shutdown()

	var starts, verdicts int
	err = app.Store().Scan(0, func(e *ledger.Event) bool {
		switch e.Kind {
		case ledger.KindSessionStart:
			starts++
		case ledger.KindVerdict:
			verdicts++
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if starts != 1 || verdicts != sent {
		t.Fatalf("after shutdown store has %d starts / %d verdicts, want 1 / %d", starts, verdicts, sent)
	}
}

// TestStatsLedgerSection pins the /stats ledger observability contract:
// a ledgered server reports the appender's counters through the typed
// client, and a ledger-less server omits the section entirely.
func TestStatsLedgerSection(t *testing.T) {
	det := fittedDetector(t, "envelope")
	_, client, app := newLedgeredService(t, map[string]safemon.Detector{"envelope": det})
	ctx := context.Background()

	traj := testFold(t).Test[0]
	if _, err := client.StreamTrajectory(ctx, "envelope", traj); err != nil {
		t.Fatal(err)
	}
	app.Flush()

	snap, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ls := snap.Ledger
	if ls == nil {
		t.Fatal("ledgered /stats has no ledger section")
	}
	if ls.QueueCap <= 0 {
		t.Errorf("queue cap = %d, want > 0", ls.QueueCap)
	}
	// One session: start + one verdict per frame + end.
	wantEvents := uint64(traj.Len()) + 2
	if ls.Appended < wantEvents {
		t.Errorf("appended = %d, want >= %d", ls.Appended, wantEvents)
	}
	if ls.LastSeq < wantEvents {
		t.Errorf("last seq = %d, want >= %d", ls.LastSeq, wantEvents)
	}
	if ls.Dropped != 0 || ls.Errors != 0 {
		t.Errorf("dropped = %d errors = %d, want 0 / 0", ls.Dropped, ls.Errors)
	}
	if ls.Bytes <= 0 {
		t.Errorf("bytes = %d, want > 0", ls.Bytes)
	}
	if ls.Batches == 0 {
		t.Errorf("batches = 0, want > 0")
	}

	// A ledger-less server keeps the pre-ledger payload shape.
	_, bare := newTestService(t, map[string]safemon.Detector{"envelope": fittedDetector(t, "envelope")}, ManagerConfig{})
	snap, err = bare.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Ledger != nil {
		t.Errorf("ledger-less /stats has ledger section %+v", snap.Ledger)
	}

	// The incident API without a ledger is 501, not a crash.
	resp, err := bare.httpClient().Get(bare.BaseURL + "/v1/incidents")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("ledger-less /v1/incidents = %d, want 501", resp.StatusCode)
	}
}
