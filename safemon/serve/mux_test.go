package serve

import (
	"context"
	"errors"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/safemon"
)

// TestMuxEndToEnd multiplexes several concurrent logical sessions over
// one connection and requires each verdict sequence to match the plain
// NDJSON transport exactly, with the codec counters accounting for the
// single shared connection.
func TestMuxEndToEnd(t *testing.T) {
	det := fittedDetector(t, "envelope")
	_, client := newTestService(t, map[string]safemon.Detector{"envelope": det}, ManagerConfig{})
	fold := testFold(t)
	ctx := context.Background()

	refs := make(map[int][]safemon.FrameVerdict)
	for i, traj := range fold.Test {
		ref, err := client.StreamTrajectory(ctx, "envelope", traj)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ref
	}

	m, err := client.OpenMux(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	const sessions = 8
	var wg sync.WaitGroup
	errc := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ti := i % len(fold.Test)
			verdicts, _, err := m.StreamTrajectory(ctx, "envelope", "", fold.Test[ti])
			if err != nil {
				errc <- err
				return
			}
			ref := refs[ti]
			if len(verdicts) != len(ref) {
				errc <- errors.New("verdict count mismatch")
				return
			}
			for j := range verdicts {
				if verdicts[j] != ref[j] {
					errc <- errors.New("verdict value mismatch")
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	snap, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Codec.MuxConns != 1 || snap.Codec.MuxSessions != sessions {
		t.Fatalf("codec counters = %+v, want 1 mux conn carrying %d sessions", snap.Codec, sessions)
	}
}

// TestMuxPerSessionOpenErrors pins that a rejected open costs only its
// own sid: the connection keeps serving other sessions afterwards.
func TestMuxPerSessionOpenErrors(t *testing.T) {
	det := fittedDetector(t, "envelope")
	_, client := newTestService(t, map[string]safemon.Detector{"envelope": det}, ManagerConfig{})
	ctx := context.Background()

	m, err := client.OpenMux(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	if _, err := m.Open(ctx, "no-such-backend", "", nil); !isHTTPError(err, http.StatusNotFound) {
		t.Fatalf("unknown backend open: %v, want per-sid 404", err)
	}
	if _, err := m.Open(ctx, "envelope", "no-such-policy", nil); !isHTTPError(err, http.StatusNotFound) {
		t.Fatalf("unknown policy open: %v, want per-sid 404", err)
	}

	// The same connection still admits a valid session.
	traj := testFold(t).Test[0]
	verdicts, _, err := m.StreamTrajectory(ctx, "envelope", "", traj)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != traj.Len() {
		t.Fatalf("served %d verdicts for %d frames", len(verdicts), traj.Len())
	}
}

// TestMuxBadPayloadFailsOneSession injects a malformed frame record for
// one sid and requires a per-sid 400 while the sibling session keeps
// streaming on the same connection.
func TestMuxBadPayloadFailsOneSession(t *testing.T) {
	det := fittedDetector(t, "envelope")
	_, client := newTestService(t, map[string]safemon.Detector{"envelope": det}, ManagerConfig{})
	ctx := context.Background()

	m, err := client.OpenMux(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	st1, err := m.Open(ctx, "envelope", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := m.Open(ctx, "envelope", "", nil)
	if err != nil {
		t.Fatal(err)
	}

	// A ragged frame payload under st1's sid: framing is intact, so only
	// st1 must die.
	m.wmu.Lock()
	_, err = m.bw.w.Write(encodeRaw(BinFrame, st1.sid, make([]byte, 16)))
	m.wmu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st1.Recv(); !isHTTPError(err, http.StatusBadRequest) {
		t.Fatalf("bad payload session: %v, want per-sid 400", err)
	}

	traj := testFold(t).Test[0]
	for i := 0; i < 5; i++ {
		if err := st2.Send(&traj.Frames[i]); err != nil {
			t.Fatal(err)
		}
		if v, err := st2.Recv(); err != nil || v.FrameIndex != i {
			t.Fatalf("sibling frame %d: verdict %+v err %v", i, v, err)
		}
	}
	if err := st2.CloseSend(); err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Recv(); err != io.EOF {
		t.Fatalf("sibling close: %v, want io.EOF done", err)
	}
}

// TestMuxFramingErrorKillsConnection pins the other half of the error
// taxonomy: a record whose framing is broken (length over the cap)
// poisons the byte stream, so the server fails the whole connection with
// a sid-0 error.
func TestMuxFramingErrorKillsConnection(t *testing.T) {
	det := fittedDetector(t, "envelope")
	_, client := newTestService(t, map[string]safemon.Detector{"envelope": det}, ManagerConfig{})
	ctx := context.Background()

	m, err := client.OpenMux(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	st, err := m.Open(ctx, "envelope", "", nil)
	if err != nil {
		t.Fatal(err)
	}

	m.wmu.Lock()
	_, err = m.bw.w.Write(appendBinHeader(nil, BinFrame, st.sid, maxRecordBytes+1))
	m.wmu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recv(); !isHTTPError(err, http.StatusBadRequest) {
		t.Fatalf("framing error: %v, want connection-level 400", err)
	}
}

// TestMuxPerSessionBackpressure floods one logical session faster than
// its slow backend drains and requires a per-sid 429 record — never an
// HTTP status or a connection teardown — while the connection survives.
func TestMuxPerSessionBackpressure(t *testing.T) {
	srv, err := NewServer(Config{
		Detectors: map[string]safemon.Detector{"stub": &stubDetector{delay: 50 * time.Millisecond}},
		Manager:   ManagerConfig{Shards: 1, MailboxDepth: 1, EnqueueTimeout: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPTestServer(t, srv)
	client := &Client{BaseURL: ts.URL, HTTPClient: ts.Client()}
	ctx := context.Background()

	m, err := client.OpenMux(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	st, err := m.Open(ctx, "stub", "", nil)
	if err != nil {
		t.Fatal(err)
	}

	// muxInDepth frames fit the routing channel; pushing well past it
	// while the stub sleeps must trip the per-sid timeout.
	var frame safemon.Frame
	for i := 0; i < muxInDepth+32; i++ {
		if err := st.Send(&frame); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	deadline := time.After(30 * time.Second)
	for {
		done := make(chan struct{})
		var v safemon.FrameVerdict
		var rerr error
		go func() { v, rerr = st.Recv(); close(done) }()
		select {
		case <-done:
		case <-deadline:
			t.Fatal("timed out waiting for the per-sid 429")
		}
		if rerr == nil {
			_ = v
			continue
		}
		if !isHTTPError(rerr, http.StatusTooManyRequests) {
			t.Fatalf("flooded session: %v, want per-sid 429", rerr)
		}
		break
	}

	// The connection survived: a fresh session on it still works.
	st2, err := m.Open(ctx, "stub", "", nil)
	if err != nil {
		t.Fatalf("open after 429: %v", err)
	}
	if err := st2.Send(&frame); err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Recv(); err != nil {
		t.Fatalf("fresh session after 429: %v", err)
	}
}
