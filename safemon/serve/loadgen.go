package serve

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/safemon"
)

// LoadGenConfig drives RunLoadGen: Sessions concurrent clients replaying
// Trajectories (round-robin) against a safemond service.
type LoadGenConfig struct {
	// Client reaches the service under test.
	Client *Client
	// Backend is the backend every session requests.
	Backend string
	// Sessions is the number of concurrent client streams.
	Sessions int
	// Codec selects the transport: "" or "json" for one NDJSON
	// connection per session, "binary" for one binary connection per
	// session, "binary-mux" for all sessions multiplexed over a single
	// binary connection.
	Codec string
	// Trajectories are replayed round-robin across sessions.
	Trajectories []*safemon.Trajectory
	// Reference, when non-nil, holds offline traces index-aligned with
	// Trajectories; each served verdict sequence is checked against its
	// trajectory's reference and mismatches are counted.
	Reference []*safemon.Trace
}

// LoadGenReport summarizes one loadgen run.
type LoadGenReport struct {
	Sessions      int
	Frames        int
	Failed        int // sessions that ended in error
	Mismatches    int // sessions whose verdicts diverged from the reference
	Elapsed       time.Duration
	ThroughputFPS float64
	// Stats is the server's /stats snapshot taken after the run (nil if
	// unreachable).
	Stats *StatsSnapshot
	// Errors holds the first few session errors.
	Errors []string
}

// Render formats the report for cmd/experiments.
func (r *LoadGenReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loadgen: %d concurrent sessions, %d frames in %.2fs (%.0f frames/s), %d failed, %d mismatched\n",
		r.Sessions, r.Frames, r.Elapsed.Seconds(), r.ThroughputFPS, r.Failed, r.Mismatches)
	if r.Stats != nil {
		fmt.Fprintf(&b, "server: %d shards, p50 %.3f ms, p99 %.3f ms, %d queue-full, %d sessions served\n",
			r.Stats.Shards, r.Stats.P50LatencyMS, r.Stats.P99LatencyMS, r.Stats.QueueFull, r.Stats.SessionsOpened)
		for _, sh := range r.Stats.PerShard {
			fmt.Fprintf(&b, "  shard %d: %d frames, %.0f frames/s, p50 %.3f ms, p99 %.3f ms\n",
				sh.Shard, sh.Frames, sh.ThroughputFPS, sh.P50LatencyMS, sh.P99LatencyMS)
		}
	}
	for _, e := range r.Errors {
		fmt.Fprintf(&b, "  error: %s\n", e)
	}
	return b.String()
}

// RunLoadGen opens cfg.Sessions concurrent streams and replays one
// trajectory through each (trajectory i%len for session i), verifying
// against the reference traces when supplied. The error return is reserved
// for configuration problems; per-session failures are counted in the
// report.
func RunLoadGen(ctx context.Context, cfg LoadGenConfig) (*LoadGenReport, error) {
	if cfg.Client == nil || cfg.Sessions <= 0 || len(cfg.Trajectories) == 0 {
		return nil, fmt.Errorf("serve: loadgen needs a client, sessions > 0 and trajectories")
	}
	if cfg.Reference != nil && len(cfg.Reference) != len(cfg.Trajectories) {
		return nil, fmt.Errorf("serve: %d reference traces for %d trajectories", len(cfg.Reference), len(cfg.Trajectories))
	}
	client := *cfg.Client
	var mux *MuxConn
	switch cfg.Codec {
	case "", "json":
	case "binary":
		client.Codec = "binary"
	case "binary-mux":
		m, err := client.OpenMux(ctx)
		if err != nil {
			return nil, fmt.Errorf("serve: loadgen mux dial: %w", err)
		}
		defer m.Close()
		mux = m
	default:
		return nil, fmt.Errorf("serve: unknown loadgen codec %q (want json, binary or binary-mux)", cfg.Codec)
	}

	type result struct {
		frames   int
		err      error
		mismatch bool
	}
	results := make([]result, cfg.Sessions)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			traj := cfg.Trajectories[i%len(cfg.Trajectories)]
			var verdicts []safemon.FrameVerdict
			var err error
			if mux != nil {
				verdicts, _, err = mux.StreamTrajectory(ctx, cfg.Backend, "", traj)
			} else {
				verdicts, err = client.StreamTrajectory(ctx, cfg.Backend, traj)
			}
			results[i] = result{frames: len(verdicts), err: err}
			if err != nil || cfg.Reference == nil {
				return
			}
			ref := cfg.Reference[i%len(cfg.Trajectories)].Verdicts
			if len(verdicts) != len(ref) {
				results[i].mismatch = true
				return
			}
			for j := range verdicts {
				if verdicts[j] != ref[j] {
					results[i].mismatch = true
					return
				}
			}
		}(i)
	}
	wg.Wait()

	rep := &LoadGenReport{Sessions: cfg.Sessions, Elapsed: time.Since(start)}
	for _, r := range results {
		rep.Frames += r.frames
		if r.err != nil {
			rep.Failed++
			if len(rep.Errors) < 5 {
				rep.Errors = append(rep.Errors, r.err.Error())
			}
		}
		if r.mismatch {
			rep.Mismatches++
		}
	}
	if s := rep.Elapsed.Seconds(); s > 0 {
		rep.ThroughputFPS = float64(rep.Frames) / s
	}
	if snap, err := cfg.Client.Stats(ctx); err == nil {
		rep.Stats = snap
	}
	return rep, nil
}
