package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/safemon"
	"repro/safemon/guard"
	"repro/safemon/ledger"
	"repro/safemon/obs"
)

// promScrape is a parsed /metrics payload: one minimal exposition-format
// reader, strict enough to catch malformed output without pulling in a
// Prometheus client.
type promScrape struct {
	types   map[string]string  // family -> counter|gauge|histogram
	helps   map[string]string  // family -> help text
	samples map[string]float64 // name{labels} -> value
	order   []string           // sample keys in document order
}

var promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})? (\S+)$`)

// family strips a histogram sample suffix back to its family name.
func promFamily(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// parseProm parses exposition text, failing the test on any line that is
// neither a well-formed comment nor a well-formed sample, on samples
// without a preceding TYPE/HELP, and on unparseable values.
func parseProm(t *testing.T, body string) *promScrape {
	t.Helper()
	p := &promScrape{
		types:   map[string]string{},
		helps:   map[string]string{},
		samples: map[string]float64{},
	}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" {
				t.Fatalf("malformed HELP line: %q", line)
			}
			if _, dup := p.helps[name]; dup {
				t.Fatalf("duplicate HELP for %s", name)
			}
			p.helps[name] = help
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || (typ != "counter" && typ != "gauge" && typ != "histogram") {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			if _, dup := p.types[name]; dup {
				t.Fatalf("duplicate TYPE for %s", name)
			}
			p.types[name] = typ
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line: %q", line)
		}
		name, labels, valStr := m[1], m[3], m[4]
		fam := promFamily(name)
		if _, ok := p.types[fam]; !ok {
			t.Fatalf("sample %q has no preceding TYPE for family %s", line, fam)
		}
		if _, ok := p.helps[fam]; !ok {
			t.Fatalf("sample %q has no preceding HELP for family %s", line, fam)
		}
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil || math.IsNaN(v) {
			t.Fatalf("sample %q has bad value %q: %v", line, valStr, err)
		}
		key := name
		if labels != "" {
			key = name + "{" + labels + "}"
		}
		if _, dup := p.samples[key]; dup {
			t.Fatalf("duplicate sample %s", key)
		}
		p.samples[key] = v
		p.order = append(p.order, key)
	}
	return p
}

// get fetches one sample by exact key, failing if absent.
func (p *promScrape) get(t *testing.T, key string) float64 {
	t.Helper()
	v, ok := p.samples[key]
	if !ok {
		t.Fatalf("metric %s not exposed", key)
	}
	return v
}

// checkConformance asserts the repo-wide metric contract over a scrape:
// safemon_ prefix, suffix discipline, and cumulative histograms whose
// +Inf bucket equals _count.
func (p *promScrape) checkConformance(t *testing.T) {
	t.Helper()
	suffixRe := regexp.MustCompile(`_(total|seconds|bytes)$`)
	for fam := range p.types {
		if !strings.HasPrefix(fam, "safemon_") {
			t.Errorf("family %s lacks the safemon_ prefix", fam)
		}
		if !suffixRe.MatchString(fam) {
			t.Errorf("family %s lacks a _total/_seconds/_bytes suffix", fam)
		}
	}
	// Group histogram buckets per family+labels (minus le) and require
	// cumulative, non-decreasing counts capped by the +Inf bucket.
	type histSeries struct {
		buckets map[float64]float64
		inf     float64
		hasInf  bool
	}
	hists := map[string]*histSeries{}
	leRe := regexp.MustCompile(`le="([^"]*)"(,)?`)
	for key, v := range p.samples {
		name, _, _ := strings.Cut(key, "{")
		if !strings.HasSuffix(name, "_bucket") {
			continue
		}
		m := leRe.FindStringSubmatch(key)
		if m == nil {
			t.Errorf("bucket sample %s has no le label", key)
			continue
		}
		series := strings.Replace(key, m[0], "", 1)
		series = strings.TrimSuffix(strings.Replace(series, "{}", "", 1), ",}") // normalize lone/trailing label
		hs := hists[series]
		if hs == nil {
			hs = &histSeries{buckets: map[float64]float64{}}
			hists[series] = hs
		}
		if m[1] == "+Inf" {
			hs.inf, hs.hasInf = v, true
			continue
		}
		le, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			t.Errorf("bucket %s has bad le %q", key, m[1])
			continue
		}
		hs.buckets[le] = v
	}
	for series, hs := range hists {
		if !hs.hasInf {
			t.Errorf("histogram %s has no +Inf bucket", series)
			continue
		}
		les := make([]float64, 0, len(hs.buckets))
		for le := range hs.buckets {
			les = append(les, le)
		}
		sort.Float64s(les)
		prev := 0.0
		for _, le := range les {
			if hs.buckets[le] < prev {
				t.Errorf("histogram %s bucket le=%v decreases: %v < %v", series, le, hs.buckets[le], prev)
			}
			prev = hs.buckets[le]
		}
		if prev > hs.inf {
			t.Errorf("histogram %s +Inf bucket %v below last bucket %v", series, hs.inf, prev)
		}
	}
}

// scrapeMetrics GETs url and parses the body, asserting the content type.
func scrapeMetrics(t *testing.T, c *http.Client, url string) *promScrape {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("content type = %q, want %q", ct, obs.ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return parseProm(t, string(body))
}

// TestMetricsGolden pins the exposition structure of a fresh ledgered,
// guarded server — every family, help string, type, and label set — with
// sample values redacted (they are load- and clock-dependent).
func TestMetricsGolden(t *testing.T) {
	det := fittedDetector(t, "envelope")
	app := ledger.NewAppender(ledger.NewMemoryStore(0), ledger.Options{})
	t.Cleanup(func() { app.Close() })
	srv, err := NewServer(Config{
		Detectors: map[string]safemon.Detector{"envelope": det},
		Policies:  []guard.Policy{testGuardPolicy()},
		Ledger:    app,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Shutdown)

	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rr.Code)
	}
	var redacted strings.Builder
	for _, line := range strings.Split(strings.TrimRight(rr.Body.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			redacted.WriteString(line)
		} else {
			i := strings.LastIndexByte(line, ' ')
			if i < 0 {
				t.Fatalf("malformed sample line %q", line)
			}
			redacted.WriteString(line[:i] + " <v>")
		}
		redacted.WriteByte('\n')
	}
	got := redacted.String()

	const goldenPath = "testdata/metrics.golden"
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("metrics structure drifted from %s (UPDATE_GOLDEN=1 regenerates)\ngot:\n%s", goldenPath, got)
	}
	parseProm(t, rr.Body.String()).checkConformance(t)
}

// metricsTestService stands up the full pipeline — batched shards, guard
// policy, ledger, both codecs — and drives traffic over every transport
// so each instrumented path has run at least once.
func metricsTestService(t *testing.T) (*Server, *Client) {
	t.Helper()
	det := fittedDetector(t, "envelope")
	app := ledger.NewAppender(ledger.NewMemoryStore(0), ledger.Options{})
	t.Cleanup(func() { app.Close() })
	srv, err := NewServer(Config{
		Detectors: map[string]safemon.Detector{"envelope": det},
		Policies:  []guard.Policy{testGuardPolicy()},
		Ledger:    app,
		Manager:   ManagerConfig{Shards: 2, MaxBatch: 4, BatchWindow: 200 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Shutdown()
	})
	client := &Client{BaseURL: ts.URL, HTTPClient: ts.Client()}
	ctx := context.Background()
	fold := testFold(t)

	// NDJSON and binary single-session streams.
	if _, err := client.StreamTrajectory(ctx, "envelope", fold.Test[0]); err != nil {
		t.Fatal(err)
	}
	bc := &Client{BaseURL: ts.URL, HTTPClient: ts.Client(), Codec: "binary"}
	if _, err := bc.StreamTrajectory(ctx, "envelope", fold.Test[0]); err != nil {
		t.Fatal(err)
	}
	// One multiplexed logical session.
	m, err := bc.OpenMux(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.StreamTrajectory(ctx, "envelope", "", fold.Test[0]); err != nil {
		t.Fatal(err)
	}
	m.Close()
	// A guarded stream that latches at least one mitigation transition.
	safe, wild := guardProbeFrames(t)
	st, err := client.OpenGuarded(ctx, "envelope", testGuardPolicy().Name, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		f := wild
		if i < 2 {
			f = safe
		}
		if err := st.Send(&f); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	// Quiesce: all sessions released, ledger flushed, so /stats and
	// /metrics read the same settled counters.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().SessionsActive != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sessions never quiesced: %+v", srv.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	app.Flush()
	return srv, client
}

// TestMetricsMatchesStats drives live traffic over every transport and
// asserts each numeric /stats field equals its /metrics counterpart —
// the two surfaces render the same storage, so exact equality holds.
func TestMetricsMatchesStats(t *testing.T) {
	srv, client := metricsTestService(t)
	snap, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	scrape := scrapeMetrics(t, client.httpClient(), client.BaseURL+"/metrics")
	scrape.checkConformance(t)

	sum := func(name, labels string) float64 {
		t.Helper()
		var total float64
		for i := 0; i < snap.Shards; i++ {
			key := fmt.Sprintf("%s{%sshard=%q}", name, labels, strconv.Itoa(i))
			total += scrape.get(t, key)
		}
		return total
	}
	checks := []struct {
		name string
		stat float64
		got  float64
	}{
		{"frames", float64(snap.Frames), sum("safemon_frames_total", "")},
		{"sessions_opened", float64(snap.SessionsOpened), sum("safemon_sessions_opened_total", "")},
		{"sessions_active", float64(snap.SessionsActive),
			sum("safemon_sessions_opened_total", "") - sum("safemon_sessions_closed_total", "")},
		{"queue_full", float64(snap.QueueFull), sum("safemon_queue_full_total", "")},
		{"batches", float64(snap.Batching.Batches), sum("safemon_batches_total", "")},
		{"batched_frames", float64(snap.Batching.BatchedFrames), sum("safemon_batched_frames_total", "")},
		{"window_timeouts", float64(snap.Batching.WindowTimeouts), sum("safemon_batch_window_timeouts_total", "")},
		{"fallbacks", float64(snap.Batching.Fallbacks), sum("safemon_batch_fallback_frames_total", "")},
		{"json_streams", float64(snap.Codec.JSONStreams), scrape.get(t, `safemon_streams_total{codec="json"}`)},
		{"binary_streams", float64(snap.Codec.BinaryStreams), scrape.get(t, `safemon_streams_total{codec="binary"}`)},
		{"mux_conns", float64(snap.Codec.MuxConns), scrape.get(t, "safemon_mux_connections_total")},
		{"mux_sessions", float64(snap.Codec.MuxSessions), scrape.get(t, "safemon_mux_sessions_total")},
		{"guarded_streams", float64(snap.Mitigation.GuardedStreams), scrape.get(t, "safemon_guarded_streams_total")},
		{"alerts", float64(snap.Mitigation.Alerts), scrape.get(t, `safemon_guard_transitions_total{action="alert"}`)},
		{"warns", float64(snap.Mitigation.Warns), scrape.get(t, `safemon_guard_transitions_total{action="warn"}`)},
		{"pauses", float64(snap.Mitigation.Pauses), scrape.get(t, `safemon_guard_transitions_total{action="pause"}`)},
		{"safe_stops", float64(snap.Mitigation.SafeStops), scrape.get(t, `safemon_guard_transitions_total{action="safe_stop"}`)},
		{"retracts", float64(snap.Mitigation.Retracts), scrape.get(t, `safemon_guard_transitions_total{action="retract"}`)},
		{"releases", float64(snap.Mitigation.Releases), scrape.get(t, `safemon_guard_transitions_total{action="release"}`)},
		{"ledger_appended", float64(snap.Ledger.Appended), scrape.get(t, "safemon_ledger_appended_total")},
		{"ledger_batches", float64(snap.Ledger.Batches), scrape.get(t, "safemon_ledger_batches_total")},
		{"ledger_dropped", float64(snap.Ledger.Dropped), scrape.get(t, "safemon_ledger_dropped_total")},
		{"ledger_errors", float64(snap.Ledger.Errors), scrape.get(t, "safemon_ledger_errors_total")},
		{"ledger_bytes", float64(snap.Ledger.Bytes), scrape.get(t, "safemon_ledger_bytes")},
		{"ledger_segments", float64(snap.Ledger.Segments), scrape.get(t, "safemon_ledger_segments_total")},
		{"ledger_last_seq", float64(snap.Ledger.LastSeq), scrape.get(t, "safemon_ledger_last_seq_total")},
		{"ledger_queue_cap", float64(snap.Ledger.QueueCap), scrape.get(t, "safemon_ledger_queue_capacity_total")},
	}
	for _, c := range checks {
		if c.stat != c.got {
			t.Errorf("%s: /stats %v != /metrics %v", c.name, c.stat, c.got)
		}
	}

	// Per-shard quantiles: rebuild each shard's bucket array from the
	// scraped cumulative histogram and require the identical quantile the
	// /stats row reports (shared storage, shared interpolation).
	for _, row := range snap.PerShard {
		var counts [histBuckets]uint64
		prev := 0.0
		for b := 0; b < histBuckets; b++ {
			le := strconv.FormatFloat(math.Exp2(float64(b+1))/1e9, 'g', -1, 64)
			cum := scrape.get(t, fmt.Sprintf(`safemon_frame_latency_seconds_bucket{shard=%q,le=%q}`,
				strconv.Itoa(row.Shard), le))
			counts[b] = uint64(cum - prev)
			prev = cum
		}
		if p50 := jsonQuantile(counts, 0.50); p50 != row.P50LatencyMS {
			t.Errorf("shard %d p50: /stats %v != scraped %v", row.Shard, row.P50LatencyMS, p50)
		}
		if p99 := jsonQuantile(counts, 0.99); p99 != row.P99LatencyMS {
			t.Errorf("shard %d p99: /stats %v != scraped %v", row.Shard, row.P99LatencyMS, p99)
		}
	}

	// Stage histograms exist for every codec that carried traffic, and
	// each codec's infer-stage count matches the frames it carried.
	for _, codec := range []string{"json", "binary", "binary-mux"} {
		key := fmt.Sprintf(`safemon_frame_stage_seconds_count{backend="envelope",codec=%q,stage="infer"}`, codec)
		if scrape.get(t, key) <= 0 {
			t.Errorf("no infer-stage observations for codec %s", codec)
		}
	}
	// Uptime must be exported (value is clock-dependent, presence is not).
	if scrape.get(t, "safemon_uptime_seconds") <= 0 {
		t.Error("safemon_uptime_seconds not positive")
	}
	if got := scrape.get(t, `safemon_model_loaded_seconds{backend="envelope",version="unversioned"}`); got <= 0 {
		t.Errorf("model_loaded_seconds = %v", got)
	}
	_ = srv
}

// TestSlowFrameExemplars requires the debug ring to surface frames from
// the traffic above with a full, consistent stage breakdown.
func TestSlowFrameExemplars(t *testing.T) {
	srv, client := metricsTestService(t)
	resp, err := client.httpClient().Get(client.BaseURL + "/v1/debug/slowframes")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/debug/slowframes = %d", resp.StatusCode)
	}
	var payload struct {
		SlowFrames []SlowFrameInfo `json:"slow_frames"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.SlowFrames) == 0 {
		t.Fatal("no slow-frame exemplars after live traffic")
	}
	prev := math.Inf(1)
	for i, f := range payload.SlowFrames {
		if f.TotalMS <= 0 || f.TotalMS > prev {
			t.Errorf("exemplar %d total %v not positive-descending (prev %v)", i, f.TotalMS, prev)
		}
		prev = f.TotalMS
		if f.Backend != "envelope" || f.Session == 0 || f.Model != "unversioned" {
			t.Errorf("exemplar %d context = %+v", i, f)
		}
		switch f.Codec {
		case "json", "binary", "binary-mux":
		default:
			t.Errorf("exemplar %d codec = %q", i, f.Codec)
		}
		var stageSum float64
		for name, ms := range f.StageMS {
			found := false
			for _, s := range stageNames {
				if s == name {
					found = true
				}
			}
			if !found {
				t.Errorf("exemplar %d has unknown stage %q", i, name)
			}
			stageSum += ms
		}
		if math.Abs(stageSum-f.TotalMS) > 1e-6 {
			t.Errorf("exemplar %d stages sum to %v, total %v", i, stageSum, f.TotalMS)
		}
	}
	if got := len(srv.SlowFrames()); got != len(payload.SlowFrames) {
		t.Errorf("SlowFrames() = %d rows, endpoint returned %d", got, len(payload.SlowFrames))
	}
}

// TestReadyzDrain pins the readiness contract on both the traffic port
// and the ops handler: ready before BeginDrain, 503 after, while an
// in-flight stream keeps streaming and /healthz stays live.
func TestReadyzDrain(t *testing.T) {
	det := fittedDetector(t, "envelope")
	srv, client := newTestService(t, map[string]safemon.Detector{"envelope": det}, ManagerConfig{})
	ops := httptest.NewServer(srv.OpsHandler())
	t.Cleanup(ops.Close)
	ctx := context.Background()
	traj := testFold(t).Test[0]

	status := func(url string) int {
		t.Helper()
		resp, err := client.httpClient().Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	for _, base := range []string{client.BaseURL, ops.URL} {
		if got := status(base + "/readyz"); got != http.StatusOK {
			t.Fatalf("pre-drain readyz on %s = %d", base, got)
		}
	}

	st, err := client.Open(ctx, "envelope", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Send(&traj.Frames[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recv(); err != nil {
		t.Fatal(err)
	}

	srv.BeginDrain()
	for _, base := range []string{client.BaseURL, ops.URL} {
		if got := status(base + "/readyz"); got != http.StatusServiceUnavailable {
			t.Errorf("draining readyz on %s = %d, want 503", base, got)
		}
		// /healthz has always reported draining as 503 (safemond's drain
		// sequence predates /readyz); pin that the two probes agree.
		if got := status(base + "/healthz"); got != http.StatusServiceUnavailable {
			t.Errorf("draining healthz on %s = %d, want 503", base, got)
		}
	}
	// The in-flight stream finishes undisturbed while readyz says 503.
	for i := 1; i < 10; i++ {
		if err := st.Send(&traj.Frames[i]); err != nil {
			t.Fatalf("in-flight send during drain: %v", err)
		}
		if _, err := st.Recv(); err != nil {
			t.Fatalf("in-flight verdict during drain: %v", err)
		}
	}
	// The ops surface also serves metrics and pprof throughout the drain.
	scrapeMetrics(t, client.httpClient(), ops.URL+"/metrics")
	if got := status(ops.URL + "/debug/pprof/cmdline"); got != http.StatusOK {
		t.Errorf("pprof on ops listener = %d", got)
	}
}
