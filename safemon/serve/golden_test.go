package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/safemon"
)

// wireLines marshals a verdict sequence through the wire type, one JSON
// line per verdict — the canonical byte form all three paths must share.
func wireLines(t *testing.T, verdicts []safemon.FrameVerdict) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, v := range verdicts {
		if err := enc.Encode(WireVerdict(v)); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestGoldenVerdictsAcrossPaths is the end-to-end golden suite: for every
// registered backend, a fixed synthetic trajectory must yield byte-identical
// verdict sequences from (a) the batch Runner, (b) a manual Session replay,
// and (c) a live safemond NDJSON connection — extending the PR 1
// sequential-vs-concurrent identity guarantee to the network path.
func TestGoldenVerdictsAcrossPaths(t *testing.T) {
	fold := testFold(t)
	traj := fold.Test[0]
	ctx := context.Background()

	for _, backend := range []string{"context-aware", "lookahead", "monolithic", "envelope", "skipchain", "sdsdl", "cascade"} {
		t.Run(backend, func(t *testing.T) {
			det := fittedDetector(t, backend)

			// (a) Batch Runner path.
			traces, err := (&safemon.Runner{Detector: det, Workers: 1}).Traces(ctx, []*safemon.Trajectory{traj})
			if err != nil {
				t.Fatal(err)
			}
			runner := wireLines(t, traces[0].Verdicts)

			// (b) Manual Session replay.
			sess, err := det.NewSession(safemon.WithSessionLabels(traj.Gestures))
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close()
			var manual []safemon.FrameVerdict
			for i := range traj.Frames {
				v, err := sess.Push(&traj.Frames[i])
				if err != nil {
					t.Fatal(err)
				}
				manual = append(manual, v)
			}
			session := wireLines(t, manual)

			// (c) Live safemond connection.
			_, client := newTestService(t, map[string]safemon.Detector{backend: det}, ManagerConfig{})
			streamed, err := client.StreamTrajectory(ctx, backend, traj)
			if err != nil {
				t.Fatal(err)
			}
			served := wireLines(t, streamed)

			if !bytes.Equal(runner, session) {
				t.Errorf("Runner and Session verdict bytes differ")
			}
			if !bytes.Equal(runner, served) {
				t.Errorf("Runner and served verdict bytes differ")
			}
			if len(streamed) != traj.Len() {
				t.Errorf("served %d verdicts for %d frames", len(streamed), traj.Len())
			}
		})
	}
}

// TestGoldenServedSecondTrajectory guards warm-pool reuse on the network
// path: the same connection pool must serve a second, different trajectory
// with verdicts byte-identical to its own offline replay (a stale pooled
// session would leak state from the first stream).
func TestGoldenServedSecondTrajectory(t *testing.T) {
	fold := testFold(t)
	if len(fold.Test) < 2 {
		t.Skip("fold has a single test trajectory")
	}
	ctx := context.Background()
	det := fittedDetector(t, "context-aware")
	_, client := newTestService(t, map[string]safemon.Detector{"context-aware": det}, ManagerConfig{})

	for _, traj := range fold.Test[:2] {
		ref, err := det.Run(ctx, traj)
		if err != nil {
			t.Fatal(err)
		}
		// Stream the same trajectory twice so the second pass rides a
		// pooled session.
		for pass := 0; pass < 2; pass++ {
			got, err := client.StreamTrajectory(ctx, "context-aware", traj)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wireLines(t, ref.Verdicts), wireLines(t, got)) {
				t.Fatalf("pass %d: served verdicts differ from offline replay", pass)
			}
		}
	}
}
