package serve

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"repro/safemon"
)

// altModel returns a second fitted detector whose verdict stream is always
// distinguishable from the envelope fixture's (neural scores are never the
// envelope's exact zeros on a safe trajectory). Model identity is keyed by
// the serving name, so swapping a different detector family under the same
// backend name is legal — and the strongest possible swap test.
func altModel(t *testing.T) safemon.Detector {
	t.Helper()
	return fittedDetector(t, "context-aware")
}

// newSwappableService stands up a server whose Loader serves whatever model
// map the returned setter installs.
func newSwappableService(t *testing.T, initial map[string]Model) (*Server, *Client, func(map[string]Model)) {
	t.Helper()
	var current atomic.Value
	current.Store(initial)
	srv, err := NewServer(Config{
		Models: initial,
		Loader: func(ctx context.Context) (map[string]Model, error) {
			return current.Load().(map[string]Model), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Shutdown()
	})
	return srv, &Client{BaseURL: ts.URL, HTTPClient: ts.Client()}, func(m map[string]Model) { current.Store(m) }
}

// TestModelsEndpointAndReload covers the model-inventory surface: GET
// /v1/models lists versions, POST /v1/models/reload swaps to the loader's
// current set, and new streams immediately bind the new version.
func TestModelsEndpointAndReload(t *testing.T) {
	fold := testFold(t)
	traj := fold.Test[0]
	ctx := context.Background()
	detA := fittedDetector(t, "envelope")
	detB := altModel(t)

	_, client, set := newSwappableService(t, map[string]Model{"envelope": {Detector: detA, Version: "v1"}})

	models, err := client.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 || models[0].Backend != "envelope" || models[0].Version != "v1" {
		t.Fatalf("models = %+v", models)
	}

	refA, err := detA.Run(ctx, traj)
	if err != nil {
		t.Fatal(err)
	}
	refB, err := detB.Run(ctx, traj)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(wireLines(t, refA.Verdicts), wireLines(t, refB.Verdicts)) {
		t.Fatal("test models are not distinguishable; pick different thresholds")
	}

	got, err := client.StreamTrajectory(ctx, "envelope", traj)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wireLines(t, got), wireLines(t, refA.Verdicts)) {
		t.Fatal("pre-swap stream does not match model v1")
	}

	set(map[string]Model{"envelope": {Detector: detB, Version: "v2"}})
	swapped, err := client.Reload(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(swapped) != 1 || swapped[0].Version != "v2" {
		t.Fatalf("post-reload models = %+v", swapped)
	}

	// A fresh stream must ride v2 — including past the warm pool, which
	// held v1 sessions before the swap and must not hand them out now.
	for pass := 0; pass < 2; pass++ {
		got, err = client.StreamTrajectory(ctx, "envelope", traj)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wireLines(t, got), wireLines(t, refB.Verdicts)) {
			t.Fatalf("pass %d: post-swap stream does not match model v2", pass)
		}
	}
}

// TestReloadWithoutLoader pins the no-loader contract: a fit-at-startup
// server answers reload requests with 501 Not Implemented.
func TestReloadWithoutLoader(t *testing.T) {
	det := fittedDetector(t, "envelope")
	srv, client := newTestService(t, map[string]safemon.Detector{"envelope": det}, ManagerConfig{})
	if _, err := srv.Reload(context.Background()); !errors.Is(err, ErrNoLoader) {
		t.Fatalf("Reload = %v, want ErrNoLoader", err)
	}
	_, err := client.Reload(context.Background())
	var em *ErrorMsg
	if !errors.As(err, &em) || em.Code != http.StatusNotImplemented {
		t.Fatalf("client reload = %v, want HTTP 501", err)
	}
}

// TestHotSwapUnderLiveTraffic is the zero-downtime acceptance test: while
// concurrent streams replay trajectories, the model set is swapped back and
// forth. Every stream must run to completion with exactly one in-order
// verdict per frame (no drops, no reorders), and every completed stream's
// verdicts must equal one of the two models' offline replay — a mid-stream
// model change would splice the two and match neither.
func TestHotSwapUnderLiveTraffic(t *testing.T) {
	fold := testFold(t)
	traj := fold.Test[0]
	ctx := context.Background()
	detA := fittedDetector(t, "envelope")
	detB := altModel(t)

	_, client, set := newSwappableService(t, map[string]Model{"envelope": {Detector: detA, Version: "v1"}})

	refA, err := detA.Run(ctx, traj)
	if err != nil {
		t.Fatal(err)
	}
	refB, err := detB.Run(ctx, traj)
	if err != nil {
		t.Fatal(err)
	}
	wantA, wantB := wireLines(t, refA.Verdicts), wireLines(t, refB.Verdicts)

	const streams = 12
	var wg sync.WaitGroup
	var matchedA, matchedB atomic.Int64
	errc := make(chan error, streams)
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := client.StreamTrajectory(ctx, "envelope", traj)
			if err != nil {
				errc <- err
				return
			}
			if len(got) != traj.Len() {
				errc <- errors.New("dropped frames: short verdict stream")
				return
			}
			for j, v := range got {
				if v.FrameIndex != j {
					errc <- errors.New("reordered verdicts")
					return
				}
			}
			switch wire := wireLines(t, got); {
			case bytes.Equal(wire, wantA):
				matchedA.Add(1)
			case bytes.Equal(wire, wantB):
				matchedB.Add(1)
			default:
				errc <- errors.New("stream verdicts match neither model (mid-stream swap leak)")
			}
		}()
	}

	// Swap back and forth while the streams run. After every reload, a
	// fresh synchronous stream must match exactly the version just
	// installed — deterministically exercising both models even if the
	// concurrent streams drain fast.
	for i := 0; i < 6; i++ {
		want := wantB
		if i%2 == 0 {
			set(map[string]Model{"envelope": {Detector: detB, Version: "v2"}})
		} else {
			set(map[string]Model{"envelope": {Detector: detA, Version: "v1"}})
			want = wantA
		}
		if _, err := client.Reload(ctx); err != nil {
			t.Fatal(err)
		}
		got, err := client.StreamTrajectory(ctx, "envelope", traj)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wireLines(t, got), want) {
			t.Fatalf("reload %d: fresh stream does not match the just-installed model", i)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	t.Logf("streams matched: v1=%d v2=%d", matchedA.Load(), matchedB.Load())
	if matchedA.Load()+matchedB.Load() != streams {
		t.Fatalf("only %d/%d streams completed cleanly", matchedA.Load()+matchedB.Load(), streams)
	}
}

// TestSwapSameVersionKeepsPool pins version-keyed pool retention: versions
// name immutable artifacts, so a reload that re-decodes the same version
// into a fresh detector instance (the modelstore loader does this every
// time) must keep the incumbent detector and its warm pool, while a new
// version must actually switch models.
func TestSwapSameVersionKeepsPool(t *testing.T) {
	fold := testFold(t)
	traj := fold.Test[0]
	ctx := context.Background()
	detA := fittedDetector(t, "envelope")
	detB := altModel(t)

	m, err := NewManagerModels(map[string]Model{"envelope": {Detector: detA, Version: "v1"}}, ManagerConfig{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	verdictOf := func() safemon.FrameVerdict {
		t.Helper()
		if err := m.Reserve(); err != nil {
			t.Fatal(err)
		}
		s, err := m.Open("envelope", traj.Gestures)
		if err != nil {
			m.Unreserve()
			t.Fatal(err)
		}
		v, err := s.Push(ctx, &traj.Frames[len(traj.Frames)-1])
		if err != nil {
			t.Fatal(err)
		}
		s.Release(true)
		return v
	}

	before := verdictOf()
	// Same version, different (freshly loaded) detector instance: keep.
	if err := m.Swap(map[string]Model{"envelope": {Detector: detB, Version: "v1"}}); err != nil {
		t.Fatal(err)
	}
	if got := verdictOf(); got != before {
		t.Fatalf("same-version swap changed the serving model: %+v vs %+v", got, before)
	}
	loadedAt := m.Models()[0].LoadedAt
	// New version: switch.
	if err := m.Swap(map[string]Model{"envelope": {Detector: detB, Version: "v2"}}); err != nil {
		t.Fatal(err)
	}
	if got := verdictOf(); got == before {
		t.Fatal("new-version swap did not switch the serving model")
	}
	if m.Models()[0].LoadedAt == loadedAt {
		t.Error("new version kept the old loadedAt")
	}
}

// TestSwapWhileDraining pins Swap's shutdown interaction.
func TestSwapWhileDraining(t *testing.T) {
	det := fittedDetector(t, "envelope")
	m, err := NewManagerModels(map[string]Model{"envelope": {Detector: det, Version: "v1"}}, ManagerConfig{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	if err := m.Swap(map[string]Model{"envelope": {Detector: det, Version: "v2"}}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Swap after Close = %v, want ErrDraining", err)
	}
}
