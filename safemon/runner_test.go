package safemon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"reflect"
	"testing"
)

// TestRunnerDeterminism is the acceptance check for the concurrent batch
// path: a 4-worker Runner must yield a report byte-identical to the
// sequential one on the same test set.
func TestRunnerDeterminism(t *testing.T) {
	fold := testFold(t)
	ctx := context.Background()
	for _, backend := range []string{"context-aware", "envelope", "skipchain"} {
		t.Run(backend, func(t *testing.T) {
			det := fittedDetector(t, backend)
			seq, err := (&Runner{Detector: det, Workers: 1}).Run(ctx, fold.Test, nil)
			if err != nil {
				t.Fatal(err)
			}
			par, err := (&Runner{Detector: det, Workers: 4}).Run(ctx, fold.Test, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("concurrent report differs from sequential:\nseq: %+v\npar: %+v", seq, par)
			}
			seqB, err := json.Marshal(seq)
			if err != nil {
				t.Fatal(err)
			}
			parB, err := json.Marshal(par)
			if err != nil {
				t.Fatal(err)
			}
			if string(seqB) != string(parB) {
				t.Fatalf("serialized reports differ")
			}
			// Repeat runs are reproducible too.
			again, err := (&Runner{Detector: det, Workers: 4}).Run(ctx, fold.Test, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(par, again) {
				t.Fatal("repeated concurrent run differs")
			}
		})
	}
}

// TestRunnerMatchesDetectorRun checks trace alignment: Traces()[i] equals
// Detector.Run on trajs[i] regardless of scheduling.
func TestRunnerMatchesDetectorRun(t *testing.T) {
	fold := testFold(t)
	ctx := context.Background()
	det := fittedDetector(t, "monolithic")
	traces, err := (&Runner{Detector: det, Workers: 3}).Traces(ctx, fold.Test)
	if err != nil {
		t.Fatal(err)
	}
	for i, traj := range fold.Test {
		ref, err := det.Run(ctx, traj)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref.Verdicts, traces[i].Verdicts) {
			t.Fatalf("trace %d differs between Runner and Run", i)
		}
	}
}

func TestRunnerCancellation(t *testing.T) {
	fold := testFold(t)
	det := fittedDetector(t, "envelope")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (&Runner{Detector: det, Workers: 2}).Run(ctx, fold.Test, nil); err == nil {
		t.Fatal("cancelled runner should fail")
	}
}

// poisonErr is the sentinel a poisonDetector session fails with.
var poisonErr = errors.New("poisoned frame")

// poisonDetector fails any push whose frame's first feature matches the
// poison marker, letting tests fail exactly one trajectory of a batch.
type poisonDetector struct{ marker float64 }

func (d *poisonDetector) Info() Info                               { return Info{Name: "poison", Threshold: 0.5} }
func (d *poisonDetector) Fit(context.Context, []*Trajectory) error { return nil }
func (d *poisonDetector) Save(io.Writer) error                     { return errors.New("poison: not serializable") }
func (d *poisonDetector) Load(io.Reader) error                     { return errors.New("poison: not serializable") }
func (d *poisonDetector) NewSession(...SessionOption) (Session, error) {
	return &poisonSession{marker: d.marker}, nil
}

func (d *poisonDetector) Run(ctx context.Context, traj *Trajectory) (*Trace, error) {
	return runViaSession(ctx, d, traj, false)
}

type poisonSession struct {
	marker float64
	idx    int
}

func (s *poisonSession) Push(f *Frame) (FrameVerdict, error) {
	if f[0] == s.marker {
		return FrameVerdict{}, poisonErr
	}
	v := FrameVerdict{FrameIndex: s.idx}
	s.idx++
	return v, nil
}

func (s *poisonSession) Reset([]int) error { s.idx = 0; return nil }
func (s *poisonSession) Close() error      { return nil }

// TestRunnerTrajectoryError pins the error contract of Traces/Run: the
// first worker failure must surface as a *TrajectoryError carrying the
// index of the offending trajectory (recoverable via errors.As), with the
// root cause reachable through errors.Is — on both the sequential and the
// concurrent path.
func TestRunnerTrajectoryError(t *testing.T) {
	const failIdx = 3
	trajs := make([]*Trajectory, 6)
	for i := range trajs {
		tr := &Trajectory{HzRate: 30}
		for j := 0; j < 50; j++ {
			var f Frame
			if i == failIdx {
				f[0] = 1 // poison marker
			}
			tr.Frames = append(tr.Frames, f)
		}
		trajs[i] = tr
	}
	det := &poisonDetector{marker: 1}

	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			_, err := (&Runner{Detector: det, Workers: workers}).Traces(context.Background(), trajs)
			if err == nil {
				t.Fatal("poisoned batch should fail")
			}
			var te *TrajectoryError
			if !errors.As(err, &te) {
				t.Fatalf("error %v (%T) is not a *TrajectoryError", err, err)
			}
			if te.Index != failIdx {
				t.Errorf("TrajectoryError.Index = %d, want %d", te.Index, failIdx)
			}
			if !errors.Is(err, poisonErr) {
				t.Errorf("root cause not reachable through %v", err)
			}
		})
	}
}

func TestRunnerReportsGestureAccuracy(t *testing.T) {
	fold := testFold(t)
	det := fittedDetector(t, "context-aware")
	rep, err := (&Runner{Detector: det, Workers: 2}).Run(context.Background(), fold.Test, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GestureAccuracy <= 0 {
		t.Errorf("context-predicting backend should report gesture accuracy, got %v", rep.GestureAccuracy)
	}
	if len(rep.PerDemoAUC) != len(fold.Test) {
		t.Errorf("PerDemoAUC has %d entries for %d demos", len(rep.PerDemoAUC), len(fold.Test))
	}
}
