package safemon

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"
)

// TestRunnerDeterminism is the acceptance check for the concurrent batch
// path: a 4-worker Runner must yield a report byte-identical to the
// sequential one on the same test set.
func TestRunnerDeterminism(t *testing.T) {
	fold := testFold(t)
	ctx := context.Background()
	for _, backend := range []string{"context-aware", "envelope", "skipchain"} {
		t.Run(backend, func(t *testing.T) {
			det := fittedDetector(t, backend)
			seq, err := (&Runner{Detector: det, Workers: 1}).Run(ctx, fold.Test, nil)
			if err != nil {
				t.Fatal(err)
			}
			par, err := (&Runner{Detector: det, Workers: 4}).Run(ctx, fold.Test, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("concurrent report differs from sequential:\nseq: %+v\npar: %+v", seq, par)
			}
			seqB, err := json.Marshal(seq)
			if err != nil {
				t.Fatal(err)
			}
			parB, err := json.Marshal(par)
			if err != nil {
				t.Fatal(err)
			}
			if string(seqB) != string(parB) {
				t.Fatalf("serialized reports differ")
			}
			// Repeat runs are reproducible too.
			again, err := (&Runner{Detector: det, Workers: 4}).Run(ctx, fold.Test, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(par, again) {
				t.Fatal("repeated concurrent run differs")
			}
		})
	}
}

// TestRunnerMatchesDetectorRun checks trace alignment: Traces()[i] equals
// Detector.Run on trajs[i] regardless of scheduling.
func TestRunnerMatchesDetectorRun(t *testing.T) {
	fold := testFold(t)
	ctx := context.Background()
	det := fittedDetector(t, "monolithic")
	traces, err := (&Runner{Detector: det, Workers: 3}).Traces(ctx, fold.Test)
	if err != nil {
		t.Fatal(err)
	}
	for i, traj := range fold.Test {
		ref, err := det.Run(ctx, traj)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref.Verdicts, traces[i].Verdicts) {
			t.Fatalf("trace %d differs between Runner and Run", i)
		}
	}
}

func TestRunnerCancellation(t *testing.T) {
	fold := testFold(t)
	det := fittedDetector(t, "envelope")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (&Runner{Detector: det, Workers: 2}).Run(ctx, fold.Test, nil); err == nil {
		t.Fatal("cancelled runner should fail")
	}
}

func TestRunnerReportsGestureAccuracy(t *testing.T) {
	fold := testFold(t)
	det := fittedDetector(t, "context-aware")
	rep, err := (&Runner{Detector: det, Workers: 2}).Run(context.Background(), fold.Test, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GestureAccuracy <= 0 {
		t.Errorf("context-predicting backend should report gesture accuracy, got %v", rep.GestureAccuracy)
	}
	if len(rep.PerDemoAUC) != len(fold.Test) {
		t.Errorf("PerDemoAUC has %d entries for %d demos", len(rep.PerDemoAUC), len(fold.Test))
	}
}
