package safemon

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/kinematics"
)

// classifierBackend selects which Table IV gesture-classifier baseline
// provides the operational context.
type classifierBackend int

const (
	backendSkipChain classifierBackend = iota
	backendSDSDL
)

// classifierDetector composes a baseline gesture classifier (the context
// stage) with a per-gesture static envelope (the error stage): the
// classifier infers the current gesture online and the envelope validates
// the kinematics within that context. It demonstrates that the unified
// Detector interface accommodates backends whose two stages come from
// entirely different model families than the paper's neural pipeline.
type classifierDetector struct {
	cfg     Config
	backend classifierBackend

	features FeatureSet
	sc       *baseline.SkipChain
	sd       *baseline.SDSDL
	env      *baseline.StaticEnvelope
	// loadErr records a failed Load so sessions can report why the
	// detector is unusable instead of a generic not-fitted error.
	loadErr error
}

func newClassifierDetector(cfg Config, backend classifierBackend) *classifierDetector {
	return &classifierDetector{cfg: cfg, backend: backend}
}

func (d *classifierDetector) config() Config { return d.cfg }

func (d *classifierDetector) name() string {
	if d.backend == backendSDSDL {
		return "sdsdl"
	}
	return "skipchain"
}

func (d *classifierDetector) Info() Info {
	return Info{
		Name:            d.name(),
		Threshold:       d.cfg.Threshold,
		PredictsContext: true,
		Timing:          d.cfg.Timing,
	}
}

func (d *classifierDetector) Fit(ctx context.Context, trajs []*Trajectory) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	features := d.cfg.GestureFeatures
	if features == nil {
		features = AllFeatures()
	}
	xs := make([][][]float64, 0, len(trajs))
	ys := make([][]int, 0, len(trajs))
	for _, tr := range trajs {
		if len(tr.Gestures) != len(tr.Frames) {
			return errors.New("safemon: classifier backends need gesture-labeled training trajectories")
		}
		xs = append(xs, features.Matrix(tr))
		ys = append(ys, tr.Gestures)
	}

	switch d.backend {
	case backendSDSDL:
		stride := d.cfg.TrainStride
		if stride <= 0 {
			stride = 4 // keeps k-means tractable on full-rate data
		}
		frames, labels := flattenSequences(xs, ys, stride)
		sd := baseline.NewSDSDL(d.cfg.Atoms)
		rng := rand.New(rand.NewSource(d.cfg.Seed))
		if err := sd.Fit(rng, frames, labels); err != nil {
			return fmt.Errorf("safemon: fit sdsdl context stage: %w", err)
		}
		d.sd = sd
	default:
		sc := baseline.NewSkipChain(d.cfg.SkipLag)
		if err := sc.Fit(xs, ys); err != nil {
			return fmt.Errorf("safemon: fit skipchain context stage: %w", err)
		}
		d.sc = sc
	}

	errFeatures := d.cfg.ErrorFeatures
	if errFeatures == nil {
		errFeatures = CRG()
	}
	env := baseline.NewStaticEnvelope(errFeatures, true)
	if d.cfg.EnvelopeMargin > 0 {
		env.Margin = d.cfg.EnvelopeMargin
	}
	if err := env.Fit(trajs); err != nil {
		return fmt.Errorf("safemon: fit %s error stage: %w", d.name(), err)
	}
	d.features = features
	d.env = env
	d.loadErr = nil
	return nil
}

// classifierPayload is the artifact payload of the skipchain and sdsdl
// backends: the context-stage classifier, the per-gesture envelope error
// stage, and the resolved context-feature projection.
type classifierPayload struct {
	Config    persistedConfig
	Features  []int
	SkipChain []byte
	SDSDL     []byte
	Envelope  []byte
}

// Save writes the fitted detector as a self-describing artifact.
func (d *classifierDetector) Save(w io.Writer) error {
	if d.env == nil {
		return ErrNotFitted
	}
	p := classifierPayload{
		Config:   persistConfig(d.cfg),
		Features: featureInts(d.features),
	}
	var err error
	if p.Envelope, err = d.env.MarshalBinary(); err != nil {
		return artifactErr("encode", d.name(), err)
	}
	if d.sc != nil {
		if p.SkipChain, err = d.sc.MarshalBinary(); err != nil {
			return artifactErr("encode", d.name(), err)
		}
	}
	if d.sd != nil {
		if p.SDSDL, err = d.sd.MarshalBinary(); err != nil {
			return artifactErr("encode", d.name(), err)
		}
	}
	payload, err := encodeGob(d.name(), p)
	if err != nil {
		return err
	}
	return writeArtifact(w, d.name(), payload)
}

// Load restores fitted state from a Save artifact of the same backend.
func (d *classifierDetector) Load(r io.Reader) error {
	if d.env != nil {
		return ErrAlreadyFitted
	}
	backend, payload, err := readArtifact(r)
	if err != nil {
		d.loadErr = err
		return err
	}
	return d.loadPayload(backend, payload)
}

// loadPayload restores fitted state from an already-parsed artifact
// (LoadDetector's single-parse path).
func (d *classifierDetector) loadPayload(backend string, payload []byte) error {
	if d.env != nil {
		return ErrAlreadyFitted
	}
	err := guardLoad(d.name(), func() error {
		if err := checkBackendName(backend, d.name()); err != nil {
			return err
		}
		var p classifierPayload
		if err := decodeGob(d.name(), payload, &p); err != nil {
			return err
		}
		cfg, err := p.Config.restore(d.cfg)
		if err != nil {
			return artifactErr("validate", d.name(), err)
		}
		features, err := restoreFeatureSet(p.Features)
		if err != nil || features == nil {
			return artifactErr("validate", d.name(), fmt.Errorf("%w: bad context feature set (%v)", ErrCorruptPayload, err))
		}
		var sc *baseline.SkipChain
		var sd *baseline.SDSDL
		switch d.backend {
		case backendSDSDL:
			if len(p.SDSDL) == 0 {
				return artifactErr("validate", d.name(), fmt.Errorf("%w: sdsdl artifact without a classifier", ErrCorruptPayload))
			}
			sd = &baseline.SDSDL{}
			if err := sd.UnmarshalBinary(p.SDSDL); err != nil {
				return artifactErr("decode", d.name(), fmt.Errorf("%w: %v", ErrCorruptPayload, err))
			}
			if sd.Dim() != features.Dim() {
				return artifactErr("validate", d.name(), fmt.Errorf("%w: classifier dimension %d disagrees with %d features", ErrCorruptPayload, sd.Dim(), features.Dim()))
			}
		default:
			if len(p.SkipChain) == 0 {
				return artifactErr("validate", d.name(), fmt.Errorf("%w: skipchain artifact without a classifier", ErrCorruptPayload))
			}
			sc = &baseline.SkipChain{}
			if err := sc.UnmarshalBinary(p.SkipChain); err != nil {
				return artifactErr("decode", d.name(), fmt.Errorf("%w: %v", ErrCorruptPayload, err))
			}
			if sc.Dim() != features.Dim() {
				return artifactErr("validate", d.name(), fmt.Errorf("%w: classifier dimension %d disagrees with %d features", ErrCorruptPayload, sc.Dim(), features.Dim()))
			}
		}
		env := &baseline.StaticEnvelope{}
		if err := env.UnmarshalBinary(p.Envelope); err != nil {
			return artifactErr("decode", d.name(), fmt.Errorf("%w: %v", ErrCorruptPayload, err))
		}
		d.cfg = cfg
		d.features = features
		d.sc = sc
		d.sd = sd
		d.env = env
		return nil
	})
	if err != nil {
		d.features, d.sc, d.sd, d.env = nil, nil, nil, nil
		d.loadErr = err
		return err
	}
	d.loadErr = nil
	return nil
}

// flattenSequences subsamples per-frame sequences into flat training pairs
// (every stride-th frame), keeping SDSDL's k-means tractable.
func flattenSequences(xs [][][]float64, ys [][]int, stride int) ([][]float64, []int) {
	var frames [][]float64
	var labels []int
	for i := range xs {
		for t := 0; t < len(xs[i]); t += stride {
			frames = append(frames, xs[i][t])
			labels = append(labels, ys[i][t])
		}
	}
	return frames, labels
}

func (d *classifierDetector) Run(ctx context.Context, traj *Trajectory) (*Trace, error) {
	return runViaSession(ctx, d, traj, d.cfg.Timing)
}

func (d *classifierDetector) NewSession(opts ...SessionOption) (Session, error) {
	if d.env == nil {
		return nil, notReadyErr(d.name(), d.loadErr)
	}
	sc := applySessionOptions(opts)
	// All per-frame scratch — the feature projection, the classifier's
	// decode state and the envelope scorer's row — is allocated here, so
	// a warm Push is allocation-free.
	env, err := d.env.NewScorer()
	if err != nil {
		return nil, err
	}
	ext := d.features.NewExtractor()
	s := &classifierSession{d: d, env: env, ext: ext, row: make([]float64, ext.Dim())}
	if d.sc != nil {
		dec, err := d.sc.NewOnlineDecoder()
		if err != nil {
			return nil, err
		}
		s.dec = dec
	} else {
		sp, err := d.sd.NewStreamPredictor()
		if err != nil {
			return nil, err
		}
		s.sd = sp
	}
	return wrapGuard(s, sc)
}

type classifierSession struct {
	d   *classifierDetector
	dec *baseline.OnlineDecoder
	sd  *baseline.StreamPredictor
	env *baseline.EnvelopeScorer
	ext *kinematics.Extractor
	row []float64
	idx int
}

func (s *classifierSession) Push(f *Frame) (FrameVerdict, error) {
	d := s.d
	row := s.ext.ExtractInto(f, s.row)
	var g int
	if s.dec != nil {
		g = s.dec.Push(row)
	} else {
		g = s.sd.Predict(row)
	}
	score := s.env.Score(f, g)
	v := FrameVerdict{
		FrameIndex: s.idx,
		Gesture:    g,
		Score:      score,
		Unsafe:     score >= d.cfg.Threshold,
	}
	s.idx++
	return v, nil
}

func (s *classifierSession) Reset([]int) error {
	if s.dec != nil {
		s.dec.Reset()
	}
	s.idx = 0
	return nil
}

func (s *classifierSession) Close() error { return nil }
