package safemon

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/gesture"
)

// contextDetector adapts the paper's two-stage monitor (core.Monitor) and
// its boundary-lookahead variant (core.LookaheadMonitor) to the Detector
// interface. With gestureSpecific false it is the non-context-specific
// (monolithic) baseline instead.
type contextDetector struct {
	cfg             Config
	name            string
	gestureSpecific bool

	mon *core.Monitor
	la  *core.LookaheadMonitor
}

func newContextDetector(cfg Config) *contextDetector {
	name := "context-aware"
	if cfg.Lookahead {
		name = "lookahead"
	}
	return &contextDetector{cfg: cfg, name: name, gestureSpecific: true}
}

func newMonolithicDetector(cfg Config) *contextDetector {
	cfg.Lookahead = false
	return &contextDetector{cfg: cfg, name: "monolithic"}
}

func (d *contextDetector) Info() Info {
	return Info{
		Name:            d.name,
		Threshold:       d.cfg.Threshold,
		PredictsContext: d.gestureSpecific && !d.cfg.GroundTruthContext,
		Timing:          d.cfg.Timing,
	}
}

func (d *contextDetector) Fit(ctx context.Context, trajs []*Trajectory) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	elCfg := core.DefaultErrorDetectorConfig()
	if d.cfg.ErrorFeatures != nil {
		elCfg.Features = d.cfg.ErrorFeatures
	}
	if d.cfg.Window > 0 {
		elCfg.Window = d.cfg.Window
	}
	if d.cfg.Arch != 0 {
		elCfg.Arch = d.cfg.Arch
	}
	if d.cfg.Epochs > 0 {
		elCfg.Epochs = d.cfg.Epochs
	}
	if d.cfg.TrainStride > 0 {
		elCfg.TrainStride = d.cfg.TrainStride
	}
	elCfg.Seed = d.cfg.Seed + 7
	elCfg.Verbose = d.cfg.Verbose

	var lib *core.ErrorLibrary
	var err error
	if d.gestureSpecific {
		lib, err = core.TrainErrorLibrary(trajs, elCfg)
	} else {
		lib, err = core.TrainMonolithicDetector(trajs, elCfg)
	}
	if err != nil {
		return fmt.Errorf("safemon: fit %s error stage: %w", d.name, err)
	}

	var gc *core.GestureClassifier
	if d.gestureSpecific && !d.cfg.GroundTruthContext {
		if err := ctx.Err(); err != nil {
			return err
		}
		gcCfg := core.DefaultGestureClassifierConfig()
		if d.cfg.GestureFeatures != nil {
			gcCfg.Features = d.cfg.GestureFeatures
		}
		if d.cfg.Epochs > 0 {
			gcCfg.Epochs = d.cfg.Epochs
		}
		if d.cfg.TrainStride > 0 {
			gcCfg.TrainStride = d.cfg.TrainStride
		}
		gcCfg.Seed = d.cfg.Seed
		gcCfg.Verbose = d.cfg.Verbose
		gc, err = core.TrainGestureClassifier(trajs, gcCfg)
		if err != nil {
			return fmt.Errorf("safemon: fit %s context stage: %w", d.name, err)
		}
	}

	mon := core.NewMonitor(gc, lib)
	mon.Threshold = d.cfg.Threshold
	mon.UseGroundTruthGestures = d.cfg.GroundTruthContext
	if d.cfg.Lookahead {
		chain := d.cfg.Chain
		if chain == nil {
			seqs := make([][]int, 0, len(trajs))
			for _, tr := range trajs {
				seqs = append(seqs, tr.GestureSequence())
			}
			chain, err = gesture.FitMarkovChain(seqs)
			if err != nil {
				return fmt.Errorf("safemon: fit lookahead grammar: %w", err)
			}
		}
		d.la = core.NewLookaheadMonitor(mon, chain)
	}
	d.mon = mon
	return nil
}

func (d *contextDetector) Run(ctx context.Context, traj *Trajectory) (*Trace, error) {
	return runViaSession(ctx, d, traj, d.cfg.Timing)
}

func (d *contextDetector) NewSession(opts ...SessionOption) (Session, error) {
	if d.mon == nil {
		return nil, ErrNotFitted
	}
	sc := applySessionOptions(opts)
	if d.la != nil {
		st, err := d.la.NewStream(sc.groundTruth)
		if err != nil {
			return nil, err
		}
		return &coreSession{push: st.Push, reset: st.Reset}, nil
	}
	st, err := d.mon.NewStream(sc.groundTruth)
	if err != nil {
		return nil, err
	}
	return &coreSession{push: st.Push, reset: st.Reset}, nil
}

// coreSession adapts core's two stream types to the Session interface.
type coreSession struct {
	push  func(*Frame) FrameVerdict
	reset func([]int) error
}

func (s *coreSession) Push(f *Frame) (FrameVerdict, error) { return s.push(f), nil }
func (s *coreSession) Reset(groundTruth []int) error       { return s.reset(groundTruth) }
func (s *coreSession) Close() error                        { return nil }
