package safemon

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/gesture"
)

// contextDetector adapts the paper's two-stage monitor (core.Monitor) and
// its boundary-lookahead variant (core.LookaheadMonitor) to the Detector
// interface. With gestureSpecific false it is the non-context-specific
// (monolithic) baseline instead.
type contextDetector struct {
	cfg             Config
	name            string
	gestureSpecific bool

	mon *core.Monitor
	la  *core.LookaheadMonitor
	// loadErr records a failed Load so sessions can report why the
	// detector is unusable instead of a generic not-fitted error.
	loadErr error
}

func (d *contextDetector) config() Config { return d.cfg }

func newContextDetector(cfg Config) *contextDetector {
	name := "context-aware"
	if cfg.Lookahead {
		name = "lookahead"
	}
	return &contextDetector{cfg: cfg, name: name, gestureSpecific: true}
}

func newMonolithicDetector(cfg Config) *contextDetector {
	cfg.Lookahead = false
	return &contextDetector{cfg: cfg, name: "monolithic"}
}

func (d *contextDetector) Info() Info {
	return Info{
		Name:            d.name,
		Threshold:       d.cfg.Threshold,
		PredictsContext: d.gestureSpecific && !d.cfg.GroundTruthContext,
		Timing:          d.cfg.Timing,
	}
}

func (d *contextDetector) Fit(ctx context.Context, trajs []*Trajectory) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	elCfg := core.DefaultErrorDetectorConfig()
	if d.cfg.ErrorFeatures != nil {
		elCfg.Features = d.cfg.ErrorFeatures
	}
	if d.cfg.Window > 0 {
		elCfg.Window = d.cfg.Window
	}
	if d.cfg.Arch != 0 {
		elCfg.Arch = d.cfg.Arch
	}
	if d.cfg.Epochs > 0 {
		elCfg.Epochs = d.cfg.Epochs
	}
	if d.cfg.TrainStride > 0 {
		elCfg.TrainStride = d.cfg.TrainStride
	}
	elCfg.Seed = d.cfg.Seed + 7
	elCfg.Verbose = d.cfg.Verbose

	var lib *core.ErrorLibrary
	var err error
	if d.gestureSpecific {
		lib, err = core.TrainErrorLibrary(trajs, elCfg)
	} else {
		lib, err = core.TrainMonolithicDetector(trajs, elCfg)
	}
	if err != nil {
		return fmt.Errorf("safemon: fit %s error stage: %w", d.name, err)
	}

	var gc *core.GestureClassifier
	if d.gestureSpecific && !d.cfg.GroundTruthContext {
		if err := ctx.Err(); err != nil {
			return err
		}
		gcCfg := core.DefaultGestureClassifierConfig()
		if d.cfg.GestureFeatures != nil {
			gcCfg.Features = d.cfg.GestureFeatures
		}
		if d.cfg.Epochs > 0 {
			gcCfg.Epochs = d.cfg.Epochs
		}
		if d.cfg.TrainStride > 0 {
			gcCfg.TrainStride = d.cfg.TrainStride
		}
		gcCfg.Seed = d.cfg.Seed
		gcCfg.Verbose = d.cfg.Verbose
		gc, err = core.TrainGestureClassifier(trajs, gcCfg)
		if err != nil {
			return fmt.Errorf("safemon: fit %s context stage: %w", d.name, err)
		}
	}

	mon := core.NewMonitor(gc, lib)
	mon.Threshold = d.cfg.Threshold
	mon.UseGroundTruthGestures = d.cfg.GroundTruthContext
	if d.cfg.Quantized {
		mon.QuantizeWeights()
	}
	if d.cfg.Lookahead {
		chain := d.cfg.Chain
		if chain == nil {
			seqs := make([][]int, 0, len(trajs))
			for _, tr := range trajs {
				seqs = append(seqs, tr.GestureSequence())
			}
			chain, err = gesture.FitMarkovChain(seqs)
			if err != nil {
				return fmt.Errorf("safemon: fit lookahead grammar: %w", err)
			}
		}
		d.la = core.NewLookaheadMonitor(mon, chain)
	}
	d.mon = mon
	d.loadErr = nil
	return nil
}

// contextPayload is the artifact payload of the context-aware, lookahead
// and monolithic backends: the serialized two-stage monitor bundle plus the
// resolved configuration (and, for lookahead, the task grammar and blend).
type contextPayload struct {
	Config  persistedConfig
	Monitor []byte
	Chain   *gesture.MarkovChain
	Blend   float64
}

// Save writes the fitted detector as a self-describing artifact.
func (d *contextDetector) Save(w io.Writer) error {
	if d.mon == nil {
		return ErrNotFitted
	}
	var mon bytes.Buffer
	if err := d.mon.Encode(&mon); err != nil {
		return artifactErr("encode", d.name, err)
	}
	p := contextPayload{Config: persistConfig(d.cfg), Monitor: mon.Bytes()}
	if d.la != nil {
		p.Chain = d.la.Chain
		p.Blend = d.la.Blend
	}
	payload, err := encodeGob(d.name, p)
	if err != nil {
		return err
	}
	return writeArtifact(w, d.name, payload)
}

// Load restores fitted state from a Save artifact of the same backend. On
// failure the detector stays unfitted and records the error (sessions then
// fail with it); it never ends up half-populated.
func (d *contextDetector) Load(r io.Reader) error {
	if d.mon != nil {
		return ErrAlreadyFitted
	}
	backend, payload, err := readArtifact(r)
	if err != nil {
		d.loadErr = err
		return err
	}
	return d.loadPayload(backend, payload)
}

// loadPayload restores fitted state from an already-parsed artifact
// (LoadDetector's single-parse path).
func (d *contextDetector) loadPayload(backend string, payload []byte) error {
	if d.mon != nil {
		return ErrAlreadyFitted
	}
	err := guardLoad(d.name, func() error {
		if err := checkBackendName(backend, d.name); err != nil {
			return err
		}
		var p contextPayload
		if err := decodeGob(d.name, payload, &p); err != nil {
			return err
		}
		cfg, err := p.Config.restore(d.cfg)
		if err != nil {
			return artifactErr("validate", d.name, err)
		}
		mon, err := core.DecodeMonitor(bytes.NewReader(p.Monitor), rand.New(rand.NewSource(cfg.Seed)))
		if err != nil {
			return artifactErr("decode", d.name, fmt.Errorf("%w: %v", ErrCorruptPayload, err))
		}
		if mon.Errors.GestureSpecific != d.gestureSpecific {
			return artifactErr("validate", d.name, fmt.Errorf("%w: gesture-specificity mismatch", ErrCorruptPayload))
		}
		if d.gestureSpecific && !cfg.GroundTruthContext && mon.Gestures == nil {
			return artifactErr("validate", d.name, fmt.Errorf("%w: classifier-context artifact without a gesture stage", ErrCorruptPayload))
		}
		var la *core.LookaheadMonitor
		if cfg.Lookahead != (d.name == "lookahead") {
			return artifactErr("validate", d.name, fmt.Errorf("%w: lookahead flag disagrees with backend name", ErrCorruptPayload))
		}
		if cfg.Lookahead {
			if p.Chain == nil {
				return artifactErr("validate", d.name, fmt.Errorf("%w: lookahead artifact without a task grammar", ErrCorruptPayload))
			}
			la = core.NewLookaheadMonitor(mon, p.Chain)
			if p.Blend > 0 {
				la.Blend = p.Blend
			}
			cfg.Chain = p.Chain
		}
		if cfg.Quantized {
			// No-op for layers restored with an int8 artifact section;
			// deterministic re-quantization for float artifacts loaded
			// with WithQuantized.
			mon.QuantizeWeights()
		}
		d.cfg = cfg
		d.mon = mon
		d.la = la
		return nil
	})
	if err != nil {
		d.mon, d.la = nil, nil
		d.loadErr = err
		return err
	}
	d.loadErr = nil
	return nil
}

func (d *contextDetector) Run(ctx context.Context, traj *Trajectory) (*Trace, error) {
	return runViaSession(ctx, d, traj, d.cfg.Timing)
}

func (d *contextDetector) NewSession(opts ...SessionOption) (Session, error) {
	if d.mon == nil {
		return nil, notReadyErr(d.name, d.loadErr)
	}
	sc := applySessionOptions(opts)
	if d.la != nil {
		st, err := d.la.NewStream(sc.groundTruth)
		if err != nil {
			return nil, err
		}
		// Lookahead blends a grammar term into every score, which the
		// batched stepper does not model: st/mon stay nil so the session
		// reports itself unbatchable and the batcher falls back to Push.
		return wrapGuard(&coreSession{push: st.Push, reset: st.Reset}, sc)
	}
	st, err := d.mon.NewStream(sc.groundTruth)
	if err != nil {
		return nil, err
	}
	return wrapGuard(&coreSession{st: st, mon: d.mon, push: st.Push, reset: st.Reset}, sc)
}

// coreSession adapts core's two stream types to the Session interface.
// st/mon are set only for plain two-stage monitor streams; they expose the
// concrete stream to the cross-session Batcher (batch.go).
type coreSession struct {
	st    *core.Stream
	mon   *core.Monitor
	push  func(*Frame) FrameVerdict
	reset func([]int) error
}

func (s *coreSession) Push(f *Frame) (FrameVerdict, error) { return s.push(f), nil }
func (s *coreSession) Reset(groundTruth []int) error       { return s.reset(groundTruth) }
func (s *coreSession) Close() error                        { return nil }

func (s *coreSession) batchable() bool { return s.st != nil }

func (s *coreSession) planPush(_ *Frame) batchEntry {
	return batchEntry{stream: s.st, mon: s.mon}
}

func (s *coreSession) finishPush(_ *Frame, v FrameVerdict) (FrameVerdict, error) {
	return v, nil
}
