package safemon

import (
	"repro/safemon/guard"
)

// WithGuard attaches a mitigation policy engine to the session: every
// verdict the session produces is also stepped through a guard.Engine
// running the given policy, and the resulting mitigation decision is
// available through the GuardedSession interface. The policy is validated
// when the session opens.
//
// The guard adds no allocations to the warm per-frame path, so guarded
// sessions keep the zero-allocation streaming guarantee.
func WithGuard(p guard.Policy) SessionOption {
	return func(sc *sessionConfig) { sc.guardPolicy = &p }
}

// GuardedSession is implemented by sessions opened WithGuard. Decision
// reports the mitigation state after the most recent Push — the closed
// loop reads it each frame to decide whether (and how hard) to intervene
// in the command stream.
type GuardedSession interface {
	Session
	// Decision returns the guard decision for the last pushed frame.
	Decision() guard.Decision
	// GuardPolicy returns the resolved policy the session runs.
	GuardPolicy() guard.Policy
	// GuardCounters returns the engine's lifetime mitigation activity.
	GuardCounters() guard.Counters
}

// guardedSession decorates any backend session with a policy engine.
type guardedSession struct {
	Session
	eng  *guard.Engine
	last guard.Decision
}

// wrapGuard applies the session's guard and ledger options, if any.
// Backends call it on their NewSession return value; on a policy
// validation error the inner session is closed. The ledger wrapper goes
// outside the guard wrapper so recorded action edges reflect the guard's
// per-frame decisions.
func wrapGuard(s Session, sc sessionConfig) (Session, error) {
	if sc.guardPolicy != nil {
		eng, err := guard.NewEngine(*sc.guardPolicy)
		if err != nil {
			s.Close()
			return nil, err
		}
		s = &guardedSession{Session: s, eng: eng}
	}
	return wrapLedger(s, sc), nil
}

func (g *guardedSession) Push(f *Frame) (FrameVerdict, error) {
	v, err := g.Session.Push(f)
	if err != nil {
		return v, err
	}
	g.last = g.eng.Step(v)
	return v, nil
}

func (g *guardedSession) Reset(groundTruth []int) error {
	if err := g.Session.Reset(groundTruth); err != nil {
		return err
	}
	g.eng.Reset()
	g.last = guard.Decision{AlertFrame: -1}
	return nil
}

// batchable/planPush delegate to the inner session; finishPush appends the
// guard step so the batched path runs the exact post-verdict sequence of
// Push.
func (g *guardedSession) batchable() bool {
	bs, ok := g.Session.(batchSession)
	return ok && bs.batchable()
}

func (g *guardedSession) planPush(f *Frame) batchEntry {
	return g.Session.(batchSession).planPush(f)
}

func (g *guardedSession) finishPush(f *Frame, v FrameVerdict) (FrameVerdict, error) {
	v, err := g.Session.(batchSession).finishPush(f, v)
	if err != nil {
		return v, err
	}
	g.last = g.eng.Step(v)
	return v, nil
}

func (g *guardedSession) Decision() guard.Decision      { return g.last }
func (g *guardedSession) GuardPolicy() guard.Policy     { return g.eng.Policy() }
func (g *guardedSession) GuardCounters() guard.Counters { return g.eng.Counters() }
