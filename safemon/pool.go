package safemon

import "sync"

// SessionPool keeps a bounded free list of sessions for one fitted detector
// so that short-lived streams (one network connection, one trajectory) can
// reuse a warm session instead of paying NewSession on every open. Get
// always returns a session rewound to frame zero — either a pooled one
// after Reset or a freshly created one — so pooled reuse is
// indistinguishable from a fresh session (the Reset contract every backend
// is tested against). The pool is safe for concurrent use.
type SessionPool struct {
	det     Detector
	maxIdle int

	mu     sync.Mutex
	idle   []Session
	closed bool
}

// NewSessionPool builds a pool over a fitted detector. maxIdle caps the
// free list; <= 0 selects a default of 16.
func NewSessionPool(det Detector, maxIdle int) *SessionPool {
	if maxIdle <= 0 {
		maxIdle = 16
	}
	return &SessionPool{det: det, maxIdle: maxIdle}
}

// Get returns a session rewound to frame zero with the given ground-truth
// labels (nil when the backend infers its own context). A pooled session
// that fails to Reset is discarded rather than handed out.
func (p *SessionPool) Get(groundTruth []int) (Session, error) {
	p.mu.Lock()
	var s Session
	if n := len(p.idle); n > 0 {
		s = p.idle[n-1]
		p.idle[n-1] = nil
		p.idle = p.idle[:n-1]
	}
	p.mu.Unlock()
	if s != nil {
		if err := s.Reset(groundTruth); err != nil {
			s.Close()
			return nil, err
		}
		return s, nil
	}
	var opts []SessionOption
	if groundTruth != nil {
		opts = append(opts, WithSessionLabels(groundTruth))
	}
	return p.det.NewSession(opts...)
}

// Put returns a session to the free list, closing it instead when the list
// is full or the pool is closed. Sessions whose last Push returned an error
// should be closed by the caller, not returned.
func (p *SessionPool) Put(s Session) {
	if s == nil {
		return
	}
	p.mu.Lock()
	if !p.closed && len(p.idle) < p.maxIdle {
		p.idle = append(p.idle, s)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	s.Close()
}

// Close drains and closes every idle session; subsequent Puts close their
// sessions immediately. Get remains usable (it falls back to NewSession).
func (p *SessionPool) Close() error {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.closed = true
	p.mu.Unlock()
	var firstErr error
	for _, s := range idle {
		if err := s.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
