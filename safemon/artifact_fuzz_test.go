package safemon

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/baseline"
	"repro/internal/kinematics"
	"repro/internal/synth"
)

// fuzzSeedArtifact builds one small but real envelope artifact without the
// full test fixture (fuzz workers run the seed builder in every process, so
// it must stay cheap and deterministic).
func fuzzSeedArtifact(tb testing.TB) []byte {
	tb.Helper()
	demos, err := synth.Generate(synth.Config{
		Task: 1, Hz: 30, Seed: 11, NumDemos: 2, NumTrials: 1, Subjects: 2, DurationScale: 0.2,
	})
	if err != nil {
		tb.Fatal(err)
	}
	det, err := Open("envelope", WithThreshold(0.2))
	if err != nil {
		tb.Fatal(err)
	}
	if err := det.Fit(context.Background(), synth.Trajectories(demos)); err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzLoadArtifact is the decoder robustness gate: whatever bytes arrive,
// LoadDetector must either succeed or return a typed *ArtifactError — it
// must never panic, and a detector it does return must be able to open a
// session and score a frame. The seed corpus covers the interesting
// neighborhood: a valid artifact, truncations, bit flips, a bumped format
// version, an oversized payload claim, and header-only prefixes.
// `make fuzz-replay` (part of `make ci`) replays the corpus as plain tests.
func FuzzLoadArtifact(f *testing.F) {
	art := fuzzSeedArtifact(f)

	f.Add([]byte(nil))
	f.Add([]byte("SFMA"))
	f.Add(art)
	f.Add(art[:8])
	f.Add(art[:len(art)/2])
	f.Add(art[:len(art)-1])
	truncName := append([]byte(nil), art[:10]...)
	f.Add(truncName)
	flip := append([]byte(nil), art...)
	flip[len(flip)/3] ^= 0x10
	f.Add(flip)
	crcFlip := append([]byte(nil), art...)
	crcFlip[len(crcFlip)-2] ^= 0x80
	f.Add(crcFlip)
	bump := append([]byte(nil), art...)
	binary.BigEndian.PutUint16(bump[4:6], 7)
	f.Add(bump)
	oversized := append([]byte(nil), art...)
	nameLen := int(binary.BigEndian.Uint16(oversized[8:10]))
	binary.BigEndian.PutUint64(oversized[10+nameLen:18+nameLen], 1<<60)
	f.Add(oversized)
	f.Add(append(append([]byte(nil), art...), 0x00))
	badName := append([]byte(nil), art...)
	copy(badName[10:10+nameLen], bytes.Repeat([]byte{'z'}, nameLen))
	f.Add(badName)

	f.Fuzz(func(t *testing.T, data []byte) {
		det, err := LoadDetector(bytes.NewReader(data))
		if err != nil {
			var ae *ArtifactError
			if !errors.As(err, &ae) {
				t.Fatalf("LoadDetector error %T(%v) is not a *ArtifactError", err, err)
			}
			return
		}
		// An accepted artifact must produce a detector that actually
		// serves: decode validation may not admit half-usable state.
		sess, err := det.NewSession()
		if err != nil {
			// Ground-truth-context models legitimately need labels.
			sess, err = det.NewSession(WithSessionLabels([]int{1}))
			if err != nil {
				t.Fatalf("loaded detector refuses sessions: %v", err)
			}
		}
		defer sess.Close()
		var frame kinematics.Frame
		if _, err := sess.Push(&frame); err != nil {
			t.Fatalf("loaded detector cannot score a frame: %v", err)
		}
	})
}

// FuzzUnmarshalEnvelope drills the baseline model decoder underneath the
// artifact envelope: arbitrary payload bytes must produce a typed error or
// a fully usable model, never a panic.
func FuzzUnmarshalEnvelope(f *testing.F) {
	det, err := Open("envelope")
	if err != nil {
		f.Fatal(err)
	}
	_ = det
	f.Add([]byte(nil))
	f.Add([]byte{0x01, 0x02, 0x03})
	f.Fuzz(func(t *testing.T, data []byte) {
		env := &baseline.StaticEnvelope{}
		if err := env.UnmarshalBinary(data); err != nil {
			return
		}
		// Accepted state must be scoreable.
		var frame kinematics.Frame
		if _, err := env.Score(&frame, 1); err != nil {
			t.Fatalf("unmarshaled envelope cannot score: %v", err)
		}
	})
}
