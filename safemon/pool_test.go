package safemon

import (
	"context"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestSessionPoolWarmReuse pins the pool contract: a pooled (warm) session
// must be indistinguishable from a fresh one — same verdicts, correct
// label rebinding across different trajectories.
func TestSessionPoolWarmReuse(t *testing.T) {
	fold := testFold(t)
	det := fittedDetector(t, "context-aware")
	pool := NewSessionPool(det, 4)
	defer pool.Close()
	ctx := context.Background()

	for pass := 0; pass < 2; pass++ { // second pass rides pooled sessions
		for _, traj := range fold.Test {
			ref, err := det.Run(ctx, traj)
			if err != nil {
				t.Fatal(err)
			}
			sess, err := pool.Get(traj.Gestures)
			if err != nil {
				t.Fatal(err)
			}
			for i := range traj.Frames {
				v, err := sess.Push(&traj.Frames[i])
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(v, ref.Verdicts[i]) {
					t.Fatalf("pass %d frame %d: pooled session %+v vs run %+v", pass, i, v, ref.Verdicts[i])
				}
			}
			pool.Put(sess)
		}
	}
}

// TestSessionPoolMidStreamReuse guards the harder pool scenario: a session
// abandoned mid-trajectory and returned to the pool must still replay the
// next trajectory exactly (stale window state may not leak).
func TestSessionPoolMidStreamReuse(t *testing.T) {
	fold := testFold(t)
	det := fittedDetector(t, "context-aware")
	pool := NewSessionPool(det, 2)
	defer pool.Close()
	ctx := context.Background()

	trajA, trajB := fold.Test[0], fold.Test[len(fold.Test)-1]
	sess, err := pool.Get(trajA.Gestures)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < trajA.Len()/3; i++ { // abandon a third of the way in
		if _, err := sess.Push(&trajA.Frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	pool.Put(sess)

	ref, err := det.Run(ctx, trajB)
	if err != nil {
		t.Fatal(err)
	}
	sess, err = pool.Get(trajB.Gestures)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Put(sess)
	for i := range trajB.Frames {
		v, err := sess.Push(&trajB.Frames[i])
		if err != nil {
			t.Fatal(err)
		}
		if v != ref.Verdicts[i] {
			t.Fatalf("frame %d: reused session %+v vs fresh run %+v", i, v, ref.Verdicts[i])
		}
	}
}

// TestSessionPoolBounds checks the free-list cap and Close behavior.
func TestSessionPoolBounds(t *testing.T) {
	det := fittedDetector(t, "envelope")
	pool := NewSessionPool(det, 2)
	var sessions []Session
	for i := 0; i < 4; i++ {
		s, err := pool.Get(nil)
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
	}
	for _, s := range sessions {
		pool.Put(s)
	}
	pool.mu.Lock()
	idle := len(pool.idle)
	pool.mu.Unlock()
	if idle != 2 {
		t.Errorf("idle sessions = %d, want the cap of 2", idle)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	pool.mu.Lock()
	idle = len(pool.idle)
	pool.mu.Unlock()
	if idle != 0 {
		t.Errorf("idle sessions after Close = %d", idle)
	}
	// Get still works after Close (falls back to NewSession).
	s, err := pool.Get(nil)
	if err != nil {
		t.Fatal(err)
	}
	pool.Put(s) // closed pool must not retain it
	pool.mu.Lock()
	idle = len(pool.idle)
	pool.mu.Unlock()
	if idle != 0 {
		t.Errorf("closed pool retained a session")
	}
}

// TestSessionPoolSteadyStateAllocations pins the pool's memory behaviour
// under allocation pressure: once sessions are warm, Get → stream → Put
// cycles must not grow the live heap (each cycle reuses the pooled
// session's scratch instead of allocating fresh windows) and must not leak
// goroutines. Runs under -race via make ci's safemon race pass.
func TestSessionPoolSteadyStateAllocations(t *testing.T) {
	fold := testFold(t)
	det := fittedDetector(t, "context-aware")
	pool := NewSessionPool(det, 4)
	defer pool.Close()
	traj := fold.Test[0]

	cycle := func() {
		sess, err := pool.Get(traj.Gestures)
		if err != nil {
			t.Fatal(err)
		}
		for i := range traj.Frames {
			if _, err := sess.Push(&traj.Frames[i]); err != nil {
				t.Fatal(err)
			}
		}
		pool.Put(sess)
	}

	// Warm the pool: the first cycles pay for session construction.
	for i := 0; i < 3; i++ {
		cycle()
	}
	goroutinesBefore := runtime.NumGoroutine()

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	const cycles = 50
	for i := 0; i < cycles; i++ {
		cycle()
	}
	runtime.GC()
	runtime.ReadMemStats(&after)

	// Live-heap growth across 50 warm cycles must stay far below one
	// session's worth of buffers; 256 KiB absorbs runtime noise while
	// still catching a per-cycle window or scratch reallocation.
	if after.HeapAlloc > before.HeapAlloc && after.HeapAlloc-before.HeapAlloc > 256<<10 {
		t.Errorf("live heap grew %d bytes across %d warm pool cycles",
			after.HeapAlloc-before.HeapAlloc, cycles)
	}

	// Goroutine count must return to its warm baseline (pooled sessions
	// own no goroutines; none may leak per cycle).
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > goroutinesBefore {
		t.Errorf("goroutines grew from %d to %d across warm pool cycles", goroutinesBefore, n)
	}
}

// TestSessionPoolConcurrent hammers Get/Put from many goroutines (-race).
func TestSessionPoolConcurrent(t *testing.T) {
	fold := testFold(t)
	det := fittedDetector(t, "envelope")
	pool := NewSessionPool(det, 4)
	defer pool.Close()
	traj := fold.Test[0]

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				sess, err := pool.Get(traj.Gestures)
				if err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < 20 && i < traj.Len(); i++ {
					if _, err := sess.Push(&traj.Frames[i]); err != nil {
						t.Error(err)
						return
					}
				}
				pool.Put(sess)
			}
		}()
	}
	wg.Wait()
}
