// Attack replay: a targeted attack on the robot control system, detected
// in-stream by the context-aware monitor.
//
// The scenario follows the paper's threat model (§I, §IV-B): a malicious
// fault in the cyber layer perturbs the kinematic state variables — here a
// stealthy grasper-angle ramp injected mid-carry, the signature that causes
// unintentional needle/object drops. The safemon detector runs online next
// to the robot; the example measures how long after the attack onset the
// first alert fires.
//
// Run with:
//
//	go run ./examples/attackreplay
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/internal/faultinject"
	"repro/internal/gesture"
	"repro/internal/kinematics"
	"repro/internal/synth"
	"repro/safemon"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	// Train the monitor on clean + erroneous Suturing demonstrations.
	demos, err := synth.Generate(synth.Config{
		Task: gesture.Suturing, Hz: 30, Seed: 11,
		NumDemos: 20, NumTrials: 4, Subjects: 4, DurationScale: 0.6,
	})
	if err != nil {
		return err
	}
	fold := dataset.LOSO(synth.Trajectories(demos))[0]

	det := safemon.New()
	if err := det.Fit(ctx, fold.Train); err != nil {
		return err
	}

	// Take a clean (error-free) held-out demonstration as the victim
	// trajectory and inject the attack into its kinematic state.
	var victim *kinematics.Trajectory
	for _, tr := range fold.Test {
		if tr.UnsafeFraction() == 0 {
			victim = tr
			break
		}
	}
	if victim == nil {
		victim = fold.Test[0]
	}

	attack := faultinject.Fault{
		Variable:    faultinject.GrasperAngle,
		Target:      1.3, // forces the jaw open: needle-drop signature
		StartFrac:   0.45,
		Duration:    0.2,
		Manipulator: kinematics.Left,
		RampRate:    1.5, // slow ramp to stay stealthy
	}
	compromised, onset, end, err := faultinject.Inject(victim, attack)
	if err != nil {
		return err
	}
	fmt.Printf("attack: grasper-angle ramp to %.1f rad over frames [%d,%d) (t=%.2fs..%.2fs)\n",
		attack.Target, onset, end, float64(onset)/victim.HzRate, float64(end)/victim.HzRate)

	// Stream the compromised trajectory through the online monitor.
	sess, err := det.NewSession()
	if err != nil {
		return err
	}
	defer sess.Close()
	firstAlert := -1
	for i := range compromised.Frames {
		v, err := sess.Push(&compromised.Frames[i])
		if err != nil {
			return err
		}
		if v.Unsafe && i >= onset && firstAlert < 0 {
			firstAlert = i
			fmt.Printf("t=%5.2fs  ALERT in context %-4s (score %.2f)\n",
				float64(i)/victim.HzRate, gesture.Gesture(v.Gesture), v.Score)
		}
	}

	switch {
	case firstAlert < 0:
		fmt.Println("attack was NOT detected — try a larger target angle")
	default:
		latency := float64(firstAlert-onset) / victim.HzRate * 1000
		fmt.Printf("detection latency after attack onset: %.0f ms", latency)
		budget := float64(end-firstAlert) / victim.HzRate * 1000
		fmt.Printf(" (%.0f ms left before the attack completes — the mitigation budget)\n", budget)
	}

	// Control: the clean victim should raise no (or few) alerts. Reset
	// reuses the session's buffers for the second stream.
	if err := sess.Reset(nil); err != nil {
		return err
	}
	cleanAlerts := 0
	for i := range victim.Frames {
		v, err := sess.Push(&victim.Frames[i])
		if err != nil {
			return err
		}
		if v.Unsafe {
			cleanAlerts++
		}
	}
	fmt.Printf("control: %d/%d frames flagged on the clean trajectory (false-alarm check)\n",
		cleanAlerts, victim.Len())
	return nil
}
