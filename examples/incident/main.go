// Incident capture and time-travel replay: a targeted attack latches a
// safe-stop, the durable event ledger turns the stream into an incident,
// and — after a full service restart — the incident is replayed through a
// second backend to ask what the other monitor would have done.
//
// The scenario extends examples/attackreplay with the closed loop and the
// flight recorder: a stealthy grasper-angle ramp (the needle-drop
// signature from the paper's threat model, §I, §IV-B) is streamed through
// a guarded safemond service that records every verdict — with its input
// frame — into an on-disk event ledger. The guard policy escalates to a
// latching safe-stop, which makes the session an incident. The service is
// then torn down and rebuilt over the same ledger directory, proving the
// incident survives restarts, and the recorded input stream is re-run
// through both the original envelope monitor (byte-identical trail) and a
// skip-chain monitor it was never streamed to.
//
// Run with:
//
//	go run ./examples/incident
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"

	"repro/internal/dataset"
	"repro/internal/faultinject"
	"repro/internal/gesture"
	"repro/internal/kinematics"
	"repro/internal/synth"
	"repro/safemon"
	"repro/safemon/guard"
	"repro/safemon/ledger"
	"repro/safemon/serve"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// monitored is the service half of the example: a safemond over the two
// fitted monitors, recording into the ledger directory.
type monitored struct {
	srv    *serve.Server
	hs     *http.Server
	app    *ledger.Appender
	client *serve.Client
}

// startService opens (or re-opens) the ledger directory and serves both
// backends behind it.
func startService(dir string, detectors map[string]safemon.Detector, policy guard.Policy) (*monitored, error) {
	store, err := ledger.OpenDisk(dir, ledger.DiskConfig{})
	if err != nil {
		return nil, err
	}
	app := ledger.NewAppender(store, ledger.Options{})
	srv, err := serve.NewServer(serve.Config{
		Detectors: detectors,
		Policies:  []guard.Policy{policy},
		Ledger:    app,
	})
	if err != nil {
		app.Close()
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Shutdown()
		app.Close()
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return &monitored{
		srv: srv, hs: hs, app: app,
		client: &serve.Client{BaseURL: "http://" + ln.Addr().String()},
	}, nil
}

// stop drains the service and seals the ledger — the same sequence
// safemond runs on SIGTERM.
func (m *monitored) stop(ctx context.Context) {
	m.hs.Shutdown(ctx)
	m.srv.Shutdown()
	m.app.Close()
}

func run() error {
	ctx := context.Background()

	// Train both monitors on the same clean demonstrations.
	demos, err := synth.Generate(synth.Config{
		Task: gesture.Suturing, Hz: 30, Seed: 11,
		NumDemos: 12, NumTrials: 4, Subjects: 4, DurationScale: 0.35,
	})
	if err != nil {
		return err
	}
	fold := dataset.LOSO(synth.Trajectories(demos))[0]
	detectors := make(map[string]safemon.Detector, 2)
	for _, name := range []string{"envelope", "skipchain"} {
		det, err := safemon.Open(name, safemon.WithThreshold(0.6), safemon.WithSeed(11))
		if err != nil {
			return err
		}
		if err := det.Fit(ctx, fold.Train); err != nil {
			return err
		}
		detectors[name] = det
	}

	// The closed-loop policy: confirm after 2 evidence frames, climb one
	// rung per frame, latch at safe-stop. The threshold sits above the
	// held-out trajectories' natural envelope excess, so only the attack
	// can latch.
	policy := guard.Policy{
		Name: "stop-fast", Threshold: 0.6,
		DebounceFrames: 2, ReleaseFrames: 2, EscalateFrames: 1,
		InitialAction: guard.ActionWarn, MaxAction: guard.ActionSafeStop,
		ReactionBudgetFrames: 5,
	}

	dir, err := os.MkdirTemp("", "incident-ledger-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// ---- Flight 1: the attack is streamed live and latches. ----
	svc, err := startService(dir, detectors, policy)
	if err != nil {
		return err
	}

	victim := fold.Test[0]
	attack := faultinject.Fault{
		Variable:    faultinject.GrasperAngle,
		Target:      2.4, // forces the jaw wide open: needle-drop signature
		StartFrac:   0.45,
		Duration:    0.2,
		Manipulator: kinematics.Left,
		RampRate:    1.5,
	}
	compromised, onset, end, err := faultinject.Inject(victim, attack)
	if err != nil {
		return err
	}
	fmt.Printf("attack: grasper-angle ramp to %.1f rad over frames [%d,%d)\n", attack.Target, onset, end)

	st, err := svc.client.OpenGuarded(ctx, "envelope", policy.Name, nil)
	if err != nil {
		return err
	}
	for i := range compromised.Frames {
		if err := st.Send(&compromised.Frames[i]); err != nil {
			return err
		}
		if _, err := st.Recv(); err != nil {
			return err
		}
	}
	if err := st.CloseSend(); err != nil {
		return err
	}
	if _, err := st.Recv(); err != io.EOF {
		return fmt.Errorf("stream did not finish cleanly: %v", err)
	}
	for _, a := range st.Actions() {
		fmt.Printf("  live action: frame %4d  %-9s (score %.2f)\n", a.I, a.Level, a.Score)
	}
	st.Close()
	svc.stop(ctx)
	fmt.Println("service stopped; ledger sealed")

	// ---- Flight 2: a fresh service over the same ledger directory. ----
	svc, err = startService(dir, detectors, policy)
	if err != nil {
		return err
	}
	defer svc.stop(ctx)

	incidents, err := svc.client.Incidents(ctx, 0)
	if err != nil {
		return err
	}
	if len(incidents) == 0 {
		return fmt.Errorf("no incident survived the restart")
	}
	inc := incidents[0]
	fmt.Printf("recovered incident %s: %s via %s/%s at frame %d, %d frames recorded\n",
		inc.ID, inc.TriggerAction, inc.Backend, inc.Policy, inc.TriggerFrame, inc.Frames)

	// Time travel 1: the original monitor must reproduce its own trail
	// bit for bit from the recorded inputs.
	res, err := svc.client.ReplayIncident(ctx, inc.ID, "", "")
	if err != nil {
		return err
	}
	fmt.Printf("replay via %s/%s: verdicts_match=%v actions_match=%v\n",
		res.Replay.Backend, res.Replay.Policy, res.VerdictsMatch, res.ActionsMatch)
	if !res.VerdictsMatch || !res.ActionsMatch {
		return fmt.Errorf("replay fidelity lost")
	}

	// Time travel 2: the counterfactual — would the skip-chain monitor
	// have stopped the robot too, and how much earlier or later?
	alt, err := svc.client.ReplayIncident(ctx, inc.ID, "skipchain", "")
	if err != nil {
		return err
	}
	fmt.Printf("counterfactual via %s/%s:\n", alt.Replay.Backend, alt.Replay.Policy)
	for _, a := range alt.Replay.Actions {
		fmt.Printf("  replayed action: frame %4d  %-9s (score %.2f)\n", a.I, a.Level, a.Score)
	}
	if n, m := len(alt.Replay.Actions), len(res.Original.Actions); n > 0 && m > 0 {
		delta := alt.Replay.Actions[n-1].I - res.Original.Actions[m-1].I
		fmt.Printf("skip-chain reaches its final action %+d frames relative to the envelope\n", delta)
	}
	return nil
}
