// Suturing monitoring: the paper's dVRK scenario in full.
//
// Fits the context-aware pipeline on synthetic JIGSAWS-style Suturing
// demonstrations with the paper's LOSO protocol and compares three safemon
// backends side by side (the Table VIII experiment): perfect gesture
// boundaries, predicted boundaries, and the non-context-specific baseline —
// then prints the per-gesture breakdown (Table IX style).
//
// Run with:
//
//	go run ./examples/suturing
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/internal/gesture"
	"repro/internal/kinematics"
	"repro/internal/stats"
	"repro/internal/synth"
	"repro/safemon"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	demos, err := synth.Generate(synth.Config{
		Task: gesture.Suturing, Hz: 30, Seed: 7,
		NumDemos: 24, NumTrials: 4, Subjects: 6, DurationScale: 0.6,
	})
	if err != nil {
		return err
	}
	trajs := synth.Trajectories(demos)
	fold := dataset.LOSO(trajs)[0]
	fmt.Printf("Suturing LOSO: train %d demos, test %d demos\n", len(fold.Train), len(fold.Test))

	// Ground-truth error onsets from the generator, for reaction times.
	truths := make([][]safemon.ErrorTruth, len(fold.Test))
	index := map[*kinematics.Trajectory]*synth.Demo{}
	for _, d := range demos {
		index[d.Traj] = d
	}
	for i, tr := range fold.Test {
		for _, ev := range index[tr].Events {
			truths[i] = append(truths[i], safemon.ErrorTruth{
				Gesture: int(ev.Gesture), SegStart: ev.SegStart, SegEnd: ev.SegEnd, Onset: ev.Onset,
			})
		}
	}

	setups := []struct {
		name    string
		backend string
		opts    []safemon.Option
	}{
		{"gesture-specific, perfect boundaries", "context-aware",
			[]safemon.Option{safemon.WithGroundTruthContext()}},
		{"gesture-specific, gesture classifier", "context-aware", nil},
		{"non-gesture-specific baseline", "monolithic",
			[]safemon.Option{safemon.WithArch(safemon.ArchLSTM), safemon.WithErrorFeatures(safemon.AllFeatures())}},
	}
	var classifierReport *safemon.PipelineReport
	for _, setup := range setups {
		det, err := safemon.Open(setup.backend, setup.opts...)
		if err != nil {
			return err
		}
		if err := det.Fit(ctx, fold.Train); err != nil {
			return err
		}
		rep, err := (&safemon.Runner{Detector: det}).Run(ctx, fold.Test, truths)
		if err != nil {
			return err
		}
		fmt.Printf("%-40s AUC %.3f  F1 %.3f  reaction %+.0f±%.0f ms  early %.1f%%\n",
			setup.name, rep.AUC, rep.F1,
			stats.Mean(rep.ReactionTimesMS), stats.StdDev(rep.ReactionTimesMS),
			rep.EarlyDetectionPct)
		if setup.name == "gesture-specific, gesture classifier" {
			classifierReport = rep
			fmt.Printf("%-40s (frame-level gesture accuracy %.1f%%)\n", "",
				100*rep.GestureAccuracy)
		}
	}

	// Per-gesture breakdown for the context-specific pipeline.
	fmt.Printf("\nper-gesture breakdown (context-specific pipeline):\n%s", classifierReport.Render())
	return nil
}
