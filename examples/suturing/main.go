// Suturing monitoring: the paper's dVRK scenario in full.
//
// Trains the context-aware pipeline on synthetic JIGSAWS-style Suturing
// demonstrations with the paper's LOSO protocol and compares three setups
// side by side (the Table VIII experiment): perfect gesture boundaries,
// predicted boundaries, and the non-context-specific baseline — then
// prints the per-gesture breakdown (Table IX style).
//
// Run with:
//
//	go run ./examples/suturing
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gesture"
	"repro/internal/kinematics"
	"repro/internal/stats"
	"repro/internal/synth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	demos, err := synth.Generate(synth.Config{
		Task: gesture.Suturing, Hz: 30, Seed: 7,
		NumDemos: 24, NumTrials: 4, Subjects: 6, DurationScale: 0.6,
	})
	if err != nil {
		return err
	}
	trajs := synth.Trajectories(demos)
	fold := dataset.LOSO(trajs)[0]
	fmt.Printf("Suturing LOSO: train %d demos, test %d demos\n", len(fold.Train), len(fold.Test))

	// Ground-truth error onsets from the generator, for reaction times.
	truths := make([][]core.ErrorTruth, len(fold.Test))
	index := map[*kinematics.Trajectory]*synth.Demo{}
	for _, d := range demos {
		index[d.Traj] = d
	}
	for i, tr := range fold.Test {
		for _, ev := range index[tr].Events {
			truths[i] = append(truths[i], core.ErrorTruth{
				Gesture: int(ev.Gesture), SegStart: ev.SegStart, SegEnd: ev.SegEnd, Onset: ev.Onset,
			})
		}
	}

	gc, err := core.TrainGestureClassifier(fold.Train, core.DefaultGestureClassifierConfig())
	if err != nil {
		return err
	}
	acc, err := gc.Accuracy(fold.Test)
	if err != nil {
		return err
	}
	fmt.Printf("gesture classifier accuracy: %.1f%%\n\n", 100*acc)

	lib, err := core.TrainErrorLibrary(fold.Train, core.DefaultErrorDetectorConfig())
	if err != nil {
		return err
	}
	monoCfg := core.DefaultErrorDetectorConfig()
	monoCfg.Arch = core.ArchLSTM
	monoCfg.Features = kinematics.AllFeatures()
	mono, err := core.TrainMonolithicDetector(fold.Train, monoCfg)
	if err != nil {
		return err
	}

	perfect := core.NewMonitor(nil, lib)
	perfect.UseGroundTruthGestures = true

	for _, setup := range []struct {
		name string
		mon  *core.Monitor
	}{
		{"gesture-specific, perfect boundaries", perfect},
		{"gesture-specific, gesture classifier", core.NewMonitor(gc, lib)},
		{"non-gesture-specific baseline", core.NewMonitor(nil, mono)},
	} {
		rep, err := setup.mon.Evaluate(fold.Test, truths)
		if err != nil {
			return err
		}
		fmt.Printf("%-40s AUC %.3f  F1 %.3f  reaction %+.0f±%.0f ms  early %.1f%%\n",
			setup.name, rep.AUC, rep.F1,
			stats.Mean(rep.ReactionTimesMS), stats.StdDev(rep.ReactionTimesMS),
			rep.EarlyDetectionPct)
	}

	// Per-gesture breakdown for the context-specific pipeline.
	rep, err := core.NewMonitor(gc, lib).Evaluate(fold.Test, truths)
	if err != nil {
		return err
	}
	fmt.Printf("\nper-gesture breakdown (context-specific pipeline):\n%s", rep.Render())
	return nil
}
