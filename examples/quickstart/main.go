// Quickstart: the smallest end-to-end use of the safety monitor.
//
// It generates a handful of synthetic Suturing demonstrations, trains the
// two-stage context-aware pipeline (gesture classifier + erroneous-gesture
// library), and streams one held-out demonstration through the online
// monitor, printing every alert.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gesture"
	"repro/internal/synth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Data: synthetic dVRK-style Suturing demonstrations with
	//    gesture and safety annotations.
	demos, err := synth.Generate(synth.Config{
		Task: gesture.Suturing, Hz: 30, Seed: 42,
		NumDemos: 16, NumTrials: 4, Subjects: 4, DurationScale: 0.5,
	})
	if err != nil {
		return err
	}
	folds := dataset.LOSO(synth.Trajectories(demos))
	fold := folds[0]
	fmt.Printf("generated %d demos; training on %d, testing on %d\n",
		len(demos), len(fold.Train), len(fold.Test))

	// 2. Stage 1: the stacked-LSTM gesture classifier.
	gcCfg := core.DefaultGestureClassifierConfig()
	gcCfg.Epochs = 5
	gc, err := core.TrainGestureClassifier(fold.Train, gcCfg)
	if err != nil {
		return err
	}
	acc, err := gc.Accuracy(fold.Test)
	if err != nil {
		return err
	}
	fmt.Printf("gesture classification accuracy: %.1f%%\n", 100*acc)

	// 3. Stage 2: the per-gesture erroneous-gesture library (1D-CNNs).
	el, err := core.TrainErrorLibrary(fold.Train, core.DefaultErrorDetectorConfig())
	if err != nil {
		return err
	}

	// 4. Online monitoring: stream one held-out demo frame by frame.
	mon := core.NewMonitor(gc, el)
	stream, err := mon.NewStream(nil)
	if err != nil {
		return err
	}
	target := fold.Test[0]
	alerting := false
	for i := range target.Frames {
		v := stream.Push(&target.Frames[i])
		if v.Unsafe && !alerting {
			fmt.Printf("t=%5.2fs ALERT: unsafe %s (score %.2f)\n",
				float64(i)/target.HzRate, gesture.Gesture(v.Gesture), v.Score)
		}
		alerting = v.Unsafe
	}

	// 5. Quantitative evaluation on the whole held-out fold.
	rep, err := mon.Evaluate(fold.Test, nil)
	if err != nil {
		return err
	}
	fmt.Printf("held-out fold: AUC %.3f  F1 %.3f  compute %.3f ms/frame\n",
		rep.AUC, rep.F1, rep.ComputeTimeMS)
	return nil
}
