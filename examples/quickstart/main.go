// Quickstart: the smallest end-to-end use of the safety monitor through
// the public safemon façade.
//
// It generates a handful of synthetic Suturing demonstrations, fits the
// two-stage context-aware pipeline (gesture classifier + erroneous-gesture
// library) with safemon.New, streams one held-out demonstration through a
// Session, printing every alert, and evaluates the whole fold with the
// concurrent Runner.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/internal/gesture"
	"repro/internal/synth"
	"repro/safemon"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	// 1. Data: synthetic dVRK-style Suturing demonstrations with
	//    gesture and safety annotations.
	demos, err := synth.Generate(synth.Config{
		Task: gesture.Suturing, Hz: 30, Seed: 42,
		NumDemos: 16, NumTrials: 4, Subjects: 4, DurationScale: 0.5,
	})
	if err != nil {
		return err
	}
	folds := dataset.LOSO(synth.Trajectories(demos))
	fold := folds[0]
	fmt.Printf("generated %d demos; training on %d, testing on %d\n",
		len(demos), len(fold.Train), len(fold.Test))

	// 2. One call fits both stages of the paper's pipeline: the
	//    stacked-LSTM gesture classifier and the per-gesture 1D-CNN
	//    erroneous-gesture library.
	det := safemon.New(safemon.WithEpochs(5))
	if err := det.Fit(ctx, fold.Train); err != nil {
		return err
	}

	// 3. Online monitoring: stream one held-out demo frame by frame.
	sess, err := det.NewSession()
	if err != nil {
		return err
	}
	defer sess.Close()
	target := fold.Test[0]
	alerting := false
	for i := range target.Frames {
		v, err := sess.Push(&target.Frames[i])
		if err != nil {
			return err
		}
		if v.Unsafe && !alerting {
			fmt.Printf("t=%5.2fs ALERT: unsafe %s (score %.2f)\n",
				float64(i)/target.HzRate, gesture.Gesture(v.Gesture), v.Score)
		}
		alerting = v.Unsafe
	}

	// 4. Quantitative evaluation on the whole held-out fold, fanned
	//    across all cores.
	rep, err := (&safemon.Runner{Detector: det}).Run(ctx, fold.Test, nil)
	if err != nil {
		return err
	}
	fmt.Printf("held-out fold: AUC %.3f  F1 %.3f  gesture accuracy %.1f%%\n",
		rep.AUC, rep.F1, 100*rep.GestureAccuracy)
	return nil
}
