// Closed-loop hazard mitigation on the Block Transfer simulator: the
// paper's headline claim — context-aware monitoring detects unsafe events
// early enough to act *before* the hazard manifests — demonstrated end to
// end with the safemon/guard policy engine in the loop.
//
//  1. Train a context-aware monitor on executed fault-free and
//     fault-injected demonstrations at simulation rate.
//  2. Replay a jaw-open attack open loop: the block drops.
//  3. Replay the same attack on an identical world with the guard in the
//     loop: warn → pause → safe-stop inside the reaction budget, and the
//     block never drops.
//  4. Run the paired reaction campaign for the prevented / missed /
//     false-stop ledger.
//
// Run with:
//
//	go run ./examples/guardrail
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/faultinject"
	"repro/internal/kinematics"
	"repro/internal/mitigation"
	"repro/internal/simulator"
	"repro/safemon"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const hz = 30.0
	const seed = 11
	ctx := context.Background()

	// 1. Training data: fault-free demos plus injected runs, executed
	// through the simulator so the monitor learns robot-side kinematics.
	demos := simulator.CollectFaultFree(seed, 8, 2, hz)
	trainRng := rand.New(rand.NewSource(seed + 1))
	var trainSet []*kinematics.Trajectory
	for _, demo := range demos[:6] {
		trainSet = append(trainSet, simulator.NewWorld(trainRng).Run(demo, 0).Traj)
	}
	for k := 0; k < 12; k++ {
		fault := faultinject.Fault{
			Variable:    faultinject.GrasperAngle,
			Target:      0.85 + trainRng.Float64()*0.75,
			StartFrac:   faultinject.InjectionStartFrac,
			Duration:    0.5 + trainRng.Float64()*0.35,
			Manipulator: kinematics.Left,
		}
		perturbed, _, _, err := faultinject.Inject(demos[trainRng.Intn(6)], fault)
		if err != nil {
			return err
		}
		trainSet = append(trainSet, simulator.NewWorld(trainRng).Run(perturbed, 0).Traj)
	}

	det, err := safemon.Open("context-aware",
		safemon.WithGroundTruthContext(),
		safemon.WithFeatures(safemon.CG()),
		safemon.WithErrorFeatures(safemon.CG()),
		safemon.WithWindow(10),
		safemon.WithEpochs(4),
		safemon.WithTrainStride(2),
		safemon.WithSeed(seed),
	)
	if err != nil {
		return err
	}
	fmt.Printf("fitting context-aware monitor on %d executed runs at %.0f Hz...\n", len(trainSet), hz)
	if err := det.Fit(ctx, trainSet); err != nil {
		return err
	}

	// 2. The attack: the jaw is forced open mid-carry. Open loop, the
	// grip fails and the block drops.
	attack := faultinject.Fault{
		Variable: faultinject.GrasperAngle, Target: 1.4,
		StartFrac: 0.35, Duration: 0.5, Manipulator: kinematics.Left,
	}
	perturbed, ws, we, err := faultinject.Inject(demos[7], attack)
	if err != nil {
		return err
	}
	const worldSeed = 1234
	base := simulator.NewWorld(rand.New(rand.NewSource(worldSeed))).Run(perturbed, 0)
	fmt.Printf("\nattack: jaw forced to %.1f rad over frames [%d,%d)\n", attack.Target, ws, we)
	fmt.Printf("open loop:   %v", base.Outcome)
	if base.DropFrame >= 0 {
		fmt.Printf(" — block dropped at t=%.2fs (frame %d)", float64(base.DropFrame)/hz, base.DropFrame)
	}
	fmt.Println()

	// 3. Same attack, identical world, guard in the loop.
	policy := mitigation.CampaignPolicy()
	sess, err := det.NewSession(
		safemon.WithSessionLabels(perturbed.Gestures),
		safemon.WithGuard(policy),
	)
	if err != nil {
		return err
	}
	defer sess.Close()
	guarded, err := mitigation.RunGuarded(
		simulator.NewWorld(rand.New(rand.NewSource(worldSeed))),
		perturbed, sess.(safemon.GuardedSession), mitigation.GuardedRunConfig{})
	if err != nil {
		return err
	}
	fmt.Printf("closed loop: %v", guarded.Result.Outcome)
	if guarded.Result.DropFrame >= 0 {
		fmt.Printf(" — block dropped at frame %d", guarded.Result.DropFrame)
	} else {
		fmt.Printf(" — no drop: hazard prevented")
	}
	fmt.Println()
	for _, tr := range guarded.Transitions {
		fmt.Printf("  t=%5.2fs  frame %-4d -> %-9s (score %.2f)\n",
			float64(tr.Frame)/hz, tr.Frame, tr.Action, tr.Score)
	}
	if guarded.AlertFrame >= 0 && base.DropFrame >= 0 {
		fmt.Printf("  alert led the open-loop hazard by %d frames (%.0f ms); budget %d frames\n",
			base.DropFrame-guarded.AlertFrame,
			float64(base.DropFrame-guarded.AlertFrame)/hz*1000,
			policy.ReactionBudgetFrames)
	}

	// 4. The ledger: paired unguarded/guarded replays of the injection
	// suite, plus guarded fault-free runs for false-stop accounting.
	fmt.Println("\nrunning the paired reaction campaign...")
	camp, err := mitigation.RunCampaign(ctx, mitigation.CampaignConfig{
		Seed:               seed,
		Hz:                 hz,
		Backends:           []string{"context-aware", "envelope"},
		GroundTruthContext: true,
		TrainDemos:         6, TrainInjections: 12,
		EvalInjections: 12, FaultFreeEval: 4,
		Epochs: 4, TrainStride: 2,
		Policy: policy,
	})
	if err != nil {
		return err
	}
	fmt.Print(camp.Render())
	return nil
}
