// Block Transfer on the Raven II simulator: fault injection, vision-based
// automated labeling, and context-aware monitoring — the paper's §IV-B
// workflow end to end.
//
//  1. Collect fault-free tele-operation command streams.
//  2. Inject grasper-angle and Cartesian faults (Table III style) and run
//     them through the physics simulator with the virtual camera on.
//  3. Auto-label the failures orthogonally from the video: SSIM
//     discontinuity for block-drops, DTW deviation of the tracked block
//     centroid vs a fault-free reference for dropoff failures.
//  4. Train the monitor on the executed trajectories and evaluate it.
//
// Run with:
//
//	go run ./examples/blocktransfer
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/faultinject"
	"repro/internal/kinematics"
	"repro/internal/simulator"
	"repro/internal/vision"
	"repro/safemon"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const hz = 250.0
	rng := rand.New(rand.NewSource(3))

	// 1. Fault-free demonstrations (two synthetic operators).
	faultFree := simulator.CollectFaultFree(1, 8, 2, hz)
	fmt.Printf("collected %d fault-free demonstrations at %.0f Hz\n", len(faultFree), hz)

	// Reference centroid trace for DTW-based dropoff detection.
	refWorld := simulator.NewWorld(rng)
	refRes := refWorld.Run(faultFree[0], 30)
	refTrace := vision.TrackCentroid(refRes.Frames, simulator.BlockThreshold())

	// 2. Inject a high grasper-angle fault (block-drop signature) and a
	//    low-angle long fault (dropoff signature).
	scenarios := []struct {
		name  string
		fault faultinject.Fault
	}{
		{"attack: jaw forced open mid-carry", faultinject.Fault{
			Variable: faultinject.GrasperAngle, Target: 1.45,
			StartFrac: 0.35, Duration: 0.3, Manipulator: kinematics.Left,
		}},
		{"fault: jaw clamped through release", faultinject.Fault{
			Variable: faultinject.GrasperAngle, Target: 0.3,
			StartFrac: 0.35, Duration: 0.65, Manipulator: kinematics.Left,
		}},
	}
	var labeled []*kinematics.Trajectory
	for _, sc := range scenarios {
		perturbed, _, _, err := faultinject.Inject(faultFree[1], sc.fault)
		if err != nil {
			return err
		}
		world := simulator.NewWorld(rng)
		res := world.Run(perturbed, 30)
		fmt.Printf("\n%s\n  simulator ground truth: %v\n", sc.name, res.Outcome)

		// 3. Orthogonal vision labeling.
		if drop := vision.DropFrame(res.Frames, simulator.BlockThreshold(), simulator.DropSSIMThreshold); drop >= 0 {
			fmt.Printf("  vision: SSIM discontinuity at video frame %d (kinematics frame %d)\n",
				drop, res.FrameTimes[drop])
		} else {
			trace := vision.TrackCentroid(res.Frames, simulator.BlockThreshold())
			dev := vision.NormalizedDTW(trace, refTrace)
			fmt.Printf("  vision: no drop discontinuity; DTW deviation vs fault-free trace = %.2f px/step\n", dev)
			if dev > 1 {
				fmt.Println("  vision: large deviation -> block was never dropped off (dropoff failure)")
			}
		}
		labeled = append(labeled, res.Traj.Downsample(8))
	}

	// 4. Train and evaluate the monitor on a larger injected dataset.
	fmt.Println("\nbuilding monitoring dataset from campaign runs...")
	grid := faultinject.Table3Grid()
	for i := range grid {
		grid[i].Count = 1
	}
	camp, err := faultinject.RunCampaign(grid, faultinject.CampaignConfig{
		Seed: 5, Demos: faultFree, KeepResults: true,
	})
	if err != nil {
		return err
	}
	var trajs []*kinematics.Trajectory
	for i, ff := range faultFree {
		w := simulator.NewWorld(rand.New(rand.NewSource(int64(100 + i))))
		trajs = append(trajs, w.Run(ff, 0).Traj.Downsample(8))
	}
	for _, inj := range camp.Injections {
		trajs = append(trajs, inj.Result.Traj.Downsample(8))
	}
	for i, tr := range trajs {
		tr.Trial = i % 4
	}
	trajs = append(trajs, labeled...)

	fold := dataset.LOSO(trajs)[0]
	det, err := safemon.Open("context-aware",
		safemon.WithFeatures(safemon.CG()),
		safemon.WithErrorFeatures(safemon.CG()),
		safemon.WithWindow(10))
	if err != nil {
		return err
	}
	ctx := context.Background()
	if err := det.Fit(ctx, fold.Train); err != nil {
		return err
	}
	rep, err := (&safemon.Runner{Detector: det}).Run(ctx, fold.Test, nil)
	if err != nil {
		return err
	}
	fmt.Printf("monitor on held-out Block Transfer runs: AUC %.3f  F1 %.3f  reaction %+.0f ms\n",
		rep.AUC, rep.F1, mean(rep.ReactionTimesMS))
	return nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
