package vision

import "math"

// Point2 is a 2-D image-plane point.
type Point2 struct{ X, Y float64 }

// Component is one connected component of a binary mask.
type Component struct {
	Area     int
	Centroid Point2
	// Bounding box (inclusive min, exclusive max).
	MinX, MinY, MaxX, MaxY int
	// Contour is the set of boundary pixels (set pixels with at least one
	// unset 4-neighbour), in scan order.
	Contour []Point2
}

// ConnectedComponents labels the 4-connected components of a mask and
// returns them ordered by decreasing area — the contour-detection step of
// the paper's Figure 7c.
func ConnectedComponents(m *Mask) []Component {
	labels := make([]int, len(m.Bits))
	for i := range labels {
		labels[i] = -1
	}
	var comps []Component
	queue := make([]int, 0, 256)
	for start, set := range m.Bits {
		if !set || labels[start] != -1 {
			continue
		}
		id := len(comps)
		comp := Component{MinX: m.W, MinY: m.H}
		queue = queue[:0]
		queue = append(queue, start)
		labels[start] = id
		var sumX, sumY float64
		for len(queue) > 0 {
			p := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			x, y := p%m.W, p/m.W
			comp.Area++
			sumX += float64(x)
			sumY += float64(y)
			if x < comp.MinX {
				comp.MinX = x
			}
			if y < comp.MinY {
				comp.MinY = y
			}
			if x+1 > comp.MaxX {
				comp.MaxX = x + 1
			}
			if y+1 > comp.MaxY {
				comp.MaxY = y + 1
			}
			boundary := false
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nx, ny := x+d[0], y+d[1]
				if nx < 0 || ny < 0 || nx >= m.W || ny >= m.H {
					boundary = true
					continue
				}
				np := ny*m.W + nx
				if !m.Bits[np] {
					boundary = true
					continue
				}
				if labels[np] == -1 {
					labels[np] = id
					queue = append(queue, np)
				}
			}
			if boundary {
				comp.Contour = append(comp.Contour, Point2{float64(x), float64(y)})
			}
		}
		comp.Centroid = Point2{sumX / float64(comp.Area), sumY / float64(comp.Area)}
		comps = append(comps, comp)
	}
	// sort by decreasing area (components are few; insertion sort)
	for i := 1; i < len(comps); i++ {
		for j := i; j > 0 && comps[j].Area > comps[j-1].Area; j-- {
			comps[j], comps[j-1] = comps[j-1], comps[j]
		}
	}
	return comps
}

// LargestComponent returns the largest connected component of the mask and
// whether one exists.
func LargestComponent(m *Mask) (Component, bool) {
	comps := ConnectedComponents(m)
	if len(comps) == 0 {
		return Component{}, false
	}
	return comps[0], true
}

// TrackCentroid thresholds every frame and returns the centroid of the
// largest matching component per frame; frames with no match repeat the
// previous centroid (or {0,0} at the start). It builds the centroid traces
// compared by DTW for dropoff-failure detection.
func TrackCentroid(frames []*Image, region ThresholdRange) []Point2 {
	out := make([]Point2, len(frames))
	var last Point2
	for i, f := range frames {
		if c, ok := LargestComponent(ThresholdHSV(f, region)); ok {
			last = c.Centroid
		}
		out[i] = last
	}
	return out
}

// DTW computes the dynamic-time-warping distance between two 2-D traces
// using Euclidean point distance. It is the trace-comparison step used to
// detect "large deviations that indicate when the block should have been
// dropped, but it was not" (Figure 7d).
func DTW(a, b []Point2) float64 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return math.Inf(1)
	}
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := 1; j <= m; j++ {
		prev[j] = math.Inf(1)
	}
	for i := 1; i <= n; i++ {
		cur[0] = math.Inf(1)
		for j := 1; j <= m; j++ {
			d := dist2(a[i-1], b[j-1])
			best := prev[j]
			if prev[j-1] < best {
				best = prev[j-1]
			}
			if cur[j-1] < best {
				best = cur[j-1]
			}
			cur[j] = d + best
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// NormalizedDTW divides the DTW distance by the length of the longer trace,
// giving a per-step deviation that is comparable across trajectory lengths.
func NormalizedDTW(a, b []Point2) float64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	if n == 0 {
		return math.Inf(1)
	}
	return DTW(a, b) / float64(n)
}

func dist2(p, q Point2) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}
