package vision

import "math"

// SSIM computes the global Structural Similarity Index between two images
// of identical size over their luminance channels (Wang et al. 2004, the
// metric the paper uses to pinpoint the block-drop frame). The result lies
// in [-1, 1]; 1 means identical images.
func SSIM(a, b *Image) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, ErrSizeMismatch
	}
	ga, gb := a.Gray(), b.Gray()
	return ssimGray(ga, gb), nil
}

// ssimGray computes SSIM over two equal-length luminance slices.
func ssimGray(ga, gb []float64) float64 {
	n := float64(len(ga))
	if n == 0 {
		return 1
	}
	var muA, muB float64
	for i := range ga {
		muA += ga[i]
		muB += gb[i]
	}
	muA /= n
	muB /= n
	var varA, varB, cov float64
	for i := range ga {
		da, db := ga[i]-muA, gb[i]-muB
		varA += da * da
		varB += db * db
		cov += da * db
	}
	varA /= n
	varB /= n
	cov /= n
	const (
		l  = 1.0 // dynamic range of [0,1] luminance
		k1 = 0.01
		k2 = 0.03
	)
	c1 := (k1 * l) * (k1 * l)
	c2 := (k2 * l) * (k2 * l)
	return ((2*muA*muB + c1) * (2*cov + c2)) /
		((muA*muA + muB*muB + c1) * (varA + varB + c2))
}

// SSIMWindowed computes mean SSIM over sliding win×win windows with the
// given stride, closer to the original formulation; it is slower but more
// spatially sensitive than the global index.
func SSIMWindowed(a, b *Image, win, stride int) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, ErrSizeMismatch
	}
	if win <= 0 {
		win = 8
	}
	if stride <= 0 {
		stride = win / 2
		if stride == 0 {
			stride = 1
		}
	}
	ga, gb := a.Gray(), b.Gray()
	var sum float64
	var count int
	bufA := make([]float64, win*win)
	bufB := make([]float64, win*win)
	for y := 0; y+win <= a.H; y += stride {
		for x := 0; x+win <= a.W; x += stride {
			k := 0
			for dy := 0; dy < win; dy++ {
				row := (y + dy) * a.W
				for dx := 0; dx < win; dx++ {
					bufA[k] = ga[row+x+dx]
					bufB[k] = gb[row+x+dx]
					k++
				}
			}
			sum += ssimGray(bufA, bufB)
			count++
		}
	}
	if count == 0 {
		return ssimGray(ga, gb), nil
	}
	return sum / float64(count), nil
}

// DropFrame scans a sequence of thresholded-region SSIM scores between
// consecutive frames and returns the index of the first frame whose
// similarity to its predecessor falls below minSSIM — the paper's method
// for finding "the exact frame (and the timestamp) of when the failure
// happened". Returns -1 when no discontinuity is found.
func DropFrame(frames []*Image, region ThresholdRange, minSSIM float64) int {
	if len(frames) < 2 {
		return -1
	}
	prev := maskedGray(frames[0], region)
	for i := 1; i < len(frames); i++ {
		cur := maskedGray(frames[i], region)
		if ssimGray(prev, cur) < minSSIM {
			return i
		}
		prev = cur
	}
	return -1
}

// maskedGray returns the luminance image with pixels outside the HSV
// threshold zeroed, isolating the tracked marker.
func maskedGray(im *Image, region ThresholdRange) []float64 {
	m := ThresholdHSV(im, region)
	g := im.Gray()
	for i := range g {
		if !m.Bits[i] {
			g[i] = 0
		}
	}
	return g
}

var _ = math.Sqrt // keep math imported for future windowed variants
