package vision

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRGBToHSVKnownColors(t *testing.T) {
	cases := []struct {
		c    RGB
		h    float64
		s, v float64
	}{
		{RGB{255, 0, 0}, 0, 1, 1},
		{RGB{0, 255, 0}, 120, 1, 1},
		{RGB{0, 0, 255}, 240, 1, 1},
		{RGB{255, 255, 255}, 0, 0, 1},
		{RGB{0, 0, 0}, 0, 0, 0},
	}
	for _, c := range cases {
		got := RGBToHSV(c.c)
		if math.Abs(got.H-c.h) > 1 || math.Abs(got.S-c.s) > 0.01 || math.Abs(got.V-c.v) > 0.01 {
			t.Errorf("RGBToHSV(%v) = %+v, want H=%v S=%v V=%v", c.c, got, c.h, c.s, c.v)
		}
	}
}

func TestHSVRangesProperty(t *testing.T) {
	f := func(r, g, b uint8) bool {
		h := RGBToHSV(RGB{r, g, b})
		return h.H >= 0 && h.H < 360 && h.S >= 0 && h.S <= 1 && h.V >= 0 && h.V <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestThresholdHSVWithWrap(t *testing.T) {
	im := NewImage(4, 1)
	im.Set(0, 0, RGB{255, 0, 0})  // red, hue 0
	im.Set(1, 0, RGB{255, 0, 30}) // red-magenta, hue ~353
	im.Set(2, 0, RGB{0, 255, 0})  // green
	im.Set(3, 0, RGB{60, 60, 60}) // gray
	m := ThresholdHSV(im, ThresholdRange{HLo: 340, HHi: 20, SLo: 0.5, SHi: 1, VLo: 0.3, VHi: 1})
	if !m.Bits[0] || !m.Bits[1] {
		t.Error("red pixels should match wrapped range")
	}
	if m.Bits[2] || m.Bits[3] {
		t.Error("green/gray pixels should not match")
	}
	if m.Count() != 2 {
		t.Errorf("count %d", m.Count())
	}
}

func TestImageBounds(t *testing.T) {
	im := NewImage(3, 3)
	im.Set(-1, 0, RGB{1, 1, 1}) // ignored
	im.Set(5, 5, RGB{1, 1, 1})  // ignored
	if (im.At(-1, 0) != RGB{}) || (im.At(9, 9) != RGB{}) {
		t.Error("out-of-bounds reads must be black")
	}
}

func TestSSIMIdenticalAndDifferent(t *testing.T) {
	a := NewImage(16, 16)
	a.FillRect(2, 2, 10, 10, RGB{200, 50, 50})
	same, err := SSIM(a, a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(same-1) > 1e-9 {
		t.Errorf("SSIM(a,a) = %v, want 1", same)
	}
	b := NewImage(16, 16)
	b.FillRect(8, 8, 16, 16, RGB{20, 200, 50})
	diff, err := SSIM(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if diff >= same {
		t.Errorf("SSIM of different images %v must be below identical %v", diff, same)
	}
}

func TestSSIMSizeMismatch(t *testing.T) {
	if _, err := SSIM(NewImage(2, 2), NewImage(3, 3)); err == nil {
		t.Error("expected ErrSizeMismatch")
	}
	if _, err := SSIMWindowed(NewImage(2, 2), NewImage(3, 3), 4, 2); err == nil {
		t.Error("expected ErrSizeMismatch")
	}
}

func TestSSIMWindowedBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewImage(20, 20)
	b := NewImage(20, 20)
	for i := range a.Pix {
		a.Pix[i] = RGB{uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(256))}
		b.Pix[i] = RGB{uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(256))}
	}
	v, err := SSIMWindowed(a, b, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v < -1 || v > 1 {
		t.Errorf("windowed SSIM out of range: %v", v)
	}
}

func TestConnectedComponents(t *testing.T) {
	m := &Mask{W: 10, H: 10, Bits: make([]bool, 100)}
	// Two components: a 3x3 block and a 2x1 strip.
	for y := 1; y < 4; y++ {
		for x := 1; x < 4; x++ {
			m.Bits[y*10+x] = true
		}
	}
	m.Bits[8*10+7] = true
	m.Bits[8*10+8] = true
	comps := ConnectedComponents(m)
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2", len(comps))
	}
	if comps[0].Area != 9 || comps[1].Area != 2 {
		t.Errorf("areas %d, %d", comps[0].Area, comps[1].Area)
	}
	if math.Abs(comps[0].Centroid.X-2) > 1e-9 || math.Abs(comps[0].Centroid.Y-2) > 1e-9 {
		t.Errorf("centroid %+v, want (2,2)", comps[0].Centroid)
	}
	if comps[0].MinX != 1 || comps[0].MaxX != 4 {
		t.Errorf("bbox [%d,%d)", comps[0].MinX, comps[0].MaxX)
	}
	// 3x3 block: 8 boundary pixels (all except center).
	if len(comps[0].Contour) != 8 {
		t.Errorf("contour size %d, want 8", len(comps[0].Contour))
	}
}

func TestLargestComponentEmpty(t *testing.T) {
	m := &Mask{W: 4, H: 4, Bits: make([]bool, 16)}
	if _, ok := LargestComponent(m); ok {
		t.Error("empty mask should have no components")
	}
}

func TestTrackCentroidFollowsBlock(t *testing.T) {
	red := ThresholdRange{HLo: 340, HHi: 20, SLo: 0.5, SHi: 1, VLo: 0.3, VHi: 1}
	var frames []*Image
	for i := 0; i < 5; i++ {
		im := NewImage(32, 32)
		im.FillRect(i*4, 10, i*4+4, 14, RGB{220, 30, 30})
		frames = append(frames, im)
	}
	trace := TrackCentroid(frames, red)
	for i := 1; i < len(trace); i++ {
		if trace[i].X <= trace[i-1].X {
			t.Errorf("centroid not moving right: %v", trace)
		}
	}
}

func TestDTWProperties(t *testing.T) {
	a := []Point2{{0, 0}, {1, 0}, {2, 0}}
	if d := DTW(a, a); math.Abs(d) > 1e-12 {
		t.Errorf("DTW(a,a) = %v", d)
	}
	b := []Point2{{0, 1}, {1, 1}, {2, 1}}
	if d := DTW(a, b); math.Abs(d-3) > 1e-9 { // each step offset by 1
		t.Errorf("DTW = %v, want 3", d)
	}
	// symmetry
	if math.Abs(DTW(a, b)-DTW(b, a)) > 1e-12 {
		t.Error("DTW not symmetric")
	}
	// time-warp invariance: duplicated points shouldn't add cost
	aw := []Point2{{0, 0}, {0, 0}, {1, 0}, {2, 0}, {2, 0}}
	if d := DTW(a, aw); math.Abs(d) > 1e-12 {
		t.Errorf("DTW with duplicates = %v, want 0", d)
	}
}

func TestNormalizedDTW(t *testing.T) {
	a := []Point2{{0, 0}, {1, 0}}
	b := []Point2{{0, 2}, {1, 2}}
	if d := NormalizedDTW(a, b); math.Abs(d-2) > 1e-9 {
		t.Errorf("normalized DTW = %v, want 2", d)
	}
	if !math.IsInf(NormalizedDTW(nil, a), 1) {
		t.Error("empty trace must be +Inf")
	}
}

func TestDropFrameFindsDiscontinuity(t *testing.T) {
	red := ThresholdRange{HLo: 340, HHi: 20, SLo: 0.5, SHi: 1, VLo: 0.3, VHi: 1}
	var frames []*Image
	for i := 0; i < 10; i++ {
		im := NewImage(32, 32)
		if i < 6 {
			// block moves smoothly
			im.FillRect(10+i, 10, 14+i, 14, RGB{220, 30, 30})
		} else {
			// block teleports to the floor (dropped)
			im.FillRect(2, 28, 6, 32, RGB{220, 30, 30})
		}
		frames = append(frames, im)
	}
	drop := DropFrame(frames, red, 0.5)
	if drop != 6 {
		t.Errorf("drop frame = %d, want 6", drop)
	}
	// No drop in a static sequence.
	static := []*Image{frames[0], frames[0].Clone(), frames[0].Clone()}
	if d := DropFrame(static, red, 0.5); d != -1 {
		t.Errorf("static sequence drop = %d, want -1", d)
	}
}
