// Package vision reimplements the marker-based computer-vision pipeline the
// paper uses for orthogonal, automated labeling of failures in the Block
// Transfer simulator: RGB→HSV conversion, HSV thresholding, structural
// similarity (SSIM), connected-component contour detection with centroid
// tracking, and dynamic time warping (DTW) between centroid traces.
package vision

import (
	"errors"
	"math"
)

// ErrSizeMismatch is returned when two images of different sizes are
// compared.
var ErrSizeMismatch = errors.New("vision: image size mismatch")

// RGB is one 8-bit color pixel.
type RGB struct{ R, G, B uint8 }

// Image is a simple dense RGB raster.
type Image struct {
	W, H int
	Pix  []RGB // row major, len W*H
}

// NewImage allocates a black image.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]RGB, w*h)}
}

// At returns the pixel at (x, y); out-of-bounds reads return black.
func (im *Image) At(x, y int) RGB {
	if x < 0 || y < 0 || x >= im.W || y >= im.H {
		return RGB{}
	}
	return im.Pix[y*im.W+x]
}

// Set writes the pixel at (x, y); out-of-bounds writes are ignored.
func (im *Image) Set(x, y int, c RGB) {
	if x < 0 || y < 0 || x >= im.W || y >= im.H {
		return
	}
	im.Pix[y*im.W+x] = c
}

// FillRect paints an axis-aligned rectangle (clipped to the image).
func (im *Image) FillRect(x0, y0, x1, y1 int, c RGB) {
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			im.Set(x, y, c)
		}
	}
}

// Clone deep-copies the image.
func (im *Image) Clone() *Image {
	out := NewImage(im.W, im.H)
	copy(out.Pix, im.Pix)
	return out
}

// Gray converts the image to [0,1] luminance values.
func (im *Image) Gray() []float64 {
	out := make([]float64, len(im.Pix))
	for i, p := range im.Pix {
		out[i] = (0.299*float64(p.R) + 0.587*float64(p.G) + 0.114*float64(p.B)) / 255
	}
	return out
}

// HSV is a hue-saturation-value pixel with H in [0,360), S and V in [0,1].
type HSV struct{ H, S, V float64 }

// RGBToHSV converts one pixel.
func RGBToHSV(c RGB) HSV {
	r := float64(c.R) / 255
	g := float64(c.G) / 255
	b := float64(c.B) / 255
	maxC := math.Max(r, math.Max(g, b))
	minC := math.Min(r, math.Min(g, b))
	d := maxC - minC
	var h float64
	switch {
	case d == 0:
		h = 0
	case maxC == r:
		h = 60 * math.Mod((g-b)/d, 6)
	case maxC == g:
		h = 60 * ((b-r)/d + 2)
	default:
		h = 60 * ((r-g)/d + 4)
	}
	if h < 0 {
		h += 360
	}
	var s float64
	if maxC > 0 {
		s = d / maxC
	}
	return HSV{H: h, S: s, V: maxC}
}

// Mask is a binary raster produced by thresholding.
type Mask struct {
	W, H int
	Bits []bool
}

// Count returns the number of set pixels.
func (m *Mask) Count() int {
	n := 0
	for _, b := range m.Bits {
		if b {
			n++
		}
	}
	return n
}

// ThresholdRange selects pixels whose HSV components fall inside the given
// inclusive ranges. Hue ranges may wrap (hLo > hHi selects [hLo,360)∪[0,hHi]).
type ThresholdRange struct {
	HLo, HHi float64
	SLo, SHi float64
	VLo, VHi float64
}

// ThresholdHSV produces the binary mask of pixels within the range, the
// marker-based detection step of the paper's Figure 7b.
func ThresholdHSV(im *Image, r ThresholdRange) *Mask {
	m := &Mask{W: im.W, H: im.H, Bits: make([]bool, len(im.Pix))}
	for i, p := range im.Pix {
		h := RGBToHSV(p)
		hueOK := false
		if r.HLo <= r.HHi {
			hueOK = h.H >= r.HLo && h.H <= r.HHi
		} else {
			hueOK = h.H >= r.HLo || h.H <= r.HHi
		}
		m.Bits[i] = hueOK && h.S >= r.SLo && h.S <= r.SHi && h.V >= r.VLo && h.V <= r.VHi
	}
	return m
}
