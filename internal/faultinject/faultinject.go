// Package faultinject implements the paper's software fault-injection tool
// (§IV-B): it perturbs kinematic state variables — Grasper Angle and
// Cartesian Position — of replayed trajectories to simulate the effect of
// accidental faults, attacks, or human errors, and runs the Table III
// campaign against the Block Transfer simulator.
package faultinject

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/kinematics"
	"repro/internal/simulator"
)

// Variable identifies the targeted kinematic state variable V.
type Variable int

// Targeted variables.
const (
	GrasperAngle Variable = iota + 1
	CartesianPosition
)

// String returns the variable name.
func (v Variable) String() string {
	switch v {
	case GrasperAngle:
		return "grasper angle"
	case CartesianPosition:
		return "cartesian position"
	default:
		return fmt.Sprintf("Variable(%d)", int(v))
	}
}

// Fault characterizes one injection: the targeted variable V, the injected
// value S′, and the injection window expressed as fractions of the
// trajectory (the paper's duration D in "% Trajectory").
type Fault struct {
	Variable Variable
	// Target is S′: radians for GrasperAngle; the Euclidean deviation
	// δ = d(S′, S) in meters for CartesianPosition.
	Target float64
	// StartFrac and Duration bracket the injection window: it spans
	// [StartFrac, StartFrac+Duration] of the trajectory (clamped to 1).
	StartFrac float64
	Duration  float64
	// Manipulator is the targeted arm; the Block Transfer campaign
	// targets the carrying (left) arm.
	Manipulator kinematics.Manipulator
	// RampRate is the per-second grasper-angle increment θ toward S′
	// (Figure 6d). <= 0 uses a default of 2 rad/s.
	RampRate float64
}

// ErrBadFault reports an invalid fault description.
var ErrBadFault = errors.New("faultinject: invalid fault")

// Validate checks the fault parameters.
func (f Fault) Validate() error {
	if f.Variable != GrasperAngle && f.Variable != CartesianPosition {
		return fmt.Errorf("%w: unknown variable", ErrBadFault)
	}
	if f.Duration <= 0 || f.StartFrac < 0 || f.StartFrac >= 1 {
		return fmt.Errorf("%w: window start=%v dur=%v", ErrBadFault, f.StartFrac, f.Duration)
	}
	if f.Manipulator != kinematics.Left && f.Manipulator != kinematics.Right {
		return fmt.Errorf("%w: manipulator unset", ErrBadFault)
	}
	return nil
}

// Inject returns a perturbed copy of the command stream with the fault
// applied, plus the [start, end) frame window of the injection. The
// original trajectory is not modified, so the same fault-free demonstration
// can be replayed under many faults (as in the paper).
//
// Grasper faults ramp the commanded angle by a constant increment per tick
// until the target S′ is reached, then hold it for the window (Figure 6d).
// Cartesian faults add a uniform deviation of δ/√3 to each of x, y, z over
// the window (Figure 6c).
func Inject(traj *kinematics.Trajectory, f Fault) (*kinematics.Trajectory, int, int, error) {
	if err := f.Validate(); err != nil {
		return nil, 0, 0, err
	}
	out := traj.Clone()
	n := len(out.Frames)
	start := int(f.StartFrac * float64(n))
	end := int((f.StartFrac + f.Duration) * float64(n))
	if end > n {
		end = n
	}
	if start >= end {
		return nil, 0, 0, fmt.Errorf("%w: empty window", ErrBadFault)
	}

	switch f.Variable {
	case GrasperAngle:
		ramp := f.RampRate
		if ramp <= 0 {
			ramp = 2.0
		}
		perTick := ramp / out.HzRate
		cur := out.Frames[start].GrasperAngle(f.Manipulator)
		for i := start; i < end; i++ {
			if cur < f.Target {
				cur += perTick
				if cur > f.Target {
					cur = f.Target
				}
			} else if cur > f.Target {
				cur -= perTick
				if cur < f.Target {
					cur = f.Target
				}
			}
			out.Frames[i].SetGrasperAngle(f.Manipulator, cur)
		}
	case CartesianPosition:
		// Uniform positive deviation in all three axes: δ/√3 each,
		// ramped on over the first 10% of the window to avoid an
		// instantaneous teleport that the controller would reject.
		per := f.Target / math.Sqrt(3)
		rampLen := (end - start) / 10
		if rampLen < 1 {
			rampLen = 1
		}
		for i := start; i < end; i++ {
			scale := 1.0
			if i-start < rampLen {
				scale = float64(i-start+1) / float64(rampLen)
			}
			x, y, z := out.Frames[i].Cartesian(f.Manipulator)
			out.Frames[i].SetCartesian(f.Manipulator, x+per*scale, y+per*scale, z+per*scale)
		}
	}
	// Mark the injected window unsafe in the command-side ground truth.
	if len(out.Unsafe) == n {
		for i := start; i < end; i++ {
			out.Unsafe[i] = true
		}
	}
	return out, start, end, nil
}

// Injection is one campaign run: the fault, the replayed demonstration
// index, and the simulator outcome.
type Injection struct {
	Fault     Fault
	DemoIndex int
	Outcome   simulator.FailureMode
	// Result carries the full simulator output when the campaign is run
	// with KeepResults.
	Result *simulator.Result
	// WindowStart/WindowEnd are the injected frame range.
	WindowStart, WindowEnd int
}

// randIn draws uniformly from [lo, hi).
func randIn(rng *rand.Rand, lo, hi float64) float64 {
	return lo + rng.Float64()*(hi-lo)
}
