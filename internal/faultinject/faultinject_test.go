package faultinject

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/kinematics"
	"repro/internal/simulator"
)

func commandStream(t *testing.T) *kinematics.Trajectory {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	cfg := simulator.DefaultCommandConfig()
	cfg.Hz = 200
	return simulator.GenerateCommands(rng, cfg)
}

func TestFaultValidate(t *testing.T) {
	good := Fault{Variable: GrasperAngle, Target: 1.2, StartFrac: 0.3, Duration: 0.5, Manipulator: kinematics.Left}
	if err := good.Validate(); err != nil {
		t.Errorf("valid fault rejected: %v", err)
	}
	bad := []Fault{
		{Variable: 0, Target: 1, StartFrac: 0.3, Duration: 0.5, Manipulator: kinematics.Left},
		{Variable: GrasperAngle, StartFrac: -0.1, Duration: 0.5, Manipulator: kinematics.Left},
		{Variable: GrasperAngle, StartFrac: 0.3, Duration: 0, Manipulator: kinematics.Left},
		{Variable: GrasperAngle, StartFrac: 0.3, Duration: 0.5},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("bad fault %d accepted", i)
		}
	}
}

func TestInjectGrasperRampsToTarget(t *testing.T) {
	traj := commandStream(t)
	f := Fault{
		Variable: GrasperAngle, Target: 1.5,
		StartFrac: 0.3, Duration: 0.4,
		Manipulator: kinematics.Left, RampRate: 2,
	}
	out, start, end, err := Inject(traj, f)
	if err != nil {
		t.Fatal(err)
	}
	if start >= end || start != int(0.3*float64(len(traj.Frames))) {
		t.Fatalf("window [%d,%d)", start, end)
	}
	// Original untouched.
	for i := range traj.Frames {
		if traj.Frames[i].GrasperAngle(kinematics.Left) > 1.4 {
			t.Fatal("original trajectory was modified")
		}
	}
	// Ramp: angle increases by at most RampRate/Hz per tick.
	maxStep := 2.0/traj.HzRate + 1e-9
	for i := start + 1; i < end; i++ {
		a0 := out.Frames[i-1].GrasperAngle(kinematics.Left)
		a1 := out.Frames[i].GrasperAngle(kinematics.Left)
		if a1-a0 > maxStep {
			t.Fatalf("ramp step %v exceeds %v at %d", a1-a0, maxStep, i)
		}
	}
	// Target reached and held by mid-window.
	mid := (start + end) / 2
	if got := out.Frames[mid].GrasperAngle(kinematics.Left); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("angle at mid-window %v, want 1.5", got)
	}
	// Frames outside the window untouched.
	if out.Frames[start-1].GrasperAngle(kinematics.Left) != traj.Frames[start-1].GrasperAngle(kinematics.Left) {
		t.Error("frame before window modified")
	}
	// Injected window is marked unsafe.
	for i := start; i < end; i++ {
		if !out.Unsafe[i] {
			t.Fatal("injected frames not marked unsafe")
		}
	}
}

func TestInjectCartesianDeviation(t *testing.T) {
	traj := commandStream(t)
	const delta = 0.009
	f := Fault{
		Variable: CartesianPosition, Target: delta,
		StartFrac: 0.4, Duration: 0.3,
		Manipulator: kinematics.Left,
	}
	out, start, end, err := Inject(traj, f)
	if err != nil {
		t.Fatal(err)
	}
	per := delta / math.Sqrt(3)
	// After the ramp, each axis is offset by exactly delta/sqrt(3).
	i := start + (end-start)/2
	x0, y0, z0 := traj.Frames[i].Cartesian(kinematics.Left)
	x1, y1, z1 := out.Frames[i].Cartesian(kinematics.Left)
	for _, d := range []float64{x1 - x0, y1 - y0, z1 - z0} {
		if math.Abs(d-per) > 1e-9 {
			t.Errorf("axis deviation %v, want %v", d, per)
		}
	}
	// Total Euclidean deviation equals delta.
	dist := math.Sqrt(3) * per
	if math.Abs(dist-delta) > 1e-9 {
		t.Errorf("euclidean deviation %v, want %v", dist, delta)
	}
}

func TestInjectRejectsEmptyWindow(t *testing.T) {
	traj := commandStream(t)
	f := Fault{Variable: GrasperAngle, Target: 1, StartFrac: 0.999, Duration: 0.0001, Manipulator: kinematics.Left}
	if _, _, _, err := Inject(traj, f); err == nil {
		t.Error("expected empty-window error")
	}
}

func TestTable3GridCounts(t *testing.T) {
	grid := Table3Grid()
	if len(grid) != 28 {
		t.Fatalf("grid has %d buckets, want 28", len(grid))
	}
	total := 0
	for _, b := range grid {
		total += b.Count
		if b.GrasperLo >= b.GrasperHi || b.GrasperDurLo >= b.GrasperDurHi {
			t.Errorf("degenerate bucket %+v", b)
		}
	}
	if total != 651 {
		t.Errorf("total injections %d, want 651 as in Table III", total)
	}
}

func TestCampaignSmallGridShape(t *testing.T) {
	// A reduced campaign must reproduce the Table III crossovers:
	// low angle + short duration harmless; low angle + long duration
	// dropoff; high angle block-drop regardless of duration.
	grid := []Bucket{
		{GrasperLo: 0.3, GrasperHi: 0.4, GrasperDurLo: 0.55, GrasperDurHi: 0.60,
			CartLo: 0.0006, CartHi: 0.0012, CartDurLo: 0.50, CartDurHi: 0.60, Count: 8},
		{GrasperLo: 0.3, GrasperHi: 0.4, GrasperDurLo: 0.80, GrasperDurHi: 0.90,
			CartLo: 0.0006, CartHi: 0.0012, CartDurLo: 0.70, CartDurHi: 0.90, Count: 8},
		{GrasperLo: 1.4, GrasperHi: 1.6, GrasperDurLo: 0.55, GrasperDurHi: 0.70,
			CartLo: 0.0006, CartHi: 0.0012, CartDurLo: 0.50, CartDurHi: 0.60, Count: 8},
	}
	res, err := RunCampaign(grid, CampaignConfig{Seed: 3, NumDemos: 6, Hz: 150})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 24 {
		t.Fatalf("ran %d injections", res.Total)
	}
	harmless := res.Buckets[0]
	if harmless.BlockDrops+harmless.Dropoffs > 1 {
		t.Errorf("short low-angle faults caused %d drops + %d dropoffs, expected ~0",
			harmless.BlockDrops, harmless.Dropoffs)
	}
	dropoff := res.Buckets[1]
	if dropoff.Dropoffs < 6 {
		t.Errorf("long low-angle faults caused only %d/8 dropoffs", dropoff.Dropoffs)
	}
	drops := res.Buckets[2]
	if drops.BlockDrops < 7 {
		t.Errorf("high-angle faults caused only %d/8 block-drops", drops.BlockDrops)
	}
}

func TestCampaignKeepResults(t *testing.T) {
	grid := []Bucket{{
		GrasperLo: 1.4, GrasperHi: 1.5, GrasperDurLo: 0.5, GrasperDurHi: 0.6,
		CartLo: 0.0006, CartHi: 0.0012, CartDurLo: 0.5, CartDurHi: 0.6, Count: 2,
	}}
	res, err := RunCampaign(grid, CampaignConfig{Seed: 4, NumDemos: 2, Hz: 100, KeepResults: true, RenderFPS: 15})
	if err != nil {
		t.Fatal(err)
	}
	for _, inj := range res.Injections {
		if inj.Result == nil {
			t.Fatal("KeepResults did not retain simulator output")
		}
		if len(inj.Result.Frames) == 0 {
			t.Fatal("camera frames missing")
		}
	}
}

func TestCampaignDeterministic(t *testing.T) {
	grid := Table3Grid()[:2]
	a, err := RunCampaign(grid, CampaignConfig{Seed: 5, NumDemos: 3, Hz: 100})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCampaign(grid, CampaignConfig{Seed: 5, NumDemos: 3, Hz: 100})
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalDrops != b.TotalDrops || a.TotalDropoffs != b.TotalDropoffs {
		t.Error("campaign not deterministic for fixed seed")
	}
}

func TestRenderTable(t *testing.T) {
	grid := Table3Grid()[:1]
	res, err := RunCampaign(grid, CampaignConfig{Seed: 6, NumDemos: 2, Hz: 100})
	if err != nil {
		t.Fatal(err)
	}
	out := res.RenderTable()
	if len(out) == 0 {
		t.Fatal("empty table")
	}
}

func TestVariableString(t *testing.T) {
	if GrasperAngle.String() == "" || CartesianPosition.String() == "" {
		t.Error("empty variable names")
	}
}
