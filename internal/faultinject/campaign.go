package faultinject

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/kinematics"
	"repro/internal/simulator"
)

// Bucket is one row of the Table III campaign grid: ranges for the grasper
// target S′, the grasper fault duration, the Cartesian deviation, the
// Cartesian fault duration, and the number of injections to run.
type Bucket struct {
	GrasperLo, GrasperHi       float64 // rad
	GrasperDurLo, GrasperDurHi float64 // fraction of trajectory
	CartLo, CartHi             float64 // meters of Euclidean deviation
	CartDurLo, CartDurHi       float64 // fraction of trajectory
	Count                      int
}

// InjectionStartFrac is where the injection window begins as a fraction of
// the trajectory: during the carry phase (after the grab completes at
// ~0.2), so that long windows extend through the G11 drop gesture while
// short ones end before the release completes (see DESIGN.md).
const InjectionStartFrac = 0.30

// Table3Grid returns the campaign grid reproducing Table III: seven grasper
// target bands × two duration bands × two Cartesian deviation bands, with
// the paper's per-cell injection counts (651 total).
//
// The paper expresses Cartesian deviation in raw control-software units
// (3000–65000); we map them into workspace millimeters (0.6–35 mm of
// commanded Euclidean deviation against a 20 mm receptacle radius),
// preserving the "Cartesian deviation rarely causes failures" behaviour
// with only occasional wrong-position drops, as in the paper (2 of 651).
func Table3Grid() []Bucket {
	type band struct{ gLo, gHi float64 }
	bands := []band{
		{0.30, 0.40}, {0.50, 0.60}, {0.70, 0.80}, {0.90, 1.00},
		{1.10, 1.20}, {1.30, 1.40}, {1.50, 1.60},
	}
	// Per-band counts for the four sub-cells
	// (shortDur×lowCart, shortDur×highCart, longDur×lowCart, longDur×highCart),
	// following Table III.
	counts := map[int][4]int{
		0: {16, 8, 16, 16},
		1: {16, 8, 16, 16},
		2: {16, 8, 16, 16},
		3: {58, 50, 16, 16},
		4: {47, 74, 16, 16},
		5: {41, 61, 16, 16},
		6: {7, 17, 16, 16},
	}
	var grid []Bucket
	for i, b := range bands {
		c := counts[i]
		cells := []struct {
			durLo, durHi         float64
			cartLo, cartHi       float64
			cartDurLo, cartDurHi float64
			n                    int
		}{
			{0.55, 0.70, 0.0006, 0.0012, 0.50, 0.60, c[0]},
			{0.55, 0.70, 0.0012, 0.035, 0.50, 0.60, c[1]},
			{0.65, 0.90, 0.0006, 0.0012, 0.70, 0.90, c[2]},
			{0.65, 0.90, 0.0012, 0.035, 0.70, 0.90, c[3]},
		}
		for _, cell := range cells {
			grid = append(grid, Bucket{
				GrasperLo: b.gLo, GrasperHi: b.gHi,
				GrasperDurLo: cell.durLo, GrasperDurHi: cell.durHi,
				CartLo: cell.cartLo, CartHi: cell.cartHi,
				CartDurLo: cell.cartDurLo, CartDurHi: cell.cartDurHi,
				Count: cell.n,
			})
		}
	}
	return grid
}

// BucketResult aggregates campaign outcomes for one grid bucket.
type BucketResult struct {
	Bucket     Bucket
	Injections int
	BlockDrops int
	Dropoffs   int
	WrongPos   int
}

// CampaignConfig controls a fault-injection campaign.
type CampaignConfig struct {
	Seed int64
	// Demos are the fault-free command streams to replay; when empty,
	// NumDemos streams are generated at Hz.
	Demos    []*kinematics.Trajectory
	NumDemos int
	Hz       float64
	// KeepResults retains full simulator results (trajectories and video
	// frames) on each Injection; leave false for large campaigns.
	KeepResults bool
	// RenderFPS enables the virtual camera when > 0.
	RenderFPS float64
}

// CampaignResult is the full campaign outcome.
type CampaignResult struct {
	Buckets       []BucketResult
	Injections    []Injection
	Total         int
	TotalDrops    int
	TotalDropoffs int
	TotalWrongPos int
}

// RunCampaign executes the grid against the simulator, pairing each
// injection with a randomly chosen fault-free demonstration. Every
// injection perturbs both the grasper angle and the Cartesian position of
// the carrying arm, as in the paper's combined perturbation experiments.
func RunCampaign(grid []Bucket, cfg CampaignConfig) (*CampaignResult, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	demos := cfg.Demos
	if len(demos) == 0 {
		n := cfg.NumDemos
		if n <= 0 {
			n = 20
		}
		hz := cfg.Hz
		if hz <= 0 {
			hz = 1000
		}
		demos = simulator.CollectFaultFree(cfg.Seed+1, n, 2, hz)
	}

	res := &CampaignResult{}
	for _, b := range grid {
		br := BucketResult{Bucket: b}
		for k := 0; k < b.Count; k++ {
			demoIdx := rng.Intn(len(demos))
			demo := demos[demoIdx]

			gf := Fault{
				Variable:    GrasperAngle,
				Target:      randIn(rng, b.GrasperLo, b.GrasperHi),
				StartFrac:   InjectionStartFrac,
				Duration:    randIn(rng, b.GrasperDurLo, b.GrasperDurHi),
				Manipulator: kinematics.Left,
			}
			perturbed, ws, we, err := Inject(demo, gf)
			if err != nil {
				return nil, fmt.Errorf("grasper inject: %w", err)
			}
			cf := Fault{
				Variable:    CartesianPosition,
				Target:      randIn(rng, b.CartLo, b.CartHi),
				StartFrac:   InjectionStartFrac,
				Duration:    randIn(rng, b.CartDurLo, b.CartDurHi),
				Manipulator: kinematics.Left,
			}
			perturbed, _, _, err = Inject(perturbed, cf)
			if err != nil {
				return nil, fmt.Errorf("cartesian inject: %w", err)
			}

			world := simulator.NewWorld(rng)
			simRes := world.Run(perturbed, cfg.RenderFPS)

			inj := Injection{
				Fault:       gf,
				DemoIndex:   demoIdx,
				Outcome:     simRes.Outcome,
				WindowStart: ws,
				WindowEnd:   we,
			}
			if cfg.KeepResults {
				inj.Result = simRes
			}
			res.Injections = append(res.Injections, inj)
			br.Injections++
			switch simRes.Outcome {
			case simulator.BlockDropFailure:
				br.BlockDrops++
			case simulator.DropoffFailure:
				br.Dropoffs++
			case simulator.WrongPositionDrop:
				br.WrongPos++
			}
		}
		res.Buckets = append(res.Buckets, br)
		res.Total += br.Injections
		res.TotalDrops += br.BlockDrops
		res.TotalDropoffs += br.Dropoffs
		res.TotalWrongPos += br.WrongPos
	}
	return res, nil
}

// RenderTable renders the campaign result as the Table III layout.
func (r *CampaignResult) RenderTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-11s %-14s %-11s %6s %11s %9s %9s\n",
		"Grasper(rad)", "Dur(%traj)", "Cart dev (m)", "Dur(%traj)", "#Inj", "Block-drop", "Dropoff", "WrongPos")
	for _, br := range r.Buckets {
		bk := br.Bucket
		fmt.Fprintf(&b, "%.2f-%.2f    %.2f-%.2f   %.3f-%.3f    %.2f-%.2f  %6d %5d (%3.0f%%) %3d (%3.0f%%) %5d\n",
			bk.GrasperLo, bk.GrasperHi, bk.GrasperDurLo, bk.GrasperDurHi,
			bk.CartLo, bk.CartHi, bk.CartDurLo, bk.CartDurHi,
			br.Injections,
			br.BlockDrops, pct(br.BlockDrops, br.Injections),
			br.Dropoffs, pct(br.Dropoffs, br.Injections),
			br.WrongPos)
	}
	fmt.Fprintf(&b, "Total: %d injections, %d block-drops, %d dropoffs, %d wrong-position\n",
		r.Total, r.TotalDrops, r.TotalDropoffs, r.TotalWrongPos)
	return b.String()
}

func pct(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}
