package gesture

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Special Markov-chain states bracketing every demonstration.
const (
	StateStart = 0
	StateEnd   = NumClasses // one past the gesture vocabulary
)

// markovStates is the total number of chain states: Start (0), G1..G15, End.
const markovStates = NumClasses + 1

// ErrNoSequences is returned when fitting a chain on no data.
var ErrNoSequences = errors.New("gesture: no sequences to fit Markov chain")

// MarkovChain is a first-order finite-state model of a surgical task's
// gesture grammar (Figure 3 of the paper). State 0 is Start; state
// NumClasses is End; states 1..15 are gestures.
type MarkovChain struct {
	// Counts holds raw transition counts; Counts[i][j] is the number of
	// observed transitions from state i to state j.
	Counts [markovStates][markovStates]float64
}

// FitMarkovChain estimates the transition structure from demonstration
// gesture sequences (consecutive duplicates already collapsed, e.g. the
// output of Trajectory.GestureSequence).
func FitMarkovChain(sequences [][]int) (*MarkovChain, error) {
	if len(sequences) == 0 {
		return nil, ErrNoSequences
	}
	mc := &MarkovChain{}
	for _, seq := range sequences {
		prev := StateStart
		for _, g := range seq {
			if g <= 0 || g > MaxGesture {
				return nil, fmt.Errorf("gesture: sequence contains invalid gesture %d", g)
			}
			mc.Counts[prev][g]++
			prev = g
		}
		mc.Counts[prev][StateEnd]++
	}
	return mc, nil
}

// Prob returns the maximum-likelihood transition probability from state i to
// state j. Rows with no observations return 0 everywhere.
func (mc *MarkovChain) Prob(i, j int) float64 {
	var row float64
	for k := 0; k < markovStates; k++ {
		row += mc.Counts[i][k]
	}
	if row == 0 {
		return 0
	}
	return mc.Counts[i][j] / row
}

// Row returns the full transition-probability row for state i.
func (mc *MarkovChain) Row(i int) []float64 {
	out := make([]float64, markovStates)
	var row float64
	for k := 0; k < markovStates; k++ {
		row += mc.Counts[i][k]
	}
	if row == 0 {
		return out
	}
	for k := 0; k < markovStates; k++ {
		out[k] = mc.Counts[i][k] / row
	}
	return out
}

// States returns the states with at least one observed outgoing or incoming
// transition, in ascending order (excluding Start/End).
func (mc *MarkovChain) States() []int {
	seen := map[int]bool{}
	for i := 0; i < markovStates; i++ {
		for j := 0; j < markovStates; j++ {
			if mc.Counts[i][j] > 0 {
				if i != StateStart && i != StateEnd {
					seen[i] = true
				}
				if j != StateStart && j != StateEnd {
					seen[j] = true
				}
			}
		}
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Sample draws a gesture sequence from the chain using rng, bounded by
// maxLen to guarantee termination even for chains with cycles.
func (mc *MarkovChain) Sample(rng *rand.Rand, maxLen int) []int {
	var seq []int
	state := StateStart
	for len(seq) < maxLen {
		row := mc.Row(state)
		next := sampleCategorical(rng, row)
		if next == StateEnd || next < 0 {
			break
		}
		seq = append(seq, next)
		state = next
	}
	return seq
}

// sampleCategorical draws an index from an (unnormalized-tolerant)
// probability row; returns -1 if the row is all zeros.
func sampleCategorical(rng *rand.Rand, row []float64) int {
	var total float64
	for _, p := range row {
		total += p
	}
	if total <= 0 {
		return -1
	}
	u := rng.Float64() * total
	var acc float64
	for i, p := range row {
		acc += p
		if u < acc {
			return i
		}
	}
	return len(row) - 1
}

// LogLikelihood returns the log-likelihood of a gesture sequence under the
// chain, or -Inf if the sequence uses an unobserved transition.
func (mc *MarkovChain) LogLikelihood(seq []int) float64 {
	var ll float64
	prev := StateStart
	step := func(next int) bool {
		p := mc.Prob(prev, next)
		if p == 0 {
			ll = math.Inf(-1)
			return false
		}
		ll += math.Log(p)
		prev = next
		return true
	}
	for _, g := range seq {
		if !step(g) {
			return ll
		}
	}
	step(StateEnd)
	return ll
}

// Render returns a human-readable transition table (the textual analogue of
// Figure 3), listing transitions with probability >= minProb.
func (mc *MarkovChain) Render(minProb float64) string {
	var b strings.Builder
	name := func(s int) string {
		switch s {
		case StateStart:
			return "Start"
		case StateEnd:
			return "End"
		default:
			return Gesture(s).String()
		}
	}
	for i := 0; i < markovStates; i++ {
		row := mc.Row(i)
		type edge struct {
			to int
			p  float64
		}
		var edges []edge
		for j, p := range row {
			if p >= minProb && p > 0 {
				edges = append(edges, edge{j, p})
			}
		}
		if len(edges) == 0 {
			continue
		}
		sort.Slice(edges, func(a, b int) bool { return edges[a].p > edges[b].p })
		fmt.Fprintf(&b, "%-5s ->", name(i))
		for _, e := range edges {
			fmt.Fprintf(&b, " %s(%.2f)", name(e.to), e.p)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
