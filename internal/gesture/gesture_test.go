package gesture

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestGestureString(t *testing.T) {
	if G4.String() != "G4" {
		t.Errorf("G4.String() = %q", G4.String())
	}
	if !strings.Contains(Gesture(99).String(), "?") {
		t.Error("invalid gesture should render as unknown")
	}
	for g := Gesture(1); g <= MaxGesture; g++ {
		if g == 7 {
			continue
		}
		if g.Description() == "unknown gesture" && g != 7 {
			t.Errorf("%v has no description", g)
		}
	}
}

func TestTaskVocabulary(t *testing.T) {
	cases := []struct {
		task Task
		want int
	}{
		{Suturing, 10},
		{KnotTying, 6},
		{NeedlePassing, 8},
		{BlockTransfer, 5},
	}
	for _, c := range cases {
		if got := len(c.task.Vocabulary()); got != c.want {
			t.Errorf("%v vocabulary size %d, want %d", c.task, got, c.want)
		}
	}
	// Block Transfer matches the Figure 3b cycle.
	bt := BlockTransfer.Vocabulary()
	want := []Gesture{G2, G12, G6, G5, G11}
	for i := range want {
		if bt[i] != want[i] {
			t.Errorf("BlockTransfer vocab[%d] = %v, want %v", i, bt[i], want[i])
		}
	}
}

func TestRubricMatchesTableII(t *testing.T) {
	r := Rubric()
	// G10 has no common errors in Table II.
	if _, ok := r[G10]; ok {
		t.Error("G10 must have no rubric entry")
	}
	if HasCommonErrors(G10) {
		t.Error("HasCommonErrors(G10) = true")
	}
	// G5's error is needle drop caused by high grasper angle.
	e := r[G5]
	if len(e.Modes) != 1 || e.Modes[0] != ErrNeedleDrop {
		t.Errorf("G5 modes = %v", e.Modes)
	}
	if len(e.Faults) != 1 || e.Faults[0] != FaultHighGrasper {
		t.Errorf("G5 faults = %v", e.Faults)
	}
	// G11's error is failure to drop off, caused by low grasper angle.
	e = r[G11]
	if e.Modes[0] != ErrFailureToDropoff || e.Faults[0] != FaultLowGrasper {
		t.Errorf("G11 entry = %+v", e)
	}
	// Every rubric entry must be internally consistent.
	for g, entry := range r {
		if entry.Gesture != g {
			t.Errorf("entry for %v has Gesture %v", g, entry.Gesture)
		}
		if len(entry.Modes) == 0 || len(entry.Faults) == 0 {
			t.Errorf("entry for %v is empty", g)
		}
	}
}

func TestErrorModeStrings(t *testing.T) {
	modes := []ErrorMode{
		ErrMultipleAttempts, ErrNeedleDrop, ErrOutOfView, ErrMultipleMoves,
		ErrNotAlongCurve, ErrLooseKnot, ErrFailureToDropoff, ErrInstrumentForStability,
	}
	for _, m := range modes {
		if m.String() == "unknown error mode" {
			t.Errorf("mode %d has no string", m)
		}
	}
}

func TestFitMarkovChainRejectsEmpty(t *testing.T) {
	if _, err := FitMarkovChain(nil); err == nil {
		t.Error("expected ErrNoSequences")
	}
	if _, err := FitMarkovChain([][]int{{1, 99}}); err == nil {
		t.Error("expected invalid-gesture error")
	}
}

func TestMarkovChainRowsStochastic(t *testing.T) {
	mc, err := FitMarkovChain([][]int{
		{1, 2, 3, 6, 11},
		{1, 2, 3, 6, 4, 2, 3, 6, 11},
		{5, 2, 3, 6, 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < markovStates; i++ {
		row := mc.Row(i)
		var sum float64
		for _, p := range row {
			if p < 0 || p > 1 {
				t.Fatalf("probability out of range: %v", p)
			}
			sum += p
		}
		if sum != 0 && math.Abs(sum-1) > 1e-9 {
			t.Errorf("row %d sums to %v", i, sum)
		}
	}
	// Start must go to G1 with prob 2/3 and G5 with 1/3.
	if p := mc.Prob(StateStart, 1); math.Abs(p-2.0/3) > 1e-9 {
		t.Errorf("P(Start->G1) = %v", p)
	}
	if p := mc.Prob(StateStart, 5); math.Abs(p-1.0/3) > 1e-9 {
		t.Errorf("P(Start->G5) = %v", p)
	}
	// G11 always terminates.
	if p := mc.Prob(11, StateEnd); p != 1 {
		t.Errorf("P(G11->End) = %v", p)
	}
}

func TestMarkovChainSampleRespectsSupport(t *testing.T) {
	seqs := [][]int{{2, 12, 6, 5, 11}, {2, 12, 6, 5, 11}}
	mc, err := FitMarkovChain(seqs)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		got := mc.Sample(rng, 50)
		want := []int{2, 12, 6, 5, 11}
		if len(got) != len(want) {
			t.Fatalf("deterministic chain sampled %v", got)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("deterministic chain sampled %v", got)
			}
		}
	}
}

func TestMarkovChainLogLikelihood(t *testing.T) {
	mc, _ := FitMarkovChain([][]int{{2, 12, 6, 5, 11}})
	if ll := mc.LogLikelihood([]int{2, 12, 6, 5, 11}); ll != 0 {
		t.Errorf("deterministic path LL = %v, want 0", ll)
	}
	if ll := mc.LogLikelihood([]int{2, 6}); !math.IsInf(ll, -1) {
		t.Errorf("unobserved transition LL = %v, want -Inf", ll)
	}
}

func TestMarkovChainStatesAndRender(t *testing.T) {
	mc, _ := FitMarkovChain([][]int{{2, 12, 6, 5, 11}})
	states := mc.States()
	if len(states) != 5 {
		t.Errorf("states = %v", states)
	}
	out := mc.Render(0.01)
	for _, want := range []string{"Start", "G2", "G12", "End"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestMarkovRowStochasticProperty(t *testing.T) {
	// Property: any fitted chain has rows that sum to 1 or 0.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var seqs [][]int
		for i := 0; i < 5; i++ {
			n := 3 + rng.Intn(8)
			seq := make([]int, n)
			for j := range seq {
				seq[j] = 1 + rng.Intn(MaxGesture)
			}
			seqs = append(seqs, seq)
		}
		mc, err := FitMarkovChain(seqs)
		if err != nil {
			return false
		}
		for i := 0; i < markovStates; i++ {
			var sum float64
			for _, p := range mc.Row(i) {
				sum += p
			}
			if sum != 0 && math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
