package gesture

// ErrorMode is one of the common gesture-specific failure modes from the
// paper's Table II rubric.
type ErrorMode int

// Failure modes observed per gesture (Table II). A gesture is classified
// erroneous if any of its gesture-specific modes is observed.
const (
	ErrMultipleAttempts       ErrorMode = iota + 1 // more than one attempt to reach/position/orient
	ErrNeedleDrop                                  // unintentional needle/object drop
	ErrOutOfView                                   // end-effector / needle holder not in view at all times
	ErrMultipleMoves                               // driving needle with more than one movement
	ErrNotAlongCurve                               // not removing the needle along its curve
	ErrLooseKnot                                   // knot left loose
	ErrFailureToDropoff                            // failure to drop off at end point
	ErrInstrumentForStability                      // uses tissue/instrument for stability
)

// String returns a short description of the failure mode.
func (e ErrorMode) String() string {
	switch e {
	case ErrMultipleAttempts:
		return "more than one attempt"
	case ErrNeedleDrop:
		return "unintentional needle drop"
	case ErrOutOfView:
		return "end-effector out of view"
	case ErrMultipleMoves:
		return "driving with more than one movement"
	case ErrNotAlongCurve:
		return "not removing needle along its curve"
	case ErrLooseKnot:
		return "knot left loose"
	case ErrFailureToDropoff:
		return "failure to drop off"
	case ErrInstrumentForStability:
		return "uses tissue/instrument for stability"
	default:
		return "unknown error mode"
	}
}

// FaultClass categorizes the kinematic-state fault that can cause a failure
// mode (Table II "Potential Causes" column).
type FaultClass int

// Fault classes on kinematic state variables.
const (
	FaultRotation    FaultClass = iota + 1 // wrong rotation angles
	FaultCartesian                         // wrong Cartesian position / sudden jumps
	FaultHighGrasper                       // grasper angle too high
	FaultLowGrasper                        // grasper angle too low
	FaultLowPressure                       // low pressure applied (tightening)
)

// String returns a short description of the fault class.
func (f FaultClass) String() string {
	switch f {
	case FaultRotation:
		return "wrong rotation angles"
	case FaultCartesian:
		return "wrong Cartesian position / sudden jumps"
	case FaultHighGrasper:
		return "high grasper angle"
	case FaultLowGrasper:
		return "low grasper angle"
	case FaultLowPressure:
		return "low applied pressure"
	default:
		return "unknown fault class"
	}
}

// RubricEntry couples a gesture with its common failure modes and the
// kinematic fault classes that can cause them.
type RubricEntry struct {
	Gesture Gesture
	Modes   []ErrorMode
	Faults  []FaultClass
}

// Rubric returns the Table II rubric: per-gesture common errors for the
// Suturing and Block Transfer tasks. Gestures absent from the map (G10) have
// no common errors.
func Rubric() map[Gesture]RubricEntry {
	return map[Gesture]RubricEntry{
		G1:  {G1, []ErrorMode{ErrMultipleAttempts}, []FaultClass{FaultRotation}},
		G2:  {G2, []ErrorMode{ErrMultipleAttempts}, []FaultClass{FaultRotation}},
		G3:  {G3, []ErrorMode{ErrMultipleMoves, ErrNotAlongCurve}, []FaultClass{FaultCartesian}},
		G4:  {G4, []ErrorMode{ErrNeedleDrop, ErrOutOfView}, []FaultClass{FaultCartesian}},
		G5:  {G5, []ErrorMode{ErrNeedleDrop}, []FaultClass{FaultHighGrasper}},
		G6:  {G6, []ErrorMode{ErrOutOfView, ErrNeedleDrop}, []FaultClass{FaultCartesian}},
		G8:  {G8, []ErrorMode{ErrInstrumentForStability, ErrMultipleAttempts}, []FaultClass{FaultRotation}},
		G9:  {G9, []ErrorMode{ErrLooseKnot}, []FaultClass{FaultLowPressure}},
		G11: {G11, []ErrorMode{ErrFailureToDropoff}, []FaultClass{FaultLowGrasper}},
		G12: {G12, []ErrorMode{ErrMultipleAttempts}, []FaultClass{FaultCartesian}},
	}
}

// HasCommonErrors reports whether the rubric defines failure modes for g.
func HasCommonErrors(g Gesture) bool {
	_, ok := Rubric()[g]
	return ok
}
