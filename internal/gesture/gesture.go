// Package gesture defines the surgical gesture taxonomy, the gesture-specific
// error rubric (Table II of the paper), and Markov-chain task grammars
// (Figure 3) for the Suturing and Block Transfer tasks.
package gesture

import "fmt"

// Gesture identifies an atomic surgical gesture (surgeme) following the
// JIGSAWS vocabulary G1..G15. G7 is unused, as in the dataset.
type Gesture int

// Gesture vocabulary. Values match the JIGSAWS indices so annotations are
// directly comparable with the literature.
const (
	G1  Gesture = 1  // reaching for needle with right hand
	G2  Gesture = 2  // positioning needle
	G3  Gesture = 3  // pushing needle through the tissue
	G4  Gesture = 4  // transferring needle from left to right
	G5  Gesture = 5  // moving to center with needle in grip
	G6  Gesture = 6  // pulling suture with left hand
	G8  Gesture = 8  // orienting needle
	G9  Gesture = 9  // using right hand to help tighten suture
	G10 Gesture = 10 // loosening more suture
	G11 Gesture = 11 // dropping suture and moving to end points
	G12 Gesture = 12 // reaching for needle with left hand
	G13 Gesture = 13 // making C loop around right hand
	G14 Gesture = 14 // reaching for suture with right hand
	G15 Gesture = 15 // pulling suture with both hands

	// MaxGesture is the highest gesture index; classifier outputs are
	// one-hot vectors over 0..MaxGesture as in the paper (Equation 2).
	MaxGesture = 15
)

// NumClasses is the size of the gesture one-hot vector (index 0 reserved
// for "no gesture / unlabeled").
const NumClasses = MaxGesture + 1

// String returns the canonical short name ("G4").
func (g Gesture) String() string {
	if g <= 0 || g > MaxGesture {
		return fmt.Sprintf("G?(%d)", int(g))
	}
	return fmt.Sprintf("G%d", int(g))
}

// Description returns the long-form gesture description.
func (g Gesture) Description() string {
	switch g {
	case G1:
		return "reaching for needle with right hand"
	case G2:
		return "positioning needle"
	case G3:
		return "pushing needle through the tissue"
	case G4:
		return "transferring needle from left to right"
	case G5:
		return "moving to center with needle in grip"
	case G6:
		return "pulling suture with left hand"
	case G8:
		return "orienting needle"
	case G9:
		return "using right hand to help tighten suture"
	case G10:
		return "loosening more suture"
	case G11:
		return "dropping suture and moving to end points"
	case G12:
		return "reaching for needle with left hand"
	case G13:
		return "making C loop around right hand"
	case G14:
		return "reaching for suture with right hand"
	case G15:
		return "pulling suture with both hands"
	default:
		return "unknown gesture"
	}
}

// Task identifies a surgical training task.
type Task int

// Tasks evaluated in the paper: the three JIGSAWS dry-lab tasks on the dVRK
// plus Block Transfer on the Raven II simulator.
const (
	Suturing Task = iota + 1
	KnotTying
	NeedlePassing
	BlockTransfer
)

// String returns the task name as used in the paper's tables.
func (t Task) String() string {
	switch t {
	case Suturing:
		return "Suturing"
	case KnotTying:
		return "Knot Tying"
	case NeedlePassing:
		return "Needle Passing"
	case BlockTransfer:
		return "Block Transfer"
	default:
		return fmt.Sprintf("Task(%d)", int(t))
	}
}

// Vocabulary returns the gestures that occur in the task.
func (t Task) Vocabulary() []Gesture {
	switch t {
	case Suturing:
		return []Gesture{G1, G2, G3, G4, G5, G6, G8, G9, G10, G11}
	case KnotTying:
		return []Gesture{G1, G11, G12, G13, G14, G15}
	case NeedlePassing:
		return []Gesture{G1, G2, G3, G4, G5, G6, G8, G11}
	case BlockTransfer:
		return []Gesture{G2, G12, G6, G5, G11}
	default:
		return nil
	}
}
