package synth

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/gesture"
	"repro/internal/kinematics"
)

// Skill models surgeon expertise, which drives error probability, motion
// smoothness and timing — mirroring the JIGSAWS mix of novice, intermediate
// and expert demonstrators.
type Skill int

// Skill levels.
const (
	Expert Skill = iota + 1
	Intermediate
	Novice
)

// String returns the skill name.
func (s Skill) String() string {
	switch s {
	case Expert:
		return "expert"
	case Intermediate:
		return "intermediate"
	case Novice:
		return "novice"
	default:
		return fmt.Sprintf("Skill(%d)", int(s))
	}
}

// errorProb returns the per-gesture probability of committing one of the
// gesture's common errors.
func (s Skill) errorProb() float64 {
	switch s {
	case Expert:
		return 0.08
	case Intermediate:
		return 0.18
	case Novice:
		return 0.32
	default:
		return 0.15
	}
}

// noiseScale returns the motion-noise multiplier.
func (s Skill) noiseScale() float64 {
	switch s {
	case Expert:
		return 0.7
	case Novice:
		return 1.5
	default:
		return 1.0
	}
}

// ErrorEvent records one injected erroneous-gesture instance, used as
// ground truth for reaction-time evaluation.
type ErrorEvent struct {
	Gesture gesture.Gesture
	Mode    gesture.ErrorMode
	// SegStart/SegEnd bracket the whole erroneous gesture (frames).
	SegStart, SegEnd int
	// Onset is the frame at which the error signature begins to manifest.
	Onset int
}

// Demo is one synthetic demonstration: the labeled trajectory plus the
// injected error events.
type Demo struct {
	Traj   *kinematics.Trajectory
	Events []ErrorEvent
	Skill  Skill
}

// Config controls demonstration generation.
type Config struct {
	Task gesture.Task
	// Hz is the kinematics sampling rate (30 for dVRK-style data).
	Hz float64
	// Seed makes generation deterministic.
	Seed int64
	// NumDemos is the number of demonstrations to generate.
	NumDemos int
	// NumTrials is the number of LOSO super-trials demos are spread over.
	NumTrials int
	// Subjects is the number of distinct synthetic surgeons.
	Subjects int
	// ErrorRate, when > 0, overrides the skill-derived per-gesture error
	// probability.
	ErrorRate float64
	// DurationScale scales all gesture durations (1 = nominal). Smaller
	// values produce shorter demos for fast tests.
	DurationScale float64
}

// DefaultSuturing returns the configuration used to stand in for the
// 39-demonstration JIGSAWS Suturing set.
func DefaultSuturing(seed int64) Config {
	return Config{
		Task: gesture.Suturing, Hz: 30, Seed: seed,
		NumDemos: 39, NumTrials: 5, Subjects: 8, DurationScale: 1,
	}
}

// ErrInvalidConfig reports an unusable generator configuration.
var ErrInvalidConfig = errors.New("synth: invalid config")

// surgeonStyle is a per-subject systematic bias applied to all motions.
type surgeonStyle struct {
	offset    point   // workspace offset
	speedMul  float64 // pace multiplier
	wiggleMul float64
	skill     Skill
}

// Generate produces the demonstration set.
func Generate(cfg Config) ([]*Demo, error) {
	if cfg.NumDemos <= 0 || cfg.Hz <= 0 {
		return nil, fmt.Errorf("%w: NumDemos=%d Hz=%v", ErrInvalidConfig, cfg.NumDemos, cfg.Hz)
	}
	if cfg.NumTrials <= 0 {
		cfg.NumTrials = 5
	}
	if cfg.Subjects <= 0 {
		cfg.Subjects = 8
	}
	if cfg.DurationScale <= 0 {
		cfg.DurationScale = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	styles := make([]surgeonStyle, cfg.Subjects)
	skills := []Skill{Expert, Intermediate, Novice}
	for i := range styles {
		styles[i] = surgeonStyle{
			offset: point{
				x: rng.NormFloat64() * 0.003,
				y: rng.NormFloat64() * 0.003,
				z: rng.NormFloat64() * 0.002,
			},
			speedMul:  1 + rng.NormFloat64()*0.12,
			wiggleMul: 1 + rng.Float64()*0.5,
			skill:     skills[i%len(skills)],
		}
	}

	demos := make([]*Demo, 0, cfg.NumDemos)
	for d := 0; d < cfg.NumDemos; d++ {
		// Trial cycles fastest and the subject advances once per full
		// trial cycle, so every LOSO super-trial contains demonstrations
		// from every surgeon — matching the JIGSAWS protocol, where the
		// same surgeons appear in all super-trials.
		subj := (d / cfg.NumTrials) % cfg.Subjects
		demo := generateDemo(rng, cfg, styles[subj])
		demo.Traj.Subject = fmt.Sprintf("S%02d", subj)
		demo.Traj.Trial = d % cfg.NumTrials
		demos = append(demos, demo)
	}
	return demos, nil
}

// generateDemo synthesizes one demonstration.
func generateDemo(rng *rand.Rand, cfg Config, style surgeonStyle) *Demo {
	seq := SampleSequence(rng, cfg.Task)
	errProb := cfg.ErrorRate
	if errProb <= 0 {
		errProb = style.skill.errorProb()
	}

	gen := newFrameGen(rng, cfg.Hz, style)
	demo := &Demo{Skill: style.skill}
	traj := &kinematics.Trajectory{HzRate: cfg.Hz}

	for _, g := range seq {
		proto, ok := prototypes[g]
		if !ok {
			continue
		}
		dur := (proto.durMean + rng.NormFloat64()*proto.durStd) * cfg.DurationScale / style.speedMul
		if dur < 0.4*cfg.DurationScale {
			dur = 0.4 * cfg.DurationScale
		}
		frames := int(dur * cfg.Hz)
		if frames < 4 {
			frames = 4
		}

		var injected *errorInjection
		if _, hasErr := gesture.Rubric()[g]; hasErr && rng.Float64() < errProb {
			injected = planInjection(rng, g, frames)
		}

		segStart := len(traj.Frames)
		gen.emitGesture(traj, g, proto, frames, injected)
		if injected != nil {
			demo.Events = append(demo.Events, ErrorEvent{
				Gesture:  g,
				Mode:     injected.mode,
				SegStart: segStart,
				SegEnd:   len(traj.Frames),
				Onset:    segStart + injected.onset,
			})
		}
	}
	demo.Traj = traj
	return demo
}

// frameGen tracks manipulator state across gestures so trajectories are
// continuous.
type frameGen struct {
	rng   *rand.Rand
	hz    float64
	style surgeonStyle

	posR, posL       point
	rotAngR, rotAngL float64
	graspR, graspL   float64
	phase            float64 // global time (s) for periodic terms
}

func newFrameGen(rng *rand.Rand, hz float64, style surgeonStyle) *frameGen {
	return &frameGen{
		rng: rng, hz: hz, style: style,
		posR: addPoint(ptRest, style.offset), posL: addPoint(ptRestL, style.offset),
		graspR: GrasperClosed, graspL: GrasperClosed,
	}
}

func addPoint(a, b point) point { return point{a.x + b.x, a.y + b.y, a.z + b.z} }

// smoothstep is the C1 ease-in-ease-out ramp on [0,1].
func smoothstep(u float64) float64 {
	if u <= 0 {
		return 0
	}
	if u >= 1 {
		return 1
	}
	return u * u * (3 - 2*u)
}

// emitGesture appends the frames of one gesture (optionally erroneous) to
// the trajectory, updating the generator's continuous state.
func (fg *frameGen) emitGesture(traj *kinematics.Trajectory, g gesture.Gesture, proto prototype, frames int, inj *errorInjection) {
	dt := 1 / fg.hz
	noise := 0.0008 * fg.style.skill.noiseScale()
	var wholeBias point
	if inj != nil {
		// Erroneous executions are clumsier for their whole duration:
		// elevated tremor plus a persistent offset of the working arm.
		noise *= inj.noiseMul
		wholeBias = inj.wholeBias
	}
	startR, startL := fg.posR, fg.posL
	targetR := addPoint(proto.anchorRight, fg.style.offset)
	targetL := addPoint(proto.anchorLeft, fg.style.offset)
	// Inactive arms hold their position.
	if !proto.rightActive {
		targetR = startR
	}
	if !proto.leftActive {
		targetL = startL
	}
	gRStart, gREnd := proto.grasperRightStart, proto.grasperRightEnd
	gLStart, gLEnd := proto.grasperLeftStart, proto.grasperLeftEnd
	rotStartR, rotStartL := fg.rotAngR, fg.rotAngL

	prev := kinematics.Frame{}
	havePrev := len(traj.Frames) > 0
	if havePrev {
		prev = traj.Frames[len(traj.Frames)-1]
	}

	for i := 0; i < frames; i++ {
		u := float64(i) / float64(frames-1)
		if frames == 1 {
			u = 1
		}
		prog := smoothstep(u)

		// Error-mode trajectory warping (multiple attempts, jumps, ...).
		warpU, posBiasR, posBiasL, graspBiasR, graspBiasL, rotBias, speedMul := 0.0, point{}, point{}, 0.0, 0.0, 0.0, 1.0
		if inj != nil {
			warpU, posBiasR, posBiasL, graspBiasR, graspBiasL, rotBias, speedMul = inj.apply(i, frames)
		}
		progW := prog
		if warpU != 0 {
			progW = smoothstep(clamp01(u + warpU))
		}

		wig := proto.wiggle * fg.style.wiggleMul
		wx := wig * math.Sin(2*math.Pi*2.3*fg.phase)
		wy := wig * math.Sin(2*math.Pi*1.7*fg.phase+1.1)

		// The persistent clumsiness bias ramps in smoothly so gesture
		// boundaries stay continuous.
		biasEnv := math.Sin(math.Pi * clamp01(u))
		pR := point{
			x: startR.x + (targetR.x-startR.x)*progW + wx + fg.rng.NormFloat64()*noise + posBiasR.x + wholeBias.x*biasEnv,
			y: startR.y + (targetR.y-startR.y)*progW + wy + fg.rng.NormFloat64()*noise + posBiasR.y + wholeBias.y*biasEnv,
			z: startR.z + (targetR.z-startR.z)*progW + fg.rng.NormFloat64()*noise + posBiasR.z + wholeBias.z*biasEnv,
		}
		pL := point{
			x: startL.x + (targetL.x-startL.x)*progW + wx*0.5 + fg.rng.NormFloat64()*noise + posBiasL.x + wholeBias.x*biasEnv,
			y: startL.y + (targetL.y-startL.y)*progW + wy*0.5 + fg.rng.NormFloat64()*noise + posBiasL.y + wholeBias.y*biasEnv,
			z: startL.z + (targetL.z-startL.z)*progW + fg.rng.NormFloat64()*noise + posBiasL.z + wholeBias.z*biasEnv,
		}

		gr := gRStart + (gREnd-gRStart)*prog + graspBiasR + fg.rng.NormFloat64()*0.01
		gl := gLStart + (gLEnd-gLStart)*prog + graspBiasL + fg.rng.NormFloat64()*0.01
		if gr < 0 {
			gr = 0
		}
		if gl < 0 {
			gl = 0
		}

		rotAct := proto.rotRate * speedMul
		angR := rotStartR
		angL := rotStartL
		if proto.rightActive {
			angR += rotAct*u*2 + rotBias + 0.2*math.Sin(2*math.Pi*1.3*fg.phase)*rotAct
		}
		if proto.leftActive {
			angL += rotAct*u*1.5 + rotBias*0.5
		}

		var f kinematics.Frame
		f.SetCartesian(kinematics.Right, pR.x, pR.y, pR.z)
		f.SetCartesian(kinematics.Left, pL.x, pL.y, pL.z)
		f.SetGrasperAngle(kinematics.Right, gr)
		f.SetGrasperAngle(kinematics.Left, gl)
		f.SetRotation(kinematics.Right, rotationAbout(proto.rotAxis, angR))
		f.SetRotation(kinematics.Left, rotationAbout(proto.rotAxis, angL))

		if havePrev {
			x0, y0, z0 := prev.Cartesian(kinematics.Right)
			f.SetLinearVelocity(kinematics.Right, (pR.x-x0)/dt, (pR.y-y0)/dt, (pR.z-z0)/dt)
			x0, y0, z0 = prev.Cartesian(kinematics.Left)
			f.SetLinearVelocity(kinematics.Left, (pL.x-x0)/dt, (pL.y-y0)/dt, (pL.z-z0)/dt)
			f.SetAngularVelocity(kinematics.Right, 0, 0, (angR-fg.rotAngR)/dt)
			f.SetAngularVelocity(kinematics.Left, 0, 0, (angL-fg.rotAngL)/dt)
		}

		traj.Frames = append(traj.Frames, f)
		traj.Gestures = append(traj.Gestures, int(g))
		// Paper rule: any erroneous sample marks the whole gesture unsafe;
		// frame labels carry the per-gesture erroneous flag.
		traj.Unsafe = append(traj.Unsafe, inj != nil)

		prev = f
		havePrev = true
		fg.posR, fg.posL = pR, pL
		fg.rotAngR, fg.rotAngL = angR, angL
		fg.graspR, fg.graspL = gr, gl
		fg.phase += dt
	}
}

func clamp01(u float64) float64 {
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// rotationAbout returns a rotation matrix of angle a about axis (0=x,1=y,2=z).
func rotationAbout(axis int, a float64) [9]float64 {
	switch axis {
	case 0:
		return kinematics.RotationX(a)
	case 1:
		return kinematics.RotationY(a)
	default:
		return kinematics.RotationZ(a)
	}
}

// Trajectories extracts the trajectory list from demos.
func Trajectories(demos []*Demo) []*kinematics.Trajectory {
	out := make([]*kinematics.Trajectory, len(demos))
	for i, d := range demos {
		out[i] = d.Traj
	}
	return out
}

// CountErroneousGestures returns (total gestures, erroneous gestures)
// across all demos, the headline counts reported in §IV of the paper.
func CountErroneousGestures(demos []*Demo) (total, erroneous int) {
	for _, d := range demos {
		segs := d.Traj.Segments()
		total += len(segs)
		for _, s := range segs {
			if s.Unsafe {
				erroneous++
			}
		}
	}
	return total, erroneous
}
