package synth

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gesture"
	"repro/internal/kinematics"
)

// propertyTasks are the task grammars the generator supports.
var propertyTasks = []gesture.Task{
	gesture.Suturing, gesture.KnotTying, gesture.NeedlePassing, gesture.BlockTransfer,
}

// TestSampleSequenceProperties draws 1k randomized grammar samples per
// task (deterministically seeded) and checks the structural invariants
// every downstream consumer assumes: sequences are non-empty, bounded,
// and contain only valid gesture indices with grammar-legal transitions
// out of the start state.
func TestSampleSequenceProperties(t *testing.T) {
	const samples = 1000
	for _, task := range propertyTasks {
		rng := rand.New(rand.NewSource(int64(task) + 1))
		for i := 0; i < samples; i++ {
			seq := SampleSequence(rng, task)
			if len(seq) == 0 {
				t.Fatalf("%v sample %d: empty gesture sequence", task, i)
			}
			if len(seq) > 200 {
				t.Fatalf("%v sample %d: unbounded sequence (%d gestures)", task, i, len(seq))
			}
			for p, g := range seq {
				if g < 1 || g > gesture.MaxGesture {
					t.Fatalf("%v sample %d position %d: invalid gesture %d", task, i, p, g)
				}
			}
		}
	}
}

// TestGeneratedTrajectoriesFinite is the synth × kinematics property
// test: across randomized generator configurations, every generated
// trajectory must validate, cover a positive duration, and project to
// feature vectors that are finite everywhere (no NaN or Inf may ever
// reach the standardizer or a network input), for every feature subset
// the pipeline uses.
func TestGeneratedTrajectoriesFinite(t *testing.T) {
	featureSets := []kinematics.FeatureSet{
		kinematics.AllFeatures(), kinematics.CRG(), kinematics.CG(),
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 6; trial++ {
		task := propertyTasks[trial%len(propertyTasks)]
		cfg := Config{
			Task:          task,
			Hz:            float64(10 + rng.Intn(40)),
			Seed:          rng.Int63(),
			NumDemos:      1 + rng.Intn(3),
			NumTrials:     1 + rng.Intn(2),
			Subjects:      1 + rng.Intn(2),
			ErrorRate:     rng.Float64() * 0.5,
			DurationScale: 0.15 + rng.Float64()*0.5,
		}
		demos, err := Generate(cfg)
		if err != nil {
			t.Fatalf("trial %d (%v): %v", trial, task, err)
		}
		if len(demos) != cfg.NumDemos {
			t.Fatalf("trial %d: %d demos, want %d", trial, len(demos), cfg.NumDemos)
		}
		for di, demo := range demos {
			tr := demo.Traj
			if err := tr.Validate(); err != nil {
				t.Fatalf("trial %d demo %d: %v", trial, di, err)
			}
			if d := tr.DurationSeconds(); d <= 0 || math.IsNaN(d) || math.IsInf(d, 0) {
				t.Fatalf("trial %d demo %d: non-positive duration %v", trial, di, d)
			}
			for _, ev := range demo.Events {
				if ev.SegStart < 0 || ev.SegEnd > tr.Len() || ev.SegStart >= ev.SegEnd {
					t.Fatalf("trial %d demo %d: bad error segment [%d,%d) of %d frames",
						trial, di, ev.SegStart, ev.SegEnd, tr.Len())
				}
				if ev.Onset < ev.SegStart || ev.Onset >= ev.SegEnd {
					t.Fatalf("trial %d demo %d: onset %d outside segment [%d,%d)",
						trial, di, ev.Onset, ev.SegStart, ev.SegEnd)
				}
			}
			for _, fs := range featureSets {
				mat := fs.Matrix(tr)
				for fi, row := range mat {
					for j, v := range row {
						if math.IsNaN(v) || math.IsInf(v, 0) {
							t.Fatalf("trial %d demo %d frame %d: non-finite %s feature %d: %v",
								trial, di, fi, fs, j, v)
						}
					}
				}
			}
		}
	}
}
