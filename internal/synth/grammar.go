package synth

import (
	"math/rand"

	"repro/internal/gesture"
)

// taskGrammar holds the hand-specified Markov-chain transition structure of
// each task, mirroring Figure 3 of the paper. The Suturing probabilities
// follow Figure 3a; Block Transfer is the deterministic cycle of Figure 3b.
type taskGrammar struct {
	start       map[gesture.Gesture]float64
	transitions map[gesture.Gesture]map[gesture.Gesture]float64
	// endProb gives the probability of terminating after each gesture;
	// the remainder is distributed per transitions.
	endProb map[gesture.Gesture]float64
	// minLen / maxLen bound the sampled sequence length.
	minLen, maxLen int
}

// grammarFor returns the grammar for a task.
func grammarFor(task gesture.Task) taskGrammar {
	switch task {
	case gesture.Suturing:
		return suturingGrammar()
	case gesture.KnotTying:
		return knotTyingGrammar()
	case gesture.NeedlePassing:
		return needlePassingGrammar()
	case gesture.BlockTransfer:
		return blockTransferGrammar()
	default:
		return taskGrammar{}
	}
}

// suturingGrammar encodes the Figure 3a chain: demonstrations start mostly
// at G1 (0.74) or G5 (0.21), the main stitch loop is G2→G3→G6→G4→G2 with
// excursions through G8/G9/G10, and termination happens from G11 or G6.
func suturingGrammar() taskGrammar {
	g := taskGrammar{
		start: map[gesture.Gesture]float64{
			gesture.G1: 0.74, gesture.G5: 0.21, gesture.G8: 0.05,
		},
		transitions: map[gesture.Gesture]map[gesture.Gesture]float64{
			gesture.G1:  {gesture.G2: 0.97, gesture.G5: 0.03},
			gesture.G2:  {gesture.G3: 0.96, gesture.G8: 0.02, gesture.G6: 0.02},
			gesture.G3:  {gesture.G6: 0.93, gesture.G2: 0.05, gesture.G4: 0.02},
			gesture.G4:  {gesture.G2: 0.76, gesture.G8: 0.22, gesture.G10: 0.02},
			gesture.G5:  {gesture.G2: 0.89, gesture.G8: 0.08, gesture.G3: 0.03},
			gesture.G6:  {gesture.G4: 0.62, gesture.G2: 0.21, gesture.G9: 0.13, gesture.G11: 0.03, gesture.G10: 0.01},
			gesture.G8:  {gesture.G2: 0.92, gesture.G3: 0.08},
			gesture.G9:  {gesture.G6: 0.67, gesture.G4: 0.17, gesture.G10: 0.08, gesture.G11: 0.08},
			gesture.G10: {gesture.G6: 0.50, gesture.G4: 0.50},
			gesture.G11: {},
		},
		endProb: map[gesture.Gesture]float64{
			gesture.G11: 1.00,
			gesture.G6:  0.04,
		},
		minLen: 9, maxLen: 26,
	}
	return g
}

// knotTyingGrammar is a simplified grammar for the Knot-Tying task.
func knotTyingGrammar() taskGrammar {
	return taskGrammar{
		start: map[gesture.Gesture]float64{gesture.G1: 0.8, gesture.G12: 0.2},
		transitions: map[gesture.Gesture]map[gesture.Gesture]float64{
			gesture.G1:  {gesture.G13: 0.85, gesture.G14: 0.15},
			gesture.G12: {gesture.G13: 1.0},
			gesture.G13: {gesture.G14: 0.9, gesture.G15: 0.1},
			gesture.G14: {gesture.G15: 1.0},
			gesture.G15: {gesture.G13: 0.55, gesture.G11: 0.45},
			gesture.G11: {},
		},
		endProb: map[gesture.Gesture]float64{gesture.G11: 1.0},
		minLen:  5, maxLen: 16,
	}
}

// needlePassingGrammar is a simplified grammar for the Needle-Passing task.
func needlePassingGrammar() taskGrammar {
	return taskGrammar{
		start: map[gesture.Gesture]float64{gesture.G1: 0.7, gesture.G5: 0.3},
		transitions: map[gesture.Gesture]map[gesture.Gesture]float64{
			gesture.G1:  {gesture.G2: 0.9, gesture.G5: 0.1},
			gesture.G2:  {gesture.G3: 0.95, gesture.G8: 0.05},
			gesture.G3:  {gesture.G6: 0.85, gesture.G4: 0.15},
			gesture.G4:  {gesture.G2: 0.7, gesture.G8: 0.3},
			gesture.G5:  {gesture.G2: 0.9, gesture.G8: 0.1},
			gesture.G6:  {gesture.G4: 0.6, gesture.G2: 0.25, gesture.G11: 0.15},
			gesture.G8:  {gesture.G2: 1.0},
			gesture.G11: {},
		},
		endProb: map[gesture.Gesture]float64{gesture.G11: 1.0},
		minLen:  7, maxLen: 22,
	}
}

// blockTransferGrammar is the deterministic Figure 3b cycle:
// G2 → G12 → G6 → G5 → G11.
func blockTransferGrammar() taskGrammar {
	return taskGrammar{
		start: map[gesture.Gesture]float64{gesture.G2: 1},
		transitions: map[gesture.Gesture]map[gesture.Gesture]float64{
			gesture.G2:  {gesture.G12: 1},
			gesture.G12: {gesture.G6: 1},
			gesture.G6:  {gesture.G5: 1},
			gesture.G5:  {gesture.G11: 1},
			gesture.G11: {},
		},
		endProb: map[gesture.Gesture]float64{gesture.G11: 1},
		minLen:  5, maxLen: 5,
	}
}

// sampleGesture draws from a gesture→probability map.
func sampleGesture(rng *rand.Rand, probs map[gesture.Gesture]float64) gesture.Gesture {
	var total float64
	for _, p := range probs {
		total += p
	}
	if total <= 0 {
		return 0
	}
	u := rng.Float64() * total
	var acc float64
	// iterate in deterministic gesture order for reproducibility
	for g := gesture.Gesture(1); g <= gesture.MaxGesture; g++ {
		p, ok := probs[g]
		if !ok {
			continue
		}
		acc += p
		if u < acc {
			return g
		}
	}
	// numeric fallthrough: return the highest-probability entry
	var best gesture.Gesture
	var bestP float64
	for g, p := range probs {
		if p > bestP {
			best, bestP = g, p
		}
	}
	return best
}

// SampleSequence draws a gesture sequence for the task from its grammar.
func SampleSequence(rng *rand.Rand, task gesture.Task) []gesture.Gesture {
	g := grammarFor(task)
	if len(g.start) == 0 {
		return nil
	}
	seq := []gesture.Gesture{sampleGesture(rng, g.start)}
	for len(seq) < g.maxLen {
		cur := seq[len(seq)-1]
		if ep := g.endProb[cur]; ep > 0 && len(seq) >= g.minLen && rng.Float64() < ep {
			break
		}
		next := sampleGesture(rng, g.transitions[cur])
		if next == 0 {
			break
		}
		seq = append(seq, next)
	}
	return seq
}
