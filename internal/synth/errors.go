package synth

import (
	"math"
	"math/rand"

	"repro/internal/gesture"
)

// errorInjection plans the kinematic signature of one gesture-specific
// failure mode (Table II) across a gesture of `frames` frames.
type errorInjection struct {
	mode  gesture.ErrorMode
	onset int // frame offset within the gesture where the signature begins

	// signature parameters, interpreted per mode
	amp    float64
	period float64
	axis   int
	span   int // frames the signature lasts

	// Whole-gesture clumsiness: erroneous executions are subtly off for
	// their entire duration (the paper labels the whole gesture unsafe
	// even when the error event happens late), modeled as elevated
	// tremor and a small persistent positional bias.
	noiseMul  float64
	wholeBias point
}

// planInjection picks one of the gesture's common error modes and draws its
// signature parameters.
func planInjection(rng *rand.Rand, g gesture.Gesture, frames int) *errorInjection {
	entry, ok := gesture.Rubric()[g]
	if !ok || len(entry.Modes) == 0 {
		return nil
	}
	mode := entry.Modes[rng.Intn(len(entry.Modes))]
	// A faint whole-gesture residue (barely elevated tremor): a
	// non-context baseline can find some signal, as in the paper, but the
	// discriminative structure lives in the gesture-specific signatures.
	inj := &errorInjection{
		mode:     mode,
		noiseMul: 1.05 + rng.Float64()*0.10,
	}
	// Signatures start early and persist through the gesture: the whole
	// execution is off (matching the paper's whole-gesture labeling),
	// and in a way that depends on the gesture's failure mode — the
	// context-specificity that Figure 5 measures.
	switch mode {
	case gesture.ErrMultipleAttempts, gesture.ErrMultipleMoves:
		// Oscillating approach: progress retreats and re-advances.
		inj.onset = frames / 4
		inj.amp = 0.25 + rng.Float64()*0.25 // fraction of progress lost per retreat
		inj.period = 0.8 + rng.Float64()*0.6
	case gesture.ErrNeedleDrop:
		// Grasper opens and stays wrong for the rest of the gesture: the
		// needle is dropped and the jaw fumbles after it.
		inj.onset = frames/5 + rng.Intn(frames/4+1)
		inj.amp = 0.5 + rng.Float64()*0.5 // rad added to grasper angle
	case gesture.ErrOutOfView:
		// Sustained Cartesian excursion beyond the visible workspace.
		inj.onset = frames / 5
		inj.amp = 0.03 + rng.Float64()*0.03 // meters
		inj.axis = rng.Intn(3)
	case gesture.ErrNotAlongCurve:
		// Deviation from the needle's curve: lateral bias + rough rotation.
		inj.onset = frames / 6
		inj.amp = 0.012 + rng.Float64()*0.01
		inj.axis = rng.Intn(3)
	case gesture.ErrLooseKnot:
		// Insufficient tightening: motion slows and stops short.
		inj.onset = frames / 3
		inj.amp = 0.5 + rng.Float64()*0.3 // fraction of speed lost
	case gesture.ErrFailureToDropoff:
		// Grasper fails to open at the drop point.
		inj.onset = frames / 2
		inj.amp = 0.7 + rng.Float64()*0.2 // fraction of opening suppressed
	case gesture.ErrInstrumentForStability:
		// Leaning on tissue: sustained low-frequency position bias.
		inj.onset = frames / 5
		inj.amp = 0.008 + rng.Float64()*0.006
		inj.axis = 2
	default:
		return nil
	}
	inj.span = frames - inj.onset
	if inj.span < 2 {
		inj.span = 2
	}
	return inj
}

// apply evaluates the signature at frame i of the gesture, returning
// trajectory modifications:
//
//	warpU      — progress warp added to the normalized time u
//	posBiasR/L — Cartesian bias per manipulator
//	graspBiasR/L — grasper-angle bias
//	rotBias    — rotation-angle bias
//	speedMul   — rotation/motion speed multiplier
func (inj *errorInjection) apply(i, frames int) (warpU float64, posBiasR, posBiasL point, graspBiasR, graspBiasL, rotBias, speedMul float64) {
	speedMul = 1
	if i < inj.onset || i >= inj.onset+inj.span {
		return
	}
	t := float64(i-inj.onset) / float64(inj.span)
	// Attack-and-sustain envelope: the signature ramps in over the first
	// fifth of its span and then persists to the end of the gesture.
	env := 1.0
	if t < 0.2 {
		u := t / 0.2
		env = u * u * (3 - 2*u)
	}
	switch inj.mode {
	case gesture.ErrMultipleAttempts, gesture.ErrMultipleMoves:
		// retreat/re-approach oscillation in the progress variable
		warpU = -inj.amp * math.Abs(math.Sin(2*math.Pi*t/inj.period)) * env
	case gesture.ErrNeedleDrop:
		graspBiasR = inj.amp * env
		graspBiasL = inj.amp * env
	case gesture.ErrOutOfView:
		b := inj.amp * env
		posBiasR = axisPoint(inj.axis, b)
		posBiasL = axisPoint(inj.axis, b*0.6)
	case gesture.ErrNotAlongCurve:
		b := inj.amp * env * math.Sin(2*math.Pi*3*t)
		posBiasR = axisPoint(inj.axis, b)
		rotBias = 0.3 * env * math.Sin(2*math.Pi*5*t)
	case gesture.ErrLooseKnot:
		warpU = -inj.amp * t // stops short of full progress
		speedMul = 1 - inj.amp*env
	case gesture.ErrFailureToDropoff:
		// suppress the grasper opening that should happen in this phase
		graspBiasR = -inj.amp * env
		graspBiasL = -inj.amp * env
	case gesture.ErrInstrumentForStability:
		posBiasR = axisPoint(inj.axis, -inj.amp*env)
	}
	return
}

func axisPoint(axis int, v float64) point {
	switch axis {
	case 0:
		return point{x: v}
	case 1:
		return point{y: v}
	default:
		return point{z: v}
	}
}
