// Package synth generates synthetic dVRK-style surgical demonstrations that
// substitute for the JIGSAWS dataset (see DESIGN.md §2). Each gesture has a
// distinct kinematic prototype — anchor position, grasper-angle profile,
// rotation activity, velocity scale — and demonstrations follow the task's
// Markov-chain grammar with per-surgeon style and skill variability.
// Erroneous gestures inject the Table II failure-mode signatures.
package synth

import (
	"repro/internal/gesture"
)

// point is a 3-D workspace position (meters, dVRK task frame).
type point struct{ x, y, z float64 }

// prototype is the kinematic signature of one gesture class.
type prototype struct {
	// durMean / durStd parameterize the gesture duration in seconds.
	durMean, durStd float64
	// anchorRight / anchorLeft are the workspace targets each manipulator
	// moves toward during the gesture.
	anchorRight, anchorLeft point
	// rightActive / leftActive mark which manipulator does the work;
	// inactive arms hold position with micro-motion only.
	rightActive, leftActive bool
	// grasperRightStart/End and grasperLeftStart/End are grasper-angle
	// profiles (radians), interpolated across the gesture.
	grasperRightStart, grasperRightEnd float64
	grasperLeftStart, grasperLeftEnd   float64
	// rotRate is the magnitude of rotation activity (rad/s) about the
	// gesture's characteristic axis.
	rotRate float64
	// rotAxis selects the rotation axis: 0=x, 1=y, 2=z.
	rotAxis int
	// wiggle is the amplitude of periodic fine motion (meters),
	// characteristic of positioning gestures.
	wiggle float64
	// speed scales the velocity profile.
	speed float64
}

// Workspace anchor points shared across gestures (task frame, meters).
var (
	ptNeedle  = point{0.050, 0.020, 0.010} // needle pickup area (right side)
	ptNeedleL = point{-0.050, 0.020, 0.010}
	ptTissue  = point{0.010, -0.010, 0.005} // suturing site
	ptCenter  = point{0.000, 0.000, 0.020}
	ptPull    = point{-0.060, 0.030, 0.030} // suture pull end point
	ptEnd     = point{0.060, -0.040, 0.015} // task end points
	ptRest    = point{0.030, 0.040, 0.040}
	ptRestL   = point{-0.030, 0.040, 0.040}
)

// GrasperClosed and GrasperOpen are nominal grasper angles (radians) for a
// firmly closed and a fully opened instrument jaw.
const (
	GrasperClosed = 0.15
	GrasperOpen   = 1.10
)

// prototypes maps each gesture to its kinematic signature. The profiles are
// chosen so that gesture classes are separable in exactly the feature
// groups the paper uses (Cartesian, rotation, grasper angle, velocities)
// while remaining smooth, continuous motions.
var prototypes = map[gesture.Gesture]prototype{
	gesture.G1: { // reaching for needle with right hand
		durMean: 2.2, durStd: 0.5,
		anchorRight: ptNeedle, rightActive: true,
		grasperRightStart: GrasperOpen, grasperRightEnd: GrasperClosed,
		grasperLeftStart: GrasperClosed, grasperLeftEnd: GrasperClosed,
		rotRate: 0.3, rotAxis: 2, speed: 1.4,
	},
	gesture.G2: { // positioning needle
		durMean: 3.0, durStd: 0.8,
		anchorRight: ptTissue, rightActive: true,
		grasperRightStart: GrasperClosed, grasperRightEnd: GrasperClosed,
		grasperLeftStart: GrasperClosed, grasperLeftEnd: GrasperClosed,
		rotRate: 0.8, rotAxis: 2, wiggle: 0.004, speed: 0.6,
	},
	gesture.G3: { // pushing needle through the tissue
		durMean: 4.0, durStd: 1.0,
		anchorRight: point{ptTissue.x - 0.02, ptTissue.y - 0.005, ptTissue.z}, rightActive: true,
		grasperRightStart: GrasperClosed, grasperRightEnd: GrasperClosed,
		grasperLeftStart: GrasperClosed, grasperLeftEnd: GrasperClosed,
		rotRate: 1.2, rotAxis: 0, speed: 0.5,
	},
	gesture.G4: { // transferring needle from left to right
		durMean: 3.2, durStd: 0.7,
		anchorRight: ptCenter, anchorLeft: ptCenter,
		rightActive: true, leftActive: true,
		grasperRightStart: GrasperOpen, grasperRightEnd: GrasperClosed,
		grasperLeftStart: GrasperClosed, grasperLeftEnd: GrasperOpen,
		rotRate: 0.4, rotAxis: 1, speed: 0.9,
	},
	gesture.G5: { // moving to center with needle in grip
		durMean: 2.0, durStd: 0.5,
		anchorLeft: ptCenter, leftActive: true,
		grasperRightStart: GrasperClosed, grasperRightEnd: GrasperClosed,
		grasperLeftStart: GrasperClosed, grasperLeftEnd: GrasperClosed,
		rotRate: 0.2, rotAxis: 2, speed: 1.2,
	},
	gesture.G6: { // pulling suture with left hand
		durMean: 3.5, durStd: 0.9,
		anchorLeft: ptPull, leftActive: true,
		grasperRightStart: GrasperClosed, grasperRightEnd: GrasperClosed,
		grasperLeftStart: GrasperClosed, grasperLeftEnd: GrasperClosed,
		rotRate: 0.2, rotAxis: 1, speed: 1.8,
	},
	gesture.G8: { // orienting needle
		durMean: 2.8, durStd: 0.7,
		anchorRight: ptTissue, rightActive: true,
		grasperRightStart: GrasperClosed, grasperRightEnd: GrasperClosed,
		grasperLeftStart: GrasperClosed, grasperLeftEnd: GrasperClosed,
		rotRate: 2.0, rotAxis: 1, wiggle: 0.002, speed: 0.3,
	},
	gesture.G9: { // using right hand to help tighten suture
		durMean: 2.5, durStd: 0.6,
		anchorRight: point{0.030, -0.020, 0.025}, anchorLeft: point{-0.040, 0.020, 0.025},
		rightActive: true, leftActive: true,
		grasperRightStart: GrasperClosed, grasperRightEnd: GrasperClosed,
		grasperLeftStart: GrasperClosed, grasperLeftEnd: GrasperClosed,
		rotRate: 0.3, rotAxis: 0, speed: 1.5,
	},
	gesture.G10: { // loosening more suture
		durMean: 1.8, durStd: 0.5,
		anchorLeft: point{-0.020, 0.010, 0.030}, leftActive: true,
		grasperRightStart: GrasperClosed, grasperRightEnd: GrasperClosed,
		grasperLeftStart: GrasperClosed, grasperLeftEnd: 0.5,
		rotRate: 0.15, rotAxis: 2, speed: 0.4,
	},
	gesture.G11: { // dropping suture and moving to end points
		durMean: 2.4, durStd: 0.6,
		anchorRight: ptEnd, anchorLeft: point{-ptEnd.x, ptEnd.y, ptEnd.z},
		rightActive: true, leftActive: true,
		grasperRightStart: GrasperClosed, grasperRightEnd: GrasperOpen,
		grasperLeftStart: GrasperClosed, grasperLeftEnd: GrasperOpen,
		rotRate: 0.25, rotAxis: 2, speed: 1.3,
	},
	gesture.G12: { // reaching for needle with left hand
		durMean: 2.2, durStd: 0.5,
		anchorLeft: ptNeedleL, leftActive: true,
		grasperLeftStart: GrasperOpen, grasperLeftEnd: GrasperClosed,
		grasperRightStart: GrasperClosed, grasperRightEnd: GrasperClosed,
		rotRate: 0.3, rotAxis: 2, speed: 1.4,
	},
	gesture.G13: { // making C loop around right hand
		durMean: 3.4, durStd: 0.8,
		anchorLeft: ptCenter, leftActive: true,
		grasperLeftStart: GrasperClosed, grasperLeftEnd: GrasperClosed,
		grasperRightStart: GrasperClosed, grasperRightEnd: GrasperClosed,
		rotRate: 1.6, rotAxis: 2, wiggle: 0.008, speed: 0.8,
	},
	gesture.G14: { // reaching for suture with right hand
		durMean: 2.0, durStd: 0.5,
		anchorRight: point{0.040, -0.010, 0.020}, rightActive: true,
		grasperRightStart: GrasperOpen, grasperRightEnd: GrasperClosed,
		grasperLeftStart: GrasperClosed, grasperLeftEnd: GrasperClosed,
		rotRate: 0.3, rotAxis: 1, speed: 1.3,
	},
	gesture.G15: { // pulling suture with both hands
		durMean: 3.0, durStd: 0.8,
		anchorRight: point{0.060, 0.030, 0.030}, anchorLeft: point{-0.060, 0.030, 0.030},
		rightActive: true, leftActive: true,
		grasperRightStart: GrasperClosed, grasperRightEnd: GrasperClosed,
		grasperLeftStart: GrasperClosed, grasperLeftEnd: GrasperClosed,
		rotRate: 0.2, rotAxis: 0, speed: 1.7,
	},
}
