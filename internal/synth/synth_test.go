package synth

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gesture"
)

func smallConfig(task gesture.Task, seed int64) Config {
	return Config{
		Task: task, Hz: 30, Seed: seed,
		NumDemos: 6, NumTrials: 3, Subjects: 3, DurationScale: 0.3,
	}
}

func TestGenerateValidTrajectories(t *testing.T) {
	for _, task := range []gesture.Task{gesture.Suturing, gesture.KnotTying, gesture.NeedlePassing, gesture.BlockTransfer} {
		demos, err := Generate(smallConfig(task, 1))
		if err != nil {
			t.Fatalf("%v: %v", task, err)
		}
		if len(demos) != 6 {
			t.Fatalf("%v: got %d demos", task, len(demos))
		}
		for i, d := range demos {
			if err := d.Traj.Validate(); err != nil {
				t.Errorf("%v demo %d invalid: %v", task, i, err)
			}
			if err := d.Traj.FiniteCheck(); err != nil {
				t.Errorf("%v demo %d: %v", task, i, err)
			}
			if len(d.Traj.Gestures) != d.Traj.Len() || len(d.Traj.Unsafe) != d.Traj.Len() {
				t.Errorf("%v demo %d labels incomplete", task, i)
			}
		}
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(Config{}); err == nil {
		t.Error("expected ErrInvalidConfig")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig(gesture.Suturing, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig(gesture.Suturing, 7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("different demo counts")
	}
	for i := range a {
		if a[i].Traj.Len() != b[i].Traj.Len() {
			t.Fatalf("demo %d lengths differ", i)
		}
		for j := range a[i].Traj.Frames {
			if a[i].Traj.Frames[j] != b[i].Traj.Frames[j] {
				t.Fatalf("demo %d frame %d differs", i, j)
			}
		}
	}
}

func TestGesturesFollowTaskVocabulary(t *testing.T) {
	demos, err := Generate(smallConfig(gesture.BlockTransfer, 2))
	if err != nil {
		t.Fatal(err)
	}
	vocab := map[int]bool{}
	for _, g := range gesture.BlockTransfer.Vocabulary() {
		vocab[int(g)] = true
	}
	for _, d := range demos {
		for _, g := range d.Traj.Gestures {
			if !vocab[g] {
				t.Fatalf("gesture %d outside Block Transfer vocabulary", g)
			}
		}
	}
}

func TestBlockTransferSequenceDeterministic(t *testing.T) {
	// Figure 3b: every Block Transfer demo follows the same cycle.
	demos, err := Generate(smallConfig(gesture.BlockTransfer, 3))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 12, 6, 5, 11}
	for i, d := range demos {
		seq := d.Traj.GestureSequence()
		if len(seq) != len(want) {
			t.Fatalf("demo %d sequence %v", i, seq)
		}
		for j := range want {
			if seq[j] != want[j] {
				t.Fatalf("demo %d sequence %v", i, seq)
			}
		}
	}
}

func TestEventsMatchUnsafeLabels(t *testing.T) {
	cfg := smallConfig(gesture.Suturing, 4)
	cfg.ErrorRate = 0.5 // force plenty of errors
	demos, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sawEvent bool
	for _, d := range demos {
		for _, ev := range d.Events {
			sawEvent = true
			if ev.SegStart >= ev.SegEnd || ev.SegEnd > d.Traj.Len() {
				t.Fatalf("bad event bounds %+v", ev)
			}
			if ev.Onset < ev.SegStart || ev.Onset >= ev.SegEnd {
				t.Fatalf("onset outside segment: %+v", ev)
			}
			for i := ev.SegStart; i < ev.SegEnd; i++ {
				if !d.Traj.Unsafe[i] {
					t.Fatal("event frames not marked unsafe")
				}
				if d.Traj.Gestures[i] != int(ev.Gesture) {
					t.Fatal("event gesture label mismatch")
				}
			}
		}
		// Conversely, every unsafe frame must lie inside some event.
		for i, u := range d.Traj.Unsafe {
			if !u {
				continue
			}
			inside := false
			for _, ev := range d.Events {
				if i >= ev.SegStart && i < ev.SegEnd {
					inside = true
					break
				}
			}
			if !inside {
				t.Fatalf("unsafe frame %d outside all events", i)
			}
		}
	}
	if !sawEvent {
		t.Fatal("no error events generated at rate 0.5")
	}
}

func TestErrorRateControlsErrors(t *testing.T) {
	lo := smallConfig(gesture.Suturing, 5)
	lo.ErrorRate = 0.02
	hi := smallConfig(gesture.Suturing, 5)
	hi.ErrorRate = 0.6
	demosLo, _ := Generate(lo)
	demosHi, _ := Generate(hi)
	_, errLo := CountErroneousGestures(demosLo)
	_, errHi := CountErroneousGestures(demosHi)
	if errHi <= errLo {
		t.Errorf("error rate had no effect: lo=%d hi=%d", errLo, errHi)
	}
}

func TestSuturingGrammarTransitions(t *testing.T) {
	// Sampled sequences must only use transitions present in the grammar.
	g := suturingGrammar()
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 50; i++ {
		seq := SampleSequence(rng, gesture.Suturing)
		if len(seq) == 0 {
			t.Fatal("empty sequence")
		}
		if _, ok := g.start[seq[0]]; !ok {
			t.Fatalf("sequence starts at %v, not a start state", seq[0])
		}
		for j := 1; j < len(seq); j++ {
			if _, ok := g.transitions[seq[j-1]][seq[j]]; !ok {
				t.Fatalf("illegal transition %v -> %v", seq[j-1], seq[j])
			}
		}
	}
}

func TestSampleSequenceLengthBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := grammarFor(gesture.Suturing)
		seq := SampleSequence(rng, gesture.Suturing)
		return len(seq) >= 1 && len(seq) <= g.maxLen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTrajectoriesHelper(t *testing.T) {
	demos, _ := Generate(smallConfig(gesture.Suturing, 8))
	trajs := Trajectories(demos)
	if len(trajs) != len(demos) {
		t.Fatal("length mismatch")
	}
	for i := range trajs {
		if trajs[i] != demos[i].Traj {
			t.Fatal("trajectory pointer mismatch")
		}
	}
}

func TestSkillStrings(t *testing.T) {
	for _, s := range []Skill{Expert, Intermediate, Novice} {
		if s.String() == "" {
			t.Error("empty skill name")
		}
	}
	if Expert.errorProb() >= Novice.errorProb() {
		t.Error("experts must err less than novices")
	}
}

func TestTrialAndSubjectAssignment(t *testing.T) {
	cfg := smallConfig(gesture.Suturing, 9)
	cfg.NumDemos = 9
	cfg.NumTrials = 3
	demos, _ := Generate(cfg)
	trials := map[int]int{}
	for _, d := range demos {
		trials[d.Traj.Trial]++
		if d.Traj.Subject == "" {
			t.Error("missing subject tag")
		}
	}
	if len(trials) != 3 {
		t.Errorf("trials used: %v", trials)
	}
}

func TestPrototypesCoverAllVocabularies(t *testing.T) {
	for _, task := range []gesture.Task{gesture.Suturing, gesture.KnotTying, gesture.NeedlePassing, gesture.BlockTransfer} {
		for _, g := range task.Vocabulary() {
			if _, ok := prototypes[g]; !ok {
				t.Errorf("no prototype for %v (needed by %v)", g, task)
			}
		}
	}
}
