package mitigation

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/kinematics"
	"repro/internal/simulator"
	"repro/safemon"
	"repro/safemon/guard"
)

// smokeConfig is the tiny CI campaign behind `make mitigate-smoke`: the
// context-aware monitor plus the cascade that gates it, quick training, a
// handful of paired runs. Deterministic.
func smokeConfig() CampaignConfig {
	return CampaignConfig{
		Seed:               7,
		Hz:                 30,
		Backends:           []string{"context-aware", "cascade"},
		GroundTruthContext: true,
		TrainDemos:         6,
		TrainInjections:    12,
		EvalInjections:     8,
		FaultFreeEval:      4,
		Epochs:             4,
		TrainStride:        2,
	}
}

// TestMitigateSmoke is the closed-loop acceptance gate: on the injected
// suite each guarded backend — the context-aware monitor and the cascade
// that gates it behind the envelope front — must prevent at least one
// block-drop hazard the unguarded baseline suffers, and on fault-free
// trajectories it must never engage a stopping action.
func TestMitigateSmoke(t *testing.T) {
	cfg := smokeConfig()
	res, err := RunCampaign(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != len(cfg.Backends) {
		t.Fatalf("reports = %d, want %d", len(res.Reports), len(cfg.Backends))
	}
	t.Logf("\n%s", res.Render())
	for _, rep := range res.Reports {
		if rep.BaselineDrops == 0 {
			t.Fatalf("%s: no baseline block-drops: the eval fault band no longer causes hazards", rep.Backend)
		}
		if rep.Prevented == 0 {
			t.Errorf("%s: prevented = 0 of %d baseline drops; the loop is not closing", rep.Backend, rep.BaselineDrops)
		}
		if rep.FalseStops != 0 {
			t.Errorf("%s: false stops = %d on %d fault-free runs, want 0", rep.Backend, rep.FalseStops, rep.FaultFreeRuns)
		}
		if rep.FaultFreeRuns == 0 {
			t.Errorf("%s: no fault-free runs were evaluated", rep.Backend)
		}
		if rep.Prevented > 0 && rep.Stops == 0 {
			t.Errorf("%s: hazards were prevented without any stopping action: accounting is broken", rep.Backend)
		}
		if rep.Prevented+rep.Missed != rep.BaselineDrops {
			t.Errorf("%s: ledger does not balance: %d prevented + %d missed != %d baseline drops",
				rep.Backend, rep.Prevented, rep.Missed, rep.BaselineDrops)
		}
		if rep.Stops > 0 && rep.WithinBudget == 0 {
			t.Errorf("%s: no stop engaged within the policy's reaction budget", rep.Backend)
		}
	}
}

// TestCampaignDeterministic pins that the same config yields the same
// ledger — the property that makes the smoke gate meaningful in CI.
func TestCampaignDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := smokeConfig()
	cfg.Backends = []string{"envelope"} // cheap to fit twice
	a, err := RunCampaign(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCampaign(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a.Reports[0], b.Reports[0]
	ra.TrainSeconds, rb.TrainSeconds = 0, 0
	if !reflect.DeepEqual(ra, rb) {
		t.Errorf("campaign not deterministic:\n%+v\n%+v", ra, rb)
	}
}

// TestRunGuardedPassthroughMatchesOpenLoop pins that a guard that never
// fires leaves the closed loop bit-identical to World.Run: same executed
// trajectory, same outcome, on the same world seed.
func TestRunGuardedPassthroughMatchesOpenLoop(t *testing.T) {
	const hz = 30
	demo := simulator.CollectFaultFree(5, 2, 2, hz)[0]
	perturbed, _, _, err := faultinject.Inject(demo, faultinject.Fault{
		Variable: faultinject.GrasperAngle, Target: 1.4,
		StartFrac: 0.35, Duration: 0.5, Manipulator: kinematics.Left,
	})
	if err != nil {
		t.Fatal(err)
	}

	base := simulator.NewWorld(rand.New(rand.NewSource(3))).Run(perturbed, 0)

	// An impossible threshold: the guard observes but never acts.
	det := fittedEnvelope(t, demo)
	sess := guardedSession(t, det, perturbed.Gestures, guard.Policy{
		Name: "inert", Threshold: 1e18, DebounceFrames: 1, ReleaseFrames: 1,
	})
	res, err := RunGuarded(simulator.NewWorld(rand.New(rand.NewSource(3))), perturbed, sess, GuardedRunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped() || res.AlertFrame != -1 || len(res.Transitions) != 0 {
		t.Fatalf("inert guard acted: %+v", res)
	}
	if res.Result.Outcome != base.Outcome || res.Result.DropFrame != base.DropFrame {
		t.Errorf("outcome %v/%d vs open-loop %v/%d",
			res.Result.Outcome, res.Result.DropFrame, base.Outcome, base.DropFrame)
	}
	if !reflect.DeepEqual(res.Result.Traj, base.Traj) {
		t.Error("pass-through executed trajectory differs from open loop")
	}
}

// TestRunGuardedStopPreventsDrop drives the loop with a hair-trigger
// policy and a detector that flags the fault early, asserting the stop
// engages and the drop never happens.
func TestRunGuardedStopPreventsDrop(t *testing.T) {
	const hz = 30
	demos := simulator.CollectFaultFree(5, 3, 2, hz)
	// A short mid-carry jaw-open fault: the block drops far from the
	// receptacle, a clean block-drop hazard.
	perturbed, _, _, err := faultinject.Inject(demos[1], faultinject.Fault{
		Variable: faultinject.GrasperAngle, Target: 1.5,
		StartFrac: 0.35, Duration: 0.3, Manipulator: kinematics.Left,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := simulator.NewWorld(rand.New(rand.NewSource(8))).Run(perturbed, 0)
	if base.DropFrame < 0 {
		t.Fatalf("baseline = %v with no drop, want a grip-failure drop", base.Outcome)
	}

	det := fittedEnvelope(t, demos[0], demos[2])
	sess := guardedSession(t, det, perturbed.Gestures, guard.Policy{
		Name: "hair-trigger", Threshold: 0.2,
		DebounceFrames: 1, ReleaseFrames: 2, EscalateFrames: 1,
		InitialAction: guard.ActionPause, MaxAction: guard.ActionSafeStop,
	})
	res, err := RunGuarded(simulator.NewWorld(rand.New(rand.NewSource(8))), perturbed, sess, GuardedRunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped() {
		t.Fatalf("guard never stopped (alert frame %d)", res.AlertFrame)
	}
	if res.Result.DropFrame >= 0 {
		t.Errorf("guarded run still dropped the block at %d (stop at %d, alert at %d)",
			res.Result.DropFrame, res.FirstStopFrame, res.AlertFrame)
	}
	if res.AlertFrame < 0 || res.FirstStopFrame < res.AlertFrame {
		t.Errorf("stop at %d precedes alert at %d", res.FirstStopFrame, res.AlertFrame)
	}
	if res.StopAlertFrame < res.AlertFrame || res.FirstStopFrame < res.StopAlertFrame {
		t.Errorf("stop episode anchor %d outside [%d, %d]", res.StopAlertFrame, res.AlertFrame, res.FirstStopFrame)
	}
	if res.Counters.SafeStops+res.Counters.Pauses == 0 {
		t.Errorf("counters recorded no stops: %+v", res.Counters)
	}
}

// fittedEnvelope trains a per-gesture (ground-truth context) envelope on
// open-loop executions of the given fault-free demos — a cheap,
// deterministic detector fixture that flags a mid-carry jaw opening
// early, unlike the global envelope whose whole-task grasper range hides
// it.
func fittedEnvelope(t *testing.T, demos ...*kinematics.Trajectory) safemon.Detector {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	var trainSet []*kinematics.Trajectory
	for _, d := range demos {
		trainSet = append(trainSet, simulator.NewWorld(rng).Run(d, 0).Traj)
	}
	det, err := safemon.Open("envelope",
		safemon.WithErrorFeatures(safemon.CG()),
		safemon.WithEnvelopeMargin(0.5),
		safemon.WithGroundTruthContext(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Fit(context.Background(), trainSet); err != nil {
		t.Fatal(err)
	}
	return det
}

// guardedSession opens a guarded session or fails the test.
func guardedSession(t *testing.T, det safemon.Detector, labels []int, p guard.Policy) safemon.GuardedSession {
	t.Helper()
	sess, err := det.NewSession(safemon.WithSessionLabels(labels), safemon.WithGuard(p))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sess.Close() })
	gs, ok := sess.(safemon.GuardedSession)
	if !ok {
		t.Fatalf("session %T is not guarded", sess)
	}
	return gs
}
