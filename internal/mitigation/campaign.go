package mitigation

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/faultinject"
	"repro/internal/gesture"
	"repro/internal/kinematics"
	"repro/internal/simulator"
	"repro/safemon"
	"repro/safemon/guard"
)

// CampaignConfig controls a simulator-in-the-loop reaction campaign: the
// fault-injection suite replayed twice per injection — open loop
// (unguarded baseline) and closed loop (guarded) — over identical worlds,
// so the only difference between the two runs is the mitigation.
type CampaignConfig struct {
	// Seed drives every random choice (demos, faults, world physics);
	// campaigns are bit-reproducible.
	Seed int64
	// Hz is the command rate and the monitor rate: the closed loop runs
	// the detector at simulation rate (default 30).
	Hz float64
	// Backends are the detector backends to campaign (default
	// context-aware, cascade and envelope — the paper's headline
	// contrast plus the gated variant of its monitor).
	Backends []string
	// Policy is the guard policy every backend runs (zero value: the
	// campaign default, see CampaignPolicy).
	Policy guard.Policy
	// GroundTruthContext selects the paper's perfect-boundary mode for
	// backends that support it; the command stream's gesture labels are
	// forwarded to every session either way.
	GroundTruthContext bool
	// TrainDemos fault-free demonstrations are executed open loop and
	// used (plus TrainInjections injected runs) to fit each backend
	// (default 8).
	TrainDemos int
	// TrainInjections injected executed runs are added to the training
	// set (default 24).
	TrainInjections int
	// EvalInjections is the number of paired baseline/guarded injection
	// runs per backend (default 24).
	EvalInjections int
	// FaultFreeEval is the number of held-out fault-free guarded runs
	// per backend, the false-stop denominator (default 6).
	FaultFreeEval int
	// Epochs / TrainStride override training effort (quick campaigns).
	Epochs      int
	TrainStride int
	// Threshold is the detector-side alert threshold (default 0.5).
	Threshold float64
	// Verbose receives progress lines when non-nil.
	Verbose func(string)
}

func (c CampaignConfig) withDefaults() CampaignConfig {
	if c.Hz <= 0 {
		c.Hz = 30
	}
	if len(c.Backends) == 0 {
		c.Backends = []string{"context-aware", "cascade", "envelope"}
	}
	if c.Policy.Threshold == 0 && c.Policy.Name == "" {
		c.Policy = CampaignPolicy()
	}
	if c.TrainDemos <= 0 {
		c.TrainDemos = 8
	}
	if c.TrainInjections <= 0 {
		c.TrainInjections = 24
	}
	if c.EvalInjections <= 0 {
		c.EvalInjections = 24
	}
	if c.FaultFreeEval <= 0 {
		c.FaultFreeEval = 6
	}
	if c.Threshold <= 0 {
		c.Threshold = 0.5
	}
	return c
}

// CampaignPolicy is the campaign's reference guard policy: a 12-frame
// warmup (the window-10 monitors score on partial windows at stream
// start), confirm after 2 consecutive evidence frames, escalate one rung
// per further evidence frame up to SafeStop, panic on near-certain
// scores, and budget 10 frames (333 ms at 30 Hz) from alert to stop.
//
// The thresholds are context-aware: the strict default applies to the
// carry gestures where a jaw fault drops the block, while the pre-grasp
// reach gestures (G2, G12 — no block held, and their error heads train
// without unsafe examples in this task) and the intentional G11 jaw
// opening require near-certain evidence.
func CampaignPolicy() guard.Policy {
	return guard.Policy{
		Name:      "mitigate-default",
		Threshold: 0.5,
		GestureThresholds: map[int]float64{
			int(gesture.G2):  0.9,
			int(gesture.G12): 0.9,
			int(gesture.G11): 0.8,
		},
		WarmupFrames:         12,
		DebounceFrames:       2,
		ReleaseFrames:        6,
		EscalateFrames:       1,
		InitialAction:        guard.ActionWarn,
		MaxAction:            guard.ActionSafeStop,
		PanicScore:           0.95,
		ReactionBudgetFrames: 10,
	}
}

// BackendReport aggregates one backend's campaign outcome — the
// prevented / missed / false-stop ledger of the closed loop.
type BackendReport struct {
	Backend      string
	TrainSeconds float64

	// Injections is the number of paired eval runs; BaselineDrops of
	// them suffered a block-drop hazard open loop.
	Injections    int
	BaselineDrops int
	// Prevented counts baseline block-drops the guarded twin avoided;
	// Missed counts those it suffered anyway.
	Prevented int
	Missed    int
	// Stops counts guarded injection runs on which a stopping action
	// engaged; Alerts counts those with any confirmed alert.
	Stops  int
	Alerts int

	// FaultFreeRuns guarded fault-free runs produced FalseStops stopping
	// actions and FalseAlerts confirmed alerts.
	FaultFreeRuns int
	FalseStops    int
	FalseAlerts   int

	// WarningMS are detection-to-hazard latencies: the gap between the
	// first confirmed alert and the baseline twin's drop frame, in ms
	// (negative = the alert came after the hazard instant). One entry
	// per baseline drop with a guarded alert.
	WarningMS []float64
	// StopLatencyFrames are alert→stop gaps on guarded runs that
	// stopped; WithinBudget counts those within the policy's
	// ReactionBudgetFrames.
	StopLatencyFrames []int
	WithinBudget      int
}

// PreventedRate is the fraction of baseline hazards the guard prevented.
func (r *BackendReport) PreventedRate() float64 {
	if r.BaselineDrops == 0 {
		return 0
	}
	return float64(r.Prevented) / float64(r.BaselineDrops)
}

// CampaignResult is the full reaction-campaign outcome.
type CampaignResult struct {
	Hz      float64
	Policy  guard.Policy
	Reports []BackendReport
}

// RunCampaign executes the reaction campaign. Everything is derived from
// cfg.Seed: the same config always produces the same ledger.
func RunCampaign(ctx context.Context, cfg CampaignConfig) (*CampaignResult, error) {
	cfg = cfg.withDefaults()
	// Resolve the policy exactly as the engines will run it, so the
	// budget accounting and the rendered header report the effective
	// knobs, not zero-valued ones — and an invalid policy fails here,
	// not on the first session open.
	eng, err := guard.NewEngine(cfg.Policy)
	if err != nil {
		return nil, fmt.Errorf("mitigation: %w", err)
	}
	cfg.Policy = eng.Policy()
	logf := func(format string, args ...any) {
		if cfg.Verbose != nil {
			cfg.Verbose(fmt.Sprintf(format, args...))
		}
	}

	// Fault-free command streams: the first TrainDemos train, the rest
	// are the held-out false-stop probes.
	demos := simulator.CollectFaultFree(cfg.Seed+1, cfg.TrainDemos+cfg.FaultFreeEval, 2, cfg.Hz)
	trainDemos := demos[:cfg.TrainDemos]
	probeDemos := demos[cfg.TrainDemos:]

	// Executed training set: open-loop runs of the fault-free demos plus
	// injected runs, all at monitor rate with command-side safety labels.
	trainSet, err := buildTrainSet(cfg, trainDemos)
	if err != nil {
		return nil, err
	}
	logf("training set: %d executed runs (%d fault-free, %d injected) at %.0f Hz",
		len(trainSet), len(trainDemos), cfg.TrainInjections, cfg.Hz)

	// Pre-sample the eval faults once so every backend faces the same
	// injection suite over the same worlds.
	evalRng := rand.New(rand.NewSource(cfg.Seed + 3))
	type evalCase struct {
		perturbed *kinematics.Trajectory
		worldSeed int64
	}
	evalCases := make([]evalCase, 0, cfg.EvalInjections)
	for k := 0; k < cfg.EvalInjections; k++ {
		demo := trainDemos[evalRng.Intn(len(trainDemos))]
		perturbed, err := injectFault(evalRng, demo, evalFault(evalRng))
		if err != nil {
			return nil, err
		}
		evalCases = append(evalCases, evalCase{perturbed: perturbed, worldSeed: cfg.Seed*10007 + int64(k)})
	}

	res := &CampaignResult{Hz: cfg.Hz, Policy: cfg.Policy}
	for _, backend := range cfg.Backends {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		det, err := campaignDetector(backend, cfg)
		if err != nil {
			return nil, err
		}
		logf("fitting %s on %d runs...", backend, len(trainSet))
		start := time.Now()
		if err := det.Fit(ctx, trainSet); err != nil {
			return nil, fmt.Errorf("mitigation: fit %s: %w", backend, err)
		}
		rep := BackendReport{Backend: backend, TrainSeconds: time.Since(start).Seconds()}

		// Paired injection runs: open loop vs. closed loop on identical
		// worlds — the only delta is the guard.
		for _, ec := range evalCases {
			baseline := simulator.NewWorld(rand.New(rand.NewSource(ec.worldSeed))).Run(ec.perturbed, 0)
			guarded, err := guardedRun(det, cfg, ec.perturbed, ec.worldSeed)
			if err != nil {
				return nil, fmt.Errorf("mitigation: %s guarded run: %w", backend, err)
			}
			rep.Injections++
			if guarded.AlertFrame >= 0 {
				rep.Alerts++
			}
			if guarded.Stopped() {
				rep.Stops++
				// Latency anchors on the stop's own episode: an earlier
				// warn that released must not inflate the gap.
				lat := guarded.FirstStopFrame - guarded.StopAlertFrame
				rep.StopLatencyFrames = append(rep.StopLatencyFrames, lat)
				if lat <= cfg.Policy.ReactionBudgetFrames {
					rep.WithinBudget++
				}
			}
			// A grip-failure drop (DropFrame >= 0) is the hazard,
			// whatever the landing spot classified as; an intentional
			// release (even at the wrong position) is not.
			if baseline.DropFrame >= 0 {
				rep.BaselineDrops++
				if guarded.Result.DropFrame >= 0 {
					rep.Missed++
				} else {
					rep.Prevented++
				}
				if guarded.AlertFrame >= 0 {
					warning := float64(baseline.DropFrame-guarded.AlertFrame) / cfg.Hz * 1000
					rep.WarningMS = append(rep.WarningMS, warning)
				}
			}
		}

		// Held-out fault-free runs: any stopping action is a false stop.
		for p, probe := range probeDemos {
			worldSeed := cfg.Seed*20011 + int64(p)
			guarded, err := guardedRun(det, cfg, probe, worldSeed)
			if err != nil {
				return nil, fmt.Errorf("mitigation: %s fault-free run: %w", backend, err)
			}
			rep.FaultFreeRuns++
			if guarded.Stopped() {
				rep.FalseStops++
			}
			if guarded.AlertFrame >= 0 {
				rep.FalseAlerts++
			}
		}
		logf("%s: %d/%d hazards prevented, %d false stops on %d fault-free runs",
			backend, rep.Prevented, rep.BaselineDrops, rep.FalseStops, rep.FaultFreeRuns)
		res.Reports = append(res.Reports, rep)
	}
	return res, nil
}

// buildTrainSet executes the fault-free demos plus sampled injections
// open loop, yielding the labeled training trajectories.
func buildTrainSet(cfg CampaignConfig, trainDemos []*kinematics.Trajectory) ([]*kinematics.Trajectory, error) {
	trainRng := rand.New(rand.NewSource(cfg.Seed + 2))
	var trainSet []*kinematics.Trajectory
	for _, demo := range trainDemos {
		world := simulator.NewWorld(trainRng)
		trainSet = append(trainSet, world.Run(demo, 0).Traj)
	}
	for k := 0; k < cfg.TrainInjections; k++ {
		demo := trainDemos[trainRng.Intn(len(trainDemos))]
		perturbed, err := injectFault(trainRng, demo, trainFault(trainRng))
		if err != nil {
			return nil, err
		}
		world := simulator.NewWorld(trainRng)
		trainSet = append(trainSet, world.Run(perturbed, 0).Traj)
	}
	return trainSet, nil
}

// campaignDetector builds an unfitted detector configured for Block
// Transfer monitoring at simulation rate.
func campaignDetector(backend string, cfg CampaignConfig) (safemon.Detector, error) {
	opts := []safemon.Option{
		safemon.WithThreshold(cfg.Threshold),
		safemon.WithSeed(cfg.Seed),
		safemon.WithFeatures(safemon.CG()),
		safemon.WithErrorFeatures(safemon.CG()),
		safemon.WithWindow(10),
	}
	if cfg.GroundTruthContext {
		opts = append(opts, safemon.WithGroundTruthContext())
	}
	if cfg.Epochs > 0 {
		opts = append(opts, safemon.WithEpochs(cfg.Epochs))
	}
	if cfg.TrainStride > 0 {
		opts = append(opts, safemon.WithTrainStride(cfg.TrainStride))
	}
	return safemon.Open(backend, opts...)
}

// guardedRun executes one closed-loop episode on a fresh world seeded
// identically to its open-loop twin.
func guardedRun(det safemon.Detector, cfg CampaignConfig, commands *kinematics.Trajectory, worldSeed int64) (*GuardedResult, error) {
	sess, err := det.NewSession(
		safemon.WithSessionLabels(commands.Gestures),
		safemon.WithGuard(cfg.Policy),
	)
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	gsess, ok := sess.(safemon.GuardedSession)
	if !ok {
		return nil, fmt.Errorf("mitigation: session is not guarded")
	}
	world := simulator.NewWorld(rand.New(rand.NewSource(worldSeed)))
	return RunGuarded(world, commands, gsess, GuardedRunConfig{})
}

// trainFault samples a training-set fault: the full hazard spectrum,
// including sub-critical targets, so detectors learn the boundary.
func trainFault(rng *rand.Rand) faultinject.Fault {
	return faultinject.Fault{
		Variable:    faultinject.GrasperAngle,
		Target:      0.85 + rng.Float64()*0.75, // 0.85 – 1.60 rad
		StartFrac:   faultinject.InjectionStartFrac,
		Duration:    0.50 + rng.Float64()*0.35,
		Manipulator: kinematics.Left,
	}
}

// evalFault samples an eval fault from the hazard-prone band (Table III's
// high-drop-rate cells), so the paired runs measure reaction, not luck.
func evalFault(rng *rand.Rand) faultinject.Fault {
	return faultinject.Fault{
		Variable:    faultinject.GrasperAngle,
		Target:      1.00 + rng.Float64()*0.55, // 1.00 – 1.55 rad
		StartFrac:   faultinject.InjectionStartFrac,
		Duration:    0.55 + rng.Float64()*0.30,
		Manipulator: kinematics.Left,
	}
}

// injectFault applies the grasper fault and, with 30% probability, a
// small Cartesian deviation on top (the paper's combined perturbations).
func injectFault(rng *rand.Rand, demo *kinematics.Trajectory, f faultinject.Fault) (*kinematics.Trajectory, error) {
	perturbed, _, _, err := faultinject.Inject(demo, f)
	if err != nil {
		return nil, err
	}
	if rng.Float64() < 0.3 {
		cf := faultinject.Fault{
			Variable:    faultinject.CartesianPosition,
			Target:      0.005 + rng.Float64()*0.02,
			StartFrac:   faultinject.InjectionStartFrac,
			Duration:    0.4 + rng.Float64()*0.2,
			Manipulator: kinematics.Left,
		}
		perturbed, _, _, err = faultinject.Inject(perturbed, cf)
		if err != nil {
			return nil, err
		}
	}
	return perturbed, nil
}

// quantile returns the q-th (0..1) sample quantile of xs (nearest rank),
// 0 when empty.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(q * float64(len(s)-1))
	return s[i]
}

// Render prints the campaign ledger, Table-style: one row per backend
// with the prevented / missed / false-stop counts and the
// detection-to-hazard latency quantiles.
func (r *CampaignResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Reaction campaign — policy %q (debounce %d, escalate %d, max %s, budget %d frames @ %.0f Hz)\n",
		r.Policy.Name, r.Policy.DebounceFrames, r.Policy.EscalateFrames,
		r.Policy.MaxAction, r.Policy.ReactionBudgetFrames, r.Hz)
	fmt.Fprintf(&b, "%-14s %5s %6s %9s %7s %6s %11s %11s %11s %10s %7s\n",
		"Backend", "#Inj", "Drops", "Prevented", "Missed", "Stops",
		"FalseStops", "Warn p50ms", "Warn p90ms", "Stop<=bud", "Fit(s)")
	for _, rep := range r.Reports {
		fmt.Fprintf(&b, "%-14s %5d %6d %4d (%3.0f%%) %7d %6d %6d/%-4d %11.0f %11.0f %6d/%-3d %7.1f\n",
			rep.Backend, rep.Injections, rep.BaselineDrops,
			rep.Prevented, 100*rep.PreventedRate(), rep.Missed, rep.Stops,
			rep.FalseStops, rep.FaultFreeRuns,
			quantile(rep.WarningMS, 0.50), quantile(rep.WarningMS, 0.90),
			rep.WithinBudget, rep.Stops, rep.TrainSeconds)
	}
	b.WriteString("Warn = detection-to-hazard latency (first alert to the unguarded twin's drop frame; larger = earlier warning).\n")
	b.WriteString("Stop<=bud = guarded stops engaged within the policy's reaction budget of the alert.\n")
	return b.String()
}
