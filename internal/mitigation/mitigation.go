// Package mitigation closes the loop between the safety monitor and the
// Block Transfer simulator: a guarded session's mitigation decisions
// (safemon/guard) are actuated into the command stream *while the
// simulated episode runs*, so a confirmed detection can prevent the
// hazard instead of merely annotating it. This is the paper's headline
// scenario made measurable — RunGuarded is one closed-loop episode, and
// the campaign (campaign.go) replays the fault-injection suite guarded
// vs. unguarded to count prevented / missed / false-stop outcomes and
// detection-to-hazard latencies per backend.
package mitigation

import (
	"fmt"
	"math"

	"repro/internal/kinematics"
	"repro/internal/simulator"
	"repro/safemon"
	"repro/safemon/guard"
)

// GuardedRunConfig tunes how mitigation actions are actuated into the
// simulator's command stream.
type GuardedRunConfig struct {
	// Manipulator is the actuated arm (default Left, the carrying arm).
	Manipulator kinematics.Manipulator
	// HoldAngle is the grasper clamp applied under SafeStop and Retract;
	// it must sit safely below the simulator's slip region (default 0.9 ×
	// simulator.HoldAngle).
	HoldAngle float64
	// RetractPose is where ActionRetract withdraws toward (default: a
	// hover pose above the block start).
	RetractPose [3]float64
	// RetractSpeed is the withdrawal speed in m/s (default 0.05).
	RetractSpeed float64
	// CameraFPS enables the virtual camera when > 0.
	CameraFPS float64
}

func (c GuardedRunConfig) withDefaults() GuardedRunConfig {
	if c.Manipulator == 0 {
		c.Manipulator = kinematics.Left
	}
	if c.HoldAngle <= 0 {
		c.HoldAngle = 0.9 * simulator.HoldAngle
	}
	if c.RetractPose == ([3]float64{}) {
		c.RetractPose = [3]float64{simulator.BlockStart[0], simulator.BlockStart[1], 0.04}
	}
	if c.RetractSpeed <= 0 {
		c.RetractSpeed = 0.05
	}
	return c
}

// Transition is one mitigation-level edge during a guarded run.
type Transition struct {
	// Frame is the kinematics frame at which the engine switched.
	Frame int
	// Action is the level in force from this frame on.
	Action guard.Action
	// Score is the verdict score that produced the edge.
	Score float64
}

// GuardedResult is the outcome of one closed-loop episode.
type GuardedResult struct {
	// Result is the simulator ground truth of the guarded run.
	Result *simulator.Result
	// AlertFrame is the first confirmed alert (-1 when the guard never
	// alerted).
	AlertFrame int
	// FirstStopFrame is the first frame on which a stopping action
	// (Pause or stronger) was decided, -1 when none engaged; actuation
	// begins on the following command frame (one-frame reaction latency).
	FirstStopFrame int
	// StopAlertFrame is the confirmed-alert frame of the episode that
	// produced the first stop (-1 when none engaged) — the anchor for
	// alert-to-stop latency. It can differ from AlertFrame when an
	// earlier episode warned and was released before the stop.
	StopAlertFrame int
	// MaxAction is the strongest level reached.
	MaxAction guard.Action
	// Transitions lists every mitigation edge in order.
	Transitions []Transition
	// Counters is the engine's activity over the run.
	Counters guard.Counters
}

// Stopped reports whether the guard interfered with the commanded motion.
func (r *GuardedResult) Stopped() bool { return r.FirstStopFrame >= 0 }

// RunGuarded executes one closed-loop episode: each command frame is
// (possibly) rewritten according to the mitigation level in force, the
// world executes it, the executed frame streams through the guarded
// session, and the session's decision governs the *next* frame — a
// one-frame sense→decide→act latency, the honest price of reacting.
//
// The session must have been opened with safemon.WithGuard (and
// WithSessionLabels when the backend needs ground-truth context). The
// world must be fresh; commands are not modified.
func RunGuarded(world *simulator.World, commands *kinematics.Trajectory, sess safemon.GuardedSession, cfg GuardedRunConfig) (*GuardedResult, error) {
	cfg = cfg.withDefaults()
	if commands.HzRate <= 0 {
		return nil, fmt.Errorf("mitigation: command stream has no sample rate")
	}
	dt := 1 / commands.HzRate
	res := &GuardedResult{AlertFrame: -1, FirstStopFrame: -1, StopAlertFrame: -1}

	ep := world.Begin(commands, cfg.CameraFPS)
	cur := guard.Decision{AlertFrame: -1}
	var frozen kinematics.Frame // pose captured when a stop engaged
	var prevExec kinematics.Frame
	havePrev := false

	for ep.More() {
		i := ep.Index()
		var override *kinematics.Frame
		if cur.Action.Stops() {
			f := commands.Frames[i] // copy; the original stream stays intact
			actuate(&f, cur.Action, &frozen, &prevExec, havePrev, dt, cfg)
			override = &f
		}
		ev := ep.Step(override)

		if _, err := sess.Push(ev.Executed); err != nil {
			return nil, fmt.Errorf("mitigation: frame %d: %w", i, err)
		}
		d := sess.Decision()
		if d.Changed {
			res.Transitions = append(res.Transitions, Transition{Frame: i, Action: d.Action, Score: d.Score})
			if d.Action.Stops() && !cur.Action.Stops() {
				// Capture the hold pose at the stop edge: the executed
				// frame the robot is actually at, not the (possibly
				// faulty) command.
				frozen = *ev.Executed
				if res.FirstStopFrame < 0 {
					res.FirstStopFrame = i
					res.StopAlertFrame = d.AlertFrame
				}
			}
		}
		if res.AlertFrame < 0 && d.AlertFrame >= 0 {
			res.AlertFrame = d.AlertFrame
		}
		if d.Action > res.MaxAction {
			res.MaxAction = d.Action
		}
		cur = d
		prevExec = *ev.Executed
		havePrev = true
	}
	res.Result = ep.Finish()
	res.Counters = sess.GuardCounters()
	return res, nil
}

// actuate rewrites one command frame according to the mitigation level.
// Pause holds the captured pose; SafeStop additionally clamps the grasper
// to the safe hold angle; Retract withdraws toward the retract pose with
// the grasper clamped. Linear velocity of the actuated arm is recomputed
// from the previous executed frame so the kinematic features stay
// self-consistent.
func actuate(f *kinematics.Frame, action guard.Action, frozen, prevExec *kinematics.Frame, havePrev bool, dt float64, cfg GuardedRunConfig) {
	m := cfg.Manipulator
	fx, fy, fz := frozen.Cartesian(m)
	switch action {
	case guard.ActionPause:
		f.SetCartesian(m, fx, fy, fz)
		f.SetGrasperAngle(m, frozen.GrasperAngle(m))
	case guard.ActionSafeStop:
		f.SetCartesian(m, fx, fy, fz)
		f.SetGrasperAngle(m, math.Min(frozen.GrasperAngle(m), cfg.HoldAngle))
	case guard.ActionRetract:
		// Move from the current pose toward the retract pose at the
		// configured speed, jaw clamped.
		cx, cy, cz := fx, fy, fz
		if havePrev {
			cx, cy, cz = prevExec.Cartesian(m)
		}
		dx, dy, dz := cfg.RetractPose[0]-cx, cfg.RetractPose[1]-cy, cfg.RetractPose[2]-cz
		dist := math.Sqrt(dx*dx + dy*dy + dz*dz)
		step := cfg.RetractSpeed * dt
		if dist > step && dist > 0 {
			scale := step / dist
			dx, dy, dz = dx*scale, dy*scale, dz*scale
		}
		f.SetCartesian(m, cx+dx, cy+dy, cz+dz)
		f.SetGrasperAngle(m, math.Min(frozen.GrasperAngle(m), cfg.HoldAngle))
	}
	if havePrev {
		px, py, pz := prevExec.Cartesian(m)
		nx, ny, nz := f.Cartesian(m)
		f.SetLinearVelocity(m, (nx-px)/dt, (ny-py)/dt, (nz-pz)/dt)
	} else {
		f.SetLinearVelocity(m, 0, 0, 0)
	}
}
