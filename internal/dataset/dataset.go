// Package dataset provides the data-preparation machinery between raw
// kinematic trajectories and neural-network training samples: sliding-window
// extraction (Equation 2 of the paper), leave-one-supertrial-out (LOSO)
// splitting, per-gesture sample grouping, and class balancing.
package dataset

import (
	"errors"
	"math/rand"

	"repro/internal/kinematics"
)

// ErrBadWindow is returned for non-positive window or stride values.
var ErrBadWindow = errors.New("dataset: window and stride must be positive")

// Window is one sliding-window sample cut from a trajectory: a [T][D]
// feature matrix plus the labels at its final frame (the classification
// instant in the online monitor).
type Window struct {
	X [][]float64
	// Gesture is the gesture label at the window's last frame.
	Gesture int
	// Unsafe is the safety label at the window's last frame.
	Unsafe bool
	// TrajIndex and FrameIndex locate the window's final frame for
	// timeliness (jitter / reaction-time) analysis.
	TrajIndex  int
	FrameIndex int
}

// Config controls window extraction.
type Config struct {
	// Features selects the kinematic variable subset.
	Features kinematics.FeatureSet
	// Size is the window length w in frames.
	Size int
	// Stride is the hop s between consecutive windows.
	Stride int
	// Standardizer, when non-nil, is applied to every frame's features.
	Standardizer *kinematics.Standardizer
}

// SlideTrajectory cuts sliding windows from one trajectory. trajIndex tags
// the produced windows. Trajectories shorter than the window yield nothing.
func SlideTrajectory(t *kinematics.Trajectory, trajIndex int, cfg Config) ([]Window, error) {
	if cfg.Size <= 0 || cfg.Stride <= 0 {
		return nil, ErrBadWindow
	}
	feat := cfg.Features.Matrix(t)
	if cfg.Standardizer != nil {
		cfg.Standardizer.TransformAll(feat)
	}
	var out []Window
	hasG := len(t.Gestures) == len(t.Frames)
	hasU := len(t.Unsafe) == len(t.Frames)
	for end := cfg.Size - 1; end < len(feat); end += cfg.Stride {
		w := Window{
			X:          feat[end-cfg.Size+1 : end+1],
			TrajIndex:  trajIndex,
			FrameIndex: end,
		}
		if hasG {
			w.Gesture = t.Gestures[end]
		}
		if hasU {
			w.Unsafe = t.Unsafe[end]
		}
		out = append(out, w)
	}
	return out, nil
}

// Slide cuts sliding windows from every trajectory.
func Slide(trajs []*kinematics.Trajectory, cfg Config) ([]Window, error) {
	var out []Window
	for i, t := range trajs {
		ws, err := SlideTrajectory(t, i, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, ws...)
	}
	return out, nil
}

// FitStandardizer fits a standardizer on the selected features of the
// training trajectories.
func FitStandardizer(trajs []*kinematics.Trajectory, features kinematics.FeatureSet) *kinematics.Standardizer {
	var rows [][]float64
	for _, t := range trajs {
		rows = append(rows, features.Matrix(t)...)
	}
	return kinematics.FitStandardizer(rows)
}

// LOSOSplit partitions trajectories into leave-one-supertrial-out folds:
// fold i holds out every trajectory whose Trial == trials[i]. This mirrors
// the JIGSAWS LOSO setup ("trained on 4 super trials and held one super
// trial out").
type LOSOSplit struct {
	Trial int
	Train []*kinematics.Trajectory
	Test  []*kinematics.Trajectory
}

// LOSO builds the folds. Trajectories are grouped by their Trial field.
func LOSO(trajs []*kinematics.Trajectory) []LOSOSplit {
	trialSet := map[int]bool{}
	for _, t := range trajs {
		trialSet[t.Trial] = true
	}
	trials := make([]int, 0, len(trialSet))
	for tr := range trialSet {
		trials = append(trials, tr)
	}
	// deterministic order
	for i := 0; i < len(trials); i++ {
		for j := i + 1; j < len(trials); j++ {
			if trials[j] < trials[i] {
				trials[i], trials[j] = trials[j], trials[i]
			}
		}
	}
	folds := make([]LOSOSplit, 0, len(trials))
	for _, tr := range trials {
		fold := LOSOSplit{Trial: tr}
		for _, t := range trajs {
			if t.Trial == tr {
				fold.Test = append(fold.Test, t)
			} else {
				fold.Train = append(fold.Train, t)
			}
		}
		folds = append(folds, fold)
	}
	return folds
}

// ByGesture groups windows by their gesture label.
func ByGesture(ws []Window) map[int][]Window {
	out := map[int][]Window{}
	for _, w := range ws {
		out[w.Gesture] = append(out[w.Gesture], w)
	}
	return out
}

// CountUnsafe returns how many windows are labeled unsafe.
func CountUnsafe(ws []Window) int {
	n := 0
	for _, w := range ws {
		if w.Unsafe {
			n++
		}
	}
	return n
}

// HoldoutSplit splits windows into train/validation subsets with the given
// validation fraction, shuffled by rng. It backs early stopping.
func HoldoutSplit(ws []Window, valFrac float64, rng *rand.Rand) (train, val []Window) {
	if valFrac <= 0 || len(ws) < 4 {
		return ws, nil
	}
	idx := rng.Perm(len(ws))
	nVal := int(float64(len(ws)) * valFrac)
	if nVal < 1 {
		nVal = 1
	}
	val = make([]Window, 0, nVal)
	train = make([]Window, 0, len(ws)-nVal)
	for i, j := range idx {
		if i < nVal {
			val = append(val, ws[j])
		} else {
			train = append(train, ws[j])
		}
	}
	return train, val
}

// BalanceWeights computes per-class weights inversely proportional to class
// frequency over binary unsafe labels, returning (safeWeight, unsafeWeight).
// Classes absent from the data get weight 1.
func BalanceWeights(ws []Window) (safeW, unsafeW float64) {
	nUnsafe := CountUnsafe(ws)
	nSafe := len(ws) - nUnsafe
	if nSafe == 0 || nUnsafe == 0 {
		return 1, 1
	}
	total := float64(len(ws))
	return total / (2 * float64(nSafe)), total / (2 * float64(nUnsafe))
}
