package dataset

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/kinematics"
)

func makeTraj(n, trial int) *kinematics.Trajectory {
	tr := &kinematics.Trajectory{HzRate: 30, Trial: trial}
	for i := 0; i < n; i++ {
		var f kinematics.Frame
		f.SetCartesian(kinematics.Left, float64(i), 0, 0)
		tr.Frames = append(tr.Frames, f)
		tr.Gestures = append(tr.Gestures, 1+i%3)
		tr.Unsafe = append(tr.Unsafe, i%5 == 0)
	}
	return tr
}

func TestSlideTrajectoryShapes(t *testing.T) {
	tr := makeTraj(20, 0)
	ws, err := SlideTrajectory(tr, 3, Config{Features: kinematics.CG(), Size: 5, Stride: 2})
	if err != nil {
		t.Fatal(err)
	}
	// windows end at frames 4,6,8,...,18 -> 8 windows
	if len(ws) != 8 {
		t.Fatalf("got %d windows, want 8", len(ws))
	}
	for _, w := range ws {
		if len(w.X) != 5 || len(w.X[0]) != kinematics.CG().Dim() {
			t.Fatalf("window shape [%d][%d]", len(w.X), len(w.X[0]))
		}
		if w.TrajIndex != 3 {
			t.Fatalf("traj index %d", w.TrajIndex)
		}
		if w.Gesture != tr.Gestures[w.FrameIndex] || w.Unsafe != tr.Unsafe[w.FrameIndex] {
			t.Fatal("labels not taken from final frame")
		}
	}
}

func TestSlideRejectsBadConfig(t *testing.T) {
	tr := makeTraj(10, 0)
	if _, err := SlideTrajectory(tr, 0, Config{Features: kinematics.CG(), Size: 0, Stride: 1}); err == nil {
		t.Error("expected ErrBadWindow")
	}
	if _, err := SlideTrajectory(tr, 0, Config{Features: kinematics.CG(), Size: 5, Stride: 0}); err == nil {
		t.Error("expected ErrBadWindow")
	}
}

func TestSlideShortTrajectory(t *testing.T) {
	tr := makeTraj(3, 0)
	ws, err := SlideTrajectory(tr, 0, Config{Features: kinematics.CG(), Size: 5, Stride: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 0 {
		t.Errorf("short trajectory yielded %d windows", len(ws))
	}
}

func TestSlideWindowCountProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(100)
		size := 1 + rng.Intn(10)
		stride := 1 + rng.Intn(5)
		tr := makeTraj(n, 0)
		ws, err := SlideTrajectory(tr, 0, Config{Features: kinematics.CG(), Size: size, Stride: stride})
		if err != nil {
			return false
		}
		want := 0
		if n >= size {
			want = (n-size)/stride + 1
		}
		return len(ws) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLOSOFolds(t *testing.T) {
	var trajs []*kinematics.Trajectory
	for trial := 0; trial < 5; trial++ {
		for k := 0; k < 3; k++ {
			trajs = append(trajs, makeTraj(10, trial))
		}
	}
	folds := LOSO(trajs)
	if len(folds) != 5 {
		t.Fatalf("got %d folds, want 5", len(folds))
	}
	for _, fold := range folds {
		if len(fold.Test) != 3 || len(fold.Train) != 12 {
			t.Errorf("fold %d sizes: train %d test %d", fold.Trial, len(fold.Train), len(fold.Test))
		}
		for _, tr := range fold.Test {
			if tr.Trial != fold.Trial {
				t.Error("test trajectory from wrong trial")
			}
		}
		for _, tr := range fold.Train {
			if tr.Trial == fold.Trial {
				t.Error("held-out trial leaked into training")
			}
		}
	}
}

func TestByGestureAndCounts(t *testing.T) {
	tr := makeTraj(30, 0)
	ws, _ := SlideTrajectory(tr, 0, Config{Features: kinematics.CG(), Size: 1, Stride: 1})
	byG := ByGesture(ws)
	total := 0
	for _, group := range byG {
		total += len(group)
	}
	if total != len(ws) {
		t.Errorf("grouping lost windows: %d vs %d", total, len(ws))
	}
	if CountUnsafe(ws) != 6 { // frames 0,5,10,15,20,25
		t.Errorf("unsafe count %d, want 6", CountUnsafe(ws))
	}
}

func TestHoldoutSplit(t *testing.T) {
	tr := makeTraj(50, 0)
	ws, _ := SlideTrajectory(tr, 0, Config{Features: kinematics.CG(), Size: 1, Stride: 1})
	rng := rand.New(rand.NewSource(1))
	train, val := HoldoutSplit(ws, 0.2, rng)
	if len(train)+len(val) != len(ws) {
		t.Fatal("split lost windows")
	}
	if len(val) != 10 {
		t.Errorf("val size %d, want 10", len(val))
	}
	// zero fraction: everything in train
	train2, val2 := HoldoutSplit(ws, 0, rng)
	if len(val2) != 0 || len(train2) != len(ws) {
		t.Error("zero-fraction split must keep all data in train")
	}
}

func TestBalanceWeights(t *testing.T) {
	tr := makeTraj(50, 0)
	ws, _ := SlideTrajectory(tr, 0, Config{Features: kinematics.CG(), Size: 1, Stride: 1})
	safeW, unsafeW := BalanceWeights(ws)
	// 10 unsafe / 40 safe: unsafe weight must be 4x safe weight.
	if unsafeW/safeW < 3.9 || unsafeW/safeW > 4.1 {
		t.Errorf("weights safe=%v unsafe=%v", safeW, unsafeW)
	}
	// single-class data: both weights 1
	for i := range ws {
		ws[i].Unsafe = false
	}
	s2, u2 := BalanceWeights(ws)
	if s2 != 1 || u2 != 1 {
		t.Errorf("single-class weights = %v, %v", s2, u2)
	}
}

func TestFitStandardizerOnFeatures(t *testing.T) {
	trajs := []*kinematics.Trajectory{makeTraj(20, 0), makeTraj(20, 1)}
	std := FitStandardizer(trajs, kinematics.CG())
	if std.Dim() != kinematics.CG().Dim() {
		t.Errorf("standardizer dim %d", std.Dim())
	}
}
