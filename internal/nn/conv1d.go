package nn

import "math/rand"

// Conv1D is a one-dimensional convolution along the time axis with valid
// padding and stride 1: input [T][In] -> output [T-K+1][Out]. It is the
// building block of the 1D-CNN erroneous-gesture detectors (Tables V/VI).
type Conv1D struct {
	In, Out, K int

	Weight *Param // Out x K x In, row major
	Bias   *Param // Out

	// Qnt, when non-nil, carries int8 per-channel quantized weights used by
	// the scratch inference path only (see quant.go).
	Qnt *QuantWeights

	lastIn [][]float64
}

var _ Layer = (*Conv1D)(nil)

// NewConv1D constructs a Conv1D layer with kernel size k and
// Glorot-initialized weights.
func NewConv1D(rng *rand.Rand, in, out, k int) *Conv1D {
	c := &Conv1D{
		In:     in,
		Out:    out,
		K:      k,
		Weight: newParam("conv1d.W", out*k*in),
		Bias:   newParam("conv1d.b", out),
	}
	glorotInit(rng, c.Weight.W, in*k, out)
	return c
}

// Forward implements Layer. Inputs shorter than the kernel produce a single
// output step computed over the (zero-padded) available frames so that the
// layer degrades gracefully at stream start.
func (c *Conv1D) Forward(x [][]float64, train bool) [][]float64 {
	if train {
		c.lastIn = x
	}
	T := len(x)
	outT := T - c.K + 1
	if outT < 1 {
		outT = 1
	}
	out := seq(outT, c.Out)
	conv1dInto(out, x, c.Weight.W, c.Bias.W, c.Out, c.In, c.K)
	return out
}

// Backward implements Layer.
func (c *Conv1D) Backward(gradOut [][]float64) [][]float64 {
	T := len(c.lastIn)
	gradIn := seq(T, c.In)
	for t := range gradOut {
		for o := 0; o < c.Out; o++ {
			g := gradOut[t][o]
			if g == 0 {
				continue
			}
			c.Bias.G[o] += g
			for k := 0; k < c.K; k++ {
				ti := t + k
				if ti >= T {
					break
				}
				wRow := c.Weight.W[(o*c.K+k)*c.In : (o*c.K+k+1)*c.In]
				gRow := c.Weight.G[(o*c.K+k)*c.In : (o*c.K+k+1)*c.In]
				xt := c.lastIn[ti]
				gi := gradIn[ti]
				for i := 0; i < c.In; i++ {
					gRow[i] += g * xt[i]
					gi[i] += g * wRow[i]
				}
			}
		}
	}
	return gradIn
}

// Params implements Layer.
func (c *Conv1D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

// OutDim implements Layer.
func (c *Conv1D) OutDim(int) int { return c.Out }
