package nn

import (
	"fmt"
	"math/rand"
	"testing"
)

// The batched kernels and BatchPredictor claim bit-identity with the
// per-stream path: slot b of a batch must produce exactly (==, not a
// tolerance) the floats a lone Predictor produces for stream b. These
// tests pin that across random shapes, batch sizes 1–32, ragged windows
// (different T per stream, down to T=1), and post-Flatten short rows.

// batchSizes spans the gather-window regimes the serve shards dispatch:
// degenerate single-stream batches, partial tiles, and full batches.
var batchSizes = []int{1, 2, 3, 5, 8, 17, 32}

// raggedBatch builds B windows with per-stream lengths cycling over
// 1..maxT and, when short is set, some rows narrower than d (the
// post-Flatten stream-start case seqDenseInto zero-pads).
func raggedBatch(rng *rand.Rand, B, maxT, d int, short bool) [][][]float64 {
	xs := make([][][]float64, B)
	for b := range xs {
		T := 1 + (b*3)%maxT
		xs[b] = randSeq(rng, T, d)
		if short && b%2 == 1 {
			for t := range xs[b] {
				w := 1 + (b+t)%d
				xs[b][t] = xs[b][t][:w]
			}
		}
	}
	return xs
}

// flattenRows concatenates every stream's window rows into the flat row
// list the dense row kernels consume (what BatchPredictor's Forward does
// with its scratch).
func flattenRows(seqs [][][]float64) [][]float64 {
	var rows [][]float64
	for _, s := range seqs {
		rows = append(rows, s...)
	}
	return rows
}

func TestSeqDenseBatchMatchesPerStream(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, sh := range kernelShapes {
		for _, B := range batchSizes {
			for _, short := range []bool{false, true} {
				w := randVec(rng, sh.out*sh.in)
				bias := randVec(rng, sh.out)
				xs := raggedBatch(rng, B, 6, sh.in, short)
				want := make([][][]float64, B)
				got := make([][][]float64, B)
				for b := range xs {
					want[b] = randSeq(rng, len(xs[b]), sh.out)
					got[b] = randSeq(rng, len(xs[b]), sh.out)
					seqDenseInto(want[b], xs[b], w, bias, sh.out, sh.in)
				}
				denseRowsInto(flattenRows(got), flattenRows(xs), w, bias, sh.out, sh.in)
				for b := range xs {
					for t2 := range want[b] {
						for o := range want[b][t2] {
							if got[b][t2][o] != want[b][t2][o] {
								t.Fatalf("denseRowsInto %dx%d B=%d short=%v b=%d t=%d lane %d: %v != %v",
									sh.out, sh.in, B, short, b, t2, o, got[b][t2][o], want[b][t2][o])
							}
						}
					}
				}
			}
		}
	}
}

// refQuantSeqDense is the scalar per-lane quantized loop: raw int8 dot
// product accumulated input-index-ascending, channel scale applied once.
func refQuantSeqDense(out, x [][]float64, q []int8, scale, bias []float64, outDim, inDim int) {
	for t := range x {
		xt := x[t]
		if len(xt) > inDim {
			xt = xt[:inDim]
		}
		for o := 0; o < outDim; o++ {
			row := q[o*inDim : (o+1)*inDim]
			var s float64
			for i, xi := range xt {
				s += float64(row[i]) * xi
			}
			out[t][o] = bias[o] + scale[o]*s
		}
	}
}

// refQuantConv1d mirrors conv1dQuantInto's contract with scalar loops:
// raw taps in ascending k, then bias + scale.
func refQuantConv1d(out, x [][]float64, q []int8, scale, bias []float64, outDim, inDim, K int) {
	T := len(x)
	for t := range out {
		for o := 0; o < outDim; o++ {
			var s float64
			for k := 0; k < K; k++ {
				ti := t + k
				if ti >= T {
					break
				}
				row := q[(o*K+k)*inDim : (o*K+k+1)*inDim]
				for i, xi := range x[ti] {
					s += float64(row[i]) * xi
				}
			}
			out[t][o] = bias[o] + scale[o]*s
		}
	}
}

func randQuant(rng *rand.Rand, rows, cols int) *QuantWeights {
	return quantizeRows(randVec(rng, rows*cols), rows, cols)
}

func TestQuantKernelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, sh := range kernelShapes {
		qw := randQuant(rng, sh.out, sh.in)
		bias := randVec(rng, sh.out)
		for _, T := range []int{1, 2, 5, 10} {
			x := randSeq(rng, T, sh.in)
			want := randSeq(rng, T, sh.out)
			got := randSeq(rng, T, sh.out)
			refQuantSeqDense(want, x, qw.Q, qw.Scale, bias, sh.out, sh.in)
			seqDenseQuantInto(got, x, qw.Q, qw.Scale, bias, sh.out, sh.in)
			for t2 := 0; t2 < T; t2++ {
				for o := range want[t2] {
					if got[t2][o] != want[t2][o] {
						t.Fatalf("seqDenseQuantInto %dx%d T=%d t=%d lane %d: %v != %v",
							sh.out, sh.in, T, t2, o, got[t2][o], want[t2][o])
					}
				}
			}
		}
		for _, K := range []int{1, 2, 3, 5} {
			qc := randQuant(rng, sh.out, K*sh.in)
			for _, T := range []int{1, 2, 5, 10} {
				x := randSeq(rng, T, sh.in)
				outT := T - K + 1
				if outT < 1 {
					outT = 1
				}
				want := randSeq(rng, outT, sh.out)
				got := randSeq(rng, outT, sh.out)
				refQuantConv1d(want, x, qc.Q, qc.Scale, bias, sh.out, sh.in, K)
				conv1dQuantInto(got, x, qc.Q, qc.Scale, bias, sh.out, sh.in, K)
				for t2 := range want {
					for o := range want[t2] {
						if got[t2][o] != want[t2][o] {
							t.Fatalf("conv1dQuantInto %dx%d K=%d T=%d t=%d lane %d: %v != %v",
								sh.out, sh.in, K, T, t2, o, got[t2][o], want[t2][o])
						}
					}
				}
			}
		}
	}
}

func TestSeqDenseQuantBatchMatchesPerStream(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, sh := range kernelShapes {
		qw := randQuant(rng, sh.out, sh.in)
		bias := randVec(rng, sh.out)
		for _, B := range batchSizes {
			xs := raggedBatch(rng, B, 6, sh.in, true)
			want := make([][][]float64, B)
			got := make([][][]float64, B)
			for b := range xs {
				want[b] = randSeq(rng, len(xs[b]), sh.out)
				got[b] = randSeq(rng, len(xs[b]), sh.out)
				seqDenseQuantInto(want[b], xs[b], qw.Q, qw.Scale, bias, sh.out, sh.in)
			}
			denseRowsQuantInto(flattenRows(got), flattenRows(xs), qw.Q, qw.Scale, bias, sh.out, sh.in)
			for b := range xs {
				for t2 := range want[b] {
					for o := range want[b][t2] {
						if got[b][t2][o] != want[b][t2][o] {
							t.Fatalf("denseRowsQuantInto %dx%d B=%d b=%d t=%d lane %d: %v != %v",
								sh.out, sh.in, B, b, t2, o, got[b][t2][o], want[b][t2][o])
						}
					}
				}
			}
		}
	}
}

// TestBatchPredictorMatchesPredictor pins slot-level bit-identity through
// whole networks — every model family, float and quantized, ragged batch
// lengths down to a single frame.
func TestBatchPredictorMatchesPredictor(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for name, tc := range testNets(rng) {
		for _, quant := range []bool{false, true} {
			label := name
			if quant {
				label += "-int8"
				tc.net.Quantize()
			}
			t.Run(label, func(t *testing.T) {
				ref := tc.net.NewPredictor(tc.maxT, tc.dim)
				for _, B := range batchSizes {
					bp := tc.net.NewBatchPredictor(B, tc.maxT, tc.dim)
					xs := raggedBatch(rng, B, tc.maxT, tc.dim, false)
					probs := bp.Predict(xs)
					for b := range xs {
						want := ref.Predict(xs[b])
						for i := range want {
							if probs[b][i] != want[i] {
								t.Fatalf("B=%d slot %d class %d: %v != %v", B, b, i, probs[b][i], want[i])
							}
						}
					}
					classes := bp.PredictClass(xs)
					for b := range xs {
						if want := ref.PredictClass(xs[b]); classes[b] != want {
							t.Fatalf("B=%d slot %d class: %d != %d", B, b, classes[b], want)
						}
					}
				}
			})
		}
	}
}

// TestBatchPredictorZeroAlloc extends the warm zero-allocation guarantee
// to the batched path.
func TestBatchPredictorZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for name, tc := range testNets(rng) {
		t.Run(name, func(t *testing.T) {
			const B = 8
			bp := tc.net.NewBatchPredictor(B, tc.maxT, tc.dim)
			xs := raggedBatch(rng, B, tc.maxT, tc.dim, false)
			bp.Predict(xs)
			bp.PredictClass(xs)
			if avg := testing.AllocsPerRun(100, func() {
				bp.Predict(xs)
				bp.PredictClass(xs)
			}); avg != 0 {
				t.Fatalf("warm BatchPredictor allocates %.1f/run, want 0", avg)
			}
		})
	}
}

func TestQuantizeIdempotentAndDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	net := BuildConv1D(rng, Conv1DConfig{
		InputDim: 14, ConvUnits: []int{24, 12}, KernelSize: 3,
		DenseUnits: 12, NumClasses: 2, Dropout: 0.1,
	})
	net.Quantize()
	if !net.Quantized() {
		t.Fatal("Quantize left no quantized layers")
	}
	var first []*QuantWeights
	for _, l := range net.Layers {
		switch v := l.(type) {
		case *Dense:
			first = append(first, v.Qnt)
		case *Conv1D:
			first = append(first, v.Qnt)
		}
	}
	net.Quantize() // idempotent: must not replace existing tensors
	i := 0
	for _, l := range net.Layers {
		switch v := l.(type) {
		case *Dense:
			if v.Qnt != first[i] {
				t.Fatal("re-Quantize replaced dense quant tensors")
			}
			i++
		case *Conv1D:
			if v.Qnt != first[i] {
				t.Fatal("re-Quantize replaced conv quant tensors")
			}
			i++
		}
	}
}

// BenchmarkBatchForwardDense measures the batching payoff on a paper-scale
// dense model (360 -> 512 -> 512 -> 2, ~2.8 MB of float64 weights): one
// BatchPredictor.Predict of B single-window streams per iteration. At this
// size the weight matrices dwarf cache, so the per-stream GEMV (B=1) is
// memory-bound streaming the weights once per stream, while the batched
// kernel loads each 4-lane weight tile once and applies it to all B
// streams. Divide ns/op by B for per-stream cost; BENCH_PR8.json records
// the B=1 vs B=16 ratio (acceptance floor: >= 3x).
func BenchmarkBatchForwardDense(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	build := func() *Network {
		return BuildMLP(rng, MLPConfig{InputDim: 360, Hidden: []int{512, 512}, NumClasses: 2})
	}
	float := build()
	quant := build()
	quant.Quantize()
	for _, v := range []struct {
		name string
		net  *Network
	}{{"float", float}, {"int8", quant}} {
		for _, B := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/B=%d", v.name, B), func(b *testing.B) {
				bp := v.net.NewBatchPredictor(B, 1, 360)
				xs := make([][][]float64, B)
				for i := range xs {
					xs[i] = [][]float64{randVec(rng, 360)}
				}
				bp.Predict(xs)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					bp.Predict(xs)
				}
			})
		}
	}
}
