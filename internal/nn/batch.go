package nn

import "math"

// BatchPredictor runs B streams' scratch inference through one shared
// network in a single pass per layer, so each weight tile is loaded from
// memory once per batch instead of once per stream — the cross-session
// micro-batch the serve shards dispatch for concurrent armed streams.
//
// Every stream occupies one slot with its own per-layer scratch, and the
// batched kernels preserve each stream's exact accumulation chains, so
// slot b's outputs are bit-identical to running that stream alone through
// a Predictor (the property pinned by batch_test.go). Like Predictor, a
// warm BatchPredictor performs zero heap allocations per call and is not
// safe for concurrent use: create one per batching goroutine.
type BatchPredictor struct {
	net     *Network
	slots   []*Predictor
	cur     [][][]float64
	outs    [][][]float64
	scrs    []*scratch
	rowsX   [][]float64 // flattened input rows for the dense row kernels
	rowsO   [][]float64 // matching output rows
	logits  [][]float64
	classes []int
}

// NewBatchPredictor builds a batched inference workspace for up to maxB
// concurrent windows of at most maxT timesteps with inDim input features.
func (n *Network) NewBatchPredictor(maxB, maxT, inDim int) *BatchPredictor {
	bp := &BatchPredictor{
		net:     n,
		slots:   make([]*Predictor, maxB),
		cur:     make([][][]float64, maxB),
		outs:    make([][][]float64, maxB),
		scrs:    make([]*scratch, maxB),
		rowsX:   make([][]float64, 0, maxB*maxT),
		rowsO:   make([][]float64, 0, maxB*maxT),
		logits:  make([][]float64, maxB),
		classes: make([]int, maxB),
	}
	for b := range bp.slots {
		bp.slots[b] = n.NewPredictor(maxT, inDim)
	}
	return bp
}

// MaxBatch returns the slot capacity the predictor was built with.
func (bp *BatchPredictor) MaxBatch() int { return len(bp.slots) }

// Forward runs the network on len(xs) windows (len(xs) ≤ maxB; windows may
// be ragged) and returns one final-logits row per window, nil for empty
// windows. Returned rows are slot scratch and are overwritten by the next
// call.
func (bp *BatchPredictor) Forward(xs [][][]float64) [][]float64 {
	B := len(xs)
	cur := bp.cur[:B]
	copy(cur, xs)
	for i, l := range bp.net.Layers {
		switch v := l.(type) {
		case *Dense:
			// Flatten every stream's window rows into one list so the row
			// kernels can pair rows across stream boundaries (the pairing
			// is what buys the batch its ILP and weight reuse).
			outs := bp.gatherOuts(cur, i)
			rowsX, rowsO := bp.rowsX[:0], bp.rowsO[:0]
			for b, x := range cur {
				ob := outs[b]
				for t := range x {
					rowsX = append(rowsX, x[t])
					rowsO = append(rowsO, ob[t])
				}
			}
			bp.rowsX, bp.rowsO = rowsX, rowsO
			if v.Qnt != nil {
				denseRowsQuantInto(rowsO, rowsX, v.Qnt.Q, v.Qnt.Scale, v.Bias.W, v.Out, v.In)
			} else {
				denseRowsInto(rowsO, rowsX, v.Weight.W, v.Bias.W, v.Out, v.In)
			}
			copy(cur, outs)
		case *LSTM:
			outs := bp.outs[:B]
			scrs := bp.scrs[:B]
			for b := range cur {
				scrs[b] = bp.slots[b].scr[i]
			}
			v.batchInfer(cur, outs, scrs)
			copy(cur, outs)
		case *Conv1D:
			// Per-stream conv calls back to back: the K·In weight rows stay
			// hot across consecutive streams without restructuring the
			// tap-ordered accumulation.
			for b, x := range cur {
				cur[b] = v.infer(x, bp.slots[b].scr[i])
			}
		default:
			for b, x := range cur {
				if il, ok := l.(inferable); ok {
					cur[b] = il.infer(x, bp.slots[b].scr[i])
				} else {
					cur[b] = l.Forward(x, false)
				}
			}
		}
	}
	logits := bp.logits[:B]
	for b, x := range cur {
		if len(x) == 0 {
			logits[b] = nil
		} else {
			logits[b] = x[len(x)-1]
		}
	}
	return logits
}

// gatherOuts points outs[b] at slot b's scratch rows for layer i, sized to
// stream b's current window length.
func (bp *BatchPredictor) gatherOuts(cur [][][]float64, i int) [][][]float64 {
	outs := bp.outs[:len(cur)]
	for b, x := range cur {
		outs[b] = bp.slots[b].scr[i].rows[:len(x)]
	}
	return outs
}

// Predict returns class probabilities per window, each row backed by that
// slot's probability buffer (overwritten by the next call).
func (bp *BatchPredictor) Predict(xs [][][]float64) [][]float64 {
	logits := bp.Forward(xs)
	for b, lg := range logits {
		logits[b] = SoftmaxInto(bp.slots[b].probs[:len(lg)], lg)
	}
	return logits
}

// PredictClass returns the argmax class per window. The returned slice is
// the predictor's own buffer and is overwritten by the next call.
func (bp *BatchPredictor) PredictClass(xs [][][]float64) []int {
	logits := bp.Forward(xs)
	classes := bp.classes[:len(logits)]
	for b, lg := range logits {
		classes[b] = Argmax(lg)
	}
	return classes
}

// batchInfer runs the LSTM over B ragged windows timestep-outer /
// stream-inner, so Wx and Wh stream through cache once per timestep for
// the whole batch rather than once per stream. Each stream's gate
// pre-activations and state updates use its own scratch in exactly the
// per-stream order, keeping outputs bit-identical to B infer calls.
func (l *LSTM) batchInfer(xs, outs [][][]float64, scrs []*scratch) {
	H := l.Hidden
	maxT := 0
	for b, x := range xs {
		if len(x) > maxT {
			maxT = len(x)
		}
		s := scrs[b]
		outs[b] = s.rows[:len(x)]
		h, c := s.a, s.b
		for j := 0; j < H; j++ {
			h[j], c[j] = 0, 0
		}
	}
	for t := 0; t < maxT; t++ {
		for b, x := range xs {
			if t >= len(x) {
				continue
			}
			s := scrs[b]
			h, c, pre := s.a, s.b, s.c
			l.gates(x[t], h, pre)
			out := outs[b][t]
			for j := 0; j < H; j++ {
				i := sigmoid(pre[j])
				f := sigmoid(pre[H+j])
				g := math.Tanh(pre[2*H+j])
				o := sigmoid(pre[3*H+j])
				cv := f*c[j] + i*g
				hv := o * math.Tanh(cv)
				c[j] = cv
				h[j] = hv
				out[j] = hv
			}
		}
	}
}
