package nn

import (
	"math"
	"math/rand"
)

// Dense is a fully connected layer applied independently to every timestep:
// y_t = W x_t + b.
type Dense struct {
	In, Out int
	Weight  *Param // Out x In, row major
	Bias    *Param // Out

	// Qnt, when non-nil, carries int8 per-channel quantized weights used by
	// the scratch inference path only (see quant.go). Float weights above
	// remain the source of truth for training and Forward.
	Qnt *QuantWeights

	lastIn [][]float64
}

var _ Layer = (*Dense)(nil)

// NewDense constructs a dense layer with Glorot-initialized weights.
func NewDense(rng *rand.Rand, in, out int) *Dense {
	d := &Dense{
		In:     in,
		Out:    out,
		Weight: newParam("dense.W", in*out),
		Bias:   newParam("dense.b", out),
	}
	glorotInit(rng, d.Weight.W, in, out)
	return d
}

// Forward implements Layer. Caches for Backward are only written in train
// mode, so inference is read-only and safe for concurrent use.
func (d *Dense) Forward(x [][]float64, train bool) [][]float64 {
	if train {
		d.lastIn = x
	}
	out := seq(len(x), d.Out)
	seqDenseInto(out, x, d.Weight.W, d.Bias.W, d.Out, d.In)
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(gradOut [][]float64) [][]float64 {
	gradIn := seq(len(gradOut), d.In)
	for t := range gradOut {
		xt := d.lastIn[t]
		gt := gradOut[t]
		for o := 0; o < d.Out; o++ {
			go_ := gt[o]
			if go_ == 0 {
				continue
			}
			d.Bias.G[o] += go_
			wRow := d.Weight.W[o*d.In : (o+1)*d.In]
			gRow := d.Weight.G[o*d.In : (o+1)*d.In]
			gi := gradIn[t]
			for i := 0; i < d.In; i++ {
				gRow[i] += go_ * xt[i]
				gi[i] += go_ * wRow[i]
			}
		}
	}
	return gradIn
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.Weight, d.Bias} }

// OutDim implements Layer.
func (d *Dense) OutDim(int) int { return d.Out }

// ReLU is the rectified linear activation applied elementwise.
type ReLU struct {
	lastIn [][]float64
}

var _ Layer = (*ReLU)(nil)

// Forward implements Layer.
func (r *ReLU) Forward(x [][]float64, train bool) [][]float64 {
	if train {
		r.lastIn = x
	}
	if len(x) == 0 {
		return x
	}
	out := seq(len(x), len(x[0]))
	for t := range x {
		for i, v := range x[t] {
			if v > 0 {
				out[t][i] = v
			}
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(gradOut [][]float64) [][]float64 {
	if len(gradOut) == 0 {
		return gradOut
	}
	gradIn := seq(len(gradOut), len(gradOut[0]))
	for t := range gradOut {
		for i := range gradOut[t] {
			if r.lastIn[t][i] > 0 {
				gradIn[t][i] = gradOut[t][i]
			}
		}
	}
	return gradIn
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// OutDim implements Layer.
func (r *ReLU) OutDim(in int) int { return in }

// Tanh is the hyperbolic-tangent activation applied elementwise.
type Tanh struct {
	lastOut [][]float64
}

var _ Layer = (*Tanh)(nil)

// Forward implements Layer.
func (a *Tanh) Forward(x [][]float64, train bool) [][]float64 {
	if len(x) == 0 {
		return x
	}
	out := seq(len(x), len(x[0]))
	for t := range x {
		for i, v := range x[t] {
			out[t][i] = math.Tanh(v)
		}
	}
	if train {
		a.lastOut = out
	}
	return out
}

// Backward implements Layer.
func (a *Tanh) Backward(gradOut [][]float64) [][]float64 {
	gradIn := seq(len(gradOut), len(gradOut[0]))
	for t := range gradOut {
		for i := range gradOut[t] {
			y := a.lastOut[t][i]
			gradIn[t][i] = gradOut[t][i] * (1 - y*y)
		}
	}
	return gradIn
}

// Params implements Layer.
func (a *Tanh) Params() []*Param { return nil }

// OutDim implements Layer.
func (a *Tanh) OutDim(in int) int { return in }

// Dropout zeroes each activation with probability P during training and
// scales survivors by 1/(1-P) (inverted dropout), so inference is identity.
type Dropout struct {
	P   float64
	Rng *rand.Rand

	mask [][]float64
}

var _ Layer = (*Dropout)(nil)

// NewDropout constructs a dropout layer with drop probability p.
func NewDropout(rng *rand.Rand, p float64) *Dropout {
	return &Dropout{P: p, Rng: rng}
}

// Forward implements Layer. Inference leaves the layer untouched (identity).
func (d *Dropout) Forward(x [][]float64, train bool) [][]float64 {
	if !train || d.P <= 0 {
		if train {
			d.mask = nil
		}
		return x
	}
	keep := 1 - d.P
	out := seq(len(x), len(x[0]))
	d.mask = seq(len(x), len(x[0]))
	for t := range x {
		for i, v := range x[t] {
			if d.Rng.Float64() < keep {
				m := 1 / keep
				d.mask[t][i] = m
				out[t][i] = v * m
			}
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(gradOut [][]float64) [][]float64 {
	if d.mask == nil {
		return gradOut
	}
	gradIn := seq(len(gradOut), len(gradOut[0]))
	for t := range gradOut {
		for i := range gradOut[t] {
			gradIn[t][i] = gradOut[t][i] * d.mask[t][i]
		}
	}
	return gradIn
}

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// OutDim implements Layer.
func (d *Dropout) OutDim(in int) int { return in }

// TakeLast reduces a sequence to its final timestep: [T][D] -> [1][D].
// It is the standard readout for sequence classification with LSTMs.
type TakeLast struct {
	lastT int
}

var _ Layer = (*TakeLast)(nil)

// Forward implements Layer.
func (l *TakeLast) Forward(x [][]float64, train bool) [][]float64 {
	if train {
		l.lastT = len(x)
	}
	if len(x) == 0 {
		return x
	}
	return x[len(x)-1:]
}

// Backward implements Layer.
func (l *TakeLast) Backward(gradOut [][]float64) [][]float64 {
	gradIn := seq(l.lastT, len(gradOut[0]))
	copy(gradIn[l.lastT-1], gradOut[0])
	return gradIn
}

// Params implements Layer.
func (l *TakeLast) Params() []*Param { return nil }

// OutDim implements Layer.
func (l *TakeLast) OutDim(in int) int { return in }

// GlobalMaxPool reduces a sequence by taking the per-feature maximum over
// time: [T][D] -> [1][D]. It is the readout used after the Conv1D stack.
type GlobalMaxPool struct {
	argmax []int
	lastT  int
}

var _ Layer = (*GlobalMaxPool)(nil)

// Forward implements Layer.
func (g *GlobalMaxPool) Forward(x [][]float64, train bool) [][]float64 {
	if len(x) == 0 {
		if train {
			g.lastT = 0
		}
		return x
	}
	d := len(x[0])
	out := seq(1, d)
	argmax := make([]int, d)
	for i := 0; i < d; i++ {
		best, bestT := x[0][i], 0
		for t := 1; t < len(x); t++ {
			if x[t][i] > best {
				best, bestT = x[t][i], t
			}
		}
		out[0][i] = best
		argmax[i] = bestT
	}
	if train {
		g.lastT = len(x)
		g.argmax = argmax
	}
	return out
}

// Backward implements Layer.
func (g *GlobalMaxPool) Backward(gradOut [][]float64) [][]float64 {
	d := len(gradOut[0])
	gradIn := seq(g.lastT, d)
	for i := 0; i < d; i++ {
		gradIn[g.argmax[i]][i] = gradOut[0][i]
	}
	return gradIn
}

// Params implements Layer.
func (g *GlobalMaxPool) Params() []*Param { return nil }

// OutDim implements Layer.
func (g *GlobalMaxPool) OutDim(in int) int { return in }

// Flatten concatenates all timesteps into a single feature vector:
// [T][D] -> [1][T*D]. The sequence length must be fixed across samples.
type Flatten struct {
	lastT, lastD int
}

var _ Layer = (*Flatten)(nil)

// Forward implements Layer.
func (f *Flatten) Forward(x [][]float64, train bool) [][]float64 {
	if len(x) == 0 {
		return x
	}
	tt, d := len(x), len(x[0])
	if train {
		f.lastT, f.lastD = tt, d
	}
	out := seq(1, tt*d)
	for t := range x {
		copy(out[0][t*d:(t+1)*d], x[t])
	}
	return out
}

// Backward implements Layer.
func (f *Flatten) Backward(gradOut [][]float64) [][]float64 {
	gradIn := seq(f.lastT, f.lastD)
	for t := 0; t < f.lastT; t++ {
		copy(gradIn[t], gradOut[0][t*f.lastD:(t+1)*f.lastD])
	}
	return gradIn
}

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// OutDim implements Layer.
func (f *Flatten) OutDim(in int) int { return in } // true dim depends on T; validated at runtime
