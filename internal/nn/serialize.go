package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"os"
)

// layerSpec is the serializable description of one layer: its kind, shape
// hyper-parameters, and weights.
type layerSpec struct {
	Kind    string
	Ints    []int   // layer-specific shape parameters
	Float   float64 // layer-specific scalar (e.g. dropout p)
	Weights [][]float64
}

// netSpec is the serializable description of a network.
type netSpec struct {
	Layers []layerSpec
}

// specFor converts a live layer to its serializable form.
func specFor(l Layer) (layerSpec, error) {
	switch v := l.(type) {
	case *Dense:
		return layerSpec{Kind: "dense", Ints: []int{v.In, v.Out}, Weights: [][]float64{v.Weight.W, v.Bias.W}}, nil
	case *LSTM:
		return layerSpec{Kind: "lstm", Ints: []int{v.In, v.Hidden}, Weights: [][]float64{v.Wx.W, v.Wh.W, v.B.W}}, nil
	case *Conv1D:
		return layerSpec{Kind: "conv1d", Ints: []int{v.In, v.Out, v.K}, Weights: [][]float64{v.Weight.W, v.Bias.W}}, nil
	case *ReLU:
		return layerSpec{Kind: "relu"}, nil
	case *Tanh:
		return layerSpec{Kind: "tanh"}, nil
	case *Dropout:
		return layerSpec{Kind: "dropout", Float: v.P}, nil
	case *TakeLast:
		return layerSpec{Kind: "takelast"}, nil
	case *GlobalMaxPool:
		return layerSpec{Kind: "gmp"}, nil
	case *Flatten:
		return layerSpec{Kind: "flatten"}, nil
	default:
		return layerSpec{}, fmt.Errorf("nn: cannot serialize layer of type %T", l)
	}
}

// layerFrom reconstructs a live layer from its serialized form.
func layerFrom(s layerSpec, rng *rand.Rand) (Layer, error) {
	switch s.Kind {
	case "dense":
		d := NewDense(rng, s.Ints[0], s.Ints[1])
		copy(d.Weight.W, s.Weights[0])
		copy(d.Bias.W, s.Weights[1])
		return d, nil
	case "lstm":
		l := NewLSTM(rng, s.Ints[0], s.Ints[1])
		copy(l.Wx.W, s.Weights[0])
		copy(l.Wh.W, s.Weights[1])
		copy(l.B.W, s.Weights[2])
		return l, nil
	case "conv1d":
		c := NewConv1D(rng, s.Ints[0], s.Ints[1], s.Ints[2])
		copy(c.Weight.W, s.Weights[0])
		copy(c.Bias.W, s.Weights[1])
		return c, nil
	case "relu":
		return &ReLU{}, nil
	case "tanh":
		return &Tanh{}, nil
	case "dropout":
		return NewDropout(rng, s.Float), nil
	case "takelast":
		return &TakeLast{}, nil
	case "gmp":
		return &GlobalMaxPool{}, nil
	case "flatten":
		return &Flatten{}, nil
	default:
		return nil, fmt.Errorf("nn: unknown layer kind %q", s.Kind)
	}
}

// Encode serializes the network's architecture and weights.
func (n *Network) Encode(w io.Writer) error {
	spec := netSpec{Layers: make([]layerSpec, len(n.Layers))}
	for i, l := range n.Layers {
		s, err := specFor(l)
		if err != nil {
			return err
		}
		spec.Layers[i] = s
	}
	return gob.NewEncoder(w).Encode(spec)
}

// DecodeNetwork reconstructs a network from Encode's output. rng seeds any
// stochastic layers (dropout) in the restored network.
func DecodeNetwork(r io.Reader, rng *rand.Rand) (*Network, error) {
	var spec netSpec
	if err := gob.NewDecoder(r).Decode(&spec); err != nil {
		return nil, fmt.Errorf("nn: decode network: %w", err)
	}
	layers := make([]Layer, len(spec.Layers))
	for i, s := range spec.Layers {
		l, err := layerFrom(s, rng)
		if err != nil {
			return nil, err
		}
		layers[i] = l
	}
	return NewNetwork(layers...), nil
}

// SaveFile writes the network to a file.
func (n *Network) SaveFile(path string) error {
	var buf bytes.Buffer
	if err := n.Encode(&buf); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// LoadFile reads a network from a file written by SaveFile.
func LoadFile(path string, rng *rand.Rand) (*Network, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("nn: load network: %w", err)
	}
	return DecodeNetwork(bytes.NewReader(data), rng)
}
