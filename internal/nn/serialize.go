package nn

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
)

// ErrBadNetworkSpec is wrapped by every decode failure caused by a
// malformed or corrupt serialized network (unknown layer kind, impossible
// shape, weight-length mismatch). Callers can rely on errors.Is to tell
// corrupt-input failures apart from I/O errors; decode never panics on
// corrupt input.
var ErrBadNetworkSpec = errors.New("nn: bad network spec")

// layerSpec is the serializable description of one layer: its kind, shape
// hyper-parameters, and weights.
type layerSpec struct {
	Kind    string
	Ints    []int   // layer-specific shape parameters
	Float   float64 // layer-specific scalar (e.g. dropout p)
	Weights [][]float64

	// Optional int8 quantized-weight section (dense/conv1d only). Gob
	// leaves both empty when absent, so artifacts written before
	// quantization existed — and decoders predating it — interoperate.
	Quant      []int8
	QuantScale []float64
}

// netSpec is the serializable description of a network.
type netSpec struct {
	Layers []layerSpec
}

// specFor converts a live layer to its serializable form.
func specFor(l Layer) (layerSpec, error) {
	switch v := l.(type) {
	case *Dense:
		s := layerSpec{Kind: "dense", Ints: []int{v.In, v.Out}, Weights: [][]float64{v.Weight.W, v.Bias.W}}
		if v.Qnt != nil {
			s.Quant, s.QuantScale = v.Qnt.Q, v.Qnt.Scale
		}
		return s, nil
	case *LSTM:
		return layerSpec{Kind: "lstm", Ints: []int{v.In, v.Hidden}, Weights: [][]float64{v.Wx.W, v.Wh.W, v.B.W}}, nil
	case *Conv1D:
		s := layerSpec{Kind: "conv1d", Ints: []int{v.In, v.Out, v.K}, Weights: [][]float64{v.Weight.W, v.Bias.W}}
		if v.Qnt != nil {
			s.Quant, s.QuantScale = v.Qnt.Q, v.Qnt.Scale
		}
		return s, nil
	case *ReLU:
		return layerSpec{Kind: "relu"}, nil
	case *Tanh:
		return layerSpec{Kind: "tanh"}, nil
	case *Dropout:
		return layerSpec{Kind: "dropout", Float: v.P}, nil
	case *TakeLast:
		return layerSpec{Kind: "takelast"}, nil
	case *GlobalMaxPool:
		return layerSpec{Kind: "gmp"}, nil
	case *Flatten:
		return layerSpec{Kind: "flatten"}, nil
	default:
		return layerSpec{}, fmt.Errorf("nn: cannot serialize layer of type %T", l)
	}
}

// maxLayerDim bounds any single layer dimension a serialized spec may
// claim. Far above any real model here; combined with the int64 product
// arithmetic in checkSpec it guarantees the expected weight lengths (at
// most 4*dim*dim*dim = 2^44) are computed without wrap-around on every
// platform — without this a crafted spec like in=1<<62, out=4 would wrap
// the product to a small number, validate against a tiny weight slice,
// and panic at inference time instead of failing decode.
const maxLayerDim = 1 << 14

// checkSpec validates a decoded layer spec before any allocation happens:
// the shape ints must be present, positive and bounded, and every weight
// tensor must have exactly the length the shape implies. Expected lengths
// are computed in int64 so a 3-factor conv product cannot overflow 32-bit
// int. This keeps corrupt input from panicking (index out of range) or
// silently producing a half-copied layer.
func checkSpec(s layerSpec, ints int, weightLens func() []int64) error {
	if len(s.Ints) != ints {
		return fmt.Errorf("%w: %s layer has %d shape ints, want %d", ErrBadNetworkSpec, s.Kind, len(s.Ints), ints)
	}
	for _, v := range s.Ints {
		if v <= 0 || v > maxLayerDim {
			return fmt.Errorf("%w: %s layer dimension %d outside (0, %d]", ErrBadNetworkSpec, s.Kind, v, maxLayerDim)
		}
	}
	want := weightLens()
	if len(s.Weights) != len(want) {
		return fmt.Errorf("%w: %s layer has %d weight tensors, want %d", ErrBadNetworkSpec, s.Kind, len(s.Weights), len(want))
	}
	for i, n := range want {
		if int64(len(s.Weights[i])) != n {
			return fmt.Errorf("%w: %s layer weight %d has %d values, want %d", ErrBadNetworkSpec, s.Kind, i, len(s.Weights[i]), n)
		}
	}
	return nil
}

// quantFrom validates and copies a spec's optional int8 section for a
// rows×cols weight matrix. Both halves must be present with exactly the
// implied lengths and finite non-negative scales, or neither; anything
// else is corrupt input.
func quantFrom(s layerSpec, rows, cols int) (*QuantWeights, error) {
	if len(s.Quant) == 0 && len(s.QuantScale) == 0 {
		return nil, nil
	}
	if int64(len(s.Quant)) != int64(rows)*int64(cols) || len(s.QuantScale) != rows {
		return nil, fmt.Errorf("%w: %s layer quant section %d/%d values, want %d/%d",
			ErrBadNetworkSpec, s.Kind, len(s.Quant), len(s.QuantScale), rows*cols, rows)
	}
	for _, sc := range s.QuantScale {
		if math.IsNaN(sc) || math.IsInf(sc, 0) || sc < 0 {
			return nil, fmt.Errorf("%w: %s layer quant scale %v", ErrBadNetworkSpec, s.Kind, sc)
		}
	}
	qw := &QuantWeights{Q: make([]int8, len(s.Quant)), Scale: make([]float64, rows)}
	copy(qw.Q, s.Quant)
	copy(qw.Scale, s.QuantScale)
	return qw, nil
}

// layerFrom reconstructs a live layer from its serialized form.
func layerFrom(s layerSpec, rng *rand.Rand) (Layer, error) {
	switch s.Kind {
	case "dense":
		if err := checkSpec(s, 2, func() []int64 {
			in, out := int64(s.Ints[0]), int64(s.Ints[1])
			return []int64{in * out, out}
		}); err != nil {
			return nil, err
		}
		d := NewDense(rng, s.Ints[0], s.Ints[1])
		copy(d.Weight.W, s.Weights[0])
		copy(d.Bias.W, s.Weights[1])
		qw, err := quantFrom(s, d.Out, d.In)
		if err != nil {
			return nil, err
		}
		d.Qnt = qw
		return d, nil
	case "lstm":
		if err := checkSpec(s, 2, func() []int64 {
			in, h := int64(s.Ints[0]), int64(s.Ints[1])
			return []int64{4 * h * in, 4 * h * h, 4 * h}
		}); err != nil {
			return nil, err
		}
		l := NewLSTM(rng, s.Ints[0], s.Ints[1])
		copy(l.Wx.W, s.Weights[0])
		copy(l.Wh.W, s.Weights[1])
		copy(l.B.W, s.Weights[2])
		return l, nil
	case "conv1d":
		if err := checkSpec(s, 3, func() []int64 {
			in, out, k := int64(s.Ints[0]), int64(s.Ints[1]), int64(s.Ints[2])
			return []int64{out * k * in, out}
		}); err != nil {
			return nil, err
		}
		c := NewConv1D(rng, s.Ints[0], s.Ints[1], s.Ints[2])
		copy(c.Weight.W, s.Weights[0])
		copy(c.Bias.W, s.Weights[1])
		qw, err := quantFrom(s, c.Out, c.K*c.In)
		if err != nil {
			return nil, err
		}
		c.Qnt = qw
		return c, nil
	case "relu":
		return &ReLU{}, nil
	case "tanh":
		return &Tanh{}, nil
	case "dropout":
		if s.Float < 0 || s.Float >= 1 {
			return nil, fmt.Errorf("%w: dropout probability %v out of [0,1)", ErrBadNetworkSpec, s.Float)
		}
		return NewDropout(rng, s.Float), nil
	case "takelast":
		return &TakeLast{}, nil
	case "gmp":
		return &GlobalMaxPool{}, nil
	case "flatten":
		return &Flatten{}, nil
	default:
		return nil, fmt.Errorf("%w: unknown layer kind %q", ErrBadNetworkSpec, s.Kind)
	}
}

// Encode serializes the network's architecture and weights.
func (n *Network) Encode(w io.Writer) error {
	spec := netSpec{Layers: make([]layerSpec, len(n.Layers))}
	for i, l := range n.Layers {
		s, err := specFor(l)
		if err != nil {
			return err
		}
		spec.Layers[i] = s
	}
	return gob.NewEncoder(w).Encode(spec)
}

// DecodeNetwork reconstructs a network from Encode's output. rng seeds any
// stochastic layers (dropout) in the restored network. Corrupt input yields
// an error wrapping ErrBadNetworkSpec; it never panics.
func DecodeNetwork(r io.Reader, rng *rand.Rand) (*Network, error) {
	var spec netSpec
	if err := gob.NewDecoder(r).Decode(&spec); err != nil {
		return nil, fmt.Errorf("%w: decode: %v", ErrBadNetworkSpec, err)
	}
	if len(spec.Layers) == 0 {
		return nil, fmt.Errorf("%w: network has no layers", ErrBadNetworkSpec)
	}
	layers := make([]Layer, len(spec.Layers))
	for i, s := range spec.Layers {
		l, err := layerFrom(s, rng)
		if err != nil {
			return nil, err
		}
		layers[i] = l
	}
	return NewNetwork(layers...), nil
}

// SaveFile writes the network to a file.
func (n *Network) SaveFile(path string) error {
	var buf bytes.Buffer
	if err := n.Encode(&buf); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// LoadFile reads a network from a file written by SaveFile.
func LoadFile(path string, rng *rand.Rand) (*Network, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("nn: load network: %w", err)
	}
	return DecodeNetwork(bytes.NewReader(data), rng)
}
