package nn

// Vectorized matvec/GEMM kernels for the inference and training forward
// paths. The scalar loops they replace computed one output lane at a time,
// reloading the full input vector from memory for every lane; these
// routines process four output lanes per pass (four independent
// accumulator chains sharing each x[i] load) and, for whole-sequence
// products, keep a four-row weight tile hot in cache while the timestep
// rows stream through it.
//
// Numerical contract: every kernel accumulates each output lane in exactly
// the order of the scalar loop it replaces — a single running sum seeded
// with the bias (or the destination value, for the Accum variants) and
// advanced input-index-ascending. Unrolling happens only ACROSS lanes,
// never within one lane's chain, so results are bit-identical to the naive
// loops. kernel_test.go pins this property against reference
// implementations over randomized shapes.

// matvecInto computes dst[o] = bias[o] + w[o*in:(o+1)*in] · x[:in] for
// o in [0, out). w is row-major out×in.
func matvecInto(dst, w, bias, x []float64, out, in int) {
	x = x[:in]
	o := 0
	for ; o+4 <= out; o += 4 {
		base := o * in
		r0 := w[base+0*in : base+1*in : base+1*in]
		r1 := w[base+1*in : base+2*in : base+2*in]
		r2 := w[base+2*in : base+3*in : base+3*in]
		r3 := w[base+3*in : base+4*in : base+4*in]
		s0, s1, s2, s3 := bias[o], bias[o+1], bias[o+2], bias[o+3]
		for i, xi := range x {
			s0 += r0[i] * xi
			s1 += r1[i] * xi
			s2 += r2[i] * xi
			s3 += r3[i] * xi
		}
		dst[o], dst[o+1], dst[o+2], dst[o+3] = s0, s1, s2, s3
	}
	for ; o < out; o++ {
		row := w[o*in : (o+1)*in : (o+1)*in]
		s := bias[o]
		for i, xi := range x {
			s += row[i] * xi
		}
		dst[o] = s
	}
}

// matvecAccum computes dst[o] += w[o*in:(o+1)*in] · x[:in] for o in
// [0, out), continuing each lane's existing accumulation chain.
func matvecAccum(dst, w, x []float64, out, in int) {
	x = x[:in]
	o := 0
	for ; o+4 <= out; o += 4 {
		base := o * in
		r0 := w[base+0*in : base+1*in : base+1*in]
		r1 := w[base+1*in : base+2*in : base+2*in]
		r2 := w[base+2*in : base+3*in : base+3*in]
		r3 := w[base+3*in : base+4*in : base+4*in]
		s0, s1, s2, s3 := dst[o], dst[o+1], dst[o+2], dst[o+3]
		for i, xi := range x {
			s0 += r0[i] * xi
			s1 += r1[i] * xi
			s2 += r2[i] * xi
			s3 += r3[i] * xi
		}
		dst[o], dst[o+1], dst[o+2], dst[o+3] = s0, s1, s2, s3
	}
	for ; o < out; o++ {
		row := w[o*in : (o+1)*in : (o+1)*in]
		s := dst[o]
		for i, xi := range x {
			s += row[i] * xi
		}
		dst[o] = s
	}
}

// matvecStridedAccum is matvecAccum over non-contiguous weight rows: lane
// o's row is w[base+o*stride : base+o*stride+in]. Conv1D uses it to apply
// one kernel tap (row stride K*in) across all output channels.
func matvecStridedAccum(dst, w, x []float64, base, stride, out, in int) {
	x = x[:in]
	o := 0
	for ; o+4 <= out; o += 4 {
		off := base + o*stride
		r0 := w[off+0*stride : off+0*stride+in : off+0*stride+in]
		r1 := w[off+1*stride : off+1*stride+in : off+1*stride+in]
		r2 := w[off+2*stride : off+2*stride+in : off+2*stride+in]
		r3 := w[off+3*stride : off+3*stride+in : off+3*stride+in]
		s0, s1, s2, s3 := dst[o], dst[o+1], dst[o+2], dst[o+3]
		for i, xi := range x {
			s0 += r0[i] * xi
			s1 += r1[i] * xi
			s2 += r2[i] * xi
			s3 += r3[i] * xi
		}
		dst[o], dst[o+1], dst[o+2], dst[o+3] = s0, s1, s2, s3
	}
	for ; o < out; o++ {
		off := base + o*stride
		row := w[off : off+in : off+in]
		s := dst[o]
		for i, xi := range x {
			s += row[i] * xi
		}
		dst[o] = s
	}
}

// seqDenseInto computes the whole-sequence dense product
// out[t][o] = bias[o] + w[o*in:(o+1)*in] · x[t] with the output tile as
// the outer loop: each four-row weight tile is loaded once and reused
// across every timestep (cache blocking), instead of re-walking the full
// weight matrix per timestep.
//
// Rows shorter than inDim contribute only their available inputs
// (zero-padding semantics). That is the post-Flatten short-window case: a
// stream-start window of T < maxT timesteps flattens to a T*d row feeding
// a Dense layer sized for maxT*d inputs.
func seqDenseInto(out, x [][]float64, w, bias []float64, outDim, inDim int) {
	o := 0
	for ; o+4 <= outDim; o += 4 {
		base := o * inDim
		r0 := w[base+0*inDim : base+1*inDim : base+1*inDim]
		r1 := w[base+1*inDim : base+2*inDim : base+2*inDim]
		r2 := w[base+2*inDim : base+3*inDim : base+3*inDim]
		r3 := w[base+3*inDim : base+4*inDim : base+4*inDim]
		b0, b1, b2, b3 := bias[o], bias[o+1], bias[o+2], bias[o+3]
		for t := range x {
			xt := x[t]
			if len(xt) > inDim {
				xt = xt[:inDim]
			}
			s0, s1, s2, s3 := b0, b1, b2, b3
			for i, xi := range xt {
				s0 += r0[i] * xi
				s1 += r1[i] * xi
				s2 += r2[i] * xi
				s3 += r3[i] * xi
			}
			ot := out[t]
			ot[o], ot[o+1], ot[o+2], ot[o+3] = s0, s1, s2, s3
		}
	}
	for ; o < outDim; o++ {
		row := w[o*inDim : (o+1)*inDim : (o+1)*inDim]
		b := bias[o]
		for t := range x {
			xt := x[t]
			if len(xt) > inDim {
				xt = xt[:inDim]
			}
			s := b
			for i, xi := range xt {
				s += row[i] * xi
			}
			out[t][o] = s
		}
	}
}

// conv1dInto computes the valid-padding stride-1 1D convolution
// out[t][o] = bias[o] + Σ_k w[(o*K+k)*in : ...] · x[t+k][:in], truncating
// taps past the end of x (the graceful short-window degradation of
// Conv1D.Forward). Each lane's accumulation order is bias, then taps in
// ascending k, each tap input-index-ascending — identical to the scalar
// triple loop.
func conv1dInto(out, x [][]float64, w, bias []float64, outDim, inDim, K int) {
	T := len(x)
	for t := range out {
		dst := out[t][:outDim]
		copy(dst, bias[:outDim])
		for k := 0; k < K; k++ {
			ti := t + k
			if ti >= T {
				break
			}
			matvecStridedAccum(dst, w, x[ti], k*inDim, K*inDim, outDim, inDim)
		}
	}
}
