package nn

// Vectorized matvec/GEMM kernels for the inference and training forward
// paths. The scalar loops they replace computed one output lane at a time,
// reloading the full input vector from memory for every lane; these
// routines process four output lanes per pass (four independent
// accumulator chains sharing each x[i] load) and, for whole-sequence
// products, keep a four-row weight tile hot in cache while the timestep
// rows stream through it.
//
// Numerical contract: every kernel accumulates each output lane in exactly
// the order of the scalar loop it replaces — a single running sum seeded
// with the bias (or the destination value, for the Accum variants) and
// advanced input-index-ascending. Unrolling happens only ACROSS lanes,
// never within one lane's chain, so results are bit-identical to the naive
// loops. kernel_test.go pins this property against reference
// implementations over randomized shapes.

// matvecInto computes dst[o] = bias[o] + w[o*in:(o+1)*in] · x[:in] for
// o in [0, out). w is row-major out×in.
func matvecInto(dst, w, bias, x []float64, out, in int) {
	x = x[:in]
	o := 0
	for ; o+4 <= out; o += 4 {
		base := o * in
		r0 := w[base+0*in : base+1*in : base+1*in]
		r1 := w[base+1*in : base+2*in : base+2*in]
		r2 := w[base+2*in : base+3*in : base+3*in]
		r3 := w[base+3*in : base+4*in : base+4*in]
		s0, s1, s2, s3 := bias[o], bias[o+1], bias[o+2], bias[o+3]
		for i, xi := range x {
			s0 += r0[i] * xi
			s1 += r1[i] * xi
			s2 += r2[i] * xi
			s3 += r3[i] * xi
		}
		dst[o], dst[o+1], dst[o+2], dst[o+3] = s0, s1, s2, s3
	}
	for ; o < out; o++ {
		row := w[o*in : (o+1)*in : (o+1)*in]
		s := bias[o]
		for i, xi := range x {
			s += row[i] * xi
		}
		dst[o] = s
	}
}

// matvecAccum computes dst[o] += w[o*in:(o+1)*in] · x[:in] for o in
// [0, out), continuing each lane's existing accumulation chain.
func matvecAccum(dst, w, x []float64, out, in int) {
	x = x[:in]
	o := 0
	for ; o+4 <= out; o += 4 {
		base := o * in
		r0 := w[base+0*in : base+1*in : base+1*in]
		r1 := w[base+1*in : base+2*in : base+2*in]
		r2 := w[base+2*in : base+3*in : base+3*in]
		r3 := w[base+3*in : base+4*in : base+4*in]
		s0, s1, s2, s3 := dst[o], dst[o+1], dst[o+2], dst[o+3]
		for i, xi := range x {
			s0 += r0[i] * xi
			s1 += r1[i] * xi
			s2 += r2[i] * xi
			s3 += r3[i] * xi
		}
		dst[o], dst[o+1], dst[o+2], dst[o+3] = s0, s1, s2, s3
	}
	for ; o < out; o++ {
		row := w[o*in : (o+1)*in : (o+1)*in]
		s := dst[o]
		for i, xi := range x {
			s += row[i] * xi
		}
		dst[o] = s
	}
}

// matvecStridedAccum is matvecAccum over non-contiguous weight rows: lane
// o's row is w[base+o*stride : base+o*stride+in]. Conv1D uses it to apply
// one kernel tap (row stride K*in) across all output channels.
func matvecStridedAccum(dst, w, x []float64, base, stride, out, in int) {
	x = x[:in]
	o := 0
	for ; o+4 <= out; o += 4 {
		off := base + o*stride
		r0 := w[off+0*stride : off+0*stride+in : off+0*stride+in]
		r1 := w[off+1*stride : off+1*stride+in : off+1*stride+in]
		r2 := w[off+2*stride : off+2*stride+in : off+2*stride+in]
		r3 := w[off+3*stride : off+3*stride+in : off+3*stride+in]
		s0, s1, s2, s3 := dst[o], dst[o+1], dst[o+2], dst[o+3]
		for i, xi := range x {
			s0 += r0[i] * xi
			s1 += r1[i] * xi
			s2 += r2[i] * xi
			s3 += r3[i] * xi
		}
		dst[o], dst[o+1], dst[o+2], dst[o+3] = s0, s1, s2, s3
	}
	for ; o < out; o++ {
		off := base + o*stride
		row := w[off : off+in : off+in]
		s := dst[o]
		for i, xi := range x {
			s += row[i] * xi
		}
		dst[o] = s
	}
}

// seqDenseInto computes the whole-sequence dense product
// out[t][o] = bias[o] + w[o*in:(o+1)*in] · x[t] with the output tile as
// the outer loop: each four-row weight tile is loaded once and reused
// across every timestep (cache blocking), instead of re-walking the full
// weight matrix per timestep.
//
// Rows shorter than inDim contribute only their available inputs
// (zero-padding semantics). That is the post-Flatten short-window case: a
// stream-start window of T < maxT timesteps flattens to a T*d row feeding
// a Dense layer sized for maxT*d inputs.
func seqDenseInto(out, x [][]float64, w, bias []float64, outDim, inDim int) {
	o := 0
	for ; o+4 <= outDim; o += 4 {
		base := o * inDim
		r0 := w[base+0*inDim : base+1*inDim : base+1*inDim]
		r1 := w[base+1*inDim : base+2*inDim : base+2*inDim]
		r2 := w[base+2*inDim : base+3*inDim : base+3*inDim]
		r3 := w[base+3*inDim : base+4*inDim : base+4*inDim]
		b0, b1, b2, b3 := bias[o], bias[o+1], bias[o+2], bias[o+3]
		for t := range x {
			xt := x[t]
			if len(xt) > inDim {
				xt = xt[:inDim]
			}
			s0, s1, s2, s3 := b0, b1, b2, b3
			for i, xi := range xt {
				s0 += r0[i] * xi
				s1 += r1[i] * xi
				s2 += r2[i] * xi
				s3 += r3[i] * xi
			}
			ot := out[t]
			ot[o], ot[o+1], ot[o+2], ot[o+3] = s0, s1, s2, s3
		}
	}
	for ; o < outDim; o++ {
		row := w[o*inDim : (o+1)*inDim : (o+1)*inDim]
		b := bias[o]
		for t := range x {
			xt := x[t]
			if len(xt) > inDim {
				xt = xt[:inDim]
			}
			s := b
			for i, xi := range xt {
				s += row[i] * xi
			}
			out[t][o] = s
		}
	}
}

// denseRowsInto computes outRows[r][o] = bias[o] + w[o*in:(o+1)*in] ·
// xRows[r] for a flat list of rows sharing one weight matrix — the
// cross-session batch the serve shards dispatch, with every stream's
// window rows concatenated into one list (BatchPredictor flattens; ragged
// windows and post-Flatten short rows keep seqDenseInto's zero-padding
// semantics).
//
// The kernel blocks on two axes and unrolls on a third, none of which
// perturbs any accumulation chain:
//
//   - output lanes are tiled by four (one tile of weight rows per pass);
//   - the input dimension is blocked by denseInputBlock so the tile's
//     weight block (4 × 512 × 8 B = 16 KB) stays L1-resident while every
//     row sweeps over it; partial sums spill to the output row between
//     blocks, which is exact for float64 — the chain's additions happen in
//     the same ascending-input order with a store/reload in between;
//   - equal-length rows are processed in PAIRS inside the block: each
//     weight element is loaded once and applied to both rows, and the
//     eight independent accumulator chains (4 lanes × 2 rows) give the
//     out-of-order core twice the add ILP of the per-stream kernel.
//
// Each (row, lane) sum is still one accumulator seeded with the bias
// walking inputs in ascending index — exactly the chain seqDenseInto runs
// for that row alone — so batched outputs are bit-identical to per-stream
// calls (the property batch_test.go pins).
func denseRowsInto(outRows, xRows [][]float64, w, bias []float64, outDim, inDim int) {
	R := len(xRows)
	o := 0
	for ; o+4 <= outDim; o += 4 {
		base := o * inDim
		r0 := w[base+0*inDim : base+1*inDim : base+1*inDim]
		r1 := w[base+1*inDim : base+2*inDim : base+2*inDim]
		r2 := w[base+2*inDim : base+3*inDim : base+3*inDim]
		r3 := w[base+3*inDim : base+4*inDim : base+4*inDim]
		b0, b1, b2, b3 := bias[o], bias[o+1], bias[o+2], bias[o+3]
		for i0 := 0; i0 < inDim; i0 += denseInputBlock {
			i1 := i0 + denseInputBlock
			if i1 > inDim {
				i1 = inDim
			}
			first := i0 == 0
			for r := 0; r < R; {
				xa := xRows[r]
				na := len(xa)
				if na > inDim {
					na = inDim
				}
				hiA := i1
				if hiA > na {
					hiA = na
				}
				if !first && hiA <= i0 {
					// Short row already finished by an earlier block.
					r++
					continue
				}
				if r+1 < R {
					xb := xRows[r+1]
					nb := len(xb)
					if nb > inDim {
						nb = inDim
					}
					if nb == na {
						oa, ob := outRows[r], outRows[r+1]
						var sa0, sa1, sa2, sa3, sb0, sb1, sb2, sb3 float64
						if first {
							sa0, sa1, sa2, sa3 = b0, b1, b2, b3
							sb0, sb1, sb2, sb3 = b0, b1, b2, b3
						} else {
							sa0, sa1, sa2, sa3 = oa[o], oa[o+1], oa[o+2], oa[o+3]
							sb0, sb1, sb2, sb3 = ob[o], ob[o+1], ob[o+2], ob[o+3]
						}
						wb0 := r0[i0:hiA:hiA]
						wb1 := r1[i0:hiA:hiA]
						wb2 := r2[i0:hiA:hiA]
						wb3 := r3[i0:hiA:hiA]
						xba := xa[i0:hiA:hiA]
						xbb := xb[i0:hiA:hiA]
						for i, xia := range xba {
							xib := xbb[i]
							w0 := wb0[i]
							sa0 += w0 * xia
							sb0 += w0 * xib
							w1 := wb1[i]
							sa1 += w1 * xia
							sb1 += w1 * xib
							w2 := wb2[i]
							sa2 += w2 * xia
							sb2 += w2 * xib
							w3 := wb3[i]
							sa3 += w3 * xia
							sb3 += w3 * xib
						}
						oa[o], oa[o+1], oa[o+2], oa[o+3] = sa0, sa1, sa2, sa3
						ob[o], ob[o+1], ob[o+2], ob[o+3] = sb0, sb1, sb2, sb3
						r += 2
						continue
					}
				}
				ot := outRows[r]
				var s0, s1, s2, s3 float64
				if first {
					s0, s1, s2, s3 = b0, b1, b2, b3
				} else {
					s0, s1, s2, s3 = ot[o], ot[o+1], ot[o+2], ot[o+3]
				}
				wb0 := r0[i0:hiA:hiA]
				wb1 := r1[i0:hiA:hiA]
				wb2 := r2[i0:hiA:hiA]
				wb3 := r3[i0:hiA:hiA]
				for i, xi := range xa[i0:hiA:hiA] {
					s0 += wb0[i] * xi
					s1 += wb1[i] * xi
					s2 += wb2[i] * xi
					s3 += wb3[i] * xi
				}
				ot[o], ot[o+1], ot[o+2], ot[o+3] = s0, s1, s2, s3
				r++
			}
		}
	}
	for ; o < outDim; o++ {
		row := w[o*inDim : (o+1)*inDim : (o+1)*inDim]
		b := bias[o]
		for r, x := range xRows {
			if len(x) > inDim {
				x = x[:inDim]
			}
			s := b
			for i, xi := range x {
				s += row[i] * xi
			}
			outRows[r][o] = s
		}
	}
}

// denseInputBlock is the input-axis cache block of the dense row kernels:
// a four-lane weight tile restricted to one block is 4 × 512 × 8 B = 16 KB,
// comfortably L1-resident together with the two active input-row blocks.
const denseInputBlock = 512

// seqDenseQuantInto is seqDenseInto against int8 per-output-channel
// quantized weights: out[t][o] = bias[o] + scale[o] * Σ_i q[o*in+i]·x[t][i].
// The raw int8 dot product accumulates in float64 input-index-ascending
// (one chain per lane, like the float kernel) and the channel scale is
// applied once at the end, so quantized inference is deterministic and the
// only difference from the float path is the rounded weights themselves.
func seqDenseQuantInto(out, x [][]float64, q []int8, scale, bias []float64, outDim, inDim int) {
	o := 0
	for ; o+4 <= outDim; o += 4 {
		base := o * inDim
		r0 := q[base+0*inDim : base+1*inDim : base+1*inDim]
		r1 := q[base+1*inDim : base+2*inDim : base+2*inDim]
		r2 := q[base+2*inDim : base+3*inDim : base+3*inDim]
		r3 := q[base+3*inDim : base+4*inDim : base+4*inDim]
		for t := range x {
			xt := x[t]
			if len(xt) > inDim {
				xt = xt[:inDim]
			}
			var s0, s1, s2, s3 float64
			for i, xi := range xt {
				s0 += float64(r0[i]) * xi
				s1 += float64(r1[i]) * xi
				s2 += float64(r2[i]) * xi
				s3 += float64(r3[i]) * xi
			}
			ot := out[t]
			ot[o] = bias[o] + scale[o]*s0
			ot[o+1] = bias[o+1] + scale[o+1]*s1
			ot[o+2] = bias[o+2] + scale[o+2]*s2
			ot[o+3] = bias[o+3] + scale[o+3]*s3
		}
	}
	for ; o < outDim; o++ {
		row := q[o*inDim : (o+1)*inDim : (o+1)*inDim]
		for t := range x {
			xt := x[t]
			if len(xt) > inDim {
				xt = xt[:inDim]
			}
			var s float64
			for i, xi := range xt {
				s += float64(row[i]) * xi
			}
			out[t][o] = bias[o] + scale[o]*s
		}
	}
}

// denseRowsQuantInto is denseRowsInto over int8 quantized weights: raw
// dot products accumulate in float64 per (row, lane) chain and the
// per-channel scale is applied once at the end, exactly as
// seqDenseQuantInto does per stream. Same input blocking and row-pairing
// as the float row kernel — between blocks the RAW running sums spill to
// the output row and the bias/scale finalization happens only on a row's
// last block, so the single-finalize chain is preserved bit for bit.
func denseRowsQuantInto(outRows, xRows [][]float64, q []int8, scale, bias []float64, outDim, inDim int) {
	R := len(xRows)
	o := 0
	for ; o+4 <= outDim; o += 4 {
		base := o * inDim
		r0 := q[base+0*inDim : base+1*inDim : base+1*inDim]
		r1 := q[base+1*inDim : base+2*inDim : base+2*inDim]
		r2 := q[base+2*inDim : base+3*inDim : base+3*inDim]
		r3 := q[base+3*inDim : base+4*inDim : base+4*inDim]
		for i0 := 0; i0 < inDim; i0 += denseInputBlock {
			i1 := i0 + denseInputBlock
			if i1 > inDim {
				i1 = inDim
			}
			first := i0 == 0
			for r := 0; r < R; {
				xa := xRows[r]
				na := len(xa)
				if na > inDim {
					na = inDim
				}
				hiA := i1
				if hiA > na {
					hiA = na
				}
				if !first && hiA <= i0 {
					// Short row already finalized by an earlier block.
					r++
					continue
				}
				last := hiA == na
				if r+1 < R {
					xb := xRows[r+1]
					nb := len(xb)
					if nb > inDim {
						nb = inDim
					}
					if nb == na {
						oa, ob := outRows[r], outRows[r+1]
						var sa0, sa1, sa2, sa3, sb0, sb1, sb2, sb3 float64
						if !first {
							sa0, sa1, sa2, sa3 = oa[o], oa[o+1], oa[o+2], oa[o+3]
							sb0, sb1, sb2, sb3 = ob[o], ob[o+1], ob[o+2], ob[o+3]
						}
						wb0 := r0[i0:hiA:hiA]
						wb1 := r1[i0:hiA:hiA]
						wb2 := r2[i0:hiA:hiA]
						wb3 := r3[i0:hiA:hiA]
						xba := xa[i0:hiA:hiA]
						xbb := xb[i0:hiA:hiA]
						for i, xia := range xba {
							xib := xbb[i]
							w0 := float64(wb0[i])
							sa0 += w0 * xia
							sb0 += w0 * xib
							w1 := float64(wb1[i])
							sa1 += w1 * xia
							sb1 += w1 * xib
							w2 := float64(wb2[i])
							sa2 += w2 * xia
							sb2 += w2 * xib
							w3 := float64(wb3[i])
							sa3 += w3 * xia
							sb3 += w3 * xib
						}
						if last {
							oa[o] = bias[o] + scale[o]*sa0
							oa[o+1] = bias[o+1] + scale[o+1]*sa1
							oa[o+2] = bias[o+2] + scale[o+2]*sa2
							oa[o+3] = bias[o+3] + scale[o+3]*sa3
							ob[o] = bias[o] + scale[o]*sb0
							ob[o+1] = bias[o+1] + scale[o+1]*sb1
							ob[o+2] = bias[o+2] + scale[o+2]*sb2
							ob[o+3] = bias[o+3] + scale[o+3]*sb3
						} else {
							oa[o], oa[o+1], oa[o+2], oa[o+3] = sa0, sa1, sa2, sa3
							ob[o], ob[o+1], ob[o+2], ob[o+3] = sb0, sb1, sb2, sb3
						}
						r += 2
						continue
					}
				}
				ot := outRows[r]
				var s0, s1, s2, s3 float64
				if !first {
					s0, s1, s2, s3 = ot[o], ot[o+1], ot[o+2], ot[o+3]
				}
				wb0 := r0[i0:hiA:hiA]
				wb1 := r1[i0:hiA:hiA]
				wb2 := r2[i0:hiA:hiA]
				wb3 := r3[i0:hiA:hiA]
				for i, xi := range xa[i0:hiA:hiA] {
					s0 += float64(wb0[i]) * xi
					s1 += float64(wb1[i]) * xi
					s2 += float64(wb2[i]) * xi
					s3 += float64(wb3[i]) * xi
				}
				if last {
					ot[o] = bias[o] + scale[o]*s0
					ot[o+1] = bias[o+1] + scale[o+1]*s1
					ot[o+2] = bias[o+2] + scale[o+2]*s2
					ot[o+3] = bias[o+3] + scale[o+3]*s3
				} else {
					ot[o], ot[o+1], ot[o+2], ot[o+3] = s0, s1, s2, s3
				}
				r++
			}
		}
	}
	for ; o < outDim; o++ {
		row := q[o*inDim : (o+1)*inDim : (o+1)*inDim]
		for r, x := range xRows {
			if len(x) > inDim {
				x = x[:inDim]
			}
			var s float64
			for i, xi := range x {
				s += float64(row[i]) * xi
			}
			outRows[r][o] = bias[o] + scale[o]*s
		}
	}
}

// matvecQuantStridedAccum accumulates one quantized kernel tap into the
// raw (unscaled) running sums: dst[o] += q[base+o*stride : +in] · x[:in].
// The caller zeroes dst, applies every tap in ascending k, then finalizes
// with bias and the per-channel scale (conv1dQuantInto).
func matvecQuantStridedAccum(dst []float64, q []int8, x []float64, base, stride, out, in int) {
	x = x[:in]
	o := 0
	for ; o+4 <= out; o += 4 {
		off := base + o*stride
		r0 := q[off+0*stride : off+0*stride+in : off+0*stride+in]
		r1 := q[off+1*stride : off+1*stride+in : off+1*stride+in]
		r2 := q[off+2*stride : off+2*stride+in : off+2*stride+in]
		r3 := q[off+3*stride : off+3*stride+in : off+3*stride+in]
		s0, s1, s2, s3 := dst[o], dst[o+1], dst[o+2], dst[o+3]
		for i, xi := range x {
			s0 += float64(r0[i]) * xi
			s1 += float64(r1[i]) * xi
			s2 += float64(r2[i]) * xi
			s3 += float64(r3[i]) * xi
		}
		dst[o], dst[o+1], dst[o+2], dst[o+3] = s0, s1, s2, s3
	}
	for ; o < out; o++ {
		off := base + o*stride
		row := q[off : off+in : off+in]
		s := dst[o]
		for i, xi := range x {
			s += float64(row[i]) * xi
		}
		dst[o] = s
	}
}

// conv1dQuantInto is conv1dInto against int8 per-output-channel quantized
// weights. Raw tap sums accumulate in the destination rows (zeroed first,
// taps in ascending k, each tap input-index-ascending), then every lane is
// finalized as bias[o] + scale[o]*raw — one multiply per output, no
// per-call allocation.
func conv1dQuantInto(out, x [][]float64, q []int8, scale, bias []float64, outDim, inDim, K int) {
	T := len(x)
	for t := range out {
		dst := out[t][:outDim]
		for o := range dst {
			dst[o] = 0
		}
		for k := 0; k < K; k++ {
			ti := t + k
			if ti >= T {
				break
			}
			matvecQuantStridedAccum(dst, q, x[ti], k*inDim, K*inDim, outDim, inDim)
		}
		for o := range dst {
			dst[o] = bias[o] + scale[o]*dst[o]
		}
	}
}

// conv1dInto computes the valid-padding stride-1 1D convolution
// out[t][o] = bias[o] + Σ_k w[(o*K+k)*in : ...] · x[t+k][:in], truncating
// taps past the end of x (the graceful short-window degradation of
// Conv1D.Forward). Each lane's accumulation order is bias, then taps in
// ascending k, each tap input-index-ascending — identical to the scalar
// triple loop.
func conv1dInto(out, x [][]float64, w, bias []float64, outDim, inDim, K int) {
	T := len(x)
	for t := range out {
		dst := out[t][:outDim]
		copy(dst, bias[:outDim])
		for k := 0; k < K; k++ {
			ti := t + k
			if ti >= T {
				break
			}
			matvecStridedAccum(dst, w, x[ti], k*inDim, K*inDim, outDim, inDim)
		}
	}
}
