package nn

import (
	"math/rand"
	"testing"
)

// The kernels in kernel.go claim bit-identity with the scalar loops they
// replaced. These tests pin that claim: reference implementations of the
// original loops live here, and every kernel must match them with exact
// float64 equality (==, not a tolerance) across randomized shapes —
// including out-dims that are not a multiple of the 4-lane tile, single-
// timestep windows, and kernels wider than the window.

// refMatvec is the scalar loop Dense/LSTM used per output lane.
func refMatvec(dst, w, bias, x []float64, out, in int) {
	for o := 0; o < out; o++ {
		sum := bias[o]
		row := w[o*in : (o+1)*in]
		for i := 0; i < in; i++ {
			sum += row[i] * x[i]
		}
		dst[o] = sum
	}
}

// refGates is LSTM.gates as it was before vectorization.
func refGates(dst, wx, wh, b, x, h []float64, hidden, in int) {
	for g := 0; g < 4*hidden; g++ {
		sum := b[g]
		wxRow := wx[g*in : (g+1)*in]
		for i := 0; i < in; i++ {
			sum += wxRow[i] * x[i]
		}
		whRow := wh[g*hidden : (g+1)*hidden]
		for i := 0; i < hidden; i++ {
			sum += whRow[i] * h[i]
		}
		dst[g] = sum
	}
}

// refConv1d is Conv1D's scalar triple loop.
func refConv1d(out, x [][]float64, w, bias []float64, outDim, inDim, K int) {
	T := len(x)
	for t := range out {
		for o := 0; o < outDim; o++ {
			sum := bias[o]
			for k := 0; k < K; k++ {
				ti := t + k
				if ti >= T {
					break
				}
				row := w[(o*K+k)*inDim : (o*K+k+1)*inDim]
				xt := x[ti]
				for i := 0; i < inDim; i++ {
					sum += row[i] * xt[i]
				}
			}
			out[t][o] = sum
		}
	}
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// kernelShapes covers both tile-aligned and ragged dimensions, down to 1.
var kernelShapes = []struct{ out, in int }{
	{1, 1}, {1, 7}, {2, 3}, {3, 5}, {4, 4}, {4, 1}, {5, 9},
	{7, 13}, {8, 8}, {13, 2}, {16, 31}, {31, 16}, {64, 19},
}

func TestMatvecKernelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, sh := range kernelShapes {
		w := randVec(rng, sh.out*sh.in)
		bias := randVec(rng, sh.out)
		x := randVec(rng, sh.in)

		want := make([]float64, sh.out)
		got := make([]float64, sh.out)
		refMatvec(want, w, bias, x, sh.out, sh.in)
		matvecInto(got, w, bias, x, sh.out, sh.in)
		for o := range want {
			if got[o] != want[o] {
				t.Fatalf("matvecInto %dx%d lane %d: %v != %v", sh.out, sh.in, o, got[o], want[o])
			}
		}

		// Accum continues an existing chain: seed both sides identically.
		seed := randVec(rng, sh.out)
		copy(got, seed)
		matvecAccum(got, w, x, sh.out, sh.in)
		refMatvec(want, w, seed, x, sh.out, sh.in) // bias-seeded chain == accum chain
		for o := range want {
			if got[o] != want[o] {
				t.Fatalf("matvecAccum %dx%d lane %d: %v != %v", sh.out, sh.in, o, got[o], want[o])
			}
		}
	}
}

func TestSeqDenseMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, sh := range kernelShapes {
		for _, T := range []int{1, 2, 5, 10} {
			w := randVec(rng, sh.out*sh.in)
			bias := randVec(rng, sh.out)
			x := randSeq(rng, T, sh.in)
			want := randSeq(rng, T, sh.out)
			got := randSeq(rng, T, sh.out)
			for t2 := 0; t2 < T; t2++ {
				refMatvec(want[t2], w, bias, x[t2], sh.out, sh.in)
			}
			seqDenseInto(got, x, w, bias, sh.out, sh.in)
			for t2 := 0; t2 < T; t2++ {
				for o := range want[t2] {
					if got[t2][o] != want[t2][o] {
						t.Fatalf("seqDenseInto %dx%d T=%d t=%d lane %d: %v != %v",
							sh.out, sh.in, T, t2, o, got[t2][o], want[t2][o])
					}
				}
			}
		}
	}
}

func TestConv1dKernelMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, sh := range kernelShapes {
		for _, K := range []int{1, 2, 3, 5} {
			for _, T := range []int{1, 2, 4, 9} {
				outT := T - K + 1
				if outT < 1 {
					outT = 1 // kernel wider than window: truncated taps
				}
				w := randVec(rng, sh.out*K*sh.in)
				bias := randVec(rng, sh.out)
				x := randSeq(rng, T, sh.in)
				want := randSeq(rng, outT, sh.out)
				got := randSeq(rng, outT, sh.out)
				refConv1d(want, x, w, bias, sh.out, sh.in, K)
				conv1dInto(got, x, w, bias, sh.out, sh.in, K)
				for t2 := range want {
					for o := range want[t2] {
						if got[t2][o] != want[t2][o] {
							t.Fatalf("conv1dInto %dx%d K=%d T=%d t=%d lane %d: %v != %v",
								sh.out, sh.in, K, T, t2, o, got[t2][o], want[t2][o])
						}
					}
				}
			}
		}
	}
}

func TestLSTMGatesMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, sh := range []struct{ hidden, in int }{
		{1, 1}, {2, 7}, {3, 3}, {4, 5}, {5, 4}, {8, 13}, {16, 16}, {17, 6},
	} {
		l := NewLSTM(rng, sh.in, sh.hidden)
		x := randVec(rng, sh.in)
		h := randVec(rng, sh.hidden)
		want := make([]float64, 4*sh.hidden)
		got := make([]float64, 4*sh.hidden)
		refGates(want, l.Wx.W, l.Wh.W, l.B.W, x, h, sh.hidden, sh.in)
		l.gates(x, h, got)
		for g := range want {
			if got[g] != want[g] {
				t.Fatalf("gates hidden=%d in=%d lane %d: %v != %v", sh.hidden, sh.in, g, got[g], want[g])
			}
		}
	}
}

// TestPredictorShortWindowAfterFlatten pins the post-Flatten ragged-width
// case: a Predictor sized for maxT timesteps must produce outputs
// bit-identical to Network.Forward when the runtime window is shorter,
// which makes the Flatten output row (T*d) narrower than the Dense layer
// was sized for at scratch allocation (maxT*d).
func TestPredictorShortWindowAfterFlatten(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	const maxT, d = 10, 6
	net := &Network{Layers: []Layer{
		NewDense(rng, d, 8),
		&ReLU{},
		&Flatten{},
		NewDense(rng, maxT*8, 3),
	}}
	p := net.NewPredictor(maxT, d)
	for _, T := range []int{1, 2, 4, maxT} {
		x := randSeq(rng, T, d)
		// The trailing Dense is sized for maxT*8 inputs; shorter windows
		// exercise the kernel's ragged input tail. Forward only reads the
		// first T*8 weights of each row through the T*8-wide Flatten row,
		// so slice the comparison to what both paths compute.
		inDim := T * 8
		dense := net.Layers[3].(*Dense)
		wantRow := make([]float64, dense.Out)
		flat := net.Layers[2].Forward(net.Layers[1].Forward(net.Layers[0].Forward(x, false), false), false)
		refMatvecRagged(wantRow, dense.Weight.W, dense.Bias.W, flat[0], dense.Out, dense.In, inDim)
		got := p.Forward(x)
		for o := range wantRow {
			if got[o] != wantRow[o] {
				t.Fatalf("T=%d lane %d: predictor %v != reference %v", T, o, got[o], wantRow[o])
			}
		}
	}
}

// refMatvecRagged is refMatvec where each weight row is rowWidth wide but
// only the first in inputs participate (the short-window Flatten case).
func refMatvecRagged(dst, w, bias, x []float64, out, rowWidth, in int) {
	for o := 0; o < out; o++ {
		sum := bias[o]
		row := w[o*rowWidth : o*rowWidth+in]
		for i := 0; i < in; i++ {
			sum += row[i] * x[i]
		}
		dst[o] = sum
	}
}

// Benchmark pairs: the pre-vectorization scalar loops (ref*) against the
// kernels that replaced them, at dimensions typical of the monitor's
// heads (window 10, a few dozen features, hidden 32).

func benchSeq(rng *rand.Rand, T, d int) [][]float64 {
	x := make([][]float64, T)
	for t := range x {
		x[t] = randVec(rng, d)
	}
	return x
}

func BenchmarkSeqDenseNaive(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const T, in, out = 10, 40, 64
	x := benchSeq(rng, T, in)
	w, bias := randVec(rng, out*in), randVec(rng, out)
	dst := benchSeq(rng, T, out)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for t := 0; t < T; t++ {
			refMatvec(dst[t], w, bias, x[t], out, in)
		}
	}
}

func BenchmarkSeqDenseKernel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const T, in, out = 10, 40, 64
	x := benchSeq(rng, T, in)
	w, bias := randVec(rng, out*in), randVec(rng, out)
	dst := benchSeq(rng, T, out)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		seqDenseInto(dst, x, w, bias, out, in)
	}
}

func BenchmarkLSTMGatesNaive(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	const hidden, in = 32, 40
	wx, wh := randVec(rng, 4*hidden*in), randVec(rng, 4*hidden*hidden)
	bias := randVec(rng, 4*hidden)
	x, h := randVec(rng, in), randVec(rng, hidden)
	dst := make([]float64, 4*hidden)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		refGates(dst, wx, wh, bias, x, h, hidden, in)
	}
}

func BenchmarkLSTMGatesKernel(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	const hidden, in = 32, 40
	wx, wh := randVec(rng, 4*hidden*in), randVec(rng, 4*hidden*hidden)
	bias := randVec(rng, 4*hidden)
	x, h := randVec(rng, in), randVec(rng, hidden)
	dst := make([]float64, 4*hidden)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		matvecInto(dst, wx, bias, x, 4*hidden, in)
		matvecAccum(dst, wh, h, 4*hidden, hidden)
	}
}

func BenchmarkConv1dNaive(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const T, in, out, K = 10, 16, 32, 3
	x := benchSeq(rng, T, in)
	w, bias := randVec(rng, out*K*in), randVec(rng, out)
	dst := benchSeq(rng, T-K+1, out)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		refConv1d(dst, x, w, bias, out, in, K)
	}
}

func BenchmarkConv1dKernel(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const T, in, out, K = 10, 16, 32, 3
	x := benchSeq(rng, T, in)
	w, bias := randVec(rng, out*K*in), randVec(rng, out)
	dst := benchSeq(rng, T-K+1, out)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		conv1dInto(dst, x, w, bias, out, in, K)
	}
}
