package nn

import "math"

// This file is the zero-allocation inference path used by the streaming
// monitor. Training and one-shot evaluation keep using Network.Forward,
// which allocates fresh output sequences; long-lived streams instead hold a
// Predictor, which carries per-layer scratch buffers allocated once and
// reused on every call, so a warm per-frame inference performs no heap
// allocations at all (the property pinned by the allocation-budget tests in
// alloc_test.go and safemon's perf suite).

// scratch is one layer's reusable inference workspace. rows is the output
// sequence buffer (row views into one flat backing array); a, b and c are
// auxiliary vectors for layers that need running state inside a single
// forward (the LSTM's hidden, cell and pre-activation vectors; the
// Flatten layer's backing row).
type scratch struct {
	rows    [][]float64
	a, b, c []float64
}

// newSeqScratch builds a scratch whose rows hold up to t rows of width d.
func newSeqScratch(t, d int) *scratch {
	return &scratch{rows: seq(t, d)}
}

// inferable is the optional layer capability backing Predictor: a
// scratch-based inference forward that must produce outputs numerically
// identical to Forward(x, false) while writing only into the scratch.
// Every layer in this package implements it; Predictor falls back to the
// allocating Forward for any future layer that does not.
type inferable interface {
	// newScratch sizes a scratch for windows of at most maxT timesteps
	// whose rows have inDim features.
	newScratch(maxT, inDim int) *scratch
	// infer runs the inference-mode forward into s and returns the output
	// sequence (backed by s, or by x for pass-through layers).
	infer(x [][]float64, s *scratch) [][]float64
}

// Predictor executes inference forwards through a fixed network with
// preallocated per-layer scratch, so a warm Predictor performs zero heap
// allocations per call. It only ever reads the network's weights — many
// Predictors may share one trained Network — but a single Predictor is not
// safe for concurrent use: create one per stream.
type Predictor struct {
	net   *Network
	scr   []*scratch
	probs []float64
}

// NewPredictor builds a reusable inference workspace for windows of up to
// maxT timesteps with inDim input features. Outputs are numerically
// identical to Network.Predict / PredictClass on the same window.
func (n *Network) NewPredictor(maxT, inDim int) *Predictor {
	p := &Predictor{net: n, scr: make([]*scratch, len(n.Layers))}
	d := inDim
	for i, l := range n.Layers {
		if il, ok := l.(inferable); ok {
			p.scr[i] = il.newScratch(maxT, d)
		}
		if _, isFlatten := l.(*Flatten); isFlatten {
			// Flatten's true output width depends on the runtime window
			// length; maxT*d is its widest possible row.
			d = maxT * d
		} else {
			d = l.OutDim(d)
		}
	}
	p.probs = make([]float64, d)
	return p
}

// Forward runs the network on a window and returns the final logits. The
// returned slice is scratch-backed and is overwritten by the next call.
func (p *Predictor) Forward(x [][]float64) []float64 {
	for i, l := range p.net.Layers {
		if il, ok := l.(inferable); ok {
			x = il.infer(x, p.scr[i])
		} else {
			x = l.Forward(x, false)
		}
	}
	if len(x) == 0 {
		return nil
	}
	return x[len(x)-1]
}

// Predict returns class probabilities for a window. The returned slice is
// the Predictor's own buffer and is overwritten by the next call.
func (p *Predictor) Predict(x [][]float64) []float64 {
	logits := p.Forward(x)
	return SoftmaxInto(p.probs[:len(logits)], logits)
}

// PredictClass returns the argmax class for a window.
func (p *Predictor) PredictClass(x [][]float64) int {
	return Argmax(p.Forward(x))
}

// ---- per-layer inference implementations ----

func (d *Dense) newScratch(maxT, _ int) *scratch { return newSeqScratch(maxT, d.Out) }

func (d *Dense) infer(x [][]float64, s *scratch) [][]float64 {
	out := s.rows[:len(x)]
	if d.Qnt != nil {
		seqDenseQuantInto(out, x, d.Qnt.Q, d.Qnt.Scale, d.Bias.W, d.Out, d.In)
	} else {
		seqDenseInto(out, x, d.Weight.W, d.Bias.W, d.Out, d.In)
	}
	return out
}

func (r *ReLU) newScratch(maxT, inDim int) *scratch { return newSeqScratch(maxT, inDim) }

func (r *ReLU) infer(x [][]float64, s *scratch) [][]float64 {
	if len(x) == 0 {
		return x
	}
	out := s.rows[:len(x)]
	for t := range x {
		ot := out[t][:len(x[t])]
		for i, v := range x[t] {
			if v > 0 {
				ot[i] = v
			} else {
				ot[i] = 0
			}
		}
		out[t] = ot
	}
	return out
}

func (a *Tanh) newScratch(maxT, inDim int) *scratch { return newSeqScratch(maxT, inDim) }

func (a *Tanh) infer(x [][]float64, s *scratch) [][]float64 {
	if len(x) == 0 {
		return x
	}
	out := s.rows[:len(x)]
	for t := range x {
		ot := out[t][:len(x[t])]
		for i, v := range x[t] {
			ot[i] = math.Tanh(v)
		}
		out[t] = ot
	}
	return out
}

// Dropout is identity at inference; no scratch needed.
func (d *Dropout) newScratch(int, int) *scratch                { return nil }
func (d *Dropout) infer(x [][]float64, _ *scratch) [][]float64 { return x }

// TakeLast returns a view of its input; no scratch needed.
func (l *TakeLast) newScratch(int, int) *scratch { return nil }
func (l *TakeLast) infer(x [][]float64, _ *scratch) [][]float64 {
	if len(x) == 0 {
		return x
	}
	return x[len(x)-1:]
}

func (g *GlobalMaxPool) newScratch(_, inDim int) *scratch { return newSeqScratch(1, inDim) }

func (g *GlobalMaxPool) infer(x [][]float64, s *scratch) [][]float64 {
	if len(x) == 0 {
		return x
	}
	d := len(x[0])
	out := s.rows[:1]
	row := out[0][:d]
	for i := 0; i < d; i++ {
		best := x[0][i]
		for t := 1; t < len(x); t++ {
			if x[t][i] > best {
				best = x[t][i]
			}
		}
		row[i] = best
	}
	out[0] = row
	return out
}

func (f *Flatten) newScratch(maxT, inDim int) *scratch {
	// The output row length varies with the runtime window, so the flat
	// backing lives in a and rows[0] is re-sliced from it per call.
	return &scratch{rows: make([][]float64, 1), a: make([]float64, maxT*inDim)}
}

func (f *Flatten) infer(x [][]float64, s *scratch) [][]float64 {
	if len(x) == 0 {
		return x
	}
	tt, d := len(x), len(x[0])
	row := s.a[:tt*d]
	for t := range x {
		copy(row[t*d:(t+1)*d], x[t])
	}
	s.rows[0] = row
	return s.rows
}

func (c *Conv1D) newScratch(maxT, _ int) *scratch { return newSeqScratch(maxT, c.Out) }

func (c *Conv1D) infer(x [][]float64, s *scratch) [][]float64 {
	T := len(x)
	outT := T - c.K + 1
	if outT < 1 {
		outT = 1
	}
	out := s.rows[:outT]
	if c.Qnt != nil {
		conv1dQuantInto(out, x, c.Qnt.Q, c.Qnt.Scale, c.Bias.W, c.Out, c.In, c.K)
	} else {
		conv1dInto(out, x, c.Weight.W, c.Bias.W, c.Out, c.In, c.K)
	}
	return out
}

func (l *LSTM) newScratch(maxT, _ int) *scratch {
	H := l.Hidden
	s := newSeqScratch(maxT, H)
	s.a = make([]float64, H)   // hidden state
	s.b = make([]float64, H)   // cell state
	s.c = make([]float64, 4*H) // gate pre-activations
	return s
}

func (l *LSTM) infer(x [][]float64, s *scratch) [][]float64 {
	T, H := len(x), l.Hidden
	out := s.rows[:T]
	h, c, pre := s.a, s.b, s.c
	for j := 0; j < H; j++ {
		h[j], c[j] = 0, 0
	}
	for t := 0; t < T; t++ {
		l.gates(x[t], h, pre)
		for j := 0; j < H; j++ {
			i := sigmoid(pre[j])
			f := sigmoid(pre[H+j])
			g := math.Tanh(pre[2*H+j])
			o := sigmoid(pre[3*H+j])
			cv := f*c[j] + i*g
			hv := o * math.Tanh(cv)
			c[j] = cv
			h[j] = hv
			out[t][j] = hv
		}
	}
	return out
}
