package nn

import (
	"math"
	"math/rand"
	"testing"
)

// numericalGrad estimates dLoss/dw for one weight via central differences.
func numericalGrad(net *Network, x [][]float64, target int, w *float64) float64 {
	const eps = 1e-5
	orig := *w
	*w = orig + eps
	lossP, _ := CrossEntropyLoss(net.Forward(x, false), target)
	*w = orig - eps
	lossM, _ := CrossEntropyLoss(net.Forward(x, false), target)
	*w = orig
	return (lossP - lossM) / (2 * eps)
}

// checkGradients compares analytic and numeric gradients for every
// parameter of the network on one sample.
func checkGradients(t *testing.T, net *Network, x [][]float64, target int) {
	t.Helper()
	// analytic pass (train mode: Backward needs the caches, which
	// inference-mode Forward intentionally no longer writes)
	for _, p := range net.Params() {
		p.ZeroGrad()
	}
	logits := net.Forward(x, true)
	_, grad := CrossEntropyLoss(logits, target)
	g := [][]float64{grad}
	for i := len(net.Layers) - 1; i >= 0; i-- {
		g = net.Layers[i].Backward(g)
	}
	var worst float64
	var checked int
	for _, p := range net.Params() {
		for i := range p.W {
			// Spot-check a subset for speed on big layers.
			if len(p.W) > 64 && i%7 != 0 {
				continue
			}
			analytic := p.G[i]
			numeric := numericalGrad(net, x, target, &p.W[i])
			diff := math.Abs(analytic - numeric)
			scale := math.Max(1, math.Max(math.Abs(analytic), math.Abs(numeric)))
			rel := diff / scale
			if rel > worst {
				worst = rel
			}
			if rel > 1e-4 {
				t.Errorf("%s[%d]: analytic %.8f vs numeric %.8f (rel %.2g)", p.Name, i, analytic, numeric, rel)
			}
			checked++
		}
	}
	t.Logf("checked %d weights, worst relative error %.2g", checked, worst)
}

func randSeq(rng *rand.Rand, t, d int) [][]float64 {
	x := make([][]float64, t)
	for i := range x {
		x[i] = make([]float64, d)
		for j := range x[i] {
			x[i][j] = rng.NormFloat64()
		}
	}
	return x
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := NewNetwork(NewDense(rng, 5, 7), &ReLU{}, &TakeLast{}, NewDense(rng, 7, 3))
	checkGradients(t, net, randSeq(rng, 4, 5), 2)
}

func TestLSTMGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := NewNetwork(NewLSTM(rng, 4, 6), &TakeLast{}, NewDense(rng, 6, 3))
	checkGradients(t, net, randSeq(rng, 5, 4), 1)
}

func TestStackedLSTMGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewNetwork(NewLSTM(rng, 3, 5), NewLSTM(rng, 5, 4), &TakeLast{}, NewDense(rng, 4, 2))
	checkGradients(t, net, randSeq(rng, 6, 3), 0)
}

func TestConv1DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := NewNetwork(NewConv1D(rng, 4, 6, 3), &ReLU{}, &GlobalMaxPool{}, NewDense(rng, 6, 3))
	checkGradients(t, net, randSeq(rng, 8, 4), 2)
}

func TestStackedConvGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := NewNetwork(
		NewConv1D(rng, 3, 5, 3), &ReLU{},
		NewConv1D(rng, 5, 4, 2), &ReLU{},
		&GlobalMaxPool{}, NewDense(rng, 4, 2),
	)
	checkGradients(t, net, randSeq(rng, 9, 3), 1)
}

func TestFlattenMLPGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := NewNetwork(&Flatten{}, NewDense(rng, 12, 8), &Tanh{}, NewDense(rng, 8, 4))
	checkGradients(t, net, randSeq(rng, 3, 4), 3)
}
