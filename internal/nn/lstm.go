package nn

import (
	"math"
	"math/rand"
)

// LSTM is a single long short-term memory layer processing a sequence
// [T][In] into hidden states [T][Hidden], with full backpropagation through
// time over the window. Gate layout in the packed weight matrices is
// (input, forget, cell, output).
//
// The layer also supports stateful streaming via Step, which the online
// monitor uses to process one kinematics sample at a time without
// re-running the whole window.
type LSTM struct {
	In, Hidden int

	Wx *Param // 4*Hidden x In, input-to-gates
	Wh *Param // 4*Hidden x Hidden, hidden-to-gates
	B  *Param // 4*Hidden

	// caches for BPTT
	xs              [][]float64
	hs, cs          [][]float64 // hidden and cell states, length T+1 (index 0 = initial)
	gi, gf, gg, g_o [][]float64 // gate activations per timestep

	// streaming state and scratch, allocated by ResetStream and reused by
	// every Step so the steady-state step path never touches the heap
	streamH, streamC     []float64
	streamPre, streamOut []float64
}

var _ Layer = (*LSTM)(nil)

// NewLSTM constructs an LSTM layer with Glorot-initialized weights and
// forget-gate bias of 1 (standard practice for training stability).
func NewLSTM(rng *rand.Rand, in, hidden int) *LSTM {
	l := &LSTM{
		In:     in,
		Hidden: hidden,
		Wx:     newParam("lstm.Wx", 4*hidden*in),
		Wh:     newParam("lstm.Wh", 4*hidden*hidden),
		B:      newParam("lstm.b", 4*hidden),
	}
	glorotInit(rng, l.Wx.W, in, hidden)
	glorotInit(rng, l.Wh.W, hidden, hidden)
	for i := hidden; i < 2*hidden; i++ { // forget-gate bias
		l.B.W[i] = 1
	}
	return l
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// gates computes the pre-activation gate vector for input x and previous
// hidden state h, writing into dst of length 4*Hidden. Each lane's
// accumulation order — bias, then the Wx terms, then the Wh terms — is
// preserved across the two kernel calls, so gate pre-activations are
// bit-identical to the scalar loop this replaced.
func (l *LSTM) gates(x, h, dst []float64) {
	H := l.Hidden
	matvecInto(dst, l.Wx.W, l.B.W, x, 4*H, l.In)
	matvecAccum(dst, l.Wh.W, h, 4*H, H)
}

// Forward implements Layer, running the full window with state reset.
// BPTT caches are only written in train mode, keeping inference read-only
// (and therefore safe for concurrent streams sharing one trained network).
func (l *LSTM) Forward(x [][]float64, train bool) [][]float64 {
	T, H := len(x), l.Hidden
	out := seq(T, H)
	h := make([]float64, H)
	c := make([]float64, H)
	if train {
		l.xs = x
		l.hs = seq(T+1, H)
		l.cs = seq(T+1, H)
		l.gi = seq(T, H)
		l.gf = seq(T, H)
		l.gg = seq(T, H)
		l.g_o = seq(T, H)
	}

	pre := make([]float64, 4*H)
	for t := 0; t < T; t++ {
		l.gates(x[t], h, pre)
		for j := 0; j < H; j++ {
			i := sigmoid(pre[j])
			f := sigmoid(pre[H+j])
			g := math.Tanh(pre[2*H+j])
			o := sigmoid(pre[3*H+j])
			cv := f*c[j] + i*g
			hv := o * math.Tanh(cv)
			if train {
				l.gi[t][j], l.gf[t][j], l.gg[t][j], l.g_o[t][j] = i, f, g, o
				l.cs[t+1][j] = cv
				l.hs[t+1][j] = hv
			}
			c[j] = cv
			h[j] = hv
			out[t][j] = hv
		}
	}
	return out
}

// Backward implements Layer (full BPTT over the cached window).
func (l *LSTM) Backward(gradOut [][]float64) [][]float64 {
	T, H := len(l.xs), l.Hidden
	gradIn := seq(T, l.In)
	dhNext := make([]float64, H)
	dcNext := make([]float64, H)
	dGate := make([]float64, 4*H)

	for t := T - 1; t >= 0; t-- {
		for j := 0; j < H; j++ {
			dh := gradOut[t][j] + dhNext[j]
			c := l.cs[t+1][j]
			tc := math.Tanh(c)
			o := l.g_o[t][j]
			do := dh * tc
			dc := dh*o*(1-tc*tc) + dcNext[j]
			i, f, g := l.gi[t][j], l.gf[t][j], l.gg[t][j]
			di := dc * g
			dg := dc * i
			df := dc * l.cs[t][j]
			dcNext[j] = dc * f
			// pre-activation gradients
			dGate[j] = di * i * (1 - i)
			dGate[H+j] = df * f * (1 - f)
			dGate[2*H+j] = dg * (1 - g*g)
			dGate[3*H+j] = do * o * (1 - o)
		}
		// accumulate parameter grads and input/hidden grads
		for j := range dhNext {
			dhNext[j] = 0
		}
		xt := l.xs[t]
		ht := l.hs[t]
		for g := 0; g < 4*H; g++ {
			dg := dGate[g]
			if dg == 0 {
				continue
			}
			l.B.G[g] += dg
			wxRow := l.Wx.W[g*l.In : (g+1)*l.In]
			gxRow := l.Wx.G[g*l.In : (g+1)*l.In]
			gi := gradIn[t]
			for i := 0; i < l.In; i++ {
				gxRow[i] += dg * xt[i]
				gi[i] += dg * wxRow[i]
			}
			whRow := l.Wh.W[g*H : (g+1)*H]
			ghRow := l.Wh.G[g*H : (g+1)*H]
			for i := 0; i < H; i++ {
				ghRow[i] += dg * ht[i]
				dhNext[i] += dg * whRow[i]
			}
		}
	}
	return gradIn
}

// Params implements Layer.
func (l *LSTM) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }

// OutDim implements Layer.
func (l *LSTM) OutDim(int) int { return l.Hidden }

// ResetStream initializes (first call) or zeroes (subsequent calls) the
// streaming hidden/cell state and scratch used by Step. It must be called
// before the first Step of every stream; after it, a reused layer is
// indistinguishable from a fresh one and Step allocates nothing.
func (l *LSTM) ResetStream() {
	H := l.Hidden
	if len(l.streamH) != H {
		l.streamH = make([]float64, H)
		l.streamC = make([]float64, H)
		l.streamPre = make([]float64, 4*H)
		l.streamOut = make([]float64, H)
		return
	}
	for j := 0; j < H; j++ {
		l.streamH[j], l.streamC[j] = 0, 0
	}
}

// Step processes one timestep statefully (inference only), returning the
// new hidden state. It backs the online monitor's constant-latency path.
// ResetStream must be called once before the first Step; Step itself never
// allocates, and the returned slice is reused by the next Step.
func (l *LSTM) Step(x []float64) []float64 {
	H := l.Hidden
	pre, out := l.streamPre, l.streamOut
	l.gates(x, l.streamH, pre)
	for j := 0; j < H; j++ {
		i := sigmoid(pre[j])
		f := sigmoid(pre[H+j])
		g := math.Tanh(pre[2*H+j])
		o := sigmoid(pre[3*H+j])
		c := f*l.streamC[j] + i*g
		h := o * math.Tanh(c)
		l.streamC[j] = c
		l.streamH[j] = h
		out[j] = h
	}
	return out
}
