package nn

import "math/rand"

// StackedLSTMConfig describes the gesture-classifier architecture from the
// paper: stacked LSTM layers, a fully connected ReLU layer, and a softmax
// classification head ("a 2 layer stacked LSTM ... comprising of 512 and 96
// LSTM units respectively, followed by a fully-connected layer with 64
// units and a final softmax layer"). Sizes are configurable so experiments
// can use CPU-scale variants of the same architecture.
type StackedLSTMConfig struct {
	InputDim   int
	LSTMUnits  []int // hidden sizes of the stacked LSTM layers
	DenseUnits int   // fully connected layer width (0 to skip)
	NumClasses int
	Dropout    float64
}

// BuildStackedLSTM constructs the paper's stacked-LSTM classifier.
func BuildStackedLSTM(rng *rand.Rand, cfg StackedLSTMConfig) *Network {
	var layers []Layer
	in := cfg.InputDim
	for _, h := range cfg.LSTMUnits {
		layers = append(layers, NewLSTM(rng, in, h))
		in = h
	}
	layers = append(layers, &TakeLast{})
	if cfg.Dropout > 0 {
		layers = append(layers, NewDropout(rng, cfg.Dropout))
	}
	if cfg.DenseUnits > 0 {
		layers = append(layers, NewDense(rng, in, cfg.DenseUnits), &ReLU{})
		in = cfg.DenseUnits
	}
	layers = append(layers, NewDense(rng, in, cfg.NumClasses))
	return NewNetwork(layers...)
}

// Conv1DConfig describes the 1D-CNN erroneous-gesture detector: Conv1D
// feature extraction, ReLU, global max pooling over time, fully connected
// head ("Conv 512,128,32,16*" rows of Tables V/VI, where * marks the fully
// connected layer).
type Conv1DConfig struct {
	InputDim   int
	ConvUnits  []int // output channels of the stacked Conv1D layers
	KernelSize int
	DenseUnits int
	NumClasses int
	Dropout    float64
}

// BuildConv1D constructs the paper's 1D-CNN classifier.
func BuildConv1D(rng *rand.Rand, cfg Conv1DConfig) *Network {
	k := cfg.KernelSize
	if k <= 0 {
		k = 3
	}
	var layers []Layer
	in := cfg.InputDim
	for _, c := range cfg.ConvUnits {
		layers = append(layers, NewConv1D(rng, in, c, k), &ReLU{})
		in = c
	}
	layers = append(layers, &GlobalMaxPool{})
	if cfg.Dropout > 0 {
		layers = append(layers, NewDropout(rng, cfg.Dropout))
	}
	if cfg.DenseUnits > 0 {
		layers = append(layers, NewDense(rng, in, cfg.DenseUnits), &ReLU{})
		in = cfg.DenseUnits
	}
	layers = append(layers, NewDense(rng, in, cfg.NumClasses))
	return NewNetwork(layers...)
}

// MLPConfig describes a plain multi-layer perceptron over flattened
// windows, used as a light-weight ablation model.
type MLPConfig struct {
	InputDim   int // flattened window size (T*D)
	Hidden     []int
	NumClasses int
	Dropout    float64
}

// BuildMLP constructs a flatten + dense-stack classifier.
func BuildMLP(rng *rand.Rand, cfg MLPConfig) *Network {
	layers := []Layer{&Flatten{}}
	in := cfg.InputDim
	for _, h := range cfg.Hidden {
		layers = append(layers, NewDense(rng, in, h), &ReLU{})
		if cfg.Dropout > 0 {
			layers = append(layers, NewDropout(rng, cfg.Dropout))
		}
		in = h
	}
	layers = append(layers, NewDense(rng, in, cfg.NumClasses))
	return NewNetwork(layers...)
}
