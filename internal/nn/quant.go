package nn

import "math"

// Weight-only int8 quantization for the inference path. Each Dense /
// Conv1D output channel gets a symmetric per-channel scale
// (maxabs(row)/127) and its weight row rounds to int8; inference then
// computes bias[o] + scale[o] * Σ q[i]·x[i] with a float64 accumulator.
// The float weights stay the source of truth — training, Forward, and
// re-quantization all keep working — and quantization is deterministic,
// so fitting then quantizing always yields the same int8 tensors as
// loading a float artifact and quantizing at load time.

// QuantWeights holds one layer's int8 weights with per-output-channel
// scales. Q is row-major like the float matrix it shadows; Scale has one
// entry per output channel. A zero scale marks an all-zero weight row.
type QuantWeights struct {
	Q     []int8
	Scale []float64
}

// quantizeRows rounds a row-major rows×cols float matrix to int8 with a
// symmetric per-row scale of maxabs(row)/127. Rounding is
// round-half-away-from-zero via math.Round, clamped to ±127 so the int8
// range is symmetric (−128 is never produced).
func quantizeRows(w []float64, rows, cols int) *QuantWeights {
	qw := &QuantWeights{Q: make([]int8, rows*cols), Scale: make([]float64, rows)}
	for r := 0; r < rows; r++ {
		row := w[r*cols : (r+1)*cols]
		maxAbs := 0.0
		for _, v := range row {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			continue // Scale[r] = 0, Q row stays zero
		}
		s := maxAbs / 127
		qw.Scale[r] = s
		inv := 1 / s
		for i, v := range row {
			q := math.Round(v * inv)
			if q > 127 {
				q = 127
			} else if q < -127 {
				q = -127
			}
			qw.Q[r*cols+i] = int8(q)
		}
	}
	return qw
}

// Quantize attaches int8 per-channel quantized weights to every Dense and
// Conv1D layer, switching Predictor / BatchPredictor inference (not
// Forward or training) to the quantized kernels. Idempotent: layers that
// already carry quantized weights are left untouched, so loading an
// artifact with a persisted int8 section and re-quantizing is a no-op.
func (n *Network) Quantize() {
	for _, l := range n.Layers {
		switch v := l.(type) {
		case *Dense:
			if v.Qnt == nil {
				v.Qnt = quantizeRows(v.Weight.W, v.Out, v.In)
			}
		case *Conv1D:
			if v.Qnt == nil {
				v.Qnt = quantizeRows(v.Weight.W, v.Out, v.K*v.In)
			}
		}
	}
}

// Quantized reports whether any layer carries int8 quantized weights.
func (n *Network) Quantized() bool {
	for _, l := range n.Layers {
		switch v := l.(type) {
		case *Dense:
			if v.Qnt != nil {
				return true
			}
		case *Conv1D:
			if v.Qnt != nil {
				return true
			}
		}
	}
	return false
}
