package nn

import "math"

// Softmax converts logits into a probability distribution, numerically
// stabilized by max subtraction.
func Softmax(logits []float64) []float64 {
	return SoftmaxInto(make([]float64, len(logits)), logits)
}

// SoftmaxInto writes softmax(logits) into out, which must have the same
// length, and returns out. It is the allocation-free form used by the
// streaming inference path.
func SoftmaxInto(out, logits []float64) []float64 {
	maxL := math.Inf(-1)
	for _, v := range logits {
		if v > maxL {
			maxL = v
		}
	}
	var sum float64
	for i, v := range logits {
		out[i] = math.Exp(v - maxL)
		sum += out[i]
	}
	if sum > 0 {
		for i := range out {
			out[i] /= sum
		}
	}
	return out
}

// CrossEntropyLoss computes the categorical cross-entropy of softmax(logits)
// against a target class index, together with the gradient of the loss with
// respect to the logits (probs - onehot).
func CrossEntropyLoss(logits []float64, target int) (loss float64, grad []float64) {
	probs := Softmax(logits)
	grad = probs
	p := probs[target]
	if p < 1e-15 {
		p = 1e-15
	}
	loss = -math.Log(p)
	grad[target] -= 1
	return loss, grad
}

// WeightedCrossEntropyLoss is CrossEntropyLoss with a per-class weight
// multiplied into both loss and gradient, used to handle class imbalance in
// the safe/unsafe detection stage.
func WeightedCrossEntropyLoss(logits []float64, target int, weight float64) (float64, []float64) {
	loss, grad := CrossEntropyLoss(logits, target)
	for i := range grad {
		grad[i] *= weight
	}
	return loss * weight, grad
}

// Argmax returns the index of the maximum element, or -1 for empty input.
func Argmax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best, bestI := xs[0], 0
	for i, v := range xs[1:] {
		if v > best {
			best, bestI = v, i+1
		}
	}
	return bestI
}
