package nn

import (
	"errors"
	"fmt"
	"math/rand"
)

// Sample is one training example: a [T][D] input window and a class label.
type Sample struct {
	X [][]float64
	Y int
	// Weight scales the sample's loss; 0 means 1.
	Weight float64
}

// Network is a sequential stack of layers ending in a logits layer; the
// softmax is folded into the loss.
type Network struct {
	Layers []Layer
}

// NewNetwork builds a sequential network from layers.
func NewNetwork(layers ...Layer) *Network {
	return &Network{Layers: layers}
}

// Params returns all learnable parameters of the network.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// NumWeights returns the total number of learnable weights.
func (n *Network) NumWeights() int {
	var total int
	for _, p := range n.Params() {
		total += len(p.W)
	}
	return total
}

// Forward runs the network on a window, returning the final logits (the
// last layer must reduce to a single timestep).
func (n *Network) Forward(x [][]float64, train bool) []float64 {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	if len(x) == 0 {
		return nil
	}
	return x[len(x)-1]
}

// Predict returns class probabilities for a window (inference mode).
func (n *Network) Predict(x [][]float64) []float64 {
	return Softmax(n.Forward(x, false))
}

// PredictClass returns the argmax class for a window.
func (n *Network) PredictClass(x [][]float64) int {
	return Argmax(n.Forward(x, false))
}

// backward pushes a logits gradient through the network.
func (n *Network) backward(grad []float64) {
	g := [][]float64{grad}
	for i := len(n.Layers) - 1; i >= 0; i-- {
		g = n.Layers[i].Backward(g)
	}
}

// TrainConfig controls Network.Fit.
type TrainConfig struct {
	Epochs     int
	BatchSize  int
	LR         float64
	DecayEvery int     // epochs between LR decays (0 = none)
	DecayRate  float64 // multiplicative decay factor
	ClipNorm   float64 // gradient clip (0 = none)
	// Patience is the early-stopping patience in epochs over validation
	// loss; 0 disables early stopping.
	Patience int
	// Rng shuffles mini-batches. Required.
	Rng *rand.Rand
	// Verbose, if non-nil, receives one line per epoch.
	Verbose func(string)
}

// ErrNoTrainingData is returned when Fit receives an empty training set.
var ErrNoTrainingData = errors.New("nn: no training data")

// FitResult summarizes a training run.
type FitResult struct {
	Epochs       int
	FinalLoss    float64
	BestValLoss  float64
	StoppedEarly bool
	FinalLR      float64
}

// Fit trains the network with Adam + step decay and early stopping on a
// held-out validation set (paper §III). val may be empty, in which case
// early stopping is disabled and training runs all epochs.
func (n *Network) Fit(train, val []Sample, cfg TrainConfig) (FitResult, error) {
	if len(train) == 0 {
		return FitResult{}, ErrNoTrainingData
	}
	if cfg.Rng == nil {
		return FitResult{}, errors.New("nn: TrainConfig.Rng is required")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 10
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.LR <= 0 {
		cfg.LR = 1e-3
	}
	opt := NewAdam(cfg.LR)
	opt.DecayEvery = cfg.DecayEvery
	opt.DecayFactor = cfg.DecayRate
	opt.ClipNorm = cfg.ClipNorm
	params := n.Params()

	idx := make([]int, len(train))
	for i := range idx {
		idx[i] = i
	}

	res := FitResult{BestValLoss: 1e300}
	var bestWeights [][]float64
	badEpochs := 0

	for epoch := 1; epoch <= cfg.Epochs; epoch++ {
		cfg.Rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			for _, i := range idx[start:end] {
				s := train[i]
				logits := n.Forward(s.X, true)
				w := s.Weight
				if w == 0 {
					w = 1
				}
				loss, grad := WeightedCrossEntropyLoss(logits, s.Y, w)
				epochLoss += loss
				n.backward(grad)
			}
			opt.Step(params, end-start)
		}
		epochLoss /= float64(len(train))
		res.FinalLoss = epochLoss
		res.Epochs = epoch
		opt.EndEpoch(epoch)

		if len(val) > 0 {
			valLoss := n.EvalLoss(val)
			if cfg.Verbose != nil {
				cfg.Verbose(fmt.Sprintf("epoch %d: train loss %.4f, val loss %.4f, lr %.2g", epoch, epochLoss, valLoss, opt.LR))
			}
			if valLoss < res.BestValLoss-1e-6 {
				res.BestValLoss = valLoss
				badEpochs = 0
				bestWeights = snapshot(params)
			} else if cfg.Patience > 0 {
				badEpochs++
				if badEpochs >= cfg.Patience {
					res.StoppedEarly = true
					break
				}
			}
		} else if cfg.Verbose != nil {
			cfg.Verbose(fmt.Sprintf("epoch %d: train loss %.4f, lr %.2g", epoch, epochLoss, opt.LR))
		}
	}
	if bestWeights != nil {
		restore(params, bestWeights)
	}
	res.FinalLR = opt.LR
	return res, nil
}

// EvalLoss computes the mean cross-entropy over a sample set.
func (n *Network) EvalLoss(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	var total float64
	for _, s := range samples {
		logits := n.Forward(s.X, false)
		w := s.Weight
		if w == 0 {
			w = 1
		}
		loss, _ := WeightedCrossEntropyLoss(logits, s.Y, w)
		total += loss
	}
	return total / float64(len(samples))
}

// Accuracy computes classification accuracy over a sample set.
func (n *Network) Accuracy(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range samples {
		if n.PredictClass(s.X) == s.Y {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}

func snapshot(params []*Param) [][]float64 {
	out := make([][]float64, len(params))
	for i, p := range params {
		out[i] = make([]float64, len(p.W))
		copy(out[i], p.W)
	}
	return out
}

func restore(params []*Param, weights [][]float64) {
	for i, p := range params {
		copy(p.W, weights[i])
	}
}
