package nn

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// encodeSpec gob-encodes a raw netSpec, letting tests craft corrupt wire
// forms that Encode itself would never produce.
func encodeSpec(t *testing.T, spec netSpec) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(spec); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDecodeNetworkRejectsCorruptSpecs pins the hardened decoder: shape
// ints and weight tensors that disagree must yield ErrBadNetworkSpec — not
// an index panic, and never a silently half-copied layer.
func TestDecodeNetworkRejectsCorruptSpecs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := map[string]netSpec{
		"no layers":     {},
		"unknown kind":  {Layers: []layerSpec{{Kind: "transformer"}}},
		"dense no ints": {Layers: []layerSpec{{Kind: "dense", Weights: [][]float64{{1}, {1}}}}},
		"dense negative dim": {Layers: []layerSpec{{
			Kind: "dense", Ints: []int{-3, 2}, Weights: [][]float64{{1}, {1}}}}},
		"dense oversized dims": {Layers: []layerSpec{{
			Kind: "dense", Ints: []int{1 << 20, 4}, Weights: [][]float64{{}, {1, 2, 3, 4}}}}},
		"lstm oversized dims": {Layers: []layerSpec{{
			Kind: "lstm", Ints: []int{1 << 20, 1 << 20}, Weights: [][]float64{{}, {}, {}}}}},
		"dense short weights": {Layers: []layerSpec{{
			Kind: "dense", Ints: []int{4, 2}, Weights: [][]float64{{1, 2}, {1, 2}}}}},
		"dense missing bias": {Layers: []layerSpec{{
			Kind: "dense", Ints: []int{1, 1}, Weights: [][]float64{{1}}}}},
		"lstm short Wx": {Layers: []layerSpec{{
			Kind: "lstm", Ints: []int{2, 3}, Weights: [][]float64{{1}, make([]float64, 36), make([]float64, 12)}}}},
		"conv wrong kernel": {Layers: []layerSpec{{
			Kind: "conv1d", Ints: []int{2, 2, 3}, Weights: [][]float64{make([]float64, 5), make([]float64, 2)}}}},
		"dropout p=1": {Layers: []layerSpec{{Kind: "dropout", Float: 1.0}}},
		"dropout NaN-adjacent": {Layers: []layerSpec{{
			Kind: "dropout", Float: math.Inf(1)}}},
	}
	for name, spec := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := DecodeNetwork(bytes.NewReader(encodeSpec(t, spec)), rng)
			if !errors.Is(err, ErrBadNetworkSpec) {
				t.Fatalf("err = %v, want ErrBadNetworkSpec", err)
			}
		})
	}
}

// TestDecodeNetworkGarbageBytes pins the gob-level failure path.
func TestDecodeNetworkGarbageBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, data := range [][]byte{nil, {0x01}, bytes.Repeat([]byte{0xff}, 64)} {
		if _, err := DecodeNetwork(bytes.NewReader(data), rng); !errors.Is(err, ErrBadNetworkSpec) {
			t.Fatalf("garbage decode err = %v, want ErrBadNetworkSpec", err)
		}
	}
}

// TestDecodeNetworkRoundTripStillExact guards that hardening didn't change
// the happy path: weights survive encode/decode bit-exactly.
func TestDecodeNetworkRoundTripStillExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := BuildConv1D(rng, Conv1DConfig{
		InputDim: 4, ConvUnits: []int{6, 4}, KernelSize: 3, DenseUnits: 5, NumClasses: 2, Dropout: 0.1,
	})
	var buf bytes.Buffer
	if err := net.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeNetwork(&buf, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	x := make([][]float64, 5)
	for i := range x {
		x[i] = []float64{0.1 * float64(i), -0.2, 0.3, 0.05 * float64(i)}
	}
	want := net.Predict(x)
	have := got.Predict(x)
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("class %d: %v != %v", i, want[i], have[i])
		}
	}
}

// TestQuantSectionRoundTrip pins the optional int8 payload section:
// quantized tensors survive encode/decode exactly, and a decoded network
// keeps producing the quantized inference outputs bit-identically.
func TestQuantSectionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := BuildConv1D(rng, Conv1DConfig{
		InputDim: 4, ConvUnits: []int{6, 4}, KernelSize: 3, DenseUnits: 5, NumClasses: 2, Dropout: 0.1,
	})
	net.Quantize()
	var buf bytes.Buffer
	if err := net.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeNetwork(&buf, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Quantized() {
		t.Fatal("decoded network lost its quant section")
	}
	x := randSeq(rng, 5, 4)
	want := net.NewPredictor(5, 4).Predict(x)
	have := got.NewPredictor(5, 4).Predict(x)
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("class %d: %v != %v", i, want[i], have[i])
		}
	}
}

// TestDecodeNetworkRejectsCorruptQuant extends the corrupt-spec contract
// to the int8 section: mismatched lengths or non-finite scales must fail
// decode, and a one-sided section is corrupt too.
func TestDecodeNetworkRejectsCorruptQuant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dense := func(mut func(*layerSpec)) netSpec {
		s := layerSpec{
			Kind: "dense", Ints: []int{2, 2},
			Weights:    [][]float64{{1, 2, 3, 4}, {0, 0}},
			Quant:      []int8{1, 2, 3, 4},
			QuantScale: []float64{0.5, 0.25},
		}
		mut(&s)
		return netSpec{Layers: []layerSpec{s}}
	}
	cases := map[string]netSpec{
		"quant short":    dense(func(s *layerSpec) { s.Quant = s.Quant[:3] }),
		"scale short":    dense(func(s *layerSpec) { s.QuantScale = s.QuantScale[:1] }),
		"scale only":     dense(func(s *layerSpec) { s.Quant = nil }),
		"quant only":     dense(func(s *layerSpec) { s.QuantScale = nil }),
		"scale NaN":      dense(func(s *layerSpec) { s.QuantScale[0] = math.NaN() }),
		"scale Inf":      dense(func(s *layerSpec) { s.QuantScale[1] = math.Inf(1) }),
		"scale negative": dense(func(s *layerSpec) { s.QuantScale[0] = -1 }),
		"conv quant short": {Layers: []layerSpec{{
			Kind: "conv1d", Ints: []int{2, 2, 3},
			Weights:    [][]float64{make([]float64, 12), make([]float64, 2)},
			Quant:      make([]int8, 7),
			QuantScale: []float64{1, 1},
		}}},
	}
	for name, spec := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := DecodeNetwork(bytes.NewReader(encodeSpec(t, spec)), rng)
			if !errors.Is(err, ErrBadNetworkSpec) {
				t.Fatalf("err = %v, want ErrBadNetworkSpec", err)
			}
		})
	}
}
