package nn

import (
	"math"
	"math/rand"
	"testing"
)

// testNets builds one network per model family at streaming-realistic
// sizes, keyed by name, with the window geometry the predictor will see.
func testNets(rng *rand.Rand) map[string]struct {
	net       *Network
	maxT, dim int
} {
	return map[string]struct {
		net       *Network
		maxT, dim int
	}{
		"stacked-lstm": {
			net: BuildStackedLSTM(rng, StackedLSTMConfig{
				InputDim: 38, LSTMUnits: []int{32, 16}, DenseUnits: 16,
				NumClasses: 16, Dropout: 0.1,
			}),
			maxT: 12, dim: 38,
		},
		"conv1d": {
			net: BuildConv1D(rng, Conv1DConfig{
				InputDim: 14, ConvUnits: []int{24, 12}, KernelSize: 3,
				DenseUnits: 12, NumClasses: 2, Dropout: 0.1,
			}),
			maxT: 5, dim: 14,
		},
		"mlp": {
			net: BuildMLP(rng, MLPConfig{
				InputDim: 5 * 14, Hidden: []int{24}, NumClasses: 2, Dropout: 0.1,
			}),
			maxT: 5, dim: 14,
		},
	}
}

// TestPredictorMatchesForward pins numerical identity between the
// scratch-based inference path and the allocating Forward path, for every
// model family and every window length from 1 frame up to the full window
// (the golden verdicts depend on this being exact, not approximate).
func TestPredictorMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for name, tc := range testNets(rng) {
		t.Run(name, func(t *testing.T) {
			p := tc.net.NewPredictor(tc.maxT, tc.dim)
			minT := 1
			if name == "mlp" {
				// The MLP's first dense layer needs the full flattened
				// window; shorter windows are invalid for it offline too.
				minT = tc.maxT
			}
			for T := minT; T <= tc.maxT; T++ {
				x := randSeq(rng, T, tc.dim)
				want := tc.net.Predict(x)
				got := p.Predict(x)
				if len(got) != len(want) {
					t.Fatalf("T=%d: predictor %d probs vs %d", T, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] && !(math.IsNaN(got[i]) && math.IsNaN(want[i])) {
						t.Fatalf("T=%d class %d: predictor %v vs forward %v", T, i, got[i], want[i])
					}
				}
				if gc, wc := p.PredictClass(x), tc.net.PredictClass(x); gc != wc {
					t.Fatalf("T=%d: predictor class %d vs forward %d", T, gc, wc)
				}
			}
			// Repeated calls on reused scratch stay identical (stale
			// buffer contents must never leak into outputs).
			x := randSeq(rng, tc.maxT, tc.dim)
			first := append([]float64(nil), p.Predict(x)...)
			p.Predict(randSeq(rng, tc.maxT, tc.dim)) // dirty the scratch
			again := p.Predict(x)
			for i := range first {
				if first[i] != again[i] {
					t.Fatalf("scratch reuse changed output: %v vs %v", first, again)
				}
			}
		})
	}
}

// TestPredictorZeroAlloc is the layer-level allocation budget: a warm
// Predictor must run a full windowed inference with zero heap allocations
// for every model family.
func TestPredictorZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for name, tc := range testNets(rng) {
		t.Run(name, func(t *testing.T) {
			p := tc.net.NewPredictor(tc.maxT, tc.dim)
			x := randSeq(rng, tc.maxT, tc.dim)
			p.Predict(x) // warm
			allocs := testing.AllocsPerRun(200, func() {
				p.Predict(x)
			})
			if allocs != 0 {
				t.Errorf("%s: warm Predictor.Predict allocates %.1f objects/call, want 0", name, allocs)
			}
		})
	}
}

// TestLSTMStepZeroAlloc pins the stateful step path: after ResetStream,
// Step must not allocate.
func TestLSTMStepZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	l := NewLSTM(rng, 38, 32)
	x := make([]float64, 38)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	l.ResetStream()
	l.Step(x) // warm
	allocs := testing.AllocsPerRun(200, func() {
		l.Step(x)
	})
	if allocs != 0 {
		t.Errorf("warm LSTM.Step allocates %.1f objects/call, want 0", allocs)
	}
}

// TestLSTMResetStreamZeroesState is the pooled-reuse regression test: a
// layer that streamed arbitrary frames and was then ResetStream must
// produce exactly the same step outputs as a never-used stream — no
// hidden, cell or scratch state may survive the reset.
func TestLSTMResetStreamZeroesState(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	l := NewLSTM(rng, 3, 4)
	seqA := randSeq(rng, 9, 3)
	seqB := randSeq(rng, 6, 3)

	// Fresh reference outputs for seqB.
	l.ResetStream()
	want := make([][]float64, len(seqB))
	for i := range seqB {
		want[i] = append([]float64(nil), l.Step(seqB[i])...)
	}

	// Pollute the stream state with seqA, reset, replay seqB.
	l.ResetStream()
	for i := range seqA {
		l.Step(seqA[i])
	}
	l.ResetStream()
	for i := range seqB {
		got := l.Step(seqB[i])
		for j := range got {
			if got[j] != want[i][j] {
				t.Fatalf("step %d unit %d after reset: %v, fresh stream %v", i, j, got[j], want[i][j])
			}
		}
	}
}
