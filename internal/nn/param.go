// Package nn is a small, dependency-free neural-network library built for
// this reproduction. It provides the model families used by the paper's
// pipeline — stacked LSTMs for gesture classification and 1D-CNNs / LSTMs
// for erroneous-gesture detection — together with dense layers, dropout,
// ReLU/softmax activations, the Adam optimizer with step-decay learning
// rate, categorical cross-entropy loss, early stopping, and gob-based model
// serialization.
//
// Data model: a sample is a sequence x of shape [T][D] (T timesteps of D
// features). Layers transform sequences; reduction layers (TakeLast,
// GlobalMaxPool, Flatten) collapse the time axis before the classification
// head. Training is sample-wise gradient accumulation over mini-batches,
// which is exact and fast enough for the CPU-scale experiments here.
package nn

import (
	"math"
	"math/rand"
)

// Param is one learnable tensor, stored flat with an explicit gradient
// buffer that optimizers consume.
type Param struct {
	Name string
	W    []float64 // weights, flat
	G    []float64 // accumulated gradient, same length as W
}

// newParam allocates a named parameter of size n.
func newParam(name string, n int) *Param {
	return &Param{Name: name, W: make([]float64, n), G: make([]float64, n)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() {
	for i := range p.G {
		p.G[i] = 0
	}
}

// glorotInit fills w with Glorot/Xavier-uniform values for a layer with the
// given fan-in and fan-out.
func glorotInit(rng *rand.Rand, w []float64, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range w {
		w[i] = (rng.Float64()*2 - 1) * limit
	}
}

// seq allocates a [T][D] sequence.
func seq(t, d int) [][]float64 {
	out := make([][]float64, t)
	buf := make([]float64, t*d)
	for i := range out {
		out[i] = buf[i*d : (i+1)*d : (i+1)*d]
	}
	return out
}

// cloneSeq deep-copies a sequence.
func cloneSeq(x [][]float64) [][]float64 {
	if len(x) == 0 {
		return nil
	}
	out := seq(len(x), len(x[0]))
	for i := range x {
		copy(out[i], x[i])
	}
	return out
}

// Layer is one differentiable stage of a network. Forward consumes a
// [T][Din] sequence and produces a [T'][Dout] sequence; Backward consumes
// the gradient of the loss with respect to the layer output and returns the
// gradient with respect to the layer input, accumulating parameter
// gradients along the way. Layers cache whatever they need between Forward
// and Backward, so a Layer instance must not be shared across goroutines.
type Layer interface {
	// Forward runs the layer. train toggles training-only behaviour
	// such as dropout masking.
	Forward(x [][]float64, train bool) [][]float64
	// Backward back-propagates gradOut and returns the input gradient.
	Backward(gradOut [][]float64) [][]float64
	// Params returns the layer's learnable parameters (possibly empty).
	Params() []*Param
	// OutDim returns the layer's feature dimensionality given an input
	// dimensionality, used for shape validation when stacking.
	OutDim(inDim int) int
}
