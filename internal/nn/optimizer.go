package nn

import "math"

// Adam is the Adam optimizer with optional step-decay learning rate, the
// training configuration used throughout the paper ("trained using the Adam
// optimizer with step-decay and early stopping", low initial learning rates
// of 1e-4..1e-3).
type Adam struct {
	LR      float64 // current learning rate
	Beta1   float64
	Beta2   float64
	Epsilon float64

	// DecayFactor multiplies LR every DecayEvery epochs (step decay).
	// DecayEvery <= 0 disables decay.
	DecayFactor float64
	DecayEvery  int

	// ClipNorm, when > 0, rescales each parameter's gradient so that its
	// L2 norm does not exceed ClipNorm (gradient clipping stabilizes LSTM
	// training on long windows).
	ClipNorm float64

	t int // step counter
	m map[*Param][]float64
	v map[*Param][]float64
}

// NewAdam constructs an Adam optimizer with standard betas.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR:      lr,
		Beta1:   0.9,
		Beta2:   0.999,
		Epsilon: 1e-8,
		m:       make(map[*Param][]float64),
		v:       make(map[*Param][]float64),
	}
}

// Step applies one Adam update to all params using their accumulated
// gradients (divided by batchSize) and zeroes the gradients.
func (a *Adam) Step(params []*Param, batchSize int) {
	a.t++
	inv := 1.0
	if batchSize > 0 {
		inv = 1.0 / float64(batchSize)
	}
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = make([]float64, len(p.W))
			a.m[p] = m
		}
		v, ok := a.v[p]
		if !ok {
			v = make([]float64, len(p.W))
			a.v[p] = v
		}
		scale := inv
		if a.ClipNorm > 0 {
			var norm float64
			for _, g := range p.G {
				gg := g * inv
				norm += gg * gg
			}
			norm = math.Sqrt(norm)
			if norm > a.ClipNorm {
				scale *= a.ClipNorm / norm
			}
		}
		for i := range p.W {
			g := p.G[i] * scale
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mHat := m[i] / bc1
			vHat := v[i] / bc2
			p.W[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Epsilon)
			p.G[i] = 0
		}
	}
}

// EndEpoch applies step decay after an epoch completes (1-based epoch).
func (a *Adam) EndEpoch(epoch int) {
	if a.DecayEvery > 0 && a.DecayFactor > 0 && epoch%a.DecayEvery == 0 {
		a.LR *= a.DecayFactor
	}
}
