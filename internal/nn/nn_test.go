package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSoftmaxNormalizes(t *testing.T) {
	f := func(a, b, c float64) bool {
		// bound inputs to avoid Inf inputs from quick
		for _, v := range []float64{a, b, c} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		p := Softmax([]float64{a, b, c})
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxStability(t *testing.T) {
	p := Softmax([]float64{1e8, 1e8 + 1, 1e8 - 1})
	if math.IsNaN(p[0]) || p[1] < p[0] || p[1] < p[2] {
		t.Errorf("softmax unstable on large logits: %v", p)
	}
}

func TestCrossEntropyGradientSums(t *testing.T) {
	f := func(a, b float64) bool {
		if math.Abs(a) > 50 || math.Abs(b) > 50 || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		_, grad := CrossEntropyLoss([]float64{a, b, 0}, 1)
		var sum float64
		for _, g := range grad {
			sum += g
		}
		// softmax grad minus one-hot sums to zero
		return math.Abs(sum) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArgmax(t *testing.T) {
	cases := []struct {
		in   []float64
		want int
	}{
		{nil, -1},
		{[]float64{3}, 0},
		{[]float64{1, 5, 2}, 1},
		{[]float64{-1, -5, -2}, 0},
		{[]float64{1, 1, 1}, 0}, // first wins ties
	}
	for _, c := range cases {
		if got := Argmax(c.in); got != c.want {
			t.Errorf("Argmax(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestDenseShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(rng, 3, 5)
	out := d.Forward(randSeq(rng, 7, 3), false)
	if len(out) != 7 || len(out[0]) != 5 {
		t.Fatalf("dense output shape [%d][%d], want [7][5]", len(out), len(out[0]))
	}
}

func TestConv1DShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv1D(rng, 3, 4, 3)
	out := c.Forward(randSeq(rng, 10, 3), false)
	if len(out) != 8 || len(out[0]) != 4 {
		t.Fatalf("conv output shape [%d][%d], want [8][4]", len(out), len(out[0]))
	}
	// shorter-than-kernel input degrades to one step
	out = c.Forward(randSeq(rng, 2, 3), false)
	if len(out) != 1 {
		t.Fatalf("short input gave %d steps, want 1", len(out))
	}
}

func TestDropoutInference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDropout(rng, 0.5)
	x := randSeq(rng, 4, 6)
	out := d.Forward(x, false)
	for i := range x {
		for j := range x[i] {
			if out[i][j] != x[i][j] {
				t.Fatal("dropout must be identity at inference")
			}
		}
	}
}

func TestDropoutTrainingMasks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDropout(rng, 0.5)
	x := randSeq(rng, 20, 20)
	out := d.Forward(x, true)
	zeros := 0
	for i := range out {
		for j := range out[i] {
			if out[i][j] == 0 {
				zeros++
			}
		}
	}
	if zeros < 100 || zeros > 300 {
		t.Errorf("dropout p=0.5 zeroed %d/400, expected ~200", zeros)
	}
}

func TestLSTMStepMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l := NewLSTM(rng, 3, 4)
	x := randSeq(rng, 6, 3)
	batch := l.Forward(x, false)
	l.ResetStream()
	for i := range x {
		h := l.Step(x[i])
		for j := range h {
			if math.Abs(h[j]-batch[i][j]) > 1e-12 {
				t.Fatalf("step %d unit %d: stream %.12f vs batch %.12f", i, j, h[j], batch[i][j])
			}
		}
	}
}

func TestGlobalMaxPool(t *testing.T) {
	g := &GlobalMaxPool{}
	x := [][]float64{{1, 5}, {3, 2}, {2, 4}}
	out := g.Forward(x, true) // train mode: the test exercises Backward
	if out[0][0] != 3 || out[0][1] != 5 {
		t.Fatalf("got %v, want [3 5]", out[0])
	}
	grad := g.Backward([][]float64{{1, 1}})
	if grad[1][0] != 1 || grad[0][1] != 1 || grad[0][0] != 0 {
		t.Fatalf("maxpool gradient routed wrong: %v", grad)
	}
}

func TestFitLearnsXORLikeTask(t *testing.T) {
	// Two interleaved classes distinguishable by the sign product of two
	// features — requires a hidden layer.
	rng := rand.New(rand.NewSource(11))
	var samples []Sample
	for i := 0; i < 400; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		y := 0
		if a*b > 0 {
			y = 1
		}
		samples = append(samples, Sample{X: [][]float64{{a, b}}, Y: y})
	}
	net := NewNetwork(NewDense(rng, 2, 16), &Tanh{}, &TakeLast{}, NewDense(rng, 16, 2))
	_, err := net.Fit(samples[:320], samples[320:], TrainConfig{
		Epochs: 40, BatchSize: 16, LR: 0.01, Patience: 10, Rng: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	acc := net.Accuracy(samples[320:])
	if acc < 0.85 {
		t.Errorf("XOR-like accuracy %.3f < 0.85", acc)
	}
}

func TestFitLearnsSequencePattern(t *testing.T) {
	// Class 1 sequences trend upward, class 0 downward: requires temporal
	// integration, exercising the LSTM path.
	rng := rand.New(rand.NewSource(12))
	var samples []Sample
	for i := 0; i < 300; i++ {
		y := i % 2
		slope := 0.3
		if y == 0 {
			slope = -0.3
		}
		x := make([][]float64, 8)
		for t0 := range x {
			x[t0] = []float64{slope*float64(t0) + rng.NormFloat64()*0.3}
		}
		samples = append(samples, Sample{X: x, Y: y})
	}
	net := BuildStackedLSTM(rng, StackedLSTMConfig{InputDim: 1, LSTMUnits: []int{8}, DenseUnits: 8, NumClasses: 2})
	_, err := net.Fit(samples[:240], samples[240:], TrainConfig{
		Epochs: 25, BatchSize: 16, LR: 0.01, Patience: 8, ClipNorm: 5, Rng: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := net.Accuracy(samples[240:]); acc < 0.9 {
		t.Errorf("sequence accuracy %.3f < 0.9", acc)
	}
}

func TestEarlyStoppingRestoresBestWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var samples []Sample
	for i := 0; i < 60; i++ {
		x := randSeq(rng, 1, 3)
		samples = append(samples, Sample{X: x, Y: i % 2})
	}
	net := NewNetwork(NewDense(rng, 3, 4), &TakeLast{}, NewDense(rng, 4, 2))
	res, err := net.Fit(samples[:40], samples[40:], TrainConfig{
		Epochs: 30, BatchSize: 8, LR: 0.05, Patience: 3, Rng: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Random labels: val loss can't improve for long, so early stopping
	// must fire well before 30 epochs.
	if !res.StoppedEarly && res.Epochs == 30 {
		t.Log("training ran to completion on random labels (acceptable but unusual)")
	}
	got := net.EvalLoss(samples[40:])
	if got > res.BestValLoss+0.2 {
		t.Errorf("restored val loss %.4f much worse than best %.4f", got, res.BestValLoss)
	}
}

func TestAdamStepDecay(t *testing.T) {
	opt := NewAdam(0.1)
	opt.DecayEvery = 2
	opt.DecayFactor = 0.5
	opt.EndEpoch(1)
	if opt.LR != 0.1 {
		t.Fatalf("LR changed too early: %v", opt.LR)
	}
	opt.EndEpoch(2)
	if opt.LR != 0.05 {
		t.Fatalf("LR after decay %v, want 0.05", opt.LR)
	}
}

func TestAdamReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	net := NewNetwork(NewDense(rng, 2, 2), &TakeLast{})
	x := [][]float64{{1, -1}}
	before := net.EvalLoss([]Sample{{X: x, Y: 0}})
	opt := NewAdam(0.05)
	for i := 0; i < 50; i++ {
		logits := net.Forward(x, true)
		_, grad := CrossEntropyLoss(logits, 0)
		g := [][]float64{grad}
		for j := len(net.Layers) - 1; j >= 0; j-- {
			g = net.Layers[j].Backward(g)
		}
		opt.Step(net.Params(), 1)
	}
	after := net.EvalLoss([]Sample{{X: x, Y: 0}})
	if after >= before {
		t.Errorf("Adam failed to reduce loss: %.4f -> %.4f", before, after)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	net := BuildConv1D(rng, Conv1DConfig{InputDim: 4, ConvUnits: []int{6, 5}, KernelSize: 3, DenseUnits: 8, NumClasses: 3, Dropout: 0.2})
	x := randSeq(rng, 10, 4)
	want := net.Predict(x)

	var buf bytes.Buffer
	if err := net.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeNetwork(&buf, rand.New(rand.NewSource(16)))
	if err != nil {
		t.Fatal(err)
	}
	gotP := got.Predict(x)
	for i := range want {
		if math.Abs(want[i]-gotP[i]) > 1e-12 {
			t.Fatalf("prediction changed after round trip: %v vs %v", want, gotP)
		}
	}
}

func TestFitRequiresRngAndData(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	net := NewNetwork(NewDense(rng, 2, 2), &TakeLast{})
	if _, err := net.Fit(nil, nil, TrainConfig{Rng: rng}); err == nil {
		t.Error("expected error for empty training data")
	}
	s := []Sample{{X: [][]float64{{1, 2}}, Y: 0}}
	if _, err := net.Fit(s, nil, TrainConfig{}); err == nil {
		t.Error("expected error for missing rng")
	}
}

func TestNumWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	net := NewNetwork(NewDense(rng, 3, 4)) // 3*4 weights + 4 bias
	if got := net.NumWeights(); got != 16 {
		t.Errorf("NumWeights = %d, want 16", got)
	}
}
