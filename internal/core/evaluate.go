package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/kinematics"
	"repro/internal/stats"
)

// ErrorTruth is the ground truth for one erroneous gesture instance:
// the segment bounds and the frame at which the error actually begins to
// manifest ("the actual time of error occurrence", Equation 4).
type ErrorTruth struct {
	Gesture  int
	SegStart int
	SegEnd   int
	Onset    int
}

// TruthFromLabels derives ErrorTruth entries from a frame-labeled
// trajectory: each unsafe gesture segment becomes one instance, with the
// onset set to the segment start. Generators with more precise ground
// truth (synth, faultinject) should supply onsets directly instead.
func TruthFromLabels(traj *kinematics.Trajectory) []ErrorTruth {
	var out []ErrorTruth
	for _, s := range traj.Segments() {
		if s.Unsafe {
			out = append(out, ErrorTruth{Gesture: s.Gesture, SegStart: s.Start, SegEnd: s.End, Onset: s.Start})
		}
	}
	return out
}

// PipelineReport aggregates end-to-end pipeline metrics over a test set —
// the contents of Table VIII and, per gesture, Table IX.
type PipelineReport struct {
	// AUC and F1 of the unsafe class, micro-averaged over all frames.
	AUC float64
	F1  float64
	// PerDemoAUC holds one AUC per test demonstration (for the Figure 9
	// best/median/worst ROC analysis).
	PerDemoAUC []float64
	// ReactionTimesMS holds one reaction time per erroneous gesture
	// instance (positive = early detection).
	ReactionTimesMS []float64
	// EarlyDetectionPct is the share of erroneous gestures detected
	// before their actual error onset.
	EarlyDetectionPct float64
	// MissedErrors counts erroneous gestures never flagged.
	MissedErrors int
	TotalErrors  int
	// JitterMS holds gesture-boundary jitters (positive = early).
	JitterMS []float64
	// GestureAccuracy is the frame-level context accuracy (NaN-free; 0
	// when ground-truth gestures were used).
	GestureAccuracy float64
	// ComputeTimeMS is the mean per-frame inference latency.
	ComputeTimeMS float64
	// PerGesture holds the Table IX per-gesture rows.
	PerGesture map[int]*GestureTimeliness
	// Confusion is the frame-level unsafe confusion at the threshold.
	Confusion stats.BinaryConfusion
}

// GestureTimeliness is one Table IX row.
type GestureTimeliness struct {
	Gesture int
	// DetectionAccuracy is the share of the gesture's frames whose
	// context was correctly classified.
	DetectionAccuracy float64
	// JitterMS values for segments of this gesture (positive = early).
	JitterMS []float64
	// JitterErroneousMS restricts jitter to erroneous segments.
	JitterErroneousMS []float64
	// ReactionMS values for erroneous segments of this gesture.
	ReactionMS []float64
	// F1 of erroneous-gesture detection at segment level.
	segTP, segFP, segFN int
	// segCount tracks how many segments contributed to
	// DetectionAccuracy's incremental average.
	segCount int
}

// F1 returns the segment-level erroneous-detection F1 for the gesture.
func (g *GestureTimeliness) F1() float64 {
	p := ratio(g.segTP, g.segTP+g.segFP)
	r := ratio(g.segTP, g.segTP+g.segFN)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Evaluate runs the monitor over labeled test trajectories and computes
// the full pipeline report. truths supplies per-trajectory error ground
// truth; pass nil to derive it from the labels.
func (m *Monitor) Evaluate(trajs []*kinematics.Trajectory, truths [][]ErrorTruth) (*PipelineReport, error) {
	run := m.Run
	if m.runOverride != nil {
		run = m.runOverride
	}
	traces := make([]*Trace, len(trajs))
	for ti, traj := range trajs {
		trace, err := run(traj)
		if err != nil {
			return nil, fmt.Errorf("core: evaluate trajectory %d: %w", ti, err)
		}
		traces[ti] = trace
	}
	contextPredicted := !(m.UseGroundTruthGestures || !m.Errors.GestureSpecific)
	return EvaluateTraces(trajs, traces, truths, m.Threshold, contextPredicted)
}

// EvaluateTraces aggregates precomputed traces into a pipeline report.
// traces[i] must be frame-aligned with trajs[i]. contextPredicted enables
// the gesture-accuracy metric (set it when the traces' gesture context came
// from a classifier rather than annotations). The aggregation is fully
// deterministic in its inputs, which lets concurrent trace producers (the
// safemon Runner) yield reports identical to the sequential path.
func EvaluateTraces(trajs []*kinematics.Trajectory, traces []*Trace, truths [][]ErrorTruth, threshold float64, contextPredicted bool) (*PipelineReport, error) {
	if len(traces) != len(trajs) {
		return nil, fmt.Errorf("core: %d traces for %d trajectories", len(traces), len(trajs))
	}
	rep := &PipelineReport{PerGesture: map[int]*GestureTimeliness{}}
	var allScores []float64
	var allLabels []bool
	var gestureCorrect, gestureTotal int
	var computeNS float64
	var computeFrames int

	for ti, traj := range trajs {
		trace := traces[ti]
		if len(trace.Verdicts) != len(traj.Frames) {
			return nil, fmt.Errorf("core: trace %d has %d verdicts for %d frames", ti, len(trace.Verdicts), len(traj.Frames))
		}
		scores := trace.Scores()
		msPerFrame := 1000.0 / traj.HzRate

		// Frame-level accuracy metrics.
		labels := make([]bool, len(scores))
		for i := range scores {
			labels[i] = traj.Unsafe[i]
			allScores = append(allScores, scores[i])
			allLabels = append(allLabels, labels[i])
			rep.Confusion.Add(scores[i] >= threshold, labels[i])
		}
		rep.PerDemoAUC = append(rep.PerDemoAUC, stats.AUC(scores, labels))
		computeNS += (trace.GestureComputeNS + trace.ErrorComputeNS) * float64(len(scores))
		computeFrames += len(scores)

		// Context accuracy + per-gesture jitter.
		pred := trace.PredictedGestures()
		if contextPredicted {
			for i, g := range pred {
				if g == traj.Gestures[i] {
					gestureCorrect++
				}
				gestureTotal++
			}
		}

		segs := traj.Segments()
		for _, seg := range segs {
			gt := rep.PerGesture[seg.Gesture]
			if gt == nil {
				gt = &GestureTimeliness{Gesture: seg.Gesture}
				rep.PerGesture[seg.Gesture] = gt
			}
			// Detection accuracy within the segment.
			correct := 0
			for i := seg.Start; i < seg.End; i++ {
				if pred[i] == seg.Gesture {
					correct++
				}
			}
			gt.DetectionAccuracy = (gt.DetectionAccuracy*float64(gestureSegCount(gt)) + float64(correct)/float64(seg.Len())) / float64(gestureSegCount(gt)+1)
			gt.segCount++
			// Jitter: first frame (searching from an early slack before
			// the boundary) where the predicted context matches.
			det := detectionFrame(pred, seg.Gesture, seg.Start, seg.End)
			if det >= 0 {
				j := float64(seg.Start-det) * msPerFrame
				gt.JitterMS = append(gt.JitterMS, j)
				rep.JitterMS = append(rep.JitterMS, j)
				if seg.Unsafe {
					gt.JitterErroneousMS = append(gt.JitterErroneousMS, j)
				}
			}
			// Segment-level erroneous detection bookkeeping.
			flagged := false
			for i := seg.Start; i < seg.End; i++ {
				if scores[i] >= threshold {
					flagged = true
					break
				}
			}
			switch {
			case flagged && seg.Unsafe:
				gt.segTP++
			case flagged && !seg.Unsafe:
				gt.segFP++
			case !flagged && seg.Unsafe:
				gt.segFN++
			}
		}

		// Reaction times per erroneous-gesture instance.
		var truth []ErrorTruth
		if truths != nil && ti < len(truths) {
			truth = truths[ti]
		} else {
			truth = TruthFromLabels(traj)
		}
		for _, tr := range truth {
			rep.TotalErrors++
			det := -1
			// Search a slack window before the segment too: a context
			// detected early can flag the error before the boundary.
			lo := tr.SegStart - int(0.5*traj.HzRate)
			if lo < 0 {
				lo = 0
			}
			for i := lo; i < tr.SegEnd; i++ {
				if scores[i] >= threshold {
					det = i
					break
				}
			}
			if det < 0 {
				rep.MissedErrors++
				continue
			}
			r := float64(tr.Onset-det) * msPerFrame
			rep.ReactionTimesMS = append(rep.ReactionTimesMS, r)
			if gt := rep.PerGesture[tr.Gesture]; gt != nil {
				gt.ReactionMS = append(gt.ReactionMS, r)
			}
		}
	}

	rep.AUC = stats.AUC(allScores, allLabels)
	rep.F1 = rep.Confusion.F1()
	if gestureTotal > 0 {
		rep.GestureAccuracy = float64(gestureCorrect) / float64(gestureTotal)
	}
	if computeFrames > 0 {
		rep.ComputeTimeMS = computeNS / float64(computeFrames) / 1e6
	}
	early := 0
	for _, r := range rep.ReactionTimesMS {
		if r > 0 {
			early++
		}
	}
	if rep.TotalErrors > 0 {
		rep.EarlyDetectionPct = 100 * float64(early) / float64(rep.TotalErrors)
	}
	return rep, nil
}

// segCount tracking for incremental DetectionAccuracy averaging.
func gestureSegCount(g *GestureTimeliness) int { return g.segCount }

// detectionFrame finds the first frame at which the predicted context
// matches the segment's gesture, searching from half the segment length
// before the boundary (to credit early detection) through the segment end.
// Returns -1 when the gesture is never detected.
func detectionFrame(pred []int, g, start, end int) int {
	lo := start - (end-start)/2
	if lo < 0 {
		lo = 0
	}
	for i := lo; i < end; i++ {
		if pred[i] == g {
			return i
		}
	}
	return -1
}

// Render returns a compact textual summary of the report.
func (r *PipelineReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "AUC %.3f  F1 %.3f  reaction %.0f±%.0f ms  early %.1f%%  missed %d/%d  compute %.3f ms/frame\n",
		r.AUC, r.F1, stats.Mean(r.ReactionTimesMS), stats.StdDev(r.ReactionTimesMS),
		r.EarlyDetectionPct, r.MissedErrors, r.TotalErrors, r.ComputeTimeMS)
	if r.GestureAccuracy > 0 {
		fmt.Fprintf(&b, "gesture accuracy %.2f%%  mean jitter %.0f ms\n", 100*r.GestureAccuracy, stats.Mean(r.JitterMS))
	}
	gs := make([]int, 0, len(r.PerGesture))
	for g := range r.PerGesture {
		gs = append(gs, g)
	}
	sort.Ints(gs)
	for _, g := range gs {
		gt := r.PerGesture[g]
		fmt.Fprintf(&b, "  G%-2d det-acc %.1f%%  jitter %.0f ms  err-jitter %.0f ms  reaction %.0f ms  F1 %.2f\n",
			g, 100*gt.DetectionAccuracy, stats.Mean(gt.JitterMS),
			stats.Mean(gt.JitterErroneousMS), stats.Mean(gt.ReactionMS), gt.F1())
	}
	return b.String()
}
