package core

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/gesture"
	"repro/internal/kinematics"
	"repro/internal/nn"
	"repro/internal/stats"
)

// GestureClassifierConfig configures training of the gesture segmentation
// and classification stage (Equation 2 of the paper).
type GestureClassifierConfig struct {
	// Features selects the kinematic variables (the paper uses all 38 for
	// the JIGSAWS tasks and Cartesian+Grasper for Block Transfer).
	Features kinematics.FeatureSet
	// Window and Stride control sliding-window extraction.
	Window, Stride int
	// LSTMUnits are the hidden sizes of the stacked LSTM layers.
	LSTMUnits []int
	// DenseUnits is the width of the fully connected layer before softmax.
	DenseUnits int
	// Dropout is the dropout probability applied after the LSTM stack.
	Dropout float64
	// Epochs, BatchSize, LR, Patience configure training.
	Epochs, BatchSize int
	LR                float64
	Patience          int
	// ValFraction is the held-out fraction used for early stopping.
	ValFraction float64
	// TrainStride optionally subsamples training windows (defaults to
	// Stride); evaluation always uses stride 1.
	TrainStride int
	// Seed makes training deterministic.
	Seed int64
	// Verbose receives per-epoch progress lines when non-nil.
	Verbose func(string)
}

// DefaultGestureClassifierConfig returns a CPU-scale configuration of the
// paper's architecture (stacked LSTM + dense + softmax).
func DefaultGestureClassifierConfig() GestureClassifierConfig {
	return GestureClassifierConfig{
		Features:    kinematics.AllFeatures(),
		Window:      12,
		Stride:      1,
		LSTMUnits:   []int{32, 16},
		DenseUnits:  16,
		Dropout:     0.1,
		Epochs:      8,
		BatchSize:   32,
		LR:          3e-3,
		Patience:    3,
		ValFraction: 0.12,
		TrainStride: 3,
		Seed:        1,
	}
}

// GestureClassifier is the trained context-inference stage.
type GestureClassifier struct {
	Net          *nn.Network
	Standardizer *kinematics.Standardizer
	Config       GestureClassifierConfig
}

// ErrNoData is returned when training receives no usable windows.
var ErrNoData = errors.New("core: no training windows")

// TrainGestureClassifier trains the stacked-LSTM gesture classifier on
// frame-labeled trajectories.
func TrainGestureClassifier(trajs []*kinematics.Trajectory, cfg GestureClassifierConfig) (*GestureClassifier, error) {
	if cfg.Window <= 0 || cfg.Stride <= 0 {
		return nil, fmt.Errorf("core: bad window config %d/%d", cfg.Window, cfg.Stride)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	std := dataset.FitStandardizer(trajs, cfg.Features)
	trainStride := cfg.TrainStride
	if trainStride <= 0 {
		trainStride = cfg.Stride
	}
	windows, err := dataset.Slide(trajs, dataset.Config{
		Features: cfg.Features, Size: cfg.Window, Stride: trainStride, Standardizer: std,
	})
	if err != nil {
		return nil, err
	}
	if len(windows) == 0 {
		return nil, ErrNoData
	}
	trainW, valW := dataset.HoldoutSplit(windows, cfg.ValFraction, rng)
	toSamples := func(ws []dataset.Window) []nn.Sample {
		out := make([]nn.Sample, len(ws))
		for i, w := range ws {
			out[i] = nn.Sample{X: w.X, Y: w.Gesture}
		}
		return out
	}

	net := nn.BuildStackedLSTM(rng, nn.StackedLSTMConfig{
		InputDim:   cfg.Features.Dim(),
		LSTMUnits:  cfg.LSTMUnits,
		DenseUnits: cfg.DenseUnits,
		NumClasses: gesture.NumClasses,
		Dropout:    cfg.Dropout,
	})
	_, err = net.Fit(toSamples(trainW), toSamples(valW), nn.TrainConfig{
		Epochs:     cfg.Epochs,
		BatchSize:  cfg.BatchSize,
		LR:         cfg.LR,
		DecayEvery: 3,
		DecayRate:  0.6,
		ClipNorm:   5,
		Patience:   cfg.Patience,
		Rng:        rng,
		Verbose:    cfg.Verbose,
	})
	if err != nil {
		return nil, fmt.Errorf("core: train gesture classifier: %w", err)
	}
	return &GestureClassifier{Net: net, Standardizer: std, Config: cfg}, nil
}

// PredictFrames returns the per-frame gesture prediction for a trajectory.
// Frames before the first full window inherit the first prediction, so the
// output has exactly len(traj.Frames) entries.
func (gc *GestureClassifier) PredictFrames(traj *kinematics.Trajectory) ([]int, error) {
	windows, err := dataset.SlideTrajectory(traj, 0, dataset.Config{
		Features: gc.Config.Features, Size: gc.Config.Window, Stride: 1, Standardizer: gc.Standardizer,
	})
	if err != nil {
		return nil, err
	}
	out := make([]int, len(traj.Frames))
	if len(windows) == 0 {
		return out, nil
	}
	for _, w := range windows {
		out[w.FrameIndex] = gc.Net.PredictClass(w.X)
	}
	for i := 0; i < gc.Config.Window-1 && i < len(out); i++ {
		out[i] = out[gc.Config.Window-1]
	}
	return out, nil
}

// Confusion evaluates the classifier on labeled trajectories, returning the
// gesture confusion matrix.
func (gc *GestureClassifier) Confusion(trajs []*kinematics.Trajectory) (*stats.MultiConfusion, error) {
	conf := stats.NewMultiConfusion(gesture.NumClasses)
	for _, t := range trajs {
		pred, err := gc.PredictFrames(t)
		if err != nil {
			return nil, err
		}
		for i, p := range pred {
			conf.Add(t.Gestures[i], p)
		}
	}
	return conf, nil
}

// Accuracy evaluates frame-level gesture accuracy on labeled trajectories.
func (gc *GestureClassifier) Accuracy(trajs []*kinematics.Trajectory) (float64, error) {
	conf, err := gc.Confusion(trajs)
	if err != nil {
		return 0, err
	}
	return conf.Accuracy(), nil
}
