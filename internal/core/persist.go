package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/kinematics"
	"repro/internal/nn"
)

// ErrBadMonitorSpec is wrapped by every DecodeMonitor failure caused by a
// corrupt or inconsistent serialized monitor bundle. Decoding validates
// shapes before installing anything, so corrupt input can neither panic nor
// produce a half-populated monitor.
var ErrBadMonitorSpec = errors.New("core: bad monitor spec")

// persistedGestureConfig mirrors GestureClassifierConfig without its
// func-typed fields, which gob cannot encode.
type persistedGestureConfig struct {
	Features       []int // kinematics.FeatureGroup values
	Window, Stride int
	LSTMUnits      []int
	DenseUnits     int
	Dropout        float64
	Epochs, Batch  int
	LR             float64
	Patience       int
	ValFraction    float64
	TrainStride    int
	Seed           int64
}

func toPersistedGestureConfig(c GestureClassifierConfig) persistedGestureConfig {
	return persistedGestureConfig{
		Features: featureInts(c.Features), Window: c.Window, Stride: c.Stride,
		LSTMUnits: c.LSTMUnits, DenseUnits: c.DenseUnits, Dropout: c.Dropout,
		Epochs: c.Epochs, Batch: c.BatchSize, LR: c.LR, Patience: c.Patience,
		ValFraction: c.ValFraction, TrainStride: c.TrainStride, Seed: c.Seed,
	}
}

func (p persistedGestureConfig) restore() GestureClassifierConfig {
	return GestureClassifierConfig{
		Features: featureSet(p.Features), Window: p.Window, Stride: p.Stride,
		LSTMUnits: p.LSTMUnits, DenseUnits: p.DenseUnits, Dropout: p.Dropout,
		Epochs: p.Epochs, BatchSize: p.Batch, LR: p.LR, Patience: p.Patience,
		ValFraction: p.ValFraction, TrainStride: p.TrainStride, Seed: p.Seed,
	}
}

// persistedErrorConfig mirrors ErrorDetectorConfig without func fields.
type persistedErrorConfig struct {
	Features       []int
	Window, Stride int
	Arch           int
	Units          []int
	DenseUnits     int
	KernelSize     int
	Dropout        float64
	Epochs, Batch  int
	LR             float64
	Patience       int
	ValFraction    float64
	TrainStride    int
	MinSamples     int
	Balance        bool
	Seed           int64
}

func toPersistedErrorConfig(c ErrorDetectorConfig) persistedErrorConfig {
	return persistedErrorConfig{
		Features: featureInts(c.Features), Window: c.Window, Stride: c.Stride,
		Arch: int(c.Arch), Units: c.Units, DenseUnits: c.DenseUnits,
		KernelSize: c.KernelSize, Dropout: c.Dropout, Epochs: c.Epochs,
		Batch: c.BatchSize, LR: c.LR, Patience: c.Patience,
		ValFraction: c.ValFraction, TrainStride: c.TrainStride,
		MinSamples: c.MinSamples, Balance: c.BalanceClasses, Seed: c.Seed,
	}
}

func (p persistedErrorConfig) restore() ErrorDetectorConfig {
	return ErrorDetectorConfig{
		Features: featureSet(p.Features), Window: p.Window, Stride: p.Stride,
		Arch: ErrorArch(p.Arch), Units: p.Units, DenseUnits: p.DenseUnits,
		KernelSize: p.KernelSize, Dropout: p.Dropout, Epochs: p.Epochs,
		BatchSize: p.Batch, LR: p.LR, Patience: p.Patience,
		ValFraction: p.ValFraction, TrainStride: p.TrainStride,
		MinSamples: p.MinSamples, BalanceClasses: p.Balance, Seed: p.Seed,
	}
}

func featureInts(fs kinematics.FeatureSet) []int {
	out := make([]int, len(fs))
	for i, g := range fs {
		out[i] = int(g)
	}
	return out
}

func featureSet(ints []int) kinematics.FeatureSet {
	out := make(kinematics.FeatureSet, len(ints))
	for i, v := range ints {
		out[i] = kinematics.FeatureGroup(v)
	}
	return out
}

// checkFeatureInts rejects serialized feature sets naming unknown groups
// (which would silently project zero-dimensional windows).
func checkFeatureInts(ints []int) error {
	if _, err := kinematics.ParseFeatureSet(ints); err != nil {
		return fmt.Errorf("%w: %v", ErrBadMonitorSpec, err)
	}
	return nil
}

// checkStandardizer validates a persisted mean/std pair against the feature
// dimensionality (Transform indexes Std through Mean's range, so a length
// mismatch would panic at serve time if admitted here).
func checkStandardizer(mean, std []float64, dim int, stage string) error {
	if len(mean) == 0 && len(std) == 0 {
		return nil
	}
	if len(mean) != len(std) || len(mean) != dim {
		return fmt.Errorf("%w: %s standardizer has %d/%d values, want %d", ErrBadMonitorSpec, stage, len(mean), len(std), dim)
	}
	for _, s := range std {
		if s <= 0 {
			return fmt.Errorf("%w: %s standardizer has non-positive std", ErrBadMonitorSpec, stage)
		}
	}
	return nil
}

// persistedMonitor is the gob wire format of a trained monitor bundle:
// both stages' networks, standardizers, and configurations, so a monitor
// trained offline can be deployed next to the robot without retraining.
type persistedMonitor struct {
	Threshold  float64
	UseGT      bool
	HasGesture bool

	GestureConfig persistedGestureConfig
	GestureMean   []float64
	GestureStd    []float64
	GestureNet    []byte

	ErrorConfig     persistedErrorConfig
	ErrorMean       []float64
	ErrorStd        []float64
	GestureSpecific bool
	HeadGestures    []int
	HeadNets        [][]byte
	GlobalNet       []byte
}

func encodeNet(n *nn.Network) ([]byte, error) {
	if n == nil {
		return nil, nil
	}
	var buf bytes.Buffer
	if err := n.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeNet(data []byte, rng *rand.Rand) (*nn.Network, error) {
	if len(data) == 0 {
		return nil, nil
	}
	return nn.DecodeNetwork(bytes.NewReader(data), rng)
}

// Encode serializes the monitor bundle. Verbose callbacks and any training
// state are not persisted.
func (m *Monitor) Encode(w io.Writer) error {
	p := persistedMonitor{
		Threshold: m.Threshold,
		UseGT:     m.UseGroundTruthGestures,
	}
	if m.Gestures != nil {
		p.HasGesture = true
		p.GestureConfig = toPersistedGestureConfig(m.Gestures.Config)
		if m.Gestures.Standardizer != nil {
			p.GestureMean = m.Gestures.Standardizer.Mean
			p.GestureStd = m.Gestures.Standardizer.Std
		}
		data, err := encodeNet(m.Gestures.Net)
		if err != nil {
			return fmt.Errorf("core: encode gesture net: %w", err)
		}
		p.GestureNet = data
	}
	if m.Errors == nil {
		return fmt.Errorf("core: cannot persist monitor without an error library")
	}
	p.ErrorConfig = toPersistedErrorConfig(m.Errors.Config)
	if m.Errors.Standardizer != nil {
		p.ErrorMean = m.Errors.Standardizer.Mean
		p.ErrorStd = m.Errors.Standardizer.Std
	}
	p.GestureSpecific = m.Errors.GestureSpecific
	for g, net := range m.Errors.PerGesture {
		data, err := encodeNet(net)
		if err != nil {
			return fmt.Errorf("core: encode head %d: %w", g, err)
		}
		p.HeadGestures = append(p.HeadGestures, g)
		p.HeadNets = append(p.HeadNets, data)
	}
	global, err := encodeNet(m.Errors.Global)
	if err != nil {
		return fmt.Errorf("core: encode global head: %w", err)
	}
	p.GlobalNet = global
	return gob.NewEncoder(w).Encode(p)
}

// DecodeMonitor reconstructs a monitor bundle written by Encode. rng seeds
// stochastic layers in the restored networks (only relevant if retrained).
// Corrupt input yields an error wrapping ErrBadMonitorSpec (or the nn
// package's ErrBadNetworkSpec); it never panics and never returns a
// partially-populated monitor.
func DecodeMonitor(r io.Reader, rng *rand.Rand) (*Monitor, error) {
	var p persistedMonitor
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("%w: decode: %v", ErrBadMonitorSpec, err)
	}
	m := &Monitor{Threshold: p.Threshold, UseGroundTruthGestures: p.UseGT}
	if p.HasGesture {
		if err := checkFeatureInts(p.GestureConfig.Features); err != nil {
			return nil, err
		}
		cfg := p.GestureConfig.restore()
		if cfg.Window <= 0 {
			return nil, fmt.Errorf("%w: gesture window %d", ErrBadMonitorSpec, cfg.Window)
		}
		if err := checkStandardizer(p.GestureMean, p.GestureStd, cfg.Features.Dim(), "gesture"); err != nil {
			return nil, err
		}
		net, err := decodeNet(p.GestureNet, rng)
		if err != nil {
			return nil, err
		}
		m.Gestures = &GestureClassifier{
			Net:    net,
			Config: cfg,
			Standardizer: &kinematics.Standardizer{
				Mean: p.GestureMean, Std: p.GestureStd,
			},
		}
	}
	if err := checkFeatureInts(p.ErrorConfig.Features); err != nil {
		return nil, err
	}
	elCfg := p.ErrorConfig.restore()
	if elCfg.Window <= 0 {
		return nil, fmt.Errorf("%w: error window %d", ErrBadMonitorSpec, elCfg.Window)
	}
	if err := checkStandardizer(p.ErrorMean, p.ErrorStd, elCfg.Features.Dim(), "error"); err != nil {
		return nil, err
	}
	if len(p.HeadGestures) != len(p.HeadNets) {
		return nil, fmt.Errorf("%w: %d head gestures but %d head nets", ErrBadMonitorSpec, len(p.HeadGestures), len(p.HeadNets))
	}
	lib := &ErrorLibrary{
		Config:          elCfg,
		GestureSpecific: p.GestureSpecific,
		Standardizer: &kinematics.Standardizer{
			Mean: p.ErrorMean, Std: p.ErrorStd,
		},
		PerGesture: map[int]*nn.Network{},
	}
	for i, g := range p.HeadGestures {
		net, err := decodeNet(p.HeadNets[i], rng)
		if err != nil {
			return nil, err
		}
		lib.PerGesture[g] = net
	}
	global, err := decodeNet(p.GlobalNet, rng)
	if err != nil {
		return nil, err
	}
	if global == nil && len(lib.PerGesture) == 0 {
		return nil, fmt.Errorf("%w: error library has no trained heads", ErrBadMonitorSpec)
	}
	lib.Global = global
	m.Errors = lib
	return m, nil
}

// SaveFile writes the monitor bundle to a file.
func (m *Monitor) SaveFile(path string) error {
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// LoadMonitorFile reads a monitor bundle written by SaveFile.
func LoadMonitorFile(path string, rng *rand.Rand) (*Monitor, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: load monitor: %w", err)
	}
	return DecodeMonitor(bytes.NewReader(data), rng)
}
