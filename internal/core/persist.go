package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/kinematics"
	"repro/internal/nn"
)

// persistedGestureConfig mirrors GestureClassifierConfig without its
// func-typed fields, which gob cannot encode.
type persistedGestureConfig struct {
	Features       []int // kinematics.FeatureGroup values
	Window, Stride int
	LSTMUnits      []int
	DenseUnits     int
	Dropout        float64
	Epochs, Batch  int
	LR             float64
	Patience       int
	ValFraction    float64
	TrainStride    int
	Seed           int64
}

func toPersistedGestureConfig(c GestureClassifierConfig) persistedGestureConfig {
	return persistedGestureConfig{
		Features: featureInts(c.Features), Window: c.Window, Stride: c.Stride,
		LSTMUnits: c.LSTMUnits, DenseUnits: c.DenseUnits, Dropout: c.Dropout,
		Epochs: c.Epochs, Batch: c.BatchSize, LR: c.LR, Patience: c.Patience,
		ValFraction: c.ValFraction, TrainStride: c.TrainStride, Seed: c.Seed,
	}
}

func (p persistedGestureConfig) restore() GestureClassifierConfig {
	return GestureClassifierConfig{
		Features: featureSet(p.Features), Window: p.Window, Stride: p.Stride,
		LSTMUnits: p.LSTMUnits, DenseUnits: p.DenseUnits, Dropout: p.Dropout,
		Epochs: p.Epochs, BatchSize: p.Batch, LR: p.LR, Patience: p.Patience,
		ValFraction: p.ValFraction, TrainStride: p.TrainStride, Seed: p.Seed,
	}
}

// persistedErrorConfig mirrors ErrorDetectorConfig without func fields.
type persistedErrorConfig struct {
	Features       []int
	Window, Stride int
	Arch           int
	Units          []int
	DenseUnits     int
	KernelSize     int
	Dropout        float64
	Epochs, Batch  int
	LR             float64
	Patience       int
	ValFraction    float64
	TrainStride    int
	MinSamples     int
	Balance        bool
	Seed           int64
}

func toPersistedErrorConfig(c ErrorDetectorConfig) persistedErrorConfig {
	return persistedErrorConfig{
		Features: featureInts(c.Features), Window: c.Window, Stride: c.Stride,
		Arch: int(c.Arch), Units: c.Units, DenseUnits: c.DenseUnits,
		KernelSize: c.KernelSize, Dropout: c.Dropout, Epochs: c.Epochs,
		Batch: c.BatchSize, LR: c.LR, Patience: c.Patience,
		ValFraction: c.ValFraction, TrainStride: c.TrainStride,
		MinSamples: c.MinSamples, Balance: c.BalanceClasses, Seed: c.Seed,
	}
}

func (p persistedErrorConfig) restore() ErrorDetectorConfig {
	return ErrorDetectorConfig{
		Features: featureSet(p.Features), Window: p.Window, Stride: p.Stride,
		Arch: ErrorArch(p.Arch), Units: p.Units, DenseUnits: p.DenseUnits,
		KernelSize: p.KernelSize, Dropout: p.Dropout, Epochs: p.Epochs,
		BatchSize: p.Batch, LR: p.LR, Patience: p.Patience,
		ValFraction: p.ValFraction, TrainStride: p.TrainStride,
		MinSamples: p.MinSamples, BalanceClasses: p.Balance, Seed: p.Seed,
	}
}

func featureInts(fs kinematics.FeatureSet) []int {
	out := make([]int, len(fs))
	for i, g := range fs {
		out[i] = int(g)
	}
	return out
}

func featureSet(ints []int) kinematics.FeatureSet {
	out := make(kinematics.FeatureSet, len(ints))
	for i, v := range ints {
		out[i] = kinematics.FeatureGroup(v)
	}
	return out
}

// persistedMonitor is the gob wire format of a trained monitor bundle:
// both stages' networks, standardizers, and configurations, so a monitor
// trained offline can be deployed next to the robot without retraining.
type persistedMonitor struct {
	Threshold  float64
	UseGT      bool
	HasGesture bool

	GestureConfig persistedGestureConfig
	GestureMean   []float64
	GestureStd    []float64
	GestureNet    []byte

	ErrorConfig     persistedErrorConfig
	ErrorMean       []float64
	ErrorStd        []float64
	GestureSpecific bool
	HeadGestures    []int
	HeadNets        [][]byte
	GlobalNet       []byte
}

func encodeNet(n *nn.Network) ([]byte, error) {
	if n == nil {
		return nil, nil
	}
	var buf bytes.Buffer
	if err := n.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeNet(data []byte, rng *rand.Rand) (*nn.Network, error) {
	if len(data) == 0 {
		return nil, nil
	}
	return nn.DecodeNetwork(bytes.NewReader(data), rng)
}

// Encode serializes the monitor bundle. Verbose callbacks and any training
// state are not persisted.
func (m *Monitor) Encode(w io.Writer) error {
	p := persistedMonitor{
		Threshold: m.Threshold,
		UseGT:     m.UseGroundTruthGestures,
	}
	if m.Gestures != nil {
		p.HasGesture = true
		p.GestureConfig = toPersistedGestureConfig(m.Gestures.Config)
		if m.Gestures.Standardizer != nil {
			p.GestureMean = m.Gestures.Standardizer.Mean
			p.GestureStd = m.Gestures.Standardizer.Std
		}
		data, err := encodeNet(m.Gestures.Net)
		if err != nil {
			return fmt.Errorf("core: encode gesture net: %w", err)
		}
		p.GestureNet = data
	}
	if m.Errors == nil {
		return fmt.Errorf("core: cannot persist monitor without an error library")
	}
	p.ErrorConfig = toPersistedErrorConfig(m.Errors.Config)
	if m.Errors.Standardizer != nil {
		p.ErrorMean = m.Errors.Standardizer.Mean
		p.ErrorStd = m.Errors.Standardizer.Std
	}
	p.GestureSpecific = m.Errors.GestureSpecific
	for g, net := range m.Errors.PerGesture {
		data, err := encodeNet(net)
		if err != nil {
			return fmt.Errorf("core: encode head %d: %w", g, err)
		}
		p.HeadGestures = append(p.HeadGestures, g)
		p.HeadNets = append(p.HeadNets, data)
	}
	global, err := encodeNet(m.Errors.Global)
	if err != nil {
		return fmt.Errorf("core: encode global head: %w", err)
	}
	p.GlobalNet = global
	return gob.NewEncoder(w).Encode(p)
}

// DecodeMonitor reconstructs a monitor bundle written by Encode. rng seeds
// stochastic layers in the restored networks (only relevant if retrained).
func DecodeMonitor(r io.Reader, rng *rand.Rand) (*Monitor, error) {
	var p persistedMonitor
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("core: decode monitor: %w", err)
	}
	m := &Monitor{Threshold: p.Threshold, UseGroundTruthGestures: p.UseGT}
	if p.HasGesture {
		net, err := decodeNet(p.GestureNet, rng)
		if err != nil {
			return nil, err
		}
		m.Gestures = &GestureClassifier{
			Net:    net,
			Config: p.GestureConfig.restore(),
			Standardizer: &kinematics.Standardizer{
				Mean: p.GestureMean, Std: p.GestureStd,
			},
		}
	}
	lib := &ErrorLibrary{
		Config:          p.ErrorConfig.restore(),
		GestureSpecific: p.GestureSpecific,
		Standardizer: &kinematics.Standardizer{
			Mean: p.ErrorMean, Std: p.ErrorStd,
		},
		PerGesture: map[int]*nn.Network{},
	}
	for i, g := range p.HeadGestures {
		net, err := decodeNet(p.HeadNets[i], rng)
		if err != nil {
			return nil, err
		}
		lib.PerGesture[g] = net
	}
	global, err := decodeNet(p.GlobalNet, rng)
	if err != nil {
		return nil, err
	}
	lib.Global = global
	m.Errors = lib
	return m, nil
}

// SaveFile writes the monitor bundle to a file.
func (m *Monitor) SaveFile(path string) error {
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// LoadMonitorFile reads a monitor bundle written by SaveFile.
func LoadMonitorFile(path string, rng *rand.Rand) (*Monitor, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: load monitor: %w", err)
	}
	return DecodeMonitor(bytes.NewReader(data), rng)
}
