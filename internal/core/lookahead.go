package core

import (
	"repro/internal/gesture"
	"repro/internal/kinematics"
)

// LookaheadMonitor implements the paper's future-work suggestion that
// "predicting the gesture boundary ahead of time could result in better
// reaction time" (§VI): alongside the classifier's current context, it
// pre-activates the error head of the *most likely next gesture* under the
// task's Markov chain and takes the maximum unsafe score of the two.
//
// Early in a gesture the classifier often still reports the previous
// context (negative jitter); the lookahead head covers that gap, trading a
// controllable amount of false-positive rate for earlier detection.
type LookaheadMonitor struct {
	*Monitor
	// Chain is the task grammar used to predict the next gesture.
	Chain *gesture.MarkovChain
	// Blend scales the lookahead head's score before the max (0..1];
	// lower values make pre-activation more conservative.
	Blend float64
}

// NewLookaheadMonitor wraps a trained monitor with boundary lookahead.
func NewLookaheadMonitor(m *Monitor, chain *gesture.MarkovChain) *LookaheadMonitor {
	return &LookaheadMonitor{Monitor: m, Chain: chain, Blend: 0.8}
}

// nextGesture returns the most probable successor of g under the chain,
// or 0 when the chain has no outgoing transitions.
func (lm *LookaheadMonitor) nextGesture(g int) int {
	if lm.Chain == nil || g <= 0 || g > gesture.MaxGesture {
		return 0
	}
	row := lm.Chain.Row(g)
	best, bestP := 0, 0.0
	for next, p := range row {
		if next == gesture.StateEnd || next == gesture.StateStart {
			continue
		}
		if p > bestP {
			best, bestP = next, p
		}
	}
	return best
}

// Run processes a trajectory with lookahead pre-activation. The returned
// trace is frame-aligned with Monitor.Run's output.
func (lm *LookaheadMonitor) Run(traj *kinematics.Trajectory) (*Trace, error) {
	base, err := lm.Monitor.Run(traj)
	if err != nil {
		return nil, err
	}
	if !lm.Errors.GestureSpecific {
		return base, nil // lookahead only applies to the context-aware library
	}
	cfg := lm.Errors.Config
	feat := cfg.Features.Matrix(traj)
	if lm.Errors.Standardizer != nil {
		lm.Errors.Standardizer.TransformAll(feat)
	}
	blend := lm.Blend
	if blend <= 0 {
		blend = 0.8
	}
	out := &Trace{
		GestureComputeNS: base.GestureComputeNS,
		ErrorComputeNS:   base.ErrorComputeNS * 2, // two heads per frame
		Verdicts:         make([]FrameVerdict, len(base.Verdicts)),
	}
	for i, v := range base.Verdicts {
		next := lm.nextGesture(v.Gesture)
		score := v.Score
		if next != 0 && lm.Errors.PerGesture[next] != nil {
			lo := i - cfg.Window + 1
			if lo < 0 {
				lo = 0
			}
			if s := blend * lm.Errors.Score(next, feat[lo:i+1]); s > score {
				score = s
			}
		}
		nv := FrameVerdict{
			FrameIndex: v.FrameIndex,
			Gesture:    v.Gesture,
			Score:      score,
			Unsafe:     score >= lm.Threshold,
		}
		out.Verdicts[i] = nv
		if nv.Unsafe {
			out.Alerts = append(out.Alerts, Alert{FrameIndex: i, Gesture: nv.Gesture, Score: score})
		}
	}
	return out, nil
}

// Evaluate mirrors Monitor.Evaluate but routes through the lookahead Run.
// It reuses the evaluator by temporarily materializing traces; metrics are
// identical in definition to the base pipeline's.
func (lm *LookaheadMonitor) Evaluate(trajs []*kinematics.Trajectory, truths [][]ErrorTruth) (*PipelineReport, error) {
	// Wrap the base monitor in a shim whose Run applies lookahead.
	shim := &Monitor{
		Gestures:               lm.Gestures,
		Errors:                 lm.Errors,
		Threshold:              lm.Threshold,
		UseGroundTruthGestures: lm.UseGroundTruthGestures,
		runOverride: func(traj *kinematics.Trajectory) (*Trace, error) {
			return lm.Run(traj)
		},
	}
	return shim.Evaluate(trajs, truths)
}
