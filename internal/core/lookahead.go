package core

import (
	"repro/internal/gesture"
	"repro/internal/kinematics"
)

// LookaheadMonitor implements the paper's future-work suggestion that
// "predicting the gesture boundary ahead of time could result in better
// reaction time" (§VI): alongside the classifier's current context, it
// pre-activates the error head of the *most likely next gesture* under the
// task's Markov chain and takes the maximum unsafe score of the two.
//
// Early in a gesture the classifier often still reports the previous
// context (negative jitter); the lookahead head covers that gap, trading a
// controllable amount of false-positive rate for earlier detection.
type LookaheadMonitor struct {
	*Monitor
	// Chain is the task grammar used to predict the next gesture.
	Chain *gesture.MarkovChain
	// Blend scales the lookahead head's score before the max (0..1];
	// lower values make pre-activation more conservative.
	Blend float64
}

// NewLookaheadMonitor wraps a trained monitor with boundary lookahead.
func NewLookaheadMonitor(m *Monitor, chain *gesture.MarkovChain) *LookaheadMonitor {
	return &LookaheadMonitor{Monitor: m, Chain: chain, Blend: 0.8}
}

// nextGesture returns the most probable successor of g under the chain,
// or 0 when the chain has no outgoing transitions.
func (lm *LookaheadMonitor) nextGesture(g int) int {
	if lm.Chain == nil || g <= 0 || g > gesture.MaxGesture {
		return 0
	}
	row := lm.Chain.Row(g)
	best, bestP := 0, 0.0
	for next, p := range row {
		if next == gesture.StateEnd || next == gesture.StateStart {
			continue
		}
		if p > bestP {
			best, bestP = next, p
		}
	}
	return best
}

// Run processes a trajectory with lookahead pre-activation. The returned
// trace is frame-aligned with Monitor.Run's output.
func (lm *LookaheadMonitor) Run(traj *kinematics.Trajectory) (*Trace, error) {
	base, err := lm.Monitor.Run(traj)
	if err != nil {
		return nil, err
	}
	if !lm.Errors.GestureSpecific {
		return base, nil // lookahead only applies to the context-aware library
	}
	cfg := lm.Errors.Config
	feat := cfg.Features.Matrix(traj)
	if lm.Errors.Standardizer != nil {
		lm.Errors.Standardizer.TransformAll(feat)
	}
	blend := lm.Blend
	if blend <= 0 {
		blend = 0.8
	}
	out := &Trace{
		GestureComputeNS: base.GestureComputeNS,
		ErrorComputeNS:   base.ErrorComputeNS * 2, // two heads per frame
		Verdicts:         make([]FrameVerdict, len(base.Verdicts)),
	}
	for i, v := range base.Verdicts {
		next := lm.nextGesture(v.Gesture)
		score := v.Score
		if next != 0 && lm.Errors.PerGesture[next] != nil {
			lo := i - cfg.Window + 1
			if lo < 0 {
				lo = 0
			}
			if s := blend * lm.Errors.Score(next, feat[lo:i+1]); s > score {
				score = s
			}
		}
		nv := FrameVerdict{
			FrameIndex: v.FrameIndex,
			Gesture:    v.Gesture,
			Score:      score,
			Unsafe:     score >= lm.Threshold,
		}
		out.Verdicts[i] = nv
		if nv.Unsafe {
			out.Alerts = append(out.Alerts, Alert{FrameIndex: i, Gesture: nv.Gesture, Score: score})
		}
	}
	return out, nil
}

// LookaheadStream is the online counterpart of LookaheadMonitor.Run: it
// wraps the base monitor's stream and pre-activates the most likely next
// gesture's error head on the same sliding window.
type LookaheadStream struct {
	lm   *LookaheadMonitor
	base *Stream
}

// NewStream creates a streaming session with boundary lookahead.
// groundTruth follows the same contract as Monitor.NewStream.
func (lm *LookaheadMonitor) NewStream(groundTruth []int) (*LookaheadStream, error) {
	base, err := lm.Monitor.NewStream(groundTruth)
	if err != nil {
		return nil, err
	}
	return &LookaheadStream{lm: lm, base: base}, nil
}

// Reset rewinds the stream for reuse on another trajectory.
func (ls *LookaheadStream) Reset(groundTruth []int) error {
	return ls.base.Reset(groundTruth)
}

// Observe advances the stream's windows without inference (see
// Stream.Observe); the lookahead head reads the same base windows, so no
// extra state needs warming.
func (ls *LookaheadStream) Observe(f *kinematics.Frame) {
	ls.base.Observe(f)
}

// Push consumes one frame and returns the lookahead-blended verdict.
func (ls *LookaheadStream) Push(f *kinematics.Frame) FrameVerdict {
	v := ls.base.Push(f)
	lm := ls.lm
	if !lm.Errors.GestureSpecific {
		return v // lookahead only applies to the context-aware library
	}
	blend := lm.Blend
	if blend <= 0 {
		blend = 0.8
	}
	next := lm.nextGesture(v.Gesture)
	if next != 0 && lm.Errors.PerGesture[next] != nil {
		// Score through the base stream's per-head scratch so the
		// lookahead second head stays allocation-free too.
		if s := blend * ls.base.errHeads.score(next, ls.base.errorWin.rows); s > v.Score {
			v.Score = s
			v.Unsafe = s >= lm.Threshold
		}
	}
	return v
}

// Evaluate mirrors Monitor.Evaluate but routes through the lookahead Run.
// It reuses the evaluator by temporarily materializing traces; metrics are
// identical in definition to the base pipeline's.
func (lm *LookaheadMonitor) Evaluate(trajs []*kinematics.Trajectory, truths [][]ErrorTruth) (*PipelineReport, error) {
	// Wrap the base monitor in a shim whose Run applies lookahead.
	shim := &Monitor{
		Gestures:               lm.Gestures,
		Errors:                 lm.Errors,
		Threshold:              lm.Threshold,
		UseGroundTruthGestures: lm.UseGroundTruthGestures,
		runOverride: func(traj *kinematics.Trajectory) (*Trace, error) {
			return lm.Run(traj)
		},
	}
	return shim.Evaluate(trajs, truths)
}
