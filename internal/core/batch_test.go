package core

import (
	"testing"

	"repro/internal/kinematics"
)

// TestBatchStepperMatchesPush pins the batched stepping contract: for
// every streaming mode — perfect boundaries, gesture-agnostic, and online
// classifier context — stepping N staggered streams through a
// BatchStepper must produce exactly (==) the verdicts per-stream Push
// yields, frame for frame, including the ragged stream-start windows.
func TestBatchStepperMatchesPush(t *testing.T) {
	lib, mono, fold := streamFixtures(t)
	gcCfg := DefaultGestureClassifierConfig()
	gcCfg.LSTMUnits = []int{12}
	gcCfg.DenseUnits = 8
	gcCfg.Window = 6
	gcCfg.Epochs = 1
	gcCfg.TrainStride = 8
	gc, err := TrainGestureClassifier(fold.Train, gcCfg)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mon    *Monitor
		labels bool
	}{
		{"perfect-boundaries", func() *Monitor {
			m := NewMonitor(nil, lib)
			m.UseGroundTruthGestures = true
			return m
		}(), true},
		{"gesture-agnostic", NewMonitor(nil, mono), false},
		{"classifier-context", NewMonitor(gc, lib), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, B := range []int{1, 3, 5} {
				bs, err := tc.mon.NewBatchStepper(B)
				if err != nil {
					t.Fatal(err)
				}
				// One batched and one reference stream per slot, staggered
				// across the fold's test trajectories so window lengths and
				// frame indices differ per slot.
				n := 5
				streams := make([]*Stream, n)
				refs := make([]*Stream, n)
				trajs := make([][]*kinematics.Frame, n)
				for i := 0; i < n; i++ {
					traj := fold.Test[i%len(fold.Test)]
					var labels []int
					if tc.labels {
						labels = traj.Gestures
					}
					if streams[i], err = tc.mon.NewStream(labels); err != nil {
						t.Fatal(err)
					}
					if refs[i], err = tc.mon.NewStream(labels); err != nil {
						t.Fatal(err)
					}
					// stagger: slot i skips its first i frames via Push on
					// both sides so the batch holds unequal frame indices
					frames := make([]*kinematics.Frame, 0, len(traj.Frames))
					for f := range traj.Frames {
						frames = append(frames, &traj.Frames[f])
					}
					for k := 0; k < i && k < len(frames); k++ {
						streams[i].Push(frames[k])
						refs[i].Push(frames[k])
					}
					trajs[i] = frames[min(i, len(frames)):]
				}
				frames := make([]*kinematics.Frame, n)
				got := make([]FrameVerdict, n)
				for step := 0; ; step++ {
					live := 0
					for i := range streams {
						if step < len(trajs[i]) {
							live++
							frames[i] = trajs[i][step]
						} else {
							frames[i] = nil
						}
					}
					if live == 0 {
						break
					}
					// compact: only live streams participate this step
					ls := make([]*Stream, 0, n)
					lf := make([]*kinematics.Frame, 0, n)
					li := make([]int, 0, n)
					for i := range streams {
						if frames[i] != nil {
							ls = append(ls, streams[i])
							lf = append(lf, frames[i])
							li = append(li, i)
						}
					}
					bs.Step(ls, lf, got[:len(ls)])
					for k, i := range li {
						want := refs[i].Push(lf[k])
						if got[k] != want {
							t.Fatalf("B=%d slot %d step %d: batched %+v != push %+v", B, i, step, got[k], want)
						}
					}
				}
			}
		})
	}
}

// TestBatchStepperZeroAlloc extends the warm zero-allocation guarantee to
// batched stepping.
func TestBatchStepperZeroAlloc(t *testing.T) {
	lib, _, fold := streamFixtures(t)
	mon := NewMonitor(nil, lib)
	mon.UseGroundTruthGestures = true
	const B = 4
	bs, err := mon.NewBatchStepper(B)
	if err != nil {
		t.Fatal(err)
	}
	traj := fold.Test[0]
	streams := make([]*Stream, B)
	frames := make([]*kinematics.Frame, B)
	out := make([]FrameVerdict, B)
	for i := range streams {
		if streams[i], err = mon.NewStream(traj.Gestures); err != nil {
			t.Fatal(err)
		}
	}
	step := func(f int) {
		for i := range frames {
			frames[i] = &traj.Frames[f%len(traj.Frames)]
		}
		bs.Step(streams, frames, out)
	}
	for f := 0; f < len(traj.Frames); f++ { // warm every window fully
		step(f)
	}
	n := 0
	if avg := testing.AllocsPerRun(100, func() {
		step(n)
		n++
	}); avg != 0 {
		t.Fatalf("warm BatchStepper allocates %.1f/run, want 0", avg)
	}
}
