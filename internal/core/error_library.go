package core

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/dataset"
	"repro/internal/kinematics"
	"repro/internal/nn"
	"repro/internal/stats"
)

// ErrorArch selects the erroneous-gesture detector architecture ablated in
// Tables V and VI.
type ErrorArch int

// Architectures.
const (
	ArchConv ErrorArch = iota + 1
	ArchLSTM
	ArchMLP
)

// String returns the table name of the architecture.
func (a ErrorArch) String() string {
	switch a {
	case ArchConv:
		return "Conv"
	case ArchLSTM:
		return "LSTM"
	case ArchMLP:
		return "MLP"
	default:
		return fmt.Sprintf("ErrorArch(%d)", int(a))
	}
}

// ErrorDetectorConfig configures the erroneous-gesture detection stage
// (Equation 3 of the paper).
type ErrorDetectorConfig struct {
	// Features selects the kinematic variable subset (Tables V/VI ablate
	// All vs C,R,G vs C,G).
	Features kinematics.FeatureSet
	// Window and Stride control sample extraction; the paper uses
	// window=5 stride=1 for Suturing and window=10 stride=1 for Block
	// Transfer.
	Window, Stride int
	// Arch selects Conv1D, LSTM, or MLP heads.
	Arch ErrorArch
	// Units are the layer widths (conv channels or LSTM hidden sizes).
	Units []int
	// DenseUnits is the fully connected head width.
	DenseUnits int
	// KernelSize is the Conv1D kernel length.
	KernelSize int
	Dropout    float64
	// Epochs, BatchSize, LR, Patience configure training; the paper uses
	// low initial learning rates (1e-4..1e-3) with step decay and early
	// stopping.
	Epochs, BatchSize int
	LR                float64
	Patience          int
	ValFraction       float64
	// TrainStride optionally subsamples training windows.
	TrainStride int
	// MinSamples is the minimum number of windows (with both classes
	// present) needed to train a gesture-specific head; gestures below
	// the threshold fall back to the library's default scorer.
	MinSamples int
	// BalanceClasses applies inverse-frequency class weights.
	BalanceClasses bool
	Seed           int64
	Verbose        func(string)
}

// DefaultErrorDetectorConfig returns a CPU-scale 1D-CNN configuration of
// the paper's best-performing setup for Suturing (C,R,G features,
// window=5, stride=1, lr 1e-4-scale).
func DefaultErrorDetectorConfig() ErrorDetectorConfig {
	return ErrorDetectorConfig{
		Features:       kinematics.CRG(),
		Window:         5,
		Stride:         1,
		Arch:           ArchConv,
		Units:          []int{24, 12},
		DenseUnits:     12,
		KernelSize:     3,
		Dropout:        0.1,
		Epochs:         10,
		BatchSize:      32,
		LR:             2e-3,
		Patience:       3,
		ValFraction:    0.12,
		TrainStride:    2,
		MinSamples:     40,
		BalanceClasses: true,
		Seed:           7,
	}
}

// buildErrorNet constructs one binary safe/unsafe head.
func buildErrorNet(rng *rand.Rand, cfg ErrorDetectorConfig) *nn.Network {
	switch cfg.Arch {
	case ArchLSTM:
		return nn.BuildStackedLSTM(rng, nn.StackedLSTMConfig{
			InputDim:   cfg.Features.Dim(),
			LSTMUnits:  cfg.Units,
			DenseUnits: cfg.DenseUnits,
			NumClasses: 2,
			Dropout:    cfg.Dropout,
		})
	case ArchMLP:
		return nn.BuildMLP(rng, nn.MLPConfig{
			InputDim:   cfg.Features.Dim() * cfg.Window,
			Hidden:     cfg.Units,
			NumClasses: 2,
			Dropout:    cfg.Dropout,
		})
	default:
		return nn.BuildConv1D(rng, nn.Conv1DConfig{
			InputDim:   cfg.Features.Dim(),
			ConvUnits:  cfg.Units,
			KernelSize: cfg.KernelSize,
			DenseUnits: cfg.DenseUnits,
			NumClasses: 2,
			Dropout:    cfg.Dropout,
		})
	}
}

// ErrorLibrary is the trained library of erroneous-gesture classifiers:
// one binary head per gesture class (gesture-specific mode), or a single
// shared head (the non-context-specific baseline).
type ErrorLibrary struct {
	Config       ErrorDetectorConfig
	Standardizer *kinematics.Standardizer
	// PerGesture maps gesture index -> binary classifier. Nil entries
	// mean the gesture had insufficient data.
	PerGesture map[int]*nn.Network
	// Global is the shared classifier used in non-gesture-specific mode
	// and as a fallback for gestures without a dedicated head.
	Global *nn.Network
	// GestureSpecific reports which mode the library was trained in.
	GestureSpecific bool
}

// trainBinary fits one safe/unsafe head on windows.
func trainBinary(rng *rand.Rand, cfg ErrorDetectorConfig, windows []dataset.Window) (*nn.Network, error) {
	trainW, valW := dataset.HoldoutSplit(windows, cfg.ValFraction, rng)
	safeW, unsafeW := 1.0, 1.0
	if cfg.BalanceClasses {
		safeW, unsafeW = dataset.BalanceWeights(trainW)
	}
	toSamples := func(ws []dataset.Window) []nn.Sample {
		out := make([]nn.Sample, len(ws))
		for i, w := range ws {
			y, wt := 0, safeW
			if w.Unsafe {
				y, wt = 1, unsafeW
			}
			out[i] = nn.Sample{X: w.X, Y: y, Weight: wt}
		}
		return out
	}
	net := buildErrorNet(rng, cfg)
	_, err := net.Fit(toSamples(trainW), toSamples(valW), nn.TrainConfig{
		Epochs:     cfg.Epochs,
		BatchSize:  cfg.BatchSize,
		LR:         cfg.LR,
		DecayEvery: 3,
		DecayRate:  0.6,
		ClipNorm:   5,
		Patience:   cfg.Patience,
		Rng:        rng,
		Verbose:    cfg.Verbose,
	})
	if err != nil {
		return nil, err
	}
	return net, nil
}

// hasBothClasses reports whether the window set contains safe and unsafe
// examples.
func hasBothClasses(ws []dataset.Window) bool {
	n := dataset.CountUnsafe(ws)
	return n > 0 && n < len(ws)
}

// TrainErrorLibrary trains the gesture-specific library on frame-labeled
// trajectories. Training groups windows by their ground-truth gesture
// ("we trained our erroneous gesture detection system on individual
// gestures, assuming perfect gesture boundaries"). A global fallback head
// is trained on all windows for gestures with insufficient data.
func TrainErrorLibrary(trajs []*kinematics.Trajectory, cfg ErrorDetectorConfig) (*ErrorLibrary, error) {
	lib, windows, err := prepLibrary(trajs, cfg)
	if err != nil {
		return nil, err
	}
	lib.GestureSpecific = true
	lib.PerGesture = map[int]*nn.Network{}
	rng := rand.New(rand.NewSource(cfg.Seed))

	byG := dataset.ByGesture(windows)
	// Train heads in ascending gesture order: the shared rng makes map
	// iteration order part of the result, so a fixed order keeps training
	// deterministic for a fixed seed.
	gs := make([]int, 0, len(byG))
	for g := range byG {
		gs = append(gs, g)
	}
	sort.Ints(gs)
	for _, g := range gs {
		ws := byG[g]
		if len(ws) < cfg.MinSamples || !hasBothClasses(ws) {
			continue
		}
		net, err := trainBinary(rng, cfg, ws)
		if err != nil {
			return nil, fmt.Errorf("core: train error head for gesture %d: %w", g, err)
		}
		lib.PerGesture[g] = net
	}
	// Global fallback over everything.
	if hasBothClasses(windows) {
		global, err := trainBinary(rng, cfg, windows)
		if err != nil {
			return nil, fmt.Errorf("core: train global fallback: %w", err)
		}
		lib.Global = global
	}
	return lib, nil
}

// TrainMonolithicDetector trains the non-context-specific baseline: a
// single binary classifier over all windows with no notion of gesture.
func TrainMonolithicDetector(trajs []*kinematics.Trajectory, cfg ErrorDetectorConfig) (*ErrorLibrary, error) {
	lib, windows, err := prepLibrary(trajs, cfg)
	if err != nil {
		return nil, err
	}
	lib.GestureSpecific = false
	if !hasBothClasses(windows) {
		return nil, fmt.Errorf("core: monolithic detector needs both classes")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	global, err := trainBinary(rng, cfg, windows)
	if err != nil {
		return nil, err
	}
	lib.Global = global
	return lib, nil
}

// prepLibrary fits the standardizer and extracts training windows.
func prepLibrary(trajs []*kinematics.Trajectory, cfg ErrorDetectorConfig) (*ErrorLibrary, []dataset.Window, error) {
	if cfg.Window <= 0 || cfg.Stride <= 0 {
		return nil, nil, fmt.Errorf("core: bad window config %d/%d", cfg.Window, cfg.Stride)
	}
	std := dataset.FitStandardizer(trajs, cfg.Features)
	trainStride := cfg.TrainStride
	if trainStride <= 0 {
		trainStride = cfg.Stride
	}
	windows, err := dataset.Slide(trajs, dataset.Config{
		Features: cfg.Features, Size: cfg.Window, Stride: trainStride, Standardizer: std,
	})
	if err != nil {
		return nil, nil, err
	}
	if len(windows) == 0 {
		return nil, nil, ErrNoData
	}
	return &ErrorLibrary{Config: cfg, Standardizer: std}, windows, nil
}

// Score returns the unsafe probability of a standardized window under the
// classifier selected by the gesture context. Gestures with no dedicated
// head use the global fallback; with no fallback either, the sample is
// scored safe (0).
func (el *ErrorLibrary) Score(gestureIdx int, window [][]float64) float64 {
	var net *nn.Network
	if el.GestureSpecific {
		net = el.PerGesture[gestureIdx]
	}
	if net == nil {
		net = el.Global
	}
	if net == nil {
		return 0
	}
	return net.Predict(window)[1]
}

// EvalPerGesture evaluates each gesture head on held-out trajectories with
// perfect gesture boundaries, returning per-gesture confusion and AUC —
// the Table VII breakdown.
type GestureEval struct {
	Gesture   int
	TestSize  int
	PctErrors float64
	AUC       float64
	Confusion stats.BinaryConfusion
}

// EvalPerGesture computes Table VII rows on test trajectories.
func (el *ErrorLibrary) EvalPerGesture(trajs []*kinematics.Trajectory, threshold float64) ([]GestureEval, error) {
	windows, err := dataset.Slide(trajs, dataset.Config{
		Features: el.Config.Features, Size: el.Config.Window, Stride: el.Config.Stride,
		Standardizer: el.Standardizer,
	})
	if err != nil {
		return nil, err
	}
	byG := dataset.ByGesture(windows)
	gestures := make([]int, 0, len(byG))
	for g := range byG {
		gestures = append(gestures, g)
	}
	for i := 0; i < len(gestures); i++ {
		for j := i + 1; j < len(gestures); j++ {
			if gestures[j] < gestures[i] {
				gestures[i], gestures[j] = gestures[j], gestures[i]
			}
		}
	}
	var out []GestureEval
	for _, g := range gestures {
		ws := byG[g]
		ev := GestureEval{Gesture: g, TestSize: len(ws)}
		scores := make([]float64, len(ws))
		labels := make([]bool, len(ws))
		for i, w := range ws {
			scores[i] = el.Score(g, w.X)
			labels[i] = w.Unsafe
			ev.Confusion.Add(scores[i] >= threshold, w.Unsafe)
		}
		ev.PctErrors = float64(dataset.CountUnsafe(ws)) / float64(len(ws))
		ev.AUC = stats.AUC(scores, labels)
		out = append(out, ev)
	}
	return out, nil
}

// OverallEval aggregates binary metrics over all test windows with perfect
// gesture boundaries — the Table V/VI ablation numbers.
func (el *ErrorLibrary) OverallEval(trajs []*kinematics.Trajectory, threshold float64) (stats.BinaryConfusion, float64, error) {
	windows, err := dataset.Slide(trajs, dataset.Config{
		Features: el.Config.Features, Size: el.Config.Window, Stride: el.Config.Stride,
		Standardizer: el.Standardizer,
	})
	if err != nil {
		return stats.BinaryConfusion{}, 0, err
	}
	var conf stats.BinaryConfusion
	scores := make([]float64, len(windows))
	labels := make([]bool, len(windows))
	for i, w := range windows {
		g := w.Gesture
		if !el.GestureSpecific {
			g = -1
		}
		scores[i] = el.Score(g, w.X)
		labels[i] = w.Unsafe
		conf.Add(scores[i] >= threshold, w.Unsafe)
	}
	return conf, stats.AUC(scores, labels), nil
}
