package core

import (
	"testing"

	"repro/internal/gesture"
	"repro/internal/stats"
)

func TestLookaheadImprovesOrMatchesReaction(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	trajs := tinyDemos(t, 41, 6)
	gc := tinyGC(t, trajs[:4])
	el := tinyEL(t, trajs[:4])
	mon := NewMonitor(gc, el)

	// Fit the task grammar from training demos.
	var seqs [][]int
	for _, tr := range trajs[:4] {
		seqs = append(seqs, tr.GestureSequence())
	}
	chain, err := gesture.FitMarkovChain(seqs)
	if err != nil {
		t.Fatal(err)
	}
	la := NewLookaheadMonitor(mon, chain)

	baseRep, err := mon.Evaluate(trajs[4:], nil)
	if err != nil {
		t.Fatal(err)
	}
	laRep, err := la.Evaluate(trajs[4:], nil)
	if err != nil {
		t.Fatal(err)
	}
	baseReact := stats.Mean(baseRep.ReactionTimesMS)
	laReact := stats.Mean(laRep.ReactionTimesMS)
	t.Logf("reaction: base %+.0f ms, lookahead %+.0f ms; AUC base %.3f lookahead %.3f; missed base %d lookahead %d",
		baseReact, laReact, baseRep.AUC, laRep.AUC, baseRep.MissedErrors, laRep.MissedErrors)

	// Lookahead must not miss more errors than the base pipeline: it only
	// ever raises scores.
	if laRep.MissedErrors > baseRep.MissedErrors {
		t.Errorf("lookahead missed %d errors vs base %d", laRep.MissedErrors, baseRep.MissedErrors)
	}
	// Detection times can only move earlier (reaction times can only grow)
	// per detected instance; with equal-or-more detections the mean can
	// shift, so assert the non-degradation on detection count instead.
	if len(laRep.ReactionTimesMS) < len(baseRep.ReactionTimesMS) {
		t.Errorf("lookahead detected fewer instances: %d vs %d",
			len(laRep.ReactionTimesMS), len(baseRep.ReactionTimesMS))
	}
}

func TestLookaheadNextGesture(t *testing.T) {
	chain, err := gesture.FitMarkovChain([][]int{{2, 12, 6, 5, 11}})
	if err != nil {
		t.Fatal(err)
	}
	lm := &LookaheadMonitor{Chain: chain}
	if next := lm.nextGesture(2); next != 12 {
		t.Errorf("next(G2) = %d, want 12", next)
	}
	if next := lm.nextGesture(11); next != 0 {
		t.Errorf("next(G11) = %d, want 0 (terminal)", next)
	}
	if next := lm.nextGesture(0); next != 0 {
		t.Errorf("next(invalid) = %d", next)
	}
	lm.Chain = nil
	if next := lm.nextGesture(2); next != 0 {
		t.Errorf("nil chain next = %d", next)
	}
}

func TestLookaheadNonSpecificPassthrough(t *testing.T) {
	trajs := tinyDemos(t, 42, 3)
	cfg := DefaultErrorDetectorConfig()
	cfg.Units = []int{8}
	cfg.Epochs = 2
	cfg.TrainStride = 5
	mono, err := TrainMonolithicDetector(trajs[:2], cfg)
	if err != nil {
		t.Fatal(err)
	}
	mon := NewMonitor(nil, mono)
	chain, _ := gesture.FitMarkovChain([][]int{{2, 12, 6, 5, 11}})
	la := NewLookaheadMonitor(mon, chain)
	base, err := mon.Run(trajs[2])
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := la.Run(trajs[2])
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Verdicts {
		if base.Verdicts[i].Score != wrapped.Verdicts[i].Score {
			t.Fatal("lookahead must be a no-op for non-context libraries")
		}
	}
}
